// Series datasheets: one document, many models (§3.1's pain point #2).
#include <gtest/gtest.h>

#include "datasheet/parser.hpp"
#include "datasheet/render.hpp"

namespace joules {
namespace {

std::vector<DatasheetRecord> ncs_series() {
  DatasheetRecord a;
  a.vendor = "Cisco";
  a.series = "NCS 5500 series";
  a.model = "NCS-55A1-24H";
  a.typical_power_w = 600;
  a.max_power_w = 715;
  a.max_bandwidth_gbps = 2400;
  a.psu_count = 2;
  a.psu_capacity_w = 1100;

  DatasheetRecord b = a;
  b.model = "NCS-55A1-48Q6H";
  b.typical_power_w = 460;
  b.max_power_w = 625;
  b.max_bandwidth_gbps = 1800;

  DatasheetRecord c = a;
  c.model = "NCS-55A1-24Q6H-SS";
  c.typical_power_w = 400;
  c.max_power_w = 550;
  c.max_bandwidth_gbps = 1200;
  c.psu_capacity_w = 750;
  return {a, b, c};
}

TEST(SeriesDatasheet, RenderMentionsEveryModelOnce) {
  const auto models = ncs_series();
  const std::string text = render_series_datasheet(models, 1);
  EXPECT_NE(text.find("NCS 5500 series Data Sheet"), std::string::npos);
  for (const DatasheetRecord& record : models) {
    EXPECT_NE(text.find(record.model), std::string::npos) << record.model;
  }
}

TEST(SeriesDatasheet, ParserRecoversPerModelColumns) {
  const auto models = ncs_series();
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const std::string text = render_series_datasheet(models, seed);
    const auto parsed = parse_series_datasheet(text);
    ASSERT_EQ(parsed.size(), models.size()) << text;
    for (std::size_t i = 0; i < models.size(); ++i) {
      EXPECT_EQ(parsed[i].record.model, models[i].model);
      EXPECT_EQ(parsed[i].record.vendor, "Cisco");
      EXPECT_EQ(parsed[i].record.series, "NCS 5500 series");
      EXPECT_DOUBLE_EQ(parsed[i].record.typical_power_w.value_or(-1),
                       *models[i].typical_power_w)
          << "seed " << seed << "\n" << text;
      EXPECT_DOUBLE_EQ(parsed[i].record.max_power_w.value_or(-1),
                       *models[i].max_power_w);
      EXPECT_NEAR(parsed[i].record.max_bandwidth_gbps.value_or(-1),
                  *models[i].max_bandwidth_gbps, 1.0);
      EXPECT_EQ(parsed[i].record.psu_count.value_or(-1), 2);
      EXPECT_DOUBLE_EQ(parsed[i].record.psu_capacity_w.value_or(-1),
                       *models[i].psu_capacity_w);
    }
  }
}

TEST(SeriesDatasheet, TbdAndDashCellsStayMissing) {
  auto models = ncs_series();
  models[1].typical_power_w.reset();  // the "TBD" column
  models[2].psu_count.reset();        // the "-" column
  models[2].psu_capacity_w.reset();
  const auto parsed = parse_series_datasheet(render_series_datasheet(models, 3));
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_FALSE(parsed[1].record.typical_power_w.has_value());
  EXPECT_TRUE(parsed[1].record.max_power_w.has_value());  // others unaffected
  EXPECT_FALSE(parsed[2].record.psu_count.has_value());
}

TEST(SeriesDatasheet, EmptyInputs) {
  EXPECT_TRUE(render_series_datasheet({}, 1).empty());
  EXPECT_TRUE(parse_series_datasheet("no table here at all").empty());
}

TEST(SeriesDatasheet, HallucinationModelAppliesPerModel) {
  const auto models = ncs_series();
  const std::string text = render_series_datasheet(models, 5);
  ParserOptions options;
  options.hallucination_rate = 1.0;  // force an error in every column
  const auto parsed = parse_series_datasheet(text, options);
  ASSERT_EQ(parsed.size(), 3u);
  for (const ParsedDatasheet& result : parsed) {
    EXPECT_TRUE(result.hallucination_injected);
  }
}

TEST(SeriesDatasheet, SingleModelSeriesDegradesGracefully) {
  const std::vector<DatasheetRecord> one = {ncs_series()[0]};
  const auto parsed = parse_series_datasheet(render_series_datasheet(one, 2));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed[0].record.typical_power_w.value_or(-1), 600);
}

}  // namespace
}  // namespace joules
