#include "datasheet/parser.hpp"

#include <gtest/gtest.h>

#include "datasheet/corpus.hpp"
#include "datasheet/render.hpp"

namespace joules {
namespace {

DatasheetRecord sample_record() {
  DatasheetRecord record;
  record.vendor = "Cisco";
  record.model = "NCS-55A1-24H";
  record.series = "NCS 5500 series";
  record.typical_power_w = 600;
  record.max_power_w = 715;
  record.max_bandwidth_gbps = 2400;
  record.psu_count = 2;
  record.psu_capacity_w = 1100;
  return record;
}

TEST(Renderer, AllLayoutsMentionTheModelAndPower) {
  const DatasheetRecord record = sample_record();
  for (const DatasheetLayout layout :
       {DatasheetLayout::kSpecSheet, DatasheetLayout::kProse,
        DatasheetLayout::kTable}) {
    const std::string text = render_datasheet(record, layout, 1);
    EXPECT_NE(text.find("NCS-55A1-24H"), std::string::npos);
    EXPECT_NE(text.find("600"), std::string::npos);
  }
}

TEST(Renderer, MissingPowerRendersTbd) {
  DatasheetRecord record = sample_record();
  record.typical_power_w.reset();
  record.max_power_w.reset();
  const std::string text =
      render_datasheet(record, DatasheetLayout::kSpecSheet, 1);
  EXPECT_NE(text.find("TBD"), std::string::npos);
}

TEST(Parser, RoundTripsEveryLayout) {
  const DatasheetRecord record = sample_record();
  for (const DatasheetLayout layout :
       {DatasheetLayout::kSpecSheet, DatasheetLayout::kProse,
        DatasheetLayout::kTable}) {
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const std::string text = render_datasheet(record, layout, seed);
      const ParsedDatasheet parsed = parse_datasheet(text);
      EXPECT_EQ(parsed.record.typical_power_w.value_or(-1), 600)
          << "layout " << static_cast<int>(layout) << " seed " << seed
          << "\n" << text;
      EXPECT_EQ(parsed.record.max_power_w.value_or(-1), 715) << text;
      EXPECT_NEAR(parsed.record.max_bandwidth_gbps.value_or(-1), 2400, 1)
          << text;
      EXPECT_EQ(parsed.record.psu_count.value_or(-1), 2) << text;
      EXPECT_EQ(parsed.record.psu_capacity_w.value_or(-1), 1100) << text;
    }
  }
}

TEST(Parser, TbdParsesAsMissing) {
  DatasheetRecord record = sample_record();
  record.typical_power_w.reset();
  record.max_power_w.reset();
  const ParsedDatasheet parsed = parse_datasheet(
      render_datasheet(record, DatasheetLayout::kSpecSheet, 3));
  EXPECT_FALSE(parsed.record.typical_power_w.has_value());
  EXPECT_FALSE(parsed.record.max_power_w.has_value());
}

TEST(Parser, DerivesBandwidthFromPortList) {
  DatasheetRecord record = sample_record();
  record.max_bandwidth_gbps.reset();
  record.ports.push_back({24, 100.0, "QSFP28"});
  const ParsedDatasheet parsed = parse_datasheet(
      render_datasheet(record, DatasheetLayout::kSpecSheet, 4));
  EXPECT_TRUE(parsed.bandwidth_derived_from_ports);
  EXPECT_NEAR(parsed.record.max_bandwidth_gbps.value_or(-1), 2400, 1);
}

TEST(Parser, TbpsUnitsConverted) {
  DatasheetRecord record = sample_record();
  record.max_bandwidth_gbps = 12800;
  bool saw_tbps = false;
  for (std::uint64_t seed = 0; seed < 10 && !saw_tbps; ++seed) {
    const std::string text =
        render_datasheet(record, DatasheetLayout::kSpecSheet, seed);
    if (text.find("Tbps") == std::string::npos) continue;
    saw_tbps = true;
    const ParsedDatasheet parsed = parse_datasheet(text);
    EXPECT_NEAR(parsed.record.max_bandwidth_gbps.value_or(-1), 12800, 10);
  }
  EXPECT_TRUE(saw_tbps);
}

TEST(Parser, DoesNotMistakePsuCapacityForRouterPower) {
  DatasheetRecord record = sample_record();
  record.typical_power_w.reset();
  record.max_power_w.reset();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const ParsedDatasheet parsed = parse_datasheet(
        render_datasheet(record, DatasheetLayout::kProse, seed));
    // 2x1100 W PSUs present, but power fields must stay empty.
    EXPECT_FALSE(parsed.record.typical_power_w.has_value());
    EXPECT_FALSE(parsed.record.max_power_w.has_value());
    EXPECT_EQ(parsed.record.psu_capacity_w.value_or(-1), 1100);
  }
}

TEST(Parser, CorpusWideAccuracyHighWithoutErrorModel) {
  // Render and parse the full 777-model corpus: the heuristic extractor
  // should be nearly perfect when no hallucination is injected.
  const auto corpus = generate_corpus();
  ParserAccuracy accuracy;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const std::string text = render_datasheet(corpus[i], i);
    score_parse(corpus[i], parse_datasheet(text), accuracy);
  }
  EXPECT_GT(accuracy.typical_power.rate(), 0.97);
  EXPECT_GT(accuracy.max_power.rate(), 0.97);
  EXPECT_GT(accuracy.bandwidth.rate(), 0.95);
  EXPECT_GT(accuracy.psu.rate(), 0.95);
}

TEST(Parser, HallucinationModelDegradesAccuracy) {
  // §3.2: LLM outputs are "reasonably accurate but far from perfect". With a
  // 15 % per-document error rate the field accuracy drops measurably and the
  // affected documents are flagged.
  const auto corpus = generate_corpus();
  ParserOptions options;
  options.hallucination_rate = 0.15;
  ParserAccuracy clean;
  ParserAccuracy noisy;
  int flagged = 0;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const std::string text = render_datasheet(corpus[i], i);
    score_parse(corpus[i], parse_datasheet(text), clean);
    const ParsedDatasheet parsed = parse_datasheet(text, options);
    score_parse(corpus[i], parsed, noisy);
    flagged += parsed.hallucination_injected ? 1 : 0;
  }
  EXPECT_NEAR(flagged / 777.0, 0.15, 0.04);
  EXPECT_LT(noisy.typical_power.rate(), clean.typical_power.rate() - 0.02);
}

TEST(Parser, IdentityExtraction) {
  const DatasheetRecord record = sample_record();
  const ParsedDatasheet spec = parse_datasheet(
      render_datasheet(record, DatasheetLayout::kSpecSheet, 1));
  EXPECT_EQ(spec.record.model, "NCS-55A1-24H");
  EXPECT_EQ(spec.record.vendor, "Cisco");
  EXPECT_EQ(spec.record.series, "NCS 5500 series");
}

}  // namespace
}  // namespace joules
