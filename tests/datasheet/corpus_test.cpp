#include "datasheet/corpus.hpp"

#include <gtest/gtest.h>

#include <set>

#include "datasheet/analysis.hpp"

namespace joules {
namespace {

TEST(Corpus, Has777Models) {
  const auto corpus = generate_corpus();
  EXPECT_EQ(corpus.size(), 777u);
}

TEST(Corpus, Deterministic) {
  const auto a = generate_corpus();
  const auto b = generate_corpus();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].model, b[i].model);
    EXPECT_EQ(a[i].typical_power_w, b[i].typical_power_w);
  }
}

TEST(Corpus, ThreeVendorsPresent) {
  const auto corpus = generate_corpus();
  std::set<std::string> vendors;
  for (const DatasheetRecord& record : corpus) vendors.insert(record.vendor);
  EXPECT_TRUE(vendors.contains("Cisco"));
  EXPECT_TRUE(vendors.contains("Arista"));
  EXPECT_TRUE(vendors.contains("Juniper"));
}

TEST(Corpus, ReleaseDatesCiscoOnly) {
  // §3.3: "the dataset contains release dates for Cisco devices only".
  for (const DatasheetRecord& record : generate_corpus()) {
    if (record.vendor != "Cisco" && record.vendor != "EdgeCore" &&
        record.vendor != "Extreme") {
      EXPECT_FALSE(record.release_year.has_value()) << record.model;
    }
  }
}

TEST(Corpus, SomeRecordsLackPowerEntirely) {
  int missing = 0;
  for (const DatasheetRecord& record : generate_corpus()) {
    if (!record.typical_power_w && !record.max_power_w) ++missing;
  }
  EXPECT_GT(missing, 20);  // the "TBD" datasheets
}

TEST(Corpus, SomeRecordsAreMaxPowerOnly) {
  int max_only = 0;
  for (const DatasheetRecord& record : generate_corpus()) {
    if (!record.typical_power_w && record.max_power_w) ++max_only;
  }
  EXPECT_GT(max_only, 50);
}

TEST(Corpus, SomeBandwidthsOnlyDerivableFromPorts) {
  int ports_only = 0;
  for (const DatasheetRecord& record : generate_corpus()) {
    if (!record.max_bandwidth_gbps && !record.ports.empty()) ++ports_only;
  }
  EXPECT_GT(ports_only, 30);
}

TEST(Corpus, CatalogModelsIncludedWithTable1Values) {
  const auto corpus = generate_corpus();
  auto find = [&](const std::string& model) -> const DatasheetRecord& {
    for (const DatasheetRecord& record : corpus) {
      if (record.model == model) return record;
    }
    throw std::runtime_error("model not in corpus: " + model);
  };
  EXPECT_DOUBLE_EQ(find("NCS-55A1-24H").typical_power_w.value(), 600.0);
  EXPECT_DOUBLE_EQ(find("ASR-920-24SZ-M").typical_power_w.value(), 110.0);
  EXPECT_DOUBLE_EQ(find("8201-32FH").typical_power_w.value(), 288.0);
  EXPECT_DOUBLE_EQ(find("8201-24H8FH").typical_power_w.value(), 205.0);
  EXPECT_EQ(find("8201-32FH").series, "Cisco 8000 series");
}

TEST(Corpus, ContainsTheTwoPlotOutliers) {
  // The paper excludes two models released 2008/2011 with efficiency ~300.
  const auto corpus = generate_corpus();
  const auto points = efficiency_points(corpus);
  const auto outliers = plot_outliers(points);
  ASSERT_GE(outliers.size(), 2u);
  std::set<int> years;
  for (const EfficiencyPoint& point : outliers) {
    if (point.w_per_100g > 250.0) years.insert(point.year);
  }
  EXPECT_TRUE(years.contains(2008));
  EXPECT_TRUE(years.contains(2011));
}

TEST(Corpus, EfficiencyMetricUsesTypicalWithMaxFallback) {
  DatasheetRecord record;
  record.max_bandwidth_gbps = 800;
  EXPECT_FALSE(efficiency_w_per_100g(record).has_value());
  record.max_power_w = 400;
  EXPECT_DOUBLE_EQ(efficiency_w_per_100g(record).value(), 50.0);
  record.typical_power_w = 240;
  EXPECT_DOUBLE_EQ(efficiency_w_per_100g(record).value(), 30.0);
}

TEST(Corpus, BandwidthFromPorts) {
  DatasheetRecord record;
  EXPECT_FALSE(bandwidth_from_ports_gbps(record).has_value());
  record.ports.push_back({48, 10.0, "SFP+"});
  record.ports.push_back({6, 100.0, "QSFP28"});
  EXPECT_DOUBLE_EQ(bandwidth_from_ports_gbps(record).value(), 1080.0);
}

TEST(AsicTrend, SteepCleanDecline) {
  const auto trend = broadcom_asic_trend();
  ASSERT_GE(trend.size(), 6u);
  for (std::size_t i = 1; i < trend.size(); ++i) {
    EXPECT_LT(trend[i].w_per_100g, trend[i - 1].w_per_100g);
    EXPECT_GT(trend[i].year, trend[i - 1].year);
  }
  // Order-of-magnitude improvement over the decade (Fig. 2a).
  EXPECT_GT(trend.front().w_per_100g / trend.back().w_per_100g, 8.0);
}

TEST(TrendAnalysis, DatasheetTrendIsWeakerThanAsicTrend) {
  // The central §3.3.1 finding: the ASIC-level improvement is steep and
  // clean; the system-level (datasheet) trend is shallow and noisy.
  const auto corpus = generate_corpus();
  const auto points = plot_points(efficiency_points(corpus));
  ASSERT_GT(points.size(), 100u);
  const LinearFit system_fit = efficiency_trend_fit(points);

  std::vector<EfficiencyPoint> asic_points;
  for (const AsicEfficiencyPoint& point : broadcom_asic_trend()) {
    asic_points.push_back({point.year, point.w_per_100g, point.generation});
  }
  const LinearFit asic_fit = efficiency_trend_fit(asic_points);

  // ASIC: tight fit. Datasheets: scatter dominates.
  EXPECT_GT(asic_fit.r_squared, 0.85);
  EXPECT_LT(system_fit.r_squared, 0.30);
  // Both slopes negative (efficiency improves), but the relative improvement
  // per year is far stronger at the ASIC level.
  EXPECT_LT(asic_fit.slope, 0.0);
  EXPECT_LT(system_fit.slope, 0.0);
}

TEST(TrendAnalysis, YearlyMediansCoverRange) {
  const auto corpus = generate_corpus();
  const auto medians = yearly_medians(efficiency_points(corpus));
  ASSERT_GE(medians.size(), 10u);
  for (const YearlyEfficiency& year : medians) {
    EXPECT_GT(year.models, 0u);
    EXPECT_GT(year.median_w_per_100g, 0.0);
  }
}

}  // namespace
}  // namespace joules
