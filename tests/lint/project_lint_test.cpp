// Tests for the joules_lint cross-TU project pass (layer-dag,
// reactor-blocking-call, lock-order). Banned constructs referenced here live
// in .fixture files, which the HEAD scan skips by extension; the pass itself
// is fed FileSource lists directly, so every fixture pins the repo-relative
// path it pretends to live at.
#include "joules_lint/project.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "joules_lint/lint.hpp"
#include "util/atomic_file.hpp"

namespace {

using joules::lint::Config;
using joules::lint::FileSource;
using joules::lint::Finding;
using joules::lint::lint_project;
using joules::lint::load_tree;

std::string load_fixture(const std::string& name) {
  const std::filesystem::path path =
      std::filesystem::path(JOULES_LINT_FIXTURE_DIR) / name;
  const auto contents = joules::read_text_file(path);
  EXPECT_TRUE(contents.has_value()) << "missing fixture " << path;
  return contents.value_or("");
}

// (line, rule) pairs in report order, for compact fixture assertions.
std::vector<std::pair<std::size_t, std::string>> hits(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<std::size_t, std::string>> out;
  out.reserve(findings.size());
  for (const Finding& finding : findings) {
    out.emplace_back(finding.line, finding.rule);
  }
  return out;
}

using Expected = std::vector<std::pair<std::size_t, std::string>>;

// ---------------------------------------------------------------------------
// layer-dag

TEST(LayerDag, BackEdgesAndForeignTreesAreFindings) {
  const std::vector<FileSource> files = {
      {"src/util/bad_layering.hpp",
       load_fixture("layer_dag_violations.fixture")}};
  const auto findings = lint_project(files, {});
  const Expected expected = {{4, "layer-dag"},
                             {5, "layer-dag"},
                             {6, "layer-dag"},
                             {7, "layer-dag"}};
  EXPECT_EQ(hits(findings), expected);
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings[0].message.find("autopower"), std::string::npos);
}

TEST(LayerDag, PragmasSuppressEveryForm) {
  const std::vector<FileSource> files = {
      {"src/util/bad_layering.hpp",
       load_fixture("layer_dag_suppressed.fixture")}};
  EXPECT_TRUE(lint_project(files, {}).empty());
}

TEST(LayerDag, SameLayerAndDownwardIncludesAreClean) {
  const std::vector<FileSource> files = {
      {"src/autopower/fine.hpp",
       "#pragma once\n"
       "#include \"net/socket.hpp\"\n"
       "#include \"autopower/protocol.hpp\"\n"
       "#include \"util/units.hpp\"\n"}};
  EXPECT_TRUE(lint_project(files, {}).empty());
}

TEST(LayerDag, AllowlistCoversAFile) {
  Config config;
  config.allowlist = joules::lint::parse_allowlist(
      "src/util/bad_layering.hpp layer-dag staged refactor, tracked issue\n");
  const std::vector<FileSource> files = {
      {"src/util/bad_layering.hpp",
       load_fixture("layer_dag_violations.fixture")}};
  EXPECT_TRUE(lint_project(files, config).empty());
}

// The scale-tier headers (the federated generator and the streaming trace
// store) sit in the network layer: their real device/model/util includes are
// downward and clean, and a model-layer file reaching *up* into them is a
// finding. Loads the actual tree so a future include added to either header
// re-runs through the DAG here, not just in the whole-repo smoke.
TEST(LayerDag, FederatedAndTraceStoreHeadersRankAsNetworkLayer) {
  const std::filesystem::path root = JOULES_REPO_ROOT;
  std::vector<FileSource> files = load_tree(root, {"src/network"});
  bool saw_federated = false;
  bool saw_trace_store = false;
  for (const FileSource& file : files) {
    saw_federated |= file.path == "src/network/federated.hpp";
    saw_trace_store |= file.path == "src/network/trace_store.hpp";
  }
  EXPECT_TRUE(saw_federated) << "src/network/federated.hpp left the tree?";
  EXPECT_TRUE(saw_trace_store) << "src/network/trace_store.hpp left the tree?";
  EXPECT_TRUE(lint_project(files, {}).empty());

  files.push_back({"src/model/zz_upward.hpp",
                   "#pragma once\n"
                   "#include \"network/federated.hpp\"\n"
                   "#include \"network/trace_store.hpp\"\n"});
  const auto findings = lint_project(files, {});
  const Expected expected = {{2, "layer-dag"}, {3, "layer-dag"}};
  EXPECT_EQ(hits(findings), expected);
}

// ---------------------------------------------------------------------------
// reactor-blocking-call

TEST(ReactorBlocking, ReachableSleepAndRawPollAreFindings) {
  const std::vector<FileSource> files = {
      {"src/net/bad_reactor.cpp", load_fixture("reactor_blocking.fixture")}};
  const auto findings = lint_project(files, {});
  const Expected expected = {{15, "reactor-blocking-call"},
                             {18, "reactor-blocking-call"}};
  ASSERT_EQ(hits(findings), expected);
  // The finding names the reachability chain, not just the line.
  EXPECT_NE(findings[0].message.find("BadReactor::tick"), std::string::npos);
  EXPECT_NE(findings[0].message.find("BadReactor::settle"), std::string::npos);
  EXPECT_NE(findings[0].message.find("sleep_for"), std::string::npos);
  EXPECT_NE(findings[1].message.find("::poll"), std::string::npos);
}

TEST(ReactorBlocking, PragmaSuppressesTheBlockingLine) {
  const std::vector<FileSource> files = {
      {"src/net/quiet_reactor.cpp",
       load_fixture("reactor_blocking_suppressed.fixture")}};
  EXPECT_TRUE(lint_project(files, {}).empty());
}

TEST(ReactorBlocking, UnreachableBlockingCallIsNotAFinding) {
  // The same sleep with no JOULES_REACTOR_CONTEXT root anywhere: blocking
  // code outside reactor paths is legal (clients, tests, blocking helpers).
  const std::vector<FileSource> files = {
      {"src/net/blocking_client.cpp",
       "namespace joules::net {\n"
       "void settle() {\n"
       "  std::this_thread::sleep_for(std::chrono::milliseconds(5));\n"
       "}\n"
       "}  // namespace joules::net\n"}};
  EXPECT_TRUE(lint_project(files, {}).empty());
}

// The acceptance check for the walk itself: grafting a blocking body onto a
// method of the real autopower server must produce a finding, proving the
// rule resolves real roots (Server::run is JOULES_REACTOR_CONTEXT) through
// real call chains — not just fixture-shaped ones.
TEST(ReactorBlocking, RealServerRootsReachInjectedBlockingCode) {
  const std::filesystem::path root = JOULES_REPO_ROOT;
  std::vector<FileSource> files = load_tree(root, {"src"});
  files.push_back({"src/autopower/zz_injected.cpp",
                   "namespace joules::autopower {\n"
                   "void Server::handle_message() {\n"
                   "  ::usleep(5);\n"
                   "}\n"
                   "}  // namespace joules::autopower\n"});
  const auto findings = lint_project(files, {});
  bool found = false;
  for (const Finding& finding : findings) {
    if (finding.file == "src/autopower/zz_injected.cpp" &&
        finding.rule == "reactor-blocking-call") {
      found = true;
      EXPECT_NE(finding.message.find("Server::run"), std::string::npos)
          << finding.message;
    }
  }
  EXPECT_TRUE(found)
      << "the reachability walk never reached Server::handle_message";
}

// ---------------------------------------------------------------------------
// lock-order

TEST(LockOrder, CycleThroughBeforeAndAfterIsAFinding) {
  const std::vector<FileSource> files = {
      {"src/autopower/bad_locks.hpp",
       load_fixture("lock_order_violations.fixture")}};
  const auto findings = lint_project(files, {});
  const Expected expected = {{7, "lock-order"}};
  ASSERT_EQ(hits(findings), expected);
  EXPECT_NE(findings[0].message.find("BadLocks::a_ -> BadLocks::b_"),
            std::string::npos)
      << findings[0].message;
}

TEST(LockOrder, PragmaOnTheAnchorLineSuppresses) {
  const std::vector<FileSource> files = {
      {"src/autopower/quiet_locks.hpp",
       load_fixture("lock_order_suppressed.fixture")}};
  EXPECT_TRUE(lint_project(files, {}).empty());
}

TEST(LockOrder, AcyclicAnnotationsAreClean) {
  const std::vector<FileSource> files = {
      {"src/autopower/fine_locks.hpp",
       "#pragma once\n"
       "#include \"util/thread_annotations.hpp\"\n"
       "namespace joules {\n"
       "class FineLocks {\n"
       " private:\n"
       "  Mutex a_ JOULES_ACQUIRED_BEFORE(b_);\n"
       "  Mutex b_ JOULES_ACQUIRED_BEFORE(c_);\n"
       "  Mutex c_;\n"
       "};\n"
       "}  // namespace joules\n"}};
  EXPECT_TRUE(lint_project(files, {}).empty());
}

// ---------------------------------------------------------------------------
// The DOT dump and the parallel scan are deterministic.

TEST(LayerGraph, DotRenderIsDeterministicAndShaped) {
  const std::filesystem::path root = JOULES_REPO_ROOT;
  const std::vector<FileSource> files = load_tree(root, {"src"});
  const std::string first = joules::lint::render_layer_graph_dot(files);
  const std::string second = joules::lint::render_layer_graph_dot(files);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("digraph joules_layers"), std::string::npos);
  EXPECT_NE(first.find("rank=same"), std::string::npos);
  EXPECT_NE(first.find("\"net\" -> \"util\";"), std::string::npos);
  // Layer ordering in the rank rows: util's row precedes autopower's.
  EXPECT_LT(first.find("\"util\""), first.find("\"autopower\""));
}

TEST(LintTree, JobCountDoesNotChangeTheOutput) {
  const std::filesystem::path root = JOULES_REPO_ROOT;
  const auto allow_text =
      joules::read_text_file(root / "tools/joules_lint/allowlist.txt");
  ASSERT_TRUE(allow_text.has_value());
  Config config;
  config.allowlist = joules::lint::parse_allowlist(*allow_text);
  const auto serial =
      joules::lint::lint_tree(root, {"src", "tools"}, config, 1);
  const auto parallel =
      joules::lint::lint_tree(root, {"src", "tools"}, config, 4);
  EXPECT_EQ(serial.files_scanned, parallel.files_scanned);
  ASSERT_EQ(serial.findings.size(), parallel.findings.size());
  for (std::size_t i = 0; i < serial.findings.size(); ++i) {
    EXPECT_EQ(serial.findings[i].file, parallel.findings[i].file);
    EXPECT_EQ(serial.findings[i].line, parallel.findings[i].line);
    EXPECT_EQ(serial.findings[i].rule, parallel.findings[i].rule);
    EXPECT_EQ(serial.findings[i].message, parallel.findings[i].message);
  }
}

}  // namespace
