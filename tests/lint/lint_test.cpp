// Tests for the determinism lint (tools/joules_lint). Every banned pattern
// referenced here lives inside a string literal or a .fixture file: this
// file is itself scanned by the lint_clean_head ctest entry, and string
// literals are masked before rules run.
#include "joules_lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "util/atomic_file.hpp"

namespace {

using joules::lint::Config;
using joules::lint::Finding;
using joules::lint::lint_source;
using joules::lint::mask_source;

std::string load_fixture(const std::string& name) {
  const std::filesystem::path path =
      std::filesystem::path(JOULES_LINT_FIXTURE_DIR) / name;
  const auto contents = joules::read_text_file(path);
  EXPECT_TRUE(contents.has_value()) << "missing fixture " << path;
  return contents.value_or("");
}

// (line, rule) pairs in report order, for compact fixture assertions.
std::vector<std::pair<std::size_t, std::string>> hits(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<std::size_t, std::string>> out;
  out.reserve(findings.size());
  for (const Finding& finding : findings) {
    out.emplace_back(finding.line, finding.rule);
  }
  return out;
}

std::vector<std::pair<std::size_t, std::string>> lint_fixture(
    const std::string& name) {
  return hits(lint_source("src/sim/" + name + ".cpp", load_fixture(name), {}));
}

using Expected = std::vector<std::pair<std::size_t, std::string>>;

// ---------------------------------------------------------------------------
// Masking: comments, strings, raw strings, and char/digit-separator quirks
// must never leak banned tokens into the scanned code channel.

TEST(MaskSource, CommentsAndStringsAreMasked) {
  const std::string src =
      "int x = 5;  // std::random_device in a comment\n"
      "const char* s = \"std::random_device in a string\";\n";
  const auto masked = mask_source(src);
  ASSERT_EQ(masked.code.size(), 2u);
  EXPECT_EQ(masked.code[0].find("random_device"), std::string::npos);
  EXPECT_EQ(masked.code[1].find("random_device"), std::string::npos);
  EXPECT_NE(masked.comments[0].find("random_device"), std::string::npos);
  EXPECT_TRUE(lint_source("src/sim/masked.cpp", src, {}).empty());
}

TEST(MaskSource, RawStringsAreMasked) {
  const std::string src =
      "const char* s = R\"(std::random_device)\";\n"
      "const char* t = R\"x(srand(1); rand())x\";\n";
  const auto masked = mask_source(src);
  ASSERT_EQ(masked.code.size(), 2u);
  EXPECT_EQ(masked.code[0].find("random_device"), std::string::npos);
  EXPECT_EQ(masked.code[1].find("rand"), std::string::npos);
  EXPECT_TRUE(lint_source("src/sim/raw.cpp", src, {}).empty());
}

TEST(MaskSource, DigitSeparatorIsNotACharLiteral) {
  // If 60'000 opened a char literal, everything after it would be masked
  // and the violation on the same line would be missed.
  const std::string src = "int ms = 60'000; std::random_device rd;\n";
  const auto findings = lint_source("src/sim/sep.cpp", src, {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "random-device");
  EXPECT_EQ(findings[0].line, 1u);
}

TEST(MaskSource, CharLiteralContentsAreMasked) {
  const std::string src = "char c = ':'; std::random_device rd;\n";
  const auto findings = lint_source("src/sim/chr.cpp", src, {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "random-device");
}

TEST(MaskSource, BlockCommentsSpanLines) {
  const std::string src =
      "/* std::random_device\n"
      "   srand(1) still in the comment */ int x = 0;\n";
  EXPECT_TRUE(lint_source("src/sim/blk.cpp", src, {}).empty());
}

// ---------------------------------------------------------------------------
// One fixture per rule family; line numbers are annotated in the fixtures.

TEST(LintRules, RandomSourceFixture) {
  const Expected expected = {{6, "unseeded-rng"},
                             {7, "unseeded-rng"},
                             {9, "random-device"},
                             {14, "libc-rand"},
                             {15, "libc-rand"}};
  EXPECT_EQ(lint_fixture("rng_violations.fixture"), expected);
}

TEST(LintRules, WallClockFixture) {
  const Expected expected = {{5, "wall-clock"},
                             {6, "wall-clock"},
                             {7, "wall-clock"},
                             {8, "wall-clock"}};
  EXPECT_EQ(lint_fixture("clock_violations.fixture"), expected);
}

TEST(LintRules, FloatEqualityFixture) {
  const Expected expected = {{2, "float-equality"},
                             {3, "float-equality"},
                             {4, "float-equality"},
                             {5, "float-equality"}};
  EXPECT_EQ(lint_fixture("float_eq_violations.fixture"), expected);
}

TEST(LintRules, UnstableFloatSortFixture) {
  const Expected expected = {{8, "unstable-float-sort"},
                             {10, "unstable-float-sort"}};
  EXPECT_EQ(lint_fixture("unstable_sort_violations.fixture"), expected);
}

TEST(LintRules, UnorderedIterationFixture) {
  const Expected expected = {{13, "unordered-iteration"},
                             {16, "unordered-iteration"}};
  EXPECT_EQ(lint_fixture("unordered_violations.fixture"), expected);
}

TEST(LintRules, LocaleFormatFixture) {
  const Expected expected = {{8, "locale-format"},
                             {9, "locale-format"},
                             {10, "locale-format"},
                             {11, "locale-format"},
                             {12, "locale-format"}};
  EXPECT_EQ(lint_fixture("locale_violations.fixture"), expected);
}

TEST(LintRules, LocaleConversionOnlyFlaggedInSerializationFiles) {
  // std::to_string alone is allowed in files with no serialization marker.
  const std::string src = "std::string s = std::to_string(v);\n";
  EXPECT_TRUE(lint_source("src/sim/plain.cpp", src, {}).empty());
  const std::string ser =
      "void save_state();\nstd::string s = std::to_string(v);\n";
  const auto findings = lint_source("src/sim/ser.cpp", ser, {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "locale-format");
  EXPECT_EQ(findings[0].line, 2u);
}

// ---------------------------------------------------------------------------
// Suppression pragmas.

TEST(Suppressions, PragmaFixture) {
  // ok1 (same-line pragma) and ok2 (standalone pragma above) are suppressed;
  // bad1 lacks a reason, bad2 names an unknown rule — both yield
  // bad-suppression AND leave the underlying violation unsuppressed.
  const Expected expected = {{7, "bad-suppression"}, {7, "random-device"},
                             {8, "bad-suppression"}, {8, "random-device"},
                             {9, "random-device"}};
  EXPECT_EQ(lint_fixture("suppressions.fixture"), expected);
}

TEST(Suppressions, ReasonSurvivesAsciiAndUnicodeDashes) {
  const std::string ascii =
      "std::random_device rd;  // joules-lint: allow(random-device) -- why\n";
  EXPECT_TRUE(lint_source("src/sim/a.cpp", ascii, {}).empty());
  const std::string colon =
      "std::random_device rd;  // joules-lint: allow(random-device): why\n";
  EXPECT_TRUE(lint_source("src/sim/b.cpp", colon, {}).empty());
}

TEST(Suppressions, StandalonePragmaDoesNotLeakPastNextLine) {
  const std::string src =
      "// joules-lint: allow(random-device) -- only the next line\n"
      "std::random_device a;\n"
      "std::random_device b;\n";
  const auto findings = lint_source("src/sim/leak.cpp", src, {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(Suppressions, PragmaOnlySuppressesNamedRule) {
  const std::string src =
      "std::random_device rd;  // joules-lint: allow(wall-clock) -- wrong rule\n";
  const auto findings = lint_source("src/sim/wrong.cpp", src, {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "random-device");
}

// ---------------------------------------------------------------------------
// Allowlist parsing and application.

TEST(Allowlist, ParsesEntriesAndSkipsComments) {
  const std::string text =
      "# wall-clock sites that do real I/O\n"
      "\n"
      "src/net/socket.cpp wall-clock deadline I/O uses the host clock\n";
  const auto entries = joules::lint::parse_allowlist(text);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].path, "src/net/socket.cpp");
  EXPECT_EQ(entries[0].rule, "wall-clock");
  EXPECT_EQ(entries[0].reason, "deadline I/O uses the host clock");
}

TEST(Allowlist, RejectsMalformedLines) {
  EXPECT_THROW((void)joules::lint::parse_allowlist("src/x.cpp wall-clock"),
               std::invalid_argument);  // no reason
  EXPECT_THROW(
      (void)joules::lint::parse_allowlist("src/x.cpp not-a-rule some reason"),
      std::invalid_argument);  // unknown rule
}

TEST(Allowlist, MatchesExactFileAndDirectoryPrefix) {
  Config config;
  config.allowlist = joules::lint::parse_allowlist(
      "src/net/socket.cpp wall-clock reason one\n"
      "src/net wall-clock reason two\n");
  const std::string clock_src = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint_source("src/net/socket.cpp", clock_src, config).empty());
  EXPECT_TRUE(lint_source("src/net/deep/file.cpp", clock_src, config).empty());
  // "src/net" must not prefix-match "src/network/…".
  EXPECT_EQ(lint_source("src/network/sim.cpp", clock_src, config).size(), 1u);
  // An allowlisted path only covers its named rule.
  const std::string rng_src = "std::random_device rd;\n";
  EXPECT_EQ(lint_source("src/net/socket.cpp", rng_src, config).size(), 1u);
}

// ---------------------------------------------------------------------------
// Rule table, report rendering, and the acceptance-criterion smoke tests.

TEST(RuleTable, AllRulesAreSelfConsistent) {
  for (const auto& rule : joules::lint::rules()) {
    EXPECT_TRUE(joules::lint::is_known_rule(rule.id));
    EXPECT_FALSE(rule.summary.empty());
    EXPECT_FALSE(rule.fix_hint.empty());
  }
  EXPECT_FALSE(joules::lint::is_known_rule("not-a-rule"));
}

TEST(Report, ListsFindingsCountAndFixHints) {
  joules::lint::ScanResult result;
  result.files_scanned = 3;
  result.findings = lint_source("src/device/fan.cpp",
                                std::string("std::random_device rd;\n"), {});
  ASSERT_EQ(result.findings.size(), 1u);
  const std::string report = joules::lint::render_report(result, true);
  EXPECT_NE(report.find("src/device/fan.cpp:1:"), std::string::npos);
  EXPECT_NE(report.find("[random-device]"), std::string::npos);
  EXPECT_NE(report.find("1 finding(s) in 3 file(s) scanned"), std::string::npos);
  EXPECT_NE(report.find("fix hints:"), std::string::npos);
  const std::string quiet =
      joules::lint::render_report(joules::lint::ScanResult{}, true);
  EXPECT_EQ(quiet.find("fix hints:"), std::string::npos);
}

// Mirror of the acceptance criterion: injecting a banned pattern into a
// src/device/ path must produce a finding even under the HEAD allowlist.
TEST(LintTree, InjectedViolationIsCaughtUnderHeadAllowlist) {
  const std::filesystem::path root = JOULES_REPO_ROOT;
  const auto allow_text =
      joules::read_text_file(root / "tools/joules_lint/allowlist.txt");
  ASSERT_TRUE(allow_text.has_value());
  Config config;
  config.allowlist = joules::lint::parse_allowlist(*allow_text);
  const auto findings = lint_source(
      "src/device/fan.cpp", std::string("std::random_device rd;\n"), config);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "random-device");
}

TEST(LintTree, HeadIsClean) {
  const std::filesystem::path root = JOULES_REPO_ROOT;
  const auto allow_text =
      joules::read_text_file(root / "tools/joules_lint/allowlist.txt");
  ASSERT_TRUE(allow_text.has_value());
  Config config;
  config.allowlist = joules::lint::parse_allowlist(*allow_text);
  const auto result = joules::lint::lint_tree(
      root, {"src", "bench", "tools", "tests"}, config);
  EXPECT_GT(result.files_scanned, 100u);
  EXPECT_TRUE(result.findings.empty())
      << joules::lint::render_report(result, false);
}

}  // namespace
