#include "model/power_model.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace joules {
namespace {

// NCS-55A1-24H / QSFP28 / DAC / 100G row of Table 2.
InterfaceProfile ncs_100g_profile() {
  InterfaceProfile p;
  p.key = {PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG100};
  p.port_power_w = 0.32;
  p.trx_in_power_w = 0.02;
  p.trx_up_power_w = 0.19;
  p.energy_per_bit_j = picojoules_to_joules(22);
  p.energy_per_packet_j = nanojoules_to_joules(58);
  p.offset_power_w = 0.37;
  return p;
}

PowerModel make_model() {
  PowerModel model(320.0);
  model.add_profile(ncs_100g_profile());
  return model;
}

InterfaceConfig iface(InterfaceState state) {
  InterfaceConfig c;
  c.name = "eth0";
  c.profile = {PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG100};
  c.state = state;
  return c;
}

TEST(PowerModel, BaseOnlyWhenNoInterfaces) {
  const PowerModel model = make_model();
  const auto prediction = model.predict({});
  EXPECT_DOUBLE_EQ(prediction.total_w(), 320.0);
}

TEST(PowerModel, EmptyInterfaceContributesNothing) {
  const PowerModel model = make_model();
  const std::vector<InterfaceConfig> configs = {iface(InterfaceState::kEmpty)};
  EXPECT_DOUBLE_EQ(model.predict(configs).total_w(), 320.0);
}

TEST(PowerModel, StaticStatesAccumulateCorrectTerms) {
  const PowerModel model = make_model();

  const std::vector<InterfaceConfig> plugged = {iface(InterfaceState::kPlugged)};
  EXPECT_NEAR(model.predict(plugged).total_w(), 320.02, 1e-9);

  const std::vector<InterfaceConfig> enabled = {iface(InterfaceState::kEnabled)};
  EXPECT_NEAR(model.predict(enabled).total_w(), 320.34, 1e-9);

  const std::vector<InterfaceConfig> up = {iface(InterfaceState::kUp)};
  EXPECT_NEAR(model.predict(up).total_w(), 320.53, 1e-9);
}

TEST(PowerModel, InterfaceStaticHelperMatchesPredict) {
  const PowerModel model = make_model();
  const InterfaceConfig up = iface(InterfaceState::kUp);
  EXPECT_NEAR(model.interface_static_w(up),
              model.predict(std::vector{up}).total_w() - 320.0, 1e-12);
}

TEST(PowerModel, DynamicPowerAddsBitPacketAndOffsetTerms) {
  const PowerModel model = make_model();
  const std::vector<InterfaceConfig> configs = {iface(InterfaceState::kUp)};
  const double rate_bps = gbps_to_bps(50);
  const double rate_pps = 4e6;
  const std::vector<InterfaceLoad> loads = {{rate_bps, rate_pps}};
  const auto prediction = model.predict(configs, loads);
  const double expected_dyn =
      22e-12 * rate_bps + 58e-9 * rate_pps + 0.37;
  EXPECT_NEAR(prediction.breakdown.dynamic_w(), expected_dyn, 1e-9);
  EXPECT_NEAR(prediction.total_w(), 320.53 + expected_dyn, 1e-9);
}

TEST(PowerModel, NoDynamicPowerOnDownInterfaces) {
  const PowerModel model = make_model();
  const std::vector<InterfaceConfig> configs = {iface(InterfaceState::kPlugged)};
  const std::vector<InterfaceLoad> loads = {{gbps_to_bps(10), 1e6}};
  const auto prediction = model.predict(configs, loads);
  EXPECT_DOUBLE_EQ(prediction.breakdown.dynamic_w(), 0.0);
}

TEST(PowerModel, LoadsSizeMismatchThrows) {
  const PowerModel model = make_model();
  const std::vector<InterfaceConfig> configs = {iface(InterfaceState::kUp)};
  const std::vector<InterfaceLoad> loads = {{1, 1}, {2, 2}};
  EXPECT_THROW(model.predict(configs, loads), std::invalid_argument);
}

TEST(PowerModel, UnknownProfileReportedNotSilentlyZero) {
  const PowerModel model = make_model();
  InterfaceConfig c = iface(InterfaceState::kUp);
  c.profile.transceiver = TransceiverKind::kFR4;
  c.name = "mystery0";
  const auto prediction = model.predict(std::vector{c});
  ASSERT_EQ(prediction.unmatched_interfaces.size(), 1u);
  EXPECT_EQ(prediction.unmatched_interfaces[0], "mystery0");
  EXPECT_DOUBLE_EQ(prediction.total_w(), 320.0);
}

TEST(PowerModel, RelaxedLookupFallsBackToNearestRate) {
  PowerModel model(100.0);
  InterfaceProfile p25 = ncs_100g_profile();
  p25.key.rate = LineRate::kG25;
  p25.port_power_w = 0.10;
  model.add_profile(p25);
  InterfaceProfile p100 = ncs_100g_profile();
  model.add_profile(p100);

  // 50G not present: should fall back to 25G (nearest lower).
  const ProfileKey want{PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                        LineRate::kG50};
  const InterfaceProfile* hit = model.find_profile_relaxed(want);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->key.rate, LineRate::kG25);

  // 400G not present and no lower-rate sibling missing: falls back to 100G.
  const ProfileKey want400{PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                           LineRate::kG400};
  ASSERT_NE(model.find_profile_relaxed(want400), nullptr);
  EXPECT_EQ(model.find_profile_relaxed(want400)->key.rate, LineRate::kG100);

  // Different transceiver: no fallback.
  const ProfileKey wrong{PortType::kQSFP28, TransceiverKind::kLR4, LineRate::kG100};
  EXPECT_EQ(model.find_profile_relaxed(wrong), nullptr);
}

TEST(PowerModel, PortDownSavingIsPortPlusTrxUpPlusDynamic) {
  const PowerModel model = make_model();
  const ProfileKey key{PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                       LineRate::kG100};
  EXPECT_NEAR(model.port_down_saving_w(key), 0.32 + 0.19, 1e-12);
  const InterfaceLoad load{gbps_to_bps(10), 1e6};
  const double dynamic = 22e-12 * load.rate_bps + 58e-9 * load.rate_pps + 0.37;
  EXPECT_NEAR(model.port_down_saving_w(key, load), 0.51 + dynamic, 1e-9);
}

TEST(PowerModel, BreakdownTransceiverShare) {
  const PowerModel model = make_model();
  const std::vector<InterfaceConfig> configs(24, iface(InterfaceState::kUp));
  const auto prediction = model.predict(configs);
  EXPECT_NEAR(prediction.breakdown.transceiver_w(), 24 * (0.02 + 0.19), 1e-9);
  EXPECT_NEAR(prediction.breakdown.port_w, 24 * 0.32, 1e-9);
}

TEST(PowerModel, ProfileOverwriteReplaces) {
  PowerModel model(10.0);
  InterfaceProfile p = ncs_100g_profile();
  model.add_profile(p);
  p.port_power_w = 1.0;
  model.add_profile(p);
  EXPECT_EQ(model.profile_count(), 1u);
  EXPECT_DOUBLE_EQ(model.find_profile(p.key)->port_power_w, 1.0);
}

}  // namespace
}  // namespace joules
