#include "model/interface_profile.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace joules {
namespace {

TEST(InterfaceProfile, EnumStringRoundTrip) {
  for (const PortType p : {PortType::kSFP, PortType::kSFPPlus, PortType::kQSFP,
                           PortType::kQSFP28, PortType::kQSFPDD, PortType::kRJ45}) {
    EXPECT_EQ(parse_port_type(to_string(p)).value(), p);
  }
  for (const TransceiverKind t :
       {TransceiverKind::kPassiveDAC, TransceiverKind::kSR4, TransceiverKind::kLR,
        TransceiverKind::kLR4, TransceiverKind::kFR4, TransceiverKind::kBaseT}) {
    EXPECT_EQ(parse_transceiver_kind(to_string(t)).value(), t);
  }
  for (const LineRate r : {LineRate::kM100, LineRate::kG1, LineRate::kG10,
                           LineRate::kG25, LineRate::kG40, LineRate::kG50,
                           LineRate::kG100, LineRate::kG400}) {
    EXPECT_EQ(parse_line_rate(to_string(r)).value(), r);
  }
}

TEST(InterfaceProfile, ParseIsCaseInsensitiveAndToleratesPaperTypo) {
  EXPECT_EQ(parse_port_type("qsfp28").value(), PortType::kQSFP28);
  EXPECT_EQ(parse_port_type("QSPF28").value(), PortType::kQSFP28);  // Table 2 typo
  EXPECT_EQ(parse_transceiver_kind("passive dac").value(),
            TransceiverKind::kPassiveDAC);
  EXPECT_FALSE(parse_port_type("bogus").has_value());
  EXPECT_FALSE(parse_line_rate("5G").has_value());
}

TEST(InterfaceProfile, LineRateBps) {
  EXPECT_DOUBLE_EQ(line_rate_bps(LineRate::kG100), 100e9);
  EXPECT_DOUBLE_EQ(line_rate_bps(LineRate::kM100), 100e6);
  EXPECT_DOUBLE_EQ(line_rate_bps(LineRate::kG400), 400e9);
}

TEST(InterfaceProfile, ProfileKeyOrderingAndToString) {
  const ProfileKey a{PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG100};
  const ProfileKey b{PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG25};
  EXPECT_NE(a, b);
  EXPECT_EQ(to_string(a), "QSFP28/Passive DAC/100G");
}

TEST(InterfaceProfile, StaticPowerLevels) {
  InterfaceProfile p;
  p.port_power_w = 0.32;
  p.trx_in_power_w = 0.02;
  p.trx_up_power_w = 0.19;
  EXPECT_DOUBLE_EQ(p.plugged_power_w(), 0.02);
  EXPECT_DOUBLE_EQ(p.enabled_power_w(), 0.34);
  EXPECT_NEAR(p.up_power_w(), 0.53, 1e-12);
}

TEST(InterfaceProfile, DynamicPowerIsZeroWithoutTraffic) {
  InterfaceProfile p;
  p.energy_per_bit_j = picojoules_to_joules(22);
  p.energy_per_packet_j = nanojoules_to_joules(58);
  p.offset_power_w = 0.37;
  EXPECT_DOUBLE_EQ(p.dynamic_power_w(0.0, 0.0), 0.0);
}

TEST(InterfaceProfile, DynamicPowerMatchesPaperArithmetic) {
  // §7: at 5 pJ/bit + 15 nJ/pkt, 100 Gbps of 1500 B packets costs ~0.6 W and
  // of 64 B packets ~3.4 W (offset excluded here).
  InterfaceProfile p;
  p.energy_per_bit_j = picojoules_to_joules(5);
  p.energy_per_packet_j = nanojoules_to_joules(15);
  const double rate_bps = gbps_to_bps(100);
  const double pps_1500 = packet_rate_for_bit_rate(rate_bps, 1500, 0);
  const double pps_64 = packet_rate_for_bit_rate(rate_bps, 64, 0);
  EXPECT_NEAR(p.dynamic_power_w(rate_bps, pps_1500), 0.625, 0.05);
  EXPECT_NEAR(p.dynamic_power_w(rate_bps, pps_64), 3.43, 0.1);
}

TEST(InterfaceProfile, OffsetAppliesWithAnyTraffic) {
  // P_offset is the difference between "almost no traffic" and "no traffic".
  InterfaceProfile p;
  p.offset_power_w = 0.37;
  EXPECT_NEAR(p.dynamic_power_w(1000.0, 1.0), 0.37, 1e-6);
}

}  // namespace
}  // namespace joules
