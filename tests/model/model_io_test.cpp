#include "model/model_io.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace joules {
namespace {

PowerModel sample_model() {
  PowerModel model(320.0);
  InterfaceProfile p;
  p.key = {PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG100};
  p.port_power_w = 0.32;
  p.trx_in_power_w = 0.02;
  p.trx_up_power_w = 0.19;
  p.energy_per_bit_j = picojoules_to_joules(22);
  p.energy_per_packet_j = nanojoules_to_joules(58);
  p.offset_power_w = 0.37;
  model.add_profile(p);
  InterfaceProfile q = p;
  q.key.rate = LineRate::kG25;
  q.port_power_w = 0.10;
  q.trx_up_power_w = 0.08;
  model.add_profile(q);
  return model;
}

TEST(ModelIo, CsvRoundTripPreservesModel) {
  const PowerModel model = sample_model();
  const PowerModel readback = model_from_string(model_to_string(model));
  EXPECT_EQ(readback, model);
}

TEST(ModelIo, EnergiesStoredInPaperUnits) {
  const CsvTable table = model_to_csv(sample_model());
  // Row 0 is the base row; profile rows follow in key order (25G before 100G).
  bool found = false;
  for (std::size_t i = 0; i < table.row_count(); ++i) {
    if (table.cell(i, "row") == "profile" && table.cell(i, "rate") == "100G") {
      EXPECT_NEAR(table.cell_double(i, "E_bit_pJ"), 22.0, 1e-9);
      EXPECT_NEAR(table.cell_double(i, "E_pkt_nJ"), 58.0, 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ModelIo, NegativeParametersSurviveRoundTrip) {
  // Table 2(b) has P_trx,up = -0.06 W; Table 6(b) has P_offset = -0.03 W.
  PowerModel model(285.0);
  InterfaceProfile p;
  p.key = {PortType::kQSFP28, TransceiverKind::kLR, LineRate::kG100};
  p.trx_up_power_w = -0.06;
  p.offset_power_w = -0.43;
  model.add_profile(p);
  const PowerModel readback = model_from_string(model_to_string(model));
  EXPECT_DOUBLE_EQ(readback.find_profile(p.key)->trx_up_power_w, -0.06);
  EXPECT_DOUBLE_EQ(readback.find_profile(p.key)->offset_power_w, -0.43);
}

TEST(ModelIo, MalformedRowKindThrows) {
  CsvTable table({"row", "port", "transceiver", "rate", "P_base_W", "P_port_W",
                  "P_trx_in_W", "P_trx_up_W", "E_bit_pJ", "E_pkt_nJ",
                  "P_offset_W"});
  table.add_row({"garbage", "", "", "", "1", "", "", "", "", "", ""});
  EXPECT_THROW(model_from_csv(table), std::invalid_argument);
}

TEST(ModelIo, MalformedProfileKeyThrows) {
  CsvTable table({"row", "port", "transceiver", "rate", "P_base_W", "P_port_W",
                  "P_trx_in_W", "P_trx_up_W", "E_bit_pJ", "E_pkt_nJ",
                  "P_offset_W"});
  table.add_row({"profile", "NOTAPORT", "LR", "100G", "", "1", "1", "1", "1",
                 "1", "1"});
  EXPECT_THROW(model_from_csv(table), std::invalid_argument);
}

TEST(ModelIo, RenderedTableMentionsDeviceAndColumns) {
  const std::string text = render_model_table("NCS-55A1-24H", sample_model());
  EXPECT_NE(text.find("NCS-55A1-24H"), std::string::npos);
  EXPECT_NE(text.find("E_bit[pJ]"), std::string::npos);
  EXPECT_NE(text.find("P_trx,in[W]"), std::string::npos);
}

}  // namespace
}  // namespace joules
