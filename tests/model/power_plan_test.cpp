// PowerPlan's contract is bit-identity with PowerModel::predict: the
// columnar kernel is a pure layout change, never an arithmetic one. The
// property sweep here hammers that over randomized models, configurations,
// states, and loads — including unmatched profiles, empty states, zero
// loads, and relaxed-rate fallbacks — comparing every breakdown field with
// EXPECT_EQ (exact bits, not tolerances).
#include "model/power_plan.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "model/power_model.hpp"
#include "util/rng.hpp"

namespace joules {
namespace {

constexpr int kPortTypes = 6;
constexpr int kTransceiverKinds = 7;
constexpr int kLineRates = 8;

ProfileKey random_key(Rng& rng) {
  return {static_cast<PortType>(rng.uniform_int(0, kPortTypes - 1)),
          static_cast<TransceiverKind>(rng.uniform_int(0, kTransceiverKinds - 1)),
          static_cast<LineRate>(rng.uniform_int(0, kLineRates - 1))};
}

PowerModel random_model(Rng& rng) {
  PowerModel model(rng.uniform(50.0, 600.0));
  const std::int64_t profiles = rng.uniform_int(1, 12);
  for (std::int64_t p = 0; p < profiles; ++p) {
    InterfaceProfile profile;
    profile.key = random_key(rng);
    profile.port_power_w = rng.uniform(0.0, 1.5);
    profile.trx_in_power_w = rng.uniform(0.0, 5.0);
    profile.trx_up_power_w = rng.uniform(0.0, 1.0);
    profile.energy_per_bit_j = rng.uniform(0.0, 40e-12);
    profile.energy_per_packet_j = rng.uniform(0.0, 80e-9);
    profile.offset_power_w = rng.uniform(0.0, 0.6);
    model.add_profile(profile);
  }
  return model;
}

std::vector<InterfaceConfig> random_configs(Rng& rng) {
  std::vector<InterfaceConfig> configs(
      static_cast<std::size_t>(rng.uniform_int(0, 48)));
  for (std::size_t i = 0; i < configs.size(); ++i) {
    configs[i].name = "rand-" + std::to_string(i);
    configs[i].profile = random_key(rng);
    configs[i].state =
        static_cast<InterfaceState>(rng.uniform_int(0, 3));  // kEmpty..kUp
  }
  return configs;
}

std::vector<InterfaceLoad> random_loads(Rng& rng, std::size_t count) {
  std::vector<InterfaceLoad> loads(count);
  for (InterfaceLoad& load : loads) {
    if (rng.chance(0.25)) continue;  // exact zero (the skipped-load branch)
    load.rate_bps = rng.uniform(0.0, 100e9);
    load.rate_pps = rng.uniform(0.0, 20e6);
  }
  return loads;
}

void expect_bitwise_equal(const PowerBreakdown& plan_value,
                          const PowerBreakdown& predict_value) {
  EXPECT_EQ(plan_value.base_w, predict_value.base_w);
  EXPECT_EQ(plan_value.port_w, predict_value.port_w);
  EXPECT_EQ(plan_value.trx_in_w, predict_value.trx_in_w);
  EXPECT_EQ(plan_value.trx_up_w, predict_value.trx_up_w);
  EXPECT_EQ(plan_value.offset_w, predict_value.offset_w);
  EXPECT_EQ(plan_value.bit_w, predict_value.bit_w);
  EXPECT_EQ(plan_value.pkt_w, predict_value.pkt_w);
  EXPECT_EQ(plan_value.total_w(), predict_value.total_w());
}

TEST(PowerPlanProperty, EvaluateIsBitIdenticalToPredict) {
  Rng rng(20260807);
  for (int round = 0; round < 300; ++round) {
    const PowerModel model = random_model(rng);
    const std::vector<InterfaceConfig> configs = random_configs(rng);
    const PowerPlan plan = PowerPlan::compile(model, configs);
    const std::vector<InterfaceLoad> loads = random_loads(rng, configs.size());

    const PowerModel::Prediction loaded = model.predict(configs, loads);
    expect_bitwise_equal(plan.evaluate(loads), loaded.breakdown);
    EXPECT_EQ(plan.total_w(loads), loaded.total_w());
    EXPECT_EQ(plan.unmatched(), loaded.unmatched_interfaces);

    const PowerModel::Prediction unloaded = model.predict(configs);
    expect_bitwise_equal(plan.evaluate({}), unloaded.breakdown);
  }
}

TEST(PowerPlan, ThrowsOnLoadsSizeMismatchLikePredict) {
  Rng rng(7);
  const PowerModel model = random_model(rng);
  std::vector<InterfaceConfig> configs = random_configs(rng);
  while (configs.empty()) configs = random_configs(rng);
  const PowerPlan plan = PowerPlan::compile(model, configs);
  const std::vector<InterfaceLoad> wrong(configs.size() + 1);
  EXPECT_THROW(static_cast<void>(plan.evaluate(wrong)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(model.predict(configs, wrong)),
               std::invalid_argument);
}

TEST(PowerPlan, RecordsUnmatchedInterfacesInConfigOrder) {
  PowerModel model(100.0);  // no profiles: everything non-empty is unmatched
  std::vector<InterfaceConfig> configs(3);
  configs[0] = {"a", {PortType::kSFP, TransceiverKind::kLR, LineRate::kG1},
                InterfaceState::kUp};
  configs[1] = {"b", {PortType::kSFP, TransceiverKind::kLR, LineRate::kG1},
                InterfaceState::kEmpty};
  configs[2] = {"c", {PortType::kRJ45, TransceiverKind::kBaseT, LineRate::kG1},
                InterfaceState::kPlugged};
  const PowerPlan plan = PowerPlan::compile(model, configs);
  EXPECT_FALSE(plan.complete());
  ASSERT_EQ(plan.unmatched().size(), 2u);
  EXPECT_EQ(plan.unmatched()[0], "a");
  EXPECT_EQ(plan.unmatched()[1], "c");
  // kEmpty never counts as unmatched, matching predict.
  const auto prediction = model.predict(configs);
  EXPECT_EQ(plan.unmatched(), prediction.unmatched_interfaces);
}

TEST(PowerPlan, CapturesModelRevision) {
  Rng rng(11);
  PowerModel model = random_model(rng);
  const std::vector<InterfaceConfig> configs = random_configs(rng);
  const PowerPlan plan = PowerPlan::compile(model, configs);
  EXPECT_EQ(plan.model_revision(), model.revision());
  model.set_base_power_w(model.base_power_w() + 1.0);
  EXPECT_NE(plan.model_revision(), model.revision());
}

TEST(PowerModelRevision, BumpedByMutatorsIgnoredByEquality) {
  PowerModel a(100.0);
  const std::uint64_t before = a.revision();
  InterfaceProfile profile;
  profile.key = {PortType::kSFP, TransceiverKind::kLR, LineRate::kG1};
  a.add_profile(profile);
  EXPECT_GT(a.revision(), before);

  PowerModel b(100.0);
  b.add_profile(profile);
  b.add_profile(profile);  // extra mutation: different revision, same value
  EXPECT_NE(a.revision(), b.revision());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace joules
