#include "model/datasheet_model.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace joules {
namespace {

TEST(DatasheetLinearModel, InterpolatesBetweenIdleAndMax) {
  const DatasheetLinearModel model(300.0, 500.0, gbps_to_bps(1000));
  EXPECT_DOUBLE_EQ(model.predict_w(0.0), 300.0);
  EXPECT_DOUBLE_EQ(model.predict_w(gbps_to_bps(500)), 400.0);
  EXPECT_DOUBLE_EQ(model.predict_w(gbps_to_bps(1000)), 500.0);
}

TEST(DatasheetLinearModel, ClampsAboveCapacity) {
  const DatasheetLinearModel model(300.0, 500.0, gbps_to_bps(1000));
  EXPECT_DOUBLE_EQ(model.predict_w(gbps_to_bps(2000)), 500.0);
  EXPECT_DOUBLE_EQ(model.predict_w(-5.0), 300.0);
}

TEST(DatasheetLinearModel, ValidatesParameters) {
  EXPECT_THROW(DatasheetLinearModel(-1, 100, 1e9), std::invalid_argument);
  EXPECT_THROW(DatasheetLinearModel(200, 100, 1e9), std::invalid_argument);
  EXPECT_THROW(DatasheetLinearModel(100, 200, 0), std::invalid_argument);
}

TEST(DatasheetLinearModel, FromRecordUsesTypicalAndMax) {
  DatasheetRecord record;
  record.typical_power_w = 600;
  record.max_power_w = 715;
  record.max_bandwidth_gbps = 2400;
  const auto model = DatasheetLinearModel::from_record(record);
  ASSERT_TRUE(model.has_value());
  EXPECT_DOUBLE_EQ(model->idle_power_w(), 600);
  EXPECT_DOUBLE_EQ(model->max_power_w(), 715);
  EXPECT_DOUBLE_EQ(model->max_bandwidth_bps(), 2.4e12);
}

TEST(DatasheetLinearModel, FromRecordFallsBackToPortsAndScaledMax) {
  DatasheetRecord record;
  record.typical_power_w = 100;
  record.ports.push_back({24, 10.0, "SFP+"});
  const auto model = DatasheetLinearModel::from_record(record);
  ASSERT_TRUE(model.has_value());
  EXPECT_DOUBLE_EQ(model->max_bandwidth_bps(), 240e9);
  EXPECT_DOUBLE_EQ(model->max_power_w(), 150.0);  // 1.5x typical
}

TEST(DatasheetLinearModel, FromRecordRejectsUnusableRecords) {
  DatasheetRecord no_power;
  no_power.max_bandwidth_gbps = 100;
  EXPECT_FALSE(DatasheetLinearModel::from_record(no_power).has_value());

  DatasheetRecord no_bandwidth;
  no_bandwidth.typical_power_w = 100;
  EXPECT_FALSE(DatasheetLinearModel::from_record(no_bandwidth).has_value());

  DatasheetRecord inverted;
  inverted.typical_power_w = 300;
  inverted.max_power_w = 200;
  inverted.max_bandwidth_gbps = 100;
  EXPECT_FALSE(DatasheetLinearModel::from_record(inverted).has_value());
}

TEST(DatasheetLinearModel, GrosslyOverestimatesLightlyLoadedRouters) {
  // The §2/§3 critique in one assertion: at Switch-like 2 % utilization the
  // baseline predicts essentially the (inflated) "typical" datasheet number,
  // while the real router draws far less — e.g. the NCS-55A1-24H's 358 W
  // median vs its 600 W typical.
  const DatasheetLinearModel model(600.0, 715.0, gbps_to_bps(2400));
  const double at_2pct = model.predict_w(gbps_to_bps(48));
  EXPECT_GT(at_2pct, 600.0);
  EXPECT_GT(at_2pct, 358.0 * 1.5);
}

}  // namespace
}  // namespace joules
