// The lab notebook: every experiment run is recorded and exportable, and a
// full derivation is reproducible from the same seed (seed-sensitivity
// property).
#include <gtest/gtest.h>

#include "device/catalog.hpp"
#include "netpowerbench/derivation.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

OrchestratorOptions fast_lab() {
  OrchestratorOptions options;
  options.start_time = make_time(2025, 2, 1);
  options.settle_s = 30;
  options.measure_s = 120;
  options.repeats = 1;
  return options;
}

const ProfileKey kDac100{PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                         LineRate::kG100};

TEST(LabNotebook, RecordsEveryExperimentInOrder) {
  SimulatedRouter dut(find_router_spec("NCS-55A1-24H").value(), 1);
  Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, 2), fast_lab());
  (void)orchestrator.run_base();
  (void)orchestrator.run_idle(kDac100, 12);
  (void)orchestrator.run_port(kDac100, 6);
  (void)orchestrator.run_trx(kDac100, 6);
  (void)orchestrator.run_snake(kDac100, 12, make_cbr(gbps_to_bps(40), 512));

  const auto& history = orchestrator.history();
  ASSERT_EQ(history.size(), 5u);
  EXPECT_EQ(history[0].kind, ExperimentKind::kBase);
  EXPECT_EQ(history[1].kind, ExperimentKind::kIdle);
  EXPECT_EQ(history[1].pairs, 12u);
  EXPECT_EQ(history[2].kind, ExperimentKind::kPort);
  EXPECT_EQ(history[2].pairs, 6u);
  EXPECT_EQ(history[3].kind, ExperimentKind::kTrx);
  EXPECT_EQ(history[4].kind, ExperimentKind::kSnake);
  EXPECT_DOUBLE_EQ(history[4].offered_rate_bps, gbps_to_bps(40));
  EXPECT_DOUBLE_EQ(history[4].frame_bytes, 512);
  // Monotone lab clock.
  for (std::size_t i = 1; i < history.size(); ++i) {
    EXPECT_GT(history[i].started_at, history[i - 1].started_at);
  }
}

TEST(LabNotebook, CsvExportMatchesHistory) {
  SimulatedRouter dut(find_router_spec("NCS-55A1-24H").value(), 3);
  Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, 4), fast_lab());
  (void)orchestrator.run_base();
  (void)orchestrator.run_snake(kDac100, 12, make_cbr(gbps_to_bps(80), 1500));

  const CsvTable csv = orchestrator.history_csv();
  ASSERT_EQ(csv.row_count(), 2u);
  EXPECT_EQ(csv.cell(0, "experiment"), "Base");
  EXPECT_EQ(csv.cell(1, "experiment"), "Snake");
  EXPECT_NEAR(csv.cell_double(1, "offered_rate_gbps"), 80.0, 1e-9);
  EXPECT_NEAR(csv.cell_double(1, "frame_bytes"), 1500.0, 1e-9);
  EXPECT_GT(csv.cell_double(0, "mean_power_w"), 100.0);
}

TEST(LabNotebook, FullDerivationLeavesAuditableTrail) {
  SimulatedRouter dut(find_router_spec("NCS-55A1-24H").value(), 5);
  Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, 6), fast_lab());
  (void)derive_power_model(orchestrator, {kDac100});
  // 1 base + 1 idle + ladder port + ladder trx + rates x frames snakes.
  EXPECT_GT(orchestrator.history().size(), 20u);
  std::size_t snakes = 0;
  for (const auto& entry : orchestrator.history()) {
    if (entry.kind == ExperimentKind::kSnake) ++snakes;
  }
  EXPECT_EQ(snakes, 6u * 6u);  // default 6 rates x 6 frame sizes
}

TEST(SeedSensitivity, SameSeedSameDerivation) {
  auto derive_once = [](std::uint64_t seed) {
    SimulatedRouter dut(find_router_spec("NCS-55A1-24H").value(), seed);
    Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, seed + 1),
                              fast_lab());
    return derive_power_model(orchestrator, {kDac100});
  };
  const DerivedModel a = derive_once(42);
  const DerivedModel b = derive_once(42);
  EXPECT_EQ(a.model, b.model);
  EXPECT_DOUBLE_EQ(a.base_power_w, b.base_power_w);
}

TEST(SeedSensitivity, DifferentUnitsDifferWithinEnvelope) {
  // Different physical units (different seeds) must give *similar* models —
  // parameters spread by PSU unit variation and noise, not wildly.
  std::vector<double> port_values;
  for (std::uint64_t seed = 100; seed < 105; ++seed) {
    SimulatedRouter dut(find_router_spec("NCS-55A1-24H").value(), seed);
    Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, seed + 1),
                              fast_lab());
    const DerivedModel derived = derive_power_model(orchestrator, {kDac100});
    port_values.push_back(derived.model.find_profile(kDac100)->port_power_w);
  }
  for (const double value : port_values) {
    EXPECT_GT(value, 0.22);  // truth 0.32, wall-scaled ~0.35
    EXPECT_LT(value, 0.50);
  }
}

}  // namespace
}  // namespace joules
