// The fault matrix: seeded bench faults demonstrating the campaign layer's
// acceptance criteria end to end —
//   (a) disturbed windows are detected, retried, and excluded;
//   (b) a campaign killed mid-run resumes from its checkpoint with no
//       duplicated or lost runs, faults included;
//   (c) robust coefficients under faults stay within the clean-bench
//       envelope while the naive bench's measurably do not.
// These run longer than the unit suites and carry the `faultmatrix` ctest
// label so CI can schedule them (with per-test timeouts) separately.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "device/catalog.hpp"
#include "netpowerbench/campaign.hpp"
#include "netpowerbench/derivation.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

namespace fs = std::filesystem;

const ProfileKey kDac100{PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                         LineRate::kG100};

OrchestratorOptions fast_lab() {
  OrchestratorOptions options;
  options.start_time = make_time(2025, 2, 1);
  options.settle_s = 30;
  options.measure_s = 120;
  options.repeats = 2;
  return options;
}

CampaignOptions fast_campaign(fs::path checkpoint = {}) {
  CampaignOptions options;
  options.lab = fast_lab();
  options.checkpoint_path = std::move(checkpoint);
  return options;
}

DerivationOptions small_battery() {
  DerivationOptions options;
  options.pair_ladder = {4, 12};
  options.frame_sizes = {256, 1500};
  options.rate_steps = 2;
  return options;
}

// The full §5.2 battery scripted with one fault of every family that the
// robust gates must catch: a meter spike, a NaN reading, a stuck channel, a
// dropout, and a DUT reboot. (OS updates persist beyond their window by
// design — Fig. 8 — so they are exercised separately below.)
BenchFaultPlan scripted_matrix() {
  return BenchFaultPlan()
      .meter_spike(ExperimentKind::kIdle, 0, 0.4, 450.0, 4)
      .meter_nan(ExperimentKind::kPort, 1, 0.5)
      .meter_stuck(ExperimentKind::kTrx, 0, 0.3, 0.4)
      .meter_dropout(ExperimentKind::kSnake, 2, 0.2, 0.5)
      .dut_reboot(ExperimentKind::kTrx, 3, 0.4, 45);
}

struct TempFile {
  explicit TempFile(const char* name)
      : path(fs::temp_directory_path() / name) {
    fs::remove(path);
  }
  ~TempFile() { fs::remove(path); }
  fs::path path;
};

DerivedModel derive_clean(std::uint64_t seed) {
  SimulatedRouter dut(find_router_spec("NCS-55A1-24H").value(), seed);
  Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, seed + 1),
                            fast_lab());
  return derive_power_model(orchestrator, {kDac100}, small_battery());
}

// (a) Disturbed windows are detected, retried within the budget, and what
// stays dirty is excluded rather than averaged.
TEST(FaultMatrix, DisturbedWindowsDetectedRetriedAndExcluded) {
  SimulatedRouter dut(find_router_spec("NCS-55A1-24H").value(), 101);
  Campaign campaign(dut, PowerMeter(PowerMeterSpec{}, 102), fast_campaign());
  campaign.set_fault_plan(scripted_matrix());
  const DerivedModel derived =
      derive_power_model(campaign, {kDac100}, small_battery());

  const CampaignStats& stats = campaign.stats();
  EXPECT_EQ(stats.faults.windows_faulted, 5u);
  // Sample-level faults (spike, NaN) recover by rejection; window-level
  // faults (stuck, dropout, reboot) force re-measurement.
  EXPECT_GT(stats.samples_rejected, 0u);
  EXPECT_GE(stats.windows_retried, 3u);
  EXPECT_EQ(stats.windows_discarded, 0u);  // budget of 2 covers one bad window

  // Every faulted run is flagged, nothing silently averaged a disturbance.
  std::size_t recovered = 0;
  for (const HistoryEntry& entry : campaign.history()) {
    EXPECT_NE(entry.measurement.quality, WindowQuality::kDisturbed);
    if (entry.measurement.quality == WindowQuality::kRecovered) ++recovered;
  }
  EXPECT_GE(recovered, 5u);
  ASSERT_EQ(derived.derivations.size(), 1u);
  EXPECT_EQ(derived.derivations[0].quality.overall(), TermConfidence::kReduced);
}

// A fault the budget cannot absorb: the run is marked disturbed, its garbage
// is excluded from the fits, and the affected terms degrade honestly.
TEST(FaultMatrix, BudgetExhaustionDegradesToPartialModel) {
  // Reboot every Idle window this short battery can reach: retries included.
  BenchFaultPlan plan;
  for (std::uint64_t window = 0; window < 8; ++window) {
    plan.dut_reboot(ExperimentKind::kIdle, window, 0.3, 50);
  }
  SimulatedRouter dut(find_router_spec("NCS-55A1-24H").value(), 111);
  Campaign campaign(dut, PowerMeter(PowerMeterSpec{}, 112), fast_campaign());
  campaign.set_fault_plan(plan);
  const DerivedModel derived =
      derive_power_model(campaign, {kDac100}, small_battery());

  EXPECT_GT(campaign.stats().windows_discarded, 0u);
  ASSERT_EQ(derived.derivations.size(), 1u);
  const ProfileDerivation& derivation = derived.derivations[0];
  // Idle feeds Eq. 8: P_trx,in is not estimable and must be zeroed, not
  // fabricated; the downstream unpicking (Eq. 9/10) degrades with it.
  EXPECT_EQ(derivation.quality.trx_in, TermConfidence::kLow);
  EXPECT_DOUBLE_EQ(derivation.profile.trx_in_power_w, 0.0);
  EXPECT_EQ(derivation.quality.trx_up, TermConfidence::kLow);
  // Terms fed by clean experiments keep their confidence.
  EXPECT_EQ(derivation.quality.energy, TermConfidence::kHigh);
  EXPECT_FALSE(std::isnan(derivation.profile.energy_per_bit_j));
}

// (b) Kill the campaign mid-battery — faults in flight — and resume: the
// merged history equals the uninterrupted run's, bit for bit.
TEST(FaultMatrix, ResumeUnderFaultsLosesAndDuplicatesNothing) {
  const RouterSpec spec = find_router_spec("NCS-55A1-24H").value();
  TempFile checkpoint("joules_fault_matrix_resume.csv");

  SimulatedRouter reference_dut(spec, 121);
  Campaign reference(reference_dut, PowerMeter(PowerMeterSpec{}, 122),
                     fast_campaign());
  reference.set_fault_plan(scripted_matrix());
  const DerivedModel expected =
      derive_power_model(reference, {kDac100}, small_battery());

  {
    SimulatedRouter dut(spec, 121);
    Campaign killed(dut, PowerMeter(PowerMeterSpec{}, 122),
                    fast_campaign(checkpoint.path));
    killed.set_fault_plan(scripted_matrix());
    // Die partway through the ladder: after Base, Idle, and one Port run.
    (void)killed.run_base();
    (void)killed.run_idle(kDac100, 12);
    (void)killed.run_port(kDac100, 4);
  }

  SimulatedRouter dut(spec, 121);
  Campaign resumed(dut, PowerMeter(PowerMeterSpec{}, 122),
                   fast_campaign(checkpoint.path));
  resumed.set_fault_plan(scripted_matrix());
  EXPECT_EQ(resumed.pending_replays(), 3u);
  const DerivedModel derived =
      derive_power_model(resumed, {kDac100}, small_battery());

  EXPECT_EQ(resumed.stats().runs_replayed, 3u);
  EXPECT_EQ(expected.model, derived.model);
  ASSERT_EQ(reference.history().size(), resumed.history().size());
  for (std::size_t i = 0; i < reference.history().size(); ++i) {
    EXPECT_EQ(reference.history()[i].started_at,
              resumed.history()[i].started_at);
    EXPECT_EQ(reference.history()[i].measurement,
              resumed.history()[i].measurement);
  }
}

// (c) Under the fault matrix, robust coefficients stay inside the clean-bench
// envelope; the naive bench's are measurably poisoned.
TEST(FaultMatrix, RobustCoefficientsSurviveFaultsNaiveOnesDoNot) {
  const RouterSpec spec = find_router_spec("NCS-55A1-24H").value();

  // Clean-bench confidence interval: the spread over several physical units
  // (cf. SeedSensitivity.DifferentUnitsDifferWithinEnvelope), widened to a
  // generous +-3 W band around the clean value for the idle-derived term.
  const DerivedModel clean = derive_clean(131);
  const InterfaceProfile clean_profile = *clean.model.find_profile(kDac100);

  // Same physical unit, same fault plan, two benches.
  const BenchFaultPlan plan = scripted_matrix();
  SimulatedRouter naive_dut(spec, 131);
  Orchestrator naive_bench(naive_dut, PowerMeter(PowerMeterSpec{}, 132),
                           fast_lab());
  naive_bench.set_fault_plan(plan);
  const DerivedModel naive =
      derive_power_model(naive_bench, {kDac100}, small_battery());

  SimulatedRouter robust_dut(spec, 131);
  Campaign robust_bench(robust_dut, PowerMeter(PowerMeterSpec{}, 132),
                        fast_campaign());
  robust_bench.set_fault_plan(plan);
  const DerivedModel robust =
      derive_power_model(robust_bench, {kDac100}, small_battery());
  const InterfaceProfile robust_profile = *robust.model.find_profile(kDac100);
  const InterfaceProfile naive_profile = *naive.model.find_profile(kDac100);

  // Robust: within the clean envelope everywhere the paper's Table 2 cares.
  EXPECT_NEAR(robust.base_power_w, clean.base_power_w, 3.0);
  EXPECT_NEAR(robust_profile.trx_in_power_w, clean_profile.trx_in_power_w, 0.2);
  EXPECT_GT(robust_profile.port_power_w, 0.22);
  EXPECT_LT(robust_profile.port_power_w, 0.50);
  EXPECT_NEAR(robust_profile.port_power_w, clean_profile.port_power_w, 0.1);
  EXPECT_NEAR(robust_profile.trx_up_power_w, clean_profile.trx_up_power_w, 0.2);

  // Naive: the spiked Idle window alone shifts P_Idle by 450*4/240 = 7.5 W,
  // i.e. P_trx,in by ~0.3 W (~double its truth); the NaN Port reading turns
  // the Port fit to NaN; the rebooted Trx window craters a ladder point by
  // hundreds of watts. None of the poisoned terms lands inside the clean
  // envelope (NaN fails every comparison, which is the point).
  EXPECT_GT(std::fabs(naive_profile.trx_in_power_w -
                      clean_profile.trx_in_power_w),
            0.25);
  EXPECT_FALSE(naive_profile.port_power_w > 0.22 &&
               naive_profile.port_power_w < 0.50);
  EXPECT_FALSE(std::fabs(naive_profile.trx_up_power_w -
                         clean_profile.trx_up_power_w) < 1.0);
}

// OS updates persist past their window (Fig. 8): the steadiness gate catches
// the stepped window, the retry measures the *new* plateau, and the campaign
// carries on — the documented behavior for persistent DUT state changes.
TEST(FaultMatrix, OsUpdateMidWindowIsCaughtByTheSteadinessGate) {
  const RouterSpec spec = find_router_spec("8201-32FH").value();
  SimulatedRouter dut(spec, 141);
  Campaign campaign(dut, PowerMeter(PowerMeterSpec{}, 142), fast_campaign());
  campaign.set_fault_plan(
      BenchFaultPlan().dut_os_update(ExperimentKind::kBase, 0, 0.5));
  const Measurement base = campaign.run_base();
  // The fan-policy bump on this model is ~45 W: impossible to miss.
  EXPECT_EQ(base.quality, WindowQuality::kRecovered);
  EXPECT_GE(campaign.stats().windows_retried, 1u);
}

// Randomized soak: seeded probabilistic disturbance over the whole battery
// still yields a flagged, finite, within-envelope model.
TEST(FaultMatrix, RandomDisturbanceSoak) {
  SimulatedRouter dut(find_router_spec("NCS-55A1-24H").value(), 151);
  CampaignOptions options = fast_campaign();
  options.retry_budget = 4;
  Campaign campaign(dut, PowerMeter(PowerMeterSpec{}, 152), options);
  campaign.set_fault_plan(BenchFaultPlan(77).disturb_randomly(0.25));
  const DerivedModel derived =
      derive_power_model(campaign, {kDac100}, small_battery());

  EXPECT_GT(campaign.stats().faults.windows_faulted, 0u);
  const InterfaceProfile& profile = *derived.model.find_profile(kDac100);
  EXPECT_TRUE(std::isfinite(profile.port_power_w));
  EXPECT_TRUE(std::isfinite(profile.energy_per_bit_j));
  EXPECT_GT(derived.base_power_w, 100.0);
  // Whatever the dice did, nothing disturbed leaked into the model unflagged.
  for (const HistoryEntry& entry : campaign.history()) {
    if (entry.measurement.quality == WindowQuality::kDisturbed) {
      EXPECT_GT(entry.measurement.rejected_count, 0u);
    }
  }
}

}  // namespace
}  // namespace joules
