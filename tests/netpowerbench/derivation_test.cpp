// The central methodology test: run the full §5 battery against simulated
// DUTs and check the recovered parameters against the hidden ground truth.
//
// Derived parameters describe *wall* power, so static/dynamic terms come out
// scaled by the DUT's marginal conversion efficiency (~1/0.9 for a good PSU).
// The assertions below allow for that scaling plus measurement noise.
#include <gtest/gtest.h>

#include <cmath>

#include "device/catalog.hpp"
#include "netpowerbench/derivation.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

OrchestratorOptions fast_lab() {
  OrchestratorOptions options;
  options.start_time = make_time(2025, 2, 1);
  options.settle_s = 60;
  options.measure_s = 600;
  options.repeats = 2;
  return options;
}

TEST(Derivation, RecoversNcs55a1ParametersWithinWallScaling) {
  RouterSpec spec = find_router_spec("NCS-55A1-24H").value();
  SimulatedRouter dut(spec, 1001);
  Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, 2001), fast_lab());

  const ProfileKey dac100{PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                          LineRate::kG100};
  const DerivedModel derived = derive_power_model(orchestrator, {dac100});

  // P_base: truth DC base 320 + fan 6 + cp ~3 ~= 329 DC, /0.90-0.95 wall —
  // right around the paper's 358 W measured median for this model.
  EXPECT_NEAR(derived.base_power_w, 357.0, 12.0);

  const InterfaceProfile* p = derived.model.find_profile(dac100);
  ASSERT_NE(p, nullptr);
  // Truth P_port = 0.32 (DC); wall-scaled ~0.34.
  EXPECT_NEAR(p->port_power_w, 0.34, 0.08);
  // Truth P_trx,in = 0.02.
  EXPECT_NEAR(p->trx_in_power_w, 0.02, 0.03);
  // Truth P_trx,up = 0.19.
  EXPECT_NEAR(p->trx_up_power_w, 0.20, 0.08);
  // Truth E_bit = 22 pJ.
  EXPECT_NEAR(joules_to_picojoules(p->energy_per_bit_j), 23.5, 3.0);
  // Truth E_pkt = 58 nJ.
  EXPECT_NEAR(joules_to_nanojoules(p->energy_per_packet_j), 62.0, 10.0);
  // Truth P_offset = 0.37.
  EXPECT_NEAR(p->offset_power_w, 0.40, 0.15);
}

TEST(Derivation, RegressionQualityIsHigh) {
  RouterSpec spec = find_router_spec("NCS-55A1-24H").value();
  SimulatedRouter dut(spec, 1002);
  Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, 2002), fast_lab());
  const ProfileKey dac100{PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                          LineRate::kG100};
  const Measurement base = orchestrator.run_base();
  const ProfileDerivation derivation =
      derive_profile(orchestrator, dac100, base.mean_power_w);

  EXPECT_GT(derivation.port_fit.r_squared, 0.95);
  EXPECT_GT(derivation.trx_fit.r_squared, 0.95);
  for (const auto& [frame, fit] : derivation.alpha_fits) {
    EXPECT_GT(fit.r_squared, 0.99) << "frame " << frame;
  }
  EXPECT_GT(derivation.energy_fit.r_squared, 0.95);
}

TEST(Derivation, MultiRateProfilesOrderSensibly) {
  // Table 2a: P_port at 100G > 50G > 25G on the NCS. Run a reduced-effort
  // derivation for all three rates and check the ordering survives.
  RouterSpec spec = find_router_spec("NCS-55A1-24H").value();
  SimulatedRouter dut(spec, 1003);
  OrchestratorOptions options = fast_lab();
  options.measure_s = 300;
  Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, 2003), options);

  const std::vector<ProfileKey> keys = {
      {PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG100},
      {PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG50},
      {PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG25}};
  const DerivedModel derived = derive_power_model(orchestrator, keys);
  const double p100 = derived.model.find_profile(keys[0])->port_power_w;
  const double p50 = derived.model.find_profile(keys[1])->port_power_w;
  const double p25 = derived.model.find_profile(keys[2])->port_power_w;
  EXPECT_GT(p100, p50);
  EXPECT_GT(p50, p25);
}

TEST(Derivation, WedgeZeroTrxInRecovered) {
  // Table 6a: the Wedge's DAC P_trx,in is 0 — the derivation must not invent
  // phantom transceiver power.
  RouterSpec spec = find_router_spec("Wedge 100BF-32X").value();
  SimulatedRouter dut(spec, 1004);
  Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, 2004), fast_lab());
  const ProfileKey dac100{PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                          LineRate::kG100};
  const DerivedModel derived = derive_power_model(orchestrator, {dac100});
  const InterfaceProfile* p = derived.model.find_profile(dac100);
  ASSERT_NE(p, nullptr);
  EXPECT_NEAR(p->trx_in_power_w, 0.0, 0.03);
  EXPECT_NEAR(p->port_power_w, 0.95, 0.15);  // truth 0.88, wall-scaled
}

TEST(Derivation, LowSpeedDeviceIsImpreciseButSmall) {
  // Table 2d's dagger: on the 1G N540X the traffic-induced power is tiny, so
  // E_bit/E_pkt derivation is imprecise — but the absolute dynamic error is
  // negligible. We assert the derived dynamic power at line rate stays small
  // rather than pinning the (unstable) coefficients.
  RouterSpec spec = find_router_spec("N540X-8Z16G-SYS-A").value();
  SimulatedRouter dut(spec, 1005);
  Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, 2005), fast_lab());
  const ProfileKey sfp_t{PortType::kSFP, TransceiverKind::kBaseT, LineRate::kG1};
  const DerivedModel derived = derive_power_model(orchestrator, {sfp_t});
  const InterfaceProfile* p = derived.model.find_profile(sfp_t);
  ASSERT_NE(p, nullptr);
  EXPECT_NEAR(p->trx_in_power_w, 3.5, 0.5);  // truth 3.41
  const double at_line_rate =
      p->dynamic_power_w(2e9, packet_rate_for_bit_rate(2e9, 512));
  EXPECT_LT(std::fabs(at_line_rate), 1.5);
}

TEST(Derivation, ValidatesInputs) {
  RouterSpec spec = find_router_spec("NCS-55A1-24H").value();
  SimulatedRouter dut(spec, 1);
  Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, 1), fast_lab());
  EXPECT_THROW(derive_power_model(orchestrator, {}), std::invalid_argument);
  // Profile on a port type the DUT does not have.
  const ProfileKey rj45{PortType::kRJ45, TransceiverKind::kBaseT, LineRate::kG1};
  EXPECT_THROW(derive_profile(orchestrator, rj45, 300.0), std::invalid_argument);
  // Ladder out of range.
  DerivationOptions bad;
  bad.pair_ladder = {1, 99};
  const ProfileKey dac100{PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                          LineRate::kG100};
  EXPECT_THROW(derive_profile(orchestrator, dac100, 300.0, bad),
               std::invalid_argument);
}

TEST(Orchestrator, ExperimentPowerOrdering) {
  // P_Base <= P_Idle <= P_Port <= P_Trx <= P_Snake for a normal profile.
  RouterSpec spec = find_router_spec("NCS-55A1-24H").value();
  SimulatedRouter dut(spec, 7);
  OrchestratorOptions options = fast_lab();
  options.measure_s = 120;
  Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, 7), options);
  const ProfileKey dac100{PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                          LineRate::kG100};
  const double base = orchestrator.run_base().mean_power_w;
  const double idle = orchestrator.run_idle(dac100, 12).mean_power_w;
  const double port = orchestrator.run_port(dac100, 12).mean_power_w;
  const double trx = orchestrator.run_trx(dac100, 12).mean_power_w;
  const SnakePoint snake =
      orchestrator.run_snake(dac100, 12, make_cbr(gbps_to_bps(80), 512));
  EXPECT_LT(base, idle + 0.2);
  EXPECT_LT(idle, port);
  EXPECT_LT(port, trx);
  EXPECT_LT(trx, snake.measurement.mean_power_w);
}

TEST(Orchestrator, MaxPairs) {
  RouterSpec spec = find_router_spec("NCS-55A1-24H").value();
  SimulatedRouter dut(spec, 7);
  Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, 7), fast_lab());
  const ProfileKey dac100{PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                          LineRate::kG100};
  EXPECT_EQ(orchestrator.max_pairs(dac100), 12u);
  const ProfileKey rj45{PortType::kRJ45, TransceiverKind::kBaseT, LineRate::kG1};
  EXPECT_EQ(orchestrator.max_pairs(rj45), 0u);
}

}  // namespace
}  // namespace joules
