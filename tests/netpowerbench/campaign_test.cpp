// The fault-tolerant Campaign: no-fault equivalence with the naive
// Orchestrator, degenerate-window guards, and the crash-safe checkpoint
// (exact round trip, kill/reload resume, divergence detection).
#include "netpowerbench/campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "device/catalog.hpp"
#include "netpowerbench/derivation.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

namespace fs = std::filesystem;

const ProfileKey kDac100{PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                         LineRate::kG100};

OrchestratorOptions fast_lab() {
  OrchestratorOptions options;
  options.start_time = make_time(2025, 2, 1);
  options.settle_s = 30;
  options.measure_s = 120;
  options.repeats = 2;
  return options;
}

CampaignOptions fast_campaign(fs::path checkpoint = {}) {
  CampaignOptions options;
  options.lab = fast_lab();
  options.checkpoint_path = std::move(checkpoint);
  return options;
}

DerivationOptions small_battery() {
  DerivationOptions options;
  options.pair_ladder = {4, 12};
  options.frame_sizes = {256, 1500};
  options.rate_steps = 2;
  return options;
}

struct TempFile {
  explicit TempFile(const char* name)
      : path(fs::temp_directory_path() / name) {
    fs::remove(path);
  }
  ~TempFile() { fs::remove(path); }
  fs::path path;
};

void expect_entries_equal(const HistoryEntry& a, const HistoryEntry& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.profile, b.profile);
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_DOUBLE_EQ(a.offered_rate_bps, b.offered_rate_bps);
  EXPECT_DOUBLE_EQ(a.frame_bytes, b.frame_bytes);
  EXPECT_EQ(a.started_at, b.started_at);
  EXPECT_EQ(a.ended_at, b.ended_at);
  EXPECT_EQ(a.windows_used, b.windows_used);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.measurement, b.measurement);
}

// --- Satellite: degenerate-window guard ----------------------------------

TEST(MeasurementFromSamples, FewerThanTwoSamplesNeverYieldNaN) {
  const Measurement empty = measurement_from_samples({});
  EXPECT_DOUBLE_EQ(empty.mean_power_w, 0.0);
  EXPECT_DOUBLE_EQ(empty.stddev_w, 0.0);
  EXPECT_EQ(empty.sample_count, 0u);

  const std::vector<double> one{358.0};
  const Measurement single = measurement_from_samples(one);
  EXPECT_DOUBLE_EQ(single.mean_power_w, 358.0);
  EXPECT_DOUBLE_EQ(single.stddev_w, 0.0);
  EXPECT_FALSE(std::isnan(single.stddev_w));
  EXPECT_EQ(single.sample_count, 1u);
}

// --- No-fault equivalence --------------------------------------------------

TEST(Campaign, NoFaultRunsBitIdenticalToOrchestrator) {
  const RouterSpec spec = find_router_spec("NCS-55A1-24H").value();

  SimulatedRouter naive_dut(spec, 11);
  Orchestrator orchestrator(naive_dut, PowerMeter(PowerMeterSpec{}, 12),
                            fast_lab());

  SimulatedRouter robust_dut(spec, 11);
  Campaign campaign(robust_dut, PowerMeter(PowerMeterSpec{}, 12),
                    fast_campaign());
  // An explicitly installed empty plan must not perturb the path either.
  campaign.set_fault_plan(BenchFaultPlan{});

  const Measurement base_naive = orchestrator.run_base();
  const Measurement base_robust = campaign.run_base();
  EXPECT_EQ(base_naive, base_robust);

  EXPECT_EQ(orchestrator.run_idle(kDac100, 12), campaign.run_idle(kDac100, 12));
  EXPECT_EQ(orchestrator.run_port(kDac100, 6), campaign.run_port(kDac100, 6));
  EXPECT_EQ(orchestrator.run_trx(kDac100, 6), campaign.run_trx(kDac100, 6));
  const TrafficSpec spec40 = make_cbr(gbps_to_bps(40), 512);
  EXPECT_EQ(orchestrator.run_snake(kDac100, 12, spec40).measurement,
            campaign.run_snake(kDac100, 12, spec40).measurement);

  EXPECT_EQ(orchestrator.lab_time(), campaign.lab_time());
  ASSERT_EQ(orchestrator.history().size(), campaign.history().size());
  for (std::size_t i = 0; i < orchestrator.history().size(); ++i) {
    expect_entries_equal(orchestrator.history()[i], campaign.history()[i]);
  }
  EXPECT_EQ(campaign.stats().windows_retried, 0u);
  EXPECT_EQ(campaign.stats().samples_rejected, 0u);
}

TEST(Campaign, NoFaultDerivedModelMatchesOrchestrator) {
  const RouterSpec spec = find_router_spec("NCS-55A1-24H").value();

  SimulatedRouter naive_dut(spec, 21);
  Orchestrator orchestrator(naive_dut, PowerMeter(PowerMeterSpec{}, 22),
                            fast_lab());
  const DerivedModel naive =
      derive_power_model(orchestrator, {kDac100}, small_battery());

  SimulatedRouter robust_dut(spec, 21);
  Campaign campaign(robust_dut, PowerMeter(PowerMeterSpec{}, 22),
                    fast_campaign());
  const DerivedModel robust =
      derive_power_model(campaign, {kDac100}, small_battery());

  EXPECT_EQ(naive.model, robust.model);
  EXPECT_DOUBLE_EQ(naive.base_power_w, robust.base_power_w);
  EXPECT_EQ(robust.base_confidence, TermConfidence::kHigh);
  ASSERT_EQ(robust.derivations.size(), 1u);
  EXPECT_EQ(robust.derivations[0].quality.overall(), TermConfidence::kHigh);
  EXPECT_EQ(robust.derivations[0].quality.runs_excluded, 0u);
}

// --- Checkpoint codec ------------------------------------------------------

TEST(CampaignCheckpoint, SerializeParseRoundTripsExactly) {
  const RouterSpec spec = find_router_spec("NCS-55A1-24H").value();
  SimulatedRouter dut(spec, 31);
  Campaign campaign(dut, PowerMeter(PowerMeterSpec{}, 32), fast_campaign());
  // Inject faults so the round trip covers non-trivial quality values.
  campaign.set_fault_plan(
      BenchFaultPlan().meter_spike(ExperimentKind::kPort, 0, 0.5, 300.0, 4));
  (void)campaign.run_base();
  (void)campaign.run_port(kDac100, 6);
  (void)campaign.run_snake(kDac100, 12, make_cbr(gbps_to_bps(40), 512));

  const std::string serialized =
      Campaign::serialize_checkpoint(campaign.history());
  EXPECT_TRUE(serialized.starts_with(Campaign::kCheckpointHeaderPrefix));

  const std::vector<HistoryEntry> parsed =
      Campaign::parse_checkpoint(serialized);
  ASSERT_EQ(parsed.size(), campaign.history().size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    expect_entries_equal(campaign.history()[i], parsed[i]);
  }
  // Exactness, not mere closeness: a second serialization is byte-identical.
  EXPECT_EQ(Campaign::serialize_checkpoint(parsed), serialized);
}

TEST(CampaignCheckpoint, RejectsForeignAndFutureFiles) {
  EXPECT_THROW((void)Campaign::parse_checkpoint("not a checkpoint\n"),
               std::runtime_error);
  EXPECT_THROW((void)Campaign::parse_checkpoint(
                   "# netpowerbench-campaign v999\nkind\nBase\n"),
               std::runtime_error);

  TempFile file("joules_campaign_foreign.csv");
  std::ofstream(file.path) << "some,other,csv\n1,2,3\n";
  const RouterSpec spec = find_router_spec("NCS-55A1-24H").value();
  SimulatedRouter dut(spec, 41);
  EXPECT_THROW(Campaign(dut, PowerMeter(PowerMeterSpec{}, 42),
                        fast_campaign(file.path)),
               std::runtime_error);
}

TEST(CampaignCheckpoint, KilledCampaignResumesWithNoDuplicatedOrLostRuns) {
  const RouterSpec spec = find_router_spec("NCS-55A1-24H").value();
  const BenchFaultPlan plan =
      BenchFaultPlan()
          .meter_spike(ExperimentKind::kIdle, 0, 0.4, 400.0, 3)
          .dut_reboot(ExperimentKind::kTrx, 1, 0.3, 45);
  TempFile checkpoint("joules_campaign_resume.csv");

  const auto run_battery = [&](Campaign& campaign, std::size_t runs) {
    if (runs > 0) (void)campaign.run_base();
    if (runs > 1) (void)campaign.run_idle(kDac100, 12);
    if (runs > 2) (void)campaign.run_port(kDac100, 4);
    if (runs > 3) (void)campaign.run_port(kDac100, 12);
    if (runs > 4) (void)campaign.run_trx(kDac100, 4);
    if (runs > 5) (void)campaign.run_trx(kDac100, 12);
    if (runs > 6) {
      (void)campaign.run_snake(kDac100, 12, make_cbr(gbps_to_bps(40), 512));
    }
  };
  constexpr std::size_t kTotalRuns = 7;

  // Reference: the uninterrupted campaign.
  SimulatedRouter reference_dut(spec, 51);
  Campaign reference(reference_dut, PowerMeter(PowerMeterSpec{}, 52),
                     fast_campaign());
  reference.set_fault_plan(plan);
  run_battery(reference, kTotalRuns);

  // The same campaign, killed after four completed runs...
  {
    SimulatedRouter dut(spec, 51);
    Campaign killed(dut, PowerMeter(PowerMeterSpec{}, 52),
                    fast_campaign(checkpoint.path));
    killed.set_fault_plan(plan);
    run_battery(killed, 4);
    ASSERT_EQ(killed.history().size(), 4u);
  }  // process dies here; only the checkpoint survives

  // ...and restarted from scratch against fresh hardware state.
  SimulatedRouter dut(spec, 51);
  Campaign resumed(dut, PowerMeter(PowerMeterSpec{}, 52),
                   fast_campaign(checkpoint.path));
  resumed.set_fault_plan(plan);
  EXPECT_EQ(resumed.pending_replays(), 4u);
  run_battery(resumed, kTotalRuns);
  EXPECT_EQ(resumed.pending_replays(), 0u);
  EXPECT_EQ(resumed.stats().runs_replayed, 4u);

  ASSERT_EQ(resumed.history().size(), kTotalRuns);
  ASSERT_EQ(reference.history().size(), kTotalRuns);
  for (std::size_t i = 0; i < kTotalRuns; ++i) {
    expect_entries_equal(reference.history()[i], resumed.history()[i]);
  }
  // Monotone lab clock across the replay boundary: nothing ran twice.
  for (std::size_t i = 1; i < resumed.history().size(); ++i) {
    EXPECT_GT(resumed.history()[i].started_at,
              resumed.history()[i - 1].started_at);
  }
}

TEST(CampaignCheckpoint, DivergingBatteryIsRefused) {
  const RouterSpec spec = find_router_spec("NCS-55A1-24H").value();
  TempFile checkpoint("joules_campaign_diverge.csv");
  {
    SimulatedRouter dut(spec, 61);
    Campaign campaign(dut, PowerMeter(PowerMeterSpec{}, 62),
                      fast_campaign(checkpoint.path));
    (void)campaign.run_base();
  }
  SimulatedRouter dut(spec, 61);
  Campaign resumed(dut, PowerMeter(PowerMeterSpec{}, 62),
                   fast_campaign(checkpoint.path));
  // The checkpoint recorded a Base run; asking for Idle first is a different
  // campaign definition and must fail loudly, not silently mix results.
  EXPECT_THROW((void)resumed.run_idle(kDac100, 12), std::runtime_error);
}

// --- History CSV -----------------------------------------------------------

TEST(HistoryCsv, CarriesQualityColumnsForBothBenches) {
  const RouterSpec spec = find_router_spec("NCS-55A1-24H").value();
  SimulatedRouter dut(spec, 71);
  Campaign campaign(dut, PowerMeter(PowerMeterSpec{}, 72), fast_campaign());
  campaign.set_fault_plan(
      BenchFaultPlan().meter_nan(ExperimentKind::kIdle, 0, 0.5));
  (void)campaign.run_base();
  (void)campaign.run_idle(kDac100, 12);

  const CsvTable csv = campaign.history_csv();
  ASSERT_EQ(csv.row_count(), 2u);
  for (const char* column :
       {"experiment", "profile", "pairs", "offered_rate_gbps", "frame_bytes",
        "started_at", "mean_power_w", "stddev_w", "samples", "rejected",
        "quality", "retries"}) {
    EXPECT_NO_THROW((void)csv.column(column)) << column;
  }
  EXPECT_EQ(csv.cell(0, "quality"), "clean");
  EXPECT_EQ(csv.cell_int64(0, "rejected"), 0);
  EXPECT_EQ(csv.cell(1, "quality"), "recovered");
  EXPECT_EQ(csv.cell_int64(1, "rejected"), 1);
  // The notebook row agrees with the in-memory history.
  const HistoryEntry& idle = campaign.history()[1];
  EXPECT_NEAR(csv.cell_double(1, "mean_power_w"),
              idle.measurement.mean_power_w, 5e-4);
  EXPECT_EQ(static_cast<std::size_t>(csv.cell_int64(1, "samples")),
            idle.measurement.sample_count);
  EXPECT_EQ(csv.cell_int64(1, "retries"), idle.retries);
}

}  // namespace
}  // namespace joules
