#include "bench_compare/compare.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace joules::benchcmp {
namespace {

constexpr const char* kBaselineJson = R"({
  "context": {"host_name": "ci"},
  "benchmarks": [
    {
      "name": "BM_NetworkTraces/1",
      "family_index": 0,
      "run_name": "BM_NetworkTraces/1",
      "run_type": "iteration",
      "repetitions": 1,
      "threads": 1,
      "iterations": 3,
      "real_time": 12.5,
      "cpu_time": 12.4,
      "time_unit": "ms",
      "steps": 4032.0,
      "obs_trace.samples": 96768.0,
      "obs_trace.blocks": 28.0
    },
    {
      "name": "BM_NetworkTraces/1",
      "run_type": "aggregate",
      "aggregate_name": "mean",
      "iterations": 3,
      "real_time": 13.0,
      "obs_trace.samples": 999999.0
    }
  ]
})";

std::vector<CounterSample> make(
    std::initializer_list<CounterSample> samples) {
  return samples;
}

TEST(BenchCompare, ParseSkipsHarnessFieldsAndKeepsFirstOccurrence) {
  const std::vector<CounterSample> samples =
      parse_benchmark_counters(kBaselineJson);
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].counter, "steps");
  EXPECT_EQ(samples[1].counter, "obs_trace.samples");
  // The aggregate row's duplicate must not overwrite the first value.
  EXPECT_DOUBLE_EQ(samples[1].value, 96768.0);
  EXPECT_EQ(samples[2].counter, "obs_trace.blocks");
  for (const CounterSample& sample : samples) {
    EXPECT_EQ(sample.benchmark, "BM_NetworkTraces/1");
    EXPECT_NE(sample.counter, "real_time");
    EXPECT_NE(sample.counter, "iterations");
  }
}

TEST(BenchCompare, ParsePrefixFilterKeepsOnlyObsCounters) {
  const std::vector<CounterSample> samples =
      parse_benchmark_counters(kBaselineJson, "obs_");
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].counter, "obs_trace.samples");
  EXPECT_EQ(samples[1].counter, "obs_trace.blocks");
}

TEST(BenchCompare, ParseThrowsWithoutBenchmarksArray) {
  EXPECT_THROW(parse_benchmark_counters("{}"), std::invalid_argument);
  EXPECT_THROW(parse_benchmark_counters("not json"), std::invalid_argument);
}

TEST(BenchCompare, IdenticalRunsPass) {
  const auto baseline = parse_benchmark_counters(kBaselineJson);
  const CompareResult result = compare(baseline, baseline, {});
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.counters_checked, 3u);
}

TEST(BenchCompare, GrowthBeyondThresholdFails) {
  const auto baseline = make({{"BM_X/1", "obs_trace.samples", 100.0}});
  const auto slower = make({{"BM_X/1", "obs_trace.samples", 151.0}});
  const auto within = make({{"BM_X/1", "obs_trace.samples", 149.0}});

  const CompareResult bad = compare(baseline, slower, {});
  ASSERT_EQ(bad.findings.size(), 1u);
  EXPECT_EQ(bad.findings[0].kind, Finding::Kind::kGrew);
  EXPECT_DOUBLE_EQ(bad.findings[0].baseline, 100.0);
  EXPECT_DOUBLE_EQ(bad.findings[0].current, 151.0);

  EXPECT_TRUE(compare(baseline, within, {}).ok());
  // Shrinking is always fine: less work is not a regression.
  const auto faster = make({{"BM_X/1", "obs_trace.samples", 10.0}});
  EXPECT_TRUE(compare(baseline, faster, {}).ok());
}

TEST(BenchCompare, MissingBenchmarkAndCounterAreDistinctFindings) {
  const auto baseline = make({{"BM_X/1", "obs_a", 5.0},
                              {"BM_Y/1", "obs_b", 5.0}});
  const auto current = make({{"BM_X/1", "obs_other", 5.0}});
  const CompareResult result = compare(baseline, current, {});
  ASSERT_EQ(result.findings.size(), 2u);
  EXPECT_EQ(result.findings[0].kind, Finding::Kind::kMissingCounter);
  EXPECT_EQ(result.findings[1].kind, Finding::Kind::kMissingBenchmark);
}

TEST(BenchCompare, WorkAppearingFromZeroFails) {
  const auto baseline = make({{"BM_X/1", "obs_retries", 0.0}});
  const auto clean = make({{"BM_X/1", "obs_retries", 0.0}});
  const auto dirty = make({{"BM_X/1", "obs_retries", 3.0}});
  EXPECT_TRUE(compare(baseline, clean, {}).ok());
  const CompareResult result = compare(baseline, dirty, {});
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].kind, Finding::Kind::kAppeared);
}

TEST(BenchCompare, PrefixOptionRestrictsTheGate) {
  const auto baseline = make({{"BM_X/1", "obs_a", 100.0},
                              {"BM_X/1", "steps", 100.0}});
  const auto current = make({{"BM_X/1", "obs_a", 100.0},
                             {"BM_X/1", "steps", 1000.0}});
  CompareOptions options;
  options.counter_prefix = "obs_";
  const CompareResult result = compare(baseline, current, options);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.counters_checked, 1u);
}

TEST(BenchCompare, FloorCounterFailsOnShrinkOnly) {
  // samples_reused counts work the skip path *avoided*: losing it is the
  // regression, growth is the optimisation improving.
  const auto baseline = make({{"BM_X/1", "obs_trace.samples_reused", 600.0}});
  CompareOptions options;
  options.floor_prefixes = {"obs_trace.samples_reused"};

  const auto lost = make({{"BM_X/1", "obs_trace.samples_reused", 399.0}});
  const CompareResult bad = compare(baseline, lost, options);
  ASSERT_EQ(bad.findings.size(), 1u);
  EXPECT_EQ(bad.findings[0].kind, Finding::Kind::kShrank);
  EXPECT_DOUBLE_EQ(bad.findings[0].baseline, 600.0);
  EXPECT_DOUBLE_EQ(bad.findings[0].current, 399.0);

  const auto within = make({{"BM_X/1", "obs_trace.samples_reused", 401.0}});
  EXPECT_TRUE(compare(baseline, within, options).ok());
  const auto better = make({{"BM_X/1", "obs_trace.samples_reused", 9000.0}});
  EXPECT_TRUE(compare(baseline, better, options).ok());

  const std::string report = render_report(bad, options);
  EXPECT_NE(report.find("floor counter shrank"), std::string::npos);
}

TEST(BenchCompare, FloorCounterDroppingToZeroAlwaysFails) {
  const auto baseline = make({{"BM_X/1", "obs_trace.samples_reused", 3.0}});
  const auto gone = make({{"BM_X/1", "obs_trace.samples_reused", 0.0}});
  CompareOptions options;
  options.floor_prefixes = {"obs_trace.samples_reused"};
  const CompareResult result = compare(baseline, gone, options);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].kind, Finding::Kind::kShrank);
}

TEST(BenchCompare, FloorCounterZeroBaselinePinsNothing) {
  // Exact-mode benches legitimately report samples_reused == 0; the floor
  // only arms once a baseline records a positive skip count.
  const auto baseline = make({{"BM_X/1", "obs_trace.samples_reused", 0.0}});
  const auto current = make({{"BM_X/1", "obs_trace.samples_reused", 500.0}});
  CompareOptions options;
  options.floor_prefixes = {"obs_trace.samples_reused"};
  EXPECT_TRUE(compare(baseline, current, options).ok());
}

TEST(BenchCompare, FloorPrefixExemptsOnlyMatchingCounters) {
  // A non-floor counter growing past threshold still fails alongside a
  // healthy floor counter; a missing floor counter is still a finding.
  const auto baseline = make({{"BM_X/1", "obs_trace.samples_reused", 100.0},
                              {"BM_X/1", "obs_trace.samples", 100.0}});
  const auto current = make({{"BM_X/1", "obs_trace.samples_reused", 100.0},
                             {"BM_X/1", "obs_trace.samples", 200.0}});
  CompareOptions options;
  options.floor_prefixes = {"obs_trace.samples_reused"};
  const CompareResult result = compare(baseline, current, options);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].kind, Finding::Kind::kGrew);
  EXPECT_EQ(result.findings[0].counter, "obs_trace.samples");

  const auto missing = make({{"BM_X/1", "obs_trace.samples", 100.0}});
  const CompareResult gone = compare(baseline, missing, options);
  ASSERT_EQ(gone.findings.size(), 1u);
  EXPECT_EQ(gone.findings[0].kind, Finding::Kind::kMissingCounter);
}

TEST(BenchCompare, MultipleFloorPrefixesEachInvertDirection) {
  // Two skip-path counters from different subsystems are both floors; a
  // shrink in either fails, and an unrelated counter still gates on growth.
  const auto baseline = make({{"BM_X/1", "obs_trace.samples_reused", 100.0},
                              {"BM_X/1", "obs_whatif.cache_hits", 50.0},
                              {"BM_X/1", "obs_whatif.routers_recomputed", 10.0}});
  CompareOptions options;
  options.floor_prefixes = {"obs_trace.samples_reused",
                            "obs_whatif.cache_hits"};

  const auto lost_hits = make({{"BM_X/1", "obs_trace.samples_reused", 100.0},
                               {"BM_X/1", "obs_whatif.cache_hits", 10.0},
                               {"BM_X/1", "obs_whatif.routers_recomputed", 10.0}});
  const CompareResult bad = compare(baseline, lost_hits, options);
  ASSERT_EQ(bad.findings.size(), 1u);
  EXPECT_EQ(bad.findings[0].kind, Finding::Kind::kShrank);
  EXPECT_EQ(bad.findings[0].counter, "obs_whatif.cache_hits");

  const auto more_work = make({{"BM_X/1", "obs_trace.samples_reused", 100.0},
                               {"BM_X/1", "obs_whatif.cache_hits", 50.0},
                               {"BM_X/1", "obs_whatif.routers_recomputed", 40.0}});
  const CompareResult grew = compare(baseline, more_work, options);
  ASSERT_EQ(grew.findings.size(), 1u);
  EXPECT_EQ(grew.findings[0].kind, Finding::Kind::kGrew);
  EXPECT_EQ(grew.findings[0].counter, "obs_whatif.routers_recomputed");
}

TEST(BenchCompare, MaxCounterFailsOnAnyGrowth) {
  // peak_resident_samples pins a memory bound: exceeding the baseline by a
  // single sample is a broken contract — no threshold slack.
  const auto baseline =
      make({{"BM_X/1", "obs_trace.peak_resident_samples", 1000.0}});
  CompareOptions options;
  options.max_prefixes = {"obs_trace.peak_resident_samples"};

  const auto grew =
      make({{"BM_X/1", "obs_trace.peak_resident_samples", 1001.0}});
  const CompareResult bad = compare(baseline, grew, options);
  ASSERT_EQ(bad.findings.size(), 1u);
  EXPECT_EQ(bad.findings[0].kind, Finding::Kind::kExceeded);
  EXPECT_DOUBLE_EQ(bad.findings[0].baseline, 1000.0);
  EXPECT_DOUBLE_EQ(bad.findings[0].current, 1001.0);

  const auto equal =
      make({{"BM_X/1", "obs_trace.peak_resident_samples", 1000.0}});
  EXPECT_TRUE(compare(baseline, equal, options).ok());
  // Shrinking a ceiling is progress, never a finding.
  const auto smaller =
      make({{"BM_X/1", "obs_trace.peak_resident_samples", 10.0}});
  EXPECT_TRUE(compare(baseline, smaller, options).ok());

  const std::string report = render_report(bad, options);
  EXPECT_NE(report.find("ceiling counter exceeded"), std::string::npos);
}

TEST(BenchCompare, MaxCounterIgnoresThresholdSlack) {
  // Growth far below the x1.5 work threshold still fails a ceiling counter.
  const auto baseline = make({{"BM_X/1", "obs_mem.peak", 100.0}});
  const auto current = make({{"BM_X/1", "obs_mem.peak", 101.0}});
  CompareOptions options;
  options.threshold = 10.0;
  options.max_prefixes = {"obs_mem."};
  const CompareResult result = compare(baseline, current, options);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].kind, Finding::Kind::kExceeded);
}

TEST(BenchCompare, MaxPrefixGatesOnlyMatchingCounters) {
  // An unrelated counter keeps the ordinary growth gate (within threshold
  // passes), a missing ceiling counter is still a finding, and a counter
  // matching both a max and a floor prefix is treated as a ceiling.
  const auto baseline =
      make({{"BM_X/1", "obs_trace.peak_resident_samples", 100.0},
            {"BM_X/1", "obs_trace.samples", 100.0}});
  CompareOptions options;
  options.max_prefixes = {"obs_trace.peak_resident_samples"};

  const auto ordinary_growth =
      make({{"BM_X/1", "obs_trace.peak_resident_samples", 100.0},
            {"BM_X/1", "obs_trace.samples", 140.0}});
  EXPECT_TRUE(compare(baseline, ordinary_growth, options).ok());

  const auto missing = make({{"BM_X/1", "obs_trace.samples", 100.0}});
  const CompareResult gone = compare(baseline, missing, options);
  ASSERT_EQ(gone.findings.size(), 1u);
  EXPECT_EQ(gone.findings[0].kind, Finding::Kind::kMissingCounter);

  CompareOptions both = options;
  both.floor_prefixes = {"obs_trace.peak_resident_samples"};
  const auto grew =
      make({{"BM_X/1", "obs_trace.peak_resident_samples", 150.0},
            {"BM_X/1", "obs_trace.samples", 100.0}});
  const CompareResult ceiling_wins = compare(baseline, grew, both);
  ASSERT_EQ(ceiling_wins.findings.size(), 1u);
  EXPECT_EQ(ceiling_wins.findings[0].kind, Finding::Kind::kExceeded);
}

TEST(BenchCompare, ThresholdMustBePositive) {
  CompareOptions options;
  options.threshold = 0.0;
  EXPECT_THROW(compare({}, {}, options), std::invalid_argument);
}

TEST(BenchCompare, ReportNamesTheCounterAndSummarizes) {
  const auto baseline = make({{"BM_X/1", "obs_a", 100.0}});
  const auto current = make({{"BM_X/1", "obs_a", 200.0}});
  const CompareOptions options;
  const CompareResult result = compare(baseline, current, options);
  const std::string report = render_report(result, options);
  EXPECT_NE(report.find("BM_X/1 obs_a"), std::string::npos);
  EXPECT_NE(report.find("1 counter(s) checked, 1 regression(s)"),
            std::string::npos);

  const CompareResult clean = compare(baseline, baseline, options);
  EXPECT_NE(render_report(clean, options)
                .find("1 counter(s) checked, 0 regression(s)"),
            std::string::npos);
}

}  // namespace
}  // namespace joules::benchcmp
