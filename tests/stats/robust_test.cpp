// Robust window validation: the gates that keep a disturbed measurement
// window out of a regression (MAD outlier rejection, steadiness, dropout
// fraction, stuck-channel detection).
#include "stats/robust.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace joules {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// A plausible clean window: plateau around 400 W with bounded meter noise.
std::vector<double> clean_window(std::size_t n, double level = 400.0) {
  std::vector<double> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Deterministic sub-watt wiggle, nothing near any gate threshold.
    samples.push_back(level + 0.08 * std::sin(0.7 * static_cast<double>(i)) +
                      0.03 * static_cast<double>(i % 5));
  }
  return samples;
}

TEST(MedianAbsoluteDeviation, DegenerateInputsGiveZero) {
  EXPECT_DOUBLE_EQ(median_absolute_deviation({}), 0.0);
  const std::vector<double> one{42.0};
  EXPECT_DOUBLE_EQ(median_absolute_deviation(one), 0.0);
}

TEST(MedianAbsoluteDeviation, MatchesHandComputedValue) {
  // median = 3, deviations {2, 1, 0, 1, 2} -> MAD = 1.
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(median_absolute_deviation(values), 1.0);
}

TEST(MedianAbsoluteDeviation, ImmuneToASingleOutlier) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0, 1000.0};
  EXPECT_DOUBLE_EQ(median_absolute_deviation(values), 1.0);
}

TEST(ValidateWindow, CleanWindowAcceptedWhole) {
  const std::vector<double> samples = clean_window(120);
  const WindowValidation v = validate_window(samples, samples.size());
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.rejected, 0u);
  ASSERT_EQ(v.accepted.size(), samples.size());
  // Original order and exact values preserved (the bit-identical no-fault
  // equivalence of Campaign vs Orchestrator depends on this).
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(v.accepted[i], samples[i]);
  }
}

TEST(ValidateWindow, NanReadingsAreRejectedNotPropagated) {
  std::vector<double> samples = clean_window(120);
  samples[17] = kNaN;
  samples[90] = kNaN;
  const WindowValidation v = validate_window(samples, samples.size());
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.rejected, 2u);
  EXPECT_EQ(v.accepted.size(), samples.size() - 2);
  for (const double value : v.accepted) EXPECT_TRUE(std::isfinite(value));
}

TEST(ValidateWindow, MeterSpikeRejectedByMadGate) {
  std::vector<double> samples = clean_window(120);
  samples[60] += 250.0;  // one huge reading
  samples[61] += 250.0;
  const WindowValidation v = validate_window(samples, samples.size());
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.rejected, 2u);
  for (const double value : v.accepted) EXPECT_LT(value, 500.0);
}

TEST(ValidateWindow, SmallSpikeUnderThresholdFloorIsKept) {
  // The 2.5 W floor protects benign samples in low-MAD windows.
  std::vector<double> samples = clean_window(120);
  samples[60] += 2.0;
  const WindowValidation v = validate_window(samples, samples.size());
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.rejected, 0u);
}

TEST(ValidateWindow, MidWindowStepFailsSteadiness) {
  // A reboot/OS-update/fan-step moves the plateau: halves disagree.
  std::vector<double> samples = clean_window(60, 400.0);
  const std::vector<double> second = clean_window(60, 430.0);
  samples.insert(samples.end(), second.begin(), second.end());
  const WindowValidation v = validate_window(samples, samples.size());
  EXPECT_FALSE(v.steady);
  EXPECT_FALSE(v.ok());
  EXPECT_GT(v.drift_w, 5.0);
}

TEST(ValidateWindow, DriftLimitScalesWithPowerLevel) {
  // 2% of an 8 kW chassis is 160 W: a 20 W wobble must still pass there,
  // while the absolute 5 W limit governs small fixed routers.
  std::vector<double> samples = clean_window(60, 8000.0);
  const std::vector<double> second = clean_window(60, 8020.0);
  samples.insert(samples.end(), second.begin(), second.end());
  const WindowValidation v = validate_window(samples, samples.size());
  EXPECT_TRUE(v.steady);
  EXPECT_TRUE(v.ok());
}

TEST(ValidateWindow, DropoutFractionGate) {
  // The meter delivered 60 of 120 expected samples: disturbed.
  const std::vector<double> samples = clean_window(60);
  const WindowValidation v = validate_window(samples, 120);
  EXPECT_FALSE(v.enough_samples);
  EXPECT_FALSE(v.ok());
  // The same 60 samples with the right expectation pass.
  EXPECT_TRUE(validate_window(samples, 60).ok());
}

TEST(ValidateWindow, StuckChannelDetected) {
  std::vector<double> samples = clean_window(120);
  for (std::size_t i = 40; i < 60; ++i) samples[i] = samples[39];
  const WindowValidation v = validate_window(samples, samples.size());
  EXPECT_TRUE(v.stuck);
  EXPECT_GE(v.longest_identical_run, 20u);
  EXPECT_FALSE(v.ok());
}

TEST(ValidateWindow, ShortIdenticalRunsAreAllowed) {
  std::vector<double> samples = clean_window(120);
  for (std::size_t i = 40; i < 45; ++i) samples[i] = samples[39];
  const WindowValidation v = validate_window(samples, samples.size());
  EXPECT_FALSE(v.stuck);
  EXPECT_TRUE(v.ok());
}

TEST(ValidateWindow, DegenerateWindowsNeverProduceNaN) {
  const WindowValidation empty = validate_window({}, 0);
  EXPECT_EQ(empty.rejected, 0u);
  EXPECT_TRUE(empty.accepted.empty());
  EXPECT_FALSE(std::isnan(empty.drift_w));

  const std::vector<double> one{358.0};
  const WindowValidation single = validate_window(one, 1);
  EXPECT_EQ(single.accepted.size(), 1u);
  EXPECT_FALSE(std::isnan(single.drift_w));
}

TEST(ValidateWindow, AllNanWindowIsDisturbed) {
  const std::vector<double> samples(100, kNaN);
  const WindowValidation v = validate_window(samples, samples.size());
  EXPECT_EQ(v.rejected, 100u);
  EXPECT_TRUE(v.accepted.empty());
  EXPECT_FALSE(v.ok());
}

}  // namespace
}  // namespace joules
