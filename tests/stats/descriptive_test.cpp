#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace joules {
namespace {

TEST(Descriptive, MeanAndSum) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(sum(v), 10.0);
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Descriptive, KahanSumStaysAccurate) {
  std::vector<double> v(1000000, 0.1);
  EXPECT_NEAR(sum(v), 100000.0, 1e-6);
}

TEST(Descriptive, VarianceAndStddev) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(variance(v), 4.0);
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);
}

TEST(Descriptive, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 3, 2}), 2.5);
}

TEST(Descriptive, QuantileInterpolation) {
  const std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 10.0);
}

TEST(Descriptive, QuantileRejectsBadQ) {
  const std::vector<double> v = {1.0};
  EXPECT_THROW(quantile(v, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(v, 1.1), std::invalid_argument);
}

TEST(Descriptive, EmptyInputThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), std::invalid_argument);
  EXPECT_THROW(median(empty), std::invalid_argument);
  EXPECT_THROW(min_value(empty), std::invalid_argument);
  EXPECT_THROW(summarize(empty), std::invalid_argument);
}

TEST(Descriptive, MinMax) {
  const std::vector<double> v = {5, -2, 7};
  EXPECT_DOUBLE_EQ(min_value(v), -2.0);
  EXPECT_DOUBLE_EQ(max_value(v), 7.0);
}

TEST(Descriptive, CorrelationPerfectAndNone) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y_pos = {2, 4, 6, 8};
  const std::vector<double> y_neg = {8, 6, 4, 2};
  const std::vector<double> y_flat = {5, 5, 5, 5};
  EXPECT_NEAR(correlation(x, y_pos), 1.0, 1e-12);
  EXPECT_NEAR(correlation(x, y_neg), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(correlation(x, y_flat), 0.0);
}

TEST(Descriptive, CorrelationSizeMismatchThrows) {
  const std::vector<double> x = {1, 2};
  const std::vector<double> y = {1};
  EXPECT_THROW(correlation(x, y), std::invalid_argument);
}

TEST(Descriptive, SummaryFields) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

}  // namespace
}  // namespace joules
