#include <gtest/gtest.h>

#include "stats/regression.hpp"
#include "util/rng.hpp"

namespace joules {
namespace {

TEST(TheilSen, ExactLine) {
  const std::vector<double> x = {0, 1, 2, 3, 4};
  const std::vector<double> y = {1, 3, 5, 7, 9};
  const LinearFit fit = fit_theil_sen(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(TheilSen, RobustToOutliers) {
  // One wild outlier wrecks OLS but barely moves Theil-Sen — the Fig. 2b
  // situation (a 300 W/100G router in a <100 cloud).
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) {
    x.push_back(i);
    y.push_back(-1.0 * i + 50.0);
  }
  y[5] = 400.0;  // outlier
  const LinearFit robust = fit_theil_sen(x, y);
  const LinearFit ols = fit_linear(x, y);
  EXPECT_NEAR(robust.slope, -1.0, 0.05);
  EXPECT_GT(std::abs(ols.slope - (-1.0)), 0.3);  // OLS got dragged
}

TEST(TheilSen, NoisyLine) {
  Rng rng(5);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i * 0.1);
    y.push_back(2.5 * i * 0.1 + 1.0 + rng.normal(0, 0.5));
  }
  const LinearFit fit = fit_theil_sen(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 0.1);
  EXPECT_NEAR(fit.intercept, 1.0, 0.3);
}

TEST(TheilSen, HandlesRepeatedXValues) {
  // Vertical pairs carry no slope; the estimator must skip them, not divide
  // by zero.
  const std::vector<double> x = {1, 1, 2, 2, 3, 3};
  const std::vector<double> y = {2.0, 2.2, 4.0, 4.2, 6.0, 6.2};
  const LinearFit fit = fit_theil_sen(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 0.3);
}

TEST(TheilSen, ValidatesInput) {
  const std::vector<double> one = {1.0};
  const std::vector<double> two = {1.0, 2.0};
  const std::vector<double> constant = {3.0, 3.0};
  EXPECT_THROW(fit_theil_sen(one, one), std::invalid_argument);
  EXPECT_THROW(fit_theil_sen(two, one), std::invalid_argument);
  EXPECT_THROW(fit_theil_sen(constant, two), std::invalid_argument);
}

}  // namespace
}  // namespace joules
