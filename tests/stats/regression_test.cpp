#include "stats/regression.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace joules {
namespace {

TEST(Regression, ExactLine) {
  const std::vector<double> x = {0, 1, 2, 3};
  const std::vector<double> y = {1, 3, 5, 7};  // y = 2x + 1
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_EQ(fit.n, 4u);
  EXPECT_NEAR(fit.at(10.0), 21.0, 1e-12);
}

TEST(Regression, NoisyLineRecoversParameters) {
  Rng rng(11);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double xi = i * 0.1;
    x.push_back(xi);
    y.push_back(3.5 * xi - 2.0 + rng.normal(0.0, 0.2));
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 3.5, 0.02);
  EXPECT_NEAR(fit.intercept, -2.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
  EXPECT_GT(fit.slope_stderr, 0.0);
  EXPECT_LT(fit.slope_stderr, 0.02);
}

TEST(Regression, ConstantYGivesZeroSlopeAndPerfectR2) {
  const std::vector<double> x = {0, 1, 2};
  const std::vector<double> y = {4, 4, 4};
  const LinearFit fit = fit_linear(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 4.0);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(Regression, InvalidInputsThrow) {
  const std::vector<double> one = {1.0};
  const std::vector<double> two = {1.0, 2.0};
  const std::vector<double> constant = {3.0, 3.0};
  EXPECT_THROW(fit_linear(one, one), std::invalid_argument);
  EXPECT_THROW(fit_linear(two, one), std::invalid_argument);
  EXPECT_THROW(fit_linear(constant, two), std::invalid_argument);
}

TEST(Regression, ProportionalFit) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {2, 4, 6};
  EXPECT_NEAR(fit_proportional(x, y), 2.0, 1e-12);
  const std::vector<double> zeros = {0, 0};
  EXPECT_THROW(fit_proportional(zeros, x), std::invalid_argument);
}

TEST(Regression, ResidualsSumNearZeroForOls) {
  const std::vector<double> x = {0, 1, 2, 3, 4};
  const std::vector<double> y = {1.1, 2.9, 5.2, 6.8, 9.1};
  const LinearFit fit = fit_linear(x, y);
  const auto res = residuals(fit, x, y);
  double total = 0.0;
  for (double r : res) total += r;
  EXPECT_NEAR(total, 0.0, 1e-9);
  EXPECT_EQ(res.size(), x.size());
}

}  // namespace
}  // namespace joules
