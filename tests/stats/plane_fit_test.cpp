#include <gtest/gtest.h>

#include "device/catalog.hpp"
#include "netpowerbench/derivation.hpp"
#include "stats/regression.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

TEST(PlaneFit, ExactPlane) {
  // y = 2*x1 - 3*x2 + 5 on a non-degenerate grid.
  std::vector<double> x1;
  std::vector<double> x2;
  std::vector<double> y;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      x1.push_back(i);
      x2.push_back(j * j);  // nonlinear in i so the regressors decorrelate
      y.push_back(2.0 * i - 3.0 * j * j + 5.0);
    }
  }
  const PlaneFit fit = fit_plane(x1, x2, y);
  EXPECT_NEAR(fit.a, 2.0, 1e-9);
  EXPECT_NEAR(fit.b, -3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.at(10, 2), 2.0 * 10 - 3.0 * 2 + 5.0, 1e-9);
}

TEST(PlaneFit, NoisyPlaneRecovered) {
  Rng rng(99);
  std::vector<double> x1;
  std::vector<double> x2;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform(0, 10);
    const double b = rng.uniform(0, 10);
    x1.push_back(a);
    x2.push_back(b);
    y.push_back(1.5 * a + 0.7 * b - 2.0 + rng.normal(0, 0.1));
  }
  const PlaneFit fit = fit_plane(x1, x2, y);
  EXPECT_NEAR(fit.a, 1.5, 0.01);
  EXPECT_NEAR(fit.b, 0.7, 0.01);
  EXPECT_NEAR(fit.intercept, -2.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(PlaneFit, RejectsCollinearRegressors) {
  // x2 = 2*x1: the bit/packet-rate degeneracy that forces the paper's
  // frame-size sweep in the first place.
  const std::vector<double> x1 = {1, 2, 3, 4};
  const std::vector<double> x2 = {2, 4, 6, 8};
  const std::vector<double> y = {1, 2, 3, 4};
  EXPECT_THROW(fit_plane(x1, x2, y), std::invalid_argument);
}

TEST(PlaneFit, ValidatesInput) {
  const std::vector<double> two = {1, 2};
  EXPECT_THROW(fit_plane(two, two, two), std::invalid_argument);
  const std::vector<double> three = {1, 2, 3};
  EXPECT_THROW(fit_plane(two, three, three), std::invalid_argument);
}

TEST(EnergyEstimators, TwoStepAndDirectAgreeOnTheSameSweep) {
  // Both estimators see the same physics; on a clean DUT they must land on
  // the same E_bit/E_pkt within noise. (The frame-size sweep is what makes
  // the direct fit well-conditioned: at a single L, bit and packet rates are
  // proportional and fit_plane would throw.)
  const RouterSpec spec = find_router_spec("NCS-55A1-24H").value();
  const ProfileKey key{PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                       LineRate::kG100};
  auto derive_with = [&](EnergyEstimator estimator) {
    SimulatedRouter dut(spec, 777);
    OrchestratorOptions lab;
    lab.start_time = make_time(2025, 3, 1);
    lab.measure_s = 600;
    lab.repeats = 2;
    Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, 778), lab);
    DerivationOptions options;
    options.energy_estimator = estimator;
    return derive_power_model(orchestrator, {key}, options);
  };

  const DerivedModel two_step = derive_with(EnergyEstimator::kTwoStep);
  const DerivedModel direct = derive_with(EnergyEstimator::kDirect);
  const InterfaceProfile* a = two_step.model.find_profile(key);
  const InterfaceProfile* b = direct.model.find_profile(key);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  EXPECT_NEAR(joules_to_picojoules(a->energy_per_bit_j),
              joules_to_picojoules(b->energy_per_bit_j), 1.5);
  EXPECT_NEAR(joules_to_nanojoules(a->energy_per_packet_j),
              joules_to_nanojoules(b->energy_per_packet_j), 8.0);
  EXPECT_NEAR(a->offset_power_w, b->offset_power_w, 0.15);
  // Identical static terms (the estimators only differ on the Snake stage).
  EXPECT_NEAR(a->port_power_w, b->port_power_w, 1e-9);
  EXPECT_NEAR(a->trx_in_power_w, b->trx_in_power_w, 1e-9);
  // The direct fit's diagnostics are filled either way.
  EXPECT_GT(two_step.derivations[0].direct_fit.r_squared, 0.99);
}

}  // namespace
}  // namespace joules
