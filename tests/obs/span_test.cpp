#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/registry.hpp"
#include "obs/stopwatch.hpp"

namespace joules::obs {
namespace {

// With FakeStopwatch(0, 1) every clock read is one tick after the previous,
// so the full span tree — starts, durations, depths — is a pure function of
// the open/close sequence and can be asserted bit-exactly.
TEST(ObsSpan, NestedSpansRecordExactTreeWithFakeStopwatch) {
  if constexpr (!kEnabled) GTEST_SKIP() << "RAII Span is a no-op when obs is compiled out";
  FakeStopwatch clock(0, 1);
  Registry registry(1, &clock);
  {
    const Span outer(registry, "phase.outer");   // open reads t=0
    {
      const Span inner(registry, "phase.inner"); // open reads t=1
    }                                            // close reads t=2
    {
      const Span inner(registry, "phase.inner"); // open reads t=3
    }                                            // close reads t=4
  }                                              // close reads t=5

  const std::vector<SpanRecord> spans = registry.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].id, "phase.outer");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[0].start_ns, 0u);
  EXPECT_EQ(spans[0].duration_ns, 5u);
  EXPECT_EQ(spans[1].id, "phase.inner");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[1].start_ns, 1u);
  EXPECT_EQ(spans[1].duration_ns, 1u);
  EXPECT_EQ(spans[2].id, "phase.inner");
  EXPECT_EQ(spans[2].depth, 1u);
  EXPECT_EQ(spans[2].start_ns, 3u);
  EXPECT_EQ(spans[2].duration_ns, 1u);
}

TEST(ObsSpan, AdvanceModelsWorkInsideASpan) {
  if constexpr (!kEnabled) GTEST_SKIP() << "RAII Span is a no-op when obs is compiled out";
  FakeStopwatch clock(100, 0);  // tick 0: time moves only via advance()
  Registry registry(1, &clock);
  {
    const Span span(registry, "phase.work");
    clock.advance(250);
  }
  const std::vector<SpanRecord> spans = registry.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].start_ns, 100u);
  EXPECT_EQ(spans[0].duration_ns, 250u);
}

TEST(ObsSpan, PhaseTotalsAggregateTopLevelSpansInFirstSeenOrder) {
  if constexpr (!kEnabled) GTEST_SKIP() << "RAII Span is a no-op when obs is compiled out";
  FakeStopwatch clock(0, 1);
  Registry registry(1, &clock);
  { const Span a(registry, "phase.b"); }  // duration 1
  { const Span b(registry, "phase.a"); }  // duration 1
  {
    const Span a(registry, "phase.b");
    { const Span child(registry, "phase.a"); }  // nested: not a phase
  }

  const std::vector<PhaseTotal> totals = registry.phase_totals();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0].id, "phase.b");  // first seen, not sorted
  EXPECT_EQ(totals[0].count, 2u);
  EXPECT_EQ(totals[1].id, "phase.a");
  EXPECT_EQ(totals[1].count, 1u);
}

TEST(ObsSpan, NullRegistrySpanIsANoOp) {
  const Span span(nullptr, "phase.nothing");  // must not crash or record
  Registry registry(1);
  EXPECT_TRUE(registry.spans().empty());
}

}  // namespace
}  // namespace joules::obs
