#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/thread_pool.hpp"

namespace joules::obs {
namespace {

TEST(ObsRegistry, CountersMergeAcrossShardsInSortedNameOrder) {
  Registry registry(3);
  registry.add(2, "zeta", 5);
  registry.add(0, "alpha", 1);
  registry.add(1, "zeta", 7);
  registry.add(1, "alpha", 2);
  registry.add(0, "mid", 4);

  const std::vector<CounterValue> merged = registry.counters();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].name, "alpha");
  EXPECT_EQ(merged[0].value, 3u);
  EXPECT_EQ(merged[1].name, "mid");
  EXPECT_EQ(merged[1].value, 4u);
  EXPECT_EQ(merged[2].name, "zeta");
  EXPECT_EQ(merged[2].value, 12u);

  EXPECT_EQ(registry.counter("zeta"), 12u);
  EXPECT_EQ(registry.counter("missing"), 0u);
}

TEST(ObsRegistry, AddThrowsOnBadShardIndex) {
  Registry registry(2);
  EXPECT_THROW(registry.add(2, "x"), std::out_of_range);
  EXPECT_THROW(registry.observe(2, "x", 1.0), std::out_of_range);
}

// The shard-merge determinism contract: each worker writes only its own
// shard, and the merged totals (and their serialization) depend only on the
// work range — never on the worker count or scheduling order.
TEST(ObsRegistry, MergedCountersBitIdenticalAcrossWorkerCounts) {
  constexpr std::size_t kItems = 1000;
  std::string reference_dump;
  for (const std::size_t workers : {1u, 4u, 16u}) {
    ThreadPool pool(workers);
    Registry registry(pool.worker_count());
    registry.define_histogram("work.size", {10.0, 100.0, 500.0});
    pool.parallel_for(0, kItems, [&](std::size_t begin, std::size_t end,
                                     std::size_t slot) {
      for (std::size_t i = begin; i < end; ++i) {
        registry.add(slot, "work.items");
        if (i % 2 == 1) registry.add(slot, "work.odd");
        registry.observe(slot, "work.size", static_cast<double>(i));
      }
    });
    EXPECT_EQ(registry.counter("work.items"), kItems);
    EXPECT_EQ(registry.counter("work.odd"), kItems / 2);

    const std::string dump = dump_json(registry);
    if (reference_dump.empty()) {
      reference_dump = dump;
    } else {
      EXPECT_EQ(dump, reference_dump) << "workers=" << workers;
    }
  }
}

TEST(ObsRegistry, HistogramBucketsCountAndOverflow) {
  Registry registry(1);
  registry.define_histogram("h", {1.0, 10.0});
  registry.observe("h", 0.5);   // bucket 0 (<= 1)
  registry.observe("h", 1.0);   // bucket 0 (inclusive upper bound)
  registry.observe("h", 5.0);   // bucket 1
  registry.observe("h", 100.0); // overflow

  const std::vector<HistogramValue> histograms = registry.histograms();
  ASSERT_EQ(histograms.size(), 1u);
  const HistogramValue& h = histograms[0];
  EXPECT_EQ(h.name, "h");
  ASSERT_EQ(h.upper_bounds.size(), 2u);
  ASSERT_EQ(h.counts.size(), 3u);
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 106.5);
}

TEST(ObsRegistry, UndefinedHistogramUsesDecadeBoundsAndRedefineThrows) {
  Registry registry(1);
  registry.observe("onthefly", 50.0);
  const std::vector<HistogramValue> histograms = registry.histograms();
  ASSERT_EQ(histograms.size(), 1u);
  ASSERT_EQ(histograms[0].upper_bounds.size(), 10u);
  EXPECT_DOUBLE_EQ(histograms[0].upper_bounds.front(), 1.0);
  EXPECT_DOUBLE_EQ(histograms[0].upper_bounds.back(), 1e9);

  EXPECT_THROW(registry.define_histogram("onthefly", {1.0}),
               std::invalid_argument);
  EXPECT_THROW(registry.define_histogram("bad", {2.0, 1.0}),
               std::invalid_argument);
}

TEST(ObsRegistry, DumpJsonIsSortedAndStable) {
  Registry registry(2);
  registry.add(1, "b.counter", 2);
  registry.add(0, "a.counter", 1);
  const std::string dump = dump_json(registry);
  EXPECT_NE(dump.find("\"a.counter\""), std::string::npos);
  EXPECT_NE(dump.find("\"b.counter\""), std::string::npos);
  EXPECT_LT(dump.find("\"a.counter\""), dump.find("\"b.counter\""));
  EXPECT_EQ(dump.back(), '\n');
  EXPECT_EQ(dump, dump_json(registry));  // reading must not mutate
}

}  // namespace
}  // namespace joules::obs
