// The no-perturbation contract: attaching an obs::Registry to a sweep must
// not change a single bit of its domain output, and the counters the sweep
// records must themselves be deterministic across worker counts. (The
// compile-time half of the contract — JOULES_OBS=OFF builds byte-identical
// golden traces — is exercised by the CI matrix, which builds and runs this
// same suite with the registry compiled out.)
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "network/dataset.hpp"
#include "network/simulation.hpp"
#include "network/trace_engine.hpp"
#include "obs/registry.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

const NetworkSimulation& sim() {
  static NetworkSimulation simulation(build_switch_like_network(), 7);
  return simulation;
}

TEST(ObsGolden, AttachingARegistryNeverChangesTraceBits) {
  const SimTime begin = sim().topology().options.study_begin;
  const SimTime end = begin + kSecondsPerDay;
  for (const std::size_t workers : {1u, 4u}) {
    TraceEngineOptions bare;
    bare.workers = workers;
    TraceEngine plain(sim(), bare);
    const NetworkTraces reference =
        plain.network_traces(begin, end, kSecondsPerHour);

    obs::Registry registry(workers);
    TraceEngineOptions observed;
    observed.workers = workers;
    observed.registry = &registry;
    TraceEngine instrumented(sim(), observed);
    const NetworkTraces traced =
        instrumented.network_traces(begin, end, kSecondsPerHour);

    EXPECT_EQ(traced.capacity_bps, reference.capacity_bps);
    ASSERT_EQ(traced.total_power_w.size(), reference.total_power_w.size());
    for (std::size_t i = 0; i < traced.total_power_w.size(); ++i) {
      EXPECT_EQ(traced.total_power_w[i].value, reference.total_power_w[i].value)
          << "workers=" << workers << " i=" << i;
      EXPECT_EQ(traced.total_traffic_bps[i].value,
                reference.total_traffic_bps[i].value)
          << "workers=" << workers << " i=" << i;
    }
  }
}

TEST(ObsGolden, SweepCountersIdenticalAcrossWorkerCounts) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  const SimTime begin = sim().topology().options.study_begin;
  const SimTime end = begin + kSecondsPerDay;
  std::uint64_t reference_samples = 0;
  std::uint64_t reference_blocks = 0;
  for (const std::size_t workers : {1u, 4u, 16u}) {
    obs::Registry registry(workers);
    TraceEngineOptions options;
    options.workers = workers;
    options.registry = &registry;
    TraceEngine engine(sim(), options);
    (void)engine.network_traces(begin, end, kSecondsPerHour);
    const std::uint64_t samples = registry.counter("trace.samples");
    const std::uint64_t blocks = registry.counter("trace.blocks");
    EXPECT_GT(samples, 0u);
    if (reference_samples == 0) {
      reference_samples = samples;
      reference_blocks = blocks;
    } else {
      EXPECT_EQ(samples, reference_samples) << "workers=" << workers;
      EXPECT_EQ(blocks, reference_blocks) << "workers=" << workers;
    }
  }
}

TEST(ObsGolden, RegistryWithTooFewShardsIsRejected) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  obs::Registry registry(1);
  TraceEngineOptions options;
  options.workers = 4;
  options.registry = &registry;
  EXPECT_THROW(TraceEngine(sim(), options), std::invalid_argument);
}

}  // namespace
}  // namespace joules
