#include "obs/manifest.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>

#include "obs/registry.hpp"
#include "obs/stopwatch.hpp"
#include "util/atomic_file.hpp"

namespace joules::obs {
namespace {

TEST(ObsManifest, ConfigFingerprintIsStableFnv1a) {
  // FNV-1a 64 offset basis: the fingerprint of the empty string.
  EXPECT_EQ(config_fingerprint(""), "cbf29ce484222325");
  EXPECT_EQ(config_fingerprint("a"), config_fingerprint("a"));
  EXPECT_NE(config_fingerprint("a"), config_fingerprint("b"));
  EXPECT_EQ(config_fingerprint("workers=4").size(), 16u);
}

TEST(ObsManifest, BuildIdIsNonEmpty) { EXPECT_FALSE(build_id().empty()); }

// A manifest written through write_file_atomic parses back to exactly the
// info, counters, and phase table that went in.
TEST(ObsManifest, RoundTripsThroughAtomicWrite) {
  FakeStopwatch clock(0, 1);
  Registry registry(2, &clock);
  registry.add(0, "run.samples", 10);
  registry.add(1, "run.samples", 32);
  registry.add(1, "run.retries", 2);
  // open_span/close_span directly (not the compile-gated RAII Span) so the
  // round trip stays fully exercised in JOULES_OBS=OFF builds too.
  registry.close_span(registry.open_span("run.sweep"));
  registry.close_span(registry.open_span("run.sweep"));
  registry.close_span(registry.open_span("run.report"));

  ManifestInfo info;
  info.tool = "unit_test";
  info.seed = 42;
  info.config_hash = config_fingerprint("unit config");
  info.notes = "round trip";

  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "obs_manifest_rt.json";
  write_manifest(path, info, registry);

  const auto text = read_text_file(path);
  ASSERT_TRUE(text.has_value());
  EXPECT_EQ(*text, manifest_json(info, registry));

  const ParsedManifest parsed = parse_manifest(*text);
  EXPECT_EQ(parsed.version, kManifestVersion);
  EXPECT_EQ(parsed.info.tool, "unit_test");
  EXPECT_EQ(parsed.info.build, build_id());
  EXPECT_EQ(parsed.info.seed, 42u);
  EXPECT_EQ(parsed.info.config_hash, config_fingerprint("unit config"));
  EXPECT_EQ(parsed.info.notes, "round trip");

  ASSERT_EQ(parsed.counters.size(), 2u);
  EXPECT_EQ(parsed.counters.at("run.samples"), 42u);
  EXPECT_EQ(parsed.counters.at("run.retries"), 2u);

  ASSERT_EQ(parsed.phase_order.size(), 2u);
  EXPECT_EQ(parsed.phase_order[0], "run.sweep");
  EXPECT_EQ(parsed.phase_order[1], "run.report");
  EXPECT_EQ(parsed.phases.at("run.sweep").count, 2u);
  EXPECT_EQ(parsed.phases.at("run.report").count, 1u);
  EXPECT_EQ(parsed.raw, *text);

  std::filesystem::remove(path);
}

TEST(ObsManifest, RenderMentionsToolCountersAndPhases) {
  FakeStopwatch clock(0, 1);
  Registry registry(1, &clock);
  registry.add("run.samples", 7);
  registry.close_span(registry.open_span("run.sweep"));
  ManifestInfo info;
  info.tool = "unit_test";
  const ParsedManifest parsed = parse_manifest(manifest_json(info, registry));
  const std::string text = render_manifest(parsed);
  EXPECT_NE(text.find("unit_test"), std::string::npos);
  EXPECT_NE(text.find("run.samples"), std::string::npos);
  EXPECT_NE(text.find("run.sweep"), std::string::npos);
}

TEST(ObsManifest, DiffReportsCleanForIdenticalAndFlagsCounterDrift) {
  Registry registry(1);
  registry.add("run.samples", 7);
  ManifestInfo info;
  info.tool = "unit_test";
  const ParsedManifest a = parse_manifest(manifest_json(info, registry));
  const std::string clean = diff_manifests(a, a);
  EXPECT_EQ(clean.rfind("no differences", 0), 0u) << clean;

  Registry other(1);
  other.add("run.samples", 9);
  const ParsedManifest b = parse_manifest(manifest_json(info, other));
  const std::string drift = diff_manifests(a, b);
  EXPECT_NE(drift.rfind("no differences", 0), 0u) << drift;
  EXPECT_NE(drift.find("run.samples"), std::string::npos);
}

TEST(ObsManifest, ParseRejectsMalformedAndWrongVersion) {
  EXPECT_THROW(parse_manifest("not json"), std::invalid_argument);
  EXPECT_THROW(parse_manifest("{}"), std::invalid_argument);
  EXPECT_THROW(parse_manifest("{\"manifest_version\": 99}"),
               std::invalid_argument);
}

}  // namespace
}  // namespace joules::obs
