#include "meter/power_meter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.hpp"

namespace joules {
namespace {

TEST(PowerMeter, GainWithinSpec) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const PowerMeter meter(PowerMeterSpec{}, seed);
    for (int c = 0; c < 2; ++c) {
      EXPECT_LE(std::fabs(meter.gain_error_frac(c)), 0.005);
    }
  }
}

TEST(PowerMeter, MeasurementWithinErrorEnvelope) {
  const PowerMeter meter(PowerMeterSpec{}, 3);
  const double truth = 358.0;
  for (SimTime t = 0; t < 1000; t += 7) {
    const double reading = meter.measure_w(0, truth, t);
    // +-0.5 % gain + noise floor.
    EXPECT_NEAR(reading, truth, truth * 0.005 + 0.5);
  }
}

TEST(PowerMeter, DeterministicReadings) {
  const PowerMeter meter(PowerMeterSpec{}, 5);
  EXPECT_DOUBLE_EQ(meter.measure_w(0, 100.0, 42), meter.measure_w(0, 100.0, 42));
}

TEST(PowerMeter, ChannelsHaveIndependentCalibration) {
  const PowerMeter meter(PowerMeterSpec{}, 7);
  EXPECT_NE(meter.gain_error_frac(0), meter.gain_error_frac(1));
}

TEST(PowerMeter, NeverNegative) {
  PowerMeterSpec spec;
  spec.noise_floor_w = 10.0;
  const PowerMeter meter(spec, 9);
  for (SimTime t = 0; t < 200; ++t) {
    EXPECT_GE(meter.measure_w(0, 0.5, t), 0.0);
  }
}

TEST(PowerMeter, RecordProducesRegularTrace) {
  const PowerMeter meter(PowerMeterSpec{}, 11);
  const TimeSeries trace = meter.record(
      0, [](SimTime) { return 100.0; }, 1000, 1060, 2);
  ASSERT_EQ(trace.size(), 30u);
  EXPECT_EQ(trace.front().time, 1000);
  EXPECT_EQ(trace.back().time, 1058);
  EXPECT_NEAR(mean(trace.values()), 100.0, 1.0);
}

TEST(PowerMeter, RecordFollowsChangingPower) {
  const PowerMeter meter(PowerMeterSpec{}, 13);
  const TimeSeries trace = meter.record(
      1, [](SimTime t) { return t < 50 ? 100.0 : 200.0; }, 0, 100, 1);
  EXPECT_NEAR(trace.value_at(25).value(), 100.0, 2.0);
  EXPECT_NEAR(trace.value_at(75).value(), 200.0, 2.0);
}

TEST(PowerMeter, AveragingBeatsTheNoiseFloor) {
  // 30-minute averaging (the paper's Fig. 4 smoothing) shrinks noise.
  const PowerMeter meter(PowerMeterSpec{}, 17);
  const TimeSeries raw = meter.record(
      0, [](SimTime) { return 358.0; }, 0, 3600, 1);
  const TimeSeries smooth = raw.window_average(1800);
  for (const Sample& s : smooth) {
    EXPECT_NEAR(s.value, 358.0 * (1.0 + meter.gain_error_frac(0)), 0.05);
  }
}

TEST(PowerMeter, RequiresAtLeastOneChannel) {
  PowerMeterSpec spec;
  spec.channels = 0;
  EXPECT_THROW(PowerMeter(spec, 1), std::invalid_argument);
}

TEST(PowerMeter, SubSecondRecordPeriodsClampToOneSecond) {
  // SimTime is whole seconds, so the meter's native 0.5 s streaming rate is
  // not representable; the documented contract is a clamp to 1 s, applied in
  // exactly one place.
  static_assert(PowerMeter::clamp_record_period(0) == PowerMeter::kMinRecordPeriodS);
  static_assert(PowerMeter::clamp_record_period(-5) == PowerMeter::kMinRecordPeriodS);
  static_assert(PowerMeter::clamp_record_period(1) == 1);
  static_assert(PowerMeter::clamp_record_period(30) == 30);

  const PowerMeter meter(PowerMeterSpec{}, 19);
  const auto flat = [](SimTime) { return 100.0; };
  const TimeSeries clamped = meter.record(0, flat, 0, 10, 0);
  const TimeSeries unit = meter.record(0, flat, 0, 10, 1);
  ASSERT_EQ(clamped.size(), 10u);
  ASSERT_EQ(clamped.size(), unit.size());
  for (std::size_t i = 0; i < clamped.size(); ++i) {
    EXPECT_EQ(clamped[i].time, unit[i].time);
    EXPECT_DOUBLE_EQ(clamped[i].value, unit[i].value);
  }
}

TEST(PowerMeter, FaultTransformAppliesAfterGainAndNoise) {
  PowerMeter meter(PowerMeterSpec{}, 21);
  const double clean = meter.measure_w(0, 200.0, 77);
  meter.set_fault_transform(
      [](int, SimTime, double reading) { return reading + 150.0; });
  EXPECT_TRUE(meter.has_fault_transform());
  EXPECT_DOUBLE_EQ(meter.measure_w(0, 200.0, 77), clean + 150.0);
  meter.clear_fault_transform();
  EXPECT_FALSE(meter.has_fault_transform());
  EXPECT_DOUBLE_EQ(meter.measure_w(0, 200.0, 77), clean);
}

}  // namespace
}  // namespace joules
