#include "psu/optimization.hpp"

#include <gtest/gtest.h>

namespace joules {
namespace {

PsuObservation make_obs(const std::string& router, int index, double cap,
                        double in, double out) {
  PsuObservation obs;
  obs.router_name = router;
  obs.router_model = "m";
  obs.psu_index = index;
  obs.capacity_w = cap;
  obs.input_power_w = in;
  obs.output_power_w = out;
  return obs;
}

// A fleet with one poor router (eff ~70 % @ 15 % load) and one good router
// (eff ~95 % @ 15 % load).
std::vector<RouterPsuGroup> small_fleet() {
  std::vector<PsuObservation> flat = {
      make_obs("poor", 0, 1000, 214.3, 150.0),  // eff 0.70
      make_obs("poor", 1, 1000, 214.3, 150.0),
      make_obs("good", 0, 1000, 157.9, 150.0),  // eff 0.95
      make_obs("good", 1, 1000, 157.9, 150.0)};
  return group_by_router(std::move(flat));
}

TEST(UpgradeToStandard, ImprovesOnlyBelowStandardPsus) {
  const auto fleet = small_fleet();
  const SavingsResult result =
      upgrade_to_standard(fleet, EightyPlusLevel::kPlatinum);
  EXPECT_NEAR(result.baseline_input_w, 2 * 214.3 + 2 * 157.9, 1e-9);
  // Poor PSUs rise to the Platinum curve; good PSUs already beat it at 15 %
  // load (0.95 > platinum@0.15), so they are untouched.
  EXPECT_LT(result.new_input_w, result.baseline_input_w);
  EXPECT_GT(result.saved_frac(), 0.05);
  // Savings can never be negative for an upgrade.
  EXPECT_GE(result.saved_w(), 0.0);
}

TEST(UpgradeToStandard, HigherStandardSavesMore) {
  const auto fleet = small_fleet();
  double previous = -1.0;
  for (const EightyPlusLevel level : kAllEightyPlusLevels) {
    const double saved = upgrade_to_standard(fleet, level).saved_w();
    EXPECT_GE(saved, previous) << to_string(level);
    previous = saved;
  }
}

TEST(ConsolidateToSinglePsu, DoublesLoadAndSaves) {
  // Both PSUs at 15 % load with PFE600-ish curves: moving the full output to
  // one PSU lifts it to 30 % load, where the curve is better.
  std::vector<PsuObservation> flat = {
      make_obs("r", 0, 1000, 171.4, 150.0),  // eff 0.875 ~ PFE600 @ 15 %
      make_obs("r", 1, 1000, 171.4, 150.0)};
  const auto fleet = group_by_router(std::move(flat));
  const SavingsResult result = consolidate_to_single_psu(fleet);
  EXPECT_GT(result.saved_w(), 0.0);
  // New input ~ 300 / eff(0.30); calibrated offset is ~0 for this synthetic
  // PSU, so eff ~ 0.925.
  EXPECT_NEAR(result.new_input_w, 300.0 / 0.925, 2.0);
}

TEST(ConsolidateToSinglePsu, SkipsSinglePsuRouters) {
  std::vector<PsuObservation> flat = {make_obs("r", 0, 1000, 171.4, 150.0)};
  const auto fleet = group_by_router(std::move(flat));
  const SavingsResult result = consolidate_to_single_psu(fleet);
  EXPECT_DOUBLE_EQ(result.saved_w(), 0.0);
}

TEST(ConsolidateToSinglePsu, SkipsWhenSurvivorWouldOverload) {
  std::vector<PsuObservation> flat = {
      make_obs("r", 0, 300, 214.3, 200.0),
      make_obs("r", 1, 300, 214.3, 200.0)};  // total 400 > 300 capacity
  const auto fleet = group_by_router(std::move(flat));
  const SavingsResult result = consolidate_to_single_psu(fleet);
  EXPECT_DOUBLE_EQ(result.saved_w(), 0.0);
}

TEST(ConsolidateAndUpgrade, BeatsEitherAlone) {
  const auto fleet = small_fleet();
  const double both =
      consolidate_and_upgrade(fleet, EightyPlusLevel::kTitanium).saved_w();
  const double only_consolidate = consolidate_to_single_psu(fleet).saved_w();
  const double only_upgrade =
      upgrade_to_standard(fleet, EightyPlusLevel::kTitanium).saved_w();
  EXPECT_GE(both, only_consolidate - 1e-9);
  EXPECT_GE(both, only_upgrade - 1e-9);
}

TEST(RightSize, SmallerCapacityAtLowLoadSaves) {
  // 150 W delivered from a 2000 W PSU: 7.5 % load, terrible. Right-sizing
  // with k=2 picks max(250, 400) -> l_max=150, k*l=300 -> option 400.
  std::vector<PsuObservation> flat = {
      make_obs("r", 0, 2000, 187.0, 150.0),
      make_obs("r", 1, 2000, 187.0, 150.0)};
  const auto fleet = group_by_router(std::move(flat));
  const SavingsResult result = right_size_capacity(fleet, 2.0, 250.0);
  EXPECT_GT(result.saved_w(), 0.0);
}

TEST(RightSize, LargerMinimumCapacityCanCostPower) {
  // Forcing at least 2700 W on a lightly loaded router increases losses
  // (Table 4's negative right-hand columns).
  std::vector<PsuObservation> flat = {
      make_obs("r", 0, 750, 171.0, 150.0), make_obs("r", 1, 750, 171.0, 150.0)};
  const auto fleet = group_by_router(std::move(flat));
  const SavingsResult result = right_size_capacity(fleet, 2.0, 2700.0);
  EXPECT_LT(result.saved_w(), 0.0);
}

TEST(RightSize, KOneSavesAtLeastAsMuchAsKTwoNearThePlateau) {
  // 150 W per PSU: k=1 picks a 250 W capacity (60 % load, on the efficiency
  // plateau) while k=2 picks 400 W (37.5 % load, below it). Note this is not
  // a universal invariant — whichever k lands closer to the plateau wins —
  // but for the low-load fleets of the paper k=1 saves at least as much
  // (Table 4).
  std::vector<PsuObservation> flat = {
      make_obs("r", 0, 2000, 180.0, 150.0), make_obs("r", 1, 2000, 180.0, 150.0)};
  const auto fleet = group_by_router(std::move(flat));
  const double k1 = right_size_capacity(fleet, 1.0, 250.0).saved_w();
  const double k2 = right_size_capacity(fleet, 2.0, 250.0).saved_w();
  EXPECT_GE(k1, k2 - 1e-9);
  EXPECT_GT(k2, 0.0);
}

TEST(RightSize, ValidatesArguments) {
  const auto fleet = small_fleet();
  EXPECT_THROW(static_cast<void>(right_size_capacity(fleet, 0.0, 250.0)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(right_size_capacity(fleet, 2.0, 250.0, {})),
               std::invalid_argument);
}

TEST(SavingsResult, FractionHandlesZeroBaseline) {
  SavingsResult r;
  EXPECT_DOUBLE_EQ(r.saved_frac(), 0.0);
}

}  // namespace
}  // namespace joules
