#include "psu/eighty_plus.hpp"

#include <gtest/gtest.h>

namespace joules {
namespace {

TEST(EightyPlus, LevelsHaveIncreasingRequirements) {
  double previous = 0.0;
  for (const EightyPlusLevel level : kAllEightyPlusLevels) {
    const auto points = set_points(level);
    ASSERT_FALSE(points.empty());
    double at50 = 0.0;
    for (const SetPoint& sp : points) {
      // joules-lint: allow(float-equality) — 0.50 is an exactly representable table key
      if (sp.load_frac == 0.50) at50 = sp.min_efficiency;
    }
    EXPECT_GT(at50, previous) << to_string(level);
    previous = at50;
  }
}

TEST(EightyPlus, TitaniumHasTenPercentSetPoint) {
  const auto points = set_points(EightyPlusLevel::kTitanium);
  EXPECT_EQ(points.size(), 4u);
  EXPECT_DOUBLE_EQ(points.front().load_frac, 0.10);
}

TEST(EightyPlus, Pfe600IsPlatinumButNotTitanium) {
  // Fig. 5: the PFE600 is Platinum-rated.
  const EfficiencyCurve& curve = pfe600_curve();
  EXPECT_TRUE(is_certified(curve, EightyPlusLevel::kBronze));
  EXPECT_TRUE(is_certified(curve, EightyPlusLevel::kGold));
  EXPECT_TRUE(is_certified(curve, EightyPlusLevel::kPlatinum));
  EXPECT_FALSE(is_certified(curve, EightyPlusLevel::kTitanium));
  EXPECT_EQ(certification(curve).value(), EightyPlusLevel::kPlatinum);
}

TEST(EightyPlus, PoorCurveHasNoCertification) {
  const EfficiencyCurve poor = pfe600_curve().offset_by(-0.20);
  EXPECT_FALSE(certification(poor).has_value());
}

TEST(EightyPlus, StandardCurveMeetsItsOwnSetPoints) {
  for (const EightyPlusLevel level : kAllEightyPlusLevels) {
    const EfficiencyCurve curve = standard_curve(level);
    EXPECT_TRUE(is_certified(curve, level)) << to_string(level);
  }
}

TEST(EightyPlus, StandardCurvesAreOrdered) {
  // At any load, a higher standard's curve is at least as efficient.
  const EfficiencyCurve bronze = standard_curve(EightyPlusLevel::kBronze);
  const EfficiencyCurve platinum = standard_curve(EightyPlusLevel::kPlatinum);
  const EfficiencyCurve titanium = standard_curve(EightyPlusLevel::kTitanium);
  for (const double load : {0.05, 0.1, 0.2, 0.5, 0.8, 1.0}) {
    EXPECT_LE(bronze.at(load), platinum.at(load)) << load;
    EXPECT_LE(platinum.at(load), titanium.at(load)) << load;
  }
}

TEST(EightyPlus, StandardCurveIsMinimal) {
  // The standard curve should touch (not exceed by much) its binding set
  // point: shifting it down by any amount must break certification.
  for (const EightyPlusLevel level : kAllEightyPlusLevels) {
    const EfficiencyCurve curve = standard_curve(level);
    EXPECT_FALSE(is_certified(curve.offset_by(-0.005), level)) << to_string(level);
  }
}

TEST(EightyPlus, ToStringNames) {
  EXPECT_EQ(to_string(EightyPlusLevel::kBronze), "Bronze");
  EXPECT_EQ(to_string(EightyPlusLevel::kTitanium), "Titanium");
}

}  // namespace
}  // namespace joules
