#include "psu/efficiency_curve.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace joules {
namespace {

TEST(EfficiencyCurve, ValidatesInput) {
  using P = EfficiencyCurve::Point;
  EXPECT_THROW(EfficiencyCurve(std::vector<P>{{0.5, 0.9}}), std::invalid_argument);
  EXPECT_THROW(EfficiencyCurve(std::vector<P>{{0.5, 0.9}, {0.5, 0.95}}),
               std::invalid_argument);
  EXPECT_THROW(EfficiencyCurve(std::vector<P>{{0.2, 0.0}, {0.5, 0.9}}),
               std::invalid_argument);
  EXPECT_THROW(EfficiencyCurve(std::vector<P>{{0.2, 0.9}, {0.5, 1.2}}),
               std::invalid_argument);
}

TEST(EfficiencyCurve, InterpolatesLinearly) {
  const EfficiencyCurve curve(
      std::vector<EfficiencyCurve::Point>{{0.2, 0.80}, {0.4, 0.90}});
  EXPECT_DOUBLE_EQ(curve.at(0.2), 0.80);
  EXPECT_DOUBLE_EQ(curve.at(0.3), 0.85);
  EXPECT_DOUBLE_EQ(curve.at(0.4), 0.90);
}

TEST(EfficiencyCurve, ClampsOutsideRange) {
  const EfficiencyCurve curve(std::vector<EfficiencyCurve::Point>{{0.2, 0.80}, {0.4, 0.90}});
  EXPECT_DOUBLE_EQ(curve.at(0.0), 0.80);
  EXPECT_DOUBLE_EQ(curve.at(1.0), 0.90);
}

TEST(EfficiencyCurve, OffsetShiftsAndClamps) {
  const EfficiencyCurve curve(std::vector<EfficiencyCurve::Point>{{0.2, 0.80}, {0.4, 0.98}});
  const EfficiencyCurve up = curve.offset_by(0.05);
  EXPECT_NEAR(up.at(0.2), 0.85, 1e-12);
  EXPECT_NEAR(up.at(0.4), 1.0, 1e-12);  // clamped at 100 %
  const EfficiencyCurve down = curve.offset_by(-0.9);
  EXPECT_NEAR(down.at(0.2), EfficiencyCurve::kMinEfficiency, 1e-12);
}

TEST(EfficiencyCurve, OffsetForObservationRoundTrips) {
  const EfficiencyCurve& reference = pfe600_curve();
  const double offset = reference.offset_for_observation(0.15, 0.80);
  const EfficiencyCurve shifted = reference.offset_by(offset);
  EXPECT_NEAR(shifted.at(0.15), 0.80, 1e-12);
}

TEST(Pfe600, MatchesFigureFiveShape) {
  const EfficiencyCurve& curve = pfe600_curve();
  // Platinum-rated: ~90 % at 20 %, ~94 % plateau at 50-60 %, ~91 % at 100 %.
  EXPECT_NEAR(curve.at(0.20), 0.90, 0.01);
  EXPECT_NEAR(curve.at(0.50), 0.94, 0.005);
  EXPECT_NEAR(curve.at(1.00), 0.91, 0.005);
  // Notoriously bad at low loads (§9.1).
  EXPECT_LT(curve.at(0.05), 0.80);
  // Monotone increase up to the plateau.
  EXPECT_LT(curve.at(0.10), curve.at(0.20));
  EXPECT_LT(curve.at(0.20), curve.at(0.50));
  // Mild droop after the plateau.
  EXPECT_GT(curve.at(0.60), curve.at(1.00));
}

TEST(InputPower, InverseOfEfficiency) {
  const EfficiencyCurve& curve = pfe600_curve();
  const double in = input_power_w(300.0, 600.0, curve);
  EXPECT_NEAR(in, 300.0 / curve.at(0.5), 1e-9);
  EXPECT_GT(in, 300.0);
  EXPECT_NEAR(conversion_loss_w(300.0, 600.0, curve), in - 300.0, 1e-12);
}

TEST(InputPower, ZeroOutputZeroInput) {
  EXPECT_DOUBLE_EQ(input_power_w(0.0, 600.0, pfe600_curve()), 0.0);
}

TEST(InputPower, ValidatesArguments) {
  EXPECT_THROW(static_cast<void>(input_power_w(10.0, 0.0, pfe600_curve())),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(input_power_w(-1.0, 600.0, pfe600_curve())),
               std::invalid_argument);
}

TEST(EfficiencyCurve, LowLoadCostsMoreInput) {
  // The same 60 W delivered by a 600 W PSU (10 % load) vs a 250 W PSU (24 %
  // load): the right-sized PSU draws less from the wall.
  const EfficiencyCurve& curve = pfe600_curve();
  EXPECT_GT(input_power_w(60.0, 600.0, curve), input_power_w(60.0, 250.0, curve));
}

// Reference interpolation without the segment-hint grid: the pre-LUT
// binary-search implementation, kept verbatim. at() must agree with it bit
// for bit — the hint grid may only change how the segment is *found*.
double reference_at(const EfficiencyCurve& curve, double load_frac) {
  const auto& points = curve.points();
  if (load_frac <= points.front().load_frac) return points.front().efficiency;
  if (load_frac >= points.back().load_frac) return points.back().efficiency;
  const auto upper = std::upper_bound(
      points.begin(), points.end(), load_frac,
      [](double l, const EfficiencyCurve::Point& p) { return l < p.load_frac; });
  const EfficiencyCurve::Point& hi = *upper;
  const EfficiencyCurve::Point& lo = *std::prev(upper);
  const double t = (load_frac - lo.load_frac) / (hi.load_frac - lo.load_frac);
  return lo.efficiency + t * (hi.efficiency - lo.efficiency);
}

TEST(EfficiencyCurve, SegmentHintGridMatchesBinarySearchBitForBit) {
  const EfficiencyCurve& curve = pfe600_curve();
  // Dense sweep across (and beyond) the covered range, plus the exact knot
  // loads and the points just next to them.
  for (int i = -50; i <= 1150; ++i) {
    const double load = static_cast<double>(i) / 1000.0;
    EXPECT_EQ(curve.at(load), reference_at(curve, load)) << "load=" << load;
  }
  for (const EfficiencyCurve::Point& point : curve.points()) {
    EXPECT_EQ(curve.at(point.load_frac), reference_at(curve, point.load_frac));
    const double below = std::nextafter(point.load_frac, 0.0);
    const double above = std::nextafter(point.load_frac, 2.0);
    EXPECT_EQ(curve.at(below), reference_at(curve, below));
    EXPECT_EQ(curve.at(above), reference_at(curve, above));
  }
  // An offset curve (different knots, same machinery) must agree too.
  const EfficiencyCurve shifted = curve.offset_by(-0.07);
  for (int i = 0; i <= 1000; ++i) {
    const double load = static_cast<double>(i) / 1000.0;
    EXPECT_EQ(shifted.at(load), reference_at(shifted, load)) << "load=" << load;
  }
}

TEST(EfficiencyCurve, TwoPointCurveInterpolates) {
  const EfficiencyCurve curve(
      std::vector<EfficiencyCurve::Point>{{0.0, 0.5}, {1.0, 0.9}});
  for (int i = 0; i <= 100; ++i) {
    const double load = static_cast<double>(i) / 100.0;
    EXPECT_EQ(curve.at(load), reference_at(curve, load)) << "load=" << load;
  }
}

}  // namespace
}  // namespace joules
