#include "psu/psu_unit.hpp"

#include <gtest/gtest.h>

namespace joules {
namespace {

PsuObservation make_obs(const std::string& router, int index, double cap,
                        double in, double out) {
  PsuObservation obs;
  obs.router_name = router;
  obs.router_model = "test-model";
  obs.psu_index = index;
  obs.capacity_w = cap;
  obs.input_power_w = in;
  obs.output_power_w = out;
  return obs;
}

TEST(PsuObservation, LoadAndEfficiency) {
  const PsuObservation obs = make_obs("r1", 0, 1000, 200, 170);
  EXPECT_DOUBLE_EQ(obs.load_frac(), 0.17);
  EXPECT_DOUBLE_EQ(obs.efficiency(), 0.85);
  EXPECT_DOUBLE_EQ(obs.loss_w(), 30.0);
}

TEST(PsuObservation, EfficiencyCappedAtHundredPercent) {
  // §9.2: some sensors report P_out > P_in (physically impossible); the
  // paper caps efficiency at 100 %.
  const PsuObservation obs = make_obs("r1", 0, 1000, 150, 160);
  EXPECT_DOUBLE_EQ(obs.efficiency(), 1.0);
  EXPECT_DOUBLE_EQ(obs.loss_w(), 0.0);
}

TEST(PsuObservation, DegenerateInputsAreSafe) {
  const PsuObservation zero_cap = make_obs("r1", 0, 0, 100, 80);
  EXPECT_DOUBLE_EQ(zero_cap.load_frac(), 0.0);
  const PsuObservation zero_in = make_obs("r1", 0, 1000, 0, 0);
  EXPECT_DOUBLE_EQ(zero_in.efficiency(), 0.0);
}

TEST(PsuObservation, CalibratedCurvePassesThroughObservation) {
  const PsuObservation obs = make_obs("r1", 0, 1000, 200, 150);
  const EfficiencyCurve curve = obs.calibrated_curve();
  EXPECT_NEAR(curve.at(obs.load_frac()), obs.efficiency(), 1e-12);
}

TEST(RouterPsuGroup, Totals) {
  RouterPsuGroup group;
  group.psus = {make_obs("r1", 0, 1000, 200, 170),
                make_obs("r1", 1, 1000, 180, 150)};
  EXPECT_DOUBLE_EQ(group.total_input_w(), 380.0);
  EXPECT_DOUBLE_EQ(group.total_output_w(), 320.0);
}

TEST(GroupByRouter, GroupsAndPreservesOrder) {
  std::vector<PsuObservation> flat = {
      make_obs("r1", 0, 1000, 200, 170), make_obs("r2", 0, 500, 100, 80),
      make_obs("r1", 1, 1000, 190, 160), make_obs("r3", 0, 250, 50, 40)};
  const auto groups = group_by_router(std::move(flat));
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].router_name, "r1");
  EXPECT_EQ(groups[0].psus.size(), 2u);
  EXPECT_EQ(groups[1].router_name, "r2");
  EXPECT_EQ(groups[2].router_name, "r3");
}

}  // namespace
}  // namespace joules
