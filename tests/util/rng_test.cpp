#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/descriptive.hpp"

namespace joules {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng root(7);
  Rng fork1 = root.fork("router-0");
  Rng fork1_again = Rng(7).fork("router-0");
  Rng fork2 = root.fork("router-1");
  EXPECT_EQ(fork1.next(), fork1_again.next());
  EXPECT_NE(fork1.next(), fork2.next());
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo = saw_lo || v == 2;
    saw_hi = saw_hi || v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(6);
  std::vector<double> samples;
  samples.reserve(50000);
  for (int i = 0; i < 50000; ++i) samples.push_back(rng.normal(10.0, 2.0));
  EXPECT_NEAR(mean(samples), 10.0, 0.05);
  EXPECT_NEAR(stddev(samples), 2.0, 0.05);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(8);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, LogNormalMedianApproximatelyCorrect) {
  Rng rng(9);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.log_normal(5.0, 0.5));
  EXPECT_NEAR(median(samples), 5.0, 0.15);
  for (double v : samples) EXPECT_GT(v, 0.0);
}

}  // namespace
}  // namespace joules
