#include "util/sim_clock.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace joules {
namespace {

TEST(SimClock, EpochIsZero) {
  EXPECT_EQ(make_time(1970, 1, 1), 0);
  EXPECT_EQ(days_from_civil(1970, 1, 1), 0);
}

TEST(SimClock, KnownTimestamps) {
  EXPECT_EQ(make_time(2024, 9, 8), 1725753600);
  EXPECT_EQ(make_time(2000, 1, 1), 946684800);
  EXPECT_EQ(make_time(2024, 2, 29), 1709164800);  // leap day
}

TEST(SimClock, RoundTripThroughCalendar) {
  for (const SimTime t : {SimTime{0}, make_time(2024, 9, 8, 13, 5, 42),
                          make_time(1999, 12, 31, 23, 59, 59),
                          make_time(2100, 6, 15, 1, 2, 3)}) {
    EXPECT_EQ(to_sim_time(to_calendar(t)), t);
  }
}

TEST(SimClock, CalendarFieldsCorrect) {
  const CalendarDate c = to_calendar(make_time(2024, 10, 20, 7, 30, 15));
  EXPECT_EQ(c.year, 2024);
  EXPECT_EQ(c.month, 10);
  EXPECT_EQ(c.day, 20);
  EXPECT_EQ(c.hour, 7);
  EXPECT_EQ(c.minute, 30);
  EXPECT_EQ(c.second, 15);
}

TEST(SimClock, DayOfWeek) {
  EXPECT_EQ(day_of_week(make_time(1970, 1, 1)), 3);   // Thursday
  EXPECT_EQ(day_of_week(make_time(2024, 9, 8)), 6);   // Sunday
  EXPECT_EQ(day_of_week(make_time(2024, 9, 9)), 0);   // Monday
  EXPECT_EQ(day_of_week(make_time(2025, 7, 4)), 4);   // Friday
}

TEST(SimClock, SecondsOfDay) {
  EXPECT_EQ(seconds_of_day(make_time(2024, 9, 8)), 0);
  EXPECT_EQ(seconds_of_day(make_time(2024, 9, 8, 1, 0, 30)), 3630);
  EXPECT_EQ(seconds_of_day(make_time(2024, 9, 8, 23, 59, 59)),
            kSecondsPerDay - 1);
}

TEST(SimClock, Formatting) {
  const SimTime t = make_time(2024, 9, 8, 13, 5, 7);
  EXPECT_EQ(format_date(t), "2024-09-08");
  EXPECT_EQ(format_date_time(t), "2024-09-08 13:05:07");
  EXPECT_EQ(format_short_date(t), "Sep 08");
}

TEST(SimClock, NegativeTimesBeforeEpoch) {
  const SimTime t = make_time(1969, 12, 31, 23, 0, 0);
  EXPECT_LT(t, 0);
  const CalendarDate c = to_calendar(t);
  EXPECT_EQ(c.year, 1969);
  EXPECT_EQ(c.month, 12);
  EXPECT_EQ(c.day, 31);
  EXPECT_EQ(c.hour, 23);
}

}  // namespace
}  // namespace joules
