#include "util/ascii_chart.hpp"

#include <gtest/gtest.h>

namespace joules {
namespace {

TEST(AsciiChart, LineChartContainsGlyphAndLegend) {
  ChartSeries s;
  s.name = "power";
  s.glyph = '*';
  s.x = {0, 1, 2, 3};
  s.y = {10, 12, 11, 13};
  ChartOptions opts;
  opts.title = "Test chart";
  const std::string out = render_line_chart({s}, opts);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("Test chart"), std::string::npos);
  EXPECT_NE(out.find("[*] power"), std::string::npos);
}

TEST(AsciiChart, EmptySeriesDoesNotCrash) {
  const std::string out = render_line_chart({}, ChartOptions{});
  EXPECT_FALSE(out.empty());
}

TEST(AsciiChart, ConstantSeriesDoesNotCrash) {
  ChartSeries s;
  s.x = {0, 1};
  s.y = {5, 5};
  const std::string out = render_line_chart({s}, ChartOptions{});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiChart, ScatterPlotsAllSeries) {
  ChartSeries a;
  a.glyph = 'o';
  a.x = {1};
  a.y = {1};
  ChartSeries b;
  b.glyph = 'x';
  b.x = {2};
  b.y = {2};
  const std::string out = render_scatter({a, b}, ChartOptions{});
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(AsciiChart, TimeSeriesChartUsesDaysAxis) {
  TimeSeries ts;
  ts.push(0, 1.0);
  ts.push(86400, 2.0);
  const std::string out =
      render_time_series_chart({{"trace", ts}}, ChartOptions{});
  EXPECT_NE(out.find("days since trace start"), std::string::npos);
}

TEST(AsciiChart, TextTableAlignsColumns) {
  const std::string out = render_text_table(
      {"Model", "Power"}, {{"NCS-55A1-24H", "358"}, {"ASR-9001", "335"}});
  EXPECT_NE(out.find("NCS-55A1-24H"), std::string::npos);
  EXPECT_NE(out.find("| Model"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(AsciiChart, NonFinitePointsSkipped) {
  ChartSeries s;
  s.x = {0, 1, 2};
  s.y = {1.0, std::numeric_limits<double>::quiet_NaN(), 2.0};
  EXPECT_NO_THROW(render_line_chart({s}, ChartOptions{}));
}

}  // namespace
}  // namespace joules
