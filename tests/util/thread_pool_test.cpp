#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

namespace joules {
namespace {

TEST(ChunkRangeTest, PartitionsRangeExactlyAndBalanced) {
  for (const std::size_t begin : {std::size_t{0}, std::size_t{3}}) {
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          std::size_t{8}, std::size_t{107}}) {
      for (std::size_t slots : {std::size_t{1}, std::size_t{2}, std::size_t{8},
                                std::size_t{13}}) {
        std::size_t cursor = begin;
        std::size_t smallest = n + 1;
        std::size_t largest = 0;
        for (std::size_t s = 0; s < slots; ++s) {
          const ThreadPool::Range range =
              ThreadPool::chunk_range(begin, begin + n, s, slots);
          // Chunks are contiguous, ordered, and tile the range exactly.
          EXPECT_EQ(range.begin, cursor);
          EXPECT_LE(range.begin, range.end);
          cursor = range.end;
          const std::size_t size = range.end - range.begin;
          smallest = std::min(smallest, size);
          largest = std::max(largest, size);
        }
        EXPECT_EQ(cursor, begin + n);
        EXPECT_LE(largest - smallest, 1u) << "n=" << n << " slots=" << slots;
      }
    }
  }
}

TEST(ThreadPoolTest, DefaultConstructionHasAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPoolTest, SingleWorkerRunsInlineOnCallingThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.parallel_for(0, 5, [&](std::size_t begin, std::size_t end, std::size_t slot) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
    EXPECT_EQ(slot, 0u);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPoolTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> visits(n);
  pool.parallel_for(0, n, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ChunksMatchChunkRangeAndSlotsAreDistinct) {
  const std::size_t workers = 4;
  ThreadPool pool(workers);
  std::vector<std::atomic<int>> slot_used(workers);
  pool.parallel_for(
      0, 103, [&](std::size_t begin, std::size_t end, std::size_t slot) {
        ASSERT_LT(slot, workers);
        slot_used[slot].fetch_add(1);
        const ThreadPool::Range expected =
            ThreadPool::chunk_range(0, 103, slot, workers);
        EXPECT_EQ(begin, expected.begin);
        EXPECT_EQ(end, expected.end);
      });
  for (std::size_t s = 0; s < workers; ++s) {
    EXPECT_EQ(slot_used[s].load(), 1) << "slot " << s;
  }
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokesTheFunction) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t, std::size_t) {
    calls.fetch_add(1);
  });
  pool.parallel_for(7, 3, [&](std::size_t, std::size_t, std::size_t) {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, RethrowsExceptionAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 4,
                        [&](std::size_t begin, std::size_t, std::size_t) {
                          if (begin == 1) throw std::runtime_error("chunk 1");
                        }),
      std::runtime_error);

  std::atomic<int> sum{0};
  pool.parallel_for(0, 100, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      sum.fetch_add(static_cast<int>(i));
    }
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, ManyConsecutiveJobsProduceStableResults) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(0, 257, [&](std::size_t begin, std::size_t end, std::size_t) {
      long local = 0;
      for (std::size_t i = begin; i < end; ++i) local += static_cast<long>(i);
      sum.fetch_add(local);
    });
    ASSERT_EQ(sum.load(), 256L * 257L / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, MoreWorkersThanItemsLeavesExtraSlotsIdle) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 3, [&](std::size_t begin, std::size_t end, std::size_t) {
    EXPECT_EQ(end - begin, 1u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 3);
}

}  // namespace
}  // namespace joules
