#include "util/time_series.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace joules {
namespace {

TimeSeries make_series(std::initializer_list<Sample> samples) {
  return TimeSeries(std::vector<Sample>(samples));
}

TEST(TimeSeries, PushRequiresIncreasingTime) {
  TimeSeries ts;
  ts.push(10, 1.0);
  ts.push(20, 2.0);
  EXPECT_THROW(ts.push(20, 3.0), std::invalid_argument);
  EXPECT_THROW(ts.push(5, 3.0), std::invalid_argument);
  EXPECT_EQ(ts.size(), 2u);
}

TEST(TimeSeries, ConstructorValidatesOrdering) {
  EXPECT_THROW(make_series({{10, 1.0}, {10, 2.0}}), std::invalid_argument);
  EXPECT_NO_THROW(make_series({{10, 1.0}, {11, 2.0}}));
}

TEST(TimeSeries, ValueAtStepInterpolation) {
  const TimeSeries ts = make_series({{10, 1.0}, {20, 2.0}, {30, 3.0}});
  EXPECT_FALSE(ts.value_at(9).has_value());
  EXPECT_EQ(ts.value_at(10).value(), 1.0);
  EXPECT_EQ(ts.value_at(15).value(), 1.0);
  EXPECT_EQ(ts.value_at(20).value(), 2.0);
  EXPECT_EQ(ts.value_at(1000).value(), 3.0);
}

TEST(TimeSeries, SliceHalfOpen) {
  const TimeSeries ts = make_series({{10, 1.0}, {20, 2.0}, {30, 3.0}});
  const TimeSeries cut = ts.slice(10, 30);
  ASSERT_EQ(cut.size(), 2u);
  EXPECT_EQ(cut[0].time, 10);
  EXPECT_EQ(cut[1].time, 20);
}

TEST(TimeSeries, WindowAverage) {
  // Windows of 100: [0,100) -> {1,3}, [100,200) -> {5}.
  const TimeSeries ts = make_series({{0, 1.0}, {50, 3.0}, {150, 5.0}});
  const TimeSeries avg = ts.window_average(100);
  ASSERT_EQ(avg.size(), 2u);
  EXPECT_EQ(avg[0].time, 0);
  EXPECT_DOUBLE_EQ(avg[0].value, 2.0);
  EXPECT_EQ(avg[1].time, 100);
  EXPECT_DOUBLE_EQ(avg[1].value, 5.0);
}

TEST(TimeSeries, WindowAverageSkipsEmptyWindows) {
  const TimeSeries ts = make_series({{0, 1.0}, {350, 2.0}});
  const TimeSeries avg = ts.window_average(100);
  ASSERT_EQ(avg.size(), 2u);
  EXPECT_EQ(avg[0].time, 0);
  EXPECT_EQ(avg[1].time, 300);
}

TEST(TimeSeries, WindowAverageRejectsNonPositiveWindow) {
  const TimeSeries ts = make_series({{0, 1.0}});
  EXPECT_THROW(ts.window_average(0), std::invalid_argument);
}

TEST(TimeSeries, PointwiseArithmetic) {
  const TimeSeries a = make_series({{0, 1.0}, {10, 2.0}});
  const TimeSeries b = make_series({{0, 0.5}, {10, 1.5}});
  const TimeSeries sum = a + b;
  const TimeSeries diff = a - b;
  EXPECT_DOUBLE_EQ(sum[0].value, 1.5);
  EXPECT_DOUBLE_EQ(sum[1].value, 3.5);
  EXPECT_DOUBLE_EQ(diff[0].value, 0.5);
  EXPECT_DOUBLE_EQ(diff[1].value, 0.5);
}

TEST(TimeSeries, PointwiseRejectsMisalignment) {
  const TimeSeries a = make_series({{0, 1.0}, {10, 2.0}});
  const TimeSeries b = make_series({{0, 0.5}, {11, 1.5}});
  const TimeSeries c = make_series({{0, 0.5}});
  EXPECT_THROW(a + b, std::invalid_argument);
  EXPECT_THROW(a + c, std::invalid_argument);
}

TEST(TimeSeries, ScaledAndShifted) {
  const TimeSeries a = make_series({{0, 1.0}, {10, 2.0}});
  EXPECT_DOUBLE_EQ(a.scaled(3.0)[1].value, 6.0);
  EXPECT_DOUBLE_EQ(a.shifted(-0.5)[0].value, 0.5);
}

TEST(TimeSeries, SumOnGridHandlesMissingAndStaggered) {
  // Router B is "commissioned" at t=20: before that it contributes 0.
  const TimeSeries a = make_series({{0, 100.0}, {20, 110.0}});
  const TimeSeries b = make_series({{20, 50.0}});
  const std::vector<TimeSeries> series = {a, b};
  const std::vector<SimTime> grid = {0, 10, 20, 30};
  const TimeSeries total = TimeSeries::sum_on_grid(series, grid);
  ASSERT_EQ(total.size(), 4u);
  EXPECT_DOUBLE_EQ(total[0].value, 100.0);
  EXPECT_DOUBLE_EQ(total[1].value, 100.0);
  EXPECT_DOUBLE_EQ(total[2].value, 160.0);
  EXPECT_DOUBLE_EQ(total[3].value, 160.0);
}

TEST(TimeSeries, MakeGrid) {
  const auto grid = make_grid(0, 100, 30);
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[3], 90);
  EXPECT_THROW(make_grid(0, 10, 0), std::invalid_argument);
}

TEST(TimeSeries, ValuesAndTimes) {
  const TimeSeries ts = make_series({{1, 10.0}, {2, 20.0}});
  EXPECT_EQ(ts.values(), (std::vector<double>{10.0, 20.0}));
  EXPECT_EQ(ts.times(), (std::vector<SimTime>{1, 2}));
}

}  // namespace
}  // namespace joules
