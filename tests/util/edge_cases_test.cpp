// Edge cases swept across the utility layer: inputs that production code
// paths can see but the happy-path tests do not exercise.
#include <gtest/gtest.h>

#include <filesystem>

#include "meter/power_meter.hpp"
#include "network/inventory.hpp"
#include "traffic/workload.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

TEST(EdgeCases, CsvReadMissingFileThrows) {
  EXPECT_THROW(CsvTable::read_file("/nonexistent/definitely/not/here.csv"),
               std::runtime_error);
}

TEST(EdgeCases, CsvWriteToUnwritablePathThrows) {
  CsvTable table({"a"});
  table.add_row({"1"});
  EXPECT_THROW(table.write_file("/nonexistent/dir/file.csv"), std::runtime_error);
}

TEST(EdgeCases, CsvParseWithoutTrailingNewline) {
  const CsvTable parsed = CsvTable::parse("a,b\n1,2");
  ASSERT_EQ(parsed.row_count(), 1u);
  EXPECT_EQ(parsed.cell(0, "b"), "2");
}

TEST(EdgeCases, CsvQuotedFieldSpanningParse) {
  const CsvTable parsed = CsvTable::parse("a\n\"line1\nline2\"\n");
  ASSERT_EQ(parsed.row_count(), 1u);
  EXPECT_EQ(parsed.cell(0, "a"), "line1\nline2");
}

TEST(EdgeCases, ParseFirstNumberLeadingSign) {
  EXPECT_DOUBLE_EQ(parse_first_number("+5 W").value(), 5.0);
  EXPECT_DOUBLE_EQ(parse_first_number("delta -0.37W").value(), -0.37);
  EXPECT_FALSE(parse_first_number("-").has_value());
  EXPECT_FALSE(parse_first_number("").has_value());
}

TEST(EdgeCases, WorkloadPeakHourBoundaries) {
  for (const int hour : {0, 23}) {
    WorkloadParams params;
    params.mean_rate_bps = gbps_to_bps(1);
    params.jitter_frac = 0.0;
    params.peak_hour_utc = hour;
    const DiurnalWorkload workload(params, make_time(2024, 9, 2), 1);
    // Peak must fall at the configured hour of a weekday.
    const double at_peak =
        workload.rate_bps(make_time(2024, 9, 3, hour, 0, 0));
    const double off_peak =
        workload.rate_bps(make_time(2024, 9, 3, (hour + 12) % 24, 0, 0));
    EXPECT_GT(at_peak, off_peak);
  }
}

TEST(EdgeCases, WorkloadZeroMeanStaysZero) {
  WorkloadParams params;
  params.mean_rate_bps = 0.0;
  const DiurnalWorkload workload(params, 0, 1);
  EXPECT_DOUBLE_EQ(workload.rate_bps(12345), 0.0);
  EXPECT_DOUBLE_EQ(workload.packet_rate_pps(12345), 0.0);
}

TEST(EdgeCases, MeterRecordSubsecondPeriodClampsToOneSecond) {
  const PowerMeter meter(PowerMeterSpec{}, 1);
  const TimeSeries trace = meter.record(
      0, [](SimTime) { return 100.0; }, 0, 10, 0);
  EXPECT_EQ(trace.size(), 10u);  // period clamped to 1 s
}

TEST(EdgeCases, MeterRecordEmptyWindow) {
  const PowerMeter meter(PowerMeterSpec{}, 1);
  EXPECT_TRUE(meter.record(0, [](SimTime) { return 1.0; }, 10, 10).empty());
}

TEST(EdgeCases, InventoryRejectsMalformedRows) {
  CsvTable modules({"router", "interface", "port_type", "transceiver", "rate",
                    "transceiver_part", "external", "spare", "link_id"});
  modules.add_row({"r1", "if0", "NOTAPORT", "LR4", "100G", "X", "0", "0", "-1"});
  EXPECT_THROW(interfaces_of(modules, "r1"), std::invalid_argument);
}

TEST(EdgeCases, InventoryUnknownRouterIsEmptyNotError) {
  CsvTable modules({"router", "interface", "port_type", "transceiver", "rate",
                    "transceiver_part", "external", "spare", "link_id"});
  EXPECT_TRUE(interfaces_of(modules, "ghost").empty());
}

}  // namespace
}  // namespace joules
