#include "util/units.hpp"

#include <gtest/gtest.h>

namespace joules {
namespace {

TEST(Units, RateConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(gbps_to_bps(100), 100e9);
  EXPECT_DOUBLE_EQ(bps_to_gbps(gbps_to_bps(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(bps_to_tbps(1.5e12), 1.5);
  EXPECT_DOUBLE_EQ(mbps_to_bps(100), 1e8);
}

TEST(Units, EnergyConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(picojoules_to_joules(22), 22e-12);
  EXPECT_DOUBLE_EQ(joules_to_picojoules(picojoules_to_joules(22)), 22);
  EXPECT_DOUBLE_EQ(nanojoules_to_joules(58), 58e-9);
  EXPECT_DOUBLE_EQ(joules_to_nanojoules(nanojoules_to_joules(58)), 58);
}

TEST(Units, BytesAndBits) {
  EXPECT_DOUBLE_EQ(bytes_to_bits(1500), 12000);
  EXPECT_DOUBLE_EQ(bits_to_bytes(bytes_to_bits(64)), 64);
}

TEST(Units, PacketRateMatchesEq12) {
  // Eq. 12 with the paper's L_header folded into the wire overhead:
  // 100 Gbps of 1500 B frames (+24 B overhead) -> r / (8 * 1524) pps.
  const double pps = packet_rate_for_bit_rate(100e9, 1500);
  EXPECT_NEAR(pps, 100e9 / (8.0 * 1524.0), 1e-6);
  // Without overhead (the §7 arithmetic check in the paper).
  EXPECT_NEAR(packet_rate_for_bit_rate(100e9, 1500, 0), 100e9 / 12000.0, 1e-6);
}

TEST(Units, PacketAndBitRateInverses) {
  for (const double frame : {64.0, 512.0, 1500.0, 9000.0}) {
    const double rate = 42.42e9;
    EXPECT_NEAR(bit_rate_for_packet_rate(packet_rate_for_bit_rate(rate, frame),
                                         frame),
                rate, 1e-3);
  }
}

TEST(Units, TimeConstants) {
  EXPECT_EQ(kSecondsPerMinute, 60);
  EXPECT_EQ(kSecondsPerHour, 3600);
  EXPECT_EQ(kSecondsPerDay, 86400);
  EXPECT_EQ(kSecondsPerWeek, 604800);
}

TEST(Units, PowerConversions) {
  EXPECT_DOUBLE_EQ(kw_to_w(21.75), 21750);
  EXPECT_DOUBLE_EQ(w_to_kw(kw_to_w(2.2)), 2.2);
}

TEST(Units, PaperSanityCheck) {
  // §7: "at 5 pJ/bit and 15 nJ/pkt, forwarding 100 Gbps demands between 3.4
  // and 0.6 W for 64 B and 1500 B packets" (no wire overhead in the paper's
  // arithmetic).
  const double e_bit = picojoules_to_joules(5);
  const double e_pkt = nanojoules_to_joules(15);
  const double rate = gbps_to_bps(100);
  const double w_64 = e_bit * rate + e_pkt * packet_rate_for_bit_rate(rate, 64, 0);
  const double w_1500 =
      e_bit * rate + e_pkt * packet_rate_for_bit_rate(rate, 1500, 0);
  EXPECT_NEAR(w_64, 3.4, 0.1);
  EXPECT_NEAR(w_1500, 0.625, 0.05);
}

}  // namespace
}  // namespace joules
