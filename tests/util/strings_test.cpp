#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace joules {
namespace {

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("QSFP28 Passive DAC"), "qsfp28 passive dac");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitLinesHandlesCrLf) {
  const auto lines = split_lines("one\r\ntwo\nthree\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[1], "two");
  EXPECT_EQ(lines[2], "three");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("NCS-55A1", "NCS"));
  EXPECT_FALSE(starts_with("NC", "NCS"));
}

TEST(Strings, ContainsCi) {
  EXPECT_TRUE(contains_ci("Typical Power: 600W", "typical power"));
  EXPECT_FALSE(contains_ci("Max Power", "typical"));
  EXPECT_TRUE(contains_ci("anything", ""));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("a-b-c", "-", "--"), "a--b--c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
}

TEST(Strings, ParseFirstNumberPlain) {
  EXPECT_DOUBLE_EQ(parse_first_number("Typical power: 600 W").value(), 600.0);
  EXPECT_DOUBLE_EQ(parse_first_number("-24 %").value(), -24.0);
  EXPECT_DOUBLE_EQ(parse_first_number("no digits here").value_or(-1), -1.0);
}

TEST(Strings, ParseFirstNumberThousandsSeparators) {
  EXPECT_DOUBLE_EQ(parse_first_number("up to 1,234.5 W").value(), 1234.5);
  EXPECT_DOUBLE_EQ(parse_first_number("12 800 Gbps").value(), 12800.0);
}

TEST(Strings, ParseFirstNumberDoesNotMergeSeparateNumbers) {
  // "25 C" style text: "at 25 100G ports" must not parse as 25100.
  EXPECT_DOUBLE_EQ(parse_first_number("25 1000 separate").value(), 25.0);
}

TEST(Strings, ParseAllNumbers) {
  const auto nums = parse_all_numbers("typ 450W, max 600W at 25C");
  ASSERT_EQ(nums.size(), 3u);
  EXPECT_DOUBLE_EQ(nums[0], 450.0);
  EXPECT_DOUBLE_EQ(nums[1], 600.0);
  EXPECT_DOUBLE_EQ(nums[2], 25.0);
}

}  // namespace
}  // namespace joules
