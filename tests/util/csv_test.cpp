#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>

namespace joules {
namespace {

TEST(Csv, RoundTripSimple) {
  CsvTable table({"name", "power_w"});
  table.add_row({"router-a", "358"});
  table.add_row({"router-b", "73.5"});
  const CsvTable parsed = CsvTable::parse(table.to_string());
  ASSERT_EQ(parsed.row_count(), 2u);
  EXPECT_EQ(parsed.cell(0, "name"), "router-a");
  EXPECT_DOUBLE_EQ(parsed.cell_double(1, "power_w"), 73.5);
}

TEST(Csv, QuotingSpecialCharacters) {
  CsvTable table({"field"});
  table.add_row({"has,comma"});
  table.add_row({"has\"quote"});
  table.add_row({"has\nnewline"});
  const CsvTable parsed = CsvTable::parse(table.to_string());
  ASSERT_EQ(parsed.row_count(), 3u);
  EXPECT_EQ(parsed.cell(0, "field"), "has,comma");
  EXPECT_EQ(parsed.cell(1, "field"), "has\"quote");
  EXPECT_EQ(parsed.cell(2, "field"), "has\nnewline");
}

TEST(Csv, RowWidthValidated) {
  CsvTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Csv, UnknownColumnThrows) {
  CsvTable table({"a"});
  table.add_row({"1"});
  EXPECT_THROW(table.cell(0, "missing"), std::out_of_range);
}

TEST(Csv, NonNumericCellThrows) {
  CsvTable table({"a"});
  table.add_row({"abc"});
  EXPECT_THROW(static_cast<void>(table.cell_double(0, "a")), std::invalid_argument);
}

TEST(Csv, FileRoundTrip) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "joules_csv_test.csv";
  CsvTable table({"x"});
  table.add_row({"42"});
  table.write_file(path);
  const CsvTable readback = CsvTable::read_file(path);
  EXPECT_DOUBLE_EQ(readback.cell_double(0, "x"), 42.0);
  std::filesystem::remove(path);
}

TEST(Csv, ParseSkipsBlankLines) {
  const CsvTable parsed = CsvTable::parse("a,b\n\n1,2\n");
  ASSERT_EQ(parsed.row_count(), 1u);
  EXPECT_EQ(parsed.cell(0, "b"), "2");
}

TEST(Csv, CellInt64RoundTripsExactValues) {
  CsvTable table({"v"});
  table.add_row({"9007199254740993"});   // 2^53 + 1: silently corrupted by
  table.add_row({"-9223372036854775808"});  // a double round trip
  table.add_row({"9223372036854775807"});
  EXPECT_EQ(table.cell_int64(0, "v"), 9007199254740993LL);
  EXPECT_EQ(table.cell_int64(1, "v"), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(table.cell_int64(2, "v"), std::numeric_limits<std::int64_t>::max());
  // The double path demonstrably loses the first value.
  EXPECT_NE(static_cast<std::int64_t>(table.cell_double(0, "v")),
            9007199254740993LL);
}

TEST(Csv, CellInt64RejectsNonIntegers) {
  CsvTable table({"v"});
  table.add_row({"12.5"});
  table.add_row({""});
  table.add_row({"12x"});
  table.add_row({"9223372036854775808"});  // INT64_MAX + 1 overflows
  for (std::size_t i = 0; i < table.row_count(); ++i) {
    EXPECT_THROW((void)table.cell_int64(i, "v"), std::invalid_argument)
        << "row " << i;
  }
}

TEST(FormatNumber, TrimsTrailingZeros) {
  EXPECT_EQ(format_number(358.0), "358");
  EXPECT_EQ(format_number(0.370000), "0.37");
  EXPECT_EQ(format_number(-0.0), "0");
  EXPECT_EQ(format_number(1.26, 1), "1.3");
}

TEST(FormatNumber, HandlesNonFinite) {
  EXPECT_EQ(format_number(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_number(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(format_number(std::numeric_limits<double>::quiet_NaN()), "nan");
}

}  // namespace
}  // namespace joules
