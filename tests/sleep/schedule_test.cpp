// Time-varying Hypnos: the diurnal schedule behaviour of [31].
#include <gtest/gtest.h>

#include "sleep/hypnos.hpp"
#include "sleep/savings.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

class ScheduleTest : public ::testing::Test {
 protected:
  static const NetworkSimulation& sim() {
    static const NetworkSimulation simulation(build_switch_like_network(), 3);
    return simulation;
  }
  static SimTime day_start() {
    // A Tuesday, to avoid weekend effects in the day/night comparison.
    return make_time(2024, 9, 3);
  }
};

TEST_F(ScheduleTest, WindowsTileTheSpan) {
  const SleepSchedule schedule = run_hypnos_schedule(
      sim(), day_start(), day_start() + kSecondsPerDay, 6 * kSecondsPerHour,
      kSecondsPerHour);
  ASSERT_EQ(schedule.windows.size(), 4u);
  EXPECT_EQ(schedule.windows.front().begin, day_start());
  EXPECT_EQ(schedule.windows.back().end, day_start() + kSecondsPerDay);
  for (std::size_t i = 1; i < schedule.windows.size(); ++i) {
    EXPECT_EQ(schedule.windows[i].begin, schedule.windows[i - 1].end);
  }
}

TEST_F(ScheduleTest, MoreLinksSleepAtNightThanAtPeak) {
  // 4-hour windows over one weekday: the night window (00-04 UTC) must sleep
  // at least as many links as the peak window (12-16 UTC, peak hour ~14).
  const SleepSchedule schedule = run_hypnos_schedule(
      sim(), day_start(), day_start() + kSecondsPerDay, 4 * kSecondsPerHour,
      kSecondsPerHour);
  ASSERT_EQ(schedule.windows.size(), 6u);
  const std::size_t night = schedule.windows[0].result.sleeping_links.size();
  const std::size_t peak = schedule.windows[3].result.sleeping_links.size();
  EXPECT_GE(night, peak);
  EXPECT_GE(schedule.max_links_off(), schedule.min_links_off());
}

TEST_F(ScheduleTest, FractionLinkTimeOffBetweenMinAndMax) {
  const SleepSchedule schedule = run_hypnos_schedule(
      sim(), day_start(), day_start() + kSecondsPerDay, 6 * kSecondsPerHour,
      kSecondsPerHour);
  const double fraction = schedule.fraction_link_time_off();
  EXPECT_GE(fraction,
            static_cast<double>(schedule.min_links_off()) /
                static_cast<double>(schedule.candidate_links) - 1e-9);
  EXPECT_LE(fraction,
            static_cast<double>(schedule.max_links_off()) /
                static_cast<double>(schedule.candidate_links) + 1e-9);
  EXPECT_GT(fraction, 0.1);
  EXPECT_LT(fraction, 0.7);
}

TEST_F(ScheduleTest, EnergyBracketConsistentWithPowerBracket) {
  const SleepSchedule schedule = run_hypnos_schedule(
      sim(), day_start(), day_start() + kSecondsPerDay, 6 * kSecondsPerHour,
      kSecondsPerHour);
  const SleepEnergySavings energy = estimate_schedule_energy(sim(), schedule);
  EXPECT_GT(energy.network_kwh, 400.0);  // ~24 kW x 24 h ~ 580 kWh
  EXPECT_LT(energy.network_kwh, 700.0);
  EXPECT_GT(energy.min_kwh, 0.0);
  EXPECT_LT(energy.min_kwh, energy.max_kwh);
  // §8's percentage band holds in energy terms too.
  EXPECT_GT(energy.min_frac(), 0.001);
  EXPECT_LT(energy.max_frac(), 0.03);
}

TEST_F(ScheduleTest, ValidatesInputs) {
  EXPECT_THROW(run_hypnos_schedule(sim(), day_start(), day_start(), 3600, 600),
               std::invalid_argument);
  EXPECT_THROW(
      run_hypnos_schedule(sim(), day_start(), day_start() + 100, 0, 600),
      std::invalid_argument);
}

TEST_F(ScheduleTest, EmptyScheduleSafeAccessors) {
  SleepSchedule empty;
  EXPECT_DOUBLE_EQ(empty.fraction_link_time_off(), 0.0);
  EXPECT_EQ(empty.min_links_off(), 0u);
  EXPECT_EQ(empty.max_links_off(), 0u);
}

}  // namespace
}  // namespace joules
