// Time-varying Hypnos: the diurnal schedule behaviour of [31].
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "sleep/hypnos.hpp"
#include "sleep/savings.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

class ScheduleTest : public ::testing::Test {
 protected:
  static const NetworkSimulation& sim() {
    static const NetworkSimulation simulation(build_switch_like_network(), 3);
    return simulation;
  }
  static SimTime day_start() {
    // A Tuesday, to avoid weekend effects in the day/night comparison.
    return make_time(2024, 9, 3);
  }
};

TEST_F(ScheduleTest, WindowsTileTheSpan) {
  const SleepSchedule schedule = run_hypnos_schedule(
      sim(), day_start(), day_start() + kSecondsPerDay, 6 * kSecondsPerHour,
      kSecondsPerHour);
  ASSERT_EQ(schedule.windows.size(), 4u);
  EXPECT_EQ(schedule.windows.front().begin, day_start());
  EXPECT_EQ(schedule.windows.back().end, day_start() + kSecondsPerDay);
  for (std::size_t i = 1; i < schedule.windows.size(); ++i) {
    EXPECT_EQ(schedule.windows[i].begin, schedule.windows[i - 1].end);
  }
}

TEST_F(ScheduleTest, MoreLinksSleepAtNightThanAtPeak) {
  // 4-hour windows over one weekday: the night window (00-04 UTC) must sleep
  // at least as many links as the peak window (12-16 UTC, peak hour ~14).
  const SleepSchedule schedule = run_hypnos_schedule(
      sim(), day_start(), day_start() + kSecondsPerDay, 4 * kSecondsPerHour,
      kSecondsPerHour);
  ASSERT_EQ(schedule.windows.size(), 6u);
  const std::size_t night = schedule.windows[0].result.sleeping_links.size();
  const std::size_t peak = schedule.windows[3].result.sleeping_links.size();
  EXPECT_GE(night, peak);
  EXPECT_GE(schedule.max_links_off(), schedule.min_links_off());
}

TEST_F(ScheduleTest, FractionLinkTimeOffBetweenMinAndMax) {
  const SleepSchedule schedule = run_hypnos_schedule(
      sim(), day_start(), day_start() + kSecondsPerDay, 6 * kSecondsPerHour,
      kSecondsPerHour);
  const double fraction = schedule.fraction_link_time_off();
  EXPECT_GE(fraction,
            static_cast<double>(schedule.min_links_off()) /
                static_cast<double>(schedule.candidate_links) - 1e-9);
  EXPECT_LE(fraction,
            static_cast<double>(schedule.max_links_off()) /
                static_cast<double>(schedule.candidate_links) + 1e-9);
  EXPECT_GT(fraction, 0.1);
  EXPECT_LT(fraction, 0.7);
}

TEST_F(ScheduleTest, EnergyBracketConsistentWithPowerBracket) {
  const SleepSchedule schedule = run_hypnos_schedule(
      sim(), day_start(), day_start() + kSecondsPerDay, 6 * kSecondsPerHour,
      kSecondsPerHour);
  const SleepEnergySavings energy = estimate_schedule_energy(sim(), schedule);
  EXPECT_GT(energy.network_kwh, 400.0);  // ~24 kW x 24 h ~ 580 kWh
  EXPECT_LT(energy.network_kwh, 700.0);
  EXPECT_GT(energy.min_kwh, 0.0);
  EXPECT_LT(energy.min_kwh, energy.max_kwh);
  // §8's percentage band holds in energy terms too.
  EXPECT_GT(energy.min_frac(), 0.001);
  EXPECT_LT(energy.max_frac(), 0.03);
}

TEST_F(ScheduleTest, ValidatesInputs) {
  EXPECT_THROW(run_hypnos_schedule(sim(), day_start(), day_start(), 3600, 600),
               std::invalid_argument);
  EXPECT_THROW(
      run_hypnos_schedule(sim(), day_start(), day_start() + 100, 0, 600),
      std::invalid_argument);
}

TEST_F(ScheduleTest, RejectsNonPositiveSampleStepAtTheEntryPoint) {
  // Regression: sample_step was forwarded unvalidated and only blew up deep
  // inside the trace sweep with a message about the sweep's own step. The
  // schedule entry point must reject it by name.
  for (const SimTime bad_step : {SimTime{0}, SimTime{-600}}) {
    try {
      (void)run_hypnos_schedule(sim(), day_start(),
                                day_start() + kSecondsPerDay,
                                6 * kSecondsPerHour, bad_step);
      FAIL() << "sample_step " << bad_step << " must throw";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("sample_step"),
                std::string::npos)
          << "message must name the offending parameter: " << error.what();
      EXPECT_NE(std::string(error.what()).find("run_hypnos_schedule"),
                std::string::npos)
          << "message must name the entry point: " << error.what();
    }
  }
}

TEST_F(ScheduleTest, RecordsTheSampleStepItWasBuiltAt) {
  const SleepSchedule schedule = run_hypnos_schedule(
      sim(), day_start(), day_start() + kSecondsPerDay, 6 * kSecondsPerHour,
      kSecondsPerHour);
  EXPECT_EQ(schedule.sample_step, kSecondsPerHour);
}

TEST_F(ScheduleTest, EnergyIntegratesAtTheScheduleResolutionNotTheMidpoint) {
  // Regression: estimate_schedule_energy sampled each window's network power
  // once at the midpoint. Over a diurnal window that single sample is biased
  // by whatever the curve does at that instant; integrating at the
  // schedule's own sample resolution is not.
  // 24 hours whose midpoint lands on the 04:00 trough, where the single
  // sample underestimates the daily mean the most.
  SleepWindow window;
  window.begin = day_start() + 16 * kSecondsPerHour;
  window.end = window.begin + kSecondsPerDay;

  SleepSchedule integrated;
  integrated.sample_step = kSecondsPerHour;
  integrated.windows.push_back(window);
  integrated.candidate_links = 1;

  SleepSchedule midpoint = integrated;
  midpoint.sample_step = 0;  // hand-built schedules keep the old behaviour

  const SleepEnergySavings fine = estimate_schedule_energy(sim(), integrated);
  const SleepEnergySavings biased = estimate_schedule_energy(sim(), midpoint);

  // Independent expectation: the mean of the 24 hourly full-network power
  // sums, times 24 h.
  double mean_power = 0.0;
  for (int hour = 0; hour < 24; ++hour) {
    const SimTime t = window.begin + hour * kSecondsPerHour;
    double total = 0.0;
    for (std::size_t r = 0; r < sim().router_count(); ++r) {
      total += sim().wall_power_w(r, t);
    }
    mean_power += total;
  }
  mean_power /= 24.0;
  EXPECT_NEAR(fine.network_kwh, mean_power * 24.0 / 1000.0, 1e-6);

  // The midpoint sample (the 04:00 trough) visibly differs from the daily
  // mean — the bias the fix removes. The margin is modest because dynamic
  // power is a small slice of wall power, but pre-fix the two estimates were
  // identical by construction (both midpoint), i.e. the difference was 0.
  EXPECT_GT(std::abs(fine.network_kwh - biased.network_kwh), 0.1);
}

TEST_F(ScheduleTest, EmptyScheduleSafeAccessors) {
  SleepSchedule empty;
  EXPECT_DOUBLE_EQ(empty.fraction_link_time_off(), 0.0);
  EXPECT_EQ(empty.min_links_off(), 0u);
  EXPECT_EQ(empty.max_links_off(), 0u);
}

}  // namespace
}  // namespace joules
