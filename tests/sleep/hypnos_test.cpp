#include "sleep/hypnos.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "sleep/savings.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

// A small hand-built topology: a 4-node ring plus one chord, all 100G.
NetworkTopology ring_topology() {
  NetworkTopology topology;
  topology.pops = {"pop01"};
  const ProfileKey dac{PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                       LineRate::kG100};
  for (int i = 0; i < 4; ++i) {
    DeployedRouter router;
    router.name = "pop01-r" + std::to_string(i + 1);
    router.model = "NCS-55A1-24H";
    topology.routers.push_back(std::move(router));
  }
  auto add_link = [&](int a, int b) {
    const int link_id = static_cast<int>(topology.links.size());
    auto add_iface = [&](int router) {
      DeployedInterface iface;
      iface.name = "if-" + std::to_string(link_id);
      iface.profile = dac;
      iface.transceiver_part = "QSFP28-100G-DAC";
      iface.external = false;
      iface.link_id = link_id;
      topology.routers[static_cast<std::size_t>(router)].interfaces.push_back(iface);
      return static_cast<int>(
                 topology.routers[static_cast<std::size_t>(router)].interfaces.size()) -
             1;
    };
    InternalLink link;
    link.router_a = a;
    link.iface_a = add_iface(a);
    link.router_b = b;
    link.iface_b = add_iface(b);
    topology.links.push_back(link);
  };
  add_link(0, 1);  // link 0
  add_link(1, 2);  // link 1
  add_link(2, 3);  // link 2
  add_link(3, 0);  // link 3
  add_link(0, 2);  // link 4 (chord)
  return topology;
}

TEST(Hypnos, SleepsLightLinksKeepsConnectivity) {
  const NetworkTopology topology = ring_topology();
  // All links lightly loaded: the greedy pass can sleep links until the
  // graph would disconnect (a 4-node graph needs >= 3 edges).
  const std::vector<double> loads(5, gbps_to_bps(1));
  const HypnosResult result = run_hypnos(topology, loads);
  EXPECT_EQ(result.sleeping_links.size(), 2u);
  EXPECT_EQ(result.candidate_links, 5u);
  EXPECT_NEAR(result.fraction_off(), 0.4, 1e-9);
}

TEST(Hypnos, ReroutedTrafficRespectsUtilizationCeiling) {
  const NetworkTopology topology = ring_topology();
  // Load the chord heavily; other links moderate. With a 50 % ceiling the
  // chord (40G one-way) can only move if the detour stays under 50G.
  std::vector<double> loads = {gbps_to_bps(30), gbps_to_bps(30), gbps_to_bps(30),
                               gbps_to_bps(30), gbps_to_bps(40)};
  const HypnosResult result = run_hypnos(topology, loads);
  // No link can sleep: any reroute pushes a survivor over 50 % of 100G.
  EXPECT_TRUE(result.sleeping_links.empty());
  // Loads unchanged.
  for (std::size_t l = 0; l < loads.size(); ++l) {
    EXPECT_DOUBLE_EQ(result.final_loads_bps[l], loads[l]);
  }
}

TEST(Hypnos, TrafficIsConservedByRerouting) {
  const NetworkTopology topology = ring_topology();
  const std::vector<double> loads = {gbps_to_bps(2), gbps_to_bps(4),
                                     gbps_to_bps(6), gbps_to_bps(8),
                                     gbps_to_bps(10)};
  const HypnosResult result = run_hypnos(topology, loads);
  double before = 0.0;
  double after = 0.0;
  for (const double value : loads) before += value;
  for (const double value : result.final_loads_bps) after += value;
  // Rerouting moves traffic onto (possibly longer) paths, so total carried
  // bits can only grow or stay equal, never vanish.
  EXPECT_GE(after + 1.0, before);
  for (const int link_id : result.sleeping_links) {
    EXPECT_DOUBLE_EQ(result.final_loads_bps[static_cast<std::size_t>(link_id)], 0.0);
  }
}

TEST(Hypnos, CandidateOrderBreaksUtilizationTiesByLinkIndex) {
  // Regression: the candidate order used std::sort with a comparator over
  // float utilizations only. Synthesized symmetric links tie constantly, and
  // unstable partitioning then leaves the greedy order — and therefore which
  // links sleep — implementation-defined. Enough tied entries that an
  // unstable sort would actually permute them (libstdc++ introsort departs
  // from insertion sort above 16 elements).
  NetworkTopology topology;
  topology.pops = {"pop01"};
  const ProfileKey dac{PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                       LineRate::kG100};
  constexpr int kRouters = 48;
  for (int i = 0; i < kRouters; ++i) {
    DeployedRouter router;
    router.name = "pop01-r" + std::to_string(i + 1);
    router.model = "NCS-55A1-24H";
    topology.routers.push_back(std::move(router));
  }
  for (int a = 0; a < kRouters; ++a) {  // a ring: every link identical
    const int b = (a + 1) % kRouters;
    const int link_id = static_cast<int>(topology.links.size());
    auto add_iface = [&](int router) {
      DeployedInterface iface;
      iface.name = "if-" + std::to_string(link_id);
      iface.profile = dac;
      iface.transceiver_part = "QSFP28-100G-DAC";
      iface.link_id = link_id;
      topology.routers[static_cast<std::size_t>(router)].interfaces.push_back(
          iface);
      return static_cast<int>(topology.routers[static_cast<std::size_t>(router)]
                                  .interfaces.size()) -
             1;
    };
    InternalLink link;
    link.router_a = a;
    link.iface_a = add_iface(a);
    link.router_b = b;
    link.iface_b = add_iface(b);
    topology.links.push_back(link);
  }

  // All-tied utilizations: the order must be exactly ascending link index.
  const std::vector<double> tied(topology.links.size(), gbps_to_bps(5));
  const std::vector<std::size_t> order = hypnos_candidate_order(topology, tied);
  ASSERT_EQ(order.size(), topology.links.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i) << "tied utilizations must keep index order";
  }

  // Mixed: utilization still dominates; ties fall back to index order.
  std::vector<double> mixed = tied;
  mixed[7] = gbps_to_bps(1);
  mixed[31] = gbps_to_bps(1);
  const std::vector<std::size_t> sorted = hypnos_candidate_order(topology, mixed);
  EXPECT_EQ(sorted[0], 7u);
  EXPECT_EQ(sorted[1], 31u);
  for (std::size_t i = 3; i < sorted.size(); ++i) {
    EXPECT_LT(sorted[i - 1], sorted[i]);  // the tied tail stays ascending
  }
}

TEST(Hypnos, LinkCapacityIsTheMinOfBothEndpointRates) {
  // Regression: link_capacity_bps read only iface_a's line rate, so an
  // asymmetric link (100G on one side, 25G on the other) let the ceiling
  // check admit reroutes the slow side cannot carry.
  NetworkTopology topology;
  topology.pops = {"pop01"};
  for (int i = 0; i < 2; ++i) {
    DeployedRouter router;
    router.name = "pop01-r" + std::to_string(i + 1);
    router.model = "NCS-55A1-24H";
    topology.routers.push_back(std::move(router));
  }
  auto add_iface = [&](int router, LineRate rate, PortType port) {
    DeployedInterface iface;
    iface.name = "if-x";
    iface.profile = {port, TransceiverKind::kPassiveDAC, rate};
    iface.link_id = 0;
    topology.routers[static_cast<std::size_t>(router)].interfaces.push_back(
        iface);
    return static_cast<int>(topology.routers[static_cast<std::size_t>(router)]
                                .interfaces.size()) -
           1;
  };
  InternalLink link;
  link.router_a = 0;
  link.iface_a = add_iface(0, LineRate::kG100, PortType::kQSFP28);
  link.router_b = 1;
  link.iface_b = add_iface(1, LineRate::kG25, PortType::kSFPPlus);
  topology.links.push_back(link);

  EXPECT_DOUBLE_EQ(link_capacity_bps(topology, 0),
                   line_rate_bps(LineRate::kG25));

  // Flipped endpoints give the same answer: the function is side-agnostic.
  std::swap(topology.links[0].router_a, topology.links[0].router_b);
  std::swap(topology.links[0].iface_a, topology.links[0].iface_b);
  EXPECT_DOUBLE_EQ(link_capacity_bps(topology, 0),
                   line_rate_bps(LineRate::kG25));
}

TEST(Hypnos, ValidatesInputs) {
  const NetworkTopology topology = ring_topology();
  const std::vector<double> wrong_size(3, 0.0);
  EXPECT_THROW(run_hypnos(topology, wrong_size), std::invalid_argument);
  const std::vector<double> loads(5, 0.0);
  HypnosOptions bad;
  bad.max_utilization = 0.0;
  EXPECT_THROW(run_hypnos(topology, loads, bad), std::invalid_argument);
}

TEST(Hypnos, FullNetworkSleepsAroundAThirdOfLinks) {
  // [31]: Hypnos turns off around one third of the links on the Switch
  // traces; the simulated network is similarly over-provisioned.
  const NetworkSimulation sim(build_switch_like_network(), 3);
  const SimTime begin = sim.topology().options.study_begin;
  const auto loads =
      average_link_loads_bps(sim, begin, begin + 7 * kSecondsPerDay,
                             6 * kSecondsPerHour);
  const HypnosResult result = run_hypnos(sim.topology(), loads);
  EXPECT_GT(result.fraction_off(), 0.15);
  EXPECT_LT(result.fraction_off(), 0.65);
}

TEST(Table5, MatchesPaperValues) {
  const auto& rows = table5_port_power();
  EXPECT_DOUBLE_EQ(rows.at(PortType::kSFP).port_w, 0.05);
  EXPECT_DOUBLE_EQ(rows.at(PortType::kSFPPlus).port_w, 0.55);
  EXPECT_DOUBLE_EQ(rows.at(PortType::kQSFP28).port_w, 0.53);
  EXPECT_DOUBLE_EQ(rows.at(PortType::kQSFPDD).port_w, 1.82);
  EXPECT_DOUBLE_EQ(rows.at(PortType::kQSFP28).trx_up_w, 0.126);
  EXPECT_DOUBLE_EQ(rows.at(PortType::kSFPPlus).trx_up_w, -0.016);
}

TEST(SleepSavings, BracketsAreOrderedAndScaleWithLinks) {
  const NetworkTopology topology = ring_topology();
  HypnosResult result;
  result.candidate_links = 5;
  result.sleeping_links = {0, 4};
  const SleepSavings savings = estimate_sleep_savings(topology, result, 22000.0);
  EXPECT_EQ(savings.links_off, 2u);
  EXPECT_EQ(savings.interfaces_off, 4u);
  // min = 4 ports x 0.53 W; max adds 4 DAC modules at 0.5 W datasheet.
  EXPECT_NEAR(savings.min_w, 4 * 0.53, 1e-9);
  EXPECT_NEAR(savings.max_w, 4 * 0.53 + 4 * 0.5, 1e-9);
  EXPECT_LT(savings.min_frac(), savings.max_frac());
}

TEST(SleepSavings, DatasheetFallbackForSynthesizedParts) {
  DeployedInterface iface;
  iface.transceiver_part = "SFP+-25G-LR";  // synthesized, not in catalogue
  iface.profile = {PortType::kSFPPlus, TransceiverKind::kLR, LineRate::kG25};
  EXPECT_DOUBLE_EQ(datasheet_transceiver_power_w(iface), 1.2);
  iface.transceiver_part = "QSFP-DD-400G-FR4";
  iface.profile = {PortType::kQSFPDD, TransceiverKind::kFR4, LineRate::kG400};
  EXPECT_DOUBLE_EQ(datasheet_transceiver_power_w(iface), 12.0);
}

TEST(SleepSavings, FullNetworkWithinPaperBand) {
  // §8: 80-390 W, i.e. 0.4-1.9 % of total router power.
  const NetworkSimulation sim(build_switch_like_network(), 3);
  const SimTime begin = sim.topology().options.study_begin;
  const auto loads = average_link_loads_bps(
      sim, begin, begin + 7 * kSecondsPerDay, 6 * kSecondsPerHour);
  const HypnosResult result = run_hypnos(sim.topology(), loads);
  double network_power = 0.0;
  for (std::size_t r = 0; r < sim.router_count(); ++r) {
    network_power += sim.wall_power_w(r, begin + kSecondsPerDay);
  }
  const SleepSavings savings =
      estimate_sleep_savings(sim.topology(), result, network_power);
  EXPECT_GT(savings.min_frac(), 0.001);
  EXPECT_LT(savings.max_frac(), 0.03);
  EXPECT_LT(savings.min_w, savings.max_w);
}

}  // namespace
}  // namespace joules
