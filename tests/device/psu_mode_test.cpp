// Hot-standby PSU mode (§9.4): redundancy without the low-load efficiency
// penalty of active-active balancing.
#include <gtest/gtest.h>

#include "device/catalog.hpp"
#include "device/router.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

const SimTime kT = make_time(2025, 5, 1, 12, 0, 0);

SimulatedRouter make_router(const char* model, std::uint64_t seed = 5) {
  SimulatedRouter router(find_router_spec(model).value(), seed);
  router.set_ambient_override_c(22.0);
  return router;
}

TEST(PsuMode, DefaultIsActiveActive) {
  const SimulatedRouter router = make_router("NCS-55A1-24H");
  EXPECT_EQ(router.psu_mode(), PsuMode::kActiveActive);
}

TEST(PsuMode, HotStandbySavesPowerAtLowLoad) {
  SimulatedRouter router = make_router("NCS-55A1-24H");
  const double balanced = router.wall_power_w(kT);
  router.set_psu_mode(PsuMode::kHotStandby);
  const double standby = router.wall_power_w(kT);
  // One PSU at ~30 % load beats two at ~15 %, minus the standby draw.
  EXPECT_LT(standby, balanced);
  EXPECT_GT(balanced - standby, 3.0);
}

TEST(PsuMode, SavingsLargerForPoorPsus) {
  SimulatedRouter good = make_router("NCS-55A1-24H", 9);
  SimulatedRouter poor = make_router("8201-32FH", 9);
  const double good_gain = [&] {
    const double before = good.wall_power_w(kT);
    good.set_psu_mode(PsuMode::kHotStandby);
    return before - good.wall_power_w(kT);
  }();
  const double poor_gain = [&] {
    const double before = poor.wall_power_w(kT);
    poor.set_psu_mode(PsuMode::kHotStandby);
    return before - poor.wall_power_w(kT);
  }();
  // The 8201's curve is lower everywhere but the *steepness* at low load is
  // what consolidation exploits; both must gain, the poor unit at least as
  // much in absolute watts.
  EXPECT_GT(good_gain, 0.0);
  EXPECT_GT(poor_gain, 0.0);
}

TEST(PsuMode, FallsBackWhenLoadExceedsOnePsu) {
  // If the DC draw exceeds a single PSU's capacity, hot-standby silently
  // behaves like active-active (the survivor could not carry the box).
  RouterSpec spec = find_router_spec("NCS-55A1-24H").value();
  spec.psu_capacity_w = 250;  // DC draw ~330 W > 250 W
  SimulatedRouter router(spec, 5);
  router.set_ambient_override_c(22.0);
  const double balanced = router.wall_power_w(kT);
  router.set_psu_mode(PsuMode::kHotStandby);
  EXPECT_DOUBLE_EQ(router.wall_power_w(kT), balanced);
}

TEST(PsuMode, SinglePsuRouterUnaffected) {
  SimulatedRouter router = make_router("Catalyst 3560");
  const double before = router.wall_power_w(kT);
  router.set_psu_mode(PsuMode::kHotStandby);
  EXPECT_DOUBLE_EQ(router.wall_power_w(kT), before);
}

TEST(PsuMode, StandbyDrawCharged) {
  RouterSpec spec = find_router_spec("NCS-55A1-24H").value();
  spec.psu_standby_w = 0.0;
  SimulatedRouter free_standby(spec, 5);
  free_standby.set_ambient_override_c(22.0);
  spec.psu_standby_w = 10.0;
  SimulatedRouter paid_standby(spec, 5);
  paid_standby.set_ambient_override_c(22.0);
  free_standby.set_psu_mode(PsuMode::kHotStandby);
  paid_standby.set_psu_mode(PsuMode::kHotStandby);
  EXPECT_NEAR(paid_standby.wall_power_w(kT) - free_standby.wall_power_w(kT),
              10.0, 1e-9);
}

}  // namespace
}  // namespace joules
