#include "device/catalog.hpp"

#include <gtest/gtest.h>

#include <set>

#include "device/transceiver.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

TEST(Catalog, FourteenModels) {
  EXPECT_EQ(all_router_specs().size(), 14u);
}

TEST(Catalog, ModelNamesUnique) {
  std::set<std::string> names;
  for (const RouterSpec& spec : all_router_specs()) {
    EXPECT_TRUE(names.insert(spec.model).second) << spec.model;
  }
}

TEST(Catalog, FindByName) {
  EXPECT_TRUE(find_router_spec("8201-32FH").has_value());
  EXPECT_FALSE(find_router_spec("CRS-1").has_value());
}

TEST(Catalog, Table2BasePowersMatchPaper) {
  EXPECT_DOUBLE_EQ(find_router_spec("NCS-55A1-24H")->truth.base_power_w(), 320.0);
  EXPECT_DOUBLE_EQ(find_router_spec("Nexus9336-FX2")->truth.base_power_w(), 285.0);
  EXPECT_DOUBLE_EQ(find_router_spec("8201-32FH")->truth.base_power_w(), 253.0);
  EXPECT_DOUBLE_EQ(find_router_spec("N540X-8Z16G-SYS-A")->truth.base_power_w(), 33.0);
}

TEST(Catalog, Table6BasePowersMatchPaper) {
  EXPECT_DOUBLE_EQ(find_router_spec("Wedge 100BF-32X")->truth.base_power_w(), 108.0);
  EXPECT_DOUBLE_EQ(find_router_spec("Nexus 93108TC-FX3P")->truth.base_power_w(), 147.0);
  EXPECT_DOUBLE_EQ(find_router_spec("VSP-4900")->truth.base_power_w(), 8.2);
  EXPECT_DOUBLE_EQ(find_router_spec("Catalyst 3560")->truth.base_power_w(), 40.0);
}

TEST(Catalog, Table2aProfileVerbatim) {
  const RouterSpec spec = find_router_spec("NCS-55A1-24H").value();
  const InterfaceProfile* p = spec.truth.find_profile(
      {PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG100});
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->port_power_w, 0.32);
  EXPECT_DOUBLE_EQ(p->trx_in_power_w, 0.02);
  EXPECT_DOUBLE_EQ(p->trx_up_power_w, 0.19);
  EXPECT_NEAR(joules_to_picojoules(p->energy_per_bit_j), 22, 1e-9);
  EXPECT_NEAR(joules_to_nanojoules(p->energy_per_packet_j), 58, 1e-9);
  EXPECT_DOUBLE_EQ(p->offset_power_w, 0.37);
}

TEST(Catalog, Table2bNegativeTermsPreserved) {
  const RouterSpec spec = find_router_spec("Nexus9336-FX2").value();
  const InterfaceProfile* p = spec.truth.find_profile(
      {PortType::kQSFP28, TransceiverKind::kLR, LineRate::kG100});
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->trx_up_power_w, -0.06);
  EXPECT_DOUBLE_EQ(p->offset_power_w, -0.43);
}

TEST(Catalog, TelemetryQuirksMatchFig4) {
  EXPECT_EQ(find_router_spec("8201-32FH")->telemetry, PsuTelemetry::kPreciseOffset);
  EXPECT_EQ(find_router_spec("NCS-55A1-24H")->telemetry,
            PsuTelemetry::kPseudoConstant);
  EXPECT_EQ(find_router_spec("N540X-8Z16G-SYS-A")->telemetry, PsuTelemetry::kNone);
}

TEST(Catalog, Cisco8000SeriesDatasheetUnderestimates) {
  // Table 1's surprise: 8201-32FH and 8201-24H8FH datasheet "typical" is
  // *below* realistic deployment power.
  const RouterSpec fh32 = find_router_spec("8201-32FH").value();
  const RouterSpec fh24 = find_router_spec("8201-24H8FH").value();
  EXPECT_LT(fh32.datasheet_typical_w, fh32.truth.base_power_w() + 60.0);
  EXPECT_LT(fh24.datasheet_typical_w, fh24.truth.base_power_w());
}

TEST(Catalog, PsuCapacitiesAreFromTheDatasetOptions) {
  const std::set<double> options = {250, 400, 600, 750, 1100, 2000, 2700};
  for (const RouterSpec& spec : all_router_specs()) {
    EXPECT_TRUE(options.contains(spec.psu_capacity_w))
        << spec.model << " " << spec.psu_capacity_w;
  }
}

TEST(Catalog, EveryPortGroupNonEmptyAndProfilesExist) {
  for (const RouterSpec& spec : all_router_specs()) {
    EXPECT_FALSE(spec.ports.empty()) << spec.model;
    EXPECT_GT(spec.total_ports(), 0u) << spec.model;
    EXPECT_GT(spec.truth.profile_count(), 0u) << spec.model;
    // Every truth profile must be keyed to a port type the chassis has.
    for (const InterfaceProfile& profile : spec.truth.profiles()) {
      bool found = false;
      for (const PortGroup& group : spec.ports) {
        found = found || group.type == profile.key.port;
      }
      EXPECT_TRUE(found) << spec.model << " profile "
                         << to_string(profile.key);
    }
  }
}

TEST(Catalog, TableModelListsResolve) {
  for (const auto& list : {table1_models(), table2_models(), table6_models()}) {
    for (const std::string& name : list) {
      EXPECT_TRUE(find_router_spec(name).has_value()) << name;
    }
  }
  EXPECT_EQ(table1_models().size(), 8u);
  EXPECT_EQ(table2_models().size(), 4u);
  EXPECT_EQ(table6_models().size(), 4u);
}

TEST(Catalog, ReleaseYearsPlausible) {
  for (const RouterSpec& spec : all_router_specs()) {
    EXPECT_GE(spec.release_year, 2000) << spec.model;
    EXPECT_LE(spec.release_year, 2025) << spec.model;
  }
}

TEST(TransceiverCatalog, LookupsWork) {
  EXPECT_TRUE(find_transceiver("QSFP-DD-400G-FR4").has_value());
  EXPECT_DOUBLE_EQ(find_transceiver("QSFP-DD-400G-FR4")->datasheet_power_w, 12.0);
  EXPECT_FALSE(find_transceiver("BOGUS").has_value());
  const auto by_key = find_transceiver(PortType::kQSFP28, TransceiverKind::kLR4,
                                       LineRate::kG100);
  ASSERT_TRUE(by_key.has_value());
  EXPECT_EQ(by_key->part_number, "QSFP28-100G-LR4");
}

TEST(TransceiverCatalog, OpticsCostMoreThanDac) {
  const auto dac = find_transceiver("QSFP28-100G-DAC").value();
  const auto lr4 = find_transceiver("QSFP28-100G-LR4").value();
  EXPECT_LT(dac.datasheet_power_w, lr4.datasheet_power_w);
}

}  // namespace
}  // namespace joules
