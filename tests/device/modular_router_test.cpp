#include "device/modular_router.hpp"

#include <gtest/gtest.h>

#include "netpowerbench/modular.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

const SimTime kT = make_time(2025, 4, 1, 12, 0, 0);

SimulatedModularRouter make_dut(std::uint64_t seed = 1) {
  SimulatedModularRouter dut(reference_modular_chassis(), seed);
  dut.set_ambient_override_c(22.0);
  return dut;
}

TEST(ModularRouter, EmptyChassisDrawsBasePower) {
  SimulatedModularRouter dut = make_dut();
  const double dc = dut.dc_power_w(kT);
  // chassis 430 + fans 10 + control plane ~8.
  EXPECT_GT(dc, 430.0 + 10.0);
  EXPECT_LT(dc, 430.0 + 10.0 + 12.0);
  EXPECT_GT(dut.wall_power_w(kT), dc);  // conversion losses
}

TEST(ModularRouter, SeatingCardsAddsTheirPower) {
  SimulatedModularRouter dut = make_dut();
  const double empty = dut.dc_power_w(kT);
  const int slot = dut.seat_linecard("LC-24X10GE");
  EXPECT_NEAR(dut.dc_power_w(kT) - empty, 210.0, 1e-9);
  const int slot2 = dut.seat_linecard("LC-8X100GE");
  EXPECT_NEAR(dut.dc_power_w(kT) - empty, 210.0 + 390.0, 1e-9);
  EXPECT_EQ(dut.seated_count(), 2);
  EXPECT_NE(slot, slot2);
}

TEST(ModularRouter, UnknownCardAndFullChassisRejected) {
  SimulatedModularRouter dut = make_dut();
  EXPECT_THROW(dut.seat_linecard("LC-BOGUS"), std::invalid_argument);
  for (int i = 0; i < 8; ++i) dut.seat_linecard("LC-24X10GE");
  EXPECT_THROW(dut.seat_linecard("LC-24X10GE"), std::invalid_argument);
}

TEST(ModularRouter, PfePowerOffDropsCardPower) {
  // The Juniper blogs the paper cites: software-powering-off an unused card
  // saves its P_linecard while it stays seated.
  SimulatedModularRouter dut = make_dut();
  const int slot = dut.seat_linecard("LC-36X10GE");
  const double powered = dut.dc_power_w(kT);
  dut.set_linecard_powered(slot, false);
  EXPECT_FALSE(dut.linecard_powered(slot));
  EXPECT_NEAR(powered - dut.dc_power_w(kT), 280.0, 1e-9);
  dut.set_linecard_powered(slot, true);
  EXPECT_NEAR(dut.dc_power_w(kT), powered, 1e-9);
}

TEST(ModularRouter, InterfacesLiveOnCardsAndRespectBudgets) {
  SimulatedModularRouter dut = make_dut();
  const int slot = dut.seat_linecard("LC-8X100GE");
  const ProfileKey lr4{PortType::kQSFP28, TransceiverKind::kLR4, LineRate::kG100};
  const double before = dut.dc_power_w(kT);
  for (int i = 0; i < 8; ++i) dut.add_interface(slot, lr4, InterfaceState::kUp);
  EXPECT_THROW(dut.add_interface(slot, lr4, InterfaceState::kUp),
               std::invalid_argument);
  // 8 x (P_port 0.6 + trx_in 2.9 + trx_up 0.3).
  EXPECT_NEAR(dut.dc_power_w(kT) - before, 8 * 3.8, 1e-9);
  // Wrong card for the port type.
  const int ten_gig = dut.seat_linecard("LC-24X10GE");
  EXPECT_THROW(dut.add_interface(ten_gig, lr4, InterfaceState::kUp),
               std::invalid_argument);
}

TEST(ModularRouter, PoweredOffCardDarkensItsInterfaces) {
  SimulatedModularRouter dut = make_dut();
  const int slot = dut.seat_linecard("LC-8X100GE");
  const ProfileKey lr4{PortType::kQSFP28, TransceiverKind::kLR4, LineRate::kG100};
  for (int i = 0; i < 4; ++i) dut.add_interface(slot, lr4, InterfaceState::kUp);
  const std::vector<InterfaceLoad> loads(4, {gbps_to_bps(40), 4e6});
  const double on = dut.dc_power_w(kT, loads);
  dut.set_linecard_powered(slot, false);
  const double off = dut.dc_power_w(kT, loads);
  // Card power AND its interfaces' static+dynamic power disappear.
  EXPECT_GT(on - off, 390.0 + 4 * 3.8);
}

TEST(ModularRouter, UnseatTombstonesInterfacesButKeepsIndices) {
  SimulatedModularRouter dut = make_dut();
  const int a = dut.seat_linecard("LC-24X10GE");
  const int b = dut.seat_linecard("LC-24X10GE");
  const ProfileKey lr{PortType::kSFPPlus, TransceiverKind::kLR, LineRate::kG10};
  dut.add_interface(a, lr, InterfaceState::kUp);
  const std::size_t on_b = dut.add_interface(b, lr, InterfaceState::kUp);
  dut.unseat_linecard(a);
  EXPECT_EQ(dut.seated_count(), 1);
  EXPECT_EQ(dut.interface_count(), 2u);  // indices stay stable
  // Loads still address both slots; the tombstoned one contributes nothing.
  const std::vector<InterfaceLoad> loads = {{gbps_to_bps(5), 5e5},
                                            {gbps_to_bps(5), 5e5}};
  EXPECT_NO_THROW(static_cast<void>(dut.dc_power_w(kT, loads)));
  EXPECT_EQ(dut.card_in_slot(a), std::nullopt);
  EXPECT_EQ(on_b, 1u);
  EXPECT_THROW(dut.unseat_linecard(a), std::invalid_argument);
}

TEST(ModularRouter, LoadSizeValidated) {
  SimulatedModularRouter dut = make_dut();
  const int slot = dut.seat_linecard("LC-24X10GE");
  dut.add_interface(slot, {PortType::kSFPPlus, TransceiverKind::kLR, LineRate::kG10},
                    InterfaceState::kUp);
  const std::vector<InterfaceLoad> wrong(3);
  EXPECT_THROW(static_cast<void>(dut.dc_power_w(kT, wrong)), std::invalid_argument);
}

TEST(LinecardDerivation, RecoversCardPowerWithinWallScaling) {
  SimulatedModularRouter dut = make_dut(77);
  LinecardDerivationOptions options;
  options.start_time = make_time(2025, 4, 10);
  options.measure_s = 600;
  const LinecardDerivation derivation = derive_linecard_power(
      dut, PowerMeter(PowerMeterSpec{}, 78), "LC-24X10GE", 6, options);
  // Truth 210 W DC; wall-scaled by the chassis PSUs' marginal efficiency.
  EXPECT_NEAR(derivation.linecard_power_w, 210.0 / 0.92, 210.0 * 0.08);
  EXPECT_GT(derivation.fit.r_squared, 0.99);
  // Chassis base (wall) near the empty-chassis measurement.
  EXPECT_NEAR(derivation.chassis_base_w, derivation.measurements[0].mean_power_w,
              5.0);
  // DUT left empty for the next experiment.
  EXPECT_EQ(dut.seated_count(), 0);
}

TEST(SimulatedModularRouter, CachedShellSurvivesRepeatedSampling) {
  // Steady-state sampling must not churn the shell's compiled plan: the
  // card-power sum and dark mask are cached until a seat/power/state
  // mutation, and repeated identical queries return identical power.
  SimulatedModularRouter dut = make_dut();
  const int slot = dut.seat_linecard("LC-8X100GE");
  dut.add_interface(slot, {PortType::kQSFP28, TransceiverKind::kLR4,
                           LineRate::kG100},
                    InterfaceState::kUp);
  const std::vector<InterfaceLoad> loads(dut.interface_count(),
                                         InterfaceLoad{40e9, 5e6});
  const double first = dut.dc_power_w(kT, loads);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(dut.dc_power_w(kT, loads), first);
  }
  // Power-off must invalidate the cache: card power and its interfaces drop.
  dut.set_linecard_powered(slot, false);
  const double off = dut.dc_power_w(kT, loads);
  EXPECT_LT(off, first - 390.0 + 1.0);
  dut.set_linecard_powered(slot, true);
  EXPECT_EQ(dut.dc_power_w(kT, loads), first);
}

TEST(LinecardDerivation, ValidatesInputs) {
  SimulatedModularRouter dut = make_dut();
  const PowerMeter meter(PowerMeterSpec{}, 1);
  EXPECT_THROW(derive_linecard_power(dut, meter, "LC-24X10GE", 1),
               std::invalid_argument);
  EXPECT_THROW(derive_linecard_power(dut, meter, "LC-24X10GE", 99),
               std::invalid_argument);
  dut.seat_linecard("LC-24X10GE");
  EXPECT_THROW(derive_linecard_power(dut, meter, "LC-24X10GE", 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace joules
