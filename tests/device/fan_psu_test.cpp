#include <gtest/gtest.h>

#include "device/fan.hpp"
#include "device/psu_sim.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

TEST(FanModel, BasePowerBelowThreshold) {
  const FanModel fan({4.0, 2.0, 3.0, 26.0, 0.0});
  EXPECT_DOUBLE_EQ(fan.power_w(20.0), 4.0);
  EXPECT_DOUBLE_EQ(fan.power_w(26.0), 4.0);
}

TEST(FanModel, SteppedAboveThreshold) {
  const FanModel fan({4.0, 2.0, 3.0, 26.0, 0.0});
  EXPECT_DOUBLE_EQ(fan.power_w(27.0), 6.0);   // 1 step
  EXPECT_DOUBLE_EQ(fan.power_w(29.0), 6.0);   // still 1 step
  EXPECT_DOUBLE_EQ(fan.power_w(29.5), 8.0);   // 2 steps
  EXPECT_DOUBLE_EQ(fan.power_w(35.0), 10.0);  // 3 steps
}

TEST(FanModel, PolicyBumpAfterOsUpdate) {
  const FanModel fan({8.0, 3.0, 3.0, 26.0, 45.0});
  const SimTime update = make_time(2025, 3, 13);
  EXPECT_DOUBLE_EQ(fan.power_w(22.0, update - 1, update), 8.0);
  EXPECT_DOUBLE_EQ(fan.power_w(22.0, update, update), 53.0);
  EXPECT_DOUBLE_EQ(fan.power_w(22.0, update + kSecondsPerDay, update), 53.0);
}

TEST(ServerRoomTemperature, DiurnalSwingAroundSetpoint) {
  const SimTime day = make_time(2024, 9, 10);
  double lo = 1e9;
  double hi = -1e9;
  for (int h = 0; h < 24; ++h) {
    const double temp = server_room_temperature_c(day + h * kSecondsPerHour);
    lo = std::min(lo, temp);
    hi = std::max(hi, temp);
  }
  EXPECT_NEAR((lo + hi) / 2, 23.5, 0.1);
  EXPECT_NEAR(hi - lo, 2.0, 0.1);
  // Warmest mid-afternoon.
  EXPECT_GT(server_room_temperature_c(day + 15 * kSecondsPerHour),
            server_room_temperature_c(day + 3 * kSecondsPerHour));
}

TEST(SimulatedPsu, InputMatchesCurve) {
  PsuSimParams params;
  params.capacity_w = 600;
  params.efficiency_offset = 0.0;
  const SimulatedPsu psu(params, 1);
  const double out = 300.0;
  EXPECT_NEAR(psu.input_power_w(out), out / pfe600_curve().at(0.5), 1e-9);
  EXPECT_NEAR(psu.efficiency_at(out), pfe600_curve().at(0.5), 1e-12);
}

TEST(SimulatedPsu, OffsetShiftsEfficiency) {
  PsuSimParams good;
  good.capacity_w = 600;
  good.efficiency_offset = 0.03;
  PsuSimParams poor = good;
  poor.efficiency_offset = -0.15;
  const SimulatedPsu psu_good(good, 1);
  const SimulatedPsu psu_poor(poor, 1);
  EXPECT_GT(psu_good.efficiency_at(90.0), psu_poor.efficiency_at(90.0) + 0.1);
  EXPECT_LT(psu_good.input_power_w(90.0), psu_poor.input_power_w(90.0));
}

TEST(SimulatedPsu, SensorReadingDeterministicAndNoisy) {
  PsuSimParams params;
  params.capacity_w = 600;
  const SimulatedPsu psu(params, 7);
  const SimTime t = make_time(2024, 10, 1);
  const PsuSensorReading a = psu.sensor_reading(120.0, t);
  const PsuSensorReading b = psu.sensor_reading(120.0, t);
  EXPECT_DOUBLE_EQ(a.input_power_w, b.input_power_w);
  EXPECT_DOUBLE_EQ(a.output_power_w, b.output_power_w);
  // Close to truth but quantized/noisy.
  EXPECT_NEAR(a.output_power_w, 120.0, 10.0);
  EXPECT_NEAR(a.input_power_w, psu.input_power_w(120.0), 10.0);
}

TEST(SimulatedPsu, AsyncSkewCanInvertInOut) {
  // Across many instants, at least one reading should show the physically
  // impossible P_out >= P_in the paper observed (and capped).
  PsuSimParams params;
  params.capacity_w = 2000;  // light load -> small true loss, easy to invert
  params.efficiency_offset = 0.12;
  params.sensor_noise_frac = 0.02;
  params.async_skew_frac = 0.06;
  const SimulatedPsu psu(params, 9);
  bool inverted = false;
  for (int i = 0; i < 3000 && !inverted; ++i) {
    const PsuSensorReading r = psu.sensor_reading(180.0, i * 300);
    inverted = r.output_power_w >= r.input_power_w;
  }
  EXPECT_TRUE(inverted);
}

}  // namespace
}  // namespace joules
