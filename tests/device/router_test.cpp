#include "device/router.hpp"

#include <gtest/gtest.h>

#include "device/catalog.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

RouterSpec test_spec() {
  return find_router_spec("NCS-55A1-24H").value();
}

const ProfileKey kDac100{PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                         LineRate::kG100};
const SimTime kT = make_time(2024, 9, 10, 12, 0, 0);

TEST(SimulatedRouter, PortBudgetEnforced) {
  SimulatedRouter router(test_spec(), 1);
  for (int i = 0; i < 24; ++i) {
    router.add_interface(kDac100, InterfaceState::kPlugged);
  }
  EXPECT_THROW(router.add_interface(kDac100, InterfaceState::kPlugged),
               std::invalid_argument);
}

TEST(SimulatedRouter, WrongPortTypeRejected) {
  SimulatedRouter router(test_spec(), 1);
  const ProfileKey sfp{PortType::kSFP, TransceiverKind::kLR, LineRate::kG1};
  EXPECT_THROW(router.add_interface(sfp, InterfaceState::kPlugged),
               std::invalid_argument);
}

TEST(SimulatedRouter, DcPowerIncludesBaseFanControlPlane) {
  SimulatedRouter router(test_spec(), 1);
  router.set_ambient_override_c(22.0);
  const double dc = router.dc_power_w(kT);
  // Base 320 + fan base 6 + control plane ~3 (+-1).
  EXPECT_GT(dc, 320.0 + 6.0);
  EXPECT_LT(dc, 320.0 + 6.0 + 5.0);
}

TEST(SimulatedRouter, PluggingTransceiversRaisesDcPower) {
  SimulatedRouter router(test_spec(), 1);
  router.set_ambient_override_c(22.0);
  const double before = router.dc_power_w(kT);
  for (int i = 0; i < 24; ++i) {
    router.add_interface(kDac100, InterfaceState::kPlugged);
  }
  const double after = router.dc_power_w(kT);
  EXPECT_NEAR(after - before, 24 * 0.02, 1e-9);
}

TEST(SimulatedRouter, UpInterfacesCostPortAndTrxUp) {
  SimulatedRouter router(test_spec(), 1);
  router.set_ambient_override_c(22.0);
  for (int i = 0; i < 24; ++i) {
    router.add_interface(kDac100, InterfaceState::kPlugged);
  }
  const double plugged = router.dc_power_w(kT);
  router.set_all_interfaces(InterfaceState::kUp);
  const double up = router.dc_power_w(kT);
  EXPECT_NEAR(up - plugged, 24 * (0.32 + 0.19), 1e-9);
}

TEST(SimulatedRouter, TrafficRaisesPowerByEbitEpkt) {
  SimulatedRouter router(test_spec(), 1);
  router.set_ambient_override_c(22.0);
  for (int i = 0; i < 2; ++i) router.add_interface(kDac100, InterfaceState::kUp);
  const double idle = router.dc_power_w(kT);
  const std::vector<InterfaceLoad> loads = {{gbps_to_bps(100), 8e6},
                                            {gbps_to_bps(100), 8e6}};
  const double loaded = router.dc_power_w(kT, loads);
  const double expected_per_if = 22e-12 * 100e9 + 58e-9 * 8e6 + 0.37;
  EXPECT_NEAR(loaded - idle, 2 * expected_per_if, 1e-9);
}

TEST(SimulatedRouter, WallPowerExceedsDcPower) {
  SimulatedRouter router(test_spec(), 1);
  router.set_ambient_override_c(22.0);
  EXPECT_GT(router.wall_power_w(kT), router.dc_power_w(kT));
}

TEST(SimulatedRouter, GoodPsusSmallConversionLoss) {
  // NCS-55A1-24H PSUs are > 85 % efficient in the paper's data (Fig. 6b).
  SimulatedRouter router(test_spec(), 1);
  router.set_ambient_override_c(22.0);
  const double dc = router.dc_power_w(kT);
  const double wall = router.wall_power_w(kT);
  EXPECT_LT(wall, dc / 0.85);
}

TEST(SimulatedRouter, PoorPsusLargerLoss) {
  RouterSpec spec = find_router_spec("8201-32FH").value();
  SimulatedRouter router(spec, 1);
  router.set_ambient_override_c(22.0);
  const double dc = router.dc_power_w(kT);
  const double wall = router.wall_power_w(kT);
  EXPECT_GT(wall, dc / 0.83);  // Fig. 6c: ~76 % or worse
}

TEST(SimulatedRouter, OsUpdateBumpsPower) {
  RouterSpec spec = find_router_spec("8201-32FH").value();
  SimulatedRouter router(spec, 1);
  router.set_ambient_override_c(22.0);
  const SimTime update = make_time(2025, 3, 13);
  router.set_os_update_at(update);
  const double before = router.dc_power_w(update - kSecondsPerDay);
  const double after = router.dc_power_w(update + kSecondsPerDay);
  EXPECT_NEAR(after - before, 45.0, 2.0);  // Fig. 8: +45 W
}

TEST(SimulatedRouter, ReportedPowerQuirks) {
  // kPreciseOffset: tracks wall power with a constant offset.
  {
    RouterSpec spec = find_router_spec("8201-32FH").value();
    SimulatedRouter router(spec, 2);
    router.set_ambient_override_c(22.0);
    const auto reported = router.reported_power_w(kT);
    ASSERT_TRUE(reported.has_value());
    EXPECT_NEAR(*reported - router.wall_power_w(kT), 17.0, 1.0);
  }
  // kPseudoConstant: flat within a latch bucket.
  {
    SimulatedRouter router(test_spec(), 3);
    router.set_ambient_override_c(22.0);
    const auto a = router.reported_power_w(kT);
    const auto b = router.reported_power_w(kT + kSecondsPerHour);
    ASSERT_TRUE(a.has_value());
    EXPECT_DOUBLE_EQ(*a, *b);
  }
  // kNone: no value.
  {
    RouterSpec spec = find_router_spec("N540X-8Z16G-SYS-A").value();
    SimulatedRouter router(spec, 4);
    EXPECT_FALSE(router.reported_power_w(kT).has_value());
  }
}

TEST(SimulatedRouter, ReportingShiftApplies) {
  RouterSpec spec = find_router_spec("8201-32FH").value();
  SimulatedRouter router(spec, 5);
  router.set_ambient_override_c(22.0);
  const SimTime cycle = kT + kSecondsPerDay;
  router.add_reporting_shift(cycle, -7.0);
  const double before = router.reported_power_w(cycle - 10).value();
  const double after = router.reported_power_w(cycle + 10).value();
  EXPECT_NEAR(after - before, -7.0, 1.5);
}

TEST(SimulatedRouter, SensorSnapshotPlausible) {
  SimulatedRouter router(test_spec(), 6);
  router.set_ambient_override_c(22.0);
  const auto readings = router.sensor_snapshot(kT);
  ASSERT_EQ(readings.size(), 2u);
  const double dc = router.dc_power_w(kT);
  double total_out = 0.0;
  for (const auto& r : readings) {
    EXPECT_GT(r.input_power_w, 0.0);
    EXPECT_GT(r.output_power_w, 0.0);
    total_out += r.output_power_w;
  }
  EXPECT_NEAR(total_out, dc, 0.1 * dc);
}

TEST(SimulatedRouter, UnknownTruthProfileThrows) {
  // Force a config whose profile the catalog truth does not cover.
  RouterSpec spec = test_spec();
  spec.ports.push_back({PortType::kRJ45, 4, LineRate::kG1});
  SimulatedRouter router(spec, 7);
  router.add_interface({PortType::kRJ45, TransceiverKind::kBaseT, LineRate::kG1},
                       InterfaceState::kUp);
  EXPECT_THROW(static_cast<void>(router.dc_power_w(kT)), std::logic_error);
}

TEST(SimulatedRouter, DeterministicAcrossInstances) {
  SimulatedRouter a(test_spec(), 99);
  SimulatedRouter b(test_spec(), 99);
  a.set_ambient_override_c(23.0);
  b.set_ambient_override_c(23.0);
  EXPECT_DOUBLE_EQ(a.wall_power_w(kT), b.wall_power_w(kT));
}

TEST(SimulatedRouterPlan, RepeatedSamplingCompilesOnce) {
  SimulatedRouter router(test_spec(), 1);
  for (int i = 0; i < 8; ++i) {
    router.add_interface(kDac100, InterfaceState::kUp);
  }
  for (int s = 0; s < 100; ++s) {
    static_cast<void>(router.dc_power_w(kT + s * 300));
  }
  EXPECT_EQ(router.plan_rebuilds(), 1u);
}

TEST(SimulatedRouterPlan, NoOpStateWriteKeepsPlan) {
  SimulatedRouter router(test_spec(), 1);
  const std::size_t index = router.add_interface(kDac100, InterfaceState::kUp);
  static_cast<void>(router.dc_power_w(kT));
  const std::uint64_t rebuilds = router.plan_rebuilds();
  router.set_interface_state(index, InterfaceState::kUp);  // unchanged
  static_cast<void>(router.dc_power_w(kT));
  EXPECT_EQ(router.plan_rebuilds(), rebuilds);
}

TEST(SimulatedRouterPlan, StateChangeInvalidatesAndTracksPower) {
  SimulatedRouter router(test_spec(), 1);
  const std::size_t index = router.add_interface(kDac100, InterfaceState::kUp);
  router.set_ambient_override_c(22.0);
  const double up = router.dc_power_w(kT);
  const std::uint64_t rebuilds = router.plan_rebuilds();
  router.set_interface_state(index, InterfaceState::kPlugged);
  const double plugged = router.dc_power_w(kT);
  EXPECT_GT(router.plan_rebuilds(), rebuilds);
  EXPECT_LT(plugged, up);
  // The cached-plan result must equal the reference predict() arithmetic.
  const double expected =
      router.spec().truth.predict(router.interfaces()).total_w();
  EXPECT_EQ(router.power_plan().evaluate({}).total_w(), expected);
}

}  // namespace
}  // namespace joules
