// Cross-module property sweeps: Hypnos safety invariants across utilization
// ceilings, Eq. 12 packet/bit-rate inversion across frame sizes, 80 Plus
// curve ordering across levels, Autopower protocol round-trips across random
// payloads, and time-series identities across random traces.
#include <gtest/gtest.h>

#include <numeric>

#include "autopower/protocol.hpp"
#include "psu/eighty_plus.hpp"
#include "sleep/hypnos.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

// ---------------------------------------------------------------------------
// Hypnos safety invariants, parameterized over the utilization ceiling.
// ---------------------------------------------------------------------------

class HypnosSafety : public ::testing::TestWithParam<double> {};

TEST_P(HypnosSafety, ConnectivityAndCeilingHold) {
  const NetworkSimulation sim(build_switch_like_network(), 3);
  const SimTime begin = sim.topology().options.study_begin;
  const auto loads = average_link_loads_bps(sim, begin, begin + kSecondsPerDay,
                                            6 * kSecondsPerHour);
  HypnosOptions options;
  options.max_utilization = GetParam();
  const HypnosResult result = run_hypnos(sim.topology(), loads, options);

  const NetworkTopology& topology = sim.topology();
  std::vector<bool> asleep(topology.links.size(), false);
  for (const int link : result.sleeping_links) {
    asleep[static_cast<std::size_t>(link)] = true;
  }

  // (1) Surviving links never exceed the ceiling unless their *original*
  // load already did (Hypnos only adds load through rerouting).
  for (std::size_t l = 0; l < topology.links.size(); ++l) {
    if (asleep[l]) {
      EXPECT_DOUBLE_EQ(result.final_loads_bps[l], 0.0);
      continue;
    }
    const DeployedInterface& iface =
        topology.routers[static_cast<std::size_t>(topology.links[l].router_a)]
            .interfaces[static_cast<std::size_t>(topology.links[l].iface_a)];
    const double capacity = line_rate_bps(iface.profile.rate);
    EXPECT_LE(result.final_loads_bps[l],
              std::max(loads[l], options.max_utilization * capacity) + 1.0)
        << "link " << l;
  }

  // (2) The awake graph stays connected.
  std::vector<int> parent(topology.routers.size());
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      x = parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    }
    return x;
  };
  for (std::size_t l = 0; l < topology.links.size(); ++l) {
    if (asleep[l]) continue;
    parent[static_cast<std::size_t>(find(topology.links[l].router_a))] =
        find(topology.links[l].router_b);
  }
  const int root = find(0);
  for (std::size_t r = 0; r < topology.routers.size(); ++r) {
    EXPECT_EQ(find(static_cast<int>(r)), root) << topology.routers[r].name;
  }

  // (3) Total carried traffic is conserved or grows (longer detours).
  const double before = std::accumulate(loads.begin(), loads.end(), 0.0);
  const double after = std::accumulate(result.final_loads_bps.begin(),
                                       result.final_loads_bps.end(), 0.0);
  EXPECT_GE(after + 1.0, before);
}

INSTANTIATE_TEST_SUITE_P(Ceilings, HypnosSafety,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9),
                         [](const ::testing::TestParamInfo<double>& param_info) {
                           return "ceiling_" +
                                  std::to_string(static_cast<int>(
                                      param_info.param * 100));
                         });

// ---------------------------------------------------------------------------
// Eq. 12 inversion across frame sizes.
// ---------------------------------------------------------------------------

class FrameSizeInversion : public ::testing::TestWithParam<double> {};

TEST_P(FrameSizeInversion, PacketAndBitRatesInvert) {
  const double frame = GetParam();
  for (const double rate : {1e8, 1e9, 25e9, 100e9, 400e9}) {
    const double pps = packet_rate_for_bit_rate(rate, frame);
    EXPECT_NEAR(bit_rate_for_packet_rate(pps, frame), rate, rate * 1e-12);
    // Smaller frames -> more packets for the same bits.
    EXPECT_GT(pps, packet_rate_for_bit_rate(rate, frame + 64.0));
  }
}

INSTANTIATE_TEST_SUITE_P(Frames, FrameSizeInversion,
                         ::testing::Values(64.0, 128.0, 512.0, 1500.0, 9000.0),
                         [](const ::testing::TestParamInfo<double>& param_info) {
                           return "bytes_" +
                                  std::to_string(static_cast<int>(param_info.param));
                         });

// ---------------------------------------------------------------------------
// 80 Plus: each level's minimal curve is certified at its own level and
// at every level below, never above.
// ---------------------------------------------------------------------------

class EightyPlusLadder : public ::testing::TestWithParam<EightyPlusLevel> {};

TEST_P(EightyPlusLadder, MinimalCurveCertifiedExactlyUpToItsLevel) {
  const EightyPlusLevel level = GetParam();
  const EfficiencyCurve curve = standard_curve(level);
  for (const EightyPlusLevel other : kAllEightyPlusLevels) {
    if (other <= level) {
      EXPECT_TRUE(is_certified(curve, other))
          << to_string(level) << " vs " << to_string(other);
    }
  }
  EXPECT_EQ(certification(curve).value(), level);
}

INSTANTIATE_TEST_SUITE_P(Levels, EightyPlusLadder,
                         ::testing::ValuesIn(kAllEightyPlusLevels),
                         [](const ::testing::TestParamInfo<EightyPlusLevel>& param_info) {
                           return std::string(to_string(param_info.param));
                         });

// ---------------------------------------------------------------------------
// Autopower protocol: randomized round-trips.
// ---------------------------------------------------------------------------

class ProtocolFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolFuzz, RandomUploadsRoundTrip) {
  Rng rng(GetParam());
  autopower::DataUpload upload;
  upload.unit_id = "unit-" + std::to_string(rng.uniform_int(0, 1 << 20));
  upload.channel = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  upload.sequence = rng.next();
  const auto count = static_cast<std::size_t>(rng.uniform_int(0, 300));
  SimTime t = static_cast<SimTime>(rng.uniform_int(0, 2'000'000'000));
  for (std::size_t i = 0; i < count; ++i) {
    upload.samples.push_back(Sample{t, rng.uniform(0.0, 5000.0)});
    t += rng.uniform_int(1, 100);
  }
  const auto decoded = std::get<autopower::DataUpload>(
      autopower::decode(autopower::encode(autopower::Message{upload})));
  EXPECT_EQ(decoded.unit_id, upload.unit_id);
  EXPECT_EQ(decoded.channel, upload.channel);
  EXPECT_EQ(decoded.sequence, upload.sequence);
  ASSERT_EQ(decoded.samples.size(), upload.samples.size());
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(decoded.samples[i], upload.samples[i]);
  }
}

TEST_P(ProtocolFuzz, TruncationsNeverCrashOnlyThrow) {
  Rng rng(GetParam() ^ 0xF00D);
  autopower::DataUpload upload;
  upload.unit_id = "u";
  upload.samples = {{1, 2.0}, {3, 4.0}};
  const std::vector<std::byte> bytes =
      autopower::encode(autopower::Message{upload});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<std::byte> truncated(bytes.begin(),
                                           bytes.begin() + static_cast<long>(cut));
    try {
      (void)autopower::decode(truncated);
    } catch (const std::exception&) {
      // Throwing is the contract; crashing or UB is not.
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---------------------------------------------------------------------------
// Time-series identities over random traces.
// ---------------------------------------------------------------------------

class TimeSeriesIdentities : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimeSeriesIdentities, RandomTraceInvariants) {
  Rng rng(GetParam());
  TimeSeries trace;
  SimTime t = rng.uniform_int(0, 1000);
  for (int i = 0; i < 200; ++i) {
    trace.push(t, rng.normal(100.0, 15.0));
    t += rng.uniform_int(1, 600);
  }

  // value_at(sample time) returns that sample.
  for (std::size_t i = 0; i < trace.size(); i += 17) {
    EXPECT_DOUBLE_EQ(trace.value_at(trace[i].time).value(), trace[i].value);
  }
  // slice + complement covers every sample exactly once.
  const SimTime mid = trace[trace.size() / 2].time;
  EXPECT_EQ(trace.slice(trace.front().time, mid).size() +
                trace.slice(mid, trace.back().time + 1).size(),
            trace.size());
  // (a - a) is identically zero; scaling by 2 doubles every value.
  const TimeSeries zero = trace - trace;
  const TimeSeries twice = trace.scaled(2.0);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(zero[i].value, 0.0);
    EXPECT_DOUBLE_EQ(twice[i].value, 2.0 * trace[i].value);
  }
  // Window averaging preserves the overall sum of (value x count) per window:
  // the global mean of per-window means weighted by window population equals
  // the global mean.
  const TimeSeries averaged = trace.window_average(3600);
  EXPECT_LE(averaged.size(), trace.size());
  EXPECT_GE(averaged.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimeSeriesIdentities,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace joules
