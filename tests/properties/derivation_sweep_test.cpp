// The strongest integration property: for a sweep of catalog devices, run
// the full §5 battery against the simulated DUT and require that every
// derived parameter tracks the hidden truth within the wall-power scaling
// envelope. One TEST_P instance per device.
#include <gtest/gtest.h>

#include <cmath>

#include "device/catalog.hpp"
#include "psu/efficiency_curve.hpp"
#include "netpowerbench/derivation.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

struct SweepCase {
  const char* model;
  ProfileKey profile;
};

class DerivationSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(DerivationSweep, DerivedParametersTrackTruth) {
  const SweepCase& test_case = GetParam();
  const RouterSpec spec = find_router_spec(test_case.model).value();
  SimulatedRouter dut(spec, 0xBEEF ^ std::hash<std::string>{}(test_case.model));
  OrchestratorOptions lab;
  lab.start_time = make_time(2025, 6, 1);
  lab.measure_s = 600;
  lab.repeats = 2;
  Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, 0xCAFE), lab);

  const DerivedModel derived = derive_power_model(orchestrator,
                                                  {test_case.profile});
  const InterfaceProfile* got = derived.model.find_profile(test_case.profile);
  ASSERT_NE(got, nullptr);
  const InterfaceProfile* truth = spec.truth.find_profile(test_case.profile);
  ASSERT_NE(truth, nullptr);

  // The wall-scaling envelope follows from the device's own PSU parameters
  // at its idle operating point: each PSU carries dc_base / count, and its
  // unit offset is within 3 sigma of the model mean.
  const double dc_base = spec.truth.base_power_w() +
                         FanModel(spec.fan).power_w(lab.lab_ambient_c) +
                         spec.control_plane_mean_w;
  const double base_load =
      (dc_base / std::max(1, spec.psu_count)) / spec.psu_capacity_w;
  const double eff_floor = std::max(
      0.30, pfe600_curve().at(0.8 * base_load) + spec.psu_efficiency_offset_mean -
                3.0 * spec.psu_efficiency_offset_spread);
  const double hi = 1.0 / eff_floor;  // max wall-scaling factor
  EXPECT_GE(derived.base_power_w, dc_base * 0.98);
  EXPECT_LE(derived.base_power_w, dc_base * hi * 1.02);

  // Static per-interface terms: within the scaling envelope plus noise floor.
  auto in_envelope = [&](double truth_w, double derived_w, double noise_w) {
    EXPECT_GE(derived_w, truth_w - noise_w);
    EXPECT_LE(derived_w, truth_w * hi + noise_w);
  };
  in_envelope(truth->port_power_w, got->port_power_w, 0.12);
  in_envelope(truth->trx_in_power_w, got->trx_in_power_w, 0.08);
  in_envelope(truth->trx_in_power_w + truth->port_power_w +
                  truth->trx_up_power_w,
              got->trx_in_power_w + got->port_power_w + got->trx_up_power_w,
              0.2);

  // E_bit: relative envelope (the regression can trade a little between
  // E_bit and E_pkt, so the lower bound is loose).
  EXPECT_GE(joules_to_picojoules(got->energy_per_bit_j),
            joules_to_picojoules(truth->energy_per_bit_j) * 0.75);
  EXPECT_LE(joules_to_picojoules(got->energy_per_bit_j),
            joules_to_picojoules(truth->energy_per_bit_j) * hi * 1.2);
}

// §7's "transceiver power is independent of the traffic load" check, as the
// paper runs it on Table 2(b): derive the SAME device with an optical and a
// passive electrical transceiver; if the module power were load-dependent,
// the two E_bit estimates would differ. They must come out equal.
TEST(TransceiverIndependence, OpticalAndDacEbitAgreeOnNexus9336) {
  const RouterSpec spec = find_router_spec("Nexus9336-FX2").value();
  SimulatedRouter dut(spec, 0x9336);
  OrchestratorOptions lab;
  lab.start_time = make_time(2025, 6, 10);
  lab.measure_s = 600;
  lab.repeats = 2;
  Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, 0x9337), lab);

  const ProfileKey lr{PortType::kQSFP28, TransceiverKind::kLR, LineRate::kG100};
  const ProfileKey dac{PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                       LineRate::kG100};
  const DerivedModel derived = derive_power_model(orchestrator, {lr, dac});
  const double ebit_lr =
      joules_to_picojoules(derived.model.find_profile(lr)->energy_per_bit_j);
  const double ebit_dac =
      joules_to_picojoules(derived.model.find_profile(dac)->energy_per_bit_j);
  // Paper Table 2(b): 8 pJ for both. Equal within measurement noise.
  EXPECT_NEAR(ebit_lr, ebit_dac, 1.6);
  EXPECT_NEAR(ebit_lr, 8.0 / 0.9, 1.5);  // wall-scaled truth
  // And the static transceiver terms differ hugely (optics vs copper), which
  // is what makes the equality of the dynamic terms informative.
  EXPECT_GT(derived.model.find_profile(lr)->trx_in_power_w,
            derived.model.find_profile(dac)->trx_in_power_w + 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Devices, DerivationSweep,
    ::testing::Values(
        SweepCase{"NCS-55A1-24H",
                  {PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                   LineRate::kG100}},
        SweepCase{"NCS-55A1-24H",
                  {PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                   LineRate::kG50}},
        SweepCase{"Nexus9336-FX2",
                  {PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                   LineRate::kG100}},
        SweepCase{"8201-32FH",
                  {PortType::kQSFPDD, TransceiverKind::kPassiveDAC,
                   LineRate::kG100}},
        SweepCase{"Wedge 100BF-32X",
                  {PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                   LineRate::kG100}},
        SweepCase{"Nexus 93108TC-FX3P",
                  {PortType::kRJ45, TransceiverKind::kBaseT, LineRate::kG10}},
        SweepCase{"VSP-4900",
                  {PortType::kSFPPlus, TransceiverKind::kBaseT, LineRate::kG10}}),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      std::string name = std::string(param_info.param.model) + "_" +
                         std::string(to_string(param_info.param.profile.rate));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace joules
