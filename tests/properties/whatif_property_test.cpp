// Property: every answer the incremental WhatIfEngine produces over a
// randomized query stream is bit-identical to a from-scratch full recompute
// (TraceEngine::network_power_w on a fresh simulation with the same committed
// mutations), for every worker count — and the engine must have actually
// skipped work while getting there (cache hits > 0, recomputes strictly
// under routers x queries).
#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "network/trace_engine.hpp"
#include "network/whatif_engine.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

constexpr std::uint64_t kTopologySeed = 7;

SimTime eval_instant() {
  return TopologyOptions{}.study_begin + 10 * kSecondsPerDay;
}

// The committed state the mirror has to reproduce. Rebuilt from scratch after
// every query so no engine internals leak into the oracle.
struct CommittedState {
  std::vector<int> sleeping_links;
  PsuMode psu_mode = PsuMode::kActiveActive;
  bool spares_removed = false;
  std::set<int> decommissioned_pops;
};

// Applies `state` to a fresh simulation exactly the way the engine's
// mutations describe themselves: admin-down overrides on both endpoints of a
// sleeping link, PSU mode on >= 2-PSU routers, spare removal, decommission.
NetworkSimulation mirror_sim(const CommittedState& state) {
  NetworkSimulation sim(build_switch_like_network(), kTopologySeed);
  const NetworkTopology& topology = sim.topology();
  for (const int raw : state.sleeping_links) {
    const InternalLink& link = topology.links.at(static_cast<std::size_t>(raw));
    for (const auto& [router, iface] :
         {std::pair{link.router_a, link.iface_a},
          std::pair{link.router_b, link.iface_b}}) {
      StateOverride down;
      down.router = router;
      down.iface = iface;
      down.from = std::numeric_limits<SimTime>::min();
      down.to = std::numeric_limits<SimTime>::max();
      down.state = InterfaceState::kPlugged;
      sim.add_override(down);
    }
  }
  if (state.psu_mode != PsuMode::kActiveActive) {
    for (std::size_t r = 0; r < sim.router_count(); ++r) {
      if (sim.device(r).psus().size() >= 2) {
        sim.device(r).set_psu_mode(state.psu_mode);
      }
    }
  }
  if (state.spares_removed) {
    for (std::size_t r = 0; r < topology.routers.size(); ++r) {
      const auto& interfaces = topology.routers[r].interfaces;
      for (std::size_t i = 0; i < interfaces.size(); ++i) {
        if (interfaces[i].spare) {
          sim.remove_transceiver_at(static_cast<int>(r), static_cast<int>(i),
                                    std::numeric_limits<SimTime>::min());
        }
      }
    }
  }
  for (const int pop : state.decommissioned_pops) {
    for (std::size_t r = 0; r < topology.routers.size(); ++r) {
      if (topology.routers[r].pop == pop) sim.decommission_at(r, eval_instant());
    }
  }
  return sim;
}

double full_recompute_w(const CommittedState& state, std::size_t workers) {
  NetworkSimulation sim = mirror_sim(state);
  TraceEngineOptions options;
  options.workers = workers;
  TraceEngine engine(sim, options);
  return engine.network_power_w(eval_instant());
}

// One randomized stream: mutation kinds and operands drawn from `rng`; the
// same drawn stream is replayed at every worker count.
struct Query {
  enum class Kind { kProbe, kSleep, kPsu, kUnplug, kDecommission };
  Kind kind = Kind::kProbe;
  std::vector<int> links;
  PsuMode mode = PsuMode::kActiveActive;
  int pop = 0;
};

std::vector<Query> draw_stream(Rng& rng, std::size_t length,
                               std::size_t link_count, std::size_t pop_count) {
  std::vector<Query> stream;
  for (std::size_t i = 0; i < length; ++i) {
    Query query;
    switch (rng.uniform_int(0, 4)) {
      case 0: query.kind = Query::Kind::kProbe; break;
      case 1: query.kind = Query::Kind::kSleep; break;
      case 2: query.kind = Query::Kind::kPsu; break;
      case 3: query.kind = Query::Kind::kUnplug; break;
      default: query.kind = Query::Kind::kDecommission; break;
    }
    if (query.kind == Query::Kind::kProbe || query.kind == Query::Kind::kSleep) {
      const auto count = static_cast<std::size_t>(rng.uniform_int(1, 4));
      for (std::size_t l = 0; l < count; ++l) {
        query.links.push_back(static_cast<int>(
            rng.uniform_int(0, static_cast<std::int64_t>(link_count) - 1)));
      }
    } else if (query.kind == Query::Kind::kPsu) {
      query.mode = rng.uniform_int(0, 1) == 0 ? PsuMode::kHotStandby
                                              : PsuMode::kActiveActive;
    } else if (query.kind == Query::Kind::kDecommission) {
      query.pop = static_cast<int>(
          rng.uniform_int(0, static_cast<std::int64_t>(pop_count) - 1));
    }
    stream.push_back(std::move(query));
  }
  return stream;
}

void run_stream_and_verify(std::uint64_t stream_seed, std::size_t workers) {
  NetworkSimulation sim(build_switch_like_network(), kTopologySeed);
  const std::size_t link_count = sim.topology().links.size();
  const std::size_t pop_count = sim.topology().pops.size();
  const std::size_t router_count = sim.router_count();
  Rng rng(stream_seed);
  const std::vector<Query> stream =
      draw_stream(rng, 8, link_count, pop_count);

  WhatIfOptions options;
  options.workers = workers;
  WhatIfEngine engine(std::move(sim), eval_instant(), options);
  CommittedState committed;

  EXPECT_EQ(engine.baseline_w(), full_recompute_w(committed, workers));
  for (const Query& query : stream) {
    switch (query.kind) {
      case Query::Kind::kProbe:
        engine.probe_sleep_links(query.links);
        break;
      case Query::Kind::kSleep: {
        const WhatIfAnswer answer = engine.sleep_links(query.links);
        for (const int link : answer.accepted_links) {
          committed.sleeping_links.push_back(link);
        }
        break;
      }
      case Query::Kind::kPsu:
        engine.set_psu_mode(query.mode);
        committed.psu_mode = query.mode;
        break;
      case Query::Kind::kUnplug:
        engine.unplug_spares();
        committed.spares_removed = true;
        break;
      case Query::Kind::kDecommission:
        engine.decommission_pop(query.pop);
        committed.decommissioned_pops.insert(query.pop);
        break;
    }
    // Delta answer vs from-scratch recompute: bitwise equal, every query.
    EXPECT_EQ(engine.answers().back().network_power_w,
              full_recompute_w(committed, workers))
        << "seed " << stream_seed << " workers " << workers << " after '"
        << engine.answers().back().name << "'";
  }

  // The stream must have actually exercised the delta machinery.
  EXPECT_GT(engine.stats().cache_hits, 0u);
  EXPECT_LT(engine.stats().routers_recomputed,
            router_count * engine.stats().queries);
}

class WhatIfProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WhatIfProperty, DeltaAnswersMatchFullRecomputeBitwise) {
  for (const std::uint64_t seed : {11u, 23u, 37u}) {
    run_stream_and_verify(seed, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, WhatIfProperty,
                         ::testing::Values(1u, 4u, 16u));

// The same stream replayed at different worker counts produces bit-identical
// answer sequences (not just equal to the oracle — equal to each other,
// including the skipped-work accounting).
TEST(WhatIfProperty, StreamsAreBitIdenticalAcrossWorkerCounts) {
  const std::uint64_t stream_seed = 53;
  std::vector<std::vector<WhatIfAnswer>> runs;
  for (const std::size_t workers : {1u, 4u, 16u}) {
    NetworkSimulation sim(build_switch_like_network(), kTopologySeed);
    Rng rng(stream_seed);
    const std::vector<Query> stream = draw_stream(
        rng, 8, sim.topology().links.size(), sim.topology().pops.size());
    WhatIfOptions options;
    options.workers = workers;
    WhatIfEngine engine(std::move(sim), eval_instant(), options);
    engine.baseline_w();
    for (const Query& query : stream) {
      switch (query.kind) {
        case Query::Kind::kProbe: engine.probe_sleep_links(query.links); break;
        case Query::Kind::kSleep: engine.sleep_links(query.links); break;
        case Query::Kind::kPsu: engine.set_psu_mode(query.mode); break;
        case Query::Kind::kUnplug: engine.unplug_spares(); break;
        case Query::Kind::kDecommission:
          engine.decommission_pop(query.pop);
          break;
      }
    }
    runs.push_back(engine.answers());
  }
  for (std::size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[run][i].network_power_w, runs[0][i].network_power_w)
          << runs[0][i].name;
      EXPECT_EQ(runs[run][i].routers_recomputed, runs[0][i].routers_recomputed);
      EXPECT_EQ(runs[run][i].cache_hits, runs[0][i].cache_hits);
      EXPECT_EQ(runs[run][i].accepted_links, runs[0][i].accepted_links);
      EXPECT_EQ(runs[run][i].rejected_links, runs[0][i].rejected_links);
    }
  }
}

}  // namespace
}  // namespace joules
