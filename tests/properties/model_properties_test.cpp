// Property sweeps over the whole router catalog: invariants every device
// model must satisfy, parameterized with TEST_P so each (model, property)
// pair is its own ctest entry.
#include <gtest/gtest.h>

#include "device/catalog.hpp"
#include "model/model_io.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

class CatalogModelProperties : public ::testing::TestWithParam<std::string> {
 protected:
  RouterSpec spec() const { return find_router_spec(GetParam()).value(); }
};

TEST_P(CatalogModelProperties, BasePowerPositive) {
  EXPECT_GT(spec().truth.base_power_w(), 0.0);
}

TEST_P(CatalogModelProperties, ProfileTermsSane) {
  for (const InterfaceProfile& p : spec().truth.profiles()) {
    // Enabling a port can only add power (P_port >= 0 for every device the
    // paper modeled), and a plugged+up interface always costs something.
    EXPECT_GE(p.port_power_w, 0.0) << to_string(p.key);
    EXPECT_GE(p.trx_in_power_w, 0.0) << to_string(p.key);
    EXPECT_GT(p.up_power_w(), -1e-9) << to_string(p.key);
    // E_bit is positive on every row of Tables 2 and 6.
    EXPECT_GT(p.energy_per_bit_j, 0.0) << to_string(p.key);
    // Per-interface terms are small relative to the base.
    EXPECT_LT(p.up_power_w(), spec().truth.base_power_w()) << to_string(p.key);
  }
}

TEST_P(CatalogModelProperties, DynamicPowerMonotoneInRate) {
  for (const InterfaceProfile& p : spec().truth.profiles()) {
    const double line = line_rate_bps(p.key.rate);
    double previous = -1e9;
    for (const double frac : {0.01, 0.1, 0.3, 0.6, 0.9}) {
      const double rate = frac * line;
      const double pps = packet_rate_for_bit_rate(rate, 512);
      const double power = p.dynamic_power_w(rate, pps);
      EXPECT_GE(power, previous - 1e-12) << to_string(p.key) << " @" << frac;
      previous = power;
    }
  }
}

TEST_P(CatalogModelProperties, StaticStatesOrdered) {
  for (const InterfaceProfile& p : spec().truth.profiles()) {
    EXPECT_LE(p.plugged_power_w(), p.enabled_power_w() + 1e-12)
        << to_string(p.key);
  }
}

TEST_P(CatalogModelProperties, TruthSerializationRoundTrips) {
  const PowerModel truth = spec().truth;
  EXPECT_EQ(model_from_string(model_to_string(truth)), truth);
}

TEST_P(CatalogModelProperties, PredictionAdditiveOverInterfaces) {
  // P_sta is a sum over interfaces (Eq. 2): predicting k interfaces equals
  // base + k * per-interface static power.
  const PowerModel truth = spec().truth;
  for (const InterfaceProfile& p : truth.profiles()) {
    InterfaceConfig config;
    config.profile = p.key;
    config.state = InterfaceState::kUp;
    const std::vector<InterfaceConfig> one(1, config);
    const std::vector<InterfaceConfig> five(5, config);
    const double single = truth.predict(one).total_w() - truth.base_power_w();
    const double quintuple = truth.predict(five).total_w() - truth.base_power_w();
    EXPECT_NEAR(quintuple, 5.0 * single, 1e-9) << to_string(p.key);
  }
}

TEST_P(CatalogModelProperties, SimulatedRouterDeterministic) {
  const RouterSpec router_spec = spec();
  SimulatedRouter a(router_spec, 123);
  SimulatedRouter b(router_spec, 123);
  a.set_ambient_override_c(22.0);
  b.set_ambient_override_c(22.0);
  const SimTime t = make_time(2025, 1, 15);
  EXPECT_DOUBLE_EQ(a.wall_power_w(t), b.wall_power_w(t));
  EXPECT_DOUBLE_EQ(a.dc_power_w(t), b.dc_power_w(t));
}

TEST_P(CatalogModelProperties, WallPowerNeverBelowDcPower) {
  // Conversion can only lose energy: curves are clamped to <= 100 %.
  const RouterSpec router_spec = spec();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SimulatedRouter router(router_spec, seed);
    router.set_ambient_override_c(22.0);
    const SimTime t = make_time(2025, 1, 15) + static_cast<SimTime>(seed) * 997;
    EXPECT_GE(router.wall_power_w(t), router.dc_power_w(t) - 1e-9) << seed;
  }
}

TEST_P(CatalogModelProperties, HotStandbyNeverWorseThanActiveActive) {
  // With standby draw <= the balancing losses it replaces, hot-standby can
  // only help at the low loads these routers run at.
  RouterSpec router_spec = spec();
  if (router_spec.psu_count < 2) GTEST_SKIP() << "single-PSU platform";
  router_spec.psu_standby_w = 0.0;  // isolate the curve effect
  SimulatedRouter balanced(router_spec, 7);
  SimulatedRouter standby(router_spec, 7);
  balanced.set_ambient_override_c(22.0);
  standby.set_ambient_override_c(22.0);
  standby.set_psu_mode(PsuMode::kHotStandby);
  const SimTime t = make_time(2025, 1, 15);
  EXPECT_LE(standby.wall_power_w(t), balanced.wall_power_w(t) + 1e-9);
}

std::vector<std::string> all_model_names() {
  std::vector<std::string> names;
  for (const RouterSpec& spec : all_router_specs()) names.push_back(spec.model);
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllCatalogModels, CatalogModelProperties,
    ::testing::ValuesIn(all_model_names()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace joules
