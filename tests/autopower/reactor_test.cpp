// The reactor server's robustness layer: stale-connection reaping, bounded
// stop() latency, retention caps, seen-sequence windows, backpressure,
// overload shedding with retry-after hints, and deadline eviction.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

#include "autopower/client.hpp"
#include "autopower/fleet.hpp"
#include "autopower/protocol.hpp"
#include "autopower/server.hpp"
#include "meter/power_meter.hpp"
#include "net/framing.hpp"

namespace joules::autopower {
namespace {

constexpr SimTime kStart = 1725753600;

bool eventually(const std::function<bool()>& predicate) {
  for (int i = 0; i < 400; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(Millis{10});
  }
  return predicate();
}

// Completes a Hello handshake on a raw stream.
void say_hello(TcpStream& stream, const std::string& unit_id) {
  Hello hello;
  hello.unit_id = unit_id;
  write_frame(stream, encode(Message{hello}));
  const auto reply = read_frame(stream, Millis{2000});
  ASSERT_TRUE(reply.has_value());
  const Message message = decode(*reply);
  const auto* ack = std::get_if<HelloAck>(&message);
  ASSERT_NE(ack, nullptr);
  ASSERT_TRUE(ack->accepted);
}

void upload_batch(TcpStream& stream, const std::string& unit_id,
                  std::uint64_t sequence, std::vector<Sample> samples) {
  DataUpload upload;
  upload.unit_id = unit_id;
  upload.channel = 0;
  upload.sequence = sequence;
  upload.samples = std::move(samples);
  write_frame(stream, encode(Message{upload}));
  const auto reply = read_frame(stream, Millis{2000});
  ASSERT_TRUE(reply.has_value());
  const Message message = decode(*reply);
  const auto* ack = std::get_if<UploadAck>(&message);
  ASSERT_NE(ack, nullptr);
  ASSERT_EQ(ack->sequence, sequence);
}

// Satellite 1: a closed connection leaves the reactor's set on the next poll
// tick — no waiting for a later accept to trigger collection (the old
// thread-per-connection server only reaped when a new connection arrived).
TEST(Reactor, ClosedConnectionIsReapedWithoutNewTraffic) {
  Server server;
  {
    TcpStream raw = TcpStream::connect_loopback(server.port());
    say_hello(raw, "fleeting");
  }  // closed here
  // No further connections: the reap must happen on its own.
  EXPECT_TRUE(eventually([&] {
    const auto stats = server.connection_stats();
    return stats.reaped >= 1 && stats.active == 0;
  }));
  server.stop();
}

// Satellite 2: stop() returns within a bounded time even while a peer is
// mid-frame — the wakeup pipe breaks the poll, the reactor never sits in a
// blocking read. The old server's worker could hold stop() for the full
// 60-second frame timeout.
TEST(Reactor, StopIsBoundedWithPartialFrameOutstanding) {
  Server server;
  TcpStream raw = TcpStream::connect_loopback(server.port());
  say_hello(raw, "torn-unit");
  // Two bytes of a length prefix and then silence: the connection is
  // mid-frame from the server's point of view.
  const std::byte partial[2] = {std::byte{0}, std::byte{0}};
  raw.send_all(partial);
  std::this_thread::sleep_for(Millis{50});

  // joules-lint: allow(wall-clock) — this test measures real stop() latency
  const auto before = std::chrono::steady_clock::now();
  server.stop();
  const auto elapsed = std::chrono::duration_cast<Millis>(
      // joules-lint: allow(wall-clock) — end of the real-latency measurement
      std::chrono::steady_clock::now() - before);
  EXPECT_LT(elapsed.count(), 2000) << "stop() must not wait on a torn peer";
}

// Satellite 3a: per-channel retention cap — oldest samples are trimmed, the
// eviction counter says how many, and the newest survive.
TEST(Reactor, RetentionCapEvictsOldestSamples) {
  ServerConfig config;
  config.max_samples_per_channel = 8;
  Server server(config);
  TcpStream raw = TcpStream::connect_loopback(server.port());
  say_hello(raw, "capped");
  for (std::uint64_t seq = 0; seq < 3; ++seq) {
    std::vector<Sample> samples;
    for (int i = 0; i < 4; ++i) {
      samples.push_back(Sample{kStart + static_cast<SimTime>(seq * 4 + i),
                               static_cast<double>(seq * 4 + i)});
    }
    upload_batch(raw, "capped", seq, std::move(samples));
  }
  const TimeSeries series = server.measurements("capped", 0);
  EXPECT_EQ(series.size(), 8u);  // 12 uploaded, 4 trimmed
  EXPECT_EQ(series.front().time, kStart + 4);  // oldest four gone
  EXPECT_EQ(series.back().time, kStart + 11);
  EXPECT_EQ(server.connection_stats().samples_evicted, 4u);
  EXPECT_EQ(server.accepted_batches("capped"), 3u);
  server.stop();
}

// Satellite 3b: the seen-sequence window compacts to a watermark and still
// deduplicates re-sends of long-gone sequences.
TEST(Reactor, SeenSequenceWindowStillDedupsBelowWatermark) {
  ServerConfig config;
  config.seen_sequence_window = 4;
  Server server(config);
  TcpStream raw = TcpStream::connect_loopback(server.port());
  say_hello(raw, "windowed");
  for (std::uint64_t seq = 0; seq < 10; ++seq) {
    upload_batch(raw, "windowed", seq,
                 {Sample{kStart + static_cast<SimTime>(seq), 1.0}});
  }
  EXPECT_EQ(server.accepted_batches("windowed"), 10u);
  // Sequence 2 fell out of the window long ago; the watermark still knows
  // it was accepted. Re-sending it is acked but not double-stored.
  upload_batch(raw, "windowed", 2, {Sample{kStart + 2, 999.0}});
  EXPECT_EQ(server.accepted_batches("windowed"), 10u);
  EXPECT_EQ(server.measurements("windowed", 0).size(), 10u);
  EXPECT_DOUBLE_EQ(server.measurements("windowed", 0).value_at(kStart + 2).value_or(-1.0),
                   1.0);
  const auto stats = server.connection_stats();
  EXPECT_EQ(stats.batches_ingested, 11u);  // duplicates are still ingested
  server.stop();
}

// Tentpole: a peer that floods requests without reading responses trips the
// write high-water mark; the server pauses reading it (backpressure) instead
// of buffering without bound, then finishes the conversation once the peer
// drains. The slow-reader fleet persona drives exactly this.
TEST(Reactor, SlowReaderTripsBackpressureAndStillCompletes) {
  ServerConfig config;
  config.write_high_water = 1024;
  config.write_low_water = 256;
  config.socket_send_buffer = 2048;  // keep the kernel from masking the test
  Server server(config);

  FleetConfig fleet;
  fleet.server_port = server.port();
  fleet.units = 1;
  fleet.slow_reader_units = 1;
  fleet.duplicate_uploads = 2000;  // ~26 KB of acks >> high water + sndbuf
  const FleetReport report = run_fleet(fleet);

  EXPECT_FALSE(report.timed_out);
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.failed, 0u);
  const auto stats = server.connection_stats();
  EXPECT_GE(stats.backpressure_stalls, 1u);
  EXPECT_EQ(stats.batches_ingested, 2000u);     // every duplicate ingested
  EXPECT_EQ(server.accepted_batches(fleet_unit_id(0)), 1u);  // stored once
  server.stop();
}

// Tentpole: past the connection ceiling, Hellos are answered
// HelloAck{accepted=false} with a seeded retry-after hint — shed, not
// dropped, and the hint lands in the documented range.
TEST(Reactor, OverloadShedsWithRetryAfterHint) {
  ServerConfig config;
  config.max_connections = 2;
  config.shed_retry_after_base = Millis{250};
  config.shed_retry_after_spread = Millis{250};
  Server server(config);

  FleetConfig fleet;
  fleet.server_port = server.port();
  fleet.units = 4;
  fleet.hold_open = true;  // winners hold their slot until all Hellos resolve
  const FleetReport report = run_fleet(fleet);

  EXPECT_FALSE(report.timed_out);
  EXPECT_EQ(report.shed, 2u);
  EXPECT_EQ(report.hints, 2u);  // every shed ack carried a hint
  EXPECT_EQ(report.completed, 2u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(server.connection_stats().shed, 2u);
  server.stop();
}

// The real client honours the hint: a shed unit's next backoff sleep is
// floored at the server's retry-after, even when its own schedule says less.
TEST(Reactor, ClientBackoffHonoursRetryAfterHint) {
  ServerConfig config;
  config.max_connections = 0;  // shed everything: ceiling of zero
  config.shed_retry_after_base = Millis{40};
  config.shed_retry_after_spread = Millis{0};  // exact hint for the assert
  Server server(config);

  Client::Options options;
  options.unit_id = "shed-unit";
  options.server_port = server.port();
  options.retry.max_attempts = 2;
  options.retry.initial_backoff = Millis{2};  // schedule alone would sleep 2ms
  options.retry.jitter = 0.0;
  Client client(options, PowerMeter(PowerMeterSpec{}, 1),
                [](int, SimTime) { return 0.0; });
  EXPECT_FALSE(client.sync());
  EXPECT_EQ(client.last_retry_after_hint(), Millis{40});
  ASSERT_EQ(client.last_backoff_delays().size(), 1u);
  EXPECT_EQ(client.last_backoff_delays()[0], Millis{40});  // hint floored it
  server.stop();
}

// Tentpole: deadline eviction. A connection that never completes its
// handshake is closed at handshake_timeout; an authenticated one that goes
// quiet is closed at idle_timeout; a torn frame is closed at frame_timeout.
TEST(Reactor, DeadlinesEvictSilentAndTornConnections) {
  ServerConfig config;
  config.handshake_timeout = Millis{100};
  config.idle_timeout = Millis{200};
  config.frame_timeout = Millis{100};
  Server server(config);

  TcpStream never_hello = TcpStream::connect_loopback(server.port());
  TcpStream goes_quiet = TcpStream::connect_loopback(server.port());
  say_hello(goes_quiet, "quiet");
  TcpStream torn = TcpStream::connect_loopback(server.port());
  say_hello(torn, "torn");
  const std::byte partial[3] = {std::byte{0}, std::byte{0}, std::byte{0}};
  torn.send_all(partial);  // starts a frame, never finishes it

  EXPECT_TRUE(eventually([&] {
    return server.connection_stats().evicted >= 3;
  }));
  const auto stats = server.connection_stats();
  EXPECT_EQ(stats.evicted, 3u);
  EXPECT_EQ(stats.active, 0u);
  // The evicted peers see EOF, not a hang.
  std::byte sink[1];
  EXPECT_FALSE(never_hello.recv_exact(sink, Millis{500}));
  server.stop();
}

// Counter names in the manifest stay stable and include the new robustness
// counters alongside the originals.
TEST(Reactor, ManifestCarriesRobustnessCounters) {
  Server server;
  const auto path =
      std::filesystem::temp_directory_path() / "joules_reactor_manifest.json";
  server.write_manifest(path);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string manifest = buffer.str();
  for (const char* name :
       {"server.connections_accepted", "server.connections_rejected",
        "server.connections_dropped", "server.threads_reaped",
        "server.connections_active", "server.connections_shed",
        "server.connections_evicted", "server.backpressure_stalls",
        "server.batches_ingested", "server.ingest_flushes",
        "server.samples_evicted", "server.units_known",
        "server.batches_accepted", "server.samples_stored"}) {
    EXPECT_NE(manifest.find(name), std::string::npos) << name;
  }
  std::filesystem::remove(path);
  server.stop();
}

// Batched ingest amortizes the units_ lock: many uploads arriving together
// take fewer lock acquisitions than uploads. (A single blocking client
// round-trips, so this needs the fleet's pipelined flood.)
TEST(Reactor, BatchedIngestTakesFewerLocksThanUploads) {
  Server server;
  FleetConfig fleet;
  fleet.server_port = server.port();
  fleet.units = 1;
  fleet.slow_reader_units = 1;
  fleet.duplicate_uploads = 500;
  const FleetReport report = run_fleet(fleet);
  EXPECT_EQ(report.failed, 0u);
  const auto stats = server.connection_stats();
  EXPECT_EQ(stats.batches_ingested, 500u);
  EXPECT_GE(stats.ingest_flushes, 1u);
  EXPECT_LT(stats.ingest_flushes, stats.batches_ingested)
      << "pipelined uploads should share lock takes";
  server.stop();
}

}  // namespace
}  // namespace joules::autopower
