// Fault-plan-driven integration tests: the exact failure sequences the
// paper's deployment saw, scripted end to end. The acceptance scenario —
// ack lost *after* the server committed the batch, reconnect, re-upload —
// must end with zero lost and zero duplicated samples.
#include <gtest/gtest.h>

#include "autopower/client.hpp"
#include "autopower/server.hpp"
#include "net/fault.hpp"

namespace joules::autopower {
namespace {

constexpr SimTime kStart = 1725753600;

Client::Options options_for(const Server& server, const std::string& unit_id,
                            std::size_t batch = 10) {
  Client::Options options;
  options.unit_id = unit_id;
  options.server_port = server.port();
  options.upload_batch = batch;
  options.retry.max_attempts = 4;
  options.retry.initial_backoff = Millis{2};
  options.retry.max_backoff = Millis{20};
  options.retry.jitter = 0.0;
  return options;
}

// Client-side frame order per connection: send hello/poll/upload...,
// recv hello_ack/commands/upload_ack... — so recv frame #2 of the first
// connection is the first upload's ack.
constexpr std::uint64_t kFirstUploadAck = 2;

TEST(FaultSync, AckLostAfterServerCommitDoesNotDuplicateOrLose) {
  Server server;
  Client client(options_for(server, "ack-loser"), PowerMeter(PowerMeterSpec{}, 1),
                [](int, SimTime) { return 150.0; });
  client.start_measurement(0, 1);
  for (SimTime t = kStart; t < kStart + 25; ++t) client.tick(t);

  ScopedFaultPlan scope(
      FaultPlan().match_port(server.port()).drop_recv_frame(kFirstUploadAck));

  // One sync() call rides out the fault: the first attempt uploads batch
  // seq 0, the server commits it, the ack is lost; the retry reconnects and
  // re-sends seq 0, which the server acks again without storing twice.
  EXPECT_TRUE(client.sync());
  EXPECT_EQ(client.buffered_samples(), 0u);
  EXPECT_EQ(scope.stats().drops_injected, 1u);

  EXPECT_EQ(server.measurements("ack-loser", 0).size(), 25u);  // zero lost
  // 25 samples in batches of 10 -> sequences 0, 1, 2; the re-sent seq 0 was
  // deduplicated, so exactly three batches were accepted.
  EXPECT_EQ(server.accepted_batches("ack-loser"), 3u);
}

TEST(FaultSync, MidFrameDisconnectDuringUploadRetriesCleanly) {
  Server server;
  Client client(options_for(server, "torn-frame"), PowerMeter(PowerMeterSpec{}, 2),
                [](int, SimTime) { return 80.0; });
  client.start_measurement(0, 1);
  for (SimTime t = kStart; t < kStart + 15; ++t) client.tick(t);

  // Send frame #2 of the first connection is the first upload: tear it six
  // bytes in, so the server sees a torn frame and never commits.
  ScopedFaultPlan scope(
      FaultPlan().match_port(server.port()).drop_send_frame(2, 6));

  EXPECT_TRUE(client.sync());
  EXPECT_EQ(server.measurements("torn-frame", 0).size(), 15u);
  EXPECT_EQ(server.accepted_batches("torn-frame"), 2u);  // 10 + 5, no dups
}

TEST(FaultSync, ConnectRefusalDelaysButDoesNotLoseData) {
  Server server;
  Client client(options_for(server, "refused"), PowerMeter(PowerMeterSpec{}, 3),
                [](int, SimTime) { return 60.0; });
  client.start_measurement(0, 1);
  for (SimTime t = kStart; t < kStart + 12; ++t) client.tick(t);

  ScopedFaultPlan scope(
      FaultPlan().match_port(server.port()).refuse_connects(0, 2));

  EXPECT_TRUE(client.sync());  // attempts 1-2 refused, attempt 3 lands
  EXPECT_EQ(client.last_backoff_delays().size(), 2u);
  EXPECT_EQ(server.measurements("refused", 0).size(), 12u);
}

TEST(FaultSync, AddedLatencyIsSurvivedWithinDeadlines) {
  Server server;
  Client client(options_for(server, "laggy"), PowerMeter(PowerMeterSpec{}, 4),
                [](int, SimTime) { return 90.0; });
  client.start_measurement(0, 1);
  for (SimTime t = kStart; t < kStart + 5; ++t) client.tick(t);

  ScopedFaultPlan scope(FaultPlan()
                            .match_port(server.port())
                            .delay_connect(0, Millis{120})
                            .delay_recv_frame(kFirstUploadAck, Millis{120}));
  EXPECT_TRUE(client.sync());
  EXPECT_EQ(server.measurements("laggy", 0).size(), 5u);
  EXPECT_EQ(scope.stats().delays_injected, 2u);
}

TEST(FaultSync, SeededRandomAckLossStressStaysExact) {
  Server server;
  Client client(options_for(server, "chaos", 16), PowerMeter(PowerMeterSpec{}, 5),
                [](int, SimTime) { return 110.0; });
  client.start_measurement(0, 1);
  for (SimTime t = kStart; t < kStart + 200; ++t) client.tick(t);

  // Deterministic chaos: every recv frame on client streams is lost with
  // p = 0.3 from a seeded generator, so this exact fault sequence replays
  // every run. Store-and-forward plus sequence dedup must keep the stored
  // series exact no matter where the drops land.
  ScopedFaultPlan scope(
      FaultPlan(0xC0FFEE).match_port(server.port()).drop_recv_randomly(0.3));

  bool flushed = false;
  for (int i = 0; i < 100 && !flushed; ++i) {
    flushed = client.sync() && client.buffered_samples() == 0;
  }
  ASSERT_TRUE(flushed) << "buffer never drained under 30% ack loss";

  EXPECT_EQ(server.measurements("chaos", 0).size(), 200u);   // zero lost
  // ceil(200 / 16) = 13 distinct sequences, each committed exactly once.
  EXPECT_EQ(server.accepted_batches("chaos"), 13u);
  EXPECT_GT(scope.stats().drops_injected, 0u);
}

TEST(FaultSync, PartialWritesAcrossTheWholeProtocolStillFlush) {
  Server server;
  Client client(options_for(server, "trickle"), PowerMeter(PowerMeterSpec{}, 6),
                [](int, SimTime) { return 70.0; });
  client.start_measurement(0, 1);
  for (SimTime t = kStart; t < kStart + 30; ++t) client.tick(t);

  // Every send(2) on the client's streams is capped to 7 bytes: headers and
  // payloads cross the wire in shreds, exercising the reassembly loops.
  ScopedFaultPlan scope(
      FaultPlan().match_port(server.port()).cap_send_chunk(7));
  EXPECT_TRUE(client.sync());
  EXPECT_EQ(server.measurements("trickle", 0).size(), 30u);
}

}  // namespace
}  // namespace joules::autopower
