// Shutdown ordering: stopping or destroying the server while clients still
// hold open connections must complete promptly (the connection threads poll
// in short slices rather than blocking on a long read).
#include <gtest/gtest.h>

#include <chrono>

#include "autopower/client.hpp"
#include "autopower/server.hpp"

namespace joules::autopower {
namespace {

TEST(Shutdown, StopWithIdleConnectedClientIsFast) {
  Client::Options options;
  options.unit_id = "idle-unit";
  auto server = std::make_unique<Server>();
  options.server_port = server->port();
  Client client(options, PowerMeter(PowerMeterSpec{}, 1),
                [](int, SimTime) { return 10.0; });
  ASSERT_TRUE(client.sync());  // leaves the connection open and idle
  ASSERT_TRUE(client.is_connected());

  const auto start = std::chrono::steady_clock::now();
  server.reset();  // destructor runs stop(): must not wait behind the client
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            2000);
}

TEST(Shutdown, StopIsIdempotent) {
  Server server;
  server.stop();
  server.stop();  // second stop must be a no-op
  SUCCEED();
}

TEST(Shutdown, ClientSyncFailsAfterServerStops) {
  Server server;
  Client::Options options;
  options.unit_id = "late-unit";
  options.server_port = server.port();
  Client client(options, PowerMeter(PowerMeterSpec{}, 2),
                [](int, SimTime) { return 10.0; });
  ASSERT_TRUE(client.sync());
  server.stop();
  client.drop_connection();
  EXPECT_FALSE(client.sync());
}

}  // namespace
}  // namespace joules::autopower
