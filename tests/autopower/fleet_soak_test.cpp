// Fleet soak: hundreds-to-thousands of faulty units against one reactor.
//
// The scenarios are built so the headline server counters are
// interleaving-invariant — exact across reruns at a fixed seed:
//   - silent units never Hello, so the admission ceiling maths ignores
//     them: shed = (helloing units) - ceiling, exactly, because finished
//     units hold their slot (hold_open) until every Hello is answered;
//   - silent units are evicted by the handshake deadline: evicted is
//     exactly the silent count;
//   - accept-drop faults hit pre-Hello, so each costs exactly one redial
//     and nothing else: accepted = units + dropped accepts;
//   - duplicate floods are idempotent: batches_ingested = normal uploads
//     + flood sizes, accepted batches count each sequence once.
//
// The smoke scenario (256 units) runs everywhere including sanitizer jobs
// (ctest -L fleet); the full 5000-unit soak carries its own label
// (fleet_soak) and a long timeout.
#include <gtest/gtest.h>

#include <sstream>

#include "autopower/fleet.hpp"
#include "autopower/server.hpp"
#include "net/fault.hpp"

namespace joules::autopower {
namespace {

struct Scenario {
  std::size_t units = 0;
  std::size_t ceiling = 0;
  std::size_t silent = 0;
  std::size_t slow = 0;
  std::size_t duplicates = 0;
  std::size_t uploads_per_unit = 1;
  std::uint64_t drop_accept_first = 0;
  std::uint64_t drop_accepts = 0;
  std::uint64_t stall_first = 0;
  std::uint64_t stalls = 0;
};

struct SoakResult {
  FleetReport fleet;
  Server::ConnectionStats stats;
  std::size_t units_known = 0;
  std::string digest;  // canonical text of everything that must be exact
  bool acks_lost = false;
};

// Runs one fleet scenario against a fresh server and collapses everything
// deterministic into a digest string (compared across reruns).
SoakResult run_scenario(const Scenario& s) {
  FaultPlan plan;
  if (s.drop_accepts > 0) plan.drop_accepts(s.drop_accept_first, s.drop_accepts);
  for (std::uint64_t i = 0; i < s.stalls; ++i) {
    plan.stall_accept_reads(s.stall_first + i, Millis{50});
  }
  ScopedFaultPlan scoped(plan);

  ServerConfig config;
  config.max_connections = s.ceiling;
  config.handshake_timeout = Millis{500};   // silent units leave quickly
  config.idle_timeout = Millis{60000};      // held conns are idle, not dead
  config.write_high_water = 2048;           // slow readers trip backpressure
  config.write_low_water = 512;
  config.socket_send_buffer = 2048;
  config.listen_backlog = 1024;
  Server server(config);

  FleetConfig fleet;
  fleet.server_port = server.port();
  fleet.units = s.units;
  fleet.uploads_per_unit = s.uploads_per_unit;
  fleet.slow_reader_units = s.slow;
  fleet.silent_units = s.silent;
  fleet.duplicate_uploads = s.duplicates;
  fleet.hold_open = true;
  fleet.overall_timeout = Millis{120000};

  SoakResult result;
  result.fleet = run_fleet(fleet);
  server.stop();
  result.stats = server.connection_stats();
  result.units_known = server.known_units().size();

  // Zero lost acknowledged batches: every ack the fleet counted must be a
  // batch the server durably accepted — per unit, exactly.
  for (const auto& [unit_id, acked] : result.fleet.acked_per_unit) {
    if (server.accepted_batches(unit_id) != acked) result.acks_lost = true;
  }
  // The digest holds only interleaving-invariant quantities (which specific
  // units get shed may differ run to run; how many never does).
  std::ostringstream digest;
  digest << "shed=" << result.stats.shed << " evicted=" << result.stats.evicted
         << " accepted=" << result.stats.accepted
         << " ingested=" << result.stats.batches_ingested
         << " samples_evicted=" << result.stats.samples_evicted
         << " units=" << result.units_known
         << " acked=" << result.fleet.acked_batches;
  result.digest = std::move(digest).str();
  return result;
}

void check_invariants(const Scenario& s, const SoakResult& r) {
  EXPECT_FALSE(r.fleet.timed_out);
  EXPECT_EQ(r.fleet.failed, 0u);
  EXPECT_FALSE(r.acks_lost) << "an acknowledged batch was lost";

  const std::size_t helloing = s.units - s.silent;
  const std::size_t shed = helloing > s.ceiling ? helloing - s.ceiling : 0;
  EXPECT_EQ(r.fleet.shed, shed);
  EXPECT_EQ(r.stats.shed, shed);
  EXPECT_EQ(r.fleet.hints, shed);  // every shed ack carried a retry hint
  EXPECT_EQ(r.stats.evicted, s.silent);
  EXPECT_EQ(r.fleet.evicted, s.silent);
  EXPECT_EQ(r.fleet.completed, helloing - shed);
  // Every accept-drop fault costs exactly one redial.
  EXPECT_EQ(r.fleet.redials, s.drop_accepts);
  EXPECT_EQ(r.stats.accepted, s.units + s.drop_accepts);
  // Normal units upload uploads_per_unit batches; slow readers flood
  // duplicates of one batch. Shed units never upload.
  const std::size_t normal_done = helloing - shed - s.slow;
  EXPECT_EQ(r.stats.batches_ingested,
            normal_done * s.uploads_per_unit + s.slow * s.duplicates);
  if (s.slow > 0) {
    EXPECT_GE(r.stats.backpressure_stalls, s.slow);
  }
  EXPECT_EQ(r.fleet.acked_batches,
            normal_done * s.uploads_per_unit + s.slow);
}

Scenario smoke_scenario() {
  Scenario s;
  s.units = 256;
  s.ceiling = 200;
  s.silent = 8;
  s.slow = 4;
  s.duplicates = 800;
  s.uploads_per_unit = 2;
  s.drop_accept_first = 20;  // hits normal units mid-dial, pre-Hello
  s.drop_accepts = 4;
  s.stall_first = 40;
  s.stalls = 3;
  return s;
}

TEST(FleetSmoke, FaultyFleetCompletesWithExactCounters) {
  const Scenario s = smoke_scenario();
  const SoakResult r = run_scenario(s);
  check_invariants(s, r);
}

TEST(FleetSmoke, CountersAreDeterministicAcrossReruns) {
  const Scenario s = smoke_scenario();
  const SoakResult first = run_scenario(s);
  const SoakResult second = run_scenario(s);
  check_invariants(s, first);
  check_invariants(s, second);
  EXPECT_EQ(first.digest, second.digest);
}

TEST(FleetSoak, FiveThousandFaultyUnits) {
  Scenario s;
  s.units = 5000;
  s.ceiling = 4500;
  s.silent = 32;
  s.slow = 8;
  s.duplicates = 1000;
  s.uploads_per_unit = 1;
  s.drop_accept_first = 100;
  s.drop_accepts = 16;
  s.stall_first = 200;
  s.stalls = 8;
  const SoakResult r = run_scenario(s);
  check_invariants(s, r);
  // The acceptance bar, spelled out: 5000 concurrent units with fault plans
  // active, zero lost acknowledged batches, shed > 0 under the ceiling.
  EXPECT_GT(r.stats.shed, 0u);
  EXPECT_FALSE(r.acks_lost);
}

}  // namespace
}  // namespace joules::autopower
