// End-to-end Autopower tests: a real server and client exchanging frames over
// loopback TCP, exercising the §6.1 requirements — remote control, buffering
// across connection loss, resumption after "power failure".
#include <gtest/gtest.h>

#include <filesystem>

#include "autopower/client.hpp"
#include "autopower/server.hpp"
#include "util/units.hpp"

namespace joules::autopower {
namespace {

constexpr SimTime kStart = 1725753600;  // 2024-09-08

Client::Options options_for(const Server& server, const std::string& unit_id) {
  Client::Options options;
  options.unit_id = unit_id;
  options.server_port = server.port();
  options.upload_batch = 16;
  return options;
}

std::function<double(int, SimTime)> flat_source(double watts) {
  return [watts](int, SimTime) { return watts; };
}

TEST(AutopowerEndToEnd, HelloRegistersUnit) {
  Server server;
  Client client(options_for(server, "unit-a"), PowerMeter(PowerMeterSpec{}, 1),
                flat_source(100.0));
  EXPECT_TRUE(client.sync());
  const auto units = server.known_units();
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0], "unit-a");
}

TEST(AutopowerEndToEnd, SamplesUploadAndArriveInOrder) {
  Server server;
  Client client(options_for(server, "unit-b"), PowerMeter(PowerMeterSpec{}, 2),
                flat_source(358.0));
  client.start_measurement(0, 1);
  for (SimTime t = kStart; t < kStart + 100; ++t) client.tick(t);
  EXPECT_EQ(client.buffered_samples(), 100u);
  ASSERT_TRUE(client.sync());
  EXPECT_EQ(client.buffered_samples(), 0u);

  const TimeSeries stored = server.measurements("unit-b", 0);
  ASSERT_EQ(stored.size(), 100u);
  EXPECT_EQ(stored.front().time, kStart);
  EXPECT_EQ(stored.back().time, kStart + 99);
  EXPECT_NEAR(stored.front().value, 358.0, 3.0);
  // Batched into ceil(100/16) = 7 uploads.
  EXPECT_EQ(server.accepted_batches("unit-b"), 7u);
}

TEST(AutopowerEndToEnd, RemoteStartStopCommands) {
  Server server;
  Client client(options_for(server, "unit-c"), PowerMeter(PowerMeterSpec{}, 3),
                flat_source(50.0));
  // Queue a start before the unit has ever connected.
  server.enqueue_command("unit-c", {Command::Kind::kStartMeasurement, 0, 2});
  ASSERT_TRUE(client.sync());  // poll picks it up
  EXPECT_TRUE(client.is_measuring(0));

  for (SimTime t = kStart; t < kStart + 10; ++t) client.tick(t);
  EXPECT_EQ(client.buffered_samples(), 5u);  // period 2 s

  server.enqueue_command("unit-c", {Command::Kind::kStopMeasurement, 0, 0});
  ASSERT_TRUE(client.sync());
  EXPECT_FALSE(client.is_measuring(0));
}

TEST(AutopowerEndToEnd, BufferSurvivesConnectionLossAndReconnects) {
  Server server;
  Client client(options_for(server, "unit-d"), PowerMeter(PowerMeterSpec{}, 4),
                flat_source(75.0));
  client.start_measurement(0, 1);
  for (SimTime t = kStart; t < kStart + 20; ++t) client.tick(t);

  // Simulate the uplink going away: sync fails, buffer is retained.
  client.drop_connection();
  Server* gone = nullptr;
  (void)gone;
  // Stop the server to make connect fail.
  server.stop();
  EXPECT_FALSE(client.sync());
  EXPECT_EQ(client.buffered_samples(), 20u);

  // Bring up a new server on a fresh port; the unit reconnects and flushes.
  Server revived;
  Client client2(options_for(revived, "unit-d"), PowerMeter(PowerMeterSpec{}, 4),
                 flat_source(75.0));
  client2.start_measurement(0, 1);
  for (SimTime t = kStart; t < kStart + 20; ++t) client2.tick(t);
  EXPECT_TRUE(client2.sync());
  EXPECT_EQ(revived.measurements("unit-d", 0).size(), 20u);
}

TEST(AutopowerEndToEnd, DuplicateUploadsAreIdempotent) {
  Server server;
  Client client(options_for(server, "unit-e"), PowerMeter(PowerMeterSpec{}, 5),
                flat_source(120.0));
  client.start_measurement(0, 1);
  for (SimTime t = kStart; t < kStart + 8; ++t) client.tick(t);
  ASSERT_TRUE(client.sync());
  const std::size_t batches = server.accepted_batches("unit-e");

  // Re-send the same window from a restored client state (same sequences):
  // the server must not duplicate samples.
  Client replay(options_for(server, "unit-e"), PowerMeter(PowerMeterSpec{}, 5),
                flat_source(120.0));
  replay.start_measurement(0, 1);
  for (SimTime t = kStart; t < kStart + 8; ++t) replay.tick(t);
  ASSERT_TRUE(replay.sync());

  EXPECT_EQ(server.measurements("unit-e", 0).size(), 8u);
  EXPECT_EQ(server.accepted_batches("unit-e"), batches);  // duplicates ignored
}

TEST(AutopowerEndToEnd, StateSurvivesPowerFailure) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "autopower_state_test.csv";
  Server server;
  {
    Client client(options_for(server, "unit-f"), PowerMeter(PowerMeterSpec{}, 6),
                  flat_source(42.0));
    client.start_measurement(0, 1);
    client.start_measurement(1, 2);
    for (SimTime t = kStart; t < kStart + 10; ++t) client.tick(t);
    client.save_state(path);
  }  // "power failure"

  Client reborn(options_for(server, "unit-f"), PowerMeter(PowerMeterSpec{}, 6),
                flat_source(42.0));
  reborn.load_state(path);
  EXPECT_TRUE(reborn.is_measuring(0));
  EXPECT_TRUE(reborn.is_measuring(1));
  EXPECT_EQ(reborn.buffered_samples(), 10u + 5u);
  // Continues sampling from where it stopped without duplicating instants.
  for (SimTime t = kStart + 10; t < kStart + 12; ++t) reborn.tick(t);
  EXPECT_EQ(reborn.buffered_samples(), 17u + 1u);  // +2 on ch0, +1 on ch1
  ASSERT_TRUE(reborn.sync());
  EXPECT_EQ(server.measurements("unit-f", 0).size(), 12u);
  std::filesystem::remove(path);
}

TEST(AutopowerEndToEnd, TwoChannelsTwoRouters) {
  // One unit monitoring two PSUs (the paper's two-channel setup: one channel
  // per PSU feed).
  Server server;
  Client client(options_for(server, "unit-g"), PowerMeter(PowerMeterSpec{}, 7),
                [](int channel, SimTime) { return channel == 0 ? 180.0 : 176.0; });
  client.start_measurement(0, 1);
  client.start_measurement(1, 1);
  for (SimTime t = kStart; t < kStart + 30; ++t) client.tick(t);
  ASSERT_TRUE(client.sync());
  EXPECT_NEAR(server.measurements("unit-g", 0).front().value, 180.0, 2.0);
  EXPECT_NEAR(server.measurements("unit-g", 1).front().value, 176.0, 2.0);
}

TEST(AutopowerClient, ValidatesOptionsAndInputs) {
  Server server;
  Client::Options bad_id = options_for(server, "");
  EXPECT_THROW(Client(bad_id, PowerMeter(PowerMeterSpec{}, 1), flat_source(1)),
               std::invalid_argument);
  Client client(options_for(server, "ok"), PowerMeter(PowerMeterSpec{}, 1),
                flat_source(1));
  EXPECT_THROW(client.start_measurement(0, 0), std::invalid_argument);
  client.tick(100);
  EXPECT_THROW(client.tick(50), std::invalid_argument);
}

}  // namespace
}  // namespace joules::autopower
