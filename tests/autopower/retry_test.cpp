// Client::sync retry policy: exponential backoff with cap and jitter, an
// explicit give-up state after the schedule is exhausted, and recovery on
// the next successful sync. Fault-plan connect refusal drives the failures
// deterministically (no dead ports or timing races).
#include <gtest/gtest.h>

#include "autopower/client.hpp"
#include "autopower/server.hpp"
#include "net/fault.hpp"

namespace joules::autopower {
namespace {

constexpr SimTime kStart = 1725753600;

Client::Options options_for(const Server& server, const std::string& unit_id,
                            RetryPolicy retry) {
  Client::Options options;
  options.unit_id = unit_id;
  options.server_port = server.port();
  options.upload_batch = 8;
  options.retry = retry;
  return options;
}

RetryPolicy fast_policy(int attempts, double jitter = 0.0) {
  RetryPolicy policy;
  policy.max_attempts = attempts;
  policy.initial_backoff = Millis{2};
  policy.multiplier = 2.0;
  policy.max_backoff = Millis{100};
  policy.jitter = jitter;
  return policy;
}

TEST(Retry, ConnectRefusedBacksOffOnDocumentedSchedule) {
  Server server;
  Client client(options_for(server, "backoff-unit", fast_policy(4)),
                PowerMeter(PowerMeterSpec{}, 1), [](int, SimTime) { return 50.0; });
  client.start_measurement(0, 1);
  client.tick(kStart);

  {
    ScopedFaultPlan scope(
        FaultPlan().match_port(server.port()).refuse_connects(0, 100));
    EXPECT_FALSE(client.sync());
    EXPECT_TRUE(client.gave_up());
    // Documented schedule with jitter 0: min(2 * 2^k, 100) ms between the
    // four attempts -> sleeps of exactly 2, 4, 8 ms.
    const std::vector<Millis> expected = {Millis{2}, Millis{4}, Millis{8}};
    EXPECT_EQ(client.last_backoff_delays(), expected);
    EXPECT_EQ(scope.stats().connect_attempts, 4u);
    EXPECT_EQ(scope.stats().connects_refused, 4u);
  }

  // The buffer survived the give-up; the next sync recovers and clears it.
  EXPECT_EQ(client.buffered_samples(), 1u);
  EXPECT_TRUE(client.sync());
  EXPECT_FALSE(client.gave_up());
  EXPECT_EQ(client.buffered_samples(), 0u);
  EXPECT_EQ(client.sync_stats().give_ups, 1u);
}

TEST(Retry, BackoffIsCappedAtMaxBackoff) {
  Server server;
  RetryPolicy policy = fast_policy(5);
  policy.initial_backoff = Millis{4};
  policy.multiplier = 10.0;
  policy.max_backoff = Millis{20};
  Client client(options_for(server, "capped-unit", policy),
                PowerMeter(PowerMeterSpec{}, 2), [](int, SimTime) { return 50.0; });

  ScopedFaultPlan scope(
      FaultPlan().match_port(server.port()).refuse_connects(0, 100));
  EXPECT_FALSE(client.sync());
  const std::vector<Millis> expected = {Millis{4}, Millis{20}, Millis{20},
                                        Millis{20}};
  EXPECT_EQ(client.last_backoff_delays(), expected);
}

TEST(Retry, JitterStaysWithinBoundsAndIsSeeded) {
  Server server;
  RetryPolicy policy = fast_policy(4, 0.5);
  policy.initial_backoff = Millis{10};
  policy.seed = 1234;

  const auto delays_for = [&](const std::string& unit) {
    Client client(options_for(server, unit, policy),
                  PowerMeter(PowerMeterSpec{}, 3),
                  [](int, SimTime) { return 50.0; });
    ScopedFaultPlan scope(
        FaultPlan().match_port(server.port()).refuse_connects(0, 100));
    EXPECT_FALSE(client.sync());
    return client.last_backoff_delays();
  };

  const std::vector<Millis> first = delays_for("jitter-a");
  const std::vector<Millis> second = delays_for("jitter-b");
  ASSERT_EQ(first.size(), 3u);
  // Same seed -> identical schedule; bounds: base * [1 - j, 1 + j].
  EXPECT_EQ(first, second);
  const std::vector<std::int64_t> bases = {10, 20, 40};
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_GE(first[i].count(), bases[i] / 2);
    EXPECT_LE(first[i].count(), bases[i] + bases[i] / 2);
  }
}

TEST(Retry, SingleAttemptPolicyNeverSleeps) {
  Server server;
  Client client(options_for(server, "one-shot", fast_policy(1)),
                PowerMeter(PowerMeterSpec{}, 4), [](int, SimTime) { return 50.0; });
  ScopedFaultPlan scope(
      FaultPlan().match_port(server.port()).refuse_connects(0, 100));
  EXPECT_FALSE(client.sync());
  EXPECT_TRUE(client.last_backoff_delays().empty());
  EXPECT_TRUE(client.gave_up());
}

TEST(Retry, TransientRefusalRecoversWithinOneSyncCall) {
  Server server;
  Client client(options_for(server, "transient", fast_policy(3)),
                PowerMeter(PowerMeterSpec{}, 5), [](int, SimTime) { return 50.0; });
  client.start_measurement(0, 1);
  for (SimTime t = kStart; t < kStart + 5; ++t) client.tick(t);

  // First connect refused, second succeeds: one sync() call rides it out.
  ScopedFaultPlan scope(
      FaultPlan().match_port(server.port()).refuse_connect(0));
  EXPECT_TRUE(client.sync());
  EXPECT_FALSE(client.gave_up());
  EXPECT_EQ(client.last_backoff_delays().size(), 1u);
  EXPECT_EQ(server.measurements("transient", 0).size(), 5u);
}

TEST(Retry, PolicyValidation) {
  Server server;
  Client::Options options = options_for(server, "bad", fast_policy(0));
  EXPECT_THROW(Client(options, PowerMeter(PowerMeterSpec{}, 6),
                      [](int, SimTime) { return 1.0; }),
               std::invalid_argument);
  options = options_for(server, "bad", fast_policy(2, -0.1));
  EXPECT_THROW(Client(options, PowerMeter(PowerMeterSpec{}, 6),
                      [](int, SimTime) { return 1.0; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace joules::autopower
