// Server connection-lifecycle hygiene: the Hello handshake gates all unit
// state (no phantom units from unauthenticated polls/uploads, no writing
// into another unit's series), and finished connection threads are reaped
// while the server runs instead of accumulating until stop().
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "autopower/client.hpp"
#include "autopower/server.hpp"
#include "net/framing.hpp"

namespace joules::autopower {
namespace {

constexpr SimTime kStart = 1725753600;

Client::Options options_for(const Server& server, const std::string& unit_id) {
  Client::Options options;
  options.unit_id = unit_id;
  options.server_port = server.port();
  options.upload_batch = 8;
  return options;
}

// Polls `predicate` for up to two seconds — connection teardown and thread
// reaping are asynchronous.
bool eventually(const std::function<bool()>& predicate) {
  for (int i = 0; i < 200; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(Millis{10});
  }
  return predicate();
}

TEST(ServerLifecycle, PollWithoutHelloCreatesNoPhantomUnit) {
  Server server;
  TcpStream raw = TcpStream::connect_loopback(server.port());
  PollCommands poll;
  poll.unit_id = "ghost";
  write_frame(raw, encode(Message{poll}));
  // The server drops the connection instead of answering.
  try {
    const auto reply = read_frame(raw, Millis{2000});
    EXPECT_FALSE(reply.has_value());
  } catch (const std::exception&) {
  }
  EXPECT_TRUE(server.known_units().empty());
  EXPECT_TRUE(eventually([&] { return server.connection_stats().rejected >= 1; }));
}

TEST(ServerLifecycle, UploadWithoutHelloCreatesNoPhantomUnit) {
  Server server;
  TcpStream raw = TcpStream::connect_loopback(server.port());
  DataUpload upload;
  upload.unit_id = "intruder";
  upload.channel = 0;
  upload.sequence = 0;
  upload.samples.push_back(Sample{kStart, 999.0});
  write_frame(raw, encode(Message{upload}));
  try {
    const auto reply = read_frame(raw, Millis{2000});
    EXPECT_FALSE(reply.has_value());
  } catch (const std::exception&) {
  }
  EXPECT_TRUE(server.known_units().empty());
  EXPECT_EQ(server.measurements("intruder", 0).size(), 0u);
}

TEST(ServerLifecycle, MismatchedUnitIdCannotWriteIntoAnotherSeries) {
  Server server;
  TcpStream raw = TcpStream::connect_loopback(server.port());
  Hello hello;
  hello.unit_id = "honest";
  write_frame(raw, encode(Message{hello}));
  const auto hello_reply = read_frame(raw, Millis{2000});
  ASSERT_TRUE(hello_reply.has_value());

  // Authenticated as "honest" but uploading as "victim": dropped.
  DataUpload upload;
  upload.unit_id = "victim";
  upload.channel = 0;
  upload.sequence = 0;
  upload.samples.push_back(Sample{kStart, 999.0});
  write_frame(raw, encode(Message{upload}));
  try {
    const auto reply = read_frame(raw, Millis{2000});
    EXPECT_FALSE(reply.has_value());
  } catch (const std::exception&) {
  }
  const auto units = server.known_units();
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0], "honest");
  EXPECT_EQ(server.measurements("victim", 0).size(), 0u);
}

TEST(ServerLifecycle, AuthenticatedClientStillWorksThroughTheGate) {
  Server server;
  Client client(options_for(server, "legit"), PowerMeter(PowerMeterSpec{}, 1),
                [](int, SimTime) { return 75.0; });
  client.start_measurement(0, 1);
  for (SimTime t = kStart; t < kStart + 10; ++t) client.tick(t);
  EXPECT_TRUE(client.sync());
  EXPECT_EQ(server.measurements("legit", 0).size(), 10u);
}

TEST(ServerLifecycle, ReconnectingClientsAreReapedWhileServerRuns) {
  Server server;
  constexpr int kReconnects = 15;
  for (int i = 0; i < kReconnects; ++i) {
    Client client(options_for(server, "redialer"), PowerMeter(PowerMeterSpec{}, 2),
                  [](int, SimTime) { return 10.0; });
    ASSERT_TRUE(client.sync());
    client.drop_connection();
  }
  // The acceptor sweeps finished threads as it loops: most of the 15
  // connection threads must be joined long before stop(), and none of the
  // finished ones may linger as "active".
  EXPECT_TRUE(eventually([&] {
    const auto stats = server.connection_stats();
    return stats.reaped >= kReconnects - 1 && stats.active <= 1;
  }));
  const auto stats = server.connection_stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kReconnects));
  server.stop();
}

TEST(ServerLifecycle, StatsCountRejectedHandshakes) {
  Server server;
  TcpStream raw = TcpStream::connect_loopback(server.port());
  Hello hello;
  hello.unit_id = "old-firmware";
  hello.version = 99;
  write_frame(raw, encode(Message{hello}));
  const auto reply = read_frame(raw, Millis{2000});
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(eventually([&] { return server.connection_stats().rejected >= 1; }));
  EXPECT_TRUE(server.known_units().empty());
}

}  // namespace
}  // namespace joules::autopower
