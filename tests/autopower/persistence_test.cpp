// Client state persistence: exact integer round trips (the old code parsed
// times and sequence numbers through double, corrupting anything above 2^53
// and the INT64_MIN "never sampled" sentinel), versioned headers, legacy
// files, and atomic replacement of the recovery file.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "autopower/client.hpp"
#include "autopower/server.hpp"

namespace joules::autopower {
namespace {

namespace fs = std::filesystem;

constexpr SimTime kStart = 1725753600;

Client::Options options_for(std::uint16_t port, const std::string& unit_id) {
  Client::Options options;
  options.unit_id = unit_id;
  options.server_port = port;
  options.upload_batch = 8;
  return options;
}

Client make_client(std::uint16_t port, const std::string& unit_id) {
  return Client(options_for(port, unit_id), PowerMeter(PowerMeterSpec{}, 42),
                [](int, SimTime) { return 123.456 + 1e-11; });
}

std::string slurp(const fs::path& path) {
  std::ifstream stream(path);
  std::string out((std::istreambuf_iterator<char>(stream)),
                  std::istreambuf_iterator<char>());
  return out;
}

struct TempDir {
  TempDir() : path(fs::temp_directory_path() /
                   ("autopower_persist_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter++))) {
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  static inline int counter = 0;
  fs::path path;
};

TEST(Persistence, NeverSampledSentinelSurvivesReload) {
  TempDir dir;
  const fs::path state = dir.path / "state.csv";
  Client client = make_client(1, "sentinel-unit");
  client.start_measurement(0, 3);  // started but never ticked: sentinel stays
  client.save_state(state);

  Client reborn = make_client(1, "sentinel-unit");
  reborn.load_state(state);
  EXPECT_TRUE(reborn.is_measuring(0));
  // The sentinel means "sample immediately on the first tick".
  reborn.tick(kStart);
  EXPECT_EQ(reborn.buffered_samples(), 1u);
  // A corrupted sentinel (any finite time) would make this second tick, one
  // second later with period 3, look "not yet due" — or worse, overflow.
  reborn.tick(kStart + 1);
  EXPECT_EQ(reborn.buffered_samples(), 1u);
  reborn.tick(kStart + 3);
  EXPECT_EQ(reborn.buffered_samples(), 2u);
}

TEST(Persistence, IntegersAbove2to53RoundTripExactly) {
  TempDir dir;
  const fs::path state = dir.path / "state.csv";
  // 2^53 + 1 is the first integer double cannot represent; a round trip
  // through cell_double turns it into 2^53. Handcraft a v2 state file with
  // such values in every integer column.
  const std::string contents =
      "# autopower-client-state v2\n"
      "channel,measuring,period_s,last_sample,next_sequence,time,value\n"
      "0,1,1,9007199254740993,9007199254740995,,\n"
      "0,,,,,9007199254740997,42.125\n";
  {
    std::ofstream stream(state);
    stream << contents;
  }

  Client client = make_client(1, "big-ints");
  client.load_state(state);
  EXPECT_EQ(client.buffered_samples(), 1u);

  const fs::path resaved = dir.path / "resaved.csv";
  client.save_state(resaved);
  const std::string text = slurp(resaved);
  EXPECT_NE(text.find("9007199254740993"), std::string::npos);
  EXPECT_NE(text.find("9007199254740995"), std::string::npos);
  EXPECT_NE(text.find("9007199254740997"), std::string::npos);

  // Save -> load -> save is a fixed point: byte-identical files.
  Client again = make_client(1, "big-ints");
  again.load_state(resaved);
  const fs::path resaved2 = dir.path / "resaved2.csv";
  again.save_state(resaved2);
  EXPECT_EQ(slurp(resaved2), text);
}

TEST(Persistence, SampleValuesRoundTripBitExactly) {
  TempDir dir;
  const fs::path state = dir.path / "state.csv";
  Client client = make_client(1, "precise-unit");
  client.start_measurement(0, 1);
  for (SimTime t = kStart; t < kStart + 5; ++t) client.tick(t);
  client.save_state(state);

  // The old 6-decimal formatting truncated readings; %.17g must not.
  Client reborn = make_client(1, "precise-unit");
  reborn.load_state(state);
  const fs::path resaved = dir.path / "resaved.csv";
  reborn.save_state(resaved);
  EXPECT_EQ(slurp(resaved), slurp(state));
}

TEST(Persistence, LegacyHeaderlessV1FileStillLoads) {
  TempDir dir;
  const fs::path state = dir.path / "v1.csv";
  {
    std::ofstream stream(state);
    stream << "channel,measuring,period_s,last_sample,next_sequence,time,value\n"
              "2,1,5,1725753600,7,,\n"
              "2,,,,,1725753605,99.5\n";
  }
  Client client = make_client(1, "legacy-unit");
  client.load_state(state);
  EXPECT_TRUE(client.is_measuring(2));
  EXPECT_EQ(client.buffered_samples(), 1u);
}

TEST(Persistence, NewerVersionRejected) {
  TempDir dir;
  const fs::path state = dir.path / "future.csv";
  {
    std::ofstream stream(state);
    stream << "# autopower-client-state v99\nchannel,measuring,period_s,"
              "last_sample,next_sequence,time,value\n";
  }
  Client client = make_client(1, "future-unit");
  EXPECT_THROW(client.load_state(state), std::runtime_error);
}

TEST(Persistence, FailedSaveLeavesPreviousStateIntact) {
  TempDir dir;
  const fs::path state = dir.path / "state.csv";
  Client client = make_client(1, "atomic-unit");
  client.start_measurement(0, 1);
  client.tick(kStart);
  client.save_state(state);
  const std::string before = slurp(state);

  // A save that cannot complete (missing directory) must throw without
  // touching the existing file.
  EXPECT_THROW(client.save_state(dir.path / "missing" / "state.csv"),
               std::system_error);
  EXPECT_EQ(slurp(state), before);
}

TEST(Persistence, SaveLeavesNoTempFilesBehind) {
  TempDir dir;
  const fs::path state = dir.path / "state.csv";
  Client client = make_client(1, "tidy-unit");
  client.start_measurement(0, 1);
  client.tick(kStart);
  client.save_state(state);
  client.tick(kStart + 1);
  client.save_state(state);  // atomic overwrite of an existing file

  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    (void)entry;
    entries += 1;
  }
  EXPECT_EQ(entries, 1u);  // just state.csv — no .tmp litter
  EXPECT_NE(slurp(state).find("# autopower-client-state v2"), std::string::npos);
}

TEST(Persistence, KillAndReloadMidBufferResumesWithoutLossOrDuplicates) {
  TempDir dir;
  const fs::path state = dir.path / "state.csv";
  Server server;
  {
    Client client(options_for(server.port(), "phoenix"),
                  PowerMeter(PowerMeterSpec{}, 7),
                  [](int, SimTime) { return 200.0; });
    client.start_measurement(0, 1);
    for (SimTime t = kStart; t < kStart + 20; ++t) client.tick(t);
    ASSERT_TRUE(client.sync());  // first 20 samples durable server-side
    for (SimTime t = kStart + 20; t < kStart + 33; ++t) client.tick(t);
    client.save_state(state);
  }  // power failure with 13 samples still buffered

  Client reborn(options_for(server.port(), "phoenix"),
                PowerMeter(PowerMeterSpec{}, 7),
                [](int, SimTime) { return 200.0; });
  reborn.load_state(state);
  EXPECT_EQ(reborn.buffered_samples(), 13u);
  ASSERT_TRUE(reborn.sync());
  EXPECT_EQ(reborn.buffered_samples(), 0u);
  // Exactly 33 unique samples: nothing lost, nothing double-counted.
  EXPECT_EQ(server.measurements("phoenix", 0).size(), 33u);
}

}  // namespace
}  // namespace joules::autopower
