// Failure injection against the Autopower stack: malformed frames, protocol
// violations, version mismatches, and connection loss at awkward moments.
// The server must shed broken peers without crashing; the client must retain
// its buffer across every failure mode.
#include <gtest/gtest.h>

#include "autopower/client.hpp"
#include "autopower/server.hpp"
#include "net/framing.hpp"
#include "util/units.hpp"

namespace joules::autopower {
namespace {

constexpr SimTime kStart = 1725753600;

Client::Options options_for(const Server& server, const std::string& unit_id) {
  Client::Options options;
  options.unit_id = unit_id;
  options.server_port = server.port();
  options.upload_batch = 8;
  return options;
}

TEST(FailureInjection, GarbageFrameDropsConnectionNotServer) {
  Server server;
  {
    TcpStream raw = TcpStream::connect_loopback(server.port());
    const std::vector<std::byte> garbage = {std::byte{0xde}, std::byte{0xad},
                                            std::byte{0xbe}, std::byte{0xef}};
    write_frame(raw, garbage);
    // Server drops us; either a clean EOF or a reset is acceptable.
    try {
      const auto reply = read_frame(raw, Millis{2000});
      EXPECT_FALSE(reply.has_value());
    } catch (const std::exception&) {
    }
  }
  // The server still serves well-behaved units afterwards.
  Client client(options_for(server, "survivor"), PowerMeter(PowerMeterSpec{}, 1),
                [](int, SimTime) { return 50.0; });
  EXPECT_TRUE(client.sync());
}

TEST(FailureInjection, OversizedLengthPrefixRejected) {
  Server server;
  TcpStream raw = TcpStream::connect_loopback(server.port());
  // A 4-byte length prefix claiming a 1 GiB frame.
  const std::vector<std::byte> evil = {std::byte{0x40}, std::byte{0x00},
                                       std::byte{0x00}, std::byte{0x00}};
  raw.send_all(evil);
  try {
    const auto reply = read_frame(raw, Millis{2000});
    EXPECT_FALSE(reply.has_value());
  } catch (const std::exception&) {
  }
  Client client(options_for(server, "survivor2"), PowerMeter(PowerMeterSpec{}, 2),
                [](int, SimTime) { return 50.0; });
  EXPECT_TRUE(client.sync());
}

TEST(FailureInjection, VersionMismatchRejectedCleanly) {
  Server server;
  TcpStream raw = TcpStream::connect_loopback(server.port());
  Hello hello;
  hello.unit_id = "old-firmware";
  hello.version = 99;
  write_frame(raw, encode(Message{hello}));
  const auto reply = read_frame(raw, Millis{2000});
  ASSERT_TRUE(reply.has_value());
  const Message message = decode(*reply);
  const auto* ack = std::get_if<HelloAck>(&message);
  ASSERT_NE(ack, nullptr);
  EXPECT_FALSE(ack->accepted);
  // The unit must NOT be registered.
  EXPECT_TRUE(server.known_units().empty());
}

TEST(FailureInjection, ServerSideMessageAtServerDropsPeer) {
  Server server;
  TcpStream raw = TcpStream::connect_loopback(server.port());
  // Sending a server->client message (UploadAck) to the server is a
  // protocol violation.
  UploadAck bogus;
  bogus.sequence = 1;
  write_frame(raw, encode(Message{bogus}));
  try {
    const auto reply = read_frame(raw, Millis{2000});
    EXPECT_FALSE(reply.has_value());
  } catch (const std::exception&) {
  }
}

TEST(FailureInjection, ConnectionLossMidBatchLosesNothing) {
  Server server;
  Client client(options_for(server, "flaky-uplink"),
                PowerMeter(PowerMeterSpec{}, 3),
                [](int, SimTime) { return 75.0; });
  client.start_measurement(0, 1);
  for (SimTime t = kStart; t < kStart + 40; ++t) client.tick(t);
  const std::size_t buffered = client.buffered_samples();
  ASSERT_EQ(buffered, 40u);

  // Drop the connection between every sync attempt; data must survive and
  // eventually all arrive exactly once.
  for (int attempt = 0; attempt < 3; ++attempt) {
    client.drop_connection();
  }
  EXPECT_TRUE(client.sync());
  EXPECT_EQ(client.buffered_samples(), 0u);
  EXPECT_EQ(server.measurements("flaky-uplink", 0).size(), 40u);
}

TEST(FailureInjection, SyncAgainstDeadPortFailsFast) {
  std::uint16_t dead_port;
  {
    Server ephemeral;
    dead_port = ephemeral.port();
  }  // server gone
  Client::Options options;
  options.unit_id = "orphan";
  options.server_port = dead_port;
  Client client(options, PowerMeter(PowerMeterSpec{}, 4),
                [](int, SimTime) { return 10.0; });
  client.start_measurement(0, 1);
  client.tick(kStart);
  EXPECT_FALSE(client.sync());
  EXPECT_EQ(client.buffered_samples(), 1u);
}

TEST(FailureInjection, EmptyFrameToServerIsHandled) {
  Server server;
  TcpStream raw = TcpStream::connect_loopback(server.port());
  write_frame(raw, {});
  try {
    const auto reply = read_frame(raw, Millis{2000});
    EXPECT_FALSE(reply.has_value());
  } catch (const std::exception&) {
  }
  // Server alive.
  Client client(options_for(server, "after-empty"), PowerMeter(PowerMeterSpec{}, 5),
                [](int, SimTime) { return 5.0; });
  EXPECT_TRUE(client.sync());
}

}  // namespace
}  // namespace joules::autopower
