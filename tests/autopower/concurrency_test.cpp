// Concurrency stress: many Autopower units syncing against one server from
// parallel threads (the server is thread-per-connection; the shared state is
// a single mutex). Every sample must land exactly once.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "autopower/client.hpp"
#include "autopower/server.hpp"

namespace joules::autopower {
namespace {

constexpr SimTime kStart = 1725753600;

TEST(Concurrency, TwelveUnitsSyncInParallel) {
  Server server;
  constexpr int kUnits = 12;
  constexpr int kSamplesPerUnit = 200;

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kUnits);
  for (int u = 0; u < kUnits; ++u) {
    threads.emplace_back([&server, &failures, u] {
      Client::Options options;
      options.unit_id = "unit-" + std::to_string(u);
      options.server_port = server.port();
      options.upload_batch = 32;
      Client client(options, PowerMeter(PowerMeterSpec{}, 100 + u),
                    [u](int, SimTime) { return 100.0 + u; });
      client.start_measurement(0, 1);
      for (SimTime t = kStart; t < kStart + kSamplesPerUnit; ++t) {
        client.tick(t);
        // Interleave uploads with sampling to stress the server.
        if ((t - kStart) % 50 == 49 && !client.sync()) failures.fetch_add(1);
      }
      if (!client.sync()) failures.fetch_add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.known_units().size(), static_cast<std::size_t>(kUnits));
  for (int u = 0; u < kUnits; ++u) {
    const TimeSeries stored =
        server.measurements("unit-" + std::to_string(u), 0);
    EXPECT_EQ(stored.size(), static_cast<std::size_t>(kSamplesPerUnit))
        << "unit " << u;
    // Each unit's readings track its own source level.
    EXPECT_NEAR(stored.front().value, 100.0 + u, 3.0) << "unit " << u;
  }
}

TEST(Concurrency, CommandsToManyUnitsAreIsolated) {
  Server server;
  constexpr int kUnits = 6;
  for (int u = 0; u < kUnits; ++u) {
    server.enqueue_command("unit-" + std::to_string(u),
                           {Command::Kind::kStartMeasurement,
                            static_cast<std::uint8_t>(u % 2), 1});
  }
  std::vector<std::thread> threads;
  std::atomic<int> wrong{0};
  for (int u = 0; u < kUnits; ++u) {
    threads.emplace_back([&server, &wrong, u] {
      Client::Options options;
      options.unit_id = "unit-" + std::to_string(u);
      options.server_port = server.port();
      Client client(options, PowerMeter(PowerMeterSpec{}, 200 + u),
                    [](int, SimTime) { return 50.0; });
      if (!client.sync()) {
        wrong.fetch_add(1);
        return;
      }
      // Only the commanded channel measures.
      if (!client.is_measuring(u % 2) || client.is_measuring(1 - (u % 2))) {
        wrong.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(wrong.load(), 0);
}

}  // namespace
}  // namespace joules::autopower
