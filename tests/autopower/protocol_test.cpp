#include "autopower/protocol.hpp"

#include <gtest/gtest.h>

namespace joules::autopower {
namespace {

template <typename T>
T round_trip(const T& message) {
  const std::vector<std::byte> bytes = encode(Message{message});
  const Message decoded = decode(bytes);
  return std::get<T>(decoded);
}

TEST(Protocol, HelloRoundTrip) {
  Hello hello;
  hello.unit_id = "pop-zrh-unit-3";
  hello.version = kProtocolVersion;
  const Hello back = round_trip(hello);
  EXPECT_EQ(back.unit_id, hello.unit_id);
  EXPECT_EQ(back.version, hello.version);
}

TEST(Protocol, HelloAckRoundTrip) {
  HelloAck ack;
  ack.accepted = false;
  EXPECT_FALSE(round_trip(ack).accepted);
}

TEST(Protocol, PollCommandsRoundTrip) {
  PollCommands poll;
  poll.unit_id = "unit-x";
  EXPECT_EQ(round_trip(poll).unit_id, "unit-x");
}

TEST(Protocol, CommandsRoundTrip) {
  Commands commands;
  commands.commands.push_back(
      {Command::Kind::kStartMeasurement, 0, 1});
  commands.commands.push_back(
      {Command::Kind::kStopMeasurement, 1, 0});
  const Commands back = round_trip(commands);
  ASSERT_EQ(back.commands.size(), 2u);
  EXPECT_EQ(back.commands[0], commands.commands[0]);
  EXPECT_EQ(back.commands[1], commands.commands[1]);
}

TEST(Protocol, DataUploadRoundTrip) {
  DataUpload upload;
  upload.unit_id = "unit-y";
  upload.channel = 1;
  upload.sequence = 77;
  upload.samples = {{1725753600, 358.4}, {1725753601, 358.9}};
  const DataUpload back = round_trip(upload);
  EXPECT_EQ(back.unit_id, "unit-y");
  EXPECT_EQ(back.channel, 1);
  EXPECT_EQ(back.sequence, 77u);
  ASSERT_EQ(back.samples.size(), 2u);
  EXPECT_EQ(back.samples[0].time, 1725753600);
  EXPECT_DOUBLE_EQ(back.samples[1].value, 358.9);
}

TEST(Protocol, EmptyUploadAllowed) {
  DataUpload upload;
  upload.unit_id = "u";
  EXPECT_TRUE(round_trip(upload).samples.empty());
}

TEST(Protocol, UploadAckRoundTrip) {
  UploadAck ack;
  ack.sequence = 123456789;
  EXPECT_EQ(round_trip(ack).sequence, 123456789u);
}

TEST(Protocol, UnknownTypeThrows) {
  std::vector<std::byte> garbage = {std::byte{0xEE}};
  EXPECT_THROW(decode(garbage), std::runtime_error);
}

TEST(Protocol, TruncatedMessageThrows) {
  Hello hello;
  hello.unit_id = "abcdef";
  std::vector<std::byte> bytes = encode(Message{hello});
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(decode(bytes), std::out_of_range);
}

TEST(Protocol, UnknownCommandKindThrows) {
  ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(MessageType::kCommands));
  writer.u32(1);
  writer.u8(99);  // invalid kind
  writer.u8(0);
  writer.u32(1);
  EXPECT_THROW(decode(writer.bytes()), std::runtime_error);
}

}  // namespace
}  // namespace joules::autopower
