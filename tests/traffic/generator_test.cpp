#include "traffic/generator.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace joules {
namespace {

TEST(Generator, ToolSelectionMatchesPaperLab) {
  EXPECT_EQ(tool_for_rate(gbps_to_bps(100)), GeneratorTool::kIbSendBw);
  EXPECT_EQ(tool_for_rate(gbps_to_bps(2.5)), GeneratorTool::kIbSendBw);
  EXPECT_EQ(tool_for_rate(gbps_to_bps(1)), GeneratorTool::kIperf3Udp);
}

TEST(Generator, MakeCbrValidates) {
  EXPECT_THROW(static_cast<void>(make_cbr(0.0, 1500)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(make_cbr(1e9, 63)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(make_cbr(1e9, 10000)), std::invalid_argument);
  EXPECT_NO_THROW(static_cast<void>(make_cbr(1e9, 64)));
  EXPECT_NO_THROW(static_cast<void>(make_cbr(1e9, 9216)));
}

TEST(Generator, PacketRateMatchesEq12) {
  const TrafficSpec spec = make_cbr(gbps_to_bps(100), 1500);
  // p = r / (8 * (L + L_header)), wire overhead 24 B.
  EXPECT_NEAR(spec.packet_rate_pps(), 100e9 / (8.0 * (1500 + 24)), 1.0);
}

TEST(Generator, SmallerFramesMorePackets) {
  const TrafficSpec small = make_cbr(gbps_to_bps(10), 64);
  const TrafficSpec large = make_cbr(gbps_to_bps(10), 1500);
  EXPECT_GT(small.packet_rate_pps(), 10 * large.packet_rate_pps());
}

TEST(Generator, RateSweepEndpointsAndMonotonicity) {
  const auto sweep = rate_sweep(gbps_to_bps(2.5), gbps_to_bps(100), 8, 1024);
  ASSERT_EQ(sweep.size(), 8u);
  EXPECT_DOUBLE_EQ(sweep.front().rate_bps, gbps_to_bps(2.5));
  EXPECT_DOUBLE_EQ(sweep.back().rate_bps, gbps_to_bps(100));
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i].rate_bps, sweep[i - 1].rate_bps);
    EXPECT_DOUBLE_EQ(sweep[i].frame_bytes, 1024);
  }
}

TEST(Generator, RateSweepValidates) {
  EXPECT_THROW(static_cast<void>(rate_sweep(1e9, 2e9, 1, 64)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(rate_sweep(2e9, 1e9, 4, 64)), std::invalid_argument);
}

TEST(Generator, DefaultFrameSizesCoverPaperExtremes) {
  const auto sizes = default_frame_sizes();
  EXPECT_GE(sizes.size(), 4u);
  EXPECT_DOUBLE_EQ(sizes.front(), 64);
  EXPECT_DOUBLE_EQ(sizes.back(), 1500);
}

TEST(Generator, DescribeNamesTheTool) {
  EXPECT_NE(describe(make_cbr(gbps_to_bps(50), 512)).find("ib_send_bw"),
            std::string::npos);
  EXPECT_NE(describe(make_cbr(gbps_to_bps(1), 512)).find("iperf3"),
            std::string::npos);
}

}  // namespace
}  // namespace joules
