#include "traffic/snake.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace joules {
namespace {

TEST(Snake, ValidatesPortCount) {
  EXPECT_THROW(SnakePlan::over_ports(0), std::invalid_argument);
  EXPECT_THROW(SnakePlan::over_ports(3), std::invalid_argument);
  EXPECT_NO_THROW(SnakePlan::over_ports(2));
  EXPECT_NO_THROW(SnakePlan::over_ports(24));
}

TEST(Snake, CablingPairsAdjacentPorts) {
  const SnakePlan plan = SnakePlan::over_ports(8);
  EXPECT_EQ(plan.pair_count(), 4u);
  const auto pairs = plan.cabling();
  ASSERT_EQ(pairs.size(), 4u);
  EXPECT_EQ(pairs[0], (std::pair<std::size_t, std::size_t>{0, 1}));
  EXPECT_EQ(pairs[3], (std::pair<std::size_t, std::size_t>{6, 7}));
}

TEST(Snake, PerInterfaceLoadIsBidirectional) {
  // Every interface in the snake carries the stream once in each direction,
  // and the model's r_i sums both directions.
  const SnakePlan plan = SnakePlan::over_ports(24);
  const TrafficSpec spec = make_cbr(gbps_to_bps(40), 1024);
  EXPECT_DOUBLE_EQ(plan.per_interface_rate_bps(spec), 2 * spec.rate_bps);
  EXPECT_DOUBLE_EQ(plan.per_interface_packet_rate_pps(spec),
                   2 * spec.packet_rate_pps());
}

}  // namespace
}  // namespace joules
