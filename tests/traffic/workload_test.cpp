#include "traffic/workload.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/descriptive.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

WorkloadParams base_params() {
  WorkloadParams p;
  p.mean_rate_bps = gbps_to_bps(10);
  p.diurnal_amplitude = 0.5;
  p.weekend_factor = 0.7;
  p.jitter_frac = 0.05;
  p.annual_growth = 0.2;
  p.peak_hour_utc = 14;
  return p;
}

const SimTime kOrigin = make_time(2024, 9, 1);

TEST(Workload, DeterministicInTime) {
  const DiurnalWorkload w(base_params(), kOrigin, 42);
  const SimTime t = kOrigin + 12345;
  EXPECT_DOUBLE_EQ(w.rate_bps(t), w.rate_bps(t));
}

TEST(Workload, DifferentSeedsDifferentJitter) {
  const DiurnalWorkload a(base_params(), kOrigin, 1);
  const DiurnalWorkload b(base_params(), kOrigin, 2);
  const SimTime t = kOrigin + 3600;
  EXPECT_NE(a.rate_bps(t), b.rate_bps(t));
}

TEST(Workload, NeverNegative) {
  WorkloadParams p = base_params();
  p.jitter_frac = 2.0;  // absurd jitter still must not go negative
  const DiurnalWorkload w(p, kOrigin, 3);
  for (int i = 0; i < 500; ++i) {
    EXPECT_GE(w.rate_bps(kOrigin + i * 977), 0.0);
  }
}

TEST(Workload, PeakHourBeatsTrough) {
  WorkloadParams p = base_params();
  p.jitter_frac = 0.0;
  const DiurnalWorkload w(p, kOrigin, 4);
  // Tue Sep 03 2024: peak at 14:00 UTC, trough 12 h away.
  const SimTime peak = make_time(2024, 9, 3, 14, 0, 0);
  const SimTime trough = make_time(2024, 9, 3, 2, 0, 0);
  EXPECT_GT(w.rate_bps(peak), 2.0 * w.rate_bps(trough));
}

TEST(Workload, WeekendDip) {
  WorkloadParams p = base_params();
  p.jitter_frac = 0.0;
  const DiurnalWorkload w(p, kOrigin, 5);
  const SimTime saturday = make_time(2024, 9, 7, 14, 0, 0);
  const SimTime tuesday = make_time(2024, 9, 3, 14, 0, 0);
  EXPECT_NEAR(w.rate_bps(saturday) / w.rate_bps(tuesday), 0.7, 0.01);
}

TEST(Workload, GrowthOverAYear) {
  WorkloadParams p = base_params();
  p.jitter_frac = 0.0;
  p.diurnal_amplitude = 0.0;
  p.weekend_factor = 1.0;
  const DiurnalWorkload w(p, kOrigin, 6);
  const double now = w.rate_bps(make_time(2024, 9, 3, 12, 0, 0));
  const double later = w.rate_bps(make_time(2025, 9, 3, 12, 0, 0));
  EXPECT_NEAR(later / now, 1.2, 0.01);
}

TEST(Workload, LongRunMeanNearConfigured) {
  WorkloadParams p = base_params();
  p.annual_growth = 0.0;
  p.weekend_factor = 1.0;
  const DiurnalWorkload w(p, kOrigin, 7);
  std::vector<double> samples;
  for (SimTime t = kOrigin; t < kOrigin + 7 * kSecondsPerDay; t += 300) {
    samples.push_back(w.rate_bps(t));
  }
  EXPECT_NEAR(mean(samples) / p.mean_rate_bps, 1.0, 0.05);
}

TEST(Workload, PacketRateConsistentWithFrameSize) {
  const DiurnalWorkload w(base_params(), kOrigin, 8);
  const SimTime t = kOrigin + 1000;
  const double expected =
      packet_rate_for_bit_rate(w.rate_bps(t), w.params().mean_frame_bytes);
  EXPECT_DOUBLE_EQ(w.packet_rate_pps(t), expected);
}

TEST(Workload, CombinedSampleBitIdenticalToAccessors) {
  // sample() evaluates the shape once and derives both rates from it; the
  // sweep goldens rely on that being bitwise what the two accessors return.
  const DiurnalWorkload w(base_params(), kOrigin, 9);
  for (SimTime t = kOrigin; t < kOrigin + 2 * kSecondsPerDay; t += 977) {
    const DiurnalWorkload::Sample s = w.sample(t);
    EXPECT_EQ(s.rate_bps, w.rate_bps(t));
    EXPECT_EQ(s.packet_rate_pps, w.packet_rate_pps(t));
  }
}

}  // namespace
}  // namespace joules
