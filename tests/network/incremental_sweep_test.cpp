// The incremental (reuse_quantum_s > 0) sweep's own golden and determinism
// suite. The contract, per TraceEngineOptions: sample-and-hold between
// recompute points, recompute on override-segment change / active-window
// open / quantum-bucket change — and, for a fixed quantum, bit-identical
// results across worker counts and block sizes. The default quantum of 0
// stays covered by trace_engine_test.cpp's pre-engine goldens, which this
// PR must not (and does not) move.
#include <gtest/gtest.h>

#include <vector>

#include "network/dataset.hpp"
#include "network/trace_engine.hpp"
#include "obs/registry.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

constexpr SimTime kQuantum = 6 * kSecondsPerHour;

// Golden samples for the incremental sweep: build_switch_like_network()
// defaults, sim seed 7, 2 days hourly from study_begin, reuse quantum 6 h.
// Captured from the first implementation at worker count 1; every worker
// count and block size must reproduce them bit for bit.
struct GoldenSample {
  std::size_t index;
  SimTime time;
  double power_w;
  double traffic_bps;
};
constexpr GoldenSample kIncrementalGolden[] = {
    {0, 1725148800, 0x1.7bcb0f5f66236p+14, 0x1.4e0cf49f877f3p+38},
    {7, 1725174000, 0x1.7bd90a4f7eccdp+14, 0x1.7ffd31153da92p+38},
    {23, 1725231600, 0x1.7c356b33c0234p+14, 0x1.0e596c2b94274p+39},
    {31, 1725260400, 0x1.7c0b9838e1534p+14, 0x1.d25e09d92a272p+38},
    {47, 1725318000, 0x1.7c45399405624p+14, 0x1.4942014546016p+39},
};

class TraceEngineIncrementalTest : public ::testing::Test {
 protected:
  static const NetworkSimulation& sim() {
    static NetworkSimulation simulation(build_switch_like_network(), 7);
    return simulation;
  }
  static SimTime begin() { return sim().topology().options.study_begin; }
  static SimTime end() { return begin() + 2 * kSecondsPerDay; }

  static NetworkTraces sweep(const NetworkSimulation& simulation,
                             TraceEngineOptions options) {
    TraceEngine engine(simulation, options);
    return engine.network_traces(begin(), end(), kSecondsPerHour);
  }

  static void expect_identical(const NetworkTraces& a, const NetworkTraces& b) {
    EXPECT_EQ(a.capacity_bps, b.capacity_bps);
    ASSERT_EQ(a.total_power_w.size(), b.total_power_w.size());
    ASSERT_EQ(a.total_traffic_bps.size(), b.total_traffic_bps.size());
    for (std::size_t i = 0; i < a.total_power_w.size(); ++i) {
      EXPECT_EQ(a.total_power_w[i].time, b.total_power_w[i].time) << i;
      EXPECT_EQ(a.total_power_w[i].value, b.total_power_w[i].value) << i;
      EXPECT_EQ(a.total_traffic_bps[i].value, b.total_traffic_bps[i].value) << i;
    }
  }
};

TEST_F(TraceEngineIncrementalTest, GoldenValuesBitIdenticalAt1_4_16Workers) {
  for (const std::size_t workers : {1u, 4u, 16u}) {
    const NetworkTraces traces = sweep(
        sim(), TraceEngineOptions{.workers = workers, .reuse_quantum_s = kQuantum});
    ASSERT_EQ(traces.total_power_w.size(), 48u);
    for (const GoldenSample& golden : kIncrementalGolden) {
      EXPECT_EQ(traces.total_power_w[golden.index].time, golden.time);
      EXPECT_EQ(traces.total_power_w[golden.index].value, golden.power_w)
          << "workers=" << workers << " i=" << golden.index;
      EXPECT_EQ(traces.total_traffic_bps[golden.index].value, golden.traffic_bps)
          << "workers=" << workers << " i=" << golden.index;
    }
  }
}

TEST_F(TraceEngineIncrementalTest, TinyBlocksDoNotChangeIncrementalResults) {
  // Carries must survive block boundaries: force single-row blocks and
  // compare against the default blocking.
  const NetworkTraces tiny = sweep(
      sim(), TraceEngineOptions{.workers = 4,
                                .max_block_bytes = 1,
                                .reuse_quantum_s = kQuantum});
  const NetworkTraces big = sweep(
      sim(), TraceEngineOptions{.workers = 4, .reuse_quantum_s = kQuantum});
  expect_identical(tiny, big);
}

TEST_F(TraceEngineIncrementalTest, QuantumAtOrBelowStepDegeneratesToExact) {
  // Every step crosses a bucket boundary, so the incremental sweep computes
  // every sample — and must then equal the exact sweep bit for bit.
  const NetworkTraces exact = sweep(sim(), TraceEngineOptions{.workers = 4});
  const NetworkTraces degenerate = sweep(
      sim(),
      TraceEngineOptions{.workers = 4, .reuse_quantum_s = kSecondsPerHour});
  expect_identical(degenerate, exact);
}

TEST_F(TraceEngineIncrementalTest, SecondSweepOnSameEngineIsIdentical) {
  // Carries are reset per sweep; a reused engine must not leak state.
  TraceEngine engine(
      sim(), TraceEngineOptions{.workers = 4, .reuse_quantum_s = kQuantum});
  const NetworkTraces first =
      engine.network_traces(begin(), end(), kSecondsPerHour);
  const NetworkTraces second =
      engine.network_traces(begin(), end(), kSecondsPerHour);
  expect_identical(first, second);
}

TEST_F(TraceEngineIncrementalTest, CountersSplitSamplesIntoComputedPlusReused) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with JOULES_OBS=OFF";
  obs::Registry registry(16);
  TraceEngine engine(sim(),
                     TraceEngineOptions{.workers = 4,
                                        .registry = &registry,
                                        .reuse_quantum_s = kQuantum});
  static_cast<void>(engine.network_traces(begin(), end(), kSecondsPerHour));
  const std::uint64_t samples = registry.counter("trace.samples");
  const std::uint64_t computed = registry.counter("trace.samples_computed");
  const std::uint64_t reused = registry.counter("trace.samples_reused");
  EXPECT_GT(samples, 0u);
  EXPECT_EQ(computed + reused, samples);
  // The whole point: on an override-sparse workload most samples are reused.
  EXPECT_LT(computed, samples);
  EXPECT_GT(reused, computed);
}

TEST_F(TraceEngineIncrementalTest, ExactModeCountsEverySampleAsComputed) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with JOULES_OBS=OFF";
  obs::Registry registry(16);
  TraceEngine engine(
      sim(), TraceEngineOptions{.workers = 4, .registry = &registry});
  static_cast<void>(engine.network_traces(begin(), end(), kSecondsPerHour));
  EXPECT_EQ(registry.counter("trace.samples_computed"),
            registry.counter("trace.samples"));
  EXPECT_EQ(registry.counter("trace.samples_reused"), 0u);
}

TEST_F(TraceEngineIncrementalTest, DenseOverrideScheduleForcesExactRecompute) {
  // An override boundary at every timestep on every router keeps each
  // router's override segment changing each step, so even a huge quantum
  // degenerates to the exact sweep. The overrides pin the base state
  // (kUp, traffic unsuppressed), so the exact sweep itself is unchanged —
  // which makes the two paths directly comparable.
  NetworkSimulation dense(build_switch_like_network(), 7);
  for (std::size_t r = 0; r < dense.router_count(); ++r) {
    for (SimTime t = begin(); t < end(); t += kSecondsPerHour) {
      StateOverride keep_up;
      keep_up.router = static_cast<int>(r);
      keep_up.iface = 0;
      keep_up.from = t;
      keep_up.to = t + kSecondsPerHour;
      keep_up.state = InterfaceState::kUp;
      keep_up.suppress_traffic = false;
      dense.add_override(keep_up);
    }
  }
  obs::Registry registry(16);
  TraceEngineOptions incremental_options{.workers = 4,
                                         .registry = obs::kEnabled ? &registry
                                                                   : nullptr,
                                         .reuse_quantum_s = 4 * kSecondsPerDay};
  const NetworkTraces incremental = sweep(dense, incremental_options);
  const NetworkTraces exact = sweep(dense, TraceEngineOptions{.workers = 4});
  expect_identical(incremental, exact);
  if (obs::kEnabled) {
    EXPECT_EQ(registry.counter("trace.samples_reused"), 0u);
  }
}

TEST_F(TraceEngineIncrementalTest, RejectsNegativeQuantum) {
  EXPECT_THROW(TraceEngine(sim(), TraceEngineOptions{.reuse_quantum_s = -1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace joules
