// Unit contract of the incremental what-if engine: baseline ordering,
// routing-aware sleep accept/reject, fingerprint-memo reuse on toggled
// mutations, parity with the one-shot Scenario, and bit-identity across
// worker counts. The randomized delta-vs-full-recompute stream lives in
// tests/properties/whatif_property_test.cpp.
#include "network/whatif_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "network/whatif.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

SimTime eval_instant() {
  return TopologyOptions{}.study_begin + 10 * kSecondsPerDay;
}

NetworkSimulation fresh_sim() {
  return NetworkSimulation(build_switch_like_network(), 7);
}

WhatIfEngine make_engine(WhatIfOptions options = {}) {
  return WhatIfEngine(fresh_sim(), eval_instant(), std::move(options));
}

// Per-link loads pinned at `fraction` of each link's own capacity.
std::vector<double> loads_at_fraction(const NetworkTopology& topology,
                                      double fraction) {
  std::vector<double> loads(topology.links.size());
  for (std::size_t l = 0; l < loads.size(); ++l) {
    loads[l] = fraction * link_capacity_bps(topology, l);
  }
  return loads;
}

TEST(WhatIfEngine, BaselineMustComeFirstAndOnlyOnce) {
  WhatIfEngine engine = make_engine();
  const std::vector<int> links = {0};
  EXPECT_THROW(engine.sleep_links(links), std::logic_error);
  EXPECT_THROW(engine.set_psu_mode(PsuMode::kHotStandby), std::logic_error);
  EXPECT_THROW(engine.unplug_spares(), std::logic_error);
  EXPECT_THROW(engine.decommission_pop(0), std::logic_error);
  EXPECT_GT(engine.baseline_w(), 18000.0);
  EXPECT_THROW(engine.baseline_w(), std::logic_error);
  // The baseline evaluated every router once and hit nothing.
  ASSERT_EQ(engine.answers().size(), 1u);
  EXPECT_EQ(engine.answers()[0].routers_recomputed, engine.sim().router_count());
  EXPECT_EQ(engine.answers()[0].cache_hits, 0u);
}

TEST(WhatIfEngine, ValidatesInputs) {
  WhatIfOptions bad_ceiling;
  bad_ceiling.hypnos.max_utilization = 0.0;
  EXPECT_THROW(make_engine(std::move(bad_ceiling)), std::invalid_argument);

  WhatIfOptions bad_loads;
  bad_loads.link_loads_bps = {1.0, 2.0};  // wrong size
  EXPECT_THROW(make_engine(std::move(bad_loads)), std::invalid_argument);

  WhatIfOptions bad_window;
  bad_window.load_window_s = 0;
  EXPECT_THROW(make_engine(std::move(bad_window)), std::invalid_argument);

  WhatIfEngine engine = make_engine();
  engine.baseline_w();
  const std::vector<int> out_of_range = {-1};
  EXPECT_THROW(engine.sleep_links(out_of_range), std::out_of_range);
  EXPECT_THROW(engine.decommission_pop(-1), std::out_of_range);
  EXPECT_THROW(engine.decommission_pop(10000), std::out_of_range);
}

TEST(WhatIfEngine, RoutingAwareSleepRejectsOverCeilingReroutes) {
  // Every link at 45 % of its own capacity, and the candidate carrying a load
  // as large as the fattest link in the network: any detour link would absorb
  // at least +20 % of its capacity and blow through the 50 % ceiling.
  const NetworkTopology topology = build_switch_like_network();
  std::vector<double> loads = loads_at_fraction(topology, 0.45);
  double fattest = 0.0;
  for (std::size_t l = 0; l < loads.size(); ++l) {
    fattest = std::max(fattest, link_capacity_bps(topology, l));
  }
  loads[0] = 0.2 * fattest;
  WhatIfOptions options;
  options.link_loads_bps = loads;
  WhatIfEngine engine = make_engine(std::move(options));
  engine.baseline_w();

  const std::vector<int> batch = {0};
  const WhatIfAnswer answer = engine.sleep_links(batch);
  EXPECT_TRUE(answer.accepted_links.empty());
  ASSERT_EQ(answer.rejected_links.size(), 1u);
  EXPECT_EQ(answer.rejected_links[0], 0);
  // Nothing committed: loads untouched, no router re-evaluated.
  EXPECT_DOUBLE_EQ(engine.link_loads_bps()[0], loads[0]);
  EXPECT_EQ(answer.routers_recomputed, 0u);
  EXPECT_TRUE(engine.sleep_result().sleeping_links.empty());
}

TEST(WhatIfEngine, RoutingAwareSleepCommitsFeasibleReroutes) {
  // A nearly idle candidate on a 45 %-loaded fleet reroutes without breaking
  // the ceiling on either endpoint's detour.
  const NetworkTopology topology = build_switch_like_network();
  std::vector<double> loads = loads_at_fraction(topology, 0.45);
  loads[0] = 1.0;  // 1 bps: any detour absorbs it without moving utilization
  const double total_before =
      std::accumulate(loads.begin(), loads.end(), 0.0);
  WhatIfOptions options;
  options.link_loads_bps = loads;
  WhatIfEngine engine = make_engine(std::move(options));
  engine.baseline_w();

  const std::vector<int> batch = {0};
  const WhatIfAnswer answer = engine.sleep_links(batch);
  ASSERT_EQ(answer.accepted_links.size(), 1u);
  EXPECT_TRUE(answer.rejected_links.empty());
  // The slept link's traffic moved onto its detour: zero on the link, total
  // carried bits conserved or grown (longer paths), never lost.
  EXPECT_DOUBLE_EQ(engine.link_loads_bps()[0], 0.0);
  const double total_after =
      std::accumulate(engine.link_loads_bps().begin(),
                      engine.link_loads_bps().end(), 0.0);
  EXPECT_GE(total_after + 1e-9, total_before - loads[0]);
  // Only the two endpoint routers were re-evaluated.
  EXPECT_LE(answer.routers_recomputed, 2u);
  EXPECT_GE(answer.cache_hits, engine.sim().router_count() - 2);
  // The committed state is visible to Scenario composition.
  const HypnosResult committed = engine.sleep_result();
  ASSERT_EQ(committed.sleeping_links.size(), 1u);
  EXPECT_EQ(committed.sleeping_links[0], 0);
  EXPECT_EQ(committed.final_loads_bps, engine.link_loads_bps());
}

TEST(WhatIfEngine, ProbeCommitsNothingAndSeedsTheFeasibilityMemo) {
  WhatIfEngine engine = make_engine();
  const double baseline = engine.baseline_w();
  const std::vector<int> batch = {5, 6, 7};

  const WhatIfAnswer probe = engine.probe_sleep_links(batch);
  EXPECT_EQ(probe.network_power_w, baseline);  // bitwise: nothing changed
  EXPECT_EQ(probe.routers_recomputed, 0u);
  EXPECT_TRUE(engine.sleep_result().sleeping_links.empty());
  const std::uint64_t checks_after_probe = engine.stats().feasibility_checks;
  EXPECT_EQ(engine.stats().feasibility_memo_hits, 0u);

  // The matching commit replays the identical accepted prefix, so every
  // feasibility check is a memo hit.
  const WhatIfAnswer commit = engine.sleep_links(batch);
  EXPECT_EQ(commit.accepted_links, probe.accepted_links);
  EXPECT_EQ(commit.rejected_links, probe.rejected_links);
  EXPECT_EQ(engine.stats().feasibility_memo_hits,
            engine.stats().feasibility_checks - checks_after_probe);
}

TEST(WhatIfEngine, ToggledPsuModeReusesTheFingerprintMemo) {
  WhatIfEngine engine = make_engine();
  engine.baseline_w();
  const std::size_t routers = engine.sim().router_count();

  const WhatIfAnswer standby = engine.set_psu_mode(PsuMode::kHotStandby);
  EXPECT_GT(standby.routers_recomputed, 0u);
  EXPECT_GT(standby.saved_vs_baseline_w, 0.0);

  // Toggling back restores a fingerprint every router has already been
  // evaluated under: zero power-model calls, bitwise-identical power.
  const WhatIfAnswer back = engine.set_psu_mode(PsuMode::kActiveActive);
  EXPECT_EQ(back.routers_recomputed, 0u);
  EXPECT_EQ(back.cache_hits, routers);
  EXPECT_EQ(back.network_power_w, engine.answers()[0].network_power_w);

  const WhatIfAnswer again = engine.set_psu_mode(PsuMode::kHotStandby);
  EXPECT_EQ(again.routers_recomputed, 0u);
  EXPECT_EQ(again.network_power_w, standby.network_power_w);
}

TEST(WhatIfEngine, MatchesScenarioStepForStepBitwise) {
  // The delta engine and the one-shot Scenario must land on bitwise-equal
  // power for the same mutations — Scenario is the trusted full recompute.
  WhatIfEngine engine = make_engine();
  engine.baseline_w();
  const std::vector<int> batch = {5, 6, 7, 8};
  engine.sleep_links(batch);
  engine.set_psu_mode(PsuMode::kHotStandby);
  engine.unplug_spares();
  engine.decommission_pop(3);

  Scenario scenario(fresh_sim(), eval_instant());
  std::vector<double> expected;
  expected.push_back(scenario.baseline_w());
  expected.push_back(scenario.apply_link_sleeping(engine.sleep_result()));
  expected.push_back(scenario.apply_hot_standby());
  expected.push_back(scenario.remove_spare_transceivers());
  expected.push_back(scenario.decommission_pop(3));

  ASSERT_EQ(engine.answers().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(engine.answers()[i].network_power_w, expected[i])
        << engine.answers()[i].name;
  }
  // The stream did strictly less power-model work than five full sweeps.
  EXPECT_LT(engine.stats().routers_recomputed,
            engine.sim().router_count() * engine.stats().queries);
  EXPECT_GT(engine.stats().cache_hits, 0u);
}

TEST(WhatIfEngine, AnswersAreBitIdenticalAcrossWorkerCounts) {
  std::vector<std::vector<WhatIfAnswer>> runs;
  for (const std::size_t workers : {1u, 4u, 16u}) {
    WhatIfOptions options;
    options.workers = workers;
    WhatIfEngine engine = make_engine(std::move(options));
    engine.baseline_w();
    const std::vector<int> batch = {5, 6, 7, 8};
    engine.probe_sleep_links(batch);
    engine.sleep_links(batch);
    engine.set_psu_mode(PsuMode::kHotStandby);
    engine.unplug_spares();
    engine.decommission_pop(2);
    runs.push_back(engine.answers());
  }
  for (std::size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[run][i].network_power_w, runs[0][i].network_power_w)
          << runs[0][i].name;
      EXPECT_EQ(runs[run][i].routers_recomputed, runs[0][i].routers_recomputed);
      EXPECT_EQ(runs[run][i].cache_hits, runs[0][i].cache_hits);
      EXPECT_EQ(runs[run][i].accepted_links, runs[0][i].accepted_links);
    }
  }
}

TEST(WhatIfEngine, CountersLandInTheRegistry) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "obs compiled out";
  }
  obs::Registry registry;
  WhatIfOptions options;
  options.registry = &registry;
  WhatIfEngine engine = make_engine(std::move(options));
  engine.baseline_w();
  const std::vector<int> batch = {5, 6};
  engine.probe_sleep_links(batch);
  engine.sleep_links(batch);

  EXPECT_EQ(registry.counter("whatif.queries"), engine.stats().queries);
  EXPECT_EQ(registry.counter("whatif.routers_recomputed"),
            engine.stats().routers_recomputed);
  EXPECT_EQ(registry.counter("whatif.cache_hits"), engine.stats().cache_hits);
  EXPECT_EQ(registry.counter("whatif.feasibility_checks"),
            engine.stats().feasibility_checks);
  EXPECT_EQ(registry.counter("whatif.feasibility_memo_hits"),
            engine.stats().feasibility_memo_hits);
  EXPECT_GT(engine.stats().feasibility_memo_hits, 0u);
}

}  // namespace
}  // namespace joules
