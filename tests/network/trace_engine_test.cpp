#include "network/trace_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "network/dataset.hpp"
#include "sleep/hypnos.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

// Golden trace values captured from the serial implementation before the
// trace engine existed (build_switch_like_network() defaults, sim seed 7,
// 2 days hourly from study_begin). The engine must reproduce these *bit for
// bit* for every worker count — hex-float literals make the comparison exact.
struct GoldenSample {
  std::size_t index;
  SimTime time;
  double power_w;
  double traffic_bps;
};
constexpr GoldenSample kGolden[] = {
    {0, 1725148800, 0x1.7bcb0f5f66236p+14, 0x1.4e0cf49f877f3p+38},
    {7, 1725174000, 0x1.7c0052927d3c8p+14, 0x1.a7b976cce2983p+38},
    {23, 1725231600, 0x1.7bec81eb6b36p+14, 0x1.634b770ab99c3p+38},
    {31, 1725260400, 0x1.7bef9e55b98fcp+14, 0x1.faf6d5f193091p+38},
    {47, 1725318000, 0x1.7be8f48612fd4p+14, 0x1.aed9e3f8fb038p+38},
};
constexpr double kGoldenCapacityBps = 0x1.6741f786p+44;

class TraceEngineTest : public ::testing::Test {
 protected:
  static const NetworkSimulation& sim() {
    static NetworkSimulation simulation(build_switch_like_network(), 7);
    return simulation;
  }
  static SimTime begin() { return sim().topology().options.study_begin; }
  static SimTime end() { return begin() + 2 * kSecondsPerDay; }

  static void expect_identical(const NetworkTraces& a, const NetworkTraces& b) {
    EXPECT_EQ(a.capacity_bps, b.capacity_bps);
    ASSERT_EQ(a.total_power_w.size(), b.total_power_w.size());
    ASSERT_EQ(a.total_traffic_bps.size(), b.total_traffic_bps.size());
    for (std::size_t i = 0; i < a.total_power_w.size(); ++i) {
      EXPECT_EQ(a.total_power_w[i].time, b.total_power_w[i].time) << i;
      EXPECT_EQ(a.total_power_w[i].value, b.total_power_w[i].value) << i;
      EXPECT_EQ(a.total_traffic_bps[i].value, b.total_traffic_bps[i].value) << i;
    }
  }
};

TEST_F(TraceEngineTest, ReproducesPreEngineGoldenValuesBitForBit) {
  for (const std::size_t workers : {1u, 2u, 8u}) {
    TraceEngine engine(sim(), TraceEngineOptions{.workers = workers});
    const NetworkTraces traces =
        engine.network_traces(begin(), end(), kSecondsPerHour);
    EXPECT_EQ(traces.capacity_bps, kGoldenCapacityBps);
    ASSERT_EQ(traces.total_power_w.size(), 48u);
    for (const GoldenSample& golden : kGolden) {
      EXPECT_EQ(traces.total_power_w[golden.index].time, golden.time);
      EXPECT_EQ(traces.total_power_w[golden.index].value, golden.power_w)
          << "workers=" << workers << " i=" << golden.index;
      EXPECT_EQ(traces.total_traffic_bps[golden.index].value, golden.traffic_bps)
          << "workers=" << workers << " i=" << golden.index;
    }
  }
}

TEST_F(TraceEngineTest, TracesBitIdenticalAcrossWorkerCountsAndToSerial) {
  const NetworkTraces serial =
      network_traces(sim(), begin(), end(), kSecondsPerHour);
  for (const std::size_t workers : {1u, 2u, 8u}) {
    TraceEngine engine(sim(), TraceEngineOptions{.workers = workers});
    expect_identical(engine.network_traces(begin(), end(), kSecondsPerHour),
                     serial);
  }
}

TEST_F(TraceEngineTest, TinyBlockSizeDoesNotChangeResults) {
  // Force many reduction blocks; blocking must affect locality only.
  TraceEngine tiny(sim(), TraceEngineOptions{.workers = 2, .max_block_bytes = 1});
  TraceEngine big(sim(), TraceEngineOptions{.workers = 2});
  expect_identical(tiny.network_traces(begin(), end(), kSecondsPerHour),
                   big.network_traces(begin(), end(), kSecondsPerHour));
}

TEST_F(TraceEngineTest, EmptyWindowYieldsCapacityOnly) {
  TraceEngine engine(sim(), TraceEngineOptions{.workers = 2});
  const NetworkTraces traces = engine.network_traces(begin(), begin(), 300);
  EXPECT_EQ(traces.capacity_bps, kGoldenCapacityBps);
  EXPECT_TRUE(traces.total_power_w.empty());
  EXPECT_TRUE(traces.total_traffic_bps.empty());
}

TEST_F(TraceEngineTest, NetworkPowerMatchesSerialRouterSum) {
  const SimTime t = begin() + 10 * kSecondsPerDay;
  double serial = 0.0;
  for (std::size_t r = 0; r < sim().router_count(); ++r) {
    serial += sim().wall_power_w(r, t);
  }
  for (const std::size_t workers : {1u, 8u}) {
    TraceEngine engine(sim(), TraceEngineOptions{.workers = workers});
    EXPECT_EQ(engine.network_power_w(t), serial) << "workers=" << workers;
  }
}

TEST_F(TraceEngineTest, SnmpMediansMatchTheSerialPerRouterFunction) {
  TraceEngine engine(sim(), TraceEngineOptions{.workers = 8});
  const auto medians = engine.snmp_medians(begin(), end(), kSecondsPerHour);
  ASSERT_EQ(medians.size(), sim().router_count());
  for (std::size_t r = 0; r < sim().router_count(); ++r) {
    const auto serial =
        snmp_median_power_w(sim(), r, begin(), end(), kSecondsPerHour);
    ASSERT_EQ(medians[r].has_value(), serial.has_value()) << "router " << r;
    if (serial.has_value()) {
      EXPECT_EQ(*medians[r], *serial) << "router " << r;
    }
  }
}

TEST_F(TraceEngineTest, PsuSnapshotsMatchTheSerialFunction) {
  const SimTime times[] = {begin(), begin() + 7 * kSecondsPerDay,
                           begin() + 100 * kSecondsPerDay};
  TraceEngine engine(sim(), TraceEngineOptions{.workers = 8});
  const auto snapshots = engine.psu_snapshots(times);
  ASSERT_EQ(snapshots.size(), 3u);
  for (std::size_t ti = 0; ti < 3; ++ti) {
    const std::vector<PsuObservation> serial = psu_snapshot(sim(), times[ti]);
    ASSERT_EQ(snapshots[ti].size(), serial.size()) << "t index " << ti;
    for (std::size_t k = 0; k < serial.size(); ++k) {
      EXPECT_EQ(snapshots[ti][k].router_name, serial[k].router_name);
      EXPECT_EQ(snapshots[ti][k].psu_index, serial[k].psu_index);
      EXPECT_EQ(snapshots[ti][k].capacity_w, serial[k].capacity_w);
      EXPECT_EQ(snapshots[ti][k].input_power_w, serial[k].input_power_w);
      EXPECT_EQ(snapshots[ti][k].output_power_w, serial[k].output_power_w);
    }
  }
}

TEST_F(TraceEngineTest, LinkLoadsMatchTheSerialFunction) {
  const std::vector<double> serial =
      average_link_loads_bps(sim(), begin(), end(), kSecondsPerHour);
  for (const std::size_t workers : {1u, 8u}) {
    TraceEngine engine(sim(), TraceEngineOptions{.workers = workers});
    const std::vector<double> parallel =
        engine.average_link_loads_bps(begin(), end(), kSecondsPerHour);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t l = 0; l < serial.size(); ++l) {
      EXPECT_EQ(parallel[l], serial[l]) << "link " << l;
    }
  }
}

TEST_F(TraceEngineTest, LinkLoadsThrowOnEmptyWindow) {
  TraceEngine engine(sim(), TraceEngineOptions{.workers = 2});
  EXPECT_THROW(engine.average_link_loads_bps(begin(), begin(), 300),
               std::invalid_argument);
}

TEST_F(TraceEngineTest, DeterministicWithActiveOverrides) {
  // Overrides exercise both the interval index and the sync-skip
  // invalidation; worker counts must still agree bit for bit.
  auto make_sim = [] {
    NetworkSimulation sim(build_switch_like_network(), 7);
    const SimTime b = sim.topology().options.study_begin;
    for (int iface = 0; iface < 3; ++iface) {
      StateOverride down;
      down.router = 2;
      down.iface = iface;
      down.from = b + 6 * kSecondsPerHour;
      down.to = b + 30 * kSecondsPerHour;
      down.state = InterfaceState::kPlugged;
      sim.add_override(down);
    }
    sim.remove_transceiver_at(5, 0, b + 12 * kSecondsPerHour);
    return sim;
  };
  const NetworkSimulation sim_a = make_sim();
  const NetworkSimulation sim_b = make_sim();
  TraceEngine serial(sim_a, TraceEngineOptions{.workers = 1});
  TraceEngine parallel(sim_b, TraceEngineOptions{.workers = 8});
  expect_identical(serial.network_traces(begin(), end(), kSecondsPerHour),
                   parallel.network_traces(begin(), end(), kSecondsPerHour));
}

TEST_F(TraceEngineTest, BorrowedPoolIsSharedAcrossEngines) {
  ThreadPool pool(4);
  TraceEngine first(sim(), pool);
  TraceEngine second(sim(), pool);
  EXPECT_EQ(first.worker_count(), 4u);
  const NetworkTraces a = first.network_traces(begin(), end(), kSecondsPerHour);
  const NetworkTraces b = second.network_traces(begin(), end(), kSecondsPerHour);
  expect_identical(a, b);
}

TEST_F(TraceEngineTest, HypnosScheduleMatchesSerialOverload) {
  TraceEngine engine(sim(), TraceEngineOptions{.workers = 8});
  const SleepSchedule serial = run_hypnos_schedule(
      sim(), begin(), begin() + kSecondsPerDay, 6 * kSecondsPerHour,
      kSecondsPerHour);
  const SleepSchedule parallel = run_hypnos_schedule(
      engine, sim(), begin(), begin() + kSecondsPerDay, 6 * kSecondsPerHour,
      kSecondsPerHour);
  ASSERT_EQ(parallel.windows.size(), serial.windows.size());
  for (std::size_t w = 0; w < serial.windows.size(); ++w) {
    EXPECT_EQ(parallel.windows[w].result.sleeping_links,
              serial.windows[w].result.sleeping_links);
    EXPECT_EQ(parallel.windows[w].result.final_loads_bps,
              serial.windows[w].result.final_loads_bps);
  }
}

}  // namespace
}  // namespace joules
