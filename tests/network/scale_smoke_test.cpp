// The scale-tier smoke: a pinned 5k-router federated sweep, streaming
// through bounded memory. Runs under `ctest -L scale` (the scale-smoke CI
// job) and stays fast enough for the default suite: the sweep window is
// short — the properties under test (bounded peak memory, bit-identity
// across worker counts and block sizes) do not depend on sweep length,
// which is exactly the point of the streaming store.
//
// The DISABLED_ acceptance test at the bottom is the 10-month × 10k-router
// sweep from EXPERIMENTS.md ("Scaling the simulation"); run it manually:
//   ./test_scale_smoke --gtest_also_run_disabled_tests \
//       --gtest_filter='*TenMonthTenKRouter*'
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "network/federated.hpp"
#include "network/simulation.hpp"
#include "network/trace_engine.hpp"
#include "obs/registry.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

// Pinned: the scale-smoke CI job gates trace.blocks_streamed /
// trace.peak_resident_samples against a committed baseline, so the federation
// (and therefore the counters) must be reproducible to the bit.
FederatedTopologyOptions scale_options() {
  FederatedTopologyOptions options;
  options.seed = 77;
  options.domains = 8;
  options.pops_per_domain = 10;
  options.routers_per_pop = 63;  // 8 * 10 * 63 = 5040 routers
  return options;
}

struct SweepResult {
  std::vector<double> power;
  std::vector<double> traffic;
  std::uint64_t blocks_streamed = 0;
  std::uint64_t peak_resident_samples = 0;
};

SweepResult run_sweep(const NetworkSimulation& sim, std::size_t workers,
                      std::size_t max_block_bytes, SimTime begin, SimTime end,
                      SimTime step) {
  obs::Registry registry(workers);
  TraceEngineOptions options;
  options.workers = workers;
  options.max_block_bytes = max_block_bytes;
  options.registry = &registry;
  TraceEngine engine(sim, options);
  SweepResult result;
  const NetworkTraces traces = engine.stream_traces(begin, end, step, {});
  result.power.reserve(traces.total_power_w.size());
  for (std::size_t i = 0; i < traces.total_power_w.size(); ++i) {
    result.power.push_back(traces.total_power_w[i].value);
    result.traffic.push_back(traces.total_traffic_bps[i].value);
  }
  if constexpr (obs::kEnabled) {
    result.blocks_streamed = registry.counter("trace.blocks_streamed");
    result.peak_resident_samples =
        registry.counter("trace.peak_resident_samples");
  }
  return result;
}

class ScaleSmoke : public ::testing::Test {
 protected:
  static const FederatedTopology& fed() {
    static const FederatedTopology topology =
        build_federated_network(scale_options());
    return topology;
  }
  static const NetworkSimulation& sim() {
    static const NetworkSimulation simulation(fed().network, 7);
    return simulation;
  }
};

TEST_F(ScaleSmoke, FiveKFederationHasThePinnedShape) {
  EXPECT_EQ(fed().router_count(), 5040u);
  EXPECT_EQ(fed().domains.size(), 8u);
  EXPECT_GT(fed().interdomain_links, 0u);

  // Connected across all eight domains (union-find over internal links).
  std::vector<int> parent(fed().router_count());
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      x = parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    }
    return x;
  };
  for (const InternalLink& link : fed().network.links) {
    parent[static_cast<std::size_t>(find(link.router_a))] = find(link.router_b);
  }
  const int root = find(0);
  for (int r = 0; r < static_cast<int>(fed().router_count()); ++r) {
    ASSERT_EQ(find(r), root) << "router " << r << " disconnected";
  }
}

TEST_F(ScaleSmoke, StreamingSweepIsMemoryBoundedAndBitIdentical) {
  const SimTime begin = scale_options().study_begin;
  const SimTime end = begin + 2 * kSecondsPerDay;
  const std::size_t routers = sim().router_count();
  const std::size_t interfaces = sim().topology().interface_count();
  const std::size_t total_steps = 48;  // 2 days hourly

  constexpr std::size_t kBlockBytes = 8u << 20;
  const std::size_t row_bytes = sizeof(double) * (routers + interfaces);
  const std::size_t block_rows =
      std::clamp<std::size_t>(kBlockBytes / row_bytes, 1, total_steps);
  const std::size_t expected_blocks =
      (total_steps + block_rows - 1) / block_rows;
  ASSERT_GT(expected_blocks, 1u)
      << "smoke must exercise more than one block to pin streaming";

  const SweepResult reference =
      run_sweep(sim(), 1, kBlockBytes, begin, end, kSecondsPerHour);
  ASSERT_EQ(reference.power.size(), total_steps);

  if constexpr (obs::kEnabled) {
    EXPECT_EQ(reference.blocks_streamed, expected_blocks);
    // Peak resident samples is the block formula — a function of
    // max_block_bytes, NOT of the sweep length or the dataset size.
    EXPECT_EQ(reference.peak_resident_samples,
              block_rows * (routers + interfaces + 2));
    EXPECT_LT(reference.peak_resident_samples,
              total_steps * (routers + interfaces));
  }

  for (const std::size_t workers : {4u, 16u}) {
    const SweepResult run =
        run_sweep(sim(), workers, kBlockBytes, begin, end, kSecondsPerHour);
    ASSERT_EQ(run.power.size(), reference.power.size());
    for (std::size_t i = 0; i < reference.power.size(); ++i) {
      ASSERT_EQ(run.power[i], reference.power[i])
          << "workers=" << workers << " i=" << i;
      ASSERT_EQ(run.traffic[i], reference.traffic[i])
          << "workers=" << workers << " i=" << i;
    }
    if constexpr (obs::kEnabled) {
      EXPECT_EQ(run.blocks_streamed, reference.blocks_streamed);
      EXPECT_EQ(run.peak_resident_samples, reference.peak_resident_samples);
    }
  }

  // A quarter-size block budget: more blocks, smaller peak, same bits.
  const SweepResult tight =
      run_sweep(sim(), 8, kBlockBytes / 4, begin, end, kSecondsPerHour);
  ASSERT_EQ(tight.power.size(), reference.power.size());
  for (std::size_t i = 0; i < reference.power.size(); ++i) {
    ASSERT_EQ(tight.power[i], reference.power[i]) << i;
  }
  if constexpr (obs::kEnabled) {
    EXPECT_GT(tight.blocks_streamed, reference.blocks_streamed);
    EXPECT_LT(tight.peak_resident_samples, reference.peak_resident_samples);
  }
}

// The acceptance sweep behind EXPERIMENTS.md "Scaling the simulation": ten
// months of hourly samples over a 10k-router federation, streamed through the
// default 8 MiB block budget, bit-identical across 1/4/16 workers. Disabled
// by default (minutes of runtime); the 5k smoke above pins the same
// properties on every PR.
TEST(ScaleAcceptance, DISABLED_TenMonthTenKRouterSweep) {
  FederatedTopologyOptions options;
  options.seed = 77;
  options.domains = 10;
  options.pops_per_domain = 10;
  options.routers_per_pop = 100;  // 10'000 routers
  const FederatedTopology fed = build_federated_network(options);
  ASSERT_EQ(fed.router_count(), 10'000u);
  const NetworkSimulation sim(fed.network, 7);

  const SimTime begin = options.study_begin;
  const SimTime end = begin + 10 * 30 * kSecondsPerDay;  // ~10 months
  const std::size_t total_steps =
      static_cast<std::size_t>((end - begin) / kSecondsPerHour);

  const SweepResult reference =
      run_sweep(sim, 16, 8u << 20, begin, end, kSecondsPerHour);
  ASSERT_EQ(reference.power.size(), total_steps);
  const std::size_t routers = sim.router_count();
  const std::size_t interfaces = sim.topology().interface_count();
  if constexpr (obs::kEnabled) {
    std::printf("routers=%zu interfaces=%zu steps=%zu blocks_streamed=%llu "
                "peak_resident_samples=%llu dataset_samples=%zu\n",
                routers, interfaces, total_steps,
                static_cast<unsigned long long>(reference.blocks_streamed),
                static_cast<unsigned long long>(reference.peak_resident_samples),
                total_steps * (routers + interfaces));
    // Bounded by the block budget, not the ~550M-sample dataset.
    EXPECT_LT(reference.peak_resident_samples,
              2u * ((8u << 20) / sizeof(double)));
  }

  for (const std::size_t workers : {1u, 4u}) {
    const SweepResult run =
        run_sweep(sim, workers, 8u << 20, begin, end, kSecondsPerHour);
    ASSERT_EQ(run.power.size(), reference.power.size());
    for (std::size_t i = 0; i < reference.power.size(); ++i) {
      ASSERT_EQ(run.power[i], reference.power[i])
          << "workers=" << workers << " i=" << i;
      ASSERT_EQ(run.traffic[i], reference.traffic[i])
          << "workers=" << workers << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace joules
