// Regression tests for the override interval index: the indexed
// `interface_state` / `interface_load` must agree with the pre-index
// linear-scan semantics (later-added overrides win overlaps; traffic is
// suppressed while *any* covering override suppresses it) and stay fast with
// a thousand overrides installed.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "network/simulation.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

// The original implementation, verbatim semantics: scan the full override
// list in insertion order.
class LinearScanReference {
 public:
  explicit LinearScanReference(const NetworkTopology& topology)
      : topology_(&topology) {}

  void add(const StateOverride& spec) { overrides_.push_back(spec); }

  InterfaceState state(std::size_t router, std::size_t iface, SimTime t) const {
    const DeployedInterface& deployed =
        topology_->routers[router].interfaces[iface];
    InterfaceState state =
        deployed.spare ? InterfaceState::kPlugged : InterfaceState::kUp;
    for (const StateOverride& spec : overrides_) {
      if (spec.router == static_cast<int>(router) &&
          spec.iface == static_cast<int>(iface) && t >= spec.from &&
          t < spec.to) {
        state = spec.state;
      }
    }
    return state;
  }

  bool suppressed(std::size_t router, std::size_t iface, SimTime t) const {
    for (const StateOverride& spec : overrides_) {
      if (spec.router == static_cast<int>(router) &&
          spec.iface == static_cast<int>(iface) && spec.suppress_traffic &&
          t >= spec.from && t < spec.to) {
        return true;
      }
    }
    return false;
  }

 private:
  const NetworkTopology* topology_;
  std::vector<StateOverride> overrides_;
};

// Deterministic 64-bit mixer so the test needs no <random> state.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

class OverrideIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    topology_ = build_switch_like_network();
    begin_ = topology_.options.study_begin;
  }

  NetworkTopology topology_;
  SimTime begin_ = 0;
};

TEST_F(OverrideIndexTest, RandomOverridesMatchLinearScanSemantics) {
  NetworkSimulation sim(topology_, 7);
  NetworkSimulation plain(topology_, 7);  // no overrides: base loads
  LinearScanReference reference(sim.topology());

  // ~200 overlapping overrides on a handful of interfaces, with clustered
  // boundaries so many intervals share edges.
  const std::size_t routers = 4;
  std::vector<SimTime> edges;
  for (std::uint64_t k = 0; k < 200; ++k) {
    const std::uint64_t h = mix(k + 1);
    StateOverride spec;
    spec.router = static_cast<int>(h % routers);
    spec.iface = static_cast<int>(
        (h >> 8) % sim.topology().routers[spec.router].interfaces.size());
    spec.from = begin_ + static_cast<SimTime>((h >> 16) % 240) * kSecondsPerHour;
    spec.to = spec.from + static_cast<SimTime>(1 + (h >> 32) % 72) * kSecondsPerHour;
    switch ((h >> 40) % 3) {
      case 0: spec.state = InterfaceState::kUp; break;
      case 1: spec.state = InterfaceState::kPlugged; break;
      default: spec.state = InterfaceState::kEmpty; break;
    }
    spec.suppress_traffic = ((h >> 48) % 2) == 0;
    sim.add_override(spec);
    reference.add(spec);
    edges.push_back(spec.from);
    edges.push_back(spec.to);
  }

  // Probe every override boundary (and its neighbors) plus an hourly grid.
  std::vector<SimTime> probes;
  for (const SimTime edge : edges) {
    probes.push_back(edge - 1);
    probes.push_back(edge);
    probes.push_back(edge + 1);
  }
  for (int h = 0; h < 320; h += 7) probes.push_back(begin_ + h * kSecondsPerHour);

  for (std::size_t r = 0; r < routers; ++r) {
    const std::size_t ifaces = sim.topology().routers[r].interfaces.size();
    for (std::size_t i = 0; i < ifaces; ++i) {
      for (const SimTime t : probes) {
        ASSERT_EQ(sim.interface_state(r, i, t), reference.state(r, i, t))
            << "router " << r << " iface " << i << " t " << t;
        const InterfaceLoad got = sim.interface_load(r, i, t);
        InterfaceLoad want;
        if (reference.state(r, i, t) == InterfaceState::kUp &&
            !reference.suppressed(r, i, t)) {
          want = plain.interface_load(r, i, t);
        }
        ASSERT_EQ(got.rate_bps, want.rate_bps)
            << "router " << r << " iface " << i << " t " << t;
        ASSERT_EQ(got.rate_pps, want.rate_pps)
            << "router " << r << " iface " << i << " t " << t;
      }
    }
  }
}

TEST_F(OverrideIndexTest, LaterOverridesWinOverlapTies) {
  NetworkSimulation sim(topology_, 7);
  const SimTime from = begin_;
  const SimTime to = begin_ + kSecondsPerDay;

  StateOverride first;
  first.router = 0;
  first.iface = 0;
  first.from = from;
  first.to = to;
  first.state = InterfaceState::kPlugged;
  sim.add_override(first);
  EXPECT_EQ(sim.interface_state(0, 0, from + 1), InterfaceState::kPlugged);

  StateOverride second = first;  // identical window, different state
  second.state = InterfaceState::kEmpty;
  sim.add_override(second);
  EXPECT_EQ(sim.interface_state(0, 0, from + 1), InterfaceState::kEmpty);

  StateOverride third = first;  // covers a sub-window; wins inside it only
  third.from = from + kSecondsPerHour;
  third.to = from + 2 * kSecondsPerHour;
  third.state = InterfaceState::kUp;
  sim.add_override(third);
  EXPECT_EQ(sim.interface_state(0, 0, from + 1), InterfaceState::kEmpty);
  EXPECT_EQ(sim.interface_state(0, 0, from + kSecondsPerHour),
            InterfaceState::kUp);
  EXPECT_EQ(sim.interface_state(0, 0, from + 2 * kSecondsPerHour),
            InterfaceState::kEmpty);
}

TEST_F(OverrideIndexTest, WindowsAreHalfOpen) {
  NetworkSimulation sim(topology_, 7);
  StateOverride spec;
  spec.router = 1;
  spec.iface = 0;
  spec.from = begin_ + kSecondsPerHour;
  spec.to = begin_ + 2 * kSecondsPerHour;
  spec.state = InterfaceState::kEmpty;
  sim.add_override(spec);

  EXPECT_EQ(sim.interface_state(1, 0, spec.from - 1), InterfaceState::kUp);
  EXPECT_EQ(sim.interface_state(1, 0, spec.from), InterfaceState::kEmpty);
  EXPECT_EQ(sim.interface_state(1, 0, spec.to - 1), InterfaceState::kEmpty);
  EXPECT_EQ(sim.interface_state(1, 0, spec.to), InterfaceState::kUp);
}

TEST_F(OverrideIndexTest, SuppressionZeroesTrafficWithoutChangingState) {
  NetworkSimulation sim(topology_, 7);
  const SimTime t = begin_ + 12 * kSecondsPerHour;
  ASSERT_GT(sim.interface_load(0, 0, t).rate_bps, 0.0);

  StateOverride keep_up;  // kUp + suppress: counters stop, port stays up
  keep_up.router = 0;
  keep_up.iface = 0;
  keep_up.from = begin_;
  keep_up.to = begin_ + kSecondsPerDay;
  keep_up.state = InterfaceState::kUp;
  keep_up.suppress_traffic = true;
  sim.add_override(keep_up);
  EXPECT_EQ(sim.interface_state(0, 0, t), InterfaceState::kUp);
  EXPECT_EQ(sim.interface_load(0, 0, t).rate_bps, 0.0);

  // A later non-suppressing override does NOT lift the earlier suppression
  // (any covering suppressor wins — matching the original scan).
  StateOverride also_up = keep_up;
  also_up.suppress_traffic = false;
  sim.add_override(also_up);
  EXPECT_EQ(sim.interface_load(0, 0, t).rate_bps, 0.0);
}

TEST_F(OverrideIndexTest, ThousandOverridesStayFastAndCorrect) {
  NetworkSimulation sim(topology_, 7);
  LinearScanReference reference(sim.topology());

  // 1000 overrides: 600 stacked on (0, 0), the rest spread around, so both
  // the deep-stack and the many-interfaces shapes are exercised.
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const std::uint64_t h = mix(0x9e3779b97f4a7c15ULL + k);
    StateOverride spec;
    if (k < 600) {
      spec.router = 0;
      spec.iface = 0;
    } else {
      spec.router = static_cast<int>(h % sim.router_count());
      spec.iface = static_cast<int>(
          (h >> 8) % sim.topology().routers[spec.router].interfaces.size());
    }
    spec.from = begin_ + static_cast<SimTime>((h >> 16) % 1000) * kSecondsPerHour;
    spec.to = spec.from + static_cast<SimTime>(1 + (h >> 32) % 48) * kSecondsPerHour;
    spec.state =
        (h >> 40) % 2 == 0 ? InterfaceState::kPlugged : InterfaceState::kUp;
    spec.suppress_traffic = ((h >> 48) % 2) == 0;
    sim.add_override(spec);
    reference.add(spec);
  }
  ASSERT_EQ(sim.override_count(), 1000u);

  // Spot-check the deep stack against the linear-scan reference.
  for (int h = 0; h < 1050; h += 13) {
    const SimTime t = begin_ + h * kSecondsPerHour;
    ASSERT_EQ(sim.interface_state(0, 0, t), reference.state(0, 0, t)) << t;
  }

  // 200k indexed lookups. The old linear scan did 1000 interval checks per
  // lookup; the index does O(log). The bound is deliberately loose — it only
  // fails if lookups degrade back to scanning everything.
  const auto t0 = std::chrono::steady_clock::now();
  double checksum = 0.0;
  for (int pass = 0; pass < 200; ++pass) {
    for (int h = 0; h < 1000; ++h) {
      const SimTime t = begin_ + h * kSecondsPerHour;
      checksum += static_cast<double>(sim.interface_state(0, 0, t));
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  EXPECT_GT(checksum, 0.0);
  EXPECT_LT(elapsed.count(), 2.0) << "200k lookups took " << elapsed.count()
                                  << " s — index regressed to a linear scan?";
}

TEST_F(OverrideIndexTest, PowerQueriesSeeOverridesImmediately) {
  NetworkSimulation sim(topology_, 7);
  const SimTime t = begin_ + 12 * kSecondsPerHour;
  const double before = sim.wall_power_w(0, t);

  // Admin-down every interface of router 0; the sync cache must invalidate.
  const std::size_t ifaces = sim.topology().routers[0].interfaces.size();
  for (std::size_t i = 0; i < ifaces; ++i) {
    StateOverride down;
    down.router = 0;
    down.iface = static_cast<int>(i);
    down.from = begin_;
    down.to = begin_ + kSecondsPerDay;
    down.state = InterfaceState::kPlugged;
    sim.add_override(down);
  }
  const double during = sim.wall_power_w(0, t);
  EXPECT_LT(during, before);
  // Outside the override window the router is back to normal.
  EXPECT_EQ(sim.wall_power_w(0, t + kSecondsPerDay),
            sim.wall_power_w(0, t + kSecondsPerDay));
  EXPECT_GT(sim.wall_power_w(0, t + kSecondsPerDay), during);
}

TEST_F(OverrideIndexTest, RejectsOutOfRangeInterface) {
  NetworkSimulation sim(topology_, 7);
  StateOverride bad;
  bad.router = 0;
  bad.iface = 10000;
  bad.from = begin_;
  bad.to = begin_ + kSecondsPerHour;
  EXPECT_THROW(sim.add_override(bad), std::out_of_range);
}

}  // namespace
}  // namespace joules
