#include "network/whatif.hpp"

#include <gtest/gtest.h>

#include "sleep/hypnos.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

class ScenarioApiTest : public ::testing::Test {
 protected:
  static SimTime eval_at() {
    return TopologyOptions{}.study_begin + 10 * kSecondsPerDay;
  }
  static Scenario make_scenario() {
    return Scenario(NetworkSimulation(build_switch_like_network(), 7), eval_at());
  }
};

TEST_F(ScenarioApiTest, BaselineMustComeFirst) {
  Scenario scenario = make_scenario();
  EXPECT_THROW(scenario.apply_hot_standby(), std::logic_error);
  EXPECT_GT(scenario.baseline_w(), 18000.0);
  EXPECT_THROW(scenario.baseline_w(), std::logic_error);  // only once
}

TEST_F(ScenarioApiTest, EveryMeasureSavesPower) {
  NetworkSimulation planner(build_switch_like_network(), 7);
  const SimTime begin = planner.topology().options.study_begin;
  const auto loads = average_link_loads_bps(planner, begin,
                                            begin + 2 * kSecondsPerDay,
                                            6 * kSecondsPerHour);
  const HypnosResult hypnos = run_hypnos(planner.topology(), loads);

  Scenario scenario = make_scenario();
  const double baseline = scenario.baseline_w();
  const double after_sleep = scenario.apply_link_sleeping(hypnos);
  const double after_spares = scenario.remove_spare_transceivers();
  const double after_standby = scenario.apply_hot_standby();

  EXPECT_LT(after_sleep, baseline);
  EXPECT_LT(after_spares, after_sleep);
  EXPECT_LT(after_standby, after_spares);

  const auto& steps = scenario.steps();
  ASSERT_EQ(steps.size(), 4u);
  EXPECT_DOUBLE_EQ(steps.back().saved_vs_baseline_w, baseline - after_standby);
  for (std::size_t i = 1; i < steps.size(); ++i) {
    EXPECT_GT(steps[i].saved_w, 0.0) << steps[i].name;
  }
}

TEST_F(ScenarioApiTest, StackedSavingsAreSubAdditiveForPsuMeasure) {
  // Hot-standby alone vs hot-standby after sleeping+spares: the later
  // application operates on a smaller DC draw, so it saves no more.
  NetworkSimulation planner(build_switch_like_network(), 7);
  const SimTime begin = planner.topology().options.study_begin;
  const auto loads = average_link_loads_bps(planner, begin,
                                            begin + 2 * kSecondsPerDay,
                                            6 * kSecondsPerHour);
  const HypnosResult hypnos = run_hypnos(planner.topology(), loads);

  Scenario alone = make_scenario();
  alone.baseline_w();
  alone.apply_hot_standby();
  const double standby_alone = alone.steps().back().saved_w;

  Scenario stacked = make_scenario();
  stacked.baseline_w();
  stacked.apply_link_sleeping(hypnos);
  stacked.remove_spare_transceivers();
  stacked.apply_hot_standby();
  const double standby_stacked = stacked.steps().back().saved_w;

  EXPECT_LE(standby_stacked, standby_alone + 10.0);
}

TEST_F(ScenarioApiTest, StepNamesDescribeWhatHappened) {
  Scenario scenario = make_scenario();
  scenario.baseline_w();
  scenario.remove_spare_transceivers();
  ASSERT_EQ(scenario.steps().size(), 2u);
  EXPECT_NE(scenario.steps()[1].name.find("spare"), std::string::npos);
}

}  // namespace
}  // namespace joules
