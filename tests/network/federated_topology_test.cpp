#include "network/federated.hpp"

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "device/catalog.hpp"
#include "network/simulation.hpp"
#include "network/trace_engine.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

FederatedTopologyOptions small_options() {
  FederatedTopologyOptions options;
  options.seed = 11;
  options.domains = 3;
  options.pops_per_domain = 4;
  options.routers_per_pop = 8;
  return options;
}

// Union-find over routers, joined by internal links.
struct UnionFind {
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      x = parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
    }
    return x;
  }
  void join(int a, int b) { parent[static_cast<std::size_t>(find(a))] = find(b); }
  std::vector<int> parent;
};

TEST(FederatedTopology, DeterministicForAGivenSeed) {
  const FederatedTopology a = build_federated_network(small_options());
  const FederatedTopology b = build_federated_network(small_options());
  ASSERT_EQ(a.network.routers.size(), b.network.routers.size());
  ASSERT_EQ(a.network.links.size(), b.network.links.size());
  EXPECT_EQ(a.interdomain_links, b.interdomain_links);
  EXPECT_EQ(a.domain_of_router, b.domain_of_router);
  for (std::size_t r = 0; r < a.network.routers.size(); ++r) {
    const DeployedRouter& ra = a.network.routers[r];
    const DeployedRouter& rb = b.network.routers[r];
    EXPECT_EQ(ra.name, rb.name);
    EXPECT_EQ(ra.model, rb.model);
    EXPECT_EQ(ra.commissioned_at, rb.commissioned_at);
    EXPECT_EQ(ra.decommissioned_at, rb.decommissioned_at);
    EXPECT_EQ(ra.psu_capacity_override_w, rb.psu_capacity_override_w);
    ASSERT_EQ(ra.interfaces.size(), rb.interfaces.size()) << ra.name;
    for (std::size_t i = 0; i < ra.interfaces.size(); ++i) {
      EXPECT_EQ(ra.interfaces[i].workload_seed, rb.interfaces[i].workload_seed);
      EXPECT_EQ(ra.interfaces[i].transceiver_part,
                rb.interfaces[i].transceiver_part);
      EXPECT_EQ(ra.interfaces[i].workload.mean_rate_bps,
                rb.interfaces[i].workload.mean_rate_bps);
    }
  }

  FederatedTopologyOptions reseeded = small_options();
  reseeded.seed = 12;
  const FederatedTopology c = build_federated_network(reseeded);
  bool differs = c.network.links.size() != a.network.links.size();
  for (std::size_t r = 0; !differs && r < a.network.routers.size(); ++r) {
    differs = a.network.routers[r].model != c.network.routers[r].model ||
              a.network.routers[r].interfaces.size() !=
                  c.network.routers[r].interfaces.size();
  }
  EXPECT_TRUE(differs) << "seed must matter";
}

TEST(FederatedTopology, ShapeMatchesTheOptions) {
  const FederatedTopologyOptions options = small_options();
  const FederatedTopology fed = build_federated_network(options);
  EXPECT_EQ(fed.router_count(),
            static_cast<std::size_t>(options.router_count()));
  ASSERT_EQ(fed.domains.size(), static_cast<std::size_t>(options.domains));
  EXPECT_EQ(fed.network.pops.size(),
            static_cast<std::size_t>(options.domains * options.pops_per_domain));
  EXPECT_EQ(fed.network.options.seed, options.seed);
  EXPECT_EQ(fed.network.options.study_begin, options.study_begin);
  EXPECT_EQ(fed.network.options.study_end, options.study_end);

  for (int d = 0; d < options.domains; ++d) {
    const FederatedDomain& domain = fed.domains[static_cast<std::size_t>(d)];
    EXPECT_EQ(domain.pop_count, options.pops_per_domain);
    EXPECT_EQ(domain.router_count,
              options.pops_per_domain * options.routers_per_pop);
    EXPECT_EQ(domain.first_router, d * domain.router_count);
    for (int r = domain.first_router;
         r < domain.first_router + domain.router_count; ++r) {
      EXPECT_EQ(fed.domain_of_router[static_cast<std::size_t>(r)], d);
      const int pop = fed.network.routers[static_cast<std::size_t>(r)].pop;
      EXPECT_GE(pop, domain.first_pop);
      EXPECT_LT(pop, domain.first_pop + domain.pop_count);
    }
  }
  // Router names carry the domain-pop lineage ("d02-pop03-r1").
  EXPECT_EQ(fed.network.routers[0].name.rfind("d01-pop01-r", 0), 0u);
}

TEST(FederatedTopology, FederationIsConnectedAndPeeredAcrossDomains) {
  const FederatedTopology fed = build_federated_network(small_options());
  UnionFind uf(fed.router_count());
  for (const InternalLink& link : fed.network.links) {
    uf.join(link.router_a, link.router_b);
  }
  const int root = uf.find(0);
  for (int r = 0; r < static_cast<int>(fed.router_count()); ++r) {
    EXPECT_EQ(uf.find(r), root) << "router " << r << " disconnected";
  }

  // Inter-domain peering exists (at least the domain ring) and the recorded
  // count matches the links whose endpoints live in different domains.
  EXPECT_GE(fed.interdomain_links, static_cast<std::size_t>(3));
  std::size_t recount = 0;
  for (const InternalLink& link : fed.network.links) {
    if (fed.domain_of_router[static_cast<std::size_t>(link.router_a)] !=
        fed.domain_of_router[static_cast<std::size_t>(link.router_b)]) {
      ++recount;
    }
  }
  EXPECT_EQ(recount, fed.interdomain_links);
}

TEST(FederatedTopology, ExternalShareLandsNearTheTarget) {
  const FederatedTopology fed = build_federated_network(small_options());
  const double external =
      static_cast<double>(fed.network.external_interface_count());
  std::size_t spares = 0;
  for (const DeployedRouter& router : fed.network.routers) {
    for (const DeployedInterface& iface : router.interfaces) {
      spares += iface.spare ? 1 : 0;
    }
  }
  const double non_spare =
      static_cast<double>(fed.network.interface_count() - spares);
  EXPECT_NEAR(external / non_spare, 0.45, 0.08);
  EXPECT_GT(spares, 0u);
}

TEST(FederatedTopology, PortBudgetsAreNeverExceeded) {
  const FederatedTopology fed = build_federated_network(small_options());
  for (const DeployedRouter& router : fed.network.routers) {
    const RouterSpec spec = find_router_spec(router.model).value();
    std::map<PortType, int> budget;
    for (const PortGroup& group : spec.ports) {
      budget[group.type] += static_cast<int>(group.count);
    }
    std::map<PortType, int> used;
    for (const DeployedInterface& iface : router.interfaces) {
      used[iface.profile.port] += 1;
    }
    for (const auto& [type, count] : used) {
      EXPECT_LE(count, budget[type])
          << router.name << " " << to_string(type);
    }
  }
}

TEST(FederatedTopology, HardwareZooDiffersAcrossDomains) {
  // Per-domain vendor bias: with 3 domains of 32 routers each, at least two
  // domains should end up with different model mixes.
  const FederatedTopology fed = build_federated_network(small_options());
  std::vector<std::map<std::string, int>> mixes(fed.domains.size());
  for (std::size_t r = 0; r < fed.router_count(); ++r) {
    mixes[static_cast<std::size_t>(fed.domain_of_router[r])]
         [fed.network.routers[r].model] += 1;
  }
  bool any_difference = false;
  for (std::size_t d = 1; d < mixes.size(); ++d) {
    if (mixes[d] != mixes[0]) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FederatedTopology, ValidateRejectsDegenerateOptions) {
  auto expect_invalid = [](auto mutate) {
    FederatedTopologyOptions options = small_options();
    mutate(options);
    EXPECT_THROW(build_federated_network(options), std::invalid_argument);
    EXPECT_THROW(FederatedTopologyGenerator{options}, std::invalid_argument);
  };
  expect_invalid([](auto& o) { o.domains = 0; });
  expect_invalid([](auto& o) { o.pops_per_domain = 0; });
  expect_invalid([](auto& o) { o.routers_per_pop = 0; });
  expect_invalid([](auto& o) { o.mean_core_degree = -1.0; });
  expect_invalid([](auto& o) {
    o.mean_core_degree = static_cast<double>(o.router_count()) + 1.0;
  });
  expect_invalid([](auto& o) { o.access_uplinks = 0; });
  expect_invalid([](auto& o) { o.access_uplinks = o.router_count() + 1; });
  expect_invalid([](auto& o) { o.external_iface_frac = -0.1; });
  expect_invalid([](auto& o) { o.external_iface_frac = 1.0; });
  expect_invalid([](auto& o) { o.interdomain_link_frac = 1.5; });
  expect_invalid([](auto& o) { o.spare_transceiver_frac = -0.5; });
  expect_invalid([](auto& o) { o.lifecycle_event_frac = 2.0; });
  expect_invalid([](auto& o) { o.study_end = o.study_begin; });
}

TEST(FederatedTopology, SwitchLikeOptionsValidationCatchesZeroPops) {
  // Before TopologyOptions::validate() existed, pop_count = 0 hit `% 0` in
  // router placement — undefined behaviour instead of a diagnosis.
  TopologyOptions options;
  options.pop_count = 0;
  EXPECT_THROW(build_switch_like_network(options), std::invalid_argument);

  options = {};
  options.access_asr920 = -1;
  EXPECT_THROW(build_switch_like_network(options), std::invalid_argument);

  options = {};
  options.access_asr920 = 0;
  options.access_n540x = 0;
  options.access_asr9001 = 0;
  options.agg_n540 = 0;
  options.agg_ncs24q6h = 0;
  options.agg_ncs48q6h = 0;
  options.core_ncs24h = 0;
  options.core_nexus9336 = 0;
  options.core_8201_32fh = 0;
  options.core_8201_24h8fh = 0;
  EXPECT_THROW(build_switch_like_network(options), std::invalid_argument);

  options = {};
  options.spare_transceiver_frac = 1.5;
  EXPECT_THROW(build_switch_like_network(options), std::invalid_argument);

  options = {};
  options.study_end = options.study_begin;
  EXPECT_THROW(build_switch_like_network(options), std::invalid_argument);
}

TEST(FederatedTopology, RunsUnchangedThroughSimulationAndEngine) {
  FederatedTopologyOptions options = small_options();
  options.domains = 2;
  options.pops_per_domain = 3;
  const FederatedTopology fed = build_federated_network(options);
  const NetworkSimulation sim(fed.network, 7);
  const SimTime begin = options.study_begin;
  const SimTime end = begin + kSecondsPerDay;

  TraceEngine serial(sim, TraceEngineOptions{.workers = 1});
  TraceEngine parallel(sim, TraceEngineOptions{.workers = 8});
  const NetworkTraces a = serial.network_traces(begin, end, kSecondsPerHour);
  const NetworkTraces b = parallel.network_traces(begin, end, kSecondsPerHour);
  ASSERT_EQ(a.total_power_w.size(), 24u);
  ASSERT_EQ(a.total_power_w.size(), b.total_power_w.size());
  for (std::size_t i = 0; i < a.total_power_w.size(); ++i) {
    EXPECT_EQ(a.total_power_w[i].value, b.total_power_w[i].value) << i;
    EXPECT_EQ(a.total_traffic_bps[i].value, b.total_traffic_bps[i].value) << i;
  }
  EXPECT_GT(a.total_power_w[0].value, 0.0);
  EXPECT_GT(a.capacity_bps, 0.0);
}

}  // namespace
}  // namespace joules
