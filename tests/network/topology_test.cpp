#include "network/topology.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "device/catalog.hpp"
#include "network/inventory.hpp"
#include "sleep/hypnos.hpp"

namespace joules {
namespace {

const NetworkTopology& topo() {
  static const NetworkTopology topology = build_switch_like_network();
  return topology;
}

TEST(Topology, Has107Routers) {
  EXPECT_EQ(topo().routers.size(), 107u);
  EXPECT_EQ(TopologyOptions{}.router_count(), 107);
}

TEST(Topology, Deterministic) {
  const NetworkTopology a = build_switch_like_network();
  const NetworkTopology b = build_switch_like_network();
  ASSERT_EQ(a.routers.size(), b.routers.size());
  for (std::size_t i = 0; i < a.routers.size(); ++i) {
    EXPECT_EQ(a.routers[i].name, b.routers[i].name);
    EXPECT_EQ(a.routers[i].interfaces.size(), b.routers[i].interfaces.size());
  }
  EXPECT_EQ(a.links.size(), b.links.size());
}

TEST(Topology, AllModelsResolveAndPortsWithinBudget) {
  for (const DeployedRouter& router : topo().routers) {
    const auto spec = find_router_spec(router.model);
    ASSERT_TRUE(spec.has_value()) << router.model;
    std::map<PortType, std::size_t> used;
    for (const DeployedInterface& iface : router.interfaces) {
      used[iface.profile.port] += 1;
      // Every deployed profile must resolve in the model's truth (possibly
      // via the rate-relaxed lookup).
      EXPECT_NE(spec->truth.find_profile_relaxed(iface.profile), nullptr)
          << router.model << " " << to_string(iface.profile);
    }
    std::map<PortType, std::size_t> budget;
    for (const PortGroup& group : spec->ports) budget[group.type] += group.count;
    for (const auto& [type, count] : used) {
      EXPECT_LE(count, budget[type]) << router.model << " " << to_string(type);
    }
  }
}

TEST(Topology, AnonymizedNamesEncodePops) {
  std::set<std::string> names;
  for (const DeployedRouter& router : topo().routers) {
    EXPECT_TRUE(names.insert(router.name).second) << router.name;
    EXPECT_EQ(router.name.rfind("pop", 0), 0u) << router.name;
    EXPECT_NE(router.name.find("-r"), std::string::npos) << router.name;
  }
}

TEST(Topology, LinksAreConsistent) {
  const NetworkTopology& topology = topo();
  for (std::size_t l = 0; l < topology.links.size(); ++l) {
    const InternalLink& link = topology.links[l];
    const DeployedInterface& a =
        topology.routers.at(static_cast<std::size_t>(link.router_a))
            .interfaces.at(static_cast<std::size_t>(link.iface_a));
    const DeployedInterface& b =
        topology.routers.at(static_cast<std::size_t>(link.router_b))
            .interfaces.at(static_cast<std::size_t>(link.iface_b));
    EXPECT_EQ(a.link_id, static_cast<int>(l));
    EXPECT_EQ(b.link_id, static_cast<int>(l));
    EXPECT_FALSE(a.external);
    EXPECT_FALSE(b.external);
    // Same rate on both ends, and correlated traffic (same seed).
    EXPECT_EQ(a.profile.rate, b.profile.rate);
    EXPECT_EQ(a.workload_seed, b.workload_seed);
  }
}

TEST(Topology, BackboneIsConnected) {
  // Union-find over internal links: every router must reach router 0 (the
  // Hypnos evaluation needs a connected graph).
  const NetworkTopology& topology = topo();
  std::vector<int> parent(topology.routers.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<int>(i);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      x = parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    }
    return x;
  };
  for (const InternalLink& link : topology.links) {
    parent[static_cast<std::size_t>(find(link.router_a))] = find(link.router_b);
  }
  const int root = find(0);
  for (std::size_t i = 0; i < topology.routers.size(); ++i) {
    EXPECT_EQ(find(static_cast<int>(i)), root) << topology.routers[i].name;
  }
}

TEST(Topology, ExternalShareNearPaper) {
  // 51 % of interfaces are external in the Switch dataset.
  const NetworkTopology& topology = topo();
  const double share = static_cast<double>(topology.external_interface_count()) /
                       static_cast<double>(topology.interface_count());
  EXPECT_NEAR(share, 0.51, 0.08);
}

TEST(Topology, SparesExistAndAreInternalOnly) {
  std::size_t spares = 0;
  for (const DeployedRouter& router : topo().routers) {
    for (const DeployedInterface& iface : router.interfaces) {
      if (iface.spare) {
        ++spares;
        EXPECT_EQ(iface.link_id, -1);
      }
    }
  }
  EXPECT_GT(spares, 10u);
}

TEST(Topology, LifecycleEventsPresent) {
  int commissioned_mid_study = 0;
  int decommissioned_mid_study = 0;
  const TopologyOptions& options = topo().options;
  for (const DeployedRouter& router : topo().routers) {
    if (router.commissioned_at > options.study_begin) ++commissioned_mid_study;
    if (router.decommissioned_at < options.study_end) ++decommissioned_mid_study;
  }
  EXPECT_EQ(commissioned_mid_study, 1);
  EXPECT_EQ(decommissioned_mid_study, 1);
}

TEST(Topology, LinkEndpointLineRatesAgreeAndSetTheCapacity) {
  // The generator keeps both sides of every internal link at the same line
  // rate, and link_capacity_bps must equal that rate from either side (it is
  // defined as the min of the two endpoint rates — the side that matters if
  // a hand-built topology ever disagrees).
  const NetworkTopology& topology = topo();
  ASSERT_FALSE(topology.links.empty());
  for (std::size_t l = 0; l < topology.links.size(); ++l) {
    const InternalLink& link = topology.links[l];
    const DeployedInterface& a =
        topology.routers[static_cast<std::size_t>(link.router_a)]
            .interfaces[static_cast<std::size_t>(link.iface_a)];
    const DeployedInterface& b =
        topology.routers[static_cast<std::size_t>(link.router_b)]
            .interfaces[static_cast<std::size_t>(link.iface_b)];
    EXPECT_EQ(a.profile.rate, b.profile.rate) << "link " << l;
    EXPECT_DOUBLE_EQ(link_capacity_bps(topology, l),
                     line_rate_bps(a.profile.rate))
        << "link " << l;
  }
}

TEST(Inventory, RouterTableHasAllRouters) {
  const CsvTable table = router_inventory(topo());
  EXPECT_EQ(table.row_count(), topo().routers.size());
  EXPECT_EQ(table.cell(0, "router"), topo().routers[0].name);
  EXPECT_GT(table.cell_double(0, "psu_capacity_w"), 0.0);
}

TEST(Inventory, ModuleTableRoundTrips) {
  const NetworkTopology& topology = topo();
  const CsvTable table = module_inventory(topology);
  EXPECT_EQ(table.row_count(), topology.interface_count());
  const std::string router_name = topology.routers[3].name;
  const auto interfaces = interfaces_of(table, router_name);
  ASSERT_EQ(interfaces.size(), topology.routers[3].interfaces.size());
  for (std::size_t i = 0; i < interfaces.size(); ++i) {
    EXPECT_EQ(interfaces[i].profile, topology.routers[3].interfaces[i].profile);
    EXPECT_EQ(interfaces[i].transceiver_part,
              topology.routers[3].interfaces[i].transceiver_part);
  }
}

}  // namespace
}  // namespace joules
