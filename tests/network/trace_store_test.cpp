#include "network/trace_store.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "network/dataset.hpp"
#include "network/trace_engine.hpp"
#include "obs/registry.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

// Fill the open block with an arithmetic ramp so the expected serial fold is
// computable by hand: power[j * routers + r] = base + j * routers + r.
void fill_ramp(TraceStore& store, std::size_t rows, std::size_t routers,
               std::size_t interfaces, double base) {
  const std::span<double> power = store.power_column();
  const std::span<double> traffic = store.traffic_column();
  for (std::size_t j = 0; j < rows; ++j) {
    for (std::size_t r = 0; r < routers; ++r) {
      power[j * routers + r] = base + static_cast<double>(j * routers + r);
    }
    for (std::size_t g = 0; g < interfaces; ++g) {
      traffic[j * interfaces + g] =
          2.0 * (base + static_cast<double>(j * interfaces + g));
    }
  }
}

TEST(TraceStore, BlockLengthFollowsTheByteBudget) {
  // row = (interfaces + routers) doubles; 4 routers + 12 interfaces = 128 B.
  TraceStore::Options options;
  options.max_block_bytes = 1024;
  TraceStore store(4, 12, options);
  store.begin_sweep(0, 60, 100);
  EXPECT_EQ(store.block_timesteps(), 8u);  // 1024 / 128

  // The block never exceeds the sweep, and never drops below one row.
  store.begin_sweep(0, 60, 5);
  EXPECT_EQ(store.block_timesteps(), 5u);
  TraceStore::Options tiny;
  tiny.max_block_bytes = 1;
  TraceStore one(4, 12, tiny);
  one.begin_sweep(0, 60, 100);
  EXPECT_EQ(one.block_timesteps(), 1u);
}

TEST(TraceStore, RejectsDegenerateInputs) {
  TraceStore::Options zero;
  zero.max_block_bytes = 0;
  EXPECT_THROW(TraceStore(4, 12, zero), std::invalid_argument);
  TraceStore store(4, 12, {});
  EXPECT_THROW(store.begin_sweep(0, 0, 10), std::invalid_argument);
  EXPECT_THROW(store.begin_sweep(0, -60, 10), std::invalid_argument);
}

TEST(TraceStore, OpeningOverAnUncommittedBlockThrows) {
  TraceStore store(2, 4, {});
  store.begin_sweep(0, 60, 10);
  ASSERT_GT(store.open_block(), 0u);
  EXPECT_THROW((void)store.open_block(), std::logic_error);
}

TEST(TraceStore, CommitFoldsSeriallyAndStreamsBlocksInTimeOrder) {
  constexpr std::size_t kRouters = 3;
  constexpr std::size_t kIfaces = 5;
  constexpr std::size_t kTotal = 7;
  TraceStore::Options options;
  options.max_block_bytes = 3 * sizeof(double) * (kRouters + kIfaces);
  TraceStore store(kRouters, kIfaces, options);
  store.begin_sweep(1000, 60, kTotal);
  ASSERT_EQ(store.block_timesteps(), 3u);

  std::vector<std::size_t> sink_first_timesteps;
  std::vector<std::size_t> sink_rows;
  std::vector<double> streamed_power_totals;
  const TraceStore::BlockSink sink = [&](const TraceBlockView& view) {
    EXPECT_EQ(view.routers, kRouters);
    EXPECT_EQ(view.interfaces, kIfaces);
    EXPECT_EQ(view.step, 60);
    EXPECT_EQ(view.begin,
              1000 + static_cast<SimTime>(view.first_timestep) * 60);
    EXPECT_EQ(view.time_of(1), view.begin + 60);
    sink_first_timesteps.push_back(view.first_timestep);
    sink_rows.push_back(view.timesteps);
    for (std::size_t j = 0; j < view.timesteps; ++j) {
      streamed_power_totals.push_back(view.total_power_w[j]);
    }
  };

  std::size_t rows = 0;
  std::size_t global_row = 0;
  while ((rows = store.open_block()) > 0) {
    fill_ramp(store, rows, kRouters, kIfaces,
              static_cast<double>(global_row));
    const TraceBlockView& view = store.commit_block(sink);
    EXPECT_EQ(view.timesteps, rows);
    global_row += rows;
  }
  store.end_sweep();

  EXPECT_EQ(sink_first_timesteps, (std::vector<std::size_t>{0, 3, 6}));
  EXPECT_EQ(sink_rows, (std::vector<std::size_t>{3, 3, 1}));
  EXPECT_EQ(store.blocks_streamed(), 3u);

  // Serial ascending fold of the ramp: row j's power total is
  // sum_r (base + j * R + r) over r in [0, R).
  ASSERT_EQ(streamed_power_totals.size(), kTotal);
  std::size_t row = 0;
  for (std::size_t b = 0; b < sink_rows.size(); ++b) {
    const double base = static_cast<double>(sink_first_timesteps[b]);
    for (std::size_t j = 0; j < sink_rows[b]; ++j, ++row) {
      double expected = 0.0;
      for (std::size_t r = 0; r < kRouters; ++r) {
        expected += base + static_cast<double>(j * kRouters + r);
      }
      EXPECT_EQ(streamed_power_totals[row], expected) << "row " << row;
    }
  }
}

TEST(TraceStore, PeakResidentSamplesIsBoundedByBlockNotSweep) {
  constexpr std::size_t kRouters = 4;
  constexpr std::size_t kIfaces = 12;
  TraceStore::Options options;
  options.max_block_bytes = 4 * sizeof(double) * (kRouters + kIfaces);
  auto run_sweep = [&](std::size_t total) {
    TraceStore store(kRouters, kIfaces, options);
    store.begin_sweep(0, 60, total);
    std::size_t rows = 0;
    while ((rows = store.open_block()) > 0) {
      (void)store.commit_block();
    }
    store.end_sweep();
    return store.peak_resident_samples();
  };
  const std::size_t short_peak = run_sweep(16);
  const std::size_t long_peak = run_sweep(16'000);
  EXPECT_EQ(short_peak, long_peak);
  // Exactly the block buffers: (routers + interfaces + 2 totals) per row.
  EXPECT_EQ(long_peak, 4u * (kRouters + kIfaces + 2));
}

TEST(TraceStore, EndSweepExportsTheGateCounters) {
  obs::Registry registry(1);
  TraceStore::Options options;
  options.max_block_bytes = 2 * sizeof(double) * (2 + 4);
  options.registry = &registry;
  TraceStore store(2, 4, options);
  store.begin_sweep(0, 60, 5);
  std::size_t rows = 0;
  while ((rows = store.open_block()) > 0) (void)store.commit_block();
  store.end_sweep();
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(registry.counter("trace.blocks_streamed"), 3u);  // 2 + 2 + 1
    EXPECT_EQ(registry.counter("trace.peak_resident_samples"),
              store.peak_resident_samples());
  }
}

// --- Engine-level streaming contract -------------------------------------

class StreamingEngineTest : public ::testing::Test {
 protected:
  static const NetworkSimulation& sim() {
    static NetworkSimulation simulation(build_switch_like_network(), 7);
    return simulation;
  }
  static SimTime begin() { return sim().topology().options.study_begin; }
  static SimTime end() { return begin() + 2 * kSecondsPerDay; }
};

TEST_F(StreamingEngineTest, StreamTracesMatchesNetworkTracesBitForBit) {
  TraceEngine engine(sim(), TraceEngineOptions{.workers = 4});
  const NetworkTraces plain = engine.network_traces(begin(), end(), kSecondsPerHour);
  std::size_t sink_blocks = 0;
  const NetworkTraces streamed = engine.stream_traces(
      begin(), end(), kSecondsPerHour,
      [&](const TraceBlockView&) { ++sink_blocks; });
  EXPECT_GT(sink_blocks, 0u);
  EXPECT_EQ(streamed.capacity_bps, plain.capacity_bps);
  ASSERT_EQ(streamed.total_power_w.size(), plain.total_power_w.size());
  for (std::size_t i = 0; i < plain.total_power_w.size(); ++i) {
    EXPECT_EQ(streamed.total_power_w[i].time, plain.total_power_w[i].time);
    EXPECT_EQ(streamed.total_power_w[i].value, plain.total_power_w[i].value);
    EXPECT_EQ(streamed.total_traffic_bps[i].value,
              plain.total_traffic_bps[i].value);
  }
}

TEST_F(StreamingEngineTest, SinkBlocksReassembleTheFullSeries) {
  // A tiny block budget forces many blocks; concatenating the sink's
  // per-block totals must reproduce the aggregate series exactly, and each
  // view's per-router column must sum (ascending) to the row total.
  TraceEngineOptions options{.workers = 2, .max_block_bytes = 1};
  TraceEngine engine(sim(), options);
  std::vector<SimTime> times;
  std::vector<double> power;
  const NetworkTraces streamed = engine.stream_traces(
      begin(), end(), kSecondsPerHour, [&](const TraceBlockView& view) {
        for (std::size_t j = 0; j < view.timesteps; ++j) {
          times.push_back(view.time_of(j));
          power.push_back(view.total_power_w[j]);
          double fold = 0.0;
          for (std::size_t r = 0; r < view.routers; ++r) {
            fold += view.router_power_w[j * view.routers + r];
          }
          EXPECT_EQ(fold, view.total_power_w[j]);
        }
      });
  ASSERT_EQ(times.size(), streamed.total_power_w.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_EQ(times[i], streamed.total_power_w[i].time);
    EXPECT_EQ(power[i], streamed.total_power_w[i].value);
  }
}

TEST_F(StreamingEngineTest, StreamingCountersReachTheRegistry) {
  obs::Registry registry(4);
  TraceEngineOptions options{.workers = 4};
  options.max_block_bytes = 1;  // one timestep per block
  options.registry = &registry;
  TraceEngine engine(sim(), options);
  (void)engine.stream_traces(begin(), end(), kSecondsPerHour, {});
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(registry.counter("trace.blocks_streamed"), 48u);
    const std::uint64_t peak = registry.counter("trace.peak_resident_samples");
    EXPECT_GT(peak, 0u);
    // One-row blocks: routers + interfaces + 2 totals resident at peak.
    EXPECT_LT(peak, 2u * (sim().router_count() +
                          sim().topology().interface_count() + 2));
  }
}

}  // namespace
}  // namespace joules
