#include "network/simulation.hpp"

#include <gtest/gtest.h>

#include "network/dataset.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

class NetworkSimTest : public ::testing::Test {
 protected:
  static NetworkSimulation& sim() {
    static NetworkSimulation simulation(build_switch_like_network(), 5);
    return simulation;
  }
  static SimTime study_begin() { return sim().topology().options.study_begin; }
};

TEST_F(NetworkSimTest, AggregatePowerMatchesSwitchScale) {
  // Fig. 1: total power around 21.5-22 kW for 107 routers.
  const SimTime t = study_begin() + 10 * kSecondsPerDay;
  double total = 0.0;
  for (std::size_t r = 0; r < sim().router_count(); ++r) {
    total += sim().wall_power_w(r, t);
  }
  EXPECT_GT(total, 18000.0);
  EXPECT_LT(total, 26000.0);
}

TEST_F(NetworkSimTest, UtilizationMatchesSwitchScale) {
  // Fig. 1: total traffic 1-2.7 % of capacity.
  const NetworkTraces traces = network_traces(
      sim(), study_begin(), study_begin() + 2 * kSecondsPerDay, 6 * kSecondsPerHour);
  ASSERT_FALSE(traces.total_traffic_bps.empty());
  for (const Sample& s : traces.total_traffic_bps) {
    const double utilization = s.value / traces.capacity_bps;
    EXPECT_GT(utilization, 0.005) << format_date_time(s.time);
    EXPECT_LT(utilization, 0.05) << format_date_time(s.time);
  }
}

TEST_F(NetworkSimTest, TransceiversAreAboutTenPercentOfNetworkPower) {
  // §7: "all the transceivers in the Switch network collectively draw
  // ~2.2 kW; that is ~10 % of the total network power".
  const TransceiverPowerReport report =
      transceiver_power_report(sim(), study_begin() + 7 * kSecondsPerDay);
  EXPECT_NEAR(report.share_of_network(), 0.10, 0.05);
  EXPECT_GT(report.total_w, 1000.0);
  // §8: external interfaces hold about half the transceiver power.
  EXPECT_NEAR(report.external_share_of_transceivers(), 0.52, 0.12);
}

TEST_F(NetworkSimTest, DecommissioningDropsNetworkPower) {
  // Find the mid-study decommissioned router and compare network power
  // just before/after.
  const auto& routers = sim().topology().routers;
  SimTime event = 0;
  for (const DeployedRouter& router : routers) {
    if (router.decommissioned_at < sim().topology().options.study_end) {
      event = router.decommissioned_at;
    }
  }
  ASSERT_GT(event, 0);
  double before = 0.0;
  double after = 0.0;
  for (std::size_t r = 0; r < sim().router_count(); ++r) {
    before += sim().wall_power_w(r, event - kSecondsPerHour);
    after += sim().wall_power_w(r, event + kSecondsPerHour);
  }
  EXPECT_LT(after, before - 50.0);  // a router-sized step
}

TEST_F(NetworkSimTest, InactiveRouterReportsNothing) {
  const auto& routers = sim().topology().routers;
  std::size_t late = 0;
  for (std::size_t r = 0; r < routers.size(); ++r) {
    if (routers[r].commissioned_at > study_begin()) late = r;
  }
  const SimTime before = routers[late].commissioned_at - kSecondsPerDay;
  EXPECT_FALSE(sim().active(late, before));
  EXPECT_DOUBLE_EQ(sim().wall_power_w(late, before), 0.0);
  EXPECT_FALSE(sim().reported_power_w(late, before).has_value());
  EXPECT_TRUE(sim().sensor_snapshot(late, before).empty());
}

TEST_F(NetworkSimTest, SparesDrawPowerButCarryNoTraffic) {
  for (std::size_t r = 0; r < sim().router_count(); ++r) {
    const auto& interfaces = sim().topology().routers[r].interfaces;
    for (std::size_t i = 0; i < interfaces.size(); ++i) {
      if (!interfaces[i].spare) continue;
      const SimTime t = study_begin() + kSecondsPerDay;
      EXPECT_EQ(sim().interface_state(r, i, t), InterfaceState::kPlugged);
      EXPECT_DOUBLE_EQ(sim().interface_load(r, i, t).rate_bps, 0.0);
      return;  // one spare is enough
    }
  }
  FAIL() << "no spare interface found";
}

TEST_F(NetworkSimTest, OverrideTakesInterfaceDownAndBack) {
  NetworkSimulation local(build_switch_like_network(), 9);
  const SimTime begin = local.topology().options.study_begin;
  StateOverride flap;
  flap.router = 0;
  flap.iface = 0;
  flap.from = begin + 10 * kSecondsPerDay;
  flap.to = begin + 13 * kSecondsPerDay;
  flap.state = InterfaceState::kPlugged;
  local.add_override(flap);

  const SimTime during = begin + 11 * kSecondsPerDay;
  const SimTime after = begin + 14 * kSecondsPerDay;
  EXPECT_EQ(local.interface_state(0, 0, during), InterfaceState::kPlugged);
  EXPECT_DOUBLE_EQ(local.interface_load(0, 0, during).rate_bps, 0.0);
  EXPECT_EQ(local.interface_state(0, 0, after), InterfaceState::kUp);
  EXPECT_GT(local.interface_load(0, 0, after).rate_bps, 0.0);
}

TEST_F(NetworkSimTest, TransceiverRemovalDropsMorePowerThanDown) {
  NetworkSimulation a(build_switch_like_network(), 11);
  NetworkSimulation b(build_switch_like_network(), 11);
  const SimTime begin = a.topology().options.study_begin;
  const SimTime t = begin + 20 * kSecondsPerDay;

  // Pick an interface with an optics module (trx_in > 0).
  int router = -1;
  int iface = -1;
  for (std::size_t r = 0; r < a.router_count() && router < 0; ++r) {
    const auto& interfaces = a.topology().routers[r].interfaces;
    for (std::size_t i = 0; i < interfaces.size(); ++i) {
      if (interfaces[i].profile.transceiver == TransceiverKind::kLR4 &&
          !interfaces[i].spare) {
        router = static_cast<int>(r);
        iface = static_cast<int>(i);
        break;
      }
    }
  }
  ASSERT_GE(router, 0);

  const double baseline = a.wall_power_w(static_cast<std::size_t>(router), t);

  StateOverride down;
  down.router = router;
  down.iface = iface;
  down.from = begin;
  down.to = std::numeric_limits<SimTime>::max();
  down.state = InterfaceState::kPlugged;
  a.add_override(down);
  const double with_down = a.wall_power_w(static_cast<std::size_t>(router), t);

  b.remove_transceiver_at(router, iface, begin);
  const double with_removal = b.wall_power_w(static_cast<std::size_t>(router), t);

  // "Down" does not mean "off": removal saves the P_trx,in too.
  EXPECT_LT(with_down, baseline);
  EXPECT_LT(with_removal, with_down - 1.0);
}

TEST_F(NetworkSimTest, SnmpMedianAvailablePerTelemetryClass) {
  const SimTime begin = study_begin();
  const SimTime end = begin + 2 * kSecondsPerDay;
  bool saw_reporting = false;
  bool saw_silent = false;
  for (std::size_t r = 0; r < sim().router_count(); ++r) {
    const auto median_power =
        snmp_median_power_w(sim(), r, begin, end, kSecondsPerHour);
    const std::string& model = sim().topology().routers[r].model;
    if (model == "N540X-8Z16G-SYS-A") {
      EXPECT_FALSE(median_power.has_value());
      saw_silent = true;
    } else if (median_power.has_value()) {
      EXPECT_GT(*median_power, 20.0);
      saw_reporting = true;
    }
  }
  EXPECT_TRUE(saw_reporting);
  EXPECT_TRUE(saw_silent);
}

TEST_F(NetworkSimTest, PsuSnapshotCoversActiveRouters) {
  const SimTime t = study_begin() + 30 * kSecondsPerDay;
  const auto snapshot = psu_snapshot(sim(), t);
  std::size_t active = 0;
  for (std::size_t r = 0; r < sim().router_count(); ++r) {
    active += sim().active(r, t) ? 1 : 0;
  }
  EXPECT_GT(snapshot.size(), active);  // ~2 PSUs per router
  for (const PsuObservation& obs : snapshot) {
    EXPECT_GT(obs.capacity_w, 0.0);
    EXPECT_GE(obs.input_power_w, 0.0);
  }
  // §9.3.1: PSU loads are low (10-20 %); allow a wider band for stragglers.
  int in_band = 0;
  for (const PsuObservation& obs : snapshot) {
    if (obs.load_frac() >= 0.04 && obs.load_frac() <= 0.25) ++in_band;
  }
  EXPECT_GT(static_cast<double>(in_band) / snapshot.size(), 0.7);
}

TEST_F(NetworkSimTest, VisibleInputsExcludeSparesAndDownInterfaces) {
  NetworkSimulation local(build_switch_like_network(), 13);
  const SimTime begin = local.topology().options.study_begin;
  const SimTime t = begin + 5 * kSecondsPerDay;

  std::size_t router = 0;
  bool found = false;
  for (std::size_t r = 0; r < local.router_count() && !found; ++r) {
    for (const DeployedInterface& iface :
         local.topology().routers[r].interfaces) {
      if (iface.spare) {
        router = r;
        found = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found);

  const VisibleInputs inputs = visible_inputs(local, router, t);
  std::size_t non_spare_up = 0;
  for (std::size_t i = 0; i < local.topology().routers[router].interfaces.size();
       ++i) {
    const DeployedInterface& iface =
        local.topology().routers[router].interfaces[i];
    if (!iface.spare &&
        local.interface_state(router, i, t) == InterfaceState::kUp) {
      ++non_spare_up;
    }
  }
  EXPECT_EQ(inputs.configs.size(), non_spare_up);
  EXPECT_EQ(inputs.configs.size(), inputs.loads.size());
  for (const InterfaceLoad& load : inputs.loads) {
    EXPECT_GT(load.rate_bps, 0.0);
  }
}

}  // namespace
}  // namespace joules
