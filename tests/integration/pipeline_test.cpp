// End-to-end integration of the paper's §6.2 prediction pipeline, with
// assertions (the bench prints; this guards):
//
//   lab DUT --NetPowerBench--> PowerModel
//   deployment --SNMP/inventory--> visible inputs
//   PowerModel(visible inputs) vs external measurement
//
// The whole loop must stay "precise but offset": bounded constant offset,
// small residual after removing it, and the §8 / Table-1-scale results
// within their paper bands.
#include <gtest/gtest.h>

#include <cmath>

#include "device/catalog.hpp"
#include "meter/power_meter.hpp"
#include "netpowerbench/derivation.hpp"
#include "network/dataset.hpp"
#include "network/inventory.hpp"
#include "network/simulation.hpp"
#include "sleep/hypnos.hpp"
#include "sleep/savings.hpp"
#include "stats/descriptive.hpp"

namespace joules {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static const NetworkSimulation& sim() {
    static const NetworkSimulation simulation(build_switch_like_network(), 7);
    return simulation;
  }
  static SimTime begin() { return sim().topology().options.study_begin; }

  static PowerModel derive_for(const std::string& model,
                               const std::vector<ProfileKey>& profiles) {
    SimulatedRouter dut(find_router_spec(model).value(), 90210);
    OrchestratorOptions lab;
    lab.start_time = make_time(2025, 1, 2);
    lab.measure_s = 600;
    lab.repeats = 2;
    Orchestrator orchestrator(dut, PowerMeter(PowerMeterSpec{}, 90211), lab);
    return derive_power_model(orchestrator, profiles).model;
  }
};

TEST_F(PipelineTest, ModelPredictionsArePreciseButOffset) {
  const PowerModel derived = derive_for(
      "NCS-55A1-24H",
      {{PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG100},
       {PortType::kQSFP28, TransceiverKind::kLR4, LineRate::kG100},
       {PortType::kQSFP28, TransceiverKind::kSR4, LineRate::kG100}});

  // Evaluate on every deployed NCS without a capacity override.
  const PowerMeter external(PowerMeterSpec{}, 555);
  int evaluated = 0;
  for (std::size_t r = 0; r < sim().router_count(); ++r) {
    const DeployedRouter& deployed = sim().topology().routers[r];
    if (deployed.model != "NCS-55A1-24H") continue;
    // joules-lint: allow(float-equality) — 0.0 is the exact "no override" sentinel
    if (deployed.psu_capacity_override_w != 0.0) continue;
    if (!sim().active(r, begin()) ||
        !sim().active(r, begin() + 14 * kSecondsPerDay)) {
      continue;
    }
    std::vector<double> errors;
    for (SimTime t = begin(); t < begin() + 14 * kSecondsPerDay;
         t += 4 * kSecondsPerHour) {
      const double truth = external.measure_w(0, sim().wall_power_w(r, t), t);
      const VisibleInputs inputs = visible_inputs(sim(), r, t);
      errors.push_back(truth -
                       derived.predict(inputs.configs, inputs.loads).total_w());
    }
    const double offset = mean(errors);
    // Offset bounded (the paper saw 3-13 W on its subjects; PSU unit spread
    // can push individual routers further, but never by tens of watts).
    EXPECT_LT(std::fabs(offset), 30.0) << deployed.name;
    // Precision: residual spread after removing the offset stays tight.
    EXPECT_LT(stddev(errors), 3.0) << deployed.name;
    ++evaluated;
  }
  EXPECT_GE(evaluated, 3);
}

TEST_F(PipelineTest, InventoryRoundTripFeedsTheSamePredictions) {
  // The §6.2 method reads the module inventory from a file, not from memory:
  // exporting and re-importing the inventory must leave predictions
  // unchanged.
  const CsvTable modules = module_inventory(sim().topology());
  const std::size_t router = 5;
  const std::string name = sim().topology().routers[router].name;
  const auto inventory = interfaces_of(modules, name);
  ASSERT_EQ(inventory.size(), sim().topology().routers[router].interfaces.size());
  for (std::size_t i = 0; i < inventory.size(); ++i) {
    EXPECT_EQ(inventory[i].profile,
              sim().topology().routers[router].interfaces[i].profile);
  }
}

TEST_F(PipelineTest, Table1ScaleMediansHoldForKeyModels) {
  const SimTime end = begin() + 14 * kSecondsPerDay;
  std::map<std::string, std::vector<double>> medians;
  for (std::size_t r = 0; r < sim().router_count(); ++r) {
    const std::string& model = sim().topology().routers[r].model;
    if (model != "NCS-55A1-24H" && model != "8201-32FH" &&
        model != "ASR-920-24SZ-M") {
      continue;
    }
    const auto value = snmp_median_power_w(sim(), r, begin(), end,
                                           4 * kSecondsPerHour);
    if (value) medians[model].push_back(*value);
  }
  // Datasheet relations of Table 1: NCS & ASR overestimated, 8201
  // underestimated.
  EXPECT_LT(median(medians["NCS-55A1-24H"]), 600.0);
  EXPECT_LT(median(medians["ASR-920-24SZ-M"]), 110.0);
  EXPECT_GT(median(medians["8201-32FH"]), 288.0);
}

TEST_F(PipelineTest, LinkSleepingStaysWithinPaperBand) {
  const auto loads = average_link_loads_bps(sim(), begin(),
                                            begin() + 7 * kSecondsPerDay,
                                            6 * kSecondsPerHour);
  const HypnosResult result = run_hypnos(sim().topology(), loads);
  double network_power = 0.0;
  for (std::size_t r = 0; r < sim().router_count(); ++r) {
    network_power += sim().wall_power_w(r, begin() + kSecondsPerDay);
  }
  const SleepSavings savings =
      estimate_sleep_savings(sim().topology(), result, network_power);
  EXPECT_GT(savings.min_frac(), 0.001);
  EXPECT_LT(savings.max_frac(), 0.03);
  EXPECT_GT(result.fraction_off(), 0.15);
}

}  // namespace
}  // namespace joules
