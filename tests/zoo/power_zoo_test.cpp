#include "zoo/power_zoo.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "datasheet/corpus.hpp"
#include "device/catalog.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

PowerModel sample_model() {
  PowerModel model(320.0);
  InterfaceProfile p;
  p.key = {PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG100};
  p.port_power_w = 0.32;
  p.trx_in_power_w = 0.02;
  p.trx_up_power_w = 0.19;
  p.energy_per_bit_j = picojoules_to_joules(22);
  p.energy_per_packet_j = nanojoules_to_joules(58);
  p.offset_power_w = 0.37;
  model.add_profile(p);
  return model;
}

MeasurementSummary sample_measurement() {
  MeasurementSummary summary;
  summary.device_model = "NCS-55A1-24H";
  summary.router_name = "pop03-r1";
  summary.source = MeasurementSource::kSnmp;
  summary.window_begin = make_time(2024, 9, 1);
  summary.window_end = make_time(2024, 10, 1);
  summary.median_power_w = 358.0;
  summary.mean_power_w = 360.5;
  summary.sample_count = 8640;
  return summary;
}

TEST(PowerZoo, EmptyZooStats) {
  const PowerZoo zoo;
  const PowerZoo::Stats stats = zoo.stats();
  EXPECT_EQ(stats.datasheets, 0u);
  EXPECT_EQ(stats.power_models, 0u);
  EXPECT_EQ(stats.measurements, 0u);
  EXPECT_EQ(stats.psu_observations, 0u);
  EXPECT_FALSE(zoo.power_model("anything").has_value());
}

TEST(PowerZoo, QueriesFilterByVendorAndModel) {
  PowerZoo zoo;
  for (const DatasheetRecord& record : generate_corpus()) {
    zoo.add_datasheet(record);
  }
  EXPECT_EQ(zoo.datasheets().size(), 777u);
  EXPECT_FALSE(zoo.datasheets("Cisco").empty());
  EXPECT_EQ(zoo.datasheets("", "NCS-55A1-24H").size(), 1u);
  EXPECT_TRUE(zoo.datasheets("NoSuchVendor").empty());
}

TEST(PowerZoo, ModelContributionReplacesPerDevice) {
  PowerZoo zoo;
  zoo.add_power_model("NCS-55A1-24H", sample_model(), "nsg-ethz");
  PowerModel updated = sample_model();
  updated.set_base_power_w(321.0);
  zoo.add_power_model("NCS-55A1-24H", updated, "replication-lab");
  EXPECT_EQ(zoo.stats().power_models, 1u);
  EXPECT_DOUBLE_EQ(zoo.power_model("NCS-55A1-24H")->base_power_w(), 321.0);
}

TEST(PowerZoo, DossierAggregatesAllSources) {
  PowerZoo zoo;
  DatasheetRecord record;
  record.vendor = "Cisco";
  record.model = "NCS-55A1-24H";
  record.typical_power_w = 600;
  zoo.add_datasheet(record);
  zoo.add_power_model("NCS-55A1-24H", sample_model());
  zoo.add_measurement(sample_measurement());
  PsuObservation obs;
  obs.router_name = "pop03-r1";
  obs.router_model = "NCS-55A1-24H";
  obs.capacity_w = 1100;
  obs.input_power_w = 190;
  obs.output_power_w = 170;
  zoo.add_psu_observation(obs);
  zoo.add_psu_observation(obs);

  const PowerZoo::DeviceDossier dossier = zoo.dossier("NCS-55A1-24H");
  ASSERT_TRUE(dossier.datasheet.has_value());
  EXPECT_DOUBLE_EQ(dossier.datasheet->typical_power_w.value(), 600);
  ASSERT_TRUE(dossier.model.has_value());
  ASSERT_EQ(dossier.measurements.size(), 1u);
  EXPECT_EQ(dossier.psu_observations, 2u);

  // The zoo's raison d'etre: the dossier exposes the Table 1 gap directly.
  EXPECT_GT(dossier.datasheet->typical_power_w.value(),
            dossier.measurements[0].median_power_w * 1.3);
}

TEST(PowerZoo, SaveLoadRoundTrip) {
  PowerZoo zoo;
  DatasheetRecord record;
  record.vendor = "Cisco";
  record.model = "8201-32FH";
  record.series = "Cisco 8000 series";
  record.typical_power_w = 288;
  record.max_power_w = 1016;
  record.max_bandwidth_gbps = 12800;
  record.psu_count = 2;
  record.psu_capacity_w = 1100;
  record.release_year = 2020;
  zoo.add_datasheet(record);
  DatasheetRecord sparse;
  sparse.vendor = "Arista";
  sparse.model = "7280R-48";  // no power data at all
  zoo.add_datasheet(sparse);
  zoo.add_power_model("NCS-55A1-24H", sample_model(), "nsg-ethz");
  zoo.add_measurement(sample_measurement());
  PsuObservation obs;
  obs.router_name = "pop01-r1";
  obs.router_model = "8201-32FH";
  obs.psu_index = 1;
  obs.capacity_w = 1100;
  obs.input_power_w = 220.5;
  obs.output_power_w = 168.25;
  zoo.add_psu_observation(obs);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "joules_zoo_test";
  zoo.save(dir);
  const PowerZoo loaded = PowerZoo::load(dir);
  std::filesystem::remove_all(dir);

  EXPECT_EQ(loaded.stats().datasheets, 2u);
  EXPECT_EQ(loaded.stats().power_models, 1u);
  EXPECT_EQ(loaded.stats().measurements, 1u);
  EXPECT_EQ(loaded.stats().psu_observations, 1u);

  const auto sheets = loaded.datasheets("Cisco", "8201-32FH");
  ASSERT_EQ(sheets.size(), 1u);
  EXPECT_DOUBLE_EQ(sheets[0].typical_power_w.value(), 288);
  EXPECT_EQ(sheets[0].release_year.value(), 2020);

  const auto sparse_back = loaded.datasheets("Arista");
  ASSERT_EQ(sparse_back.size(), 1u);
  EXPECT_FALSE(sparse_back[0].typical_power_w.has_value());

  const auto model = loaded.power_model("NCS-55A1-24H");
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(*model, sample_model());

  const auto measurements = loaded.measurements("NCS-55A1-24H");
  ASSERT_EQ(measurements.size(), 1u);
  EXPECT_EQ(measurements[0].source, MeasurementSource::kSnmp);
  EXPECT_DOUBLE_EQ(measurements[0].median_power_w, 358.0);
  EXPECT_EQ(measurements[0].sample_count, 8640u);
  EXPECT_EQ(measurements[0].rejected_count, 0u);
  EXPECT_EQ(measurements[0].quality, WindowQuality::kClean);

  ASSERT_EQ(loaded.psu_observations().size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.psu_observations()[0].output_power_w, 168.25);
}

TEST(PowerZoo, LabMeasurementQualityRoundTrips) {
  PowerZoo zoo;
  MeasurementSummary lab = sample_measurement();
  lab.router_name = "";
  lab.source = MeasurementSource::kLab;
  lab.rejected_count = 7;
  lab.quality = WindowQuality::kRecovered;
  zoo.add_measurement(lab);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "joules_zoo_quality_test";
  zoo.save(dir);
  const PowerZoo loaded = PowerZoo::load(dir);
  std::filesystem::remove_all(dir);

  const auto measurements = loaded.measurements("NCS-55A1-24H");
  ASSERT_EQ(measurements.size(), 1u);
  EXPECT_EQ(measurements[0].source, MeasurementSource::kLab);
  EXPECT_EQ(measurements[0].rejected_count, 7u);
  EXPECT_EQ(measurements[0].quality, WindowQuality::kRecovered);
}

TEST(PowerZoo, LoadsPreQualityMeasurementFiles) {
  // Zoo directories written before the campaign layer lack the provenance
  // columns; they must keep loading as clean measurements.
  PowerZoo zoo;
  zoo.add_measurement(sample_measurement());
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "joules_zoo_legacy_test";
  zoo.save(dir);
  // Rewrite measurements.csv with the legacy schema.
  CsvTable legacy({"device", "router", "source", "window_begin", "window_end",
                   "median_w", "mean_w", "samples"});
  legacy.add_row({"NCS-55A1-24H", "pop03-r1", "snmp", "100", "200", "358",
                  "360.5", "8640"});
  legacy.write_file(dir / "measurements.csv");

  const PowerZoo loaded = PowerZoo::load(dir);
  std::filesystem::remove_all(dir);
  const auto measurements = loaded.measurements("NCS-55A1-24H");
  ASSERT_EQ(measurements.size(), 1u);
  EXPECT_EQ(measurements[0].rejected_count, 0u);
  EXPECT_EQ(measurements[0].quality, WindowQuality::kClean);
}

TEST(PowerZoo, MeasurementSourceParsing) {
  EXPECT_EQ(parse_measurement_source("snmp").value(), MeasurementSource::kSnmp);
  EXPECT_EQ(parse_measurement_source("Autopower").value(),
            MeasurementSource::kAutopower);
  EXPECT_EQ(parse_measurement_source("LAB").value(), MeasurementSource::kLab);
  EXPECT_FALSE(parse_measurement_source("guess").has_value());
}

TEST(PowerZoo, LoadMissingDirectoryThrows) {
  EXPECT_THROW(PowerZoo::load("/nonexistent/zoo/dir"), std::runtime_error);
}

}  // namespace
}  // namespace joules
