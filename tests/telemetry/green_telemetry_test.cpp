// GREEN-style telemetry (§9.4 / IETF GREEN WG): exporting both P_in and
// P_out per PSU so efficiency can be tracked over time instead of relying on
// one-off sensor snapshots.
#include <gtest/gtest.h>

#include "device/catalog.hpp"
#include "telemetry/snmp.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

class GreenTelemetryTest : public ::testing::Test {
 protected:
  GreenTelemetryTest() : router_(find_router_spec("NCS-55A1-24H").value(), 21) {
    router_.set_ambient_override_c(22.0);
    const ProfileKey dac{PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                         LineRate::kG100};
    router_.add_interface(dac, InterfaceState::kUp);
  }
  static std::vector<InterfaceLoad> loads(SimTime) {
    return {{gbps_to_bps(10), 1e6}};
  }
  SimulatedRouter router_;
};

TEST_F(GreenTelemetryTest, DisabledByDefault) {
  const SnmpPoller poller;
  EXPECT_FALSE(poller.green_telemetry());
  const auto records = poller.collect(router_, loads, 0, kSecondsPerHour);
  for (const auto& record : records) EXPECT_TRUE(record.psu_sensors.empty());
}

TEST_F(GreenTelemetryTest, EnabledRecordsBothPowerValues) {
  const SnmpPoller poller(kDefaultSnmpPeriod, /*green_telemetry=*/true);
  const auto records = poller.collect(router_, loads, 0, kSecondsPerHour);
  ASSERT_FALSE(records.empty());
  for (const auto& record : records) {
    ASSERT_EQ(record.psu_sensors.size(), 2u);  // two PSUs
    for (const auto& sensor : record.psu_sensors) {
      EXPECT_GT(sensor.input_power_w, 0.0);
      EXPECT_GT(sensor.output_power_w, 0.0);
    }
  }
}

TEST_F(GreenTelemetryTest, EfficiencyTraceTracksTheTruth) {
  const SnmpPoller poller(kDefaultSnmpPeriod, true);
  const auto records = poller.collect(router_, loads, 0, kSecondsPerDay);
  const TimeSeries efficiency = SnmpPoller::efficiency_trace(records, 0);
  ASSERT_EQ(efficiency.size(), records.size());
  // NCS PSUs are good (Fig. 6b): sustained efficiency must be high, and the
  // capped ratio can never exceed 1.
  for (const Sample& s : efficiency) {
    EXPECT_GT(s.value, 0.80);
    EXPECT_LE(s.value, 1.0);
  }
}

TEST_F(GreenTelemetryTest, EfficiencyTraceEmptyForMissingPsuIndex) {
  const SnmpPoller poller(kDefaultSnmpPeriod, true);
  const auto records = poller.collect(router_, loads, 0, kSecondsPerHour);
  EXPECT_TRUE(SnmpPoller::efficiency_trace(records, 9).empty());
}

TEST_F(GreenTelemetryTest, EfficiencyTraceEmptyWithoutGreenRecords) {
  const SnmpPoller poller;  // classic mode, like the paper's dataset
  const auto records = poller.collect(router_, loads, 0, kSecondsPerHour);
  EXPECT_TRUE(SnmpPoller::efficiency_trace(records, 0).empty());
}

}  // namespace
}  // namespace joules
