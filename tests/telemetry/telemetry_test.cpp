#include <gtest/gtest.h>

#include "device/catalog.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/snmp.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

TEST(Counters, AccumulateAndDelta) {
  InterfaceCounters a;
  InterfaceCounters b = a;
  // 1 Gbps each way for 300 s.
  b.accumulate(1e9, 1e9, 1e5, 1e5, 300.0);
  const CounterDelta delta = rates_between(a, b, 300.0);
  ASSERT_TRUE(delta.valid);
  EXPECT_NEAR(delta.rate_bps, 2e9, 1e6);
  EXPECT_NEAR(delta.rate_pps, 2e5, 10);
}

TEST(Counters, ResetDetected) {
  InterfaceCounters a;
  a.accumulate(1e9, 1e9, 1e5, 1e5, 300.0);
  const InterfaceCounters rebooted;  // all-zero counters after reboot
  EXPECT_FALSE(rates_between(a, rebooted, 300.0).valid);
}

TEST(Counters, NonPositiveWindowInvalid) {
  InterfaceCounters a;
  EXPECT_FALSE(rates_between(a, a, 0.0).valid);
  EXPECT_FALSE(rates_between(a, a, -5.0).valid);
}

TEST(Counters, ZeroTrafficValidZeroRates) {
  InterfaceCounters a;
  const CounterDelta delta = rates_between(a, a, 300.0);
  EXPECT_TRUE(delta.valid);
  EXPECT_DOUBLE_EQ(delta.rate_bps, 0.0);
}

class SnmpPollerTest : public ::testing::Test {
 protected:
  SnmpPollerTest() : router_(find_router_spec("8201-32FH").value(), 42) {
    router_.set_ambient_override_c(22.0);
    const ProfileKey dac{PortType::kQSFPDD, TransceiverKind::kPassiveDAC,
                         LineRate::kG100};
    router_.add_interface(dac, InterfaceState::kUp);
    router_.add_interface(dac, InterfaceState::kUp);
  }

  std::vector<InterfaceLoad> constant_loads(SimTime) const {
    return {{gbps_to_bps(20), 2e6}, {gbps_to_bps(10), 1e6}};
  }

  SimulatedRouter router_;
};

TEST_F(SnmpPollerTest, PollsEveryFiveMinutes) {
  const SnmpPoller poller;
  const SimTime begin = make_time(2024, 9, 10);
  const auto records = poller.collect(
      router_, [this](SimTime t) { return constant_loads(t); }, begin,
      begin + kSecondsPerHour);
  ASSERT_EQ(records.size(), 12u);
  EXPECT_EQ(records[1].time - records[0].time, 300);
}

TEST_F(SnmpPollerTest, CountersAdvanceWithTraffic) {
  const SnmpPoller poller;
  const SimTime begin = make_time(2024, 9, 10);
  const auto records = poller.collect(
      router_, [this](SimTime t) { return constant_loads(t); }, begin,
      begin + kSecondsPerHour);
  const CounterDelta delta = rates_between(records[0].counters[0],
                                           records[1].counters[0], 300.0);
  ASSERT_TRUE(delta.valid);
  EXPECT_NEAR(delta.rate_bps, gbps_to_bps(20), gbps_to_bps(0.5));
}

TEST_F(SnmpPollerTest, PowerTraceReportedWithOffset) {
  const SnmpPoller poller;
  const SimTime begin = make_time(2024, 9, 10);
  const auto records = poller.collect(
      router_, [this](SimTime t) { return constant_loads(t); }, begin,
      begin + kSecondsPerHour);
  const TimeSeries power = SnmpPoller::power_trace(records);
  ASSERT_EQ(power.size(), records.size());
  // 8201-32FH reports wall power + ~17 W.
  const double wall = router_.wall_power_w(records[0].time, constant_loads(0));
  EXPECT_NEAR(power.front().value - wall, 17.0, 2.0);
}

TEST_F(SnmpPollerTest, RateTraceMatchesOfferedLoad) {
  const SnmpPoller poller;
  const SimTime begin = make_time(2024, 9, 10);
  const auto records = poller.collect(
      router_, [this](SimTime t) { return constant_loads(t); }, begin,
      begin + 2 * kSecondsPerHour);
  const TimeSeries rates = SnmpPoller::rate_trace_bps(records, 1);
  ASSERT_FALSE(rates.empty());
  for (const Sample& s : rates) {
    EXPECT_NEAR(s.value, gbps_to_bps(10), gbps_to_bps(0.5));
  }
}

TEST_F(SnmpPollerTest, NonReportingRouterYieldsEmptyPowerTrace) {
  RouterSpec spec = find_router_spec("N540X-8Z16G-SYS-A").value();
  SimulatedRouter silent(spec, 1);
  silent.set_ambient_override_c(22.0);
  const SnmpPoller poller;
  const SimTime begin = make_time(2024, 9, 10);
  const auto records = poller.collect(
      silent, [](SimTime) { return std::vector<InterfaceLoad>{}; }, begin,
      begin + kSecondsPerHour);
  EXPECT_TRUE(SnmpPoller::power_trace(records).empty());
  EXPECT_EQ(records.size(), 12u);
}

TEST_F(SnmpPollerTest, ValidatesArguments) {
  EXPECT_THROW(SnmpPoller(0), std::invalid_argument);
  const SnmpPoller poller;
  EXPECT_THROW(
      poller.collect(router_, [](SimTime) { return std::vector<InterfaceLoad>{}; },
                     0, 600),
      std::invalid_argument);  // load vector size mismatch
}

TEST(Mib, OidNames) {
  EXPECT_EQ(if_in_octets_oid(3), "IF-MIB::ifHCInOctets.3");
  EXPECT_EQ(if_out_octets_oid(3), "IF-MIB::ifHCOutOctets.3");
  EXPECT_EQ(psu_power_oid(1), "ENTITY-SENSOR-MIB::entPhySensorValue.psu1");
}

}  // namespace
}  // namespace joules
