// Regression: a scripted recv-frame delay must never block the nonblocking
// pump path. fault_hooks::on_recv_frame used to sleep the injected delay
// inline; FramedConn::pump_reads calls that hook per delivered frame from
// inside single-threaded reactor loops (the autopower server tick, the
// fleet driver's poll loop), so one delayed frame parked *every* connection
// the loop serves for the full delay. The fix returns the delay to the
// caller: blocking read_frame sleeps it off, the pump latches a read stall
// (read_stalled() / read_stall_deadline()) and delivers the frame on the
// first pump after the deadline.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "net/fault.hpp"
#include "net/framed_conn.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"

namespace joules {
namespace {

using net::FramedConn;
using net::Transport;

std::vector<std::byte> payload_of(const char* text) {
  std::vector<std::byte> out;
  for (const char* p = text; *p != '\0'; ++p) out.push_back(std::byte(*p));
  return out;
}

using Clock = std::chrono::steady_clock;

TEST(FramedStall, InjectedRecvDelayDoesNotBlockThePump) {
  constexpr Millis kDelay{250};
  // Pre-fix failure threshold: the pump that parses the delayed frame slept
  // the full 250 ms inline. Post-fix it latches the stall and returns
  // immediately; 150 ms leaves slack for a loaded CI host.
  constexpr Millis kBlockingBudget{150};

  TcpListener listener(0);

  FaultPlan plan;
  plan.delay_recv_frame(0, kDelay);
  ScopedFaultPlan scoped(plan);

  // connect_loopback consults on_connect and tags the stream with a nonzero
  // dial token, so the pump's recv-frame hook sees the scripted delay.
  TcpStream client = TcpStream::connect_loopback(listener.port());
  auto accepted = listener.accept(Millis{2000});
  ASSERT_TRUE(accepted.has_value());
  TcpStream server = std::move(*accepted);

  const std::vector<std::byte> payload = payload_of("delayed-frame");
  write_frame(server, payload, Millis{2000});

  FramedConn conn(Transport::from_stream(std::move(client)));
  std::vector<std::vector<std::byte>> frames;

  // Pump until the frame's bytes have arrived and been parsed. Pre-fix this
  // loop exits with the frame delivered after an inline 250 ms sleep;
  // post-fix it exits almost immediately with the stall latched.
  const auto pump_start = Clock::now();
  while (!conn.read_stalled() && frames.empty()) {
    ASSERT_EQ(conn.pump_reads(frames), FramedConn::Status::kOpen);
    ASSERT_LT(Clock::now() - pump_start, std::chrono::seconds(5));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto first_pump_elapsed = Clock::now() - pump_start;

  EXPECT_TRUE(conn.read_stalled())
      << "delayed frame was delivered by a blocking pump";
  EXPECT_TRUE(frames.empty());
  EXPECT_LT(first_pump_elapsed,
            std::chrono::milliseconds(kBlockingBudget.count()))
      << "pump_reads blocked on the injected recv delay";
  EXPECT_FALSE(conn.read_stall_deadline().is_never());

  // The frame must still arrive — after the stall deadline, in order.
  while (frames.empty()) {
    ASSERT_EQ(conn.pump_reads(frames), FramedConn::Status::kOpen);
    ASSERT_LT(Clock::now() - pump_start, std::chrono::seconds(5));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto delivered_elapsed = Clock::now() - pump_start;
  EXPECT_GE(delivered_elapsed + std::chrono::milliseconds(10),
            std::chrono::milliseconds(kDelay.count()));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], payload);
  EXPECT_FALSE(conn.read_stalled());
  EXPECT_EQ(scoped.stats().delays_injected, 1u);

  // Frames queued behind the stall deliver afterwards, in order.
  const std::vector<std::byte> second = payload_of("second-frame");
  write_frame(server, second, Millis{2000});
  frames.clear();
  while (frames.empty()) {
    ASSERT_EQ(conn.pump_reads(frames), FramedConn::Status::kOpen);
    ASSERT_LT(Clock::now() - pump_start, std::chrono::seconds(10));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], second);
}

TEST(FramedStall, EofBehindAStallStillDeliversTheFrame) {
  constexpr Millis kDelay{60};

  TcpListener listener(0);
  FaultPlan plan;
  plan.delay_recv_frame(0, kDelay);
  ScopedFaultPlan scoped(plan);

  TcpStream client = TcpStream::connect_loopback(listener.port());
  auto accepted = listener.accept(Millis{2000});
  ASSERT_TRUE(accepted.has_value());
  TcpStream server = std::move(*accepted);

  const std::vector<std::byte> payload = payload_of("last-words");
  write_frame(server, payload, Millis{2000});
  server.close();  // EOF right behind the delayed frame

  FramedConn conn(Transport::from_stream(std::move(client)));
  std::vector<std::vector<std::byte>> frames;

  const auto start = Clock::now();
  FramedConn::Status status = FramedConn::Status::kOpen;
  while (frames.empty() && status == FramedConn::Status::kOpen) {
    status = conn.pump_reads(frames);
    ASSERT_LT(Clock::now() - start, std::chrono::seconds(5));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], payload);

  // With the withheld frame delivered, the buffered EOF surfaces cleanly —
  // either in the delivering pump itself or on the one after.
  frames.clear();
  if (status == FramedConn::Status::kOpen) status = conn.pump_reads(frames);
  EXPECT_EQ(status, FramedConn::Status::kClosed);
  EXPECT_TRUE(frames.empty());
}

}  // namespace
}  // namespace joules
