// Transport ops-table conformance: every backend (loopback TCP, in-process
// pipe, recorded replay) must present identical read/write/EOF/would-block
// semantics to FramedConn and the reactor — and the FaultPlan hooks must
// fire the same way regardless of which backend carries the bytes. The
// strongest check adopts each backend into a live autopower::Server and
// drives the same handshake through it.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "autopower/protocol.hpp"
#include "autopower/server.hpp"
#include "net/fault.hpp"
#include "net/framed_conn.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"

namespace joules::net {
namespace {

using autopower::decode;
using autopower::encode;
using autopower::Hello;
using autopower::HelloAck;
using autopower::Message;

std::vector<std::byte> framed(const std::vector<std::byte>& payload) {
  std::vector<std::byte> out;
  const auto size = static_cast<std::uint32_t>(payload.size());
  for (int i = 3; i >= 0; --i) {
    out.push_back(static_cast<std::byte>((size >> (8 * i)) & 0xff));
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

bool eventually(const std::function<bool()>& predicate) {
  for (int i = 0; i < 400; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(Millis{10});
  }
  return predicate();
}

// A connected transport pair for the TCP backend.
std::pair<Transport, Transport> tcp_pair() {
  TcpListener listener;
  TcpStream dialer = TcpStream::connect_loopback(listener.port());
  auto accepted = listener.accept(Millis{2000});
  EXPECT_TRUE(accepted.has_value());
  return {Transport::from_stream(std::move(dialer)),
          Transport::from_stream(std::move(*accepted))};
}

struct BackendPair {
  const char* name;
  Transport a;
  Transport b;
};

std::vector<BackendPair> stream_backends() {
  std::vector<BackendPair> backends;
  {
    auto [a, b] = tcp_pair();
    backends.push_back(BackendPair{"tcp", std::move(a), std::move(b)});
  }
  {
    auto [a, b] = Transport::pipe_pair();
    backends.push_back(BackendPair{"pipe", std::move(a), std::move(b)});
  }
  return backends;
}

TEST(TransportConformance, RoundTripAndWouldBlockAcrossStreamBackends) {
  for (BackendPair& pair : stream_backends()) {
    SCOPED_TRACE(pair.name);
    // Nothing written yet: read must report would_block, never block.
    std::byte buffer[64];
    TransportIo io = pair.b.read(buffer);
    EXPECT_TRUE(io.would_block);
    EXPECT_EQ(io.bytes, 0u);
    EXPECT_FALSE(io.eof);

    const char message[] = "joules";
    io = pair.a.write(std::as_bytes(std::span(message, sizeof message)));
    EXPECT_EQ(io.bytes, sizeof message);

    EXPECT_TRUE(eventually([&] {
      const TransportIo got = pair.b.read(buffer);
      return got.bytes == sizeof message &&
             std::memcmp(buffer, message, sizeof message) == 0;
    }));

    // Peer close surfaces as EOF, not an error.
    pair.a.close();
    EXPECT_TRUE(eventually([&] { return pair.b.read(buffer).eof; }));
  }
}

TEST(TransportConformance, PollFdContractPerBackend) {
  for (BackendPair& pair : stream_backends()) {
    SCOPED_TRACE(pair.name);
    EXPECT_GE(pair.a.poll_fd(), 0);
    EXPECT_GE(pair.b.poll_fd(), 0);
  }
  Transport replay =
      Transport::replay(ReplayScript{}, std::make_shared<ReplayCapture>());
  EXPECT_EQ(replay.poll_fd(), -1);  // always-ready backend
}

TEST(TransportConformance, ReplayBackendPlaysScriptThenEof) {
  ReplayScript script;
  script.chunks.push_back({std::byte{1}, std::byte{2}});
  script.chunks.push_back({std::byte{3}});
  auto capture = std::make_shared<ReplayCapture>();
  Transport transport = Transport::replay(script, capture);
  EXPECT_EQ(std::string(transport.backend_name()), "replay");

  std::byte buffer[8];
  TransportIo io = transport.read(buffer);
  EXPECT_EQ(io.bytes, 2u);
  io = transport.read(buffer);
  EXPECT_EQ(io.bytes, 1u);
  EXPECT_EQ(buffer[0], std::byte{3});
  io = transport.read(buffer);
  EXPECT_TRUE(io.eof);  // script exhausted

  const char reply[] = "ok";
  io = transport.write(std::as_bytes(std::span(reply, 2)));
  EXPECT_EQ(io.bytes, 2u);
  EXPECT_EQ(capture->bytes().size(), 2u);

  transport.close();
  EXPECT_TRUE(capture->closed());
  EXPECT_THROW((void)transport.write(std::as_bytes(std::span(reply, 2))),
               std::system_error);
}

// The same handshake served identically over every backend: each transport
// is adopted by a live server, says Hello, and gets back an accepted ack.
TEST(TransportConformance, ServerServesHandshakeOverEveryBackend) {
  autopower::Server server;

  // TCP: the normal dial path.
  {
    TcpStream raw = TcpStream::connect_loopback(server.port());
    Transport client = Transport::from_stream(std::move(raw));
    FramedConn conn(std::move(client));
    Hello hello;
    hello.unit_id = "tcp-unit";
    ASSERT_TRUE(conn.queue_frame(encode(Message{hello})));
    while (conn.wants_write()) ASSERT_EQ(conn.flush_writes(), FramedConn::Status::kOpen);
    std::vector<std::vector<std::byte>> frames;
    ASSERT_TRUE(eventually([&] {
      return conn.pump_reads(frames) != FramedConn::Status::kOpen || !frames.empty();
    }));
    ASSERT_EQ(frames.size(), 1u);
    const Message message = decode(frames[0]);
    const auto* ack = std::get_if<HelloAck>(&message);
    ASSERT_NE(ack, nullptr);
    EXPECT_TRUE(ack->accepted);
  }

  // Pipe: adopted via adopt_connection.
  {
    auto [client_side, server_side] = Transport::pipe_pair();
    server.adopt_connection(std::move(server_side));
    FramedConn conn(std::move(client_side));
    Hello hello;
    hello.unit_id = "pipe-unit";
    ASSERT_TRUE(conn.queue_frame(encode(Message{hello})));
    while (conn.wants_write()) ASSERT_EQ(conn.flush_writes(), FramedConn::Status::kOpen);
    std::vector<std::vector<std::byte>> frames;
    ASSERT_TRUE(eventually([&] {
      (void)conn.pump_reads(frames);
      return !frames.empty();
    }));
    const Message message = decode(frames[0]);
    const auto* ack = std::get_if<HelloAck>(&message);
    ASSERT_NE(ack, nullptr);
    EXPECT_TRUE(ack->accepted);
  }

  // Replay: a recorded Hello plays into the server; the ack lands in the
  // capture. The reactor treats script exhaustion as a clean disconnect.
  {
    Hello hello;
    hello.unit_id = "replay-unit";
    ReplayScript script;
    script.chunks.push_back(framed(encode(Message{hello})));
    auto capture = std::make_shared<ReplayCapture>();
    server.adopt_connection(Transport::replay(script, capture));
    ASSERT_TRUE(eventually([&] { return capture->bytes().size() > 4; }));
    const std::vector<std::byte> bytes = capture->bytes();
    const Message message =
        decode(std::span(bytes).subspan(4));  // strip the length prefix
    const auto* ack = std::get_if<HelloAck>(&message);
    ASSERT_NE(ack, nullptr);
    EXPECT_TRUE(ack->accepted);
  }

  EXPECT_TRUE(eventually([&] { return server.known_units().size() == 3; }));
  server.stop();
}

// Accept-side fault plans fire identically for accepted sockets and adopted
// transports: a torn server frame reaches the client as a prefix + EOF on
// both the TCP and pipe backends.
TEST(TransportConformance, TornServerFrameAcrossBackends) {
  for (int backend = 0; backend < 2; ++backend) {
    SCOPED_TRACE(backend == 0 ? "tcp" : "pipe");
    ScopedFaultPlan plan(
        FaultPlan().tear_server_send_frame(0, 2));  // 2 bytes, then close
    autopower::Server server;
    FramedConn conn = [&] {
      if (backend == 0) {
        TcpStream raw = TcpStream::connect_loopback(server.port());
        return FramedConn(Transport::from_stream(std::move(raw)));
      }
      auto [client_side, server_side] = Transport::pipe_pair();
      server.adopt_connection(std::move(server_side));
      return FramedConn(std::move(client_side));
    }();
    Hello hello;
    hello.unit_id = "torn";
    ASSERT_TRUE(conn.queue_frame(encode(Message{hello})));
    while (conn.wants_write()) ASSERT_EQ(conn.flush_writes(), FramedConn::Status::kOpen);
    // The ack is torn after 2 bytes: the client sees a partial frame and
    // then EOF — an error, never a parsed frame.
    std::vector<std::vector<std::byte>> frames;
    FramedConn::Status status = FramedConn::Status::kOpen;
    ASSERT_TRUE(eventually([&] {
      status = conn.pump_reads(frames);
      return status != FramedConn::Status::kOpen;
    }));
    EXPECT_EQ(status, FramedConn::Status::kError);
    EXPECT_TRUE(frames.empty());
    EXPECT_EQ(plan.stats().server_frames_torn, 1u);
    server.stop();
  }
}

// Client-side send-chunk caps apply to the dialing transport's writes, so a
// fault plan forces the multi-chunk partial-write path through Transport
// just as it does through the blocking socket layer.
TEST(TransportConformance, SendChunkCapAppliesToDialedTransport) {
  ScopedFaultPlan plan(FaultPlan().cap_send_chunk(3));
  TcpListener listener;
  TcpStream dialer = TcpStream::connect_loopback(listener.port());
  auto accepted = listener.accept(Millis{2000});
  ASSERT_TRUE(accepted.has_value());
  Transport client = Transport::from_stream(std::move(dialer));

  const char message[] = "0123456789";
  const TransportIo io =
      client.write(std::as_bytes(std::span(message, sizeof message)));
  EXPECT_EQ(io.bytes, 3u);  // capped: one chunk per write call
}

}  // namespace
}  // namespace joules::net
