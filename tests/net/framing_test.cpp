#include "net/framing.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

namespace joules {
namespace {

TEST(ByteCodec, RoundTripAllTypes) {
  ByteWriter writer;
  writer.u8(0xAB);
  writer.u16(0x1234);
  writer.u32(0xDEADBEEF);
  writer.u64(0x0123456789ABCDEFULL);
  writer.i64(-42);
  writer.f64(3.14159);
  writer.string("hello joules");

  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.u8(), 0xAB);
  EXPECT_EQ(reader.u16(), 0x1234);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(reader.i64(), -42);
  EXPECT_DOUBLE_EQ(reader.f64(), 3.14159);
  EXPECT_EQ(reader.string(), "hello joules");
  EXPECT_TRUE(reader.exhausted());
}

TEST(ByteCodec, TruncatedReadThrows) {
  ByteWriter writer;
  writer.u16(7);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.u8(), 0);
  EXPECT_EQ(reader.u8(), 7);
  EXPECT_THROW(reader.u8(), std::out_of_range);
}

TEST(ByteCodec, StringWithEmbeddedNulAndUnicode) {
  ByteWriter writer;
  const std::string tricky = std::string("a\0b", 3) + "\xc3\xa9";
  writer.string(tricky);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.string(), tricky);
}

TEST(ByteCodec, NegativeAndSpecialDoubles) {
  ByteWriter writer;
  writer.f64(-0.0);
  writer.f64(1e-300);
  writer.f64(std::numeric_limits<double>::infinity());
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.f64(), 0.0);
  EXPECT_DOUBLE_EQ(reader.f64(), 1e-300);
  EXPECT_TRUE(std::isinf(reader.f64()));
}

TEST(Framing, RoundTripOverLoopback) {
  TcpListener listener;
  std::optional<std::vector<std::byte>> received;

  std::thread server([&] {
    auto stream = listener.accept(Millis{3000});
    ASSERT_TRUE(stream.has_value());
    received = read_frame(*stream);
  });

  TcpStream client = TcpStream::connect_loopback(listener.port());
  ByteWriter writer;
  writer.string("measurement batch");
  write_frame(client, writer.bytes());
  server.join();

  ASSERT_TRUE(received.has_value());
  ByteReader reader(*received);
  EXPECT_EQ(reader.string(), "measurement batch");
}

TEST(Framing, EmptyFrameAllowed) {
  TcpListener listener;
  std::optional<std::vector<std::byte>> received;
  std::thread server([&] {
    auto stream = listener.accept(Millis{3000});
    ASSERT_TRUE(stream.has_value());
    received = read_frame(*stream);
  });
  TcpStream client = TcpStream::connect_loopback(listener.port());
  write_frame(client, {});
  server.join();
  ASSERT_TRUE(received.has_value());
  EXPECT_TRUE(received->empty());
}

TEST(Framing, CleanEofReturnsNullopt) {
  TcpListener listener;
  std::optional<std::vector<std::byte>> result =
      std::vector<std::byte>{std::byte{1}};
  std::thread server([&] {
    auto stream = listener.accept(Millis{3000});
    ASSERT_TRUE(stream.has_value());
    result = read_frame(*stream);
  });
  {
    TcpStream client = TcpStream::connect_loopback(listener.port());
    client.shutdown_write();
    server.join();
  }
  EXPECT_FALSE(result.has_value());
}

TEST(Framing, MultipleFramesInOrder) {
  TcpListener listener;
  std::vector<std::string> received;
  std::thread server([&] {
    auto stream = listener.accept(Millis{3000});
    ASSERT_TRUE(stream.has_value());
    while (auto frame = read_frame(*stream)) {
      ByteReader reader(*frame);
      received.push_back(reader.string());
    }
  });
  TcpStream client = TcpStream::connect_loopback(listener.port());
  for (const std::string text : {"one", "two", "three"}) {
    ByteWriter writer;
    writer.string(text);
    write_frame(client, writer.bytes());
  }
  client.shutdown_write();
  server.join();
  ASSERT_EQ(received.size(), 3u);
  EXPECT_EQ(received[0], "one");
  EXPECT_EQ(received[2], "three");
}

TEST(Framing, OversizedFrameRejectedBySender) {
  TcpListener listener;
  TcpStream client;  // never connected; send should fail before I/O anyway
  const std::vector<std::byte> huge(kMaxFrameBytes + 1);
  EXPECT_THROW(write_frame(client, huge), std::invalid_argument);
}

TEST(Socket, ConnectToClosedPortFails) {
  // Grab an ephemeral port and close it so nothing is listening.
  std::uint16_t dead_port;
  {
    TcpListener listener;
    dead_port = listener.port();
  }
  EXPECT_THROW(TcpStream::connect_loopback(dead_port, Millis{500}),
               std::system_error);
}

TEST(Socket, AcceptTimesOut) {
  TcpListener listener;
  EXPECT_FALSE(listener.accept(Millis{50}).has_value());
}

}  // namespace
}  // namespace joules
