// Unit tests for the fault-injection layer itself: scripted connect refusal,
// partial writes, mid-frame disconnects, and recv-frame loss — checked
// against a plain echo-less listener, independent of the Autopower stack.
#include "net/fault.hpp"

#include <gtest/gtest.h>

#include <system_error>
#include <thread>
#include <vector>

#include "net/framing.hpp"

namespace joules {
namespace {

std::vector<std::byte> bytes_of(const std::string& text) {
  std::vector<std::byte> out;
  out.reserve(text.size());
  for (const char c : text) out.push_back(static_cast<std::byte>(c));
  return out;
}

TEST(FaultPlan, RefusesScriptedConnectAttemptsOnly) {
  TcpListener listener;
  ScopedFaultPlan scope(
      FaultPlan().match_port(listener.port()).refuse_connect(0).refuse_connect(2));

  EXPECT_THROW(TcpStream::connect_loopback(listener.port()), std::system_error);
  EXPECT_NO_THROW(TcpStream::connect_loopback(listener.port()));
  EXPECT_THROW(TcpStream::connect_loopback(listener.port()), std::system_error);
  EXPECT_NO_THROW(TcpStream::connect_loopback(listener.port()));

  const FaultStats stats = scope.stats();
  EXPECT_EQ(stats.connect_attempts, 4u);
  EXPECT_EQ(stats.connects_refused, 2u);
}

TEST(FaultPlan, PortFilterLeavesOtherConnectsAlone) {
  TcpListener victim;
  TcpListener bystander;
  ScopedFaultPlan scope(
      FaultPlan().match_port(victim.port()).refuse_connects(0, 100));

  EXPECT_THROW(TcpStream::connect_loopback(victim.port()), std::system_error);
  // A different port is neither refused nor counted.
  EXPECT_NO_THROW(TcpStream::connect_loopback(bystander.port()));
  EXPECT_EQ(scope.stats().connect_attempts, 1u);
}

TEST(FaultPlan, CapSendChunkForcesPartialWritesButDeliversEverything) {
  TcpListener listener;
  ScopedFaultPlan scope(
      FaultPlan().match_port(listener.port()).cap_send_chunk(1));

  TcpStream client = TcpStream::connect_loopback(listener.port());
  auto server = listener.accept();
  ASSERT_TRUE(server.has_value());

  const std::vector<std::byte> payload = bytes_of("partial-write-торture");
  write_frame(client, payload);
  const auto received = read_frame(*server);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, payload);
}

TEST(FaultPlan, DropSendFrameTearsTheFrameMidWire) {
  TcpListener listener;
  ScopedFaultPlan scope(
      FaultPlan().match_port(listener.port()).drop_send_frame(0, 2));

  TcpStream client = TcpStream::connect_loopback(listener.port());
  auto server = listener.accept();
  ASSERT_TRUE(server.has_value());

  EXPECT_THROW(write_frame(client, bytes_of("doomed")), std::system_error);
  EXPECT_FALSE(client.valid());  // the injector killed the connection
  // The peer got two header bytes then EOF: a torn frame, not a clean close.
  EXPECT_THROW((void)read_frame(*server, Millis{2000}), std::system_error);
  EXPECT_EQ(scope.stats().drops_injected, 1u);
}

TEST(FaultPlan, DropRecvFrameLosesTheReplyNotTheSendersCommit) {
  TcpListener listener;
  ScopedFaultPlan scope(
      FaultPlan().match_port(listener.port()).drop_recv_frame(0));

  TcpStream client = TcpStream::connect_loopback(listener.port());
  auto server = listener.accept();
  ASSERT_TRUE(server.has_value());

  // The (untracked) server side sends its reply successfully...
  write_frame(*server, bytes_of("ack"));
  // ...but the tracked client never sees it: the connection dies first.
  EXPECT_THROW((void)read_frame(client, Millis{2000}), std::system_error);
  EXPECT_FALSE(client.valid());
}

TEST(FaultPlan, SecondConcurrentPlanRejected) {
  ScopedFaultPlan scope{FaultPlan()};
  EXPECT_THROW(ScopedFaultPlan{FaultPlan()}, std::logic_error);
}

TEST(FaultPlan, UninstalledPlanHasNoEffect) {
  TcpListener listener;
  {
    ScopedFaultPlan scope(
        FaultPlan().match_port(listener.port()).refuse_connects(0, 100));
    EXPECT_THROW(TcpStream::connect_loopback(listener.port()), std::system_error);
  }
  EXPECT_NO_THROW(TcpStream::connect_loopback(listener.port()));
}

}  // namespace
}  // namespace joules
