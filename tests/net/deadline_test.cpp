// Deadline semantics for the socket layer, including the regression test for
// the EINTR bug: wait_ready used to restart its *full* timeout after every
// EINTR, so a stream of signals could extend a bounded wait indefinitely.
// The injected poll() seam simulates that signal storm deterministically.
#include "net/socket.hpp"

#include <gtest/gtest.h>
#include <poll.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <thread>

namespace joules {
namespace {

using Clock = std::chrono::steady_clock;

Millis elapsed_since(Clock::time_point start) {
  return std::chrono::duration_cast<Millis>(Clock::now() - start);
}

TEST(Deadline, AfterAndNeverBasics) {
  const Deadline soon = Deadline::after(Millis{50});
  EXPECT_FALSE(soon.is_never());
  EXPECT_FALSE(soon.expired());
  EXPECT_GT(soon.remaining().count(), 0);
  EXPECT_LE(soon.remaining(), Millis{50});

  const Deadline past = Deadline::after(Millis{0});
  EXPECT_TRUE(past.expired());
  EXPECT_EQ(past.remaining(), Millis{0});

  const Deadline never = Deadline::never();
  EXPECT_TRUE(never.is_never());
  EXPECT_FALSE(never.expired());
  EXPECT_EQ(never.remaining(), Millis::max());
}

TEST(Deadline, WaitReadableHonoursBudgetOnSilentPeer) {
  TcpListener listener;
  TcpStream client = TcpStream::connect_loopback(listener.port());
  const auto start = Clock::now();
  EXPECT_FALSE(client.wait_readable(Millis{150}));  // nobody ever writes
  const Millis took = elapsed_since(start);
  EXPECT_GE(took, Millis{100});
  EXPECT_LT(took, Millis{1500});
}

// Simulated signal storm: every poll() attempt is interrupted after ~20 ms.
// A correct implementation charges those 20 ms against the one absolute
// deadline and still returns at ~200 ms; the old per-retry-timeout code
// would never converge while the storm lasted.
struct InterruptingPoll {
  static std::atomic<int> calls;
  static int poll(pollfd*, unsigned long, int) {
    calls.fetch_add(1);
    std::this_thread::sleep_for(Millis{20});
    errno = EINTR;
    return -1;
  }
};
std::atomic<int> InterruptingPoll::calls{0};

TEST(Deadline, EintrStormCannotExtendTheWait) {
  TcpListener listener;
  TcpStream client = TcpStream::connect_loopback(listener.port());

  InterruptingPoll::calls.store(0);
  const auto previous = net_testing::set_poll_fn(&InterruptingPoll::poll);
  const auto start = Clock::now();
  bool readable = true;
  try {
    readable = client.wait_readable(Millis{200});
  } catch (...) {
    net_testing::set_poll_fn(previous);
    throw;
  }
  net_testing::set_poll_fn(previous);

  const Millis took = elapsed_since(start);
  EXPECT_FALSE(readable);
  // One absolute deadline: ~10 interrupted polls x 20 ms, then timeout. The
  // buggy version would still be restarting its full 200 ms budget here.
  EXPECT_GE(took, Millis{180});
  EXPECT_LT(took, Millis{450});
  EXPECT_GE(InterruptingPoll::calls.load(), 5);
}

TEST(Deadline, RecvExactSharesOneDeadlineAcrossChunks) {
  TcpListener listener;
  TcpStream client = TcpStream::connect_loopback(listener.port());
  auto accepted = listener.accept();
  ASSERT_TRUE(accepted.has_value());

  // Trickle 3 of 8 requested bytes, then go silent: the recv must give up
  // once the single 300 ms budget is gone, not 300 ms after the last chunk.
  std::thread feeder([&accepted] {
    const std::byte chunk[3] = {std::byte{1}, std::byte{2}, std::byte{3}};
    accepted->send_all(chunk);
  });
  std::byte out[8];
  const auto start = Clock::now();
  EXPECT_THROW((void)client.recv_exact(out, Millis{300}), std::system_error);
  const Millis took = elapsed_since(start);
  EXPECT_LT(took, Millis{1500});
  feeder.join();
}

TEST(Deadline, ExpiredDeadlineStillChecksInstantReadiness) {
  TcpListener listener;
  TcpStream client = TcpStream::connect_loopback(listener.port());
  auto accepted = listener.accept();
  ASSERT_TRUE(accepted.has_value());
  const std::byte byte[1] = {std::byte{7}};
  accepted->send_all(byte);
  // Give loopback delivery a moment, then ask with a zero budget: data that
  // is already there must be visible.
  std::this_thread::sleep_for(Millis{50});
  EXPECT_TRUE(client.wait_readable(Millis{0}));
}

}  // namespace
}  // namespace joules
