#include "model/interface_profile.hpp"

#include "util/strings.hpp"
#include "util/units.hpp"

namespace joules {

std::string_view to_string(PortType type) noexcept {
  switch (type) {
    case PortType::kSFP: return "SFP";
    case PortType::kSFPPlus: return "SFP+";
    case PortType::kQSFP: return "QSFP";
    case PortType::kQSFP28: return "QSFP28";
    case PortType::kQSFPDD: return "QSFP-DD";
    case PortType::kRJ45: return "RJ45";
  }
  return "unknown";
}

std::string_view to_string(TransceiverKind kind) noexcept {
  switch (kind) {
    case TransceiverKind::kNone: return "none";
    case TransceiverKind::kPassiveDAC: return "Passive DAC";
    case TransceiverKind::kSR4: return "SR4";
    case TransceiverKind::kLR: return "LR";
    case TransceiverKind::kLR4: return "LR4";
    case TransceiverKind::kFR4: return "FR4";
    case TransceiverKind::kBaseT: return "T";
  }
  return "unknown";
}

std::string_view to_string(LineRate rate) noexcept {
  switch (rate) {
    case LineRate::kM100: return "100M";
    case LineRate::kG1: return "1G";
    case LineRate::kG10: return "10G";
    case LineRate::kG25: return "25G";
    case LineRate::kG40: return "40G";
    case LineRate::kG50: return "50G";
    case LineRate::kG100: return "100G";
    case LineRate::kG400: return "400G";
  }
  return "unknown";
}

std::optional<PortType> parse_port_type(std::string_view text) {
  const std::string t = to_lower(trim(text));
  if (t == "sfp") return PortType::kSFP;
  if (t == "sfp+" || t == "sfpplus") return PortType::kSFPPlus;
  if (t == "qsfp") return PortType::kQSFP;
  if (t == "qsfp28" || t == "qspf28") return PortType::kQSFP28;  // paper's typo included
  if (t == "qsfp-dd" || t == "qsfpdd") return PortType::kQSFPDD;
  if (t == "rj45" || t == "rj-45") return PortType::kRJ45;
  return std::nullopt;
}

std::optional<TransceiverKind> parse_transceiver_kind(std::string_view text) {
  const std::string t = to_lower(trim(text));
  if (t == "none" || t.empty()) return TransceiverKind::kNone;
  if (t == "passive dac" || t == "dac") return TransceiverKind::kPassiveDAC;
  if (t == "sr4") return TransceiverKind::kSR4;
  if (t == "lr") return TransceiverKind::kLR;
  if (t == "lr4") return TransceiverKind::kLR4;
  if (t == "fr4") return TransceiverKind::kFR4;
  if (t == "t" || t == "base-t" || t == "baset") return TransceiverKind::kBaseT;
  return std::nullopt;
}

std::optional<LineRate> parse_line_rate(std::string_view text) {
  const std::string t = to_lower(trim(text));
  if (t == "100m") return LineRate::kM100;
  if (t == "1g") return LineRate::kG1;
  if (t == "10g") return LineRate::kG10;
  if (t == "25g") return LineRate::kG25;
  if (t == "40g") return LineRate::kG40;
  if (t == "50g") return LineRate::kG50;
  if (t == "100g") return LineRate::kG100;
  if (t == "400g") return LineRate::kG400;
  return std::nullopt;
}

double line_rate_bps(LineRate rate) noexcept {
  switch (rate) {
    case LineRate::kM100: return mbps_to_bps(100);
    case LineRate::kG1: return gbps_to_bps(1);
    case LineRate::kG10: return gbps_to_bps(10);
    case LineRate::kG25: return gbps_to_bps(25);
    case LineRate::kG40: return gbps_to_bps(40);
    case LineRate::kG50: return gbps_to_bps(50);
    case LineRate::kG100: return gbps_to_bps(100);
    case LineRate::kG400: return gbps_to_bps(400);
  }
  return 0.0;
}

std::string to_string(const ProfileKey& key) {
  std::string out;
  out += to_string(key.port);
  out += '/';
  out += to_string(key.transceiver);
  out += '/';
  out += to_string(key.rate);
  return out;
}

double InterfaceProfile::dynamic_power_w(double rate_bps,
                                         double rate_pps) const noexcept {
  if (rate_bps <= 0.0 && rate_pps <= 0.0) return 0.0;
  return energy_per_bit_j * rate_bps + energy_per_packet_j * rate_pps +
         offset_power_w;
}

}  // namespace joules
