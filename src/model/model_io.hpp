// PowerModel (de)serialization.
//
// Models round-trip through a CSV schema mirroring the paper's Table 2 /
// Table 6 layout: one `base` row and one row per interface profile. Energies
// are stored in pJ (E_bit) and nJ (E_pkt) like the paper's tables.
#pragma once

#include <string>

#include "model/power_model.hpp"
#include "util/csv.hpp"

namespace joules {

[[nodiscard]] CsvTable model_to_csv(const PowerModel& model);
[[nodiscard]] PowerModel model_from_csv(const CsvTable& table);

[[nodiscard]] std::string model_to_string(const PowerModel& model);
[[nodiscard]] PowerModel model_from_string(const std::string& text);

// A Table-2-style pretty rendering: one row per profile with the paper's
// units (W, pJ, nJ).
[[nodiscard]] std::string render_model_table(const std::string& device_name,
                                             const PowerModel& model);

}  // namespace joules
