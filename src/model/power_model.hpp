// The router power model — the paper's primary contribution (§4).
//
//   P = P_sta(C) + P_dyn(C, L)                                       (Eq. 1)
//   P_sta(C) = P_base + sum_i P_interface(c_i)                       (Eq. 2)
//   P_interface(c_i) = P_port(c_i) + P_trx,in + P_trx,up(c_i)        (Eq. 3/4)
//   P_dyn(C, L) = sum_i (E_bit r_i + E_pkt p_i + P_offset(c_i))      (Eq. 5/6)
//
// A `PowerModel` is P_base plus a set of `InterfaceProfile`s keyed by
// (port type, transceiver, line rate). Predictions take a router
// configuration (one `InterfaceConfig` per interface) and a load vector.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "model/interface_profile.hpp"

namespace joules {

// Administrative / operational state of one interface, as the model sees it.
enum class InterfaceState : std::uint8_t {
  kEmpty,       // no transceiver plugged
  kPlugged,     // transceiver plugged, port configured down
  kEnabled,     // port configured up, link not established
  kUp,          // link established
};

struct InterfaceConfig {
  std::string name;             // e.g. "et-0/0/12"
  ProfileKey profile;
  InterfaceState state = InterfaceState::kEmpty;
};

// Traffic on one interface; rates are summed over both directions (§4.2).
struct InterfaceLoad {
  double rate_bps = 0.0;
  double rate_pps = 0.0;
};

// Per-term decomposition of a prediction, for the analyses in §7/§8 that ask
// "how much of the total is transceivers?" or "what do we save by taking a
// port down?".
struct PowerBreakdown {
  double base_w = 0.0;
  double port_w = 0.0;
  double trx_in_w = 0.0;
  double trx_up_w = 0.0;
  double offset_w = 0.0;
  double bit_w = 0.0;
  double pkt_w = 0.0;

  [[nodiscard]] double static_w() const noexcept {
    return base_w + port_w + trx_in_w + trx_up_w;
  }
  [[nodiscard]] double dynamic_w() const noexcept {
    return offset_w + bit_w + pkt_w;
  }
  [[nodiscard]] double transceiver_w() const noexcept {
    return trx_in_w + trx_up_w;
  }
  [[nodiscard]] double total_w() const noexcept {
    return static_w() + dynamic_w();
  }
};

class PowerModel {
 public:
  PowerModel() = default;
  explicit PowerModel(double base_power_w) : base_power_w_(base_power_w) {}

  [[nodiscard]] double base_power_w() const noexcept { return base_power_w_; }
  void set_base_power_w(double value) noexcept {
    base_power_w_ = value;
    ++revision_;
  }

  // Monotonic mutation counter: bumped by every add_profile /
  // set_base_power_w. Compiled artifacts (PowerPlan) snapshot it so callers
  // can detect a stale plan without comparing whole models. Not part of the
  // model's value: copies carry it along, but operator== ignores it.
  [[nodiscard]] std::uint64_t revision() const noexcept { return revision_; }

  void add_profile(InterfaceProfile profile);
  [[nodiscard]] const InterfaceProfile* find_profile(const ProfileKey& key) const;
  // Falls back to a profile with the same port+transceiver at the nearest
  // lower rate when the exact rate is missing (useful when an inventory
  // lists rates the lab sweep did not cover). Returns nullptr if nothing
  // matches the port+transceiver pair at all.
  [[nodiscard]] const InterfaceProfile* find_profile_relaxed(const ProfileKey& key) const;
  [[nodiscard]] std::size_t profile_count() const noexcept { return profiles_.size(); }
  [[nodiscard]] std::vector<InterfaceProfile> profiles() const;

  // Static-power contribution of a single interface in a given state.
  [[nodiscard]] double interface_static_w(const InterfaceConfig& config) const;

  // Full prediction. `loads` may be empty (static-only) or must match
  // `configs` in size. Interfaces whose profile is unknown contribute only to
  // `unmatched_interfaces`.
  struct Prediction {
    PowerBreakdown breakdown;
    std::vector<std::string> unmatched_interfaces;
    [[nodiscard]] double total_w() const noexcept { return breakdown.total_w(); }
  };
  [[nodiscard]] Prediction predict(std::span<const InterfaceConfig> configs,
                                   std::span<const InterfaceLoad> loads = {}) const;

  // What the model says is saved by bringing one `kUp` interface to
  // `kPlugged` (i.e. turning the port down without unplugging): P_port +
  // P_trx,up plus its dynamic power. This is the §8 link-sleeping saving.
  [[nodiscard]] double port_down_saving_w(const ProfileKey& key,
                                          const InterfaceLoad& load = {}) const;

  friend bool operator==(const PowerModel& lhs, const PowerModel& rhs) {
    return lhs.base_power_w_ == rhs.base_power_w_ &&
           lhs.profiles_ == rhs.profiles_;
  }

 private:
  double base_power_w_ = 0.0;
  std::map<ProfileKey, InterfaceProfile> profiles_;
  std::uint64_t revision_ = 0;
};

}  // namespace joules
