// Interface power profiles.
//
// §4.2: the power model has one constant term (P_base) and six terms *per
// interface type and configuration*: P_port, P_trx_in, P_trx_up, E_bit,
// E_pkt, and P_offset. An interface type is identified by the (port type,
// transceiver kind, line rate) triple — e.g. (QSFP28, Passive DAC, 100G).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace joules {

enum class PortType : std::uint8_t {
  kSFP,
  kSFPPlus,
  kQSFP,
  kQSFP28,
  kQSFPDD,
  kRJ45,
};

enum class TransceiverKind : std::uint8_t {
  kNone,        // empty cage
  kPassiveDAC,  // passive direct-attach copper
  kSR4,         // short-reach optic
  kLR,          // long-reach optic (single lambda)
  kLR4,         // long-reach optic (4 lambdas)
  kFR4,         // 2 km optic, 400G
  kBaseT,       // electrical (RJ45 / SFP-T)
};

// Configured line rates present in the paper's tables.
enum class LineRate : std::uint8_t {
  kM100,  // 100 Mbps
  kG1,
  kG10,
  kG25,
  kG40,
  kG50,
  kG100,
  kG400,
};

[[nodiscard]] std::string_view to_string(PortType type) noexcept;
[[nodiscard]] std::string_view to_string(TransceiverKind kind) noexcept;
[[nodiscard]] std::string_view to_string(LineRate rate) noexcept;

[[nodiscard]] std::optional<PortType> parse_port_type(std::string_view text);
[[nodiscard]] std::optional<TransceiverKind> parse_transceiver_kind(std::string_view text);
[[nodiscard]] std::optional<LineRate> parse_line_rate(std::string_view text);

// Configured line rate in bits/second.
[[nodiscard]] double line_rate_bps(LineRate rate) noexcept;

// Identifies an interface power profile.
struct ProfileKey {
  PortType port = PortType::kQSFP28;
  TransceiverKind transceiver = TransceiverKind::kPassiveDAC;
  LineRate rate = LineRate::kG100;

  friend auto operator<=>(const ProfileKey&, const ProfileKey&) = default;
};

[[nodiscard]] std::string to_string(const ProfileKey& key);

// The six per-interface model parameters of §4.2.
struct InterfaceProfile {
  ProfileKey key;
  double port_power_w = 0.0;        // P_port: router-side cost of an active port
  double trx_in_power_w = 0.0;      // P_trx,in: cost of a plugged transceiver
  double trx_up_power_w = 0.0;      // P_trx,up: extra cost once the interface is up
  double energy_per_bit_j = 0.0;    // E_bit
  double energy_per_packet_j = 0.0; // E_pkt
  double offset_power_w = 0.0;      // P_offset: first-packet step (SerDes wakeup etc.)

  friend bool operator==(const InterfaceProfile&, const InterfaceProfile&) = default;

  // Static power of one interface with this profile, P_interface = P_port +
  // P_trx (Eq. 3/4), by admin state:
  //   plugged only      -> P_trx,in
  //   port enabled      -> P_trx,in + P_port
  //   interface up      -> P_trx,in + P_port + P_trx,up
  [[nodiscard]] double plugged_power_w() const noexcept { return trx_in_power_w; }
  [[nodiscard]] double enabled_power_w() const noexcept {
    return trx_in_power_w + port_power_w;
  }
  [[nodiscard]] double up_power_w() const noexcept {
    return trx_in_power_w + port_power_w + trx_up_power_w;
  }

  // Dynamic power for bidirectionally summed bit and packet rates (Eq. 6,
  // plus the P_offset step when any traffic flows).
  [[nodiscard]] double dynamic_power_w(double rate_bps, double rate_pps) const noexcept;
};

}  // namespace joules
