#include "model/power_model.hpp"

#include <stdexcept>

namespace joules {

void PowerModel::add_profile(InterfaceProfile profile) {
  profiles_.insert_or_assign(profile.key, std::move(profile));
  ++revision_;
}

const InterfaceProfile* PowerModel::find_profile(const ProfileKey& key) const {
  const auto it = profiles_.find(key);
  return it == profiles_.end() ? nullptr : &it->second;
}

const InterfaceProfile* PowerModel::find_profile_relaxed(
    const ProfileKey& key) const {
  if (const InterfaceProfile* exact = find_profile(key)) return exact;
  const InterfaceProfile* best = nullptr;
  for (const auto& [candidate_key, profile] : profiles_) {
    if (candidate_key.port != key.port ||
        candidate_key.transceiver != key.transceiver) {
      continue;
    }
    if (best == nullptr ||
        (candidate_key.rate <= key.rate && candidate_key.rate > best->key.rate) ||
        (best->key.rate > key.rate && candidate_key.rate < best->key.rate)) {
      best = &profile;
    }
  }
  return best;
}

std::vector<InterfaceProfile> PowerModel::profiles() const {
  std::vector<InterfaceProfile> out;
  out.reserve(profiles_.size());
  for (const auto& [key, profile] : profiles_) out.push_back(profile);
  return out;
}

double PowerModel::interface_static_w(const InterfaceConfig& config) const {
  if (config.state == InterfaceState::kEmpty) return 0.0;
  const InterfaceProfile* profile = find_profile_relaxed(config.profile);
  if (profile == nullptr) return 0.0;
  switch (config.state) {
    case InterfaceState::kEmpty: return 0.0;
    case InterfaceState::kPlugged: return profile->plugged_power_w();
    case InterfaceState::kEnabled: return profile->enabled_power_w();
    case InterfaceState::kUp: return profile->up_power_w();
  }
  return 0.0;
}

PowerModel::Prediction PowerModel::predict(
    std::span<const InterfaceConfig> configs,
    std::span<const InterfaceLoad> loads) const {
  if (!loads.empty() && loads.size() != configs.size()) {
    throw std::invalid_argument("PowerModel::predict: loads/configs size mismatch");
  }

  Prediction prediction;
  PowerBreakdown& b = prediction.breakdown;
  b.base_w = base_power_w_;

  for (std::size_t i = 0; i < configs.size(); ++i) {
    const InterfaceConfig& config = configs[i];
    if (config.state == InterfaceState::kEmpty) continue;

    const InterfaceProfile* profile = find_profile_relaxed(config.profile);
    if (profile == nullptr) {
      prediction.unmatched_interfaces.push_back(config.name);
      continue;
    }

    b.trx_in_w += profile->trx_in_power_w;
    if (config.state == InterfaceState::kEnabled ||
        config.state == InterfaceState::kUp) {
      b.port_w += profile->port_power_w;
    }
    if (config.state == InterfaceState::kUp) {
      b.trx_up_w += profile->trx_up_power_w;
      if (!loads.empty()) {
        const InterfaceLoad& load = loads[i];
        if (load.rate_bps > 0.0 || load.rate_pps > 0.0) {
          b.bit_w += profile->energy_per_bit_j * load.rate_bps;
          b.pkt_w += profile->energy_per_packet_j * load.rate_pps;
          b.offset_w += profile->offset_power_w;
        }
      }
    }
  }
  return prediction;
}

double PowerModel::port_down_saving_w(const ProfileKey& key,
                                      const InterfaceLoad& load) const {
  const InterfaceProfile* profile = find_profile_relaxed(key);
  if (profile == nullptr) return 0.0;
  return profile->port_power_w + profile->trx_up_power_w +
         profile->dynamic_power_w(load.rate_bps, load.rate_pps);
}

}  // namespace joules
