#include "model/model_io.hpp"

#include <stdexcept>

#include "util/ascii_chart.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

const std::vector<std::string> kHeader = {
    "row",  "port",   "transceiver", "rate",  "P_base_W", "P_port_W",
    "P_trx_in_W", "P_trx_up_W", "E_bit_pJ", "E_pkt_nJ", "P_offset_W"};

}  // namespace

CsvTable model_to_csv(const PowerModel& model) {
  CsvTable table(kHeader);
  table.add_row({"base", "", "", "", format_number(model.base_power_w()), "", "",
                 "", "", "", ""});
  for (const InterfaceProfile& p : model.profiles()) {
    table.add_row({
        "profile",
        std::string(to_string(p.key.port)),
        std::string(to_string(p.key.transceiver)),
        std::string(to_string(p.key.rate)),
        "",
        format_number(p.port_power_w),
        format_number(p.trx_in_power_w),
        format_number(p.trx_up_power_w),
        format_number(joules_to_picojoules(p.energy_per_bit_j), 3),
        format_number(joules_to_nanojoules(p.energy_per_packet_j), 3),
        format_number(p.offset_power_w),
    });
  }
  return table;
}

PowerModel model_from_csv(const CsvTable& table) {
  PowerModel model;
  for (std::size_t i = 0; i < table.row_count(); ++i) {
    const std::string kind = table.cell(i, "row");
    if (kind == "base") {
      model.set_base_power_w(table.cell_double(i, "P_base_W"));
      continue;
    }
    if (kind != "profile") {
      throw std::invalid_argument("model_from_csv: unknown row kind '" + kind + "'");
    }
    InterfaceProfile p;
    const auto port = parse_port_type(table.cell(i, "port"));
    const auto trx = parse_transceiver_kind(table.cell(i, "transceiver"));
    const auto rate = parse_line_rate(table.cell(i, "rate"));
    if (!port || !trx || !rate) {
      throw std::invalid_argument("model_from_csv: unparsable profile key in row " +
                                  std::to_string(i));
    }
    p.key = ProfileKey{*port, *trx, *rate};
    p.port_power_w = table.cell_double(i, "P_port_W");
    p.trx_in_power_w = table.cell_double(i, "P_trx_in_W");
    p.trx_up_power_w = table.cell_double(i, "P_trx_up_W");
    p.energy_per_bit_j = picojoules_to_joules(table.cell_double(i, "E_bit_pJ"));
    p.energy_per_packet_j = nanojoules_to_joules(table.cell_double(i, "E_pkt_nJ"));
    p.offset_power_w = table.cell_double(i, "P_offset_W");
    model.add_profile(p);
  }
  return model;
}

std::string model_to_string(const PowerModel& model) {
  return model_to_csv(model).to_string();
}

PowerModel model_from_string(const std::string& text) {
  return model_from_csv(CsvTable::parse(text));
}

std::string render_model_table(const std::string& device_name,
                               const PowerModel& model) {
  std::vector<std::vector<std::string>> rows;
  bool first = true;
  for (const InterfaceProfile& p : model.profiles()) {
    rows.push_back({
        std::string(to_string(p.key.port)),
        std::string(to_string(p.key.transceiver)),
        std::string(to_string(p.key.rate)),
        first ? format_number(model.base_power_w(), 1) : "-",
        format_number(p.port_power_w, 2),
        format_number(p.trx_in_power_w, 2),
        format_number(p.trx_up_power_w, 2),
        format_number(joules_to_picojoules(p.energy_per_bit_j), 1),
        format_number(joules_to_nanojoules(p.energy_per_packet_j), 1),
        format_number(p.offset_power_w, 2),
    });
    first = false;
  }
  std::string out = "  " + device_name + "\n";
  out += render_text_table(
      {"Port", "Trans.", "Speed", "P_base[W]", "P_port[W]", "P_trx,in[W]",
       "P_trx,up[W]", "E_bit[pJ]", "E_pkt[nJ]", "P_offset[W]"},
      rows);
  return out;
}

}  // namespace joules
