#include "model/power_plan.hpp"

#include <stdexcept>

namespace joules {

PowerPlan PowerPlan::compile(const PowerModel& model,
                             std::span<const InterfaceConfig> configs) {
  PowerPlan plan;
  plan.config_count_ = configs.size();
  plan.model_revision_ = model.revision();
  plan.base_w_ = model.base_power_w();

  plan.up_index_.reserve(configs.size());
  plan.energy_per_bit_.reserve(configs.size());
  plan.energy_per_packet_.reserve(configs.size());
  plan.offset_w_.reserve(configs.size());

  // Mirrors the loop body of PowerModel::predict exactly: same skip rules,
  // same per-accumulator addition order. The static sums folded here are the
  // ones predict would produce for zero load.
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const InterfaceConfig& config = configs[i];
    if (config.state == InterfaceState::kEmpty) continue;

    const InterfaceProfile* profile = model.find_profile_relaxed(config.profile);
    if (profile == nullptr) {
      plan.unmatched_.push_back(config.name);
      continue;
    }

    plan.trx_in_w_ += profile->trx_in_power_w;
    if (config.state == InterfaceState::kEnabled ||
        config.state == InterfaceState::kUp) {
      plan.port_w_ += profile->port_power_w;
    }
    if (config.state == InterfaceState::kUp) {
      plan.trx_up_w_ += profile->trx_up_power_w;
      plan.up_index_.push_back(static_cast<std::uint32_t>(i));
      plan.energy_per_bit_.push_back(profile->energy_per_bit_j);
      plan.energy_per_packet_.push_back(profile->energy_per_packet_j);
      plan.offset_w_.push_back(profile->offset_power_w);
    }
  }
  return plan;
}

PowerBreakdown PowerPlan::evaluate(std::span<const InterfaceLoad> loads) const {
  if (!loads.empty() && loads.size() != config_count_) {
    throw std::invalid_argument("PowerPlan::evaluate: loads/configs size mismatch");
  }

  PowerBreakdown b;
  b.base_w = base_w_;
  b.port_w = port_w_;
  b.trx_in_w = trx_in_w_;
  b.trx_up_w = trx_up_w_;

  if (!loads.empty()) {
    // The zero-load branch is kept (rather than a masked multiply-add) so the
    // accumulators match predict bit for bit, including the -0.0 corner.
    double bit_w = 0.0;
    double pkt_w = 0.0;
    double offset_w = 0.0;
    const std::size_t n = up_index_.size();
    for (std::size_t k = 0; k < n; ++k) {
      const InterfaceLoad& load = loads[up_index_[k]];
      if (load.rate_bps > 0.0 || load.rate_pps > 0.0) {
        bit_w += energy_per_bit_[k] * load.rate_bps;
        pkt_w += energy_per_packet_[k] * load.rate_pps;
        offset_w += offset_w_[k];
      }
    }
    b.bit_w = bit_w;
    b.pkt_w = pkt_w;
    b.offset_w = offset_w;
  }
  return b;
}

}  // namespace joules
