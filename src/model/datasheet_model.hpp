// The datasheet-based power model of El-Zahr et al. / Tabaeiaghdaei et al.
// ([16, 33] in the paper) — the baseline the fine-grained §4 model improves
// on. It interpolates linearly between a reported idle power and max power
// by throughput utilization:
//
//   P(u) = P_idle + (P_max - P_idle) * u,   u = throughput / max_bandwidth.
//
// §2 notes its limits: no transceiver accounting, and datasheet inputs that
// §3 shows are unreliable. The ablation bench quantifies both against the
// simulated ground truth.
#pragma once

#include <optional>

#include "datasheet/record.hpp"

namespace joules {

class DatasheetLinearModel {
 public:
  // `idle_power_w` < `max_power_w`, `max_bandwidth_bps` > 0.
  DatasheetLinearModel(double idle_power_w, double max_power_w,
                       double max_bandwidth_bps);

  // Builds the model from a datasheet record the way [16, 33] do: "typical"
  // power stands in for idle, max power caps the ramp. nullopt when the
  // record lacks the needed fields.
  static std::optional<DatasheetLinearModel> from_record(
      const DatasheetRecord& record);

  // Predicted power at a given carried throughput (clamped to the capacity).
  [[nodiscard]] double predict_w(double throughput_bps) const noexcept;

  [[nodiscard]] double idle_power_w() const noexcept { return idle_power_w_; }
  [[nodiscard]] double max_power_w() const noexcept { return max_power_w_; }
  [[nodiscard]] double max_bandwidth_bps() const noexcept { return max_bandwidth_bps_; }

 private:
  double idle_power_w_;
  double max_power_w_;
  double max_bandwidth_bps_;
};

}  // namespace joules
