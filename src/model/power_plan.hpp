// The columnar power-evaluation kernel.
//
// `PowerModel::predict` is the reference implementation of Eq. 1-6: per
// interface it resolves a profile through a `std::map` (plus the relaxed
// rate fallback) and branches on the admin state. That is the right shape
// for one-off predictions, but the network sweeps evaluate the *same*
// configuration thousands of times with only the loads changing — and there
// the map walks and state branches dominate the per-sample cost.
//
// A `PowerPlan` compiles a (model, configs) pair once into struct-of-arrays
// form:
//
//   * the static terms (P_base, sum P_port, sum P_trx,in, sum P_trx,up) are
//     folded at compile time, in exactly the accumulation order `predict`
//     uses, so they are constants of the plan;
//   * the dynamic coefficients (E_bit, E_pkt, P_offset) of the `kUp`
//     interfaces are packed into parallel arrays together with their load
//     index, so `evaluate` is a branch-light linear pass with no profile
//     lookups, no strings, and no per-interface state dispatch.
//
// The contract is *bit-identity*: for the configs it was compiled from,
// `plan.evaluate(loads)` equals `model.predict(configs, loads).breakdown`
// field for field, bit for bit (tests/model/power_plan_test.cpp sweeps this
// over randomized models/configs/loads). A plan is a snapshot: it must be
// recompiled after any mutation of the model (watch `PowerModel::revision`)
// or of the interface configs (callers own that dirty bit; see
// `SimulatedRouter`, which rebuilds its plan on interface-state changes and
// counts rebuilds for the obs layer).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/power_model.hpp"

namespace joules {

class PowerPlan {
 public:
  // An empty plan: zero interfaces, zero static power. Usable but useless;
  // compile() is the real constructor.
  PowerPlan() = default;

  // Compiles `model` against `configs`. Interfaces whose profile is unknown
  // are recorded in `unmatched()` and contribute nothing, exactly like
  // `predict`'s `unmatched_interfaces`.
  [[nodiscard]] static PowerPlan compile(const PowerModel& model,
                                         std::span<const InterfaceConfig> configs);

  // Bit-identical equivalent of `model.predict(configs, loads).breakdown`
  // for the compiled configs. `loads` is empty (static-only) or must have
  // one entry per compiled config (throws std::invalid_argument otherwise,
  // like `predict`).
  [[nodiscard]] PowerBreakdown evaluate(std::span<const InterfaceLoad> loads) const;

  // `evaluate(loads).total_w()` without materializing the breakdown at the
  // call site.
  [[nodiscard]] double total_w(std::span<const InterfaceLoad> loads) const {
    return evaluate(loads).total_w();
  }

  // Interfaces that had no (relaxed) profile at compile time, in config
  // order — mirrors `Prediction::unmatched_interfaces`.
  [[nodiscard]] const std::vector<std::string>& unmatched() const noexcept {
    return unmatched_;
  }
  [[nodiscard]] bool complete() const noexcept { return unmatched_.empty(); }

  // Number of configs the plan was compiled from (the required loads size).
  [[nodiscard]] std::size_t config_count() const noexcept { return config_count_; }
  // Number of `kUp` interfaces carrying dynamic terms.
  [[nodiscard]] std::size_t up_count() const noexcept { return up_index_.size(); }

  // The model revision captured at compile time; compare against the live
  // model's `revision()` to detect staleness.
  [[nodiscard]] std::uint64_t model_revision() const noexcept {
    return model_revision_;
  }

 private:
  // Static terms, folded at compile time in predict's accumulation order.
  double base_w_ = 0.0;
  double port_w_ = 0.0;
  double trx_in_w_ = 0.0;
  double trx_up_w_ = 0.0;

  // Parallel arrays over the `kUp` interfaces, ascending config order.
  std::vector<std::uint32_t> up_index_;  // index into the loads span
  std::vector<double> energy_per_bit_;
  std::vector<double> energy_per_packet_;
  std::vector<double> offset_w_;

  std::vector<std::string> unmatched_;
  std::size_t config_count_ = 0;
  std::uint64_t model_revision_ = 0;
};

}  // namespace joules
