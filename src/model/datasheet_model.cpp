#include "model/datasheet_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace joules {

DatasheetLinearModel::DatasheetLinearModel(double idle_power_w,
                                           double max_power_w,
                                           double max_bandwidth_bps)
    : idle_power_w_(idle_power_w),
      max_power_w_(max_power_w),
      max_bandwidth_bps_(max_bandwidth_bps) {
  if (idle_power_w < 0.0 || max_power_w < idle_power_w) {
    throw std::invalid_argument(
        "DatasheetLinearModel: need 0 <= idle <= max power");
  }
  if (max_bandwidth_bps <= 0.0) {
    throw std::invalid_argument("DatasheetLinearModel: bandwidth must be positive");
  }
}

std::optional<DatasheetLinearModel> DatasheetLinearModel::from_record(
    const DatasheetRecord& record) {
  std::optional<double> bandwidth = record.max_bandwidth_gbps;
  if (!bandwidth) bandwidth = bandwidth_from_ports_gbps(record);
  if (!bandwidth || *bandwidth <= 0.0) return std::nullopt;

  // [16, 33] use reported idle and max power; datasheets in the wild rarely
  // state idle, so "typical" stands in (and max falls back to 1.5x typical
  // when absent, mirroring the provisioning rule of thumb).
  const std::optional<double> idle = record.typical_power_w;
  if (!idle) return std::nullopt;
  const double max_power = record.max_power_w.value_or(*idle * 1.5);
  if (max_power < *idle) return std::nullopt;

  return DatasheetLinearModel(*idle, max_power, *bandwidth * 1e9);
}

double DatasheetLinearModel::predict_w(double throughput_bps) const noexcept {
  const double utilization =
      std::clamp(throughput_bps / max_bandwidth_bps_, 0.0, 1.0);
  return idle_power_w_ + (max_power_w_ - idle_power_w_) * utilization;
}

}  // namespace joules
