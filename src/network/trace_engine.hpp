// The parallel network trace engine.
//
// Every headline experiment funnels through the same sweep: for each
// timestep over a months-long study, evaluate all routers of the simulated
// network. `TraceEngine` runs that time × router sweep on a `ThreadPool`,
// sharded **by router**: each `SimulatedRouter` (and its sync cache) is
// touched by exactly one worker, which is the thread-safety contract
// `NetworkSimulation` documents, and each worker slot reuses one
// interface-load scratch buffer, so the inner loop allocates nothing.
//
// Determinism: every sample is a pure function of (router, t), workers write
// into per-(router|interface, t) slots of a preallocated block buffer, and
// the reduction over routers/interfaces runs serially in the exact order the
// original serial loops used. Results are therefore bit-identical to the
// historical serial implementation for any worker count.
#pragma once

#include <filesystem>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "network/dataset.hpp"
#include "network/simulation.hpp"
#include "network/trace_store.hpp"
#include "obs/registry.hpp"
#include "util/thread_pool.hpp"

namespace joules {

struct TraceEngineOptions {
  std::size_t workers = 0;  // 0 = hardware concurrency (ignored with an external pool)
  // Upper bound on the sweep's block buffer (per-interface contributions for
  // a window of timesteps). Only affects memory/locality, never results.
  std::size_t max_block_bytes = 8u << 20;
  // Observability (optional, and inert with JOULES_OBS=OFF). When `registry`
  // is set, sweeps record work counters (trace.samples, trace.inactive_skips,
  // trace.blocks, ...) and phase spans; it must have at least as many shards
  // as the engine has workers (ctor-checked) since worker `slot` writes shard
  // `slot`. When `manifest_path` is also set, network_traces() writes a run
  // manifest there on completion. Attaching a registry never changes domain
  // output — sweeps stay bit-identical (tests/obs/golden_obs_test.cpp).
  obs::Registry* registry = nullptr;
  std::filesystem::path manifest_path{};
  // Incremental sweep (opt-in). 0 — the default — is the exact sweep: every
  // active (router, timestep) sample is computed, bit-identical to the
  // historical serial implementation. A positive value Q switches
  // network_traces() to sample-and-hold semantics: a router's sample is
  // recomputed only on timesteps where its override segment changed
  // (NetworkSimulation::override_segment — the dirty-tracking seam), its
  // active window opened, or the sweep crossed a Q-second bucket boundary
  // (floor((t - begin) / Q) changed); between recompute points the previous
  // power sample and per-interface traffic contributions are carried
  // forward. That is a *versioned* semantic, not an approximation bug:
  // workloads vary every timestep (diurnal/growth/jitter), so honest reuse
  // must quantize them — see DESIGN.md. For a fixed Q the result is again
  // bit-identical across worker counts and block sizes, and a sweep whose
  // step >= Q degenerates to the exact sweep.
  SimTime reuse_quantum_s = 0;
};

class TraceEngine {
 public:
  // Owns a pool with `options.workers` workers.
  explicit TraceEngine(const NetworkSimulation& sim,
                       TraceEngineOptions options = {});
  // Borrows `pool` (which must outlive the engine).
  TraceEngine(const NetworkSimulation& sim, ThreadPool& pool,
              TraceEngineOptions options = {});

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return pool_->worker_count();
  }

  // Parallel equivalents of the serial dataset/hypnos sweeps. Bit-identical
  // to the serial implementations for any worker count.
  [[nodiscard]] NetworkTraces network_traces(SimTime begin, SimTime end,
                                             SimTime step);

  // The streaming sweep: identical aggregate result (bit for bit) to
  // network_traces, but each completed time-block is additionally handed to
  // `sink` as immutable SoA columns (per-router power, per-interface traffic
  // contributions, per-row totals) before its buffers are recycled. This is
  // the bounded-memory path for full-resolution exports at federated scale:
  // peak resident sample memory is a function of
  // TraceEngineOptions::max_block_bytes, never of the sweep length, and the
  // store's trace.blocks_streamed / trace.peak_resident_samples counters
  // record exactly that for the scale-tier CI gate. The sink runs on the
  // sweep thread between blocks; block spans die when it returns.
  [[nodiscard]] NetworkTraces stream_traces(SimTime begin, SimTime end,
                                            SimTime step,
                                            const TraceStore::BlockSink& sink);

  // Total wall power over all routers at `t` (the what-if scenario probe).
  [[nodiscard]] double network_power_w(SimTime t);

  // SNMP power median per router over [begin, end); nullopt where the model
  // does not report (or the router is never active in the window).
  [[nodiscard]] std::vector<std::optional<double>> snmp_medians(
      SimTime begin, SimTime end, SimTime step);

  // §9.2 PSU snapshots, one per requested instant.
  [[nodiscard]] std::vector<std::vector<PsuObservation>> psu_snapshots(
      std::span<const SimTime> times);
  [[nodiscard]] std::vector<PsuObservation> psu_snapshot(SimTime t);

  // Mean per-internal-link offered load over [begin, end); sharded by link
  // (interface-load queries mutate no device state).
  [[nodiscard]] std::vector<double> average_link_loads_bps(SimTime begin,
                                                           SimTime end,
                                                           SimTime step);

 private:
  std::vector<InterfaceLoad>& scratch(std::size_t slot) { return scratch_[slot]; }

  void init();
  [[nodiscard]] NetworkTraces stream_traces_impl(
      SimTime begin, SimTime end, SimTime step,
      const TraceStore::BlockSink& sink);
  void write_sweep_manifest(SimTime begin, SimTime end, SimTime step) const;

  const NetworkSimulation& sim_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;
  TraceEngineOptions options_;
  std::vector<std::size_t> iface_offset_;  // router -> first flat iface index
  std::size_t iface_total_ = 0;
  std::vector<std::vector<InterfaceLoad>> scratch_;  // one per worker slot

  // Incremental-sweep carry (reuse_quantum_s > 0 only). Indexed by router /
  // flat interface, so carries survive block boundaries and worker
  // reassignment; reset at every sweep start. Written under the per-router
  // sharding contract, like the devices themselves.
  struct ReuseCarry {
    double power = 0.0;
    // The carried sample holds until the first recompute point after it:
    // min(end of its override segment, end of its quantum bucket). Within a
    // sweep each router's time only moves forward, so `t < hold_until` is
    // exactly "same segment and same bucket" — one comparison instead of an
    // upper_bound and a division per reused sample.
    SimTime hold_until = 0;
    bool valid = false;
  };
  std::vector<ReuseCarry> carry_;      // per router
  std::vector<double> carry_contrib_;  // per flat iface: carried rate/divisor
};

}  // namespace joules
