// The incremental what-if query engine.
//
// `Scenario` answers "what do these measures save together" as a one-shot:
// every step re-measures the whole fleet. An operator console (or a search
// over candidate measures) instead asks a long *stream* of queries against
// the same fleet — sleep these links, swap the PSU mode, unplug the spares,
// decommission that PoP — where each mutation touches a handful of routers.
// `WhatIfEngine` keeps the simulation alive across queries and recomputes
// only what a mutation invalidated:
//
//   * Per-router power cache. Every router's last wall-power evaluation is
//     cached under its configuration fingerprint
//     (`NetworkSimulation::config_fingerprint` — active window, PSU mode,
//     override-applied interface states, eval time). A query re-fingerprints
//     only the routers its mutation marked dirty; an unchanged fingerprint
//     or a memoized prior fingerprint (toggled mutations) skips the power
//     model entirely. Clean routers carry their cached sample.
//   * Feasibility memo. Routing-aware sleep checks are memoized under a
//     digest of the routing state (committed sleeps + decommissions) and the
//     candidate link, so a probe followed by a commit — or adjacent queries
//     over overlapping link sets — pays for each BFS + ceiling check once.
//
// Sleeping is *routing-aware* (per Giroire et al.): a link may only sleep if
// its traffic reroutes onto a surviving shortest path whose links all stay
// under the utilization ceiling — capacities taken as the min of both
// endpoint rates — and the engine maintains the post-reroute load matrix
// (`link_loads_bps()`) so later queries, and `Scenario` steps composed on
// top, see rerouted traffic rather than the original matrix.
//
// Determinism contract: every answer's `network_power_w` is bit-identical
// to a from-scratch full recomputation (`TraceEngine::network_power_w` on a
// fresh simulation with the same mutations applied) for any worker count —
// cached samples are bitwise copies of what a recompute would produce, and
// the final fold runs serially in ascending router order.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "network/simulation.hpp"
#include "obs/registry.hpp"
#include "sleep/hypnos.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace joules {

struct WhatIfOptions {
  std::size_t workers = 1;  // sizes the recompute pool (1 = inline)
  HypnosOptions hypnos;     // post-reroute ceiling for sleep queries
  // whatif.* counters land in shard 0 (queries run on the control thread).
  obs::Registry* registry = nullptr;
  // Per-link average loads the routing checks run against. Empty = sweep the
  // window ending at eval_at with TraceEngine::average_link_loads_bps.
  std::vector<double> link_loads_bps;
  SimTime load_window_s = kSecondsPerDay;
  SimTime load_step_s = kSecondsPerHour;
};

struct WhatIfAnswer {
  std::string name;
  double network_power_w = 0.0;
  double saved_vs_baseline_w = 0.0;
  std::size_t routers_recomputed = 0;  // power-model evaluations this query
  std::size_t cache_hits = 0;          // clean carries + fingerprint memo hits
  std::vector<int> accepted_links;     // sleep queries: links that can sleep
  std::vector<int> rejected_links;     // sleep queries: infeasible links
};

class WhatIfEngine {
 public:
  // Takes ownership of a fresh simulation; `eval_at` is the instant every
  // answer's power reading uses.
  WhatIfEngine(NetworkSimulation sim, SimTime eval_at,
               WhatIfOptions options = {});

  // Measures the untouched fleet and seeds the power cache; must be the
  // first query.
  double baseline_w();

  // Commits the feasible subset of `links` to sleep (admin-down overrides on
  // both endpoint interfaces; modules stay plugged) after rerouting each
  // link's traffic, in the order given. Infeasible links are reported in
  // `rejected_links` and left untouched.
  WhatIfAnswer sleep_links(std::span<const int> links);

  // Same feasibility walk without committing anything — the answer carries
  // the current power. The feasibility results are memoized, so a probe
  // followed by the matching `sleep_links` re-pays none of the checks.
  [[nodiscard]] WhatIfAnswer probe_sleep_links(std::span<const int> links);

  // Sets every router with >= 2 PSUs to `mode` (matching
  // Scenario::apply_hot_standby when `mode` is kHotStandby).
  WhatIfAnswer set_psu_mode(PsuMode mode);

  // Physically unplugs every spare transceiver.
  WhatIfAnswer unplug_spares();

  // Decommissions every router of `pop` at the evaluation instant. Their
  // links become unusable for future reroutes.
  WhatIfAnswer decommission_pop(int pop);

  // The post-reroute per-link load matrix after all committed sleeps.
  [[nodiscard]] const std::vector<double>& link_loads_bps() const noexcept {
    return loads_;
  }
  // The committed sleep state as a HypnosResult, so Scenario steps compose
  // on the rerouted matrix (feed it to Scenario::apply_link_sleeping).
  [[nodiscard]] HypnosResult sleep_result() const;

  [[nodiscard]] const std::vector<WhatIfAnswer>& answers() const noexcept {
    return answers_;
  }
  [[nodiscard]] NetworkSimulation& sim() noexcept { return sim_; }
  [[nodiscard]] SimTime eval_at() const noexcept { return eval_at_; }

  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t routers_recomputed = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t feasibility_checks = 0;
    std::uint64_t feasibility_memo_hits = 0;
    std::uint64_t plan_rebuilds = 0;  // PowerPlan compiles across all queries
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct RouterCache {
    std::uint64_t fingerprint = 0;
    double power_w = 0.0;
    bool valid = false;  // fingerprint/power_w hold a real evaluation
    std::map<std::uint64_t, double> memo;  // fingerprint -> power
  };

  void require_baseline() const;
  void mark_dirty(std::size_t router);
  // Re-fingerprints dirty routers, recomputes cache misses on the pool
  // (sharded by router), folds ascending, and appends the answer.
  WhatIfAnswer& record(std::string name);
  WhatIfAnswer run_sleep_query(std::span<const int> links, bool commit);

  NetworkSimulation sim_;
  SimTime eval_at_ = 0;
  WhatIfOptions options_;
  ThreadPool pool_;  // owning the pool makes the engine non-movable
  std::vector<std::vector<InterfaceLoad>> scratch_;  // one per worker slot

  std::vector<RouterCache> cache_;
  std::vector<std::uint8_t> dirty_;
  std::vector<std::size_t> dirty_list_;  // ascending, unique

  std::vector<double> loads_;        // post-reroute per-link loads
  std::vector<bool> asleep_;         // committed sleeping links
  std::vector<bool> router_down_;    // decommissioned via queries
  std::vector<int> sleeping_links_;  // commit order
  // Digest of the committed routing state (sleeps + decommissions); the
  // feasibility memo keys extend it per tentative acceptance.
  std::uint64_t route_digest_ = 0;
  std::map<std::uint64_t, SleepFeasibility> feasibility_memo_;

  bool has_baseline_ = false;
  double baseline_w_ = 0.0;
  std::uint64_t plan_rebuilds_seen_ = 0;
  Stats stats_;
  std::vector<WhatIfAnswer> answers_;
};

}  // namespace joules
