#include "network/inventory.hpp"

#include <stdexcept>

#include "device/catalog.hpp"
#include "util/sim_clock.hpp"

namespace joules {

CsvTable router_inventory(const NetworkTopology& topology) {
  CsvTable table({"router", "model", "pop", "commissioned", "decommissioned",
                  "psu_count", "psu_capacity_w"});
  for (const DeployedRouter& router : topology.routers) {
    const RouterSpec spec = find_router_spec(router.model).value();
    table.add_row({
        router.name,
        router.model,
        topology.pops.at(static_cast<std::size_t>(router.pop)),
        format_date(router.commissioned_at),
        router.decommissioned_at == std::numeric_limits<SimTime>::max()
            ? ""
            : format_date(router.decommissioned_at),
        std::to_string(spec.psu_count),
        format_number(spec.psu_capacity_w),
    });
  }
  return table;
}

CsvTable module_inventory(const NetworkTopology& topology) {
  CsvTable table({"router", "interface", "port_type", "transceiver", "rate",
                  "transceiver_part", "external", "spare", "link_id"});
  for (const DeployedRouter& router : topology.routers) {
    for (const DeployedInterface& iface : router.interfaces) {
      table.add_row({
          router.name,
          iface.name,
          std::string(to_string(iface.profile.port)),
          std::string(to_string(iface.profile.transceiver)),
          std::string(to_string(iface.profile.rate)),
          iface.transceiver_part,
          iface.external ? "1" : "0",
          iface.spare ? "1" : "0",
          std::to_string(iface.link_id),
      });
    }
  }
  return table;
}

std::vector<InventoryInterface> interfaces_of(const CsvTable& modules,
                                              const std::string& router_name) {
  std::vector<InventoryInterface> out;
  for (std::size_t i = 0; i < modules.row_count(); ++i) {
    if (modules.cell(i, "router") != router_name) continue;
    InventoryInterface iface;
    iface.name = modules.cell(i, "interface");
    const auto port = parse_port_type(modules.cell(i, "port_type"));
    const auto trx = parse_transceiver_kind(modules.cell(i, "transceiver"));
    const auto rate = parse_line_rate(modules.cell(i, "rate"));
    if (!port || !trx || !rate) {
      throw std::invalid_argument("interfaces_of: unparsable inventory row " +
                                  std::to_string(i));
    }
    iface.profile = {*port, *trx, *rate};
    iface.transceiver_part = modules.cell(i, "transceiver_part");
    out.push_back(std::move(iface));
  }
  return out;
}

}  // namespace joules
