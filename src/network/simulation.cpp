#include "network/simulation.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "device/catalog.hpp"
#include "util/rng.hpp"

namespace joules {

NetworkSimulation::NetworkSimulation(NetworkTopology topology, std::uint64_t seed)
    : topology_(std::move(topology)), seed_(seed) {
  Rng rng(seed);
  devices_.reserve(topology_.routers.size());
  for (std::size_t r = 0; r < topology_.routers.size(); ++r) {
    const DeployedRouter& deployed = topology_.routers[r];
    const auto spec = find_router_spec(deployed.model);
    if (!spec) {
      throw std::invalid_argument("NetworkSimulation: unknown model " +
                                  deployed.model);
    }
    RouterSpec unit_spec = *spec;
    if (deployed.psu_capacity_override_w > 0.0) {
      unit_spec.psu_capacity_w = deployed.psu_capacity_override_w;
    }
    SimulatedRouter device(unit_spec, rng.fork(deployed.name).next());
    workload_offset_.push_back(workloads_.size());
    for (const DeployedInterface& iface : deployed.interfaces) {
      device.add_interface(iface.profile,
                           iface.spare ? InterfaceState::kPlugged
                                       : InterfaceState::kUp,
                           iface.name);
      workloads_.emplace_back(iface.workload, topology_.options.study_begin,
                              iface.workload_seed);
    }
    devices_.push_back(std::move(device));
  }
  timeline_of_iface_.assign(workloads_.size(), -1);
  router_edges_.resize(topology_.routers.size());
  // Devices start in the base (no-override) state, which is segment 0 of the
  // (empty) per-router boundary list.
  synced_segment_.assign(topology_.routers.size(), 0);
}

bool NetworkSimulation::active(std::size_t router, SimTime t) const {
  const DeployedRouter& deployed = topology_.routers.at(router);
  return t >= deployed.commissioned_at && t < deployed.decommissioned_at;
}

InterfaceState NetworkSimulation::base_state(std::size_t router,
                                             std::size_t iface) const {
  const DeployedInterface& deployed =
      topology_.routers.at(router).interfaces.at(iface);
  return deployed.spare ? InterfaceState::kPlugged : InterfaceState::kUp;
}

NetworkSimulation::StateAt NetworkSimulation::state_at(std::size_t router,
                                                       std::size_t iface,
                                                       SimTime t) const {
  const InterfaceState base = base_state(router, iface);
  const int slot = timeline_of_iface_[workload_offset_[router] + iface];
  if (slot < 0) return {base, false};
  const IfaceTimeline& timeline = timelines_[static_cast<std::size_t>(slot)];
  const std::size_t segment = static_cast<std::size_t>(
      std::upper_bound(timeline.edges.begin(), timeline.edges.end(), t) -
      timeline.edges.begin());
  return {timeline.seg_state[segment], timeline.seg_suppress[segment] != 0};
}

InterfaceState NetworkSimulation::interface_state(std::size_t router,
                                                  std::size_t iface,
                                                  SimTime t) const {
  return state_at(router, iface, t).state;
}

InterfaceLoad NetworkSimulation::interface_load(std::size_t router,
                                                std::size_t iface,
                                                SimTime t) const {
  if (!active(router, t)) return {};
  const StateAt state = state_at(router, iface, t);
  if (state.state != InterfaceState::kUp) return {};
  if (state.suppressed) return {};
  const DeployedInterface& deployed =
      topology_.routers.at(router).interfaces.at(iface);
  if (deployed.spare) return {};
  const DiurnalWorkload& workload =
      workloads_[workload_offset_[router] + iface];
  const DiurnalWorkload::Sample sample = workload.sample(t);
  return {sample.rate_bps, sample.packet_rate_pps};
}

void NetworkSimulation::loads_into(std::size_t router, SimTime t,
                                   std::vector<InterfaceLoad>& out) const {
  const std::size_t count = topology_.routers.at(router).interfaces.size();
  out.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = interface_load(router, i, t);
  }
}

std::vector<InterfaceLoad> NetworkSimulation::loads(std::size_t router,
                                                    SimTime t) const {
  std::vector<InterfaceLoad> out;
  loads_into(router, t, out);
  return out;
}

std::size_t NetworkSimulation::max_interface_count() const noexcept {
  std::size_t max_count = 0;
  for (const DeployedRouter& deployed : topology_.routers) {
    max_count = std::max(max_count, deployed.interfaces.size());
  }
  return max_count;
}

std::uint64_t NetworkSimulation::plan_rebuilds() const noexcept {
  std::uint64_t total = 0;
  for (const SimulatedRouter& device : devices_) total += device.plan_rebuilds();
  return total;
}

void NetworkSimulation::sync_states(std::size_t router, SimTime t) const {
  // Interface states only change at override boundaries; skip the per-step
  // resync while `t` stays within the segment we last synced to.
  const std::ptrdiff_t segment = override_segment(router, t);
  if (synced_segment_[router] == segment) return;
  SimulatedRouter& device = devices_[router];
  const std::size_t count = topology_.routers.at(router).interfaces.size();
  for (std::size_t i = 0; i < count; ++i) {
    device.set_interface_state(i, interface_state(router, i, t));
  }
  synced_segment_[router] = segment;
}

double NetworkSimulation::wall_power_w(std::size_t router, SimTime t,
                                       std::vector<InterfaceLoad>& scratch) const {
  if (!active(router, t)) return 0.0;
  sync_states(router, t);
  loads_into(router, t, scratch);
  return devices_[router].wall_power_w(t, scratch);
}

double NetworkSimulation::wall_power_w(std::size_t router, SimTime t) const {
  thread_local std::vector<InterfaceLoad> scratch;
  return wall_power_w(router, t, scratch);
}

std::optional<double> NetworkSimulation::reported_power_w(
    std::size_t router, SimTime t, std::vector<InterfaceLoad>& scratch) const {
  if (!active(router, t)) return std::nullopt;
  sync_states(router, t);
  loads_into(router, t, scratch);
  return devices_[router].reported_power_w(t, scratch);
}

std::optional<double> NetworkSimulation::reported_power_w(std::size_t router,
                                                          SimTime t) const {
  thread_local std::vector<InterfaceLoad> scratch;
  return reported_power_w(router, t, scratch);
}

std::vector<PsuSensorReading> NetworkSimulation::sensor_snapshot(
    std::size_t router, SimTime t) const {
  if (!active(router, t)) return {};
  sync_states(router, t);
  thread_local std::vector<InterfaceLoad> scratch;
  loads_into(router, t, scratch);
  return devices_[router].sensor_snapshot(t, scratch);
}

void NetworkSimulation::rebuild_timeline(std::size_t router, std::size_t iface) {
  const std::size_t flat = workload_offset_[router] + iface;
  int slot = timeline_of_iface_[flat];
  if (slot < 0) {
    slot = static_cast<int>(timelines_.size());
    timeline_of_iface_[flat] = slot;
    timelines_.emplace_back();
    timeline_overrides_.emplace_back();
  }
  IfaceTimeline& timeline = timelines_[static_cast<std::size_t>(slot)];
  const std::vector<std::uint32_t>& entries =
      timeline_overrides_[static_cast<std::size_t>(slot)];

  // Sweep the interface's overrides over their boundary points. Within each
  // elementary segment, the covering override with the highest insertion
  // index wins (the original list scan's last-writer semantics), and traffic
  // is suppressed when *any* covering override suppresses it.
  timeline.edges.clear();
  for (const std::uint32_t entry : entries) {
    const StateOverride& spec = overrides_[entry];
    if (spec.from >= spec.to) continue;
    timeline.edges.push_back(spec.from);
    timeline.edges.push_back(spec.to);
  }
  std::sort(timeline.edges.begin(), timeline.edges.end());
  timeline.edges.erase(
      std::unique(timeline.edges.begin(), timeline.edges.end()),
      timeline.edges.end());

  const InterfaceState base = base_state(router, iface);
  timeline.seg_state.assign(timeline.edges.size() + 1, base);
  timeline.seg_suppress.assign(timeline.edges.size() + 1, 0);
  std::set<std::uint32_t> covering;
  std::size_t suppressing = 0;
  for (std::size_t segment = 1; segment <= timeline.edges.size(); ++segment) {
    const SimTime edge = timeline.edges[segment - 1];
    for (const std::uint32_t entry : entries) {
      const StateOverride& spec = overrides_[entry];
      if (spec.from >= spec.to) continue;
      if (spec.to == edge) {
        covering.erase(entry);
        if (spec.suppress_traffic) --suppressing;
      }
      if (spec.from == edge) {
        covering.insert(entry);
        if (spec.suppress_traffic) ++suppressing;
      }
    }
    timeline.seg_state[segment] =
        covering.empty() ? base : overrides_[*covering.rbegin()].state;
    timeline.seg_suppress[segment] = suppressing > 0 ? 1 : 0;
  }
}

void NetworkSimulation::add_override(const StateOverride& override_spec) {
  const auto& interfaces =
      topology_.routers.at(static_cast<std::size_t>(override_spec.router))
          .interfaces;
  if (override_spec.iface < 0 ||
      static_cast<std::size_t>(override_spec.iface) >= interfaces.size()) {
    throw std::out_of_range("NetworkSimulation: override interface out of range");
  }
  const auto router = static_cast<std::size_t>(override_spec.router);
  const auto iface = static_cast<std::size_t>(override_spec.iface);
  const auto entry = static_cast<std::uint32_t>(overrides_.size());
  overrides_.push_back(override_spec);

  const std::size_t flat = workload_offset_[router] + iface;
  if (timeline_of_iface_[flat] < 0) rebuild_timeline(router, iface);
  timeline_overrides_[static_cast<std::size_t>(timeline_of_iface_[flat])]
      .push_back(entry);
  rebuild_timeline(router, iface);

  std::vector<SimTime>& edges = router_edges_[router];
  for (const SimTime edge : {override_spec.from, override_spec.to}) {
    const auto at = std::lower_bound(edges.begin(), edges.end(), edge);
    if (at == edges.end() || *at != edge) edges.insert(at, edge);
  }
  synced_segment_[router] = -1;  // segment numbering changed; force a resync
}

std::uint64_t NetworkSimulation::config_fingerprint(std::size_t router,
                                                    SimTime t) const {
  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xffu;
      hash *= 1099511628211ull;  // FNV prime
    }
  };
  mix(static_cast<std::uint64_t>(t));
  mix(active(router, t) ? 1u : 0u);
  mix(static_cast<std::uint64_t>(devices_[router].psu_mode()));
  const std::size_t count = topology_.routers.at(router).interfaces.size();
  for (std::size_t i = 0; i < count; ++i) {
    const StateAt at = state_at(router, i, t);
    mix((static_cast<std::uint64_t>(at.state) << 1) |
        (at.suppressed ? 1u : 0u));
  }
  return hash;
}

void NetworkSimulation::decommission_at(std::size_t router, SimTime t) {
  DeployedRouter& deployed = topology_.routers.at(router);
  deployed.decommissioned_at = std::min(deployed.decommissioned_at, t);
}

void NetworkSimulation::remove_transceiver_at(int router, int iface, SimTime t) {
  StateOverride removal;
  removal.router = router;
  removal.iface = iface;
  removal.from = t;
  removal.to = std::numeric_limits<SimTime>::max();
  removal.state = InterfaceState::kEmpty;
  add_override(removal);
}

}  // namespace joules
