#include "network/simulation.hpp"

#include <stdexcept>

#include "device/catalog.hpp"
#include "util/rng.hpp"

namespace joules {

NetworkSimulation::NetworkSimulation(NetworkTopology topology, std::uint64_t seed)
    : topology_(std::move(topology)) {
  Rng rng(seed);
  devices_.reserve(topology_.routers.size());
  for (std::size_t r = 0; r < topology_.routers.size(); ++r) {
    const DeployedRouter& deployed = topology_.routers[r];
    const auto spec = find_router_spec(deployed.model);
    if (!spec) {
      throw std::invalid_argument("NetworkSimulation: unknown model " +
                                  deployed.model);
    }
    RouterSpec unit_spec = *spec;
    if (deployed.psu_capacity_override_w > 0.0) {
      unit_spec.psu_capacity_w = deployed.psu_capacity_override_w;
    }
    SimulatedRouter device(unit_spec, rng.fork(deployed.name).next());
    workload_offset_.push_back(workloads_.size());
    for (const DeployedInterface& iface : deployed.interfaces) {
      device.add_interface(iface.profile,
                           iface.spare ? InterfaceState::kPlugged
                                       : InterfaceState::kUp,
                           iface.name);
      workloads_.emplace_back(iface.workload, topology_.options.study_begin,
                              iface.workload_seed);
    }
    devices_.push_back(std::move(device));
  }
}

bool NetworkSimulation::active(std::size_t router, SimTime t) const {
  const DeployedRouter& deployed = topology_.routers.at(router);
  return t >= deployed.commissioned_at && t < deployed.decommissioned_at;
}

InterfaceState NetworkSimulation::interface_state(std::size_t router,
                                                  std::size_t iface,
                                                  SimTime t) const {
  const DeployedInterface& deployed =
      topology_.routers.at(router).interfaces.at(iface);
  InterfaceState state =
      deployed.spare ? InterfaceState::kPlugged : InterfaceState::kUp;
  for (const StateOverride& override_spec : overrides_) {
    if (override_spec.router == static_cast<int>(router) &&
        override_spec.iface == static_cast<int>(iface) &&
        t >= override_spec.from && t < override_spec.to) {
      state = override_spec.state;
    }
  }
  return state;
}

InterfaceLoad NetworkSimulation::interface_load(std::size_t router,
                                                std::size_t iface,
                                                SimTime t) const {
  if (!active(router, t)) return {};
  if (interface_state(router, iface, t) != InterfaceState::kUp) return {};
  for (const StateOverride& override_spec : overrides_) {
    if (override_spec.router == static_cast<int>(router) &&
        override_spec.iface == static_cast<int>(iface) &&
        override_spec.suppress_traffic && t >= override_spec.from &&
        t < override_spec.to) {
      return {};
    }
  }
  const DeployedInterface& deployed =
      topology_.routers.at(router).interfaces.at(iface);
  if (deployed.spare) return {};
  const DiurnalWorkload& workload =
      workloads_[workload_offset_[router] + iface];
  return {workload.rate_bps(t), workload.packet_rate_pps(t)};
}

std::vector<InterfaceLoad> NetworkSimulation::loads(std::size_t router,
                                                    SimTime t) const {
  const std::size_t count = topology_.routers.at(router).interfaces.size();
  std::vector<InterfaceLoad> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = interface_load(router, i, t);
  }
  return out;
}

void NetworkSimulation::sync_states(std::size_t router, SimTime t) const {
  SimulatedRouter& device = devices_[router];
  const std::size_t count = topology_.routers.at(router).interfaces.size();
  for (std::size_t i = 0; i < count; ++i) {
    device.set_interface_state(i, interface_state(router, i, t));
  }
}

double NetworkSimulation::wall_power_w(std::size_t router, SimTime t) const {
  if (!active(router, t)) return 0.0;
  sync_states(router, t);
  return devices_[router].wall_power_w(t, loads(router, t));
}

std::optional<double> NetworkSimulation::reported_power_w(std::size_t router,
                                                          SimTime t) const {
  if (!active(router, t)) return std::nullopt;
  sync_states(router, t);
  return devices_[router].reported_power_w(t, loads(router, t));
}

std::vector<PsuSensorReading> NetworkSimulation::sensor_snapshot(
    std::size_t router, SimTime t) const {
  if (!active(router, t)) return {};
  sync_states(router, t);
  return devices_[router].sensor_snapshot(t, loads(router, t));
}

void NetworkSimulation::add_override(const StateOverride& override_spec) {
  const auto& interfaces =
      topology_.routers.at(static_cast<std::size_t>(override_spec.router))
          .interfaces;
  if (override_spec.iface < 0 ||
      static_cast<std::size_t>(override_spec.iface) >= interfaces.size()) {
    throw std::out_of_range("NetworkSimulation: override interface out of range");
  }
  overrides_.push_back(override_spec);
}

void NetworkSimulation::remove_transceiver_at(int router, int iface, SimTime t) {
  StateOverride removal;
  removal.router = router;
  removal.iface = iface;
  removal.from = t;
  removal.to = std::numeric_limits<SimTime>::max();
  removal.state = InterfaceState::kEmpty;
  add_override(removal);
}

}  // namespace joules
