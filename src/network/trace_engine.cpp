#include "network/trace_engine.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "obs/manifest.hpp"
#include "stats/descriptive.hpp"

namespace joules {
namespace {

// Number of `t = begin, begin+step, ...` samples with t < end.
std::size_t step_count(SimTime begin, SimTime end, SimTime step) {
  if (step <= 0) {
    throw std::invalid_argument("TraceEngine: step must be positive");
  }
  if (end <= begin) return 0;
  return static_cast<std::size_t>((end - begin + step - 1) / step);
}

void check_registry_shards(const obs::Registry* registry,
                           std::size_t worker_count) {
  if constexpr (obs::kEnabled) {
    if (registry != nullptr && registry->shard_count() < worker_count) {
      throw std::invalid_argument(
          "TraceEngine: registry has fewer shards than the pool has workers");
    }
  } else {
    (void)registry;
    (void)worker_count;
  }
}

}  // namespace

TraceEngine::TraceEngine(const NetworkSimulation& sim, TraceEngineOptions options)
    : sim_(sim),
      owned_pool_(std::make_unique<ThreadPool>(options.workers)),
      pool_(owned_pool_.get()),
      options_(options) {
  init();
}

TraceEngine::TraceEngine(const NetworkSimulation& sim, ThreadPool& pool,
                         TraceEngineOptions options)
    : sim_(sim), pool_(&pool), options_(options) {
  init();
}

void TraceEngine::init() {
  if (options_.reuse_quantum_s < 0) {
    throw std::invalid_argument("TraceEngine: reuse_quantum_s must be >= 0");
  }
  iface_offset_.reserve(sim_.router_count());
  for (std::size_t r = 0; r < sim_.router_count(); ++r) {
    iface_offset_.push_back(iface_total_);
    iface_total_ += sim_.topology().routers[r].interfaces.size();
  }
  scratch_.resize(pool_->worker_count());
  // Reserve every worker's load scratch up to the largest router once, so
  // loads_into never reallocates mid-sweep.
  const std::size_t max_ifaces = sim_.max_interface_count();
  for (std::vector<InterfaceLoad>& slot_scratch : scratch_) {
    slot_scratch.reserve(max_ifaces);
  }
  check_registry_shards(options_.registry, pool_->worker_count());
}

NetworkTraces TraceEngine::network_traces(SimTime begin, SimTime end,
                                          SimTime step) {
  return stream_traces(begin, end, step, {});
}

NetworkTraces TraceEngine::stream_traces(SimTime begin, SimTime end,
                                         SimTime step,
                                         const TraceStore::BlockSink& sink) {
  NetworkTraces traces;
  {
    // Scoped so the phase span has closed (duration recorded) before the
    // manifest snapshot below reads the registry.
    const obs::Span sweep_span(options_.registry, "trace.network_traces");
    traces = stream_traces_impl(begin, end, step, sink);
  }
  write_sweep_manifest(begin, end, step);
  return traces;
}

NetworkTraces TraceEngine::stream_traces_impl(SimTime begin, SimTime end,
                                              SimTime step,
                                              const TraceStore::BlockSink& sink) {
  NetworkTraces traces;

  // Capacity: each internal link counted once, externals once.
  for (const DeployedRouter& router : sim_.topology().routers) {
    for (const DeployedInterface& iface : router.interfaces) {
      if (iface.spare) continue;
      const double line = line_rate_bps(iface.profile.rate);
      traces.capacity_bps += iface.external ? line : line / 2.0;
    }
  }

  const std::size_t n = step_count(begin, end, step);
  const std::size_t routers = sim_.router_count();
  if (n == 0) return traces;

  // The traffic fold of the serial implementation runs over interfaces in
  // flat (router, iface) order; divisors depend only on the interface.
  std::vector<double> divisor(iface_total_, 4.0);
  for (std::size_t r = 0; r < routers; ++r) {
    const auto& interfaces = sim_.topology().routers[r].interfaces;
    for (std::size_t i = 0; i < interfaces.size(); ++i) {
      if (interfaces[i].external) divisor[iface_offset_[r] + i] = 2.0;
    }
  }

  // Workers fill per-(router|interface, timestep) slots of the columnar
  // store's block buffers; TraceStore::commit_block then folds each timestep
  // serially in the flat order of the original loops, which keeps results
  // bit-identical for any worker count (floating-point addition is not
  // associative, so the fold order is part of the output contract). Layout
  // is timestep-major (power[j * routers + r], contrib[j * iface_total_ +
  // flat_iface]): a router-step's interface writes and the reduction's
  // per-timestep reads are then both contiguous, where the router-major
  // layout strided every one of them by the block length. The store owns
  // exactly one block's buffers and recycles them, so resident sample
  // memory is bounded by max_block_bytes however long the sweep runs.
  TraceStore::Options store_options;
  store_options.max_block_bytes = options_.max_block_bytes;
  store_options.registry = options_.registry;
  TraceStore store(routers, iface_total_, store_options);
  store.begin_sweep(begin, step, n);
  std::span<double> power;
  std::span<double> contrib;

  // Incremental mode: fresh carries per sweep (buckets are begin-relative,
  // so a stale carry from an earlier window would alias).
  const SimTime quantum = options_.reuse_quantum_s;
  if (quantum > 0) {
    carry_.assign(routers, ReuseCarry{});
    carry_contrib_.assign(iface_total_, 0.0);
  }

  std::size_t block_begin = 0;
  std::size_t m = 0;
  const ThreadPool::ChunkFn fill = [&](std::size_t r0, std::size_t r1,
                                       std::size_t slot) {
    std::vector<InterfaceLoad>& loads = scratch_[slot];
    // Plain locals in the hot loop; the shard flush below is the only
    // registry touch per chunk, and with JOULES_OBS=OFF it compiles away
    // (taking these dead stores with it).
    std::uint64_t samples = 0;
    std::uint64_t computed = 0;
    std::uint64_t reused = 0;
    std::uint64_t skips = 0;
    for (std::size_t r = r0; r < r1; ++r) {
      const double* div = divisor.data() + iface_offset_[r];
      const std::size_t iface_count =
          sim_.topology().routers[r].interfaces.size();
      for (std::size_t j = 0; j < m; ++j) {
        double& power_slot = power[j * routers + r];
        double* contrib_row = contrib.data() + j * iface_total_ + iface_offset_[r];
        const SimTime t =
            begin + static_cast<SimTime>(block_begin + j) * step;
        if (!sim_.active(r, t)) {
          ++skips;
          power_slot = 0.0;
          for (std::size_t i = 0; i < iface_count; ++i) contrib_row[i] = 0.0;
          // A decommission/commission boundary invalidates the carry, so a
          // router that comes (back) up always recomputes.
          if (quantum > 0) carry_[r].valid = false;
          continue;
        }
        ++samples;
        if (quantum > 0) {
          ReuseCarry& carry = carry_[r];
          double* carry_contrib = carry_contrib_.data() + iface_offset_[r];
          if (carry.valid && t < carry.hold_until) {
            ++reused;
            power_slot = carry.power;
            for (std::size_t i = 0; i < iface_count; ++i) {
              contrib_row[i] = carry_contrib[i];
            }
            continue;
          }
          ++computed;
          power_slot = sim_.wall_power_w(r, t, loads);
          for (std::size_t i = 0; i < iface_count; ++i) {
            const double value = loads[i].rate_bps / div[i];
            contrib_row[i] = value;
            carry_contrib[i] = value;
          }
          const SimTime bucket_end = begin + ((t - begin) / quantum + 1) * quantum;
          carry.power = power_slot;
          carry.hold_until =
              std::min(sim_.override_segment_end(r, t), bucket_end);
          carry.valid = true;
          continue;
        }
        ++computed;
        power_slot = sim_.wall_power_w(r, t, loads);
        for (std::size_t i = 0; i < iface_count; ++i) {
          // Loads sum both directions; halve to count carried traffic, and
          // halve internal links again (seen by both endpoints).
          contrib_row[i] = loads[i].rate_bps / div[i];
        }
      }
    }
    if constexpr (obs::kEnabled) {
      if (options_.registry != nullptr) {
        options_.registry->add(slot, "trace.samples", samples);
        options_.registry->add(slot, "trace.samples_computed", computed);
        options_.registry->add(slot, "trace.samples_reused", reused);
        options_.registry->add(slot, "trace.inactive_skips", skips);
      }
    }
  };

  std::uint64_t rebuilds_before = 0;
  if constexpr (obs::kEnabled) {
    if (options_.registry != nullptr) rebuilds_before = sim_.plan_rebuilds();
  }

  while ((m = store.open_block()) > 0) {
    power = store.power_column();
    contrib = store.traffic_column();
    const obs::Span block_span(options_.registry, "trace.block");
    pool_->parallel_for(0, routers, fill);
    // commit_block folds the totals (serial flat order), streams the SoA
    // columns to the sink, and recycles the buffers for the next window.
    const TraceBlockView& committed = store.commit_block(sink);
    for (std::size_t j = 0; j < committed.timesteps; ++j) {
      traces.total_power_w.push(committed.time_of(j),
                                committed.total_power_w[j]);
      traces.total_traffic_bps.push(committed.time_of(j),
                                    committed.total_traffic_bps[j]);
    }
    if constexpr (obs::kEnabled) {
      if (options_.registry != nullptr) {
        options_.registry->add("trace.blocks");
        options_.registry->add("trace.timesteps", m);
      }
    }
    block_begin += m;
  }
  store.end_sweep();
  if constexpr (obs::kEnabled) {
    if (options_.registry != nullptr) {
      // How many device power plans this sweep forced to (re)compile —
      // steady state is one per router for the first sweep and ~zero after,
      // since the per-segment state sync skips no-op state writes.
      options_.registry->add("plan.rebuilds",
                             sim_.plan_rebuilds() - rebuilds_before);
    }
  }
  return traces;
}

void TraceEngine::write_sweep_manifest(SimTime begin, SimTime end,
                                       SimTime step) const {
  if constexpr (obs::kEnabled) {
    if (options_.registry == nullptr || options_.manifest_path.empty()) return;
    char config[256];
    std::snprintf(config, sizeof config,
                  "trace_engine routers=%zu ifaces=%zu begin=%lld end=%lld "
                  "step=%lld workers=%zu",
                  sim_.router_count(), iface_total_,
                  static_cast<long long>(begin), static_cast<long long>(end),
                  static_cast<long long>(step), pool_->worker_count());
    obs::ManifestInfo info;
    info.tool = "trace_engine";
    info.seed = sim_.seed();
    info.config_hash = obs::config_fingerprint(config);
    obs::write_manifest(options_.manifest_path, info, *options_.registry);
  } else {
    (void)begin;
    (void)end;
    (void)step;
  }
}

double TraceEngine::network_power_w(SimTime t) {
  const std::size_t routers = sim_.router_count();
  std::vector<double> power(routers, 0.0);
  pool_->parallel_for(0, routers,
                      [&](std::size_t r0, std::size_t r1, std::size_t slot) {
                        std::vector<InterfaceLoad>& loads = scratch_[slot];
                        for (std::size_t r = r0; r < r1; ++r) {
                          power[r] = sim_.wall_power_w(r, t, loads);
                        }
                      });
  double total = 0.0;
  for (const double value : power) total += value;
  if constexpr (obs::kEnabled) {
    if (options_.registry != nullptr) {
      options_.registry->add("trace.power_probes");
    }
  }
  return total;
}

std::vector<std::optional<double>> TraceEngine::snmp_medians(SimTime begin,
                                                             SimTime end,
                                                             SimTime step) {
  const obs::Span span(options_.registry, "trace.snmp_medians");
  const std::size_t n = step_count(begin, end, step);
  const std::size_t routers = sim_.router_count();
  std::vector<std::optional<double>> medians(routers);
  pool_->parallel_for(
      0, routers, [&](std::size_t r0, std::size_t r1, std::size_t slot) {
        std::vector<InterfaceLoad>& loads = scratch_[slot];
        std::vector<double> values;
        values.reserve(n);
        std::uint64_t reported_samples = 0;
        for (std::size_t r = r0; r < r1; ++r) {
          values.clear();
          for (std::size_t j = 0; j < n; ++j) {
            const SimTime t = begin + static_cast<SimTime>(j) * step;
            if (!sim_.active(r, t)) continue;
            const auto reported = sim_.reported_power_w(r, t, loads);
            if (reported.has_value()) values.push_back(*reported);
          }
          reported_samples += values.size();
          if (!values.empty()) medians[r] = median(values);
        }
        if constexpr (obs::kEnabled) {
          if (options_.registry != nullptr) {
            options_.registry->add(slot, "trace.snmp_samples", reported_samples);
          }
        }
      });
  return medians;
}

std::vector<std::vector<PsuObservation>> TraceEngine::psu_snapshots(
    std::span<const SimTime> times) {
  const std::size_t routers = sim_.router_count();
  // readings[r * times.size() + ti]
  std::vector<std::vector<PsuSensorReading>> readings(routers * times.size());
  pool_->parallel_for(0, routers,
                      [&](std::size_t r0, std::size_t r1, std::size_t) {
                        for (std::size_t r = r0; r < r1; ++r) {
                          for (std::size_t ti = 0; ti < times.size(); ++ti) {
                            readings[r * times.size() + ti] =
                                sim_.sensor_snapshot(r, times[ti]);
                          }
                        }
                      });
  std::vector<std::vector<PsuObservation>> snapshots(times.size());
  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    for (std::size_t r = 0; r < routers; ++r) {
      const DeployedRouter& deployed = sim_.topology().routers[r];
      const auto& router_readings = readings[r * times.size() + ti];
      for (std::size_t p = 0; p < router_readings.size(); ++p) {
        PsuObservation obs;
        obs.router_name = deployed.name;
        obs.router_model = deployed.model;
        obs.psu_index = static_cast<int>(p);
        obs.capacity_w = sim_.device(r).psus()[p].capacity_w();
        obs.input_power_w = router_readings[p].input_power_w;
        obs.output_power_w = router_readings[p].output_power_w;
        snapshots[ti].push_back(std::move(obs));
      }
    }
  }
  return snapshots;
}

std::vector<PsuObservation> TraceEngine::psu_snapshot(SimTime t) {
  const SimTime times[] = {t};
  return std::move(psu_snapshots(times).front());
}

std::vector<double> TraceEngine::average_link_loads_bps(SimTime begin,
                                                        SimTime end,
                                                        SimTime step) {
  const std::size_t samples = step_count(begin, end, step);
  if (samples == 0) {
    throw std::invalid_argument("average_link_loads_bps: empty window");
  }
  const obs::Span span(options_.registry, "trace.link_loads");
  const NetworkTopology& topology = sim_.topology();
  std::vector<double> totals(topology.links.size(), 0.0);
  // Interface-load queries touch no device state, so links may be sharded
  // freely even when two links land on the same router.
  pool_->parallel_for(
      0, topology.links.size(),
      [&](std::size_t l0, std::size_t l1, std::size_t slot) {
        for (std::size_t l = l0; l < l1; ++l) {
          const InternalLink& link = topology.links[l];
          double total = 0.0;
          for (std::size_t j = 0; j < samples; ++j) {
            const SimTime t = begin + static_cast<SimTime>(j) * step;
            const InterfaceLoad load = sim_.interface_load(
                static_cast<std::size_t>(link.router_a),
                static_cast<std::size_t>(link.iface_a), t);
            // Interface loads sum both directions; a link's one-direction
            // load is half of that (symmetric workloads).
            total += load.rate_bps / 2.0;
          }
          totals[l] = total / static_cast<double>(samples);
        }
        if constexpr (obs::kEnabled) {
          if (options_.registry != nullptr) {
            options_.registry->add(slot, "trace.link_samples",
                                   static_cast<std::uint64_t>(l1 - l0) *
                                       static_cast<std::uint64_t>(samples));
          }
        }
      });
  return totals;
}

}  // namespace joules
