// The federated multi-domain topology generator — ROADMAP item 1's ~100×
// scale layer.
//
// Where `build_switch_like_network` regenerates the paper's single 107-router
// Tier-2 ISP, this generator produces a *federation*: N independent ISP
// domains of M PoPs each, wired like real backbones —
//   - per-PoP tier mix (1-2 core, a few aggregation, the rest access);
//   - an intra-domain core ring per ISP plus preferential-attachment chords,
//     giving the core a realistic heavy-tailed degree distribution;
//   - aggregation dual-homed into the PoP core, access dual-homed into
//     aggregation;
//   - inter-domain peering links between core routers (a domain-level ring
//     for connectivity plus a configurable extra-peering fraction);
//   - per-domain hardware zoo sampling: each ISP buys from the same catalog
//     but with its own vendor bias, so no two domains deploy the same mix;
//   - customer/peer/transit interfaces and spare transceivers per router,
//     matching the paper's external-share and spares observations.
//
// The output is an ordinary `NetworkTopology`, so `NetworkSimulation`,
// `TraceEngine`, Hypnos, and the what-if engine all run on it unchanged —
// plus a domain index for federation-aware studies.
//
// Structure follows MPINET's separation of concerns: the *topology* stage
// builds the graph, the *traffic-matrix* stage assigns workloads to the
// finished interface list, and the *link-state* stage layers lifecycle
// events on top — each stage deterministic in (options, seed), so a given
// seed is bit-identical run to run at any scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "network/topology.hpp"

namespace joules {

struct FederatedTopologyOptions {
  std::uint64_t seed = 2025;
  int domains = 4;           // federated ISPs
  int pops_per_domain = 10;  // PoPs per ISP
  int routers_per_pop = 8;   // routers per PoP (exact, so counts are pinned)

  // Graph shaping. The core ring contributes degree 2; chords (sampled with
  // preferential attachment) raise the mean toward this target.
  double mean_core_degree = 3.0;
  int access_uplinks = 2;  // uplinks per access router
  // Target share of customer/peer/transit interfaces among all non-spare
  // interfaces (the paper's Switch dataset sits at 51 %).
  double external_iface_frac = 0.45;
  // Inter-domain peering links as a fraction of intra-domain links, beyond
  // the domain ring that guarantees federation connectivity.
  double interdomain_link_frac = 0.03;
  double spare_transceiver_frac = 0.02;
  double external_load_median_frac = 0.035;  // of line rate
  // Mid-study commission/decommission events per router (lifecycle stage).
  double lifecycle_event_frac = 0.005;

  SimTime study_begin = make_time(2024, 9, 1);
  SimTime study_end = make_time(2025, 6, 30);

  [[nodiscard]] int router_count() const noexcept {
    return domains * pops_per_domain * routers_per_pop;
  }

  // Rejects degenerate generator inputs (no domains/PoPs/routers, a degree
  // or uplink target exceeding the router count, fractions outside [0, 1],
  // an empty study window) with std::invalid_argument. build() calls this
  // first.
  void validate() const;
};

struct FederatedDomain {
  std::string name;     // "d03"
  int first_pop = 0;    // index into NetworkTopology::pops
  int pop_count = 0;
  int first_router = 0;  // index into NetworkTopology::routers
  int router_count = 0;
};

struct FederatedTopology {
  NetworkTopology network;  // feed straight into NetworkSimulation
  std::vector<FederatedDomain> domains;
  std::vector<int> domain_of_router;  // router index -> domain index
  std::size_t interdomain_links = 0;  // links whose endpoints differ in domain

  [[nodiscard]] std::size_t router_count() const noexcept {
    return network.routers.size();
  }
};

class FederatedTopologyGenerator {
 public:
  explicit FederatedTopologyGenerator(FederatedTopologyOptions options = {});

  [[nodiscard]] const FederatedTopologyOptions& options() const noexcept {
    return options_;
  }

  // Deterministic in the options (including the seed): equal options produce
  // bit-identical topologies, at any scale.
  [[nodiscard]] FederatedTopology build() const;

 private:
  FederatedTopologyOptions options_;
};

// Convenience wrapper matching build_switch_like_network's shape.
[[nodiscard]] FederatedTopology build_federated_network(
    const FederatedTopologyOptions& options = {});

}  // namespace joules
