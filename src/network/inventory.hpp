// Inventory exports.
//
// The paper's pipelines join SNMP traces against two operator-provided
// files: the hardware inventory (PSU capacities per router) and the module
// inventory (transceiver part per interface). These exports produce the
// same artifacts from the simulated network as CSV tables.
#pragma once

#include "network/topology.hpp"
#include "util/csv.hpp"

namespace joules {

// router, model, pop, commissioned, decommissioned, psu_count, psu_capacity_w
[[nodiscard]] CsvTable router_inventory(const NetworkTopology& topology);

// router, interface, port_type, transceiver, rate, external, spare, link_id
[[nodiscard]] CsvTable module_inventory(const NetworkTopology& topology);

// Round-trip: rebuilds the interface profile list of one router from a
// module-inventory table (what the §6.2 prediction pipeline does).
struct InventoryInterface {
  std::string name;
  ProfileKey profile;
  std::string transceiver_part;
};
[[nodiscard]] std::vector<InventoryInterface> interfaces_of(
    const CsvTable& modules, const std::string& router_name);

}  // namespace joules
