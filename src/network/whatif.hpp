// Scenario analysis — stacking the paper's energy-saving measures.
//
// §10 closes by listing the saving vectors separately (transceiver handling,
// link sleeping, PSU measures). An operator wants to know what they do
// *together* on the same fleet, since the measures interact: link sleeping
// lowers the DC draw, which lowers every PSU's load point, which changes
// what hot-standby and right-sizing are worth. `Scenario` applies measures
// to a NetworkSimulation and measures true wall power, so combinations
// compose on ground truth instead of on independent estimates.
#pragma once

#include <string>
#include <vector>

#include "network/simulation.hpp"
#include "sleep/hypnos.hpp"
#include "util/thread_pool.hpp"

namespace joules {

struct ScenarioStep {
  std::string name;
  double network_power_w = 0.0;  // after this step
  double saved_w = 0.0;          // vs the previous step
  double saved_vs_baseline_w = 0.0;
};

class Scenario {
 public:
  // Takes ownership of a fresh simulation; `eval_at` is the instant all
  // power readings use. `workers` sizes the pool the per-step power probe
  // runs on (1 = serial; results are identical for any count).
  Scenario(NetworkSimulation sim, SimTime eval_at, std::size_t workers = 1);

  // Measures the untouched fleet; must be called first.
  double baseline_w();

  // Puts every sleeping link's two interfaces admin-down (modules stay
  // plugged — "down" is not "off").
  double apply_link_sleeping(const HypnosResult& result);

  // Switches every router with >= 2 PSUs to hot-standby.
  double apply_hot_standby();

  // Physically unplugs every spare transceiver (the paper's "awaiting
  // pick-up at the next PoP visit" modules).
  double remove_spare_transceivers();

  // Decommissions every router of one point of presence at the evaluation
  // instant (a consolidation what-if: the PoP's draw drops to zero).
  double decommission_pop(int pop);

  [[nodiscard]] const std::vector<ScenarioStep>& steps() const noexcept {
    return steps_;
  }
  [[nodiscard]] NetworkSimulation& sim() noexcept { return sim_; }

 private:
  double record(const std::string& name);

  NetworkSimulation sim_;
  SimTime eval_at_;
  ThreadPool pool_;  // owning the pool makes Scenario non-movable
  double baseline_w_ = 0.0;
  std::vector<ScenarioStep> steps_;
};

}  // namespace joules
