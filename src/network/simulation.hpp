// The deployed-network simulation.
//
// Instantiates a `SimulatedRouter` per deployed router and answers the
// questions the dataset pipelines ask: what is router r's wall power at time
// t, what does its PSU telemetry report, what are its interface loads, what
// do its sensors export. Time-varying interface state (flaps, maintenance,
// transceiver removal — the Fig. 4 events) is expressed as state overrides
// over time windows.
//
// Overrides are indexed: `add_override` folds each (router, iface)'s
// overrides into a piecewise-constant timeline (sorted segment boundaries +
// the winning state per segment), so `interface_state`/`interface_load` cost
// O(log overrides-on-this-interface) instead of scanning every override in
// the network. Later-added overrides win overlaps, matching the original
// last-writer list scan.
//
// Thread-safety contract (what `TraceEngine` relies on): all time-indexed
// queries are const, but power queries sync the per-router device state and
// the per-router sync cache. Concurrent queries are therefore safe if and
// only if no two threads touch the *same router* — shard sweeps by router.
// `interface_state`/`interface_load`/`loads_into` mutate nothing and are
// safe under any sharding. `add_override` must not run concurrently with
// queries.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "device/router.hpp"
#include "network/topology.hpp"

namespace joules {

struct StateOverride {
  int router = 0;
  int iface = 0;
  SimTime from = 0;
  SimTime to = 0;  // half-open [from, to)
  InterfaceState state = InterfaceState::kPlugged;
  bool suppress_traffic = true;  // counters stop during the override
};

class NetworkSimulation {
 public:
  explicit NetworkSimulation(NetworkTopology topology, std::uint64_t seed = 1);

  [[nodiscard]] const NetworkTopology& topology() const noexcept { return topology_; }
  [[nodiscard]] std::size_t router_count() const noexcept {
    return topology_.routers.size();
  }
  // The construction seed (run-manifest provenance).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  // Commissioned and not yet decommissioned at `t`.
  [[nodiscard]] bool active(std::size_t router, SimTime t) const;

  // Interface state at `t`, overrides applied. Spares are kPlugged; regular
  // interfaces are kUp while the router is active.
  [[nodiscard]] InterfaceState interface_state(std::size_t router,
                                               std::size_t iface, SimTime t) const;

  // Offered load (both directions summed) at `t`; zero unless the interface
  // is up and unsuppressed.
  [[nodiscard]] InterfaceLoad interface_load(std::size_t router,
                                             std::size_t iface, SimTime t) const;
  [[nodiscard]] std::vector<InterfaceLoad> loads(std::size_t router, SimTime t) const;

  // Allocation-free variant: resizes `out` to the router's interface count
  // and fills it. Reusing the same vector across calls never reallocates
  // once its capacity covers the largest router.
  void loads_into(std::size_t router, SimTime t,
                  std::vector<InterfaceLoad>& out) const;

  // True wall power; 0 when the router is not active.
  [[nodiscard]] double wall_power_w(std::size_t router, SimTime t) const;
  // Buffered variant for hot loops: identical result, `scratch` is left
  // holding the interface loads used (empty-capacity vectors work).
  double wall_power_w(std::size_t router, SimTime t,
                      std::vector<InterfaceLoad>& scratch) const;

  // PSU-reported (SNMP) power, with the model's telemetry quirks.
  [[nodiscard]] std::optional<double> reported_power_w(std::size_t router,
                                                       SimTime t) const;
  std::optional<double> reported_power_w(std::size_t router, SimTime t,
                                         std::vector<InterfaceLoad>& scratch) const;

  // Per-PSU (P_in, P_out) sensor export (§9.2's snapshot source).
  [[nodiscard]] std::vector<PsuSensorReading> sensor_snapshot(std::size_t router,
                                                              SimTime t) const;

  // The underlying device (e.g. for spec/PSU metadata). State is synced to
  // the last queried time; prefer the time-indexed accessors. Mutating
  // interface states directly through this handle is not supported — power
  // queries own them (and skip re-syncing when no override boundary was
  // crossed).
  [[nodiscard]] const SimulatedRouter& device(std::size_t router) const {
    return devices_[router];
  }
  [[nodiscard]] SimulatedRouter& device(std::size_t router) {
    return devices_[router];
  }

  void add_override(const StateOverride& override_spec);
  [[nodiscard]] std::size_t override_count() const noexcept {
    return overrides_.size();
  }

  // The dirty-tracking seam for incremental sweeps: which inter-boundary
  // segment of this router's override-edge list `t` falls in. Interface
  // states — and therefore the device's compiled power plan — can only
  // change when this value changes (or the router's active window opens or
  // closes). Pure query; safe under any sharding.
  [[nodiscard]] std::ptrdiff_t override_segment(std::size_t router,
                                                SimTime t) const {
    const std::vector<SimTime>& edges = router_edges_[router];
    return std::upper_bound(edges.begin(), edges.end(), t) - edges.begin();
  }

  // First override boundary strictly after `t` (the end of `t`'s segment),
  // or SimTime's max when none remains. Incremental sweeps hold a router's
  // power until this time: within [t, end) the override segment — and so
  // the power, absent workload-bucket changes — cannot change.
  [[nodiscard]] SimTime override_segment_end(std::size_t router,
                                             SimTime t) const {
    const std::vector<SimTime>& edges = router_edges_[router];
    const auto it = std::upper_bound(edges.begin(), edges.end(), t);
    return it == edges.end() ? std::numeric_limits<SimTime>::max() : *it;
  }

  // Largest interface count of any router — the capacity bound sweep
  // engines pre-reserve their load scratch to.
  [[nodiscard]] std::size_t max_interface_count() const noexcept;

  // Total power-plan compilations across all devices (obs: plan.rebuilds).
  [[nodiscard]] std::uint64_t plan_rebuilds() const noexcept;

  // Transceiver removal: from `t` on, the interface is physically empty
  // (unlike a "down" override, this removes P_trx,in too).
  void remove_transceiver_at(int router, int iface, SimTime t);

  // FNV-1a digest of every configuration input router `r`'s wall power at
  // `t` depends on: the eval time itself (workloads are pure functions of
  // it), the active window, the device's PSU mode, and each interface's
  // effective (state, suppressed) pair with overrides applied. Equal
  // fingerprints at equal times imply bit-identical `wall_power_w` — the
  // cache key incremental what-if engines memoize on. Pure query; safe
  // under any sharding.
  [[nodiscard]] std::uint64_t config_fingerprint(std::size_t router,
                                                 SimTime t) const;

  // Decommissions the router from `t` on (keeps an earlier existing
  // decommission time). Like add_override, must not run concurrently with
  // queries.
  void decommission_at(std::size_t router, SimTime t);

 private:
  // Piecewise-constant state of one interface over time. Segment i covers
  // [edges[i-1], edges[i]) (segment 0 everything before edges[0], the last
  // segment everything from edges.back() on); `seg_state`/`seg_suppress`
  // have edges.size() + 1 entries.
  struct IfaceTimeline {
    std::vector<SimTime> edges;
    std::vector<InterfaceState> seg_state;
    std::vector<std::uint8_t> seg_suppress;
  };
  struct StateAt {
    InterfaceState state;
    bool suppressed;
  };

  [[nodiscard]] InterfaceState base_state(std::size_t router,
                                          std::size_t iface) const;
  [[nodiscard]] StateAt state_at(std::size_t router, std::size_t iface,
                                 SimTime t) const;
  void rebuild_timeline(std::size_t router, std::size_t iface);
  void sync_states(std::size_t router, SimTime t) const;

  NetworkTopology topology_;
  std::uint64_t seed_ = 0;
  mutable std::vector<SimulatedRouter> devices_;
  std::vector<StateOverride> overrides_;
  std::vector<DiurnalWorkload> workloads_;      // flattened per interface
  std::vector<std::size_t> workload_offset_;    // router -> first workload index

  // Override interval index (rebuilt per affected interface on add_override).
  std::vector<int> timeline_of_iface_;  // flat iface index -> timelines_ slot, -1 none
  std::vector<IfaceTimeline> timelines_;
  std::vector<std::vector<std::uint32_t>> timeline_overrides_;  // overrides_ indices
  std::vector<std::vector<SimTime>> router_edges_;  // per router, sorted unique

  // Which inter-boundary segment of router_edges_ the device states were
  // last synced to; -1 forces a sync. Written under the per-router sharding
  // contract above.
  mutable std::vector<std::ptrdiff_t> synced_segment_;
};

}  // namespace joules
