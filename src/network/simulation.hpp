// The deployed-network simulation.
//
// Instantiates a `SimulatedRouter` per deployed router and answers the
// questions the dataset pipelines ask: what is router r's wall power at time
// t, what does its PSU telemetry report, what are its interface loads, what
// do its sensors export. Time-varying interface state (flaps, maintenance,
// transceiver removal — the Fig. 4 events) is expressed as state overrides
// over time windows.
#pragma once

#include <optional>
#include <vector>

#include "device/router.hpp"
#include "network/topology.hpp"

namespace joules {

struct StateOverride {
  int router = 0;
  int iface = 0;
  SimTime from = 0;
  SimTime to = 0;  // half-open [from, to)
  InterfaceState state = InterfaceState::kPlugged;
  bool suppress_traffic = true;  // counters stop during the override
};

class NetworkSimulation {
 public:
  explicit NetworkSimulation(NetworkTopology topology, std::uint64_t seed = 1);

  [[nodiscard]] const NetworkTopology& topology() const noexcept { return topology_; }
  [[nodiscard]] std::size_t router_count() const noexcept {
    return topology_.routers.size();
  }

  // Commissioned and not yet decommissioned at `t`.
  [[nodiscard]] bool active(std::size_t router, SimTime t) const;

  // Interface state at `t`, overrides applied. Spares are kPlugged; regular
  // interfaces are kUp while the router is active.
  [[nodiscard]] InterfaceState interface_state(std::size_t router,
                                               std::size_t iface, SimTime t) const;

  // Offered load (both directions summed) at `t`; zero unless the interface
  // is up and unsuppressed.
  [[nodiscard]] InterfaceLoad interface_load(std::size_t router,
                                             std::size_t iface, SimTime t) const;
  [[nodiscard]] std::vector<InterfaceLoad> loads(std::size_t router, SimTime t) const;

  // True wall power; 0 when the router is not active.
  [[nodiscard]] double wall_power_w(std::size_t router, SimTime t) const;

  // PSU-reported (SNMP) power, with the model's telemetry quirks.
  [[nodiscard]] std::optional<double> reported_power_w(std::size_t router,
                                                       SimTime t) const;

  // Per-PSU (P_in, P_out) sensor export (§9.2's snapshot source).
  [[nodiscard]] std::vector<PsuSensorReading> sensor_snapshot(std::size_t router,
                                                              SimTime t) const;

  // The underlying device (e.g. for spec/PSU metadata). State is synced to
  // the last queried time; prefer the time-indexed accessors.
  [[nodiscard]] const SimulatedRouter& device(std::size_t router) const {
    return devices_[router];
  }
  [[nodiscard]] SimulatedRouter& device(std::size_t router) {
    return devices_[router];
  }

  void add_override(const StateOverride& override_spec);

  // Transceiver removal: from `t` on, the interface is physically empty
  // (unlike a "down" override, this removes P_trx,in too).
  void remove_transceiver_at(int router, int iface, SimTime t);

 private:
  void sync_states(std::size_t router, SimTime t) const;

  NetworkTopology topology_;
  mutable std::vector<SimulatedRouter> devices_;
  std::vector<StateOverride> overrides_;
  std::vector<DiurnalWorkload> workloads_;      // flattened per interface
  std::vector<std::size_t> workload_offset_;    // router -> first workload index
};

}  // namespace joules
