#include "network/whatif_engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "network/trace_engine.hpp"

namespace joules {
namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_mix(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffu;
    hash *= kFnvPrime;
  }
  return hash;
}

// Domain salts keep the route digest's event kinds from aliasing.
constexpr std::uint64_t kProbeSalt = 0x51;   // feasibility memo key
constexpr std::uint64_t kCommitSalt = 0x52;  // accepted sleep
constexpr std::uint64_t kPopSalt = 0x53;     // PoP decommission

}  // namespace

WhatIfEngine::WhatIfEngine(NetworkSimulation sim, SimTime eval_at,
                           WhatIfOptions options)
    : sim_(std::move(sim)),
      eval_at_(eval_at),
      options_(std::move(options)),
      pool_(options_.workers) {
  if (options_.hypnos.max_utilization <= 0.0 ||
      options_.hypnos.max_utilization > 1.0) {
    throw std::invalid_argument(
        "WhatIfEngine: max_utilization outside (0, 1]");
  }
  scratch_.resize(pool_.worker_count());
  const std::size_t routers = sim_.router_count();
  cache_.resize(routers);
  dirty_.assign(routers, 0);
  router_down_.assign(routers, false);
  dirty_list_.reserve(routers);

  const std::size_t links = sim_.topology().links.size();
  asleep_.assign(links, false);
  if (!options_.link_loads_bps.empty()) {
    if (options_.link_loads_bps.size() != links) {
      throw std::invalid_argument(
          "WhatIfEngine: link_loads_bps size mismatch");
    }
    loads_ = options_.link_loads_bps;
  } else {
    if (options_.load_window_s <= 0 || options_.load_step_s <= 0) {
      throw std::invalid_argument(
          "WhatIfEngine: load window and step must be positive");
    }
    TraceEngine engine(sim_, pool_);
    loads_ = engine.average_link_loads_bps(eval_at_ - options_.load_window_s,
                                           eval_at_, options_.load_step_s);
  }
  route_digest_ = kFnvOffset;
  plan_rebuilds_seen_ = sim_.plan_rebuilds();
}

void WhatIfEngine::require_baseline() const {
  if (!has_baseline_) {
    throw std::logic_error("WhatIfEngine: call baseline_w first");
  }
}

void WhatIfEngine::mark_dirty(std::size_t router) {
  if (dirty_[router] != 0) return;
  dirty_[router] = 1;
  dirty_list_.push_back(router);
}

WhatIfAnswer& WhatIfEngine::record(std::string name) {
  // The fingerprint pass is serial (it is a cheap pure hash); only the power
  // model runs on the pool, sharded so no two workers touch the same router.
  std::sort(dirty_list_.begin(), dirty_list_.end());
  std::size_t hits = 0;
  std::vector<std::size_t> misses;
  for (const std::size_t r : dirty_list_) {
    const std::uint64_t fingerprint = sim_.config_fingerprint(r, eval_at_);
    RouterCache& entry = cache_[r];
    if (entry.valid && fingerprint == entry.fingerprint) {
      ++hits;  // the mutation did not actually touch this router's inputs
      continue;
    }
    const auto memoized = entry.memo.find(fingerprint);
    if (memoized != entry.memo.end()) {
      entry.fingerprint = fingerprint;
      entry.power_w = memoized->second;
      entry.valid = true;
      ++hits;  // a toggled-back configuration re-uses its old evaluation
      continue;
    }
    entry.fingerprint = fingerprint;
    entry.valid = true;
    misses.push_back(r);
  }
  if (!misses.empty()) {
    pool_.parallel_for(
        0, misses.size(),
        [&](std::size_t begin, std::size_t end, std::size_t slot) {
          for (std::size_t i = begin; i < end; ++i) {
            const std::size_t r = misses[i];
            cache_[r].power_w = sim_.wall_power_w(r, eval_at_, scratch_[slot]);
          }
        });
    for (const std::size_t r : misses) {
      cache_[r].memo.emplace(cache_[r].fingerprint, cache_[r].power_w);
    }
  }

  // Serial ascending fold over every router — the same order TraceEngine's
  // full recompute uses, so delta answers are bit-identical to it.
  double total = 0.0;
  for (const RouterCache& entry : cache_) total += entry.power_w;

  WhatIfAnswer answer;
  answer.name = std::move(name);
  answer.network_power_w = total;
  answer.saved_vs_baseline_w = answers_.empty() ? 0.0 : baseline_w_ - total;
  answer.routers_recomputed = misses.size();
  answer.cache_hits = (cache_.size() - dirty_list_.size()) + hits;

  stats_.queries += 1;
  stats_.routers_recomputed += answer.routers_recomputed;
  stats_.cache_hits += answer.cache_hits;
  const std::uint64_t rebuilds = sim_.plan_rebuilds();
  stats_.plan_rebuilds += rebuilds - plan_rebuilds_seen_;
  plan_rebuilds_seen_ = rebuilds;
  if constexpr (obs::kEnabled) {
    if (options_.registry != nullptr) {
      options_.registry->add(0, "whatif.queries");
      options_.registry->add(0, "whatif.routers_recomputed",
                             answer.routers_recomputed);
      options_.registry->add(0, "whatif.cache_hits", answer.cache_hits);
    }
  }

  for (const std::size_t r : dirty_list_) dirty_[r] = 0;
  dirty_list_.clear();
  answers_.push_back(std::move(answer));
  return answers_.back();
}

double WhatIfEngine::baseline_w() {
  if (has_baseline_) {
    throw std::logic_error("WhatIfEngine: baseline already measured");
  }
  has_baseline_ = true;
  for (std::size_t r = 0; r < cache_.size(); ++r) mark_dirty(r);
  baseline_w_ = record("baseline").network_power_w;
  return baseline_w_;
}

WhatIfAnswer WhatIfEngine::run_sleep_query(std::span<const int> links,
                                           bool commit) {
  require_baseline();
  std::vector<bool> asleep = asleep_;
  std::vector<double> loads = loads_;
  std::uint64_t digest = route_digest_;
  std::vector<int> accepted;
  std::vector<int> rejected;
  std::size_t checks = 0;
  std::size_t memo_hits = 0;

  for (const int raw : links) {
    if (raw < 0 || static_cast<std::size_t>(raw) >= asleep.size()) {
      throw std::out_of_range("WhatIfEngine: link index out of range");
    }
    const auto link = static_cast<std::size_t>(raw);
    if (asleep[link]) {
      rejected.push_back(raw);
      continue;
    }
    ++checks;
    // The memo key digests the committed routing state plus this query's
    // accepted prefix — exactly what sleep_feasibility's answer depends on —
    // so a probe and its matching commit, or adjacent overlapping queries,
    // share each BFS + ceiling evaluation.
    const std::uint64_t key =
        fnv_mix(fnv_mix(digest, kProbeSalt), static_cast<std::uint64_t>(link));
    SleepFeasibility feasibility;
    const auto memoized = feasibility_memo_.find(key);
    if (memoized != feasibility_memo_.end()) {
      ++memo_hits;
      feasibility = memoized->second;
    } else {
      feasibility = sleep_feasibility(sim_.topology(), asleep, router_down_,
                                      loads, link,
                                      options_.hypnos.max_utilization);
      feasibility_memo_.emplace(key, feasibility);
    }
    if (!feasibility.feasible) {
      rejected.push_back(raw);
      continue;
    }
    asleep[link] = true;
    for (const int on_path : feasibility.detour) {
      loads[static_cast<std::size_t>(on_path)] += loads[link];
    }
    loads[link] = 0.0;
    digest =
        fnv_mix(fnv_mix(digest, kCommitSalt), static_cast<std::uint64_t>(link));
    accepted.push_back(raw);
  }

  stats_.feasibility_checks += checks;
  stats_.feasibility_memo_hits += memo_hits;
  if constexpr (obs::kEnabled) {
    if (options_.registry != nullptr) {
      options_.registry->add(0, "whatif.feasibility_checks", checks);
      options_.registry->add(0, "whatif.feasibility_memo_hits", memo_hits);
    }
  }

  if (commit && !accepted.empty()) {
    const NetworkTopology& topology = sim_.topology();
    for (const int raw : accepted) {
      const InternalLink& link =
          topology.links.at(static_cast<std::size_t>(raw));
      for (const auto& [router, iface] :
           {std::pair{link.router_a, link.iface_a},
            std::pair{link.router_b, link.iface_b}}) {
        StateOverride down;
        down.router = router;
        down.iface = iface;
        down.from = std::numeric_limits<SimTime>::min();
        down.to = std::numeric_limits<SimTime>::max();
        down.state = InterfaceState::kPlugged;
        sim_.add_override(down);
        mark_dirty(static_cast<std::size_t>(router));
      }
      sleeping_links_.push_back(raw);
    }
    asleep_ = std::move(asleep);
    loads_ = std::move(loads);
    route_digest_ = digest;
  }

  std::string name = std::string(commit ? "sleep" : "probe") + " links (" +
                     std::to_string(accepted.size()) + "/" +
                     std::to_string(links.size()) + " feasible)";
  WhatIfAnswer& recorded = record(std::move(name));
  recorded.accepted_links = std::move(accepted);
  recorded.rejected_links = std::move(rejected);
  return recorded;
}

WhatIfAnswer WhatIfEngine::sleep_links(std::span<const int> links) {
  return run_sleep_query(links, /*commit=*/true);
}

WhatIfAnswer WhatIfEngine::probe_sleep_links(std::span<const int> links) {
  return run_sleep_query(links, /*commit=*/false);
}

WhatIfAnswer WhatIfEngine::set_psu_mode(PsuMode mode) {
  require_baseline();
  int eligible = 0;
  for (std::size_t r = 0; r < sim_.router_count(); ++r) {
    if (sim_.device(r).psus().size() < 2) continue;
    ++eligible;
    if (sim_.device(r).psu_mode() == mode) continue;
    sim_.device(r).set_psu_mode(mode);
    mark_dirty(r);
  }
  const char* label =
      mode == PsuMode::kHotStandby ? "hot-standby" : "active-active";
  return record(std::string("psu mode ") + label + " (" +
                std::to_string(eligible) + " routers)");
}

WhatIfAnswer WhatIfEngine::unplug_spares() {
  require_baseline();
  int removed = 0;
  const NetworkTopology& topology = sim_.topology();
  for (std::size_t r = 0; r < topology.routers.size(); ++r) {
    const auto& interfaces = topology.routers[r].interfaces;
    bool touched = false;
    for (std::size_t i = 0; i < interfaces.size(); ++i) {
      if (!interfaces[i].spare) continue;
      sim_.remove_transceiver_at(static_cast<int>(r), static_cast<int>(i),
                                 std::numeric_limits<SimTime>::min());
      ++removed;
      touched = true;
    }
    if (touched) mark_dirty(r);
  }
  return record("unplug spare transceivers (" + std::to_string(removed) + ")");
}

WhatIfAnswer WhatIfEngine::decommission_pop(int pop) {
  require_baseline();
  const NetworkTopology& topology = sim_.topology();
  if (pop < 0 || static_cast<std::size_t>(pop) >= topology.pops.size()) {
    throw std::out_of_range("WhatIfEngine: pop index out of range");
  }
  int removed = 0;
  for (std::size_t r = 0; r < topology.routers.size(); ++r) {
    if (topology.routers[r].pop != pop) continue;
    if (router_down_[r]) continue;
    sim_.decommission_at(r, eval_at_);
    router_down_[r] = true;
    mark_dirty(r);
    ++removed;
  }
  if (removed > 0) {
    route_digest_ = fnv_mix(fnv_mix(route_digest_, kPopSalt),
                            static_cast<std::uint64_t>(pop));
  }
  return record("decommission " + topology.pops[static_cast<std::size_t>(pop)] +
                " (" + std::to_string(removed) + " routers)");
}

HypnosResult WhatIfEngine::sleep_result() const {
  HypnosResult result;
  result.sleeping_links = sleeping_links_;
  result.candidate_links = asleep_.size();
  result.final_loads_bps = loads_;
  return result;
}

}  // namespace joules
