#include "network/federated.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "device/catalog.hpp"
#include "device/transceiver.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

constexpr std::size_t kPortTypes = static_cast<std::size_t>(PortType::kRJ45) + 1;
constexpr std::size_t kRates = static_cast<std::size_t>(LineRate::kG400) + 1;

enum class Tier : std::uint8_t { kAccess, kAggregation, kCore };

// The per-tier hardware zoo every domain samples from — the deployed models
// of Table 1. Each domain draws its own vendor-bias weights over these, so
// federations mix hardware the way real multi-ISP fleets do.
constexpr std::array<const char*, 3> kAccessZoo = {
    "ASR-920-24SZ-M", "N540X-8Z16G-SYS-A", "ASR-9001"};
constexpr std::array<const char*, 3> kAggZoo = {
    "N540-24Z8Q2C-M", "NCS-55A1-24Q6H-SS", "NCS-55A1-48Q6H"};
constexpr std::array<const char*, 4> kCoreZoo = {
    "NCS-55A1-24H", "Nexus9336-FX2", "8201-32FH", "8201-24H8FH"};

constexpr std::array<TransceiverKind, 4> kOpticPreference = {
    TransceiverKind::kLR4, TransceiverKind::kLR, TransceiverKind::kFR4,
    TransceiverKind::kSR4};

// Per-model planning data, computed once per distinct model instead of per
// link — at 10k routers the generator plans tens of thousands of links, so
// the per-call profile scan of the switch-like generator would dominate.
struct ModelInfo {
  RouterSpec spec;
  std::array<int, kPortTypes> port_budget{};
  // Preference-ordered candidate profiles per (rate, prefer_dac): the first
  // candidate whose port type still has budget wins — same scoring as the
  // switch-like generator's find_profile_for.
  std::array<std::array<std::vector<ProfileKey>, 2>, kRates> candidates;
};

int profile_score(const ProfileKey& key, bool prefer_dac) {
  int score = 0;
  const bool is_dac = key.transceiver == TransceiverKind::kPassiveDAC;
  if (prefer_dac == is_dac) score += 10;
  for (std::size_t i = 0; i < kOpticPreference.size(); ++i) {
    if (key.transceiver == kOpticPreference[i]) {
      score += static_cast<int>(kOpticPreference.size() - i);
    }
  }
  return score;
}

ModelInfo make_model_info(const std::string& model) {
  ModelInfo info;
  info.spec = find_router_spec(model).value();
  for (const PortGroup& group : info.spec.ports) {
    info.port_budget[static_cast<std::size_t>(group.type)] +=
        static_cast<int>(group.count);
  }
  const std::vector<InterfaceProfile> profiles = info.spec.truth.profiles();
  for (std::size_t rate = 0; rate < kRates; ++rate) {
    for (int dac = 0; dac < 2; ++dac) {
      std::vector<ProfileKey>& out = info.candidates[rate][dac];
      for (const InterfaceProfile& profile : profiles) {
        if (static_cast<std::size_t>(profile.key.rate) == rate) {
          out.push_back(profile.key);
        }
      }
      std::stable_sort(out.begin(), out.end(),
                       [dac](const ProfileKey& a, const ProfileKey& b) {
                         return profile_score(a, dac != 0) >
                                profile_score(b, dac != 0);
                       });
    }
  }
  return info;
}

std::string part_number_for(const ProfileKey& key) {
  if (const auto module =
          find_transceiver(key.port, key.transceiver, key.rate)) {
    return module->part_number;
  }
  return std::string(to_string(key.port)) + "-" +
         std::string(to_string(key.rate)) + "-" +
         std::string(to_string(key.transceiver));
}

WorkloadParams workload_for(const ProfileKey& key, double median_frac,
                            Rng& rng) {
  WorkloadParams params;
  const double line = line_rate_bps(key.rate);
  params.mean_rate_bps =
      std::min(0.6 * line, rng.log_normal(median_frac * line, 0.7));
  params.diurnal_amplitude = rng.uniform(0.25, 0.45);
  params.weekend_factor = rng.uniform(0.75, 0.9);
  params.jitter_frac = rng.uniform(0.03, 0.08);
  params.mean_frame_bytes = rng.uniform(600, 1000);
  params.annual_growth = rng.uniform(0.1, 0.3);
  params.peak_hour_utc = static_cast<int>(rng.uniform_int(12, 16));
  return params;
}

// Weighted pick over a small candidate set (cumulative scan; weights > 0).
std::size_t weighted_pick(const std::vector<double>& weights, Rng& rng) {
  double total = 0.0;
  for (const double w : weights) total += w;
  const double roll = rng.uniform(0.0, total);
  double cursor = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cursor += weights[i];
    if (roll < cursor) return i;
  }
  return weights.size() - 1;
}

void check_fraction(double value, const char* name) {
  if (!(value >= 0.0 && value <= 1.0)) {
    throw std::invalid_argument(
        std::string("FederatedTopologyOptions: ") + name +
        " must lie in [0, 1]");
  }
}

}  // namespace

void FederatedTopologyOptions::validate() const {
  if (domains < 1) {
    throw std::invalid_argument(
        "FederatedTopologyOptions: domains must be >= 1");
  }
  if (pops_per_domain < 1) {
    throw std::invalid_argument(
        "FederatedTopologyOptions: pops_per_domain must be >= 1");
  }
  if (routers_per_pop < 1) {
    throw std::invalid_argument(
        "FederatedTopologyOptions: routers_per_pop must be >= 1");
  }
  if (mean_core_degree < 0.0 ||
      mean_core_degree > static_cast<double>(router_count())) {
    throw std::invalid_argument(
        "FederatedTopologyOptions: mean_core_degree must lie in "
        "[0, router_count()]");
  }
  if (access_uplinks < 1 || access_uplinks > router_count()) {
    throw std::invalid_argument(
        "FederatedTopologyOptions: access_uplinks must lie in "
        "[1, router_count()]");
  }
  check_fraction(external_iface_frac, "external_iface_frac");
  if (external_iface_frac >= 1.0) {
    throw std::invalid_argument(
        "FederatedTopologyOptions: external_iface_frac must be < 1");
  }
  check_fraction(interdomain_link_frac, "interdomain_link_frac");
  check_fraction(spare_transceiver_frac, "spare_transceiver_frac");
  check_fraction(external_load_median_frac, "external_load_median_frac");
  check_fraction(lifecycle_event_frac, "lifecycle_event_frac");
  if (study_end <= study_begin) {
    throw std::invalid_argument(
        "FederatedTopologyOptions: study window is empty");
  }
}

FederatedTopologyGenerator::FederatedTopologyGenerator(
    FederatedTopologyOptions options)
    : options_(options) {
  options_.validate();
}

FederatedTopology FederatedTopologyGenerator::build() const {
  const FederatedTopologyOptions& opt = options_;
  opt.validate();
  Rng rng(opt.seed);

  FederatedTopology fed;
  NetworkTopology& topology = fed.network;
  // The embedded TopologyOptions carry the fields downstream consumers read
  // (seed, study window, PoP count); the switch-like tier counts stay zero —
  // FederatedTopologyOptions::router_count() is the federation's truth.
  topology.options.seed = opt.seed;
  topology.options.pop_count = opt.domains * opt.pops_per_domain;
  topology.options.study_begin = opt.study_begin;
  topology.options.study_end = opt.study_end;
  topology.options.access_asr920 = 0;
  topology.options.access_n540x = 0;
  topology.options.access_asr9001 = 0;
  topology.options.agg_n540 = 0;
  topology.options.agg_ncs24q6h = 0;
  topology.options.agg_ncs48q6h = 0;
  topology.options.core_ncs24h = 0;
  topology.options.core_nexus9336 = 0;
  topology.options.core_8201_32fh = 0;
  topology.options.core_8201_24h8fh = 0;
  topology.options.spare_transceiver_frac = opt.spare_transceiver_frac;
  topology.options.external_load_median_frac = opt.external_load_median_frac;

  // ===== Stage 1: topology — domains, PoPs, routers =======================
  // Per-PoP tier mix: at least one core router per PoP, ~1/4 aggregation,
  // the rest access.
  const int rpp = opt.routers_per_pop;
  const int core_per_pop = std::max(1, rpp / 8);
  const int agg_per_pop = std::clamp(rpp / 4, 0, rpp - core_per_pop);

  std::vector<ModelInfo> models;      // distinct models, in first-use order
  std::vector<std::string> model_names;
  std::vector<int> model_of_router;   // router -> models index
  std::vector<Tier> tiers;            // router -> tier
  auto intern_model = [&](const std::string& name) {
    for (std::size_t i = 0; i < model_names.size(); ++i) {
      if (model_names[i] == name) return static_cast<int>(i);
    }
    model_names.push_back(name);
    models.push_back(make_model_info(name));
    return static_cast<int>(models.size()) - 1;
  };

  constexpr std::array<double, 6> kPsuCaps = {250, 400, 750, 1100, 2000, 2700};
  for (int d = 0; d < opt.domains; ++d) {
    char domain_name[16];
    std::snprintf(domain_name, sizeof domain_name, "d%02d", d + 1);
    FederatedDomain domain;
    domain.name = domain_name;
    domain.first_pop = static_cast<int>(topology.pops.size());
    domain.pop_count = opt.pops_per_domain;
    domain.first_router = static_cast<int>(topology.routers.size());
    domain.router_count = opt.pops_per_domain * rpp;

    // The domain's hardware zoo: base weights per catalog model plus a
    // boosted "house flagship" per tier, all drawn from a domain-forked
    // stream so adding a domain never perturbs the others' purchases.
    Rng zoo_rng = rng.fork(domain.name);
    auto domain_weights = [&zoo_rng](std::size_t count) {
      std::vector<double> weights(count);
      for (double& w : weights) w = zoo_rng.uniform(0.2, 1.0);
      weights[static_cast<std::size_t>(zoo_rng.uniform_int(
          0, static_cast<std::int64_t>(count) - 1))] *= 2.5;
      return weights;
    };
    const std::vector<double> access_weights = domain_weights(kAccessZoo.size());
    const std::vector<double> agg_weights = domain_weights(kAggZoo.size());
    const std::vector<double> core_weights = domain_weights(kCoreZoo.size());

    for (int p = 0; p < opt.pops_per_domain; ++p) {
      char pop_name[32];
      std::snprintf(pop_name, sizeof pop_name, "%s-pop%02d", domain_name,
                    p + 1);
      const int pop_index = static_cast<int>(topology.pops.size());
      topology.pops.emplace_back(pop_name);
      for (int k = 0; k < rpp; ++k) {
        const Tier tier = k < core_per_pop ? Tier::kCore
                          : k < core_per_pop + agg_per_pop
                              ? Tier::kAggregation
                              : Tier::kAccess;
        std::string model;
        switch (tier) {
          case Tier::kCore:
            model = kCoreZoo[weighted_pick(core_weights, zoo_rng)];
            break;
          case Tier::kAggregation:
            model = kAggZoo[weighted_pick(agg_weights, zoo_rng)];
            break;
          case Tier::kAccess:
            model = kAccessZoo[weighted_pick(access_weights, zoo_rng)];
            break;
        }
        DeployedRouter router;
        router.model = model;
        router.pop = pop_index;
        char name[48];
        std::snprintf(name, sizeof name, "%s-r%d", pop_name, k + 1);
        router.name = name;
        router.commissioned_at = opt.study_begin -
                                 2 * 365 * kSecondsPerDay +
                                 rng.uniform_int(0, 300) * kSecondsPerDay;
        const int model_id = intern_model(model);
        if (rng.chance(0.35)) {
          const RouterSpec& spec = models[static_cast<std::size_t>(model_id)].spec;
          for (std::size_t c = 0; c + 1 < kPsuCaps.size(); ++c) {
            if (kPsuCaps[c] == spec.psu_capacity_w) {
              router.psu_capacity_override_w = kPsuCaps[c + 1];
              break;
            }
          }
        }
        topology.routers.push_back(std::move(router));
        model_of_router.push_back(model_id);
        tiers.push_back(tier);
        fed.domain_of_router.push_back(d);
      }
    }
    fed.domains.push_back(std::move(domain));
  }
  const int n = static_cast<int>(topology.routers.size());

  // Port ledger, flat per PortType (the switch-like generator's map ledger
  // would cost a lookup per candidate at 10k-router scale).
  std::vector<std::array<int, kPortTypes>> ports_used(
      static_cast<std::size_t>(n), std::array<int, kPortTypes>{});
  auto free_ports = [&](int router, PortType type) {
    const ModelInfo& info =
        models[static_cast<std::size_t>(model_of_router[static_cast<std::size_t>(router)])];
    return info.port_budget[static_cast<std::size_t>(type)] -
           ports_used[static_cast<std::size_t>(router)]
                     [static_cast<std::size_t>(type)];
  };
  auto pick_profile = [&](int router, LineRate rate,
                          bool prefer_dac) -> const ProfileKey* {
    const ModelInfo& info =
        models[static_cast<std::size_t>(model_of_router[static_cast<std::size_t>(router)])];
    for (const ProfileKey& key :
         info.candidates[static_cast<std::size_t>(rate)][prefer_dac ? 1 : 0]) {
      if (free_ports(router, key.port) > 0) return &key;
    }
    return nullptr;
  };

  // ===== Stage 2: topology — links ========================================
  constexpr std::array<LineRate, 6> kLinkRates = {
      LineRate::kG400, LineRate::kG100, LineRate::kG50,
      LineRate::kG25,  LineRate::kG10,  LineRate::kG1};
  auto add_link = [&](int router_a, int router_b) -> bool {
    if (router_a == router_b) return false;
    const bool same_pop =
        topology.routers[static_cast<std::size_t>(router_a)].pop ==
        topology.routers[static_cast<std::size_t>(router_b)].pop;
    const ProfileKey* profile_a = nullptr;
    const ProfileKey* profile_b = nullptr;
    for (const LineRate rate : kLinkRates) {
      profile_a = pick_profile(router_a, rate, same_pop);
      if (profile_a == nullptr) continue;
      profile_b = pick_profile(router_b, rate, same_pop);
      if (profile_b != nullptr) break;
    }
    if (profile_a == nullptr || profile_b == nullptr) return false;

    // Traffic-matrix coupling: both ends share one workload stream.
    const std::uint64_t shared_seed = rng.next();
    Rng workload_rng = Rng(shared_seed).fork("link-load");
    const WorkloadParams workload = workload_for(
        *profile_a, 1.5 * opt.external_load_median_frac, workload_rng);

    const int link_id = static_cast<int>(topology.links.size());
    auto make_iface = [&](int router, const ProfileKey& profile) {
      DeployedRouter& owner =
          topology.routers[static_cast<std::size_t>(router)];
      DeployedInterface iface;
      iface.name = std::string(to_string(profile.port)) + "-" +
                   std::to_string(owner.interfaces.size());
      iface.profile = profile;
      iface.transceiver_part = part_number_for(profile);
      iface.external = false;
      iface.link_id = link_id;
      iface.workload = workload;
      iface.workload_seed = shared_seed;
      ports_used[static_cast<std::size_t>(router)]
                [static_cast<std::size_t>(profile.port)] += 1;
      owner.interfaces.push_back(std::move(iface));
      return static_cast<int>(owner.interfaces.size()) - 1;
    };

    InternalLink link;
    link.router_a = router_a;
    link.iface_a = make_iface(router_a, *profile_a);
    link.router_b = router_b;
    link.iface_b = make_iface(router_b, *profile_b);
    topology.links.push_back(link);
    return true;
  };

  // Intra-domain backbone: a core ring per domain (ordered by PoP, so the
  // ring visits every PoP) plus preferential-attachment chords toward the
  // mean-degree target — the rich-get-richer sampling that gives backbone
  // graphs their heavy-tailed degree distribution.
  std::vector<std::vector<int>> domain_cores(
      static_cast<std::size_t>(opt.domains));
  std::vector<std::vector<int>> pop_aggs(topology.pops.size());
  std::vector<std::vector<int>> pop_cores(topology.pops.size());
  for (int r = 0; r < n; ++r) {
    const std::size_t pop =
        static_cast<std::size_t>(topology.routers[static_cast<std::size_t>(r)].pop);
    switch (tiers[static_cast<std::size_t>(r)]) {
      case Tier::kCore:
        domain_cores[static_cast<std::size_t>(
                         fed.domain_of_router[static_cast<std::size_t>(r)])]
            .push_back(r);
        pop_cores[pop].push_back(r);
        break;
      case Tier::kAggregation:
        pop_aggs[pop].push_back(r);
        break;
      case Tier::kAccess:
        break;
    }
  }
  for (int d = 0; d < opt.domains; ++d) {
    const std::vector<int>& cores = domain_cores[static_cast<std::size_t>(d)];
    if (cores.size() >= 2) {
      for (std::size_t i = 0; i < cores.size(); ++i) {
        add_link(cores[i], cores[(i + 1) % cores.size()]);
      }
    }
    // One bag entry per incident backbone link end: sampling endpoints from
    // the bag is degree-proportional (preferential attachment).
    std::vector<int> bag(cores.begin(), cores.end());
    bag.insert(bag.end(), cores.begin(), cores.end());
    const auto chords = static_cast<int>(
        static_cast<double>(cores.size()) *
        std::max(0.0, opt.mean_core_degree - 2.0) / 2.0);
    for (int c = 0; c < chords && !bag.empty(); ++c) {
      const int a = bag[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(bag.size()) - 1))];
      const int b = bag[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(bag.size()) - 1))];
      if (add_link(a, b)) {
        bag.push_back(a);
        bag.push_back(b);
      }
    }
  }

  // Aggregation dual-homes into the PoP core (second home in the next PoP of
  // the same domain); access dual-homes into aggregation with the same
  // fallback scan. The scan is bounded by the domain's PoP list, so every
  // router attaches as long as any port budget in the domain remains.
  auto uplink_targets = [&](int router, bool want_agg) {
    std::vector<int> targets;
    const int d = fed.domain_of_router[static_cast<std::size_t>(router)];
    const FederatedDomain& domain = fed.domains[static_cast<std::size_t>(d)];
    const int local_pop = topology.routers[static_cast<std::size_t>(router)].pop;
    for (int offset = 0; offset < domain.pop_count; ++offset) {
      const std::size_t pop = static_cast<std::size_t>(
          domain.first_pop +
          (local_pop - domain.first_pop + offset) % domain.pop_count);
      const std::vector<int>& primary = want_agg ? pop_aggs[pop] : pop_cores[pop];
      targets.insert(targets.end(), primary.begin(), primary.end());
      const std::vector<int>& secondary = want_agg ? pop_cores[pop] : pop_aggs[pop];
      targets.insert(targets.end(), secondary.begin(), secondary.end());
    }
    return targets;
  };
  for (int r = 0; r < n; ++r) {
    const Tier tier = tiers[static_cast<std::size_t>(r)];
    if (tier == Tier::kCore) continue;
    const int wanted =
        tier == Tier::kAggregation ? 2 : opt.access_uplinks;
    const std::vector<int> targets =
        uplink_targets(r, /*want_agg=*/tier == Tier::kAccess);
    int attached = 0;
    for (std::size_t i = 0; i < targets.size() && attached < wanted; ++i) {
      if (add_link(r, targets[i])) ++attached;
    }
  }

  // Inter-domain peering: a domain-level ring keeps the federation connected;
  // extra peerings follow interdomain_link_frac.
  const std::size_t intra_links = topology.links.size();
  auto random_core = [&](int d) -> int {
    const std::vector<int>& cores = domain_cores[static_cast<std::size_t>(d)];
    if (cores.empty()) return -1;
    return cores[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(cores.size()) - 1))];
  };
  if (opt.domains > 1) {
    for (int d = 0; d < opt.domains; ++d) {
      if (opt.domains == 2 && d == 1) break;  // avoid a doubled 2-domain ring
      const int a = random_core(d);
      const int b = random_core((d + 1) % opt.domains);
      if (a >= 0 && b >= 0) add_link(a, b);
    }
    const auto extra = static_cast<int>(
        opt.interdomain_link_frac * static_cast<double>(intra_links));
    for (int e = 0; e < extra; ++e) {
      const int da = static_cast<int>(rng.uniform_int(0, opt.domains - 1));
      const int db = static_cast<int>(rng.uniform_int(0, opt.domains - 1));
      if (da == db) continue;
      const int a = random_core(da);
      const int b = random_core(db);
      if (a >= 0 && b >= 0) add_link(a, b);
    }
  }
  for (const InternalLink& link : topology.links) {
    if (fed.domain_of_router[static_cast<std::size_t>(link.router_a)] !=
        fed.domain_of_router[static_cast<std::size_t>(link.router_b)]) {
      ++fed.interdomain_links;
    }
  }

  // ===== Stage 3: traffic matrix — external interfaces + spares ===========
  // Customer/peer/transit ports until external_iface_frac of all non-spare
  // interfaces face outward: E / (L + E) = frac  =>  E = L * frac/(1-frac),
  // allocated per router proportionally to tier weight (access-heavy, like
  // the Switch dataset) with stochastic rounding.
  const std::size_t link_ifaces = topology.interface_count();
  const double external_target = static_cast<double>(link_ifaces) *
                                 opt.external_iface_frac /
                                 (1.0 - opt.external_iface_frac);
  std::vector<double> external_weight(static_cast<std::size_t>(n), 0.0);
  double weight_total = 0.0;
  for (int r = 0; r < n; ++r) {
    double w = 0.0;
    switch (tiers[static_cast<std::size_t>(r)]) {
      case Tier::kAccess: w = 4.0; break;
      case Tier::kAggregation: w = 3.0; break;
      case Tier::kCore: w = 2.5; break;
    }
    w *= rng.uniform(0.75, 1.25);
    external_weight[static_cast<std::size_t>(r)] = w;
    weight_total += w;
  }
  constexpr std::array<LineRate, 5> kExternalRates = {
      LineRate::kG100, LineRate::kG400, LineRate::kG25, LineRate::kG10,
      LineRate::kG1};
  for (int r = 0; r < n; ++r) {
    const double exact = external_target *
                         external_weight[static_cast<std::size_t>(r)] /
                         weight_total;
    auto wanted = static_cast<int>(exact);
    if (rng.chance(exact - static_cast<double>(wanted))) ++wanted;
    DeployedRouter& router = topology.routers[static_cast<std::size_t>(r)];
    for (int k = 0; k < wanted; ++k) {
      const ProfileKey* profile = nullptr;
      for (const LineRate rate : kExternalRates) {
        profile = pick_profile(r, rate, /*prefer_dac=*/false);
        if (profile != nullptr) break;
      }
      if (profile == nullptr) break;
      DeployedInterface iface;
      iface.name = std::string(to_string(profile->port)) + "-" +
                   std::to_string(router.interfaces.size());
      iface.profile = *profile;
      iface.transceiver_part = part_number_for(*profile);
      iface.external = true;
      iface.workload_seed = rng.next();
      Rng workload_rng = Rng(iface.workload_seed).fork("ext-load");
      iface.workload =
          workload_for(*profile, opt.external_load_median_frac, workload_rng);
      ports_used[static_cast<std::size_t>(r)]
                [static_cast<std::size_t>(profile->port)] += 1;
      router.interfaces.push_back(std::move(iface));
    }
  }

  const auto spares =
      static_cast<int>(opt.spare_transceiver_frac *
                       static_cast<double>(topology.interface_count()));
  for (int s = 0; s < spares; ++s) {
    const int r = static_cast<int>(rng.uniform_int(0, n - 1));
    DeployedRouter& router = topology.routers[static_cast<std::size_t>(r)];
    const ProfileKey* profile = nullptr;
    for (const LineRate rate :
         {LineRate::kG100, LineRate::kG10, LineRate::kG1}) {
      profile = pick_profile(r, rate, /*prefer_dac=*/false);
      if (profile != nullptr) break;
    }
    if (profile == nullptr) continue;
    DeployedInterface iface;
    iface.name = std::string(to_string(profile->port)) + "-spare-" +
                 std::to_string(router.interfaces.size());
    iface.profile = *profile;
    iface.transceiver_part = part_number_for(*profile);
    iface.external = false;
    iface.spare = true;
    iface.workload_seed = rng.next();
    ports_used[static_cast<std::size_t>(r)]
              [static_cast<std::size_t>(profile->port)] += 1;
    router.interfaces.push_back(std::move(iface));
  }

  // ===== Stage 4: link state — lifecycle events ===========================
  // A sprinkle of mid-study commissions and decommissions (the Fig. 1 power
  // steps, scaled to fleet size); never the federation's only core ring
  // nodes, so peering stays meaningful through the study.
  for (int r = 0; r < n; ++r) {
    if (tiers[static_cast<std::size_t>(r)] == Tier::kCore) continue;
    if (rng.chance(opt.lifecycle_event_frac / 2.0)) {
      topology.routers[static_cast<std::size_t>(r)].decommissioned_at =
          opt.study_begin + rng.uniform_int(14, 120) * kSecondsPerDay;
    } else if (rng.chance(opt.lifecycle_event_frac / 2.0)) {
      topology.routers[static_cast<std::size_t>(r)].commissioned_at =
          opt.study_begin + rng.uniform_int(14, 120) * kSecondsPerDay;
    }
  }

  return fed;
}

FederatedTopology build_federated_network(
    const FederatedTopologyOptions& options) {
  return FederatedTopologyGenerator(options).build();
}

}  // namespace joules
