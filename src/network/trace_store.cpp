#include "network/trace_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace joules {

TraceStore::TraceStore(std::size_t routers, std::size_t interfaces,
                       Options options)
    : routers_(routers), interfaces_(interfaces), options_(options) {
  if (options_.max_block_bytes == 0) {
    throw std::invalid_argument("TraceStore: max_block_bytes must be positive");
  }
}

void TraceStore::begin_sweep(SimTime begin, SimTime step,
                             std::size_t total_timesteps) {
  if (step <= 0) {
    throw std::invalid_argument("TraceStore: step must be positive");
  }
  begin_ = begin;
  step_ = step;
  total_timesteps_ = total_timesteps;
  next_timestep_ = 0;
  open_rows_ = 0;
  blocks_streamed_ = 0;
  peak_resident_samples_ = 0;
  if (total_timesteps == 0) {
    block_ = 0;
    return;
  }
  // Same block-length derivation the trace engine historically used, so the
  // block boundaries (and trace.blocks) stay put: as many rows as fit the
  // byte budget, at least one, never more than the sweep.
  const std::size_t row_bytes = sizeof(double) * (interfaces_ + routers_);
  block_ = std::clamp<std::size_t>(
      row_bytes > 0 ? options_.max_block_bytes / row_bytes : total_timesteps, 1,
      total_timesteps);
  power_.assign(block_ * routers_, 0.0);
  traffic_.assign(block_ * interfaces_, 0.0);
  total_power_.assign(block_, 0.0);
  total_traffic_.assign(block_, 0.0);
  peak_resident_samples_ = power_.size() + traffic_.size() +
                           total_power_.size() + total_traffic_.size();
}

std::size_t TraceStore::open_block() {
  if (open_rows_ != 0) {
    throw std::logic_error("TraceStore: previous block was never committed");
  }
  if (next_timestep_ >= total_timesteps_) return 0;
  open_rows_ = std::min(block_, total_timesteps_ - next_timestep_);
  return open_rows_;
}

std::span<double> TraceStore::power_column() noexcept {
  return {power_.data(), open_rows_ * routers_};
}

std::span<double> TraceStore::traffic_column() noexcept {
  return {traffic_.data(), open_rows_ * interfaces_};
}

const TraceBlockView& TraceStore::commit_block(const BlockSink& sink) {
  if (open_rows_ == 0) {
    throw std::logic_error("TraceStore: no open block to commit");
  }
  // The bit-identity fold: per row, routers then interfaces, ascending flat
  // order — exactly the historical serial reduction.
  for (std::size_t j = 0; j < open_rows_; ++j) {
    const double* power_row = power_.data() + j * routers_;
    double power_sum = 0.0;
    for (std::size_t r = 0; r < routers_; ++r) power_sum += power_row[r];
    total_power_[j] = power_sum;
    const double* traffic_row = traffic_.data() + j * interfaces_;
    double traffic_sum = 0.0;
    for (std::size_t g = 0; g < interfaces_; ++g) traffic_sum += traffic_row[g];
    total_traffic_[j] = traffic_sum;
  }
  view_.begin = begin_ + static_cast<SimTime>(next_timestep_) * step_;
  view_.step = step_;
  view_.first_timestep = next_timestep_;
  view_.timesteps = open_rows_;
  view_.routers = routers_;
  view_.interfaces = interfaces_;
  view_.router_power_w = {power_.data(), open_rows_ * routers_};
  view_.interface_traffic_bps = {traffic_.data(), open_rows_ * interfaces_};
  view_.total_power_w = {total_power_.data(), open_rows_};
  view_.total_traffic_bps = {total_traffic_.data(), open_rows_};
  if (sink) sink(view_);
  next_timestep_ += open_rows_;
  open_rows_ = 0;
  ++blocks_streamed_;
  return view_;
}

void TraceStore::end_sweep() {
  if constexpr (obs::kEnabled) {
    if (options_.registry != nullptr) {
      options_.registry->add("trace.blocks_streamed", blocks_streamed_);
      // Monotonic counter semantics: each sweep adds its peak. Benches run
      // one sweep per iteration and export per-iteration averages, so the
      // exported value reads as the per-sweep peak — which the scale gate
      // pins with a --max-prefix ceiling.
      options_.registry->add("trace.peak_resident_samples",
                             static_cast<std::uint64_t>(peak_resident_samples_));
    }
  }
}

}  // namespace joules
