#include "network/dataset.hpp"

#include "network/trace_engine.hpp"
#include "stats/descriptive.hpp"

namespace joules {

namespace {

TraceEngineOptions serial_options() {
  TraceEngineOptions options;
  options.workers = 1;
  return options;
}

}  // namespace

NetworkTraces network_traces(const NetworkSimulation& sim, SimTime begin,
                             SimTime end, SimTime step) {
  // Serial compatibility wrapper; a single-worker engine runs inline on the
  // calling thread and produces bit-identical results to the historical loop.
  TraceEngine engine(sim, serial_options());
  return engine.network_traces(begin, end, step);
}

std::vector<PsuObservation> psu_snapshot(const NetworkSimulation& sim,
                                         SimTime t) {
  TraceEngine engine(sim, serial_options());
  return engine.psu_snapshot(t);
}

std::optional<double> snmp_median_power_w(const NetworkSimulation& sim,
                                          std::size_t router, SimTime begin,
                                          SimTime end, SimTime step) {
  std::vector<double> values;
  std::vector<InterfaceLoad> scratch;
  for (SimTime t = begin; t < end; t += step) {
    if (!sim.active(router, t)) continue;
    const auto reported = sim.reported_power_w(router, t, scratch);
    if (reported.has_value()) values.push_back(*reported);
  }
  if (values.empty()) return std::nullopt;
  return median(values);
}

TransceiverPowerReport transceiver_power_report(const NetworkSimulation& sim,
                                                SimTime t) {
  TransceiverPowerReport report;
  for (std::size_t r = 0; r < sim.router_count(); ++r) {
    if (!sim.active(r, t)) continue;
    report.network_power_w += sim.wall_power_w(r, t);
    const DeployedRouter& deployed = sim.topology().routers[r];
    const RouterSpec& spec = sim.device(r).spec();
    for (std::size_t i = 0; i < deployed.interfaces.size(); ++i) {
      const InterfaceState state = sim.interface_state(r, i, t);
      if (state == InterfaceState::kEmpty) continue;
      const InterfaceProfile* profile =
          spec.truth.find_profile_relaxed(deployed.interfaces[i].profile);
      if (profile == nullptr) continue;
      double module_power = profile->trx_in_power_w;
      if (state == InterfaceState::kUp) module_power += profile->trx_up_power_w;
      report.total_w += module_power;
      report.modules += 1;
      if (deployed.interfaces[i].external) {
        report.external_w += module_power;
        report.external_modules += 1;
      }
    }
  }
  return report;
}

VisibleInputs visible_inputs(const NetworkSimulation& sim, std::size_t router,
                             SimTime t) {
  VisibleInputs inputs;
  const DeployedRouter& deployed = sim.topology().routers[router];
  for (std::size_t i = 0; i < deployed.interfaces.size(); ++i) {
    const InterfaceLoad load = sim.interface_load(router, i, t);
    if (load.rate_bps <= 0.0 && load.rate_pps <= 0.0) {
      continue;  // no counters -> invisible to the operator
    }
    InterfaceConfig config;
    config.name = deployed.interfaces[i].name;
    config.profile = deployed.interfaces[i].profile;
    config.state = InterfaceState::kUp;
    inputs.configs.push_back(std::move(config));
    inputs.loads.push_back(load);
  }
  return inputs;
}

}  // namespace joules
