#include "network/dataset.hpp"

#include "stats/descriptive.hpp"

namespace joules {

NetworkTraces network_traces(const NetworkSimulation& sim, SimTime begin,
                             SimTime end, SimTime step) {
  NetworkTraces traces;

  // Capacity: each internal link counted once, externals once.
  for (const DeployedRouter& router : sim.topology().routers) {
    for (const DeployedInterface& iface : router.interfaces) {
      if (iface.spare) continue;
      const double line = line_rate_bps(iface.profile.rate);
      traces.capacity_bps += iface.external ? line : line / 2.0;
    }
  }

  for (SimTime t = begin; t < end; t += step) {
    double power = 0.0;
    double traffic = 0.0;
    for (std::size_t r = 0; r < sim.router_count(); ++r) {
      if (!sim.active(r, t)) continue;
      power += sim.wall_power_w(r, t);
      const auto& interfaces = sim.topology().routers[r].interfaces;
      for (std::size_t i = 0; i < interfaces.size(); ++i) {
        const InterfaceLoad load = sim.interface_load(r, i, t);
        // Loads sum both directions; halve to count carried traffic, and
        // halve internal links again (seen by both endpoints).
        traffic += load.rate_bps / (interfaces[i].external ? 2.0 : 4.0);
      }
    }
    traces.total_power_w.push(t, power);
    traces.total_traffic_bps.push(t, traffic);
  }
  return traces;
}

std::vector<PsuObservation> psu_snapshot(const NetworkSimulation& sim,
                                         SimTime t) {
  std::vector<PsuObservation> observations;
  for (std::size_t r = 0; r < sim.router_count(); ++r) {
    if (!sim.active(r, t)) continue;
    const DeployedRouter& deployed = sim.topology().routers[r];
    const auto readings = sim.sensor_snapshot(r, t);
    for (std::size_t p = 0; p < readings.size(); ++p) {
      PsuObservation obs;
      obs.router_name = deployed.name;
      obs.router_model = deployed.model;
      obs.psu_index = static_cast<int>(p);
      obs.capacity_w = sim.device(r).psus()[p].capacity_w();
      obs.input_power_w = readings[p].input_power_w;
      obs.output_power_w = readings[p].output_power_w;
      observations.push_back(std::move(obs));
    }
  }
  return observations;
}

std::optional<double> snmp_median_power_w(const NetworkSimulation& sim,
                                          std::size_t router, SimTime begin,
                                          SimTime end, SimTime step) {
  std::vector<double> values;
  for (SimTime t = begin; t < end; t += step) {
    if (!sim.active(router, t)) continue;
    const auto reported = sim.reported_power_w(router, t);
    if (reported.has_value()) values.push_back(*reported);
  }
  if (values.empty()) return std::nullopt;
  return median(values);
}

TransceiverPowerReport transceiver_power_report(const NetworkSimulation& sim,
                                                SimTime t) {
  TransceiverPowerReport report;
  for (std::size_t r = 0; r < sim.router_count(); ++r) {
    if (!sim.active(r, t)) continue;
    report.network_power_w += sim.wall_power_w(r, t);
    const DeployedRouter& deployed = sim.topology().routers[r];
    const RouterSpec& spec = sim.device(r).spec();
    for (std::size_t i = 0; i < deployed.interfaces.size(); ++i) {
      const InterfaceState state = sim.interface_state(r, i, t);
      if (state == InterfaceState::kEmpty) continue;
      const InterfaceProfile* profile =
          spec.truth.find_profile_relaxed(deployed.interfaces[i].profile);
      if (profile == nullptr) continue;
      double module_power = profile->trx_in_power_w;
      if (state == InterfaceState::kUp) module_power += profile->trx_up_power_w;
      report.total_w += module_power;
      report.modules += 1;
      if (deployed.interfaces[i].external) {
        report.external_w += module_power;
        report.external_modules += 1;
      }
    }
  }
  return report;
}

VisibleInputs visible_inputs(const NetworkSimulation& sim, std::size_t router,
                             SimTime t) {
  VisibleInputs inputs;
  const DeployedRouter& deployed = sim.topology().routers[router];
  for (std::size_t i = 0; i < deployed.interfaces.size(); ++i) {
    const InterfaceLoad load = sim.interface_load(router, i, t);
    if (load.rate_bps <= 0.0 && load.rate_pps <= 0.0) {
      continue;  // no counters -> invisible to the operator
    }
    InterfaceConfig config;
    config.name = deployed.interfaces[i].name;
    config.profile = deployed.interfaces[i].profile;
    config.state = InterfaceState::kUp;
    inputs.configs.push_back(std::move(config));
    inputs.loads.push_back(load);
  }
  return inputs;
}

}  // namespace joules
