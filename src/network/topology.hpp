// A Switch-like Tier-2 ISP topology (§1, dataset description).
//
// 107 routers across ~18 points of presence, in three tiers:
//   - access: ASR-920 / N540X / ASR-9001 devices with 2 x 10G uplinks;
//   - aggregation: N540 / NCS 24Q6H / 48Q6H devices;
//   - core: NCS-55A1-24H / Nexus 9336 / Cisco 8000 devices, ringed at 100G
//     with extra chords for redundancy (Hypnos needs reroute headroom).
// About half of all interfaces are *external* (customers, peers, transit) —
// 51 % in the Switch dataset — and a few percent of ports hold *spare*
// transceivers: plugged in, never brought up, invisible to traffic counters.
//
// Router names are anonymized like the paper's release: "pop07-r2" encodes
// the PoP relation but not the location.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "device/router.hpp"
#include "traffic/workload.hpp"

namespace joules {

struct TopologyOptions {
  std::uint64_t seed = 42;
  int pop_count = 18;
  // Tier mix, summing to 107 like the paper's SNMP dataset.
  int access_asr920 = 30;
  int access_n540x = 10;
  int access_asr9001 = 8;
  int agg_n540 = 15;
  int agg_ncs24q6h = 10;
  int agg_ncs48q6h = 8;
  int core_ncs24h = 12;
  int core_nexus9336 = 6;
  int core_8201_32fh = 5;
  int core_8201_24h8fh = 3;

  double spare_transceiver_frac = 0.03;
  double external_load_median_frac = 0.035;  // of line rate
  SimTime study_begin = make_time(2024, 9, 1);
  SimTime study_end = make_time(2025, 6, 30);

  [[nodiscard]] int router_count() const noexcept {
    return access_asr920 + access_n540x + access_asr9001 + agg_n540 +
           agg_ncs24q6h + agg_ncs48q6h + core_ncs24h + core_nexus9336 +
           core_8201_32fh + core_8201_24h8fh;
  }

  // Rejects degenerate inputs with std::invalid_argument: no PoPs (the router
  // placement divides by pop_count), negative tier counts, an empty fleet,
  // fractions outside [0, 1], or an empty study window.
  // build_switch_like_network() calls this first.
  void validate() const;
};

struct DeployedInterface {
  std::string name;
  ProfileKey profile;
  std::string transceiver_part;  // inventory entry ("QSFP28-100G-LR4", ...)
  bool external = true;          // connects outside the network
  bool spare = false;            // plugged, never brought up
  int link_id = -1;              // internal link index, -1 for external/spare
  WorkloadParams workload;       // offered load when up
  std::uint64_t workload_seed = 0;
};

struct DeployedRouter {
  std::string name;   // anonymized ("pop07-r2")
  std::string model;  // catalog model name
  int pop = 0;
  SimTime commissioned_at = std::numeric_limits<SimTime>::min();
  SimTime decommissioned_at = std::numeric_limits<SimTime>::max();
  // Per-unit PSU capacity override (0 = use the catalog spec). Real fleets
  // mix PSU options within a model; this also spreads the Fig. 6 load axis.
  double psu_capacity_override_w = 0.0;
  std::vector<DeployedInterface> interfaces;
};

struct InternalLink {
  int router_a = 0;
  int iface_a = 0;
  int router_b = 0;
  int iface_b = 0;
};

struct NetworkTopology {
  TopologyOptions options;
  std::vector<std::string> pops;
  std::vector<DeployedRouter> routers;
  std::vector<InternalLink> links;

  [[nodiscard]] std::size_t interface_count() const noexcept;
  [[nodiscard]] std::size_t external_interface_count() const noexcept;
};

// Deterministic in the options (including the seed).
[[nodiscard]] NetworkTopology build_switch_like_network(
    const TopologyOptions& options = {});

}  // namespace joules
