// Analysis-ready views of the simulated deployment — the shapes of the
// paper's dataset: network-wide power/traffic traces (Fig. 1), PSU sensor
// snapshots (§9.2), SNMP power medians (Table 1), the transceiver power
// accounting (§7), and the operator-visible model inputs of §6.2.
#pragma once

#include <utility>
#include <vector>

#include "model/power_model.hpp"
#include "network/simulation.hpp"
#include "psu/psu_unit.hpp"
#include "util/time_series.hpp"
#include "util/units.hpp"

namespace joules {

struct NetworkTraces {
  TimeSeries total_power_w;     // sum of wall power over active routers
  TimeSeries total_traffic_bps; // carried traffic (each link counted once)
  double capacity_bps = 0.0;    // total interface capacity (same convention)
};

// Samples the whole network every `step` seconds over [begin, end).
[[nodiscard]] NetworkTraces network_traces(const NetworkSimulation& sim,
                                           SimTime begin, SimTime end,
                                           SimTime step);

// One-time export of every active router's PSU sensors at `t` (the §9.2
// snapshot, including its physically-impossible readings).
[[nodiscard]] std::vector<PsuObservation> psu_snapshot(
    const NetworkSimulation& sim, SimTime t);

// Median of the SNMP-reported power over [begin, end) polled at `step`;
// nullopt for models that do not report power.
[[nodiscard]] std::optional<double> snmp_median_power_w(
    const NetworkSimulation& sim, std::size_t router, SimTime begin,
    SimTime end, SimTime step = 5 * kSecondsPerMinute);

// §7's transceiver accounting at time `t`: total transceiver power, the
// external share, and the concurrent total network power.
struct TransceiverPowerReport {
  double total_w = 0.0;
  double external_w = 0.0;
  std::size_t modules = 0;
  std::size_t external_modules = 0;
  double network_power_w = 0.0;

  [[nodiscard]] double share_of_network() const noexcept {
    return network_power_w > 0.0 ? total_w / network_power_w : 0.0;
  }
  [[nodiscard]] double external_share_of_transceivers() const noexcept {
    return total_w > 0.0 ? external_w / total_w : 0.0;
  }
};
[[nodiscard]] TransceiverPowerReport transceiver_power_report(
    const NetworkSimulation& sim, SimTime t);

// What an operator can reconstruct for a router at time `t` from inventory
// files + traffic counters (§6.2): interfaces with traffic are `kUp` with
// their inventory profile; interfaces without traffic are *absent* — the
// paper's pitfall ("an interface might be drawing power despite reporting no
// traffic counters"), which is exactly why spares and flapped-but-plugged
// transceivers make model predictions underestimate.
struct VisibleInputs {
  std::vector<InterfaceConfig> configs;
  std::vector<InterfaceLoad> loads;
};
[[nodiscard]] VisibleInputs visible_inputs(const NetworkSimulation& sim,
                                           std::size_t router, SimTime t);

}  // namespace joules
