// The columnar (struct-of-arrays) streaming trace store.
//
// A months-long sweep over a federated 10k-router network produces far more
// per-router/per-interface samples than fit in memory: 10 months at 1-hour
// steps over 10k routers is ~73M power samples plus an order of magnitude
// more interface-traffic samples. `TraceStore` is the seam that keeps such
// sweeps *streaming*: it owns one block's worth of SoA column buffers
// (per-router power, per-interface traffic contributions, per-timestep
// totals), workers fill the columns for a window of timesteps, and
// `commit_block` folds the totals serially, hands the block to an optional
// consumer, and recycles the buffers for the next window. Peak resident
// sample memory is therefore a function of the *block size*, never of the
// sweep length — the property the scale-tier CI gate pins via the
// `trace.peak_resident_samples` ceiling counter and the
// `trace.blocks_streamed` floor counter.
//
// Determinism: the store never reorders anything. Column layout is
// timestep-major (power[j * routers + r], traffic[j * interfaces + g]), and
// the per-timestep reduction folds routers then interfaces in ascending flat
// order — the exact fold order of the historical serial sweep, which keeps
// results bit-identical for any worker count and any block size (floating-
// point addition is not associative, so the fold order is part of the
// output contract).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "obs/registry.hpp"
#include "util/sim_clock.hpp"

namespace joules {

// One committed time-block, exposed to consumers as immutable SoA columns.
// Spans are valid only inside the sink callback — the store recycles the
// underlying buffers for the next block.
struct TraceBlockView {
  SimTime begin = 0;               // time of row 0
  SimTime step = 0;                // row spacing (seconds)
  std::size_t first_timestep = 0;  // global index of row 0 within the sweep
  std::size_t timesteps = 0;       // rows in this block
  std::size_t routers = 0;
  std::size_t interfaces = 0;  // flat interface count across all routers

  // router_power_w[j * routers + r]: wall power of router r at row j.
  std::span<const double> router_power_w;
  // interface_traffic_bps[j * interfaces + g]: carried-traffic contribution
  // of flat interface g at row j (externals / 2, internal link ends / 4 —
  // each link counted once network-wide).
  std::span<const double> interface_traffic_bps;
  // Serial per-row folds (the aggregate NetworkTraces samples).
  std::span<const double> total_power_w;
  std::span<const double> total_traffic_bps;

  [[nodiscard]] SimTime time_of(std::size_t row) const noexcept {
    return begin + static_cast<SimTime>(row) * step;
  }
};

struct TraceStoreOptions {
  // Upper bound on the resident column buffers (bytes). The store derives
  // its block length from this; it only affects memory/locality, never
  // results.
  std::size_t max_block_bytes = 8u << 20;
  // Optional work counters (inert with JOULES_OBS=OFF): end_sweep() adds
  // trace.blocks_streamed and trace.peak_resident_samples to shard 0.
  obs::Registry* registry = nullptr;
};

class TraceStore {
 public:
  // Invoked once per committed block, in time order, on the sweep thread.
  using BlockSink = std::function<void(const TraceBlockView&)>;

  using Options = TraceStoreOptions;

  TraceStore(std::size_t routers, std::size_t interfaces, Options options = {});

  // Sizes the column buffers for a sweep of `total_timesteps` rows starting
  // at `begin` spaced `step` apart. Buffers hold min(block_timesteps,
  // total_timesteps) rows — resident memory is bounded by max_block_bytes
  // regardless of the sweep length.
  void begin_sweep(SimTime begin, SimTime step, std::size_t total_timesteps);

  // Rows per full block for the current sweep.
  [[nodiscard]] std::size_t block_timesteps() const noexcept { return block_; }

  // Opens the next block and returns its row count (0 = sweep exhausted).
  // The mutable columns below cover exactly that many rows.
  [[nodiscard]] std::size_t open_block();

  // Mutable columns of the open block, for workers to fill. Writes must
  // follow the per-router sharding contract: row j of router r (and of r's
  // interfaces) is written by exactly one worker.
  [[nodiscard]] std::span<double> power_column() noexcept;
  [[nodiscard]] std::span<double> traffic_column() noexcept;

  // Folds the open block's totals serially (ascending flat order), invokes
  // `sink` (if any), and recycles the buffers. The returned view stays
  // valid until the next open_block/begin_sweep.
  const TraceBlockView& commit_block(const BlockSink& sink = {});

  // Flushes trace.blocks_streamed / trace.peak_resident_samples into the
  // registry (shard 0 — call after workers have joined).
  void end_sweep();

  // Blocks committed since begin_sweep.
  [[nodiscard]] std::uint64_t blocks_streamed() const noexcept {
    return blocks_streamed_;
  }
  // High-water mark of resident double-precision samples across the sweep's
  // column buffers. Bounded by block_timesteps() * (routers + interfaces +
  // 2); in particular *not* a function of the sweep length.
  [[nodiscard]] std::size_t peak_resident_samples() const noexcept {
    return peak_resident_samples_;
  }

 private:
  std::size_t routers_ = 0;
  std::size_t interfaces_ = 0;
  Options options_;

  SimTime begin_ = 0;
  SimTime step_ = 0;
  std::size_t total_timesteps_ = 0;
  std::size_t next_timestep_ = 0;
  std::size_t block_ = 0;       // rows per full block
  std::size_t open_rows_ = 0;   // rows in the currently open block (0 = none)

  std::vector<double> power_;    // block_ * routers_
  std::vector<double> traffic_;  // block_ * interfaces_
  std::vector<double> total_power_;
  std::vector<double> total_traffic_;

  TraceBlockView view_;
  std::uint64_t blocks_streamed_ = 0;
  std::size_t peak_resident_samples_ = 0;
};

}  // namespace joules
