#include "network/whatif.hpp"

#include <limits>
#include <stdexcept>

#include "network/trace_engine.hpp"

namespace joules {

Scenario::Scenario(NetworkSimulation sim, SimTime eval_at, std::size_t workers)
    : sim_(std::move(sim)), eval_at_(eval_at), pool_(workers) {}

double Scenario::record(const std::string& name) {
  // The engine folds per-router powers in ascending router order, matching
  // the historical serial sum bit for bit.
  TraceEngine engine(sim_, pool_);
  const double total = engine.network_power_w(eval_at_);
  ScenarioStep step;
  step.name = name;
  step.network_power_w = total;
  step.saved_w = steps_.empty() ? 0.0 : steps_.back().network_power_w - total;
  step.saved_vs_baseline_w = steps_.empty() ? 0.0 : baseline_w_ - total;
  steps_.push_back(step);
  return total;
}

double Scenario::baseline_w() {
  if (!steps_.empty()) {
    throw std::logic_error("Scenario: baseline must be the first step");
  }
  baseline_w_ = record("baseline");
  return baseline_w_;
}

double Scenario::apply_link_sleeping(const HypnosResult& result) {
  if (steps_.empty()) throw std::logic_error("Scenario: call baseline_w first");
  const NetworkTopology& topology = sim_.topology();
  for (const int link_id : result.sleeping_links) {
    const InternalLink& link =
        topology.links.at(static_cast<std::size_t>(link_id));
    for (const auto& [router, iface] :
         {std::pair{link.router_a, link.iface_a},
          std::pair{link.router_b, link.iface_b}}) {
      StateOverride down;
      down.router = router;
      down.iface = iface;
      down.from = std::numeric_limits<SimTime>::min();
      down.to = std::numeric_limits<SimTime>::max();
      down.state = InterfaceState::kPlugged;
      sim_.add_override(down);
    }
  }
  return record("link sleeping (" + std::to_string(result.sleeping_links.size()) +
                " links)");
}

double Scenario::apply_hot_standby() {
  if (steps_.empty()) throw std::logic_error("Scenario: call baseline_w first");
  int flipped = 0;
  for (std::size_t r = 0; r < sim_.router_count(); ++r) {
    if (sim_.device(r).psus().size() >= 2) {
      sim_.device(r).set_psu_mode(PsuMode::kHotStandby);
      ++flipped;
    }
  }
  return record("hot-standby PSUs (" + std::to_string(flipped) + " routers)");
}

double Scenario::remove_spare_transceivers() {
  if (steps_.empty()) throw std::logic_error("Scenario: call baseline_w first");
  int removed = 0;
  const NetworkTopology& topology = sim_.topology();
  for (std::size_t r = 0; r < topology.routers.size(); ++r) {
    const auto& interfaces = topology.routers[r].interfaces;
    for (std::size_t i = 0; i < interfaces.size(); ++i) {
      if (!interfaces[i].spare) continue;
      sim_.remove_transceiver_at(static_cast<int>(r), static_cast<int>(i),
                                 std::numeric_limits<SimTime>::min());
      ++removed;
    }
  }
  return record("unplug spare transceivers (" + std::to_string(removed) + ")");
}

double Scenario::decommission_pop(int pop) {
  if (steps_.empty()) throw std::logic_error("Scenario: call baseline_w first");
  const NetworkTopology& topology = sim_.topology();
  if (pop < 0 || static_cast<std::size_t>(pop) >= topology.pops.size()) {
    throw std::out_of_range("Scenario: pop index out of range");
  }
  int removed = 0;
  for (std::size_t r = 0; r < topology.routers.size(); ++r) {
    if (topology.routers[r].pop != pop) continue;
    sim_.decommission_at(r, eval_at_);
    ++removed;
  }
  return record("decommission " + topology.pops[static_cast<std::size_t>(pop)] +
                " (" + std::to_string(removed) + " routers)");
}

}  // namespace joules
