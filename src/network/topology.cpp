#include "network/topology.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "device/catalog.hpp"
#include "device/transceiver.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

enum class Tier { kAccess, kAggregation, kCore };

struct Candidate {
  std::string model;
  Tier tier;
};

// Port-usage bookkeeping against the catalog port budgets.
class PortLedger {
 public:
  explicit PortLedger(const std::vector<DeployedRouter>& routers) {
    for (const DeployedRouter& router : routers) {
      const RouterSpec spec = find_router_spec(router.model).value();
      std::map<PortType, int> budget;
      for (const PortGroup& group : spec.ports) {
        budget[group.type] += static_cast<int>(group.count);
      }
      budgets_.push_back(std::move(budget));
      used_.emplace_back();
    }
  }

  [[nodiscard]] int free_ports(int router, PortType type) const {
    const auto it = budgets_[static_cast<std::size_t>(router)].find(type);
    const int budget = it == budgets_[static_cast<std::size_t>(router)].end()
                           ? 0
                           : it->second;
    const auto used_it = used_[static_cast<std::size_t>(router)].find(type);
    const int used =
        used_it == used_[static_cast<std::size_t>(router)].end() ? 0
                                                                 : used_it->second;
    return budget - used;
  }

  void take(int router, PortType type) {
    used_[static_cast<std::size_t>(router)][type] += 1;
  }

 private:
  std::vector<std::map<PortType, int>> budgets_;
  std::vector<std::map<PortType, int>> used_;
};

// Preferred transceiver kinds: optics for long reach, DAC in-rack.
constexpr std::array<TransceiverKind, 4> kOpticPreference = {
    TransceiverKind::kLR4, TransceiverKind::kLR, TransceiverKind::kFR4,
    TransceiverKind::kSR4};

std::optional<ProfileKey> find_profile_for(const RouterSpec& spec,
                                           const PortLedger& ledger, int router,
                                           LineRate rate, bool prefer_dac) {
  const std::vector<InterfaceProfile> profiles = spec.truth.profiles();
  const InterfaceProfile* best = nullptr;
  int best_score = -1;
  for (const InterfaceProfile& profile : profiles) {
    if (profile.key.rate != rate) continue;
    if (ledger.free_ports(router, profile.key.port) <= 0) continue;
    int score = 0;
    const bool is_dac = profile.key.transceiver == TransceiverKind::kPassiveDAC;
    if (prefer_dac == is_dac) score += 10;
    for (std::size_t i = 0; i < kOpticPreference.size(); ++i) {
      if (profile.key.transceiver == kOpticPreference[i]) {
        score += static_cast<int>(kOpticPreference.size() - i);
      }
    }
    if (score > best_score) {
      best_score = score;
      best = &profile;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->key;
}

std::string part_number_for(const ProfileKey& key) {
  if (const auto module =
          find_transceiver(key.port, key.transceiver, key.rate)) {
    return module->part_number;
  }
  // Not in the module catalogue (e.g. 25G LR on an SFP28 cage): synthesize a
  // stable inventory name.
  return std::string(to_string(key.port)) + "-" +
         std::string(to_string(key.rate)) + "-" +
         std::string(to_string(key.transceiver));
}

WorkloadParams workload_for(const ProfileKey& key, double median_frac, Rng& rng) {
  WorkloadParams params;
  const double line = line_rate_bps(key.rate);
  params.mean_rate_bps = std::min(0.6 * line, rng.log_normal(median_frac * line, 0.7));
  params.diurnal_amplitude = rng.uniform(0.25, 0.45);
  params.weekend_factor = rng.uniform(0.75, 0.9);
  params.jitter_frac = rng.uniform(0.03, 0.08);
  params.mean_frame_bytes = rng.uniform(600, 1000);
  params.annual_growth = rng.uniform(0.1, 0.3);
  params.peak_hour_utc = static_cast<int>(rng.uniform_int(12, 16));
  return params;
}

struct LinkEndpoints {
  ProfileKey profile_a;
  ProfileKey profile_b;
};

// Highest common rate with free ports on both routers.
std::optional<LinkEndpoints> plan_link(const RouterSpec& spec_a, int router_a,
                                       const RouterSpec& spec_b, int router_b,
                                       const PortLedger& ledger, bool same_pop,
                                       LineRate max_rate = LineRate::kG100) {
  constexpr std::array<LineRate, 6> kRates = {LineRate::kG400, LineRate::kG100,
                                              LineRate::kG50, LineRate::kG25,
                                              LineRate::kG10, LineRate::kG1};
  for (const LineRate rate : kRates) {
    if (rate > max_rate) continue;
    const auto a = find_profile_for(spec_a, ledger, router_a, rate, same_pop);
    if (!a) continue;
    const auto b = find_profile_for(spec_b, ledger, router_b, rate, same_pop);
    if (!b) continue;
    return LinkEndpoints{*a, *b};
  }
  return std::nullopt;
}

}  // namespace

void TopologyOptions::validate() const {
  if (pop_count < 1) {
    throw std::invalid_argument("TopologyOptions: pop_count must be >= 1");
  }
  for (const int count :
       {access_asr920, access_n540x, access_asr9001, agg_n540, agg_ncs24q6h,
        agg_ncs48q6h, core_ncs24h, core_nexus9336, core_8201_32fh,
        core_8201_24h8fh}) {
    if (count < 0) {
      throw std::invalid_argument(
          "TopologyOptions: tier counts must be >= 0");
    }
  }
  if (router_count() < 1) {
    throw std::invalid_argument(
        "TopologyOptions: router_count() must be >= 1");
  }
  if (!(spare_transceiver_frac >= 0.0 && spare_transceiver_frac <= 1.0)) {
    throw std::invalid_argument(
        "TopologyOptions: spare_transceiver_frac must lie in [0, 1]");
  }
  if (!(external_load_median_frac >= 0.0 &&
        external_load_median_frac <= 1.0)) {
    throw std::invalid_argument(
        "TopologyOptions: external_load_median_frac must lie in [0, 1]");
  }
  if (study_end <= study_begin) {
    throw std::invalid_argument("TopologyOptions: study window is empty");
  }
}

std::size_t NetworkTopology::interface_count() const noexcept {
  std::size_t total = 0;
  for (const DeployedRouter& router : routers) total += router.interfaces.size();
  return total;
}

std::size_t NetworkTopology::external_interface_count() const noexcept {
  std::size_t total = 0;
  for (const DeployedRouter& router : routers) {
    for (const DeployedInterface& iface : router.interfaces) {
      if (iface.external && !iface.spare) ++total;
    }
  }
  return total;
}

NetworkTopology build_switch_like_network(const TopologyOptions& options) {
  options.validate();
  Rng rng(options.seed);
  NetworkTopology topology;
  topology.options = options;

  // --- PoPs ------------------------------------------------------------
  for (int i = 0; i < options.pop_count; ++i) {
    char name[16];
    std::snprintf(name, sizeof name, "pop%02d", i + 1);
    topology.pops.emplace_back(name);
  }

  // --- Routers ------------------------------------------------------------
  std::vector<Candidate> candidates;
  auto add_models = [&candidates](const std::string& model, int count, Tier tier) {
    for (int i = 0; i < count; ++i) candidates.push_back({model, tier});
  };
  add_models("ASR-920-24SZ-M", options.access_asr920, Tier::kAccess);
  add_models("N540X-8Z16G-SYS-A", options.access_n540x, Tier::kAccess);
  add_models("ASR-9001", options.access_asr9001, Tier::kAccess);
  add_models("N540-24Z8Q2C-M", options.agg_n540, Tier::kAggregation);
  add_models("NCS-55A1-24Q6H-SS", options.agg_ncs24q6h, Tier::kAggregation);
  add_models("NCS-55A1-48Q6H", options.agg_ncs48q6h, Tier::kAggregation);
  add_models("NCS-55A1-24H", options.core_ncs24h, Tier::kCore);
  add_models("Nexus9336-FX2", options.core_nexus9336, Tier::kCore);
  add_models("8201-32FH", options.core_8201_32fh, Tier::kCore);
  add_models("8201-24H8FH", options.core_8201_24h8fh, Tier::kCore);

  std::vector<Tier> tiers;
  std::map<int, int> per_pop_counter;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    DeployedRouter router;
    router.model = candidates[i].model;
    router.pop = static_cast<int>(i) % options.pop_count;
    char name[32];
    std::snprintf(name, sizeof name, "%s-r%d",
                  topology.pops[static_cast<std::size_t>(router.pop)].c_str(),
                  ++per_pop_counter[router.pop]);
    router.name = name;
    router.commissioned_at = options.study_begin - 2 * 365 * kSecondsPerDay +
                             rng.uniform_int(0, 300) * kSecondsPerDay;
    // About a third of the units were bought with the next-size-up PSU
    // option, spreading the fleet's load/efficiency points (Fig. 6).
    if (rng.chance(0.35)) {
      const RouterSpec spec = find_router_spec(router.model).value();
      constexpr std::array<double, 6> kCaps = {250, 400, 750, 1100, 2000, 2700};
      for (std::size_t c = 0; c + 1 < kCaps.size(); ++c) {
        if (kCaps[c] == spec.psu_capacity_w) {
          router.psu_capacity_override_w = kCaps[c + 1];
          break;
        }
      }
    }
    topology.routers.push_back(std::move(router));
    tiers.push_back(candidates[i].tier);
  }
  const int n = static_cast<int>(topology.routers.size());

  PortLedger ledger(topology.routers);

  auto add_link = [&](int router_a, int router_b) -> bool {
    if (router_a == router_b) return false;
    const RouterSpec spec_a =
        find_router_spec(topology.routers[static_cast<std::size_t>(router_a)].model)
            .value();
    const RouterSpec spec_b =
        find_router_spec(topology.routers[static_cast<std::size_t>(router_b)].model)
            .value();
    const bool same_pop = topology.routers[static_cast<std::size_t>(router_a)].pop ==
                          topology.routers[static_cast<std::size_t>(router_b)].pop;
    const auto plan =
        plan_link(spec_a, router_a, spec_b, router_b, ledger, same_pop);
    if (!plan) return false;

    const std::uint64_t shared_seed = rng.next();
    Rng workload_rng = Rng(shared_seed).fork("link-load");
    const WorkloadParams workload = workload_for(
        plan->profile_a, 1.5 * options.external_load_median_frac, workload_rng);

    const int link_id = static_cast<int>(topology.links.size());
    auto make_iface = [&](int router, const ProfileKey& profile) {
      DeployedRouter& owner = topology.routers[static_cast<std::size_t>(router)];
      DeployedInterface iface;
      iface.name = std::string(to_string(profile.port)) + "-" +
                   std::to_string(owner.interfaces.size());
      iface.profile = profile;
      iface.transceiver_part = part_number_for(profile);
      iface.external = false;
      iface.link_id = link_id;
      iface.workload = workload;
      iface.workload_seed = shared_seed;  // both ends see the same traffic
      ledger.take(router, profile.port);
      owner.interfaces.push_back(std::move(iface));
      return static_cast<int>(owner.interfaces.size()) - 1;
    };

    InternalLink link;
    link.router_a = router_a;
    link.iface_a = make_iface(router_a, plan->profile_a);
    link.router_b = router_b;
    link.iface_b = make_iface(router_b, plan->profile_b);
    topology.links.push_back(link);
    return true;
  };

  // --- Core/aggregation ring + chords ------------------------------------
  std::vector<int> backbone;
  std::vector<int> access;
  for (int i = 0; i < n; ++i) {
    (tiers[static_cast<std::size_t>(i)] == Tier::kAccess ? access : backbone)
        .push_back(i);
  }
  for (std::size_t i = 0; i < backbone.size(); ++i) {
    add_link(backbone[i], backbone[(i + 1) % backbone.size()]);
  }
  const int chords = static_cast<int>(backbone.size()) / 2;
  for (int c = 0; c < chords; ++c) {
    const int a = backbone[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(backbone.size()) - 1))];
    const int b = backbone[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(backbone.size()) - 1))];
    add_link(a, b);
  }

  // --- Access uplinks (2 each, to distinct backbone routers) --------------
  for (std::size_t i = 0; i < access.size(); ++i) {
    int attached = 0;
    std::size_t offset = i;
    while (attached < 2 && offset < i + backbone.size()) {
      const int target = backbone[offset % backbone.size()];
      if (add_link(access[i], target)) ++attached;
      ++offset;
    }
  }

  // --- External interfaces -------------------------------------------------
  // Add per-router externals until ~51 % of all interfaces are external.
  auto external_count_for = [&](Tier tier) {
    switch (tier) {
      case Tier::kAccess: return rng.uniform_int(3, 6);
      case Tier::kAggregation: return rng.uniform_int(2, 5);
      case Tier::kCore: return rng.uniform_int(2, 4);
    }
    return std::int64_t{4};
  };
  for (int r = 0; r < n; ++r) {
    DeployedRouter& router = topology.routers[static_cast<std::size_t>(r)];
    const RouterSpec spec = find_router_spec(router.model).value();
    const auto wanted = external_count_for(tiers[static_cast<std::size_t>(r)]);
    for (int k = 0; k < wanted; ++k) {
      // Externals use the highest rate with a free port, optics preferred.
      std::optional<ProfileKey> profile;
      for (const LineRate rate :
           {LineRate::kG100, LineRate::kG400, LineRate::kG25, LineRate::kG10,
            LineRate::kG1}) {
        profile = find_profile_for(spec, ledger, r, rate, /*prefer_dac=*/false);
        if (profile) break;
      }
      if (!profile) break;
      DeployedInterface iface;
      iface.name = std::string(to_string(profile->port)) + "-" +
                   std::to_string(router.interfaces.size());
      iface.profile = *profile;
      iface.transceiver_part = part_number_for(*profile);
      iface.external = true;
      iface.workload_seed = rng.next();
      Rng workload_rng = Rng(iface.workload_seed).fork("ext-load");
      iface.workload = workload_for(*profile, options.external_load_median_frac,
                                    workload_rng);
      ledger.take(r, profile->port);
      router.interfaces.push_back(std::move(iface));
    }
  }

  // --- Spare transceivers ---------------------------------------------------
  const auto spares = static_cast<int>(
      options.spare_transceiver_frac *
      static_cast<double>(topology.interface_count()));
  for (int s = 0; s < spares; ++s) {
    const int r = static_cast<int>(rng.uniform_int(0, n - 1));
    DeployedRouter& router = topology.routers[static_cast<std::size_t>(r)];
    const RouterSpec spec = find_router_spec(router.model).value();
    std::optional<ProfileKey> profile;
    for (const LineRate rate : {LineRate::kG100, LineRate::kG10, LineRate::kG1}) {
      profile = find_profile_for(spec, ledger, r, rate, /*prefer_dac=*/false);
      if (profile) break;
    }
    if (!profile) continue;
    DeployedInterface iface;
    iface.name = std::string(to_string(profile->port)) + "-spare-" +
                 std::to_string(router.interfaces.size());
    iface.profile = *profile;
    iface.transceiver_part = part_number_for(*profile);
    iface.external = false;
    iface.spare = true;
    iface.workload_seed = rng.next();
    ledger.take(r, profile->port);
    router.interfaces.push_back(std::move(iface));
  }

  // --- Lifecycle events (the Fig. 1 power steps) --------------------------
  // One core router decommissioned three weeks into the study, another
  // commissioned five weeks in.
  if (backbone.size() >= 2) {
    topology.routers[static_cast<std::size_t>(backbone[backbone.size() / 2])]
        .decommissioned_at = options.study_begin + 21 * kSecondsPerDay;
    topology.routers[static_cast<std::size_t>(backbone[backbone.size() / 3])]
        .commissioned_at = options.study_begin + 35 * kSecondsPerDay;
  }

  return topology;
}

}  // namespace joules
