#include "obs/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/json.hpp"

namespace joules::obs {
namespace {

// Decade buckets for histograms observed without a prior define: wide enough
// for counts, bytes, and nanoseconds alike.
const std::vector<double>& default_bounds() {
  static const std::vector<double> bounds = {1.0,   10.0,  1e2, 1e3, 1e4,
                                             1e5,   1e6,   1e7, 1e8, 1e9};
  return bounds;
}

std::size_t bucket_index(const std::vector<double>& upper_bounds, double value) {
  // First bucket whose upper bound admits the value; past-the-end is the
  // overflow bucket.
  const auto it =
      std::lower_bound(upper_bounds.begin(), upper_bounds.end(), value);
  return static_cast<std::size_t>(it - upper_bounds.begin());
}

}  // namespace

Registry::Registry(std::size_t shards, Stopwatch* stopwatch)
    : stopwatch_(stopwatch != nullptr ? stopwatch : &default_stopwatch()),
      shards_(std::max<std::size_t>(shards, 1)) {}

void Registry::add(std::size_t shard, std::string_view name,
                   std::uint64_t delta) {
  if (shard >= shards_.size()) {
    throw std::out_of_range("obs::Registry: shard index out of range");
  }
  auto& counters = shards_[shard].counters;
  const auto it = counters.find(name);
  if (it != counters.end()) {
    it->second += delta;
  } else {
    counters.emplace(std::string(name), delta);
  }
}

void Registry::define_histogram(std::string_view name,
                                std::vector<double> upper_bounds) {
  if (upper_bounds.empty()) {
    throw std::invalid_argument("obs::Registry: histogram needs >= 1 bound");
  }
  for (std::size_t i = 1; i < upper_bounds.size(); ++i) {
    if (upper_bounds[i] <= upper_bounds[i - 1]) {
      throw std::invalid_argument(
          "obs::Registry: histogram bounds must be strictly increasing");
    }
  }
  const MutexLock lock(mutex_);
  if (histogram_bounds_.find(name) != histogram_bounds_.end()) {
    throw std::invalid_argument("obs::Registry: histogram already defined: " +
                                std::string(name));
  }
  histogram_bounds_.emplace(std::string(name), std::move(upper_bounds));
}

std::vector<double> Registry::bounds_for(std::string_view name) {
  const MutexLock lock(mutex_);
  const auto it = histogram_bounds_.find(name);
  if (it != histogram_bounds_.end()) return it->second;
  return histogram_bounds_.emplace(std::string(name), default_bounds())
      .first->second;
}

void Registry::observe(std::size_t shard, std::string_view name, double value) {
  if (shard >= shards_.size()) {
    throw std::out_of_range("obs::Registry: shard index out of range");
  }
  auto& histograms = shards_[shard].histograms;
  auto it = histograms.find(name);
  if (it == histograms.end()) {
    HistogramValue fresh;
    fresh.name = std::string(name);
    fresh.upper_bounds = bounds_for(name);
    fresh.counts.assign(fresh.upper_bounds.size() + 1, 0);
    it = histograms.emplace(fresh.name, std::move(fresh)).first;
  }
  HistogramValue& histogram = it->second;
  ++histogram.counts[bucket_index(histogram.upper_bounds, value)];
  ++histogram.count;
  histogram.sum += value;
}

std::size_t Registry::open_span(std::string_view id) {
  const std::uint64_t start = stopwatch_->now_ns();
  const MutexLock lock(mutex_);
  SpanRecord record;
  record.id = std::string(id);
  record.depth = open_stack_.size();
  record.start_ns = start;
  const std::size_t index = span_records_.size();
  span_records_.push_back(std::move(record));
  open_stack_.push_back(index);
  return index;
}

void Registry::close_span(std::size_t index) {
  const std::uint64_t end = stopwatch_->now_ns();
  const MutexLock lock(mutex_);
  if (index >= span_records_.size()) {
    throw std::out_of_range("obs::Registry: bad span index");
  }
  SpanRecord& record = span_records_[index];
  record.duration_ns = end - record.start_ns;
  // Closing out of order (an escaping exception unwinds outer spans with
  // inner ones technically open) pops everything above `index` too — those
  // inner spans already recorded their own close or keep duration 0.
  while (!open_stack_.empty() && open_stack_.back() >= index) {
    open_stack_.pop_back();
  }
}

std::vector<CounterValue> Registry::counters() const {
  // Deterministic merge: per-shard maps iterate name-sorted already; fold
  // shards in index order into one sorted map.
  std::map<std::string, std::uint64_t, std::less<>> merged;
  for (const Shard& shard : shards_) {
    for (const auto& [name, value] : shard.counters) {
      merged[name] += value;
    }
  }
  std::vector<CounterValue> out;
  out.reserve(merged.size());
  for (const auto& [name, value] : merged) {
    out.push_back(CounterValue{name, value});
  }
  return out;
}

std::uint64_t Registry::counter(std::string_view name) const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    const auto it = shard.counters.find(name);
    if (it != shard.counters.end()) total += it->second;
  }
  return total;
}

std::vector<HistogramValue> Registry::histograms() const {
  std::map<std::string, HistogramValue, std::less<>> merged;
  for (const Shard& shard : shards_) {
    for (const auto& [name, histogram] : shard.histograms) {
      const auto it = merged.find(name);
      if (it == merged.end()) {
        merged.emplace(name, histogram);
        continue;
      }
      HistogramValue& into = it->second;
      if (into.upper_bounds != histogram.upper_bounds) {
        throw std::logic_error(
            "obs::Registry: shards disagree on histogram bounds for " + name);
      }
      for (std::size_t b = 0; b < into.counts.size(); ++b) {
        into.counts[b] += histogram.counts[b];
      }
      into.count += histogram.count;
      into.sum += histogram.sum;
    }
  }
  std::vector<HistogramValue> out;
  out.reserve(merged.size());
  for (auto& [name, histogram] : merged) {
    out.push_back(std::move(histogram));
  }
  return out;
}

std::vector<SpanRecord> Registry::spans() const {
  const MutexLock lock(mutex_);
  return span_records_;
}

std::vector<PhaseTotal> Registry::phase_totals() const {
  const MutexLock lock(mutex_);
  std::vector<PhaseTotal> out;  // first-seen order: the run's phase sequence
  for (const SpanRecord& record : span_records_) {
    if (record.depth != 0) continue;
    const auto it = std::find_if(out.begin(), out.end(), [&](const PhaseTotal& p) {
      return p.id == record.id;
    });
    if (it != out.end()) {
      ++it->count;
      it->total_ns += record.duration_ns;
    } else {
      out.push_back(PhaseTotal{record.id, 1, record.duration_ns});
    }
  }
  return out;
}

std::string dump_json(const Registry& registry) {
  Json root = Json::object();
  Json counters = Json::object();
  for (const CounterValue& counter : registry.counters()) {
    counters.set(counter.name, Json(counter.value));
  }
  root.set("counters", std::move(counters));

  Json histograms = Json::array();
  for (const HistogramValue& histogram : registry.histograms()) {
    Json entry = Json::object();
    entry.set("name", Json(histogram.name));
    Json bounds = Json::array();
    for (const double bound : histogram.upper_bounds) bounds.push(Json(bound));
    entry.set("upper_bounds", std::move(bounds));
    Json counts = Json::array();
    for (const std::uint64_t count : histogram.counts) counts.push(Json(count));
    entry.set("counts", std::move(counts));
    entry.set("count", Json(histogram.count));
    entry.set("sum", Json(histogram.sum));
    histograms.push(std::move(entry));
  }
  root.set("histograms", std::move(histograms));

  Json spans = Json::array();
  for (const SpanRecord& record : registry.spans()) {
    Json entry = Json::object();
    entry.set("id", Json(record.id));
    entry.set("depth", Json(static_cast<std::uint64_t>(record.depth)));
    entry.set("start_ns", Json(record.start_ns));
    entry.set("duration_ns", Json(record.duration_ns));
    spans.push(std::move(entry));
  }
  root.set("spans", std::move(spans));
  return root.dump(2) + "\n";
}

}  // namespace joules::obs
