// Process observability: named counters, fixed-bucket histograms, and RAII
// spans, designed for the repo's determinism contract.
//
// This is a different animal from `src/telemetry`, which simulates the SNMP
// counters of the modeled routers (domain data). `obs` watches the pipeline
// itself: how many samples a sweep computed, how many windows a campaign
// retried, how long each phase ran. It must obey two rules the usual
// metrics libraries ignore:
//
//   * No contended state on hot paths. Counters live in per-worker *shards*;
//     worker `slot` writes only shard `slot` (plain maps, no atomics), and
//     merged views sum shards in sorted name order — so serialization is
//     deterministic and the merge never races writers (callers merge after
//     joins, exactly like the trace engine's reduction contract).
//   * No observable perturbation. Instrumented code paths produce bit-
//     identical domain output whether or not a Registry is attached, and
//     with JOULES_OBS=OFF the instrumentation call sites compile away
//     entirely (guarded by `if constexpr (obs::kEnabled)`).
//
// Spans time phases through the `Stopwatch` seam (stopwatch.hpp): real runs
// read the host monotonic clock, tests plug a `FakeStopwatch` and assert the
// span tree bit-exactly. Span ids are static strings chosen by call sites
// ("trace.network_traces", "campaign.snake", ...).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/stopwatch.hpp"
#include "util/thread_annotations.hpp"

// CMake defines JOULES_OBS_ENABLED=0 when configured with -DJOULES_OBS=OFF;
// default to enabled for non-CMake consumers of the header.
#ifndef JOULES_OBS_ENABLED
#define JOULES_OBS_ENABLED 1
#endif

namespace joules::obs {

inline constexpr bool kEnabled = JOULES_OBS_ENABLED != 0;

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

struct HistogramValue {
  std::string name;
  // counts[b] tallies observations with value <= upper_bounds[b]; the final
  // counts entry (size upper_bounds.size() + 1) is the overflow bucket.
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;  // total observations
  double sum = 0.0;         // sum of observed values (fold order: shard, then
                            // observation order — deterministic per shard map)
};

struct SpanRecord {
  std::string id;
  std::size_t depth = 0;  // 0 = top-level; children carry parent depth + 1
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

// Top-level (depth 0) spans aggregated by id, in first-seen order — the
// manifest's per-phase timing table.
struct PhaseTotal {
  std::string id;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

class Registry {
 public:
  // `shards` is the number of independent writer slots (use the thread
  // pool's worker_count()); `stopwatch` defaults to the process steady
  // clock. The registry never takes ownership of the stopwatch.
  explicit Registry(std::size_t shards = 1, Stopwatch* stopwatch = nullptr);

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] Stopwatch& stopwatch() noexcept { return *stopwatch_; }

  // --- Counters (monotonic) ---------------------------------------------
  // Concurrent calls are safe iff they target distinct shards. Throws
  // std::out_of_range on a bad shard index.
  void add(std::size_t shard, std::string_view name, std::uint64_t delta = 1);
  void add(std::string_view name, std::uint64_t delta = 1) { add(0, name, delta); }

  // --- Histograms (fixed buckets) ---------------------------------------
  // Bounds must be strictly increasing. Define before threaded use so every
  // shard buckets identically; an undefined name observed on the fly uses
  // the default decade bounds {1, 10, ..., 1e9}. Redefining an existing
  // histogram throws std::invalid_argument (shards may already hold counts).
  void define_histogram(std::string_view name, std::vector<double> upper_bounds)
      JOULES_EXCLUDES(mutex_);
  void observe(std::size_t shard, std::string_view name, double value)
      JOULES_EXCLUDES(mutex_);
  void observe(std::string_view name, double value) { observe(0, name, value); }

  // --- Spans -------------------------------------------------------------
  // Used through the RAII `Span` below; exposed for tests. Span open/close
  // is mutex-guarded (phase granularity, never per-sample).
  [[nodiscard]] std::size_t open_span(std::string_view id)
      JOULES_EXCLUDES(mutex_);
  void close_span(std::size_t index) JOULES_EXCLUDES(mutex_);

  // --- Merged views -------------------------------------------------------
  // Deterministic: counters/histograms in sorted name order with values
  // summed across shards in shard order. Must not race shard writers; call
  // after workers have joined (the parallel_for contract already guarantees
  // this for pool users).
  [[nodiscard]] std::vector<CounterValue> counters() const;
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] std::vector<HistogramValue> histograms() const;
  [[nodiscard]] std::vector<SpanRecord> spans() const JOULES_EXCLUDES(mutex_);
  [[nodiscard]] std::vector<PhaseTotal> phase_totals() const
      JOULES_EXCLUDES(mutex_);

 private:
  struct Shard {
    std::map<std::string, std::uint64_t, std::less<>> counters;
    std::map<std::string, HistogramValue, std::less<>> histograms;
  };

  [[nodiscard]] std::vector<double> bounds_for(std::string_view name)
      JOULES_EXCLUDES(mutex_);

  Stopwatch* stopwatch_;
  std::vector<Shard> shards_;
  // Bucket definitions, shared by all shards and only touched under mutex_.
  // Each shard copies the bounds into its own HistogramValue on the first
  // observation of a name, so steady-state observes stay lock-free.
  std::map<std::string, std::vector<double>, std::less<>> histogram_bounds_
      JOULES_GUARDED_BY(mutex_);

  mutable Mutex mutex_;  // guards histogram_bounds_ + span state
  std::vector<SpanRecord> span_records_ JOULES_GUARDED_BY(mutex_);
  std::vector<std::size_t> open_stack_ JOULES_GUARDED_BY(mutex_);
};

// RAII span: opens on construction, closes (and records its duration) on
// destruction. A null registry — or a build with JOULES_OBS=OFF — makes the
// whole object a no-op.
class Span {
 public:
  Span(Registry* registry, const char* id) {
    if constexpr (kEnabled) {
      if (registry != nullptr) {
        registry_ = registry;
        index_ = registry->open_span(id);
      }
    } else {
      (void)registry;
      (void)id;
    }
  }
  Span(Registry& registry, const char* id) : Span(&registry, id) {}

  ~Span() {
    if constexpr (kEnabled) {
      if (registry_ != nullptr) registry_->close_span(index_);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Registry* registry_ = nullptr;
  std::size_t index_ = 0;
};

// The registry's full state as pretty-printed JSON (sorted counter and
// histogram names, spans in record order). See manifest.hpp for the
// run-manifest envelope around this.
[[nodiscard]] std::string dump_json(const Registry& registry);

}  // namespace joules::obs
