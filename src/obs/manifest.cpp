#include "obs/manifest.hpp"

#include <cstdio>
#include <stdexcept>

#include "obs/registry.hpp"
#include "util/atomic_file.hpp"
#include "util/json.hpp"

namespace joules::obs {
namespace {

std::string format_u64(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%llu",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::string format_ms(std::uint64_t ns) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3f",
                static_cast<double>(ns) / 1e6);
  return buffer;
}

std::uint64_t read_u64(const Json& parent, std::string_view key) {
  const Json* value = parent.find(key);
  if (value == nullptr) {
    throw std::invalid_argument("manifest: missing field '" +
                                std::string(key) + "'");
  }
  return static_cast<std::uint64_t>(value->as_int64());
}

std::string read_string(const Json& parent, std::string_view key) {
  const Json* value = parent.find(key);
  return value != nullptr ? value->as_string() : std::string();
}

}  // namespace

std::string build_id() {
#ifdef JOULES_BUILD_ID
  return JOULES_BUILD_ID;
#else
  return "unknown";
#endif
}

std::string config_fingerprint(std::string_view canonical_config) {
  // FNV-1a 64: tiny, stable across platforms, and good enough to answer "did
  // these two runs share a configuration" (not a security boundary).
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : canonical_config) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

std::string manifest_json(const ManifestInfo& info, const Registry& registry) {
  Json root = Json::object();
  root.set("manifest_version", Json(kManifestVersion));
  root.set("tool", Json(info.tool));
  root.set("build", Json(info.build.empty() ? build_id() : info.build));
  root.set("seed", Json(info.seed));
  root.set("config_hash", Json(info.config_hash.empty()
                                   ? config_fingerprint("")
                                   : info.config_hash));
  if (!info.notes.empty()) root.set("notes", Json(info.notes));

  Json phases = Json::array();
  for (const PhaseTotal& phase : registry.phase_totals()) {
    Json entry = Json::object();
    entry.set("id", Json(phase.id));
    entry.set("count", Json(phase.count));
    entry.set("total_ns", Json(phase.total_ns));
    phases.push(std::move(entry));
  }
  root.set("phases", std::move(phases));

  // Re-parse the registry dump rather than duplicating its serialization:
  // one code path decides how counters/histograms/spans look as JSON.
  Json registry_doc = Json::parse(dump_json(registry));
  for (Json::Member& member : registry_doc.as_object()) {
    root.set(member.first, std::move(member.second));
  }
  return root.dump(2) + "\n";
}

void write_manifest(const std::filesystem::path& path, const ManifestInfo& info,
                    const Registry& registry) {
  write_file_atomic(path, manifest_json(info, registry));
}

ParsedManifest parse_manifest(std::string_view json_text) {
  const Json root = Json::parse(json_text);
  if (!root.is_object()) {
    throw std::invalid_argument("manifest: top level is not an object");
  }
  ParsedManifest out;
  out.raw = std::string(json_text);
  out.version = static_cast<int>(read_u64(root, "manifest_version"));
  if (out.version > kManifestVersion) {
    throw std::invalid_argument("manifest: version newer than this build");
  }
  out.info.tool = read_string(root, "tool");
  out.info.build = read_string(root, "build");
  out.info.config_hash = read_string(root, "config_hash");
  out.info.notes = read_string(root, "notes");
  out.info.seed = read_u64(root, "seed");

  if (const Json* counters = root.find("counters")) {
    for (const Json::Member& member : counters->as_object()) {
      out.counters[member.first] =
          static_cast<std::uint64_t>(member.second.as_int64());
    }
  }
  if (const Json* phases = root.find("phases")) {
    for (const Json& entry : phases->as_array()) {
      const std::string id = read_string(entry, "id");
      ParsedManifest::Phase phase;
      phase.count = read_u64(entry, "count");
      phase.total_ns = read_u64(entry, "total_ns");
      out.phases[id] = phase;
      out.phase_order.push_back(id);
    }
  }
  return out;
}

std::string render_manifest(const ParsedManifest& manifest) {
  std::string out;
  out += "tool:        " + manifest.info.tool + "\n";
  out += "build:       " + manifest.info.build + "\n";
  out += "seed:        " + format_u64(manifest.info.seed) + "\n";
  out += "config_hash: " + manifest.info.config_hash + "\n";
  if (!manifest.info.notes.empty()) {
    out += "notes:       " + manifest.info.notes + "\n";
  }
  if (!manifest.phase_order.empty()) {
    out += "phases:\n";
    for (const std::string& id : manifest.phase_order) {
      const ParsedManifest::Phase& phase = manifest.phases.at(id);
      out += "  " + id + "  x" + format_u64(phase.count) + "  " +
             format_ms(phase.total_ns) + " ms\n";
    }
  }
  if (!manifest.counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : manifest.counters) {
      out += "  " + name + " = " + format_u64(value) + "\n";
    }
  }
  return out;
}

std::string diff_manifests(const ParsedManifest& a, const ParsedManifest& b) {
  std::string out;
  if (a.info.build != b.info.build) {
    out += "build: " + a.info.build + " -> " + b.info.build + "\n";
  }
  if (a.info.seed != b.info.seed) {
    out += "seed: " + format_u64(a.info.seed) + " -> " +
           format_u64(b.info.seed) + "\n";
  }
  if (a.info.config_hash != b.info.config_hash) {
    out += "config_hash: " + a.info.config_hash + " -> " + b.info.config_hash +
           "\n";
  }

  std::size_t counter_diffs = 0;
  // std::map iteration: sorted, deterministic. Walk the union of names.
  auto ai = a.counters.begin();
  auto bi = b.counters.begin();
  while (ai != a.counters.end() || bi != b.counters.end()) {
    if (bi == b.counters.end() ||
        (ai != a.counters.end() && ai->first < bi->first)) {
      out += "counter " + ai->first + ": " + format_u64(ai->second) +
             " -> (absent)\n";
      ++counter_diffs;
      ++ai;
    } else if (ai == a.counters.end() || bi->first < ai->first) {
      out += "counter " + bi->first + ": (absent) -> " +
             format_u64(bi->second) + "\n";
      ++counter_diffs;
      ++bi;
    } else {
      if (ai->second != bi->second) {
        out += "counter " + ai->first + ": " + format_u64(ai->second) +
               " -> " + format_u64(bi->second) + "\n";
        ++counter_diffs;
      }
      ++ai;
      ++bi;
    }
  }

  // Phase timings are host-dependent: informative, never a "difference".
  for (const std::string& id : b.phase_order) {
    const auto in_a = a.phases.find(id);
    if (in_a == a.phases.end()) continue;
    out += "phase " + id + ": " + format_ms(in_a->second.total_ns) +
           " ms -> " + format_ms(b.phases.at(id).total_ns) + " ms\n";
  }

  if (counter_diffs == 0 && a.info.build == b.info.build &&
      a.info.seed == b.info.seed && a.info.config_hash == b.info.config_hash) {
    out = "no differences (counters, seed, build, config all match)\n" + out;
  }
  return out;
}

}  // namespace joules::obs
