#include "obs/stopwatch.hpp"

#include <chrono>

namespace joules::obs {

// The one sanctioned host-clock read of the observability layer (allowlisted
// as such in tools/joules_lint/allowlist.txt): span timings describe this
// process, not the simulation, and tests substitute FakeStopwatch.
std::uint64_t SteadyStopwatch::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Stopwatch& default_stopwatch() {
  static SteadyStopwatch stopwatch;
  return stopwatch;
}

}  // namespace joules::obs
