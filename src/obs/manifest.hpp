// Run manifests: one small JSON file per pipeline run that answers "what
// ran, on what build, with what inputs, and where did the time go".
//
// A manifest is the obs::Registry dump wrapped in provenance: the build id
// (git describe, injected at configure time), the run's seed, a fingerprint
// of its configuration, per-phase span timings, and the counter totals.
// TraceEngine sweeps, netpowerbench::Campaign batteries, and the autopower
// server/client all write one via util::write_file_atomic, so a crash never
// leaves a torn manifest and a finished run always carries its own audit
// trail. `joulesctl obs` pretty-prints and diffs them.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace joules::obs {

class Registry;

// The manifest schema version this build reads and writes.
inline constexpr int kManifestVersion = 1;

// git describe --always --dirty at configure time; "unknown" outside a git
// checkout or a CMake build.
[[nodiscard]] std::string build_id();

// FNV-1a 64 over a canonical configuration string, as 16 hex digits. Callers
// render the knobs that define the run (topology options, campaign timing,
// seeds) into one string and fingerprint it; two manifests with equal
// fingerprints ran the same configuration.
[[nodiscard]] std::string config_fingerprint(std::string_view canonical_config);

struct ManifestInfo {
  std::string tool;         // "trace_engine", "campaign", "autopower_server", ...
  std::string build;        // default: build_id()
  std::uint64_t seed = 0;
  std::string config_hash;  // default: fingerprint of ""
  std::string notes;        // free-form, e.g. a topology summary
};

// The manifest document for `info` + the registry's current state
// (pretty-printed JSON, trailing newline, deterministic member order).
[[nodiscard]] std::string manifest_json(const ManifestInfo& info,
                                        const Registry& registry);

// Atomic write of manifest_json (temp file + fsync + rename).
void write_manifest(const std::filesystem::path& path, const ManifestInfo& info,
                    const Registry& registry);

// The read side, for joulesctl and tests. Spans and histograms beyond the
// phase table are carried through `raw` only.
struct ParsedManifest {
  int version = 0;
  ManifestInfo info;
  std::map<std::string, std::uint64_t> counters;
  struct Phase {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  std::map<std::string, Phase> phases;      // keyed by span id
  std::vector<std::string> phase_order;     // ids in run order
  std::string raw;                          // the full document text
};

// Throws std::invalid_argument on malformed JSON or a missing/unsupported
// version field.
[[nodiscard]] ParsedManifest parse_manifest(std::string_view json_text);

// Human-readable rendering (joulesctl obs <manifest>).
[[nodiscard]] std::string render_manifest(const ParsedManifest& manifest);

// Side-by-side diff of counters and phase timings (joulesctl obs <a> <b>).
// Reports "no differences" when counter values match (phase timings are
// host-dependent and always shown, but never counted as a difference).
[[nodiscard]] std::string diff_manifests(const ParsedManifest& a,
                                         const ParsedManifest& b);

}  // namespace joules::obs
