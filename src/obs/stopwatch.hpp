// The time seam for the observability layer.
//
// Span timings are diagnostics about *this process* (how long a sweep phase
// took on this host), never simulation input — simulation time is SimTime
// throughout the library. Reading the host clock is therefore legitimate
// here, but it is confined behind this one seam so that (a) the determinism
// lint has exactly one reasoned suppression to carry, and (b) tests can swap
// in `FakeStopwatch` and assert span trees bit-exactly.
#pragma once

#include <cstdint>

namespace joules::obs {

class Stopwatch {
 public:
  virtual ~Stopwatch() = default;
  // Monotonic nanoseconds since an arbitrary epoch; only differences matter.
  [[nodiscard]] virtual std::uint64_t now_ns() = 0;
};

// Host monotonic clock (std::chrono::steady_clock). The single allowlisted
// wall-clock site of the observability layer.
class SteadyStopwatch final : public Stopwatch {
 public:
  [[nodiscard]] std::uint64_t now_ns() override;
};

// Process-wide default instance (what a Registry built without an explicit
// stopwatch uses).
[[nodiscard]] Stopwatch& default_stopwatch();

// Deterministic stopwatch for tests: every `now_ns` call returns the current
// value and then advances it by `tick_ns`, so the k-th read is
// `start_ns + k * tick_ns` regardless of host speed. `advance` models a
// block of work between reads.
class FakeStopwatch final : public Stopwatch {
 public:
  explicit FakeStopwatch(std::uint64_t start_ns = 0, std::uint64_t tick_ns = 1)
      : next_(start_ns), tick_(tick_ns) {}

  [[nodiscard]] std::uint64_t now_ns() override {
    const std::uint64_t value = next_;
    next_ += tick_;
    return value;
  }

  void advance(std::uint64_t ns) noexcept { next_ += ns; }

 private:
  std::uint64_t next_;
  std::uint64_t tick_;
};

}  // namespace joules::obs
