// Nonblocking length-prefixed framing over a net::Transport.
//
// The blocking frame functions in net/framing.hpp park the calling thread
// until a whole frame arrives — fine for a client, fatal for a reactor
// serving thousands of connections. FramedConn keeps the same wire format
// (4-byte big-endian length + payload, kMaxFrameBytes cap) but assembles
// frames incrementally from whatever bytes the transport has, and stages
// outbound frames in a *bounded* write buffer the reactor flushes as the
// peer drains. Both buffers are capped: a peer that sends garbage lengths
// or never reads its responses hits an error / a full write budget instead
// of growing server memory without bound.
//
// Fault injection mirrors net/framing.hpp: queue_frame consults the
// client-side on_send_frame hook (dial-tracked transports) and the
// accept-side on_server_send_frame hook (accept-tracked transports); a
// scripted drop queues only the torn prefix and latches close_after_flush.
// pump_reads consults on_recv_frame per *delivered* frame, so scripted and
// probabilistic recv drops hit reactor-served connections the same way they
// hit blocking read_frame callers. A scripted recv *delay* never sleeps the
// pump (that would park the whole reactor): it latches a read stall — the
// delayed frame is withheld until the stall deadline passes, then delivered
// by the next pump (see read_stalled() below).
#pragma once

#include <cstddef>
#include <vector>

#include "net/framing.hpp"
#include "net/transport.hpp"
#include "util/thread_annotations.hpp"

namespace joules::net {

class FramedConn {
 public:
  struct Limits {
    std::size_t max_frame_bytes = kMaxFrameBytes;
    // Total staged outbound bytes; queue_frame refuses beyond this.
    std::size_t write_buffer_bytes = kMaxFrameBytes + 64 * 1024;
    // Per-pump inbound budget, so one firehose connection cannot starve the
    // rest of the reactor's tick.
    std::size_t pump_budget_bytes = 64 * 1024;
  };

  enum class Status : std::uint8_t {
    kOpen,    // more I/O possible
    kClosed,  // clean EOF at a frame boundary / torn prefix fully flushed
    kError,   // I/O error, protocol error, or injected drop
  };

  explicit FramedConn(Transport transport);
  FramedConn(Transport transport, Limits limits);

  // Drains readable bytes (up to the pump budget), appending each complete
  // payload to `frames`. Never blocks.
  JOULES_REACTOR_CONTEXT [[nodiscard]] Status pump_reads(
      std::vector<std::vector<std::byte>>& frames);

  // Stages one frame for writing. False when the write budget would be
  // exceeded — the caller sheds or drops instead of buffering unboundedly.
  // Throws std::invalid_argument on oversized payloads.
  JOULES_REACTOR_CONTEXT [[nodiscard]] bool queue_frame(
      std::span<const std::byte> payload);

  // Writes staged bytes until the transport would block. kClosed once a
  // torn-frame prefix has fully flushed (the connection must die now).
  JOULES_REACTOR_CONTEXT [[nodiscard]] Status flush_writes();

  [[nodiscard]] bool wants_write() const noexcept {
    return write_pos_ < outbuf_.size();
  }
  [[nodiscard]] std::size_t queued_write_bytes() const noexcept {
    return outbuf_.size() - write_pos_;
  }
  // True while a partial inbound frame sits in the buffer — the hook for
  // torn-frame deadlines (a peer must finish what it started).
  [[nodiscard]] bool frame_in_progress() const noexcept {
    return !inbuf_.empty();
  }
  // Latched by an injected torn server/client frame: flush, then close.
  [[nodiscard]] bool close_after_flush() const noexcept {
    return close_after_flush_;
  }

  // True while an injected recv delay is withholding a parsed frame. The
  // bytes are already buffered, so the fd may stay quiet: a reactor must
  // pump this connection again once read_stall_deadline() expires, not wait
  // for poll() to flag it readable.
  [[nodiscard]] bool read_stalled() const noexcept { return read_stalled_; }
  [[nodiscard]] const Deadline& read_stall_deadline() const noexcept {
    return read_stall_until_;
  }

  [[nodiscard]] Transport& transport() noexcept { return transport_; }
  [[nodiscard]] const Transport& transport() const noexcept {
    return transport_;
  }

 private:
  [[nodiscard]] Status parse_buffered(
      std::vector<std::vector<std::byte>>& frames);

  Transport transport_;
  Limits limits_;
  std::vector<std::byte> inbuf_;   // unparsed inbound bytes
  std::vector<std::byte> outbuf_;  // staged outbound bytes
  std::size_t write_pos_ = 0;      // flushed prefix of outbuf_
  bool close_after_flush_ = false;
  // Injected recv-delay stall: the withheld frame and when to release it.
  bool read_stalled_ = false;
  Deadline read_stall_until_ = Deadline::never();
  std::vector<std::byte> stalled_frame_;
};

}  // namespace joules::net
