#include "net/fault.hpp"

#include <atomic>
#include <cerrno>
#include <memory>
#include <stdexcept>
#include <system_error>
#include <thread>

#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace joules {

// Grants the hook implementation access to the plan's schedule without
// making the fields part of FaultPlan's public surface.
struct FaultPlanAccess {
  static const auto& connect_faults(const FaultPlan& p) { return p.connect_faults_; }
  static const auto& send_faults(const FaultPlan& p) { return p.send_faults_; }
  static const auto& recv_faults(const FaultPlan& p) { return p.recv_faults_; }
  static const auto& accept_faults(const FaultPlan& p) { return p.accept_faults_; }
  static const auto& server_send_faults(const FaultPlan& p) {
    return p.server_send_faults_;
  }
  static std::uint16_t port(const FaultPlan& p) { return p.port_; }
  static std::uint64_t seed(const FaultPlan& p) { return p.seed_; }
  static std::size_t send_chunk_cap(const FaultPlan& p) { return p.send_chunk_cap_; }
  static double recv_drop_probability(const FaultPlan& p) {
    return p.recv_drop_probability_;
  }
};

namespace {

using Access = FaultPlanAccess;

struct ActivePlan {
  explicit ActivePlan(FaultPlan p, std::uint64_t seed)
      : plan(std::move(p)), rng(seed) {}
  FaultPlan plan;
  Rng rng;
  FaultStats stats;
  std::uint64_t next_connect = 0;  // zero-based operation counters
  std::uint64_t next_send_frame = 0;
  std::uint64_t next_recv_frame = 0;
  std::uint64_t next_accept = 0;
  std::uint64_t next_server_send_frame = 0;
};

// One installed plan at a time, guarded by g_mutex; g_active is the fast
// path so uninstrumented runs pay one relaxed load per hook.
Mutex g_mutex;
std::atomic<bool> g_active{false};
std::unique_ptr<ActivePlan> g_plan JOULES_GUARDED_BY(g_mutex);

}  // namespace

FaultPlan& FaultPlan::match_port(std::uint16_t port) {
  port_ = port;
  return *this;
}

FaultPlan& FaultPlan::refuse_connect(std::uint64_t attempt) {
  connect_faults_[attempt].refuse = true;
  return *this;
}

FaultPlan& FaultPlan::refuse_connects(std::uint64_t first, std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) refuse_connect(first + i);
  return *this;
}

FaultPlan& FaultPlan::delay_connect(std::uint64_t attempt, Millis delay) {
  connect_faults_[attempt].delay = delay;
  return *this;
}

FaultPlan& FaultPlan::drop_send_frame(std::uint64_t frame,
                                      std::size_t after_bytes) {
  send_faults_[frame] = SendFault{true, after_bytes};
  return *this;
}

FaultPlan& FaultPlan::drop_recv_frame(std::uint64_t frame) {
  recv_faults_[frame].drop = true;
  return *this;
}

FaultPlan& FaultPlan::delay_recv_frame(std::uint64_t frame, Millis delay) {
  recv_faults_[frame].delay = delay;
  return *this;
}

FaultPlan& FaultPlan::cap_send_chunk(std::size_t max_bytes) {
  send_chunk_cap_ = max_bytes;
  return *this;
}

FaultPlan& FaultPlan::drop_recv_randomly(double probability) {
  if (probability < 0.0 || probability > 1.0) {
    throw std::invalid_argument("FaultPlan: probability outside [0, 1]");
  }
  recv_drop_probability_ = probability;
  return *this;
}

FaultPlan& FaultPlan::drop_accept(std::uint64_t index) {
  accept_faults_[index].drop = true;
  return *this;
}

FaultPlan& FaultPlan::drop_accepts(std::uint64_t first, std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) drop_accept(first + i);
  return *this;
}

FaultPlan& FaultPlan::stall_accept_reads(std::uint64_t index, Millis stall) {
  accept_faults_[index].read_stall = stall;
  return *this;
}

FaultPlan& FaultPlan::tear_server_send_frame(std::uint64_t frame,
                                             std::size_t after_bytes) {
  server_send_faults_[frame] = SendFault{true, after_bytes};
  return *this;
}

ScopedFaultPlan::ScopedFaultPlan(FaultPlan plan) {
  const MutexLock lock(g_mutex);
  if (g_plan != nullptr) {
    throw std::logic_error("ScopedFaultPlan: a plan is already installed");
  }
  const std::uint64_t seed = Access::seed(plan);
  g_plan = std::make_unique<ActivePlan>(std::move(plan), seed);
  g_active.store(true, std::memory_order_release);
}

ScopedFaultPlan::~ScopedFaultPlan() {
  const MutexLock lock(g_mutex);
  g_active.store(false, std::memory_order_release);
  g_plan.reset();
}

FaultStats ScopedFaultPlan::stats() const {
  const MutexLock lock(g_mutex);
  return g_plan != nullptr ? g_plan->stats : FaultStats{};
}

namespace fault_hooks {

std::uint64_t on_connect(std::uint16_t port) {
  if (!g_active.load(std::memory_order_acquire)) return 0;
  Millis delay{0};
  {
    const MutexLock lock(g_mutex);
    if (g_plan == nullptr) return 0;
    const FaultPlan& plan = g_plan->plan;
    if (Access::port(plan) != 0 && Access::port(plan) != port) return 0;
    g_plan->stats.connect_attempts += 1;
    const std::uint64_t index = g_plan->next_connect++;
    const auto& faults = Access::connect_faults(plan);
    const auto it = faults.find(index);
    if (it != faults.end()) {
      if (it->second.refuse) {
        g_plan->stats.connects_refused += 1;
        throw std::system_error(ECONNREFUSED, std::generic_category(),
                                "fault injection: connect refused");
      }
      delay = it->second.delay;
      if (delay.count() > 0) g_plan->stats.delays_injected += 1;
    }
  }
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
  return 1;  // tracked
}

std::size_t send_chunk_cap(std::uint64_t token) noexcept {
  if (token == 0 || !g_active.load(std::memory_order_acquire)) return 0;
  const MutexLock lock(g_mutex);
  return g_plan != nullptr ? Access::send_chunk_cap(g_plan->plan) : 0;
}

SendFrameFault on_send_frame(std::uint64_t token) {
  if (token == 0 || !g_active.load(std::memory_order_acquire)) return {};
  const MutexLock lock(g_mutex);
  if (g_plan == nullptr) return {};
  g_plan->stats.send_frames += 1;
  const std::uint64_t index = g_plan->next_send_frame++;
  const auto& faults = Access::send_faults(g_plan->plan);
  const auto it = faults.find(index);
  if (it == faults.end()) return {};
  g_plan->stats.drops_injected += 1;
  return SendFrameFault{true, it->second.after_bytes};
}

RecvFrameFault on_recv_frame(std::uint64_t token) {
  // Never sleeps: this hook is called from the nonblocking FramedConn pump,
  // which runs inside single-threaded reactor loops. A scripted delay is
  // returned to the caller — blocking readers (framing.cpp's read_frame)
  // sleep it off themselves; the pump latches a read stall and keeps its
  // poll loop live. Sleeping here once parked a whole fleet driver for the
  // injected delay (see tests/net/framed_stall_test.cpp).
  if (token == 0 || !g_active.load(std::memory_order_acquire)) return {};
  RecvFrameFault fault;
  const MutexLock lock(g_mutex);
  if (g_plan == nullptr) return {};
  g_plan->stats.recv_frames += 1;
  const std::uint64_t index = g_plan->next_recv_frame++;
  const auto& faults = Access::recv_faults(g_plan->plan);
  const auto it = faults.find(index);
  if (it != faults.end()) {
    fault.drop = it->second.drop;
    fault.delay = it->second.delay;
  }
  if (!fault.drop && Access::recv_drop_probability(g_plan->plan) > 0.0 &&
      g_plan->rng.chance(Access::recv_drop_probability(g_plan->plan))) {
    fault.drop = true;
  }
  if (fault.drop) g_plan->stats.drops_injected += 1;
  if (fault.delay.count() > 0) g_plan->stats.delays_injected += 1;
  return fault;
}

AcceptFault on_accept(std::uint16_t port) {
  if (!g_active.load(std::memory_order_acquire)) return {};
  const MutexLock lock(g_mutex);
  if (g_plan == nullptr) return {};
  const FaultPlan& plan = g_plan->plan;
  if (Access::port(plan) != 0 && Access::port(plan) != port) return {};
  g_plan->stats.accepts += 1;
  const std::uint64_t index = g_plan->next_accept++;
  AcceptFault fault;
  fault.token = index + 1;  // nonzero: the accepted conn is tracked
  const auto& faults = Access::accept_faults(plan);
  const auto it = faults.find(index);
  if (it != faults.end()) {
    fault.drop = it->second.drop;
    fault.read_stall = it->second.read_stall;
    if (fault.drop) g_plan->stats.accepts_dropped += 1;
    if (fault.read_stall.count() > 0) g_plan->stats.read_stalls_injected += 1;
  }
  return fault;
}

SendFrameFault on_server_send_frame(std::uint64_t token) {
  if (token == 0 || !g_active.load(std::memory_order_acquire)) return {};
  const MutexLock lock(g_mutex);
  if (g_plan == nullptr) return {};
  g_plan->stats.server_send_frames += 1;
  const std::uint64_t index = g_plan->next_server_send_frame++;
  const auto& faults = Access::server_send_faults(g_plan->plan);
  const auto it = faults.find(index);
  if (it == faults.end()) return {};
  g_plan->stats.server_frames_torn += 1;
  return SendFrameFault{true, it->second.after_bytes};
}

}  // namespace fault_hooks
}  // namespace joules
