// RAII POSIX TCP sockets (loopback-oriented).
//
// Autopower's client/server run over real TCP. These wrappers keep the fd
// lifetime safe (move-only owners, close on destruction), add poll()-based
// timeouts, and surface errors as std::system_error. IPv4 loopback is all the
// library needs: the paper's units dial out to a single collection server.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace joules {

// Owns a file descriptor; closes it on destruction. Move-only.
class FdOwner {
 public:
  FdOwner() = default;
  explicit FdOwner(int fd) noexcept : fd_(fd) {}
  ~FdOwner();
  FdOwner(const FdOwner&) = delete;
  FdOwner& operator=(const FdOwner&) = delete;
  FdOwner(FdOwner&& other) noexcept;
  FdOwner& operator=(FdOwner&& other) noexcept;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept;
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

using Millis = std::chrono::milliseconds;

// A connected TCP stream.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(FdOwner fd) noexcept : fd_(std::move(fd)) {}

  // Connects to 127.0.0.1:port; throws std::system_error on failure or
  // timeout.
  static TcpStream connect_loopback(std::uint16_t port,
                                    Millis timeout = Millis{2000});

  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }

  // Sends the whole buffer; throws on error (including peer reset).
  void send_all(std::span<const std::byte> data, Millis timeout = Millis{5000});

  // Receives exactly `size` bytes. Returns false on clean EOF before any byte
  // was read; throws on error, timeout, or mid-message EOF.
  bool recv_exact(std::span<std::byte> out, Millis timeout = Millis{5000});

  // Waits until at least one byte (or EOF) is available without consuming
  // anything; false on timeout. Lets servers poll idle connections in short
  // slices without risking mid-frame timeouts.
  [[nodiscard]] bool wait_readable(Millis timeout);

  // Half-closes the write side (signals EOF to the peer).
  void shutdown_write() noexcept;
  void close() noexcept { fd_.reset(); }

 private:
  FdOwner fd_;
};

// A listening socket on 127.0.0.1. Pass port 0 for an ephemeral port.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port = 0);

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  // Accepts one connection; nullopt on timeout.
  [[nodiscard]] std::optional<TcpStream> accept(Millis timeout = Millis{1000});

  // Unblocks a blocked accept() from another thread by closing the fd.
  void close() noexcept { fd_.reset(); }
  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }

 private:
  FdOwner fd_;
  std::uint16_t port_ = 0;
};

}  // namespace joules
