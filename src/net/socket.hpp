// RAII POSIX TCP sockets (loopback-oriented).
//
// Autopower's client/server run over real TCP. These wrappers keep the fd
// lifetime safe (move-only owners, close on destruction), add poll()-based
// timeouts, and surface errors as std::system_error. IPv4 loopback is all the
// library needs: the paper's units dial out to a single collection server.
//
// Timeouts are absolute deadlines: a `send_all`/`recv_exact`/`connect` call
// converts its timeout to one `Deadline` up front, and every internal poll()
// retry (including after EINTR) waits only for the time remaining — so a
// multi-chunk transfer or a signal storm can never extend a call past the
// requested budget. The `Millis` overloads are conveniences that forward to
// the `Deadline` ones.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

struct pollfd;

namespace joules {

// Owns a file descriptor; closes it on destruction. Move-only.
class FdOwner {
 public:
  FdOwner() = default;
  explicit FdOwner(int fd) noexcept : fd_(fd) {}
  ~FdOwner();
  FdOwner(const FdOwner&) = delete;
  FdOwner& operator=(const FdOwner&) = delete;
  FdOwner(FdOwner&& other) noexcept;
  FdOwner& operator=(FdOwner&& other) noexcept;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  // Discarding the returned fd leaks it: nobody closes it afterwards.
  [[nodiscard]] int release() noexcept;
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

using Millis = std::chrono::milliseconds;

// An absolute point in time an I/O operation must finish by. Computed once
// per operation; polls consult `remaining()` so retries share one budget.
class Deadline {
 public:
  // A deadline `timeout` from now.
  [[nodiscard]] static Deadline after(Millis timeout) noexcept;
  // A deadline that never expires (block until the event).
  [[nodiscard]] static Deadline never() noexcept;

  [[nodiscard]] bool is_never() const noexcept { return never_; }
  [[nodiscard]] bool expired() const noexcept;
  // Time left before expiry, clamped to >= 0. Millis::max() when never().
  [[nodiscard]] Millis remaining() const noexcept;

 private:
  Deadline() = default;
  std::chrono::steady_clock::time_point at_{};
  bool never_ = false;
};

// A connected TCP stream.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(FdOwner fd) noexcept : fd_(std::move(fd)) {}

  // Connects to 127.0.0.1:port; throws std::system_error on failure or
  // timeout (the whole connect, including the readiness wait, shares one
  // deadline).
  [[nodiscard]] static TcpStream connect_loopback(std::uint16_t port,
                                                  Deadline deadline);
  [[nodiscard]] static TcpStream connect_loopback(std::uint16_t port,
                                                  Millis timeout = Millis{2000});

  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }

  // Sends the whole buffer; throws on error (including peer reset) or when
  // the deadline expires before the last byte is written.
  void send_all(std::span<const std::byte> data, Deadline deadline);
  void send_all(std::span<const std::byte> data, Millis timeout = Millis{5000});

  // Receives exactly `size` bytes. Returns false on clean EOF before any byte
  // was read; throws on error, deadline expiry, or mid-message EOF. Ignoring
  // the result would treat a half-open peer as delivered data.
  [[nodiscard]] bool recv_exact(std::span<std::byte> out, Deadline deadline);
  [[nodiscard]] bool recv_exact(std::span<std::byte> out,
                                Millis timeout = Millis{5000});

  // Waits until at least one byte (or EOF) is available without consuming
  // anything; false on timeout. Lets servers poll idle connections in short
  // slices without risking mid-frame timeouts.
  [[nodiscard]] bool wait_readable(Deadline deadline);
  [[nodiscard]] bool wait_readable(Millis timeout);

  // Half-closes the write side (signals EOF to the peer).
  void shutdown_write() noexcept;
  void close() noexcept { fd_.reset(); }

  // Releases ownership of the underlying fd (the stream becomes invalid).
  // For handing the socket to a net::Transport; discarding the fd leaks it.
  [[nodiscard]] int release_fd() noexcept { return fd_.release(); }

  // Nonzero when the stream is tracked by an installed net::FaultPlan
  // (see net/fault.hpp). Internal plumbing for the fault-injection layer;
  // application code never needs it.
  [[nodiscard]] std::uint64_t fault_token() const noexcept { return fault_token_; }

 private:
  FdOwner fd_;
  std::uint64_t fault_token_ = 0;
};

// A listening socket on 127.0.0.1. Pass port 0 for an ephemeral port.
// `backlog` sizes the kernel accept queue — a fleet of units dialing in a
// burst needs more than the old hardcoded 16.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port = 0, int backlog = 256);

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  // Accepts one connection; nullopt on timeout.
  [[nodiscard]] std::optional<TcpStream> accept(Millis timeout = Millis{1000});

  // Nonblocking accept for reactor loops: nullopt when no connection is
  // queued right now (poll poll_fd() for POLLIN first).
  [[nodiscard]] std::optional<TcpStream> try_accept();

  // The fd a reactor polls for accept readiness; -1 when closed.
  [[nodiscard]] int poll_fd() const noexcept { return fd_.get(); }

  // Closing while another thread is blocked in accept() is a data race;
  // have the accepting thread exit its poll slice first, then close.
  void close() noexcept { fd_.reset(); }
  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }

 private:
  FdOwner fd_;
  std::uint16_t port_ = 0;
};

// A self-pipe for waking a poll loop from another thread: stop() and
// adopt_connection() write a byte, the reactor's poll returns within one
// slice instead of its full timeout. notify() is cheap and idempotent
// (the pipe is nonblocking; a full pipe already guarantees a wakeup).
class WakeupPipe {
 public:
  WakeupPipe();

  [[nodiscard]] int poll_fd() const noexcept { return read_end_.get(); }
  void notify() noexcept;
  // Consumes pending wakeup bytes; call when poll reports the fd readable.
  void drain() noexcept;

 private:
  FdOwner read_end_;
  FdOwner write_end_;
};

// Dispatches to poll(2) through the same seam as the socket layer's internal
// waits (net_testing::set_poll_fn), so reactor loops stay steerable from
// poll-hook tests. Retries nothing: EINTR surfaces as rc < 0.
int poll_fds(pollfd* fds, unsigned long nfds, int timeout_ms);

namespace net_testing {
// Test-only seam: replaces the poll(2) entry point the socket layer uses, so
// tests can inject EINTR storms or stalls deterministically. Returns the
// previous function; pass nullptr to restore the real poll().
using PollFn = int (*)(pollfd* fds, unsigned long nfds, int timeout_ms);
PollFn set_poll_fn(PollFn fn) noexcept;
}  // namespace net_testing

}  // namespace joules
