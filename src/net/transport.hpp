// Abstract byte transports behind a C-style ops vtable (net::TransportOps).
//
// The autopower reactor talks to connections through this seam instead of
// calling TcpStream directly — the same shape as libgphoto2's port
// operations table: one protocol implementation, interchangeable backends.
// Three backends ship:
//   - loopback TCP  (from_stream): a connected socket, switched nonblocking;
//   - in-process pipe (pipe_pair): an AF_UNIX socketpair, both ends wrapped,
//     so protocol tests need no listener, no ports, no dial race;
//   - recorded replay (replay): reads come from a scripted byte sequence,
//     writes land in a shared capture — deterministic protocol traces with
//     no kernel I/O at all (poll_fd() is -1: always ready).
//
// All backends are nonblocking: read/write never park the caller. A reactor
// multiplexes many transports off one poll() loop via poll_fd(); a backend
// without a pollable fd reports -1 and the reactor treats it as always
// ready.
//
// Fault injection: a transport carries up to two net::FaultPlan tokens. The
// dial token (inherited from TcpStream::fault_token) applies the plan's
// client-side faults (send-chunk caps; the frame layer in framed_conn.hpp
// consults the frame hooks). The accept token is issued by
// fault_hooks::on_accept for server-side accepted connections so the plan
// can tear server frames and stall server reads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "net/socket.hpp"
#include "util/thread_annotations.hpp"

namespace joules::net {

// Result of one nonblocking read/write. At most one of `would_block` and
// `eof` is set; `bytes` may be nonzero alongside neither (short transfer).
struct TransportIo {
  std::size_t bytes = 0;
  bool would_block = false;
  bool eof = false;  // read side: peer finished cleanly
};

// The backend vtable. `state` is the backend's opaque handle; `destroy`
// frees it (after an implicit close). Hard I/O errors throw
// std::system_error out of read/write — the reactor treats that as a dead
// connection.
struct TransportOps {
  const char* name;
  TransportIo (*read)(void* state, std::span<std::byte> out);
  TransportIo (*write)(void* state, std::span<const std::byte> data);
  int (*poll_fd)(const void* state);  // -1 = no fd; always ready
  void (*close)(void* state) noexcept;
  void (*destroy)(void* state) noexcept;
};

// What a replay transport feeds the reader: byte chunks delivered in order
// (each read drains at most one chunk boundary's worth), then EOF.
struct ReplayScript {
  std::vector<std::vector<std::byte>> chunks;
};

// Where a replay transport's writes land. Shared (mutex-guarded) so the test
// thread can inspect while the reactor writes.
class ReplayCapture {
 public:
  [[nodiscard]] std::vector<std::byte> bytes() const JOULES_EXCLUDES(mutex_);
  [[nodiscard]] bool closed() const JOULES_EXCLUDES(mutex_);

  void append(std::span<const std::byte> data) JOULES_EXCLUDES(mutex_);
  void mark_closed() JOULES_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::vector<std::byte> bytes_ JOULES_GUARDED_BY(mutex_);
  bool closed_ JOULES_GUARDED_BY(mutex_) = false;
};

// Move-only owner of (ops, state). Default-constructed transports are
// invalid; I/O on them is a programming error.
class Transport {
 public:
  Transport() = default;
  Transport(const TransportOps* ops, void* state) noexcept
      : ops_(ops), state_(state) {}
  ~Transport();
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
  Transport(Transport&& other) noexcept;
  Transport& operator=(Transport&& other) noexcept;

  [[nodiscard]] bool valid() const noexcept { return ops_ != nullptr; }
  [[nodiscard]] const char* backend_name() const noexcept;

  // Nonblocking. Applies the plan's send-chunk cap for dial-tracked
  // transports before handing the slice to the backend.
  [[nodiscard]] TransportIo read(std::span<std::byte> out);
  [[nodiscard]] TransportIo write(std::span<const std::byte> data);

  [[nodiscard]] int poll_fd() const;
  void close() noexcept;

  // Fault-plan plumbing (see net/fault.hpp); 0 = untracked.
  [[nodiscard]] std::uint64_t dial_token() const noexcept { return dial_token_; }
  [[nodiscard]] std::uint64_t accept_token() const noexcept {
    return accept_token_;
  }
  void set_accept_token(std::uint64_t token) noexcept { accept_token_ = token; }

  // Wraps a connected TCP stream (switched to nonblocking); inherits the
  // stream's fault token as the dial token.
  [[nodiscard]] static Transport from_stream(TcpStream stream);

  // A connected in-process pair: what one end writes the other reads.
  [[nodiscard]] static std::pair<Transport, Transport> pipe_pair();

  // A transport whose reads replay `script` and whose writes append to
  // `capture` (required — a replay without a capture records nothing).
  [[nodiscard]] static Transport replay(ReplayScript script,
                                        std::shared_ptr<ReplayCapture> capture);

 private:
  const TransportOps* ops_ = nullptr;
  void* state_ = nullptr;
  std::uint64_t dial_token_ = 0;
  std::uint64_t accept_token_ = 0;
};

// Raises RLIMIT_NOFILE's soft limit toward the hard limit until at least
// `want` descriptors fit (no-op when they already do). Returns false when
// the hard limit is below `want` — fleet tests scale down or skip then.
[[nodiscard]] bool ensure_fd_capacity(std::size_t want) noexcept;

}  // namespace joules::net
