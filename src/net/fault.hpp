// Deterministic fault injection for the loopback transport.
//
// Production telemetry fails in specific, reproducible ways — connections
// refused, links dying mid-frame, acks lost after the server already
// committed a batch — and the Autopower robustness claims are only testable
// if tests can script those exact sequences. A `FaultPlan` describes a
// schedule of faults; installing it (via `ScopedFaultPlan`, test-scoped)
// makes every `TcpStream::connect_loopback` consult the plan, and tags the
// streams it produces so the frame layer (net/framing.hpp) can inject
// send/recv faults on them. The connect/send/recv faults apply to *dialing*
// (client-side) streams — the asymmetry of the paper's deployment (units
// behind NAT dial out). The accept-side faults (`drop_accept`,
// `tear_server_send_frame`, `stall_accept_reads`) are the server half: the
// reactor consults `on_accept` for each accepted connection and
// `on_server_send_frame` for each frame it queues, so tests can script the
// collection server misbehaving too (dropped accepts, torn server frames,
// stalled reads).
//
// Scripted faults are keyed by a zero-based operation index counted across
// the plan's lifetime (connect attempts, sent frames, received frames,
// accepts, and server-sent frames each have their own counter).
// Probabilistic faults draw from a seeded Rng, so a given (plan, seed)
// replays the identical fault sequence every run.
#pragma once

#include <cstdint>
#include <map>

#include "net/socket.hpp"

namespace joules {

// Counters a test can assert against (e.g. "the client made exactly four
// connect attempts before giving up").
struct FaultStats {
  std::uint64_t connect_attempts = 0;  // tracked connect_loopback calls
  std::uint64_t connects_refused = 0;
  std::uint64_t send_frames = 0;       // frames written on tracked streams
  std::uint64_t recv_frames = 0;       // frame reads started on tracked streams
  std::uint64_t drops_injected = 0;    // connections killed mid-operation
  std::uint64_t delays_injected = 0;
  std::uint64_t accepts = 0;               // tracked server-side accepts
  std::uint64_t accepts_dropped = 0;       // closed at accept time
  std::uint64_t server_send_frames = 0;    // frames queued on tracked accepts
  std::uint64_t server_frames_torn = 0;
  std::uint64_t read_stalls_injected = 0;  // accept-side stalled-read windows
};

class FaultPlan {
 public:
  FaultPlan() = default;
  // Seed for the probabilistic faults (drop_recv_randomly); scripted faults
  // are deterministic regardless.
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  // Restricts the plan to connects against one port (0 = every loopback
  // connect). Streams dialed to other ports are not tracked or counted.
  FaultPlan& match_port(std::uint16_t port);

  // Refuses the given zero-based connect attempt(s) with ECONNREFUSED.
  FaultPlan& refuse_connect(std::uint64_t attempt);
  FaultPlan& refuse_connects(std::uint64_t first, std::uint64_t count);
  // Sleeps before letting the given connect attempt proceed (added latency).
  FaultPlan& delay_connect(std::uint64_t attempt, Millis delay);

  // Kills the connection while writing the given frame: `after_bytes` of the
  // encoded frame (length prefix included) are put on the wire, then the
  // socket closes — the peer sees a torn frame.
  FaultPlan& drop_send_frame(std::uint64_t frame, std::size_t after_bytes = 0);
  // Kills the connection instead of reading the given frame. Applied to the
  // frame index *after* the peer may have committed and replied, this is the
  // classic "ack lost after server commit" fault.
  FaultPlan& drop_recv_frame(std::uint64_t frame);
  // Sleeps before reading the given frame (added latency).
  FaultPlan& delay_recv_frame(std::uint64_t frame, Millis delay);

  // Caps every send(2) on tracked streams to `max_bytes` per call, forcing
  // the multi-chunk partial-write path even for small frames.
  FaultPlan& cap_send_chunk(std::size_t max_bytes);

  // Drops each tracked frame read with the given probability (seeded).
  FaultPlan& drop_recv_randomly(double probability);

  // --- Accept-side (server) faults ------------------------------------
  // Closes the given zero-based accepted connection immediately after
  // accept(2) — the dialing peer sees the connection open, then die.
  FaultPlan& drop_accept(std::uint64_t index);
  FaultPlan& drop_accepts(std::uint64_t first, std::uint64_t count);
  // The given accepted connection's reads stall for `stall` after accept:
  // the server leaves every byte it sends unread until the window passes
  // (a slow-loris server; the peer's frames sit in kernel buffers).
  FaultPlan& stall_accept_reads(std::uint64_t index, Millis stall);
  // Tears the given zero-based *server-sent* frame: only `after_bytes` of
  // the encoded frame reach the wire, then the connection closes — the
  // dialing client sees a torn server frame (e.g. a half-written ack).
  FaultPlan& tear_server_send_frame(std::uint64_t frame,
                                    std::size_t after_bytes = 0);

 private:
  friend struct FaultPlanAccess;  // fault.cpp's window into the schedule

  struct ConnectFault {
    bool refuse = false;
    Millis delay{0};
  };
  struct SendFault {
    bool drop = false;
    std::size_t after_bytes = 0;
  };
  struct RecvFault {
    bool drop = false;
    Millis delay{0};
  };

  struct AcceptFault {
    bool drop = false;
    Millis read_stall{0};
  };

  std::uint64_t seed_ = 0;
  std::uint16_t port_ = 0;  // 0 = match any
  std::map<std::uint64_t, ConnectFault> connect_faults_;
  std::map<std::uint64_t, SendFault> send_faults_;
  std::map<std::uint64_t, RecvFault> recv_faults_;
  std::map<std::uint64_t, AcceptFault> accept_faults_;
  std::map<std::uint64_t, SendFault> server_send_faults_;
  std::size_t send_chunk_cap_ = 0;  // 0 = uncapped
  double recv_drop_probability_ = 0.0;
};

// Installs a plan process-wide for its lifetime. One at a time; constructing
// a second concurrently throws std::logic_error. Intended for tests: the
// hooks cost one relaxed atomic load when no plan is installed.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan);
  ~ScopedFaultPlan();
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

  [[nodiscard]] FaultStats stats() const;
};

namespace fault_hooks {
// Internal seams the net layer calls; application code never uses these.
// All are no-ops (returning 0 / no fault) when no plan is installed.

// Consulted at the top of connect_loopback. Throws std::system_error
// (ECONNREFUSED) to refuse; otherwise returns a nonzero token when the new
// stream should be tracked, 0 when untracked.
std::uint64_t on_connect(std::uint16_t port);

// Per-send(2) byte cap for a tracked stream (0 = uncapped).
std::size_t send_chunk_cap(std::uint64_t token) noexcept;

struct SendFrameFault {
  bool drop = false;
  std::size_t after_bytes = 0;
};
// Consulted by write_frame before encoding hits the wire.
[[nodiscard]] SendFrameFault on_send_frame(std::uint64_t token);

struct RecvFrameFault {
  bool drop = false;
  Millis delay{0};  // scripted added latency before the frame is delivered
};
// Consulted by read_frame / the FramedConn pump per received frame. Never
// sleeps: the caller applies `delay` (blocking readers sleep, the
// nonblocking pump latches a read stall so reactor loops stay live).
[[nodiscard]] RecvFrameFault on_recv_frame(std::uint64_t token);

struct AcceptFault {
  bool drop = false;          // close the connection right after accept
  std::uint64_t token = 0;    // nonzero when the accepted conn is tracked
  Millis read_stall{0};       // leave the conn's reads unserviced this long
};
// Consulted by the reactor for every accepted connection (port = the
// listener's port, used with match_port). Never sleeps: the stall is the
// reactor's to schedule (it keeps serving other connections meanwhile).
[[nodiscard]] AcceptFault on_accept(std::uint16_t port);

// Consulted when the server queues a frame on a tracked accepted connection
// (token from on_accept). drop = tear: only after_bytes reach the wire,
// then the connection closes.
[[nodiscard]] SendFrameFault on_server_send_frame(std::uint64_t token);

}  // namespace fault_hooks

}  // namespace joules
