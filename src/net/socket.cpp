#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace joules {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int wanted = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, wanted) < 0) throw_errno("fcntl(F_SETFL)");
}

// Waits until `fd` is ready for the given events; returns false on timeout.
bool wait_ready(int fd, short events, Millis timeout) {
  pollfd pfd{fd, events, 0};
  while (true) {
    const int rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) throw_errno("poll");
  }
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

FdOwner::~FdOwner() { reset(); }

FdOwner::FdOwner(FdOwner&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

FdOwner& FdOwner::operator=(FdOwner&& other) noexcept {
  if (this != &other) {
    reset(other.fd_);
    other.fd_ = -1;
  }
  return *this;
}

int FdOwner::release() noexcept {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void FdOwner::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

TcpStream TcpStream::connect_loopback(std::uint16_t port, Millis timeout) {
  FdOwner fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  set_nonblocking(fd.get(), true);

  const sockaddr_in addr = loopback_addr(port);
  const int rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                           sizeof addr);
  if (rc < 0) {
    if (errno != EINPROGRESS) throw_errno("connect");
    if (!wait_ready(fd.get(), POLLOUT, timeout)) {
      throw std::system_error(ETIMEDOUT, std::generic_category(), "connect timeout");
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      throw_errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      throw std::system_error(err, std::generic_category(), "connect");
    }
  }
  set_nonblocking(fd.get(), false);
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpStream(std::move(fd));
}

void TcpStream::send_all(std::span<const std::byte> data, Millis timeout) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    if (!wait_ready(fd_.get(), POLLOUT, timeout)) {
      throw std::system_error(ETIMEDOUT, std::generic_category(), "send timeout");
    }
    const ssize_t n = ::send(fd_.get(), data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool TcpStream::recv_exact(std::span<std::byte> out, Millis timeout) {
  std::size_t received = 0;
  while (received < out.size()) {
    if (!wait_ready(fd_.get(), POLLIN, timeout)) {
      throw std::system_error(ETIMEDOUT, std::generic_category(), "recv timeout");
    }
    const ssize_t n =
        ::recv(fd_.get(), out.data() + received, out.size() - received, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (received == 0) return false;  // clean EOF at a message boundary
      throw std::system_error(ECONNRESET, std::generic_category(),
                              "EOF mid-message");
    }
    received += static_cast<std::size_t>(n);
  }
  return true;
}

bool TcpStream::wait_readable(Millis timeout) {
  return wait_ready(fd_.get(), POLLIN, timeout);
}

void TcpStream::shutdown_write() noexcept {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_WR);
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_.reset(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd_.valid()) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd_.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    throw_errno("bind");
  }
  if (::listen(fd_.get(), 16) < 0) throw_errno("listen");

  socklen_t len = sizeof addr;
  if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

std::optional<TcpStream> TcpListener::accept(Millis timeout) {
  if (!fd_.valid()) return std::nullopt;
  if (!wait_ready(fd_.get(), POLLIN, timeout)) return std::nullopt;
  const int client = ::accept(fd_.get(), nullptr, nullptr);
  if (client < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == EBADF || errno == EINVAL) {
      return std::nullopt;  // racing close() or spurious wakeup
    }
    throw_errno("accept");
  }
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpStream(FdOwner(client));
}

}  // namespace joules
