#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <system_error>

#include "net/fault.hpp"

namespace joules {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int wanted = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, wanted) < 0) throw_errno("fcntl(F_SETFL)");
}

int real_poll(pollfd* fds, unsigned long nfds, int timeout_ms) {
  return ::poll(fds, static_cast<nfds_t>(nfds), timeout_ms);
}

std::atomic<net_testing::PollFn> g_poll_fn{&real_poll};

// Longest single poll() slice; never-expiring deadlines re-poll in slices so
// the fd stays responsive to the test poll hook being swapped out.
constexpr int kMaxPollSliceMs = 60'000;

// Waits until `fd` is ready for the given events; returns false once the
// deadline expires. The deadline is absolute: EINTR and slice wakeups retry
// with the *remaining* time, never the original budget.
bool wait_ready(int fd, short events, Deadline deadline) {
  pollfd pfd{fd, events, 0};
  const net_testing::PollFn poll_fn = g_poll_fn.load(std::memory_order_relaxed);
  while (true) {
    int wait_ms = kMaxPollSliceMs;
    if (!deadline.is_never()) {
      const auto remaining = deadline.remaining().count();
      wait_ms = static_cast<int>(
          remaining < kMaxPollSliceMs ? remaining : kMaxPollSliceMs);
    }
    const int rc = poll_fn(&pfd, 1, wait_ms);
    if (rc > 0) return true;
    if (rc == 0) {
      if (!deadline.is_never() && deadline.expired()) return false;
      continue;  // slice elapsed before the deadline; keep waiting
    }
    if (errno != EINTR) throw_errno("poll");
    if (!deadline.is_never() && deadline.expired()) return false;
  }
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

namespace net_testing {
PollFn set_poll_fn(PollFn fn) noexcept {
  return g_poll_fn.exchange(fn != nullptr ? fn : &real_poll);
}
}  // namespace net_testing

Deadline Deadline::after(Millis timeout) noexcept {
  Deadline d;
  d.at_ = std::chrono::steady_clock::now() + timeout;
  return d;
}

Deadline Deadline::never() noexcept {
  Deadline d;
  d.never_ = true;
  return d;
}

bool Deadline::expired() const noexcept {
  return !never_ && std::chrono::steady_clock::now() >= at_;
}

Millis Deadline::remaining() const noexcept {
  if (never_) return Millis::max();
  const auto left = std::chrono::duration_cast<Millis>(
      at_ - std::chrono::steady_clock::now());
  return left < Millis{0} ? Millis{0} : left;
}

FdOwner::~FdOwner() { reset(); }

FdOwner::FdOwner(FdOwner&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

FdOwner& FdOwner::operator=(FdOwner&& other) noexcept {
  if (this != &other) {
    reset(other.fd_);
    other.fd_ = -1;
  }
  return *this;
}

int FdOwner::release() noexcept {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void FdOwner::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

TcpStream TcpStream::connect_loopback(std::uint16_t port, Deadline deadline) {
  // The installed fault plan may refuse the attempt (throws ECONNREFUSED)
  // or tag the resulting stream for later send/recv injection.
  const std::uint64_t token = fault_hooks::on_connect(port);

  FdOwner fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  set_nonblocking(fd.get(), true);

  const sockaddr_in addr = loopback_addr(port);
  const int rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                           sizeof addr);
  if (rc < 0) {
    if (errno != EINPROGRESS) throw_errno("connect");
    if (!wait_ready(fd.get(), POLLOUT, deadline)) {
      throw std::system_error(ETIMEDOUT, std::generic_category(), "connect timeout");
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      throw_errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      throw std::system_error(err, std::generic_category(), "connect");
    }
  }
  set_nonblocking(fd.get(), false);
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  TcpStream stream(std::move(fd));
  stream.fault_token_ = token;
  return stream;
}

TcpStream TcpStream::connect_loopback(std::uint16_t port, Millis timeout) {
  return connect_loopback(port, Deadline::after(timeout));
}

void TcpStream::send_all(std::span<const std::byte> data, Deadline deadline) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    if (!wait_ready(fd_.get(), POLLOUT, deadline)) {
      throw std::system_error(ETIMEDOUT, std::generic_category(), "send timeout");
    }
    std::size_t chunk = data.size() - sent;
    if (fault_token_ != 0) {
      const std::size_t cap = fault_hooks::send_chunk_cap(fault_token_);
      if (cap != 0 && chunk > cap) chunk = cap;  // forced partial write
    }
    const ssize_t n = ::send(fd_.get(), data.data() + sent, chunk, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void TcpStream::send_all(std::span<const std::byte> data, Millis timeout) {
  send_all(data, Deadline::after(timeout));
}

bool TcpStream::recv_exact(std::span<std::byte> out, Deadline deadline) {
  std::size_t received = 0;
  while (received < out.size()) {
    if (!wait_ready(fd_.get(), POLLIN, deadline)) {
      throw std::system_error(ETIMEDOUT, std::generic_category(), "recv timeout");
    }
    const ssize_t n =
        ::recv(fd_.get(), out.data() + received, out.size() - received, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (received == 0) return false;  // clean EOF at a message boundary
      throw std::system_error(ECONNRESET, std::generic_category(),
                              "EOF mid-message");
    }
    received += static_cast<std::size_t>(n);
  }
  return true;
}

bool TcpStream::recv_exact(std::span<std::byte> out, Millis timeout) {
  return recv_exact(out, Deadline::after(timeout));
}

bool TcpStream::wait_readable(Deadline deadline) {
  return wait_ready(fd_.get(), POLLIN, deadline);
}

bool TcpStream::wait_readable(Millis timeout) {
  return wait_readable(Deadline::after(timeout));
}

void TcpStream::shutdown_write() noexcept {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_WR);
}

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  fd_.reset(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd_.valid()) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd_.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    throw_errno("bind");
  }
  if (::listen(fd_.get(), backlog) < 0) throw_errno("listen");
  // Nonblocking so reactor loops can drain the accept queue with
  // try_accept() until EAGAIN; the timed accept() polls first anyway.
  set_nonblocking(fd_.get(), true);

  socklen_t len = sizeof addr;
  if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

std::optional<TcpStream> TcpListener::accept(Millis timeout) {
  if (!fd_.valid()) return std::nullopt;
  if (!wait_ready(fd_.get(), POLLIN, Deadline::after(timeout))) return std::nullopt;
  return try_accept();
}

std::optional<TcpStream> TcpListener::try_accept() {
  if (!fd_.valid()) return std::nullopt;
  const int client = ::accept(fd_.get(), nullptr, nullptr);
  if (client < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == EBADF || errno == EINVAL) {
      return std::nullopt;  // nothing queued, racing close(), or spurious wakeup
    }
    throw_errno("accept");
  }
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpStream(FdOwner(client));
}

WakeupPipe::WakeupPipe() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) < 0) throw_errno("pipe");
  read_end_.reset(fds[0]);
  write_end_.reset(fds[1]);
  set_nonblocking(read_end_.get(), true);
  set_nonblocking(write_end_.get(), true);
}

void WakeupPipe::notify() noexcept {
  if (!write_end_.valid()) return;
  const char byte = 1;
  // EAGAIN means the pipe already holds a pending wakeup — good enough.
  [[maybe_unused]] const ssize_t n = ::write(write_end_.get(), &byte, 1);
}

void WakeupPipe::drain() noexcept {
  if (!read_end_.valid()) return;
  char sink[64];
  while (::read(read_end_.get(), sink, sizeof sink) > 0) {
  }
}

int poll_fds(pollfd* fds, unsigned long nfds, int timeout_ms) {
  return g_poll_fn.load(std::memory_order_relaxed)(fds, nfds, timeout_ms);
}

}  // namespace joules
