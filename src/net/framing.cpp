#include "net/framing.hpp"

#include <bit>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <thread>

#include "net/fault.hpp"

namespace joules {
namespace {

void append_be(std::vector<std::byte>& buffer, std::uint64_t value, int bytes) {
  for (int i = bytes - 1; i >= 0; --i) {
    buffer.push_back(static_cast<std::byte>((value >> (8 * i)) & 0xff));
  }
}

std::uint64_t read_be(std::span<const std::byte> data) {
  std::uint64_t value = 0;
  for (const std::byte b : data) {
    value = (value << 8) | static_cast<std::uint64_t>(b);
  }
  return value;
}

}  // namespace

void write_frame(TcpStream& stream, std::span<const std::byte> payload,
                 Deadline deadline) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::invalid_argument("write_frame: payload too large");
  }
  const auto fault = fault_hooks::on_send_frame(stream.fault_token());
  if (fault.drop) {
    // Mid-frame disconnect: put the scripted prefix of the encoded frame on
    // the wire, then die — the peer sees a torn frame.
    std::vector<std::byte> frame;
    append_be(frame, payload.size(), 4);
    frame.insert(frame.end(), payload.begin(), payload.end());
    const std::size_t sent =
        fault.after_bytes < frame.size() ? fault.after_bytes : frame.size();
    if (sent > 0) stream.send_all(std::span(frame).first(sent), deadline);
    stream.close();
    throw std::system_error(ECONNRESET, std::generic_category(),
                            "fault injection: connection dropped mid-frame");
  }
  std::vector<std::byte> header;
  append_be(header, payload.size(), 4);
  stream.send_all(header, deadline);
  stream.send_all(payload, deadline);
}

void write_frame(TcpStream& stream, std::span<const std::byte> payload,
                 Millis timeout) {
  write_frame(stream, payload, Deadline::after(timeout));
}

std::optional<std::vector<std::byte>> read_frame(TcpStream& stream,
                                                 Deadline deadline) {
  const auto fault = fault_hooks::on_recv_frame(stream.fault_token());
  // Blocking path: scripted latency is slept off right here. (The
  // nonblocking FramedConn pump instead latches a read stall.)
  if (fault.delay.count() > 0) std::this_thread::sleep_for(fault.delay);
  if (fault.drop) {
    // The frame (e.g. an ack the peer already committed) is lost in transit:
    // the connection dies before a single byte of it is read.
    stream.close();
    throw std::system_error(ECONNRESET, std::generic_category(),
                            "fault injection: frame dropped");
  }
  std::byte header[4];
  if (!stream.recv_exact(header, deadline)) return std::nullopt;
  const std::uint64_t length = read_be(header);
  if (length > kMaxFrameBytes) {
    throw std::runtime_error("read_frame: oversized frame (protocol error)");
  }
  std::vector<std::byte> payload(length);
  if (length > 0 && !stream.recv_exact(payload, deadline)) {
    throw std::runtime_error("read_frame: EOF after frame header");
  }
  return payload;
}

std::optional<std::vector<std::byte>> read_frame(TcpStream& stream,
                                                 Millis timeout) {
  return read_frame(stream, Deadline::after(timeout));
}

void ByteWriter::u8(std::uint8_t value) { append_be(buffer_, value, 1); }
void ByteWriter::u16(std::uint16_t value) { append_be(buffer_, value, 2); }
void ByteWriter::u32(std::uint32_t value) { append_be(buffer_, value, 4); }
void ByteWriter::u64(std::uint64_t value) { append_be(buffer_, value, 8); }
void ByteWriter::i64(std::int64_t value) {
  append_be(buffer_, static_cast<std::uint64_t>(value), 8);
}
void ByteWriter::f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }

void ByteWriter::string(const std::string& value) {
  if (value.size() > kMaxFrameBytes) {
    throw std::invalid_argument("ByteWriter: string too large");
  }
  u32(static_cast<std::uint32_t>(value.size()));
  for (const char c : value) buffer_.push_back(static_cast<std::byte>(c));
}

std::span<const std::byte> ByteReader::take(std::size_t n) {
  if (remaining() < n) {
    throw std::out_of_range("ByteReader: message truncated");
  }
  const std::span<const std::byte> out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::uint8_t ByteReader::u8() { return static_cast<std::uint8_t>(read_be(take(1))); }
std::uint16_t ByteReader::u16() { return static_cast<std::uint16_t>(read_be(take(2))); }
std::uint32_t ByteReader::u32() { return static_cast<std::uint32_t>(read_be(take(4))); }
std::uint64_t ByteReader::u64() { return read_be(take(8)); }
std::int64_t ByteReader::i64() { return static_cast<std::int64_t>(read_be(take(8))); }
double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::string() {
  const std::uint32_t length = u32();
  const std::span<const std::byte> data = take(length);
  std::string out;
  out.reserve(length);
  for (const std::byte b : data) out.push_back(static_cast<char>(b));
  return out;
}

}  // namespace joules
