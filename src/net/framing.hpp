// Length-prefixed message framing and binary (de)serialization.
//
// Frames on the wire are a 4-byte big-endian length followed by the payload.
// `ByteWriter`/`ByteReader` build and parse payloads with explicit
// fixed-width big-endian encodings — no struct punning, no host-endianness
// assumptions.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/socket.hpp"

namespace joules {

inline constexpr std::size_t kMaxFrameBytes = 16 * 1024 * 1024;

// Sends one frame (length prefix + payload). The whole frame — header and
// payload together — shares one deadline; the Millis overload converts once
// at entry.
void write_frame(TcpStream& stream, std::span<const std::byte> payload,
                 Deadline deadline);
void write_frame(TcpStream& stream, std::span<const std::byte> payload,
                 Millis timeout = Millis{5000});

// Receives one frame under a single deadline. nullopt on clean EOF at a
// frame boundary; throws on malformed length, timeout, or mid-frame EOF.
[[nodiscard]] std::optional<std::vector<std::byte>> read_frame(
    TcpStream& stream, Deadline deadline);
[[nodiscard]] std::optional<std::vector<std::byte>> read_frame(
    TcpStream& stream, Millis timeout = Millis{5000});

class ByteWriter {
 public:
  void u8(std::uint8_t value);
  void u16(std::uint16_t value);
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void i64(std::int64_t value);
  void f64(double value);  // IEEE-754 bits, big-endian
  void string(const std::string& value);  // u32 length + bytes

  [[nodiscard]] std::span<const std::byte> bytes() const noexcept { return buffer_; }
  [[nodiscard]] std::vector<std::byte> take() && { return std::move(buffer_); }

 private:
  std::vector<std::byte> buffer_;
};

// Throws std::out_of_range when reading past the end — a malformed message.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) noexcept : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string string();

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  std::span<const std::byte> take(std::size_t n);
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace joules
