#include "net/transport.hpp"

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>
#include <system_error>

#include "net/fault.hpp"

namespace joules::net {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) throw_errno("fcntl(F_SETFL)");
}

// --- fd-backed transports (loopback TCP and the AF_UNIX socketpair) -------

struct FdState {
  FdOwner fd;
};

TransportIo fd_read(void* state, std::span<std::byte> out) {
  auto* fd_state = static_cast<FdState*>(state);
  TransportIo io;
  if (!fd_state->fd.valid() || out.empty()) return io;
  while (true) {
    const ssize_t n = ::recv(fd_state->fd.get(), out.data(), out.size(), 0);
    if (n > 0) {
      io.bytes = static_cast<std::size_t>(n);
      return io;
    }
    if (n == 0) {
      io.eof = true;
      return io;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      io.would_block = true;
      return io;
    }
    throw_errno("transport recv");
  }
}

TransportIo fd_write(void* state, std::span<const std::byte> data) {
  auto* fd_state = static_cast<FdState*>(state);
  TransportIo io;
  if (!fd_state->fd.valid() || data.empty()) return io;
  while (true) {
    const ssize_t n =
        ::send(fd_state->fd.get(), data.data(), data.size(), MSG_NOSIGNAL);
    if (n >= 0) {
      io.bytes = static_cast<std::size_t>(n);
      return io;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      io.would_block = true;
      return io;
    }
    throw_errno("transport send");
  }
}

int fd_poll_fd(const void* state) {
  return static_cast<const FdState*>(state)->fd.get();
}

void fd_close(void* state) noexcept { static_cast<FdState*>(state)->fd.reset(); }

void fd_destroy(void* state) noexcept { delete static_cast<FdState*>(state); }

constexpr TransportOps kTcpOps{"tcp",     &fd_read,  &fd_write,
                               &fd_poll_fd, &fd_close, &fd_destroy};
constexpr TransportOps kPipeOps{"pipe",    &fd_read,  &fd_write,
                                &fd_poll_fd, &fd_close, &fd_destroy};

// --- recorded-replay transport --------------------------------------------

struct ReplayState {
  ReplayScript script;
  std::shared_ptr<ReplayCapture> capture;
  std::size_t chunk = 0;   // next chunk to deliver
  std::size_t offset = 0;  // consumed bytes of that chunk
  bool closed = false;
};

TransportIo replay_read(void* state, std::span<std::byte> out) {
  auto* replay = static_cast<ReplayState*>(state);
  TransportIo io;
  if (replay->closed) {
    io.eof = true;
    return io;
  }
  while (replay->chunk < replay->script.chunks.size() &&
         replay->offset == replay->script.chunks[replay->chunk].size()) {
    replay->chunk += 1;
    replay->offset = 0;
  }
  if (replay->chunk >= replay->script.chunks.size()) {
    io.eof = true;  // script exhausted: the recorded peer hung up
    return io;
  }
  const std::vector<std::byte>& chunk = replay->script.chunks[replay->chunk];
  const std::size_t n = std::min(out.size(), chunk.size() - replay->offset);
  std::copy_n(chunk.begin() + static_cast<long>(replay->offset), n, out.begin());
  replay->offset += n;
  io.bytes = n;
  return io;
}

TransportIo replay_write(void* state, std::span<const std::byte> data) {
  auto* replay = static_cast<ReplayState*>(state);
  TransportIo io;
  if (replay->closed) {
    throw std::system_error(EPIPE, std::generic_category(),
                            "replay transport closed");
  }
  replay->capture->append(data);
  io.bytes = data.size();
  return io;
}

int replay_poll_fd(const void* /*state*/) { return -1; }

void replay_close(void* state) noexcept {
  auto* replay = static_cast<ReplayState*>(state);
  if (!replay->closed) {
    replay->closed = true;
    replay->capture->mark_closed();
  }
}

void replay_destroy(void* state) noexcept {
  replay_close(state);
  delete static_cast<ReplayState*>(state);
}

constexpr TransportOps kReplayOps{"replay",        &replay_read,
                                  &replay_write,   &replay_poll_fd,
                                  &replay_close,   &replay_destroy};

}  // namespace

std::vector<std::byte> ReplayCapture::bytes() const {
  const MutexLock lock(mutex_);
  return bytes_;
}

bool ReplayCapture::closed() const {
  const MutexLock lock(mutex_);
  return closed_;
}

void ReplayCapture::append(std::span<const std::byte> data) {
  const MutexLock lock(mutex_);
  bytes_.insert(bytes_.end(), data.begin(), data.end());
}

void ReplayCapture::mark_closed() {
  const MutexLock lock(mutex_);
  closed_ = true;
}

Transport::~Transport() {
  if (ops_ != nullptr) ops_->destroy(state_);
}

Transport::Transport(Transport&& other) noexcept
    : ops_(other.ops_),
      state_(other.state_),
      dial_token_(other.dial_token_),
      accept_token_(other.accept_token_) {
  other.ops_ = nullptr;
  other.state_ = nullptr;
}

Transport& Transport::operator=(Transport&& other) noexcept {
  if (this != &other) {
    if (ops_ != nullptr) ops_->destroy(state_);
    ops_ = other.ops_;
    state_ = other.state_;
    dial_token_ = other.dial_token_;
    accept_token_ = other.accept_token_;
    other.ops_ = nullptr;
    other.state_ = nullptr;
  }
  return *this;
}

const char* Transport::backend_name() const noexcept {
  return ops_ != nullptr ? ops_->name : "invalid";
}

TransportIo Transport::read(std::span<std::byte> out) {
  if (ops_ == nullptr) throw std::logic_error("Transport::read: invalid");
  return ops_->read(state_, out);
}

TransportIo Transport::write(std::span<const std::byte> data) {
  if (ops_ == nullptr) throw std::logic_error("Transport::write: invalid");
  std::span<const std::byte> slice = data;
  if (dial_token_ != 0) {
    const std::size_t cap = joules::fault_hooks::send_chunk_cap(dial_token_);
    if (cap != 0 && slice.size() > cap) slice = slice.first(cap);
  }
  return ops_->write(state_, slice);
}

int Transport::poll_fd() const {
  return ops_ != nullptr ? ops_->poll_fd(state_) : -1;
}

void Transport::close() noexcept {
  if (ops_ != nullptr) ops_->close(state_);
}

Transport Transport::from_stream(TcpStream stream) {
  if (!stream.valid()) {
    throw std::invalid_argument("Transport::from_stream: invalid stream");
  }
  const std::uint64_t token = stream.fault_token();
  auto* state = new FdState{FdOwner(stream.release_fd())};
  set_nonblocking(state->fd.get());
  Transport transport(&kTcpOps, state);
  transport.dial_token_ = token;
  return transport;
}

std::pair<Transport, Transport> Transport::pipe_pair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) throw_errno("socketpair");
  auto* a = new FdState{FdOwner(fds[0])};
  auto* b = new FdState{FdOwner(fds[1])};
  set_nonblocking(a->fd.get());
  set_nonblocking(b->fd.get());
  return {Transport(&kPipeOps, a), Transport(&kPipeOps, b)};
}

Transport Transport::replay(ReplayScript script,
                            std::shared_ptr<ReplayCapture> capture) {
  if (capture == nullptr) {
    throw std::invalid_argument("Transport::replay: capture required");
  }
  auto* state = new ReplayState{std::move(script), std::move(capture), 0, 0, false};
  return Transport(&kReplayOps, state);
}

bool ensure_fd_capacity(std::size_t want) noexcept {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return false;
  if (limit.rlim_cur != RLIM_INFINITY && limit.rlim_cur >= want) return true;
  if (limit.rlim_cur == RLIM_INFINITY) return true;
  if (limit.rlim_max != RLIM_INFINITY &&
      limit.rlim_max < static_cast<rlim_t>(want)) {
    return false;
  }
  limit.rlim_cur = static_cast<rlim_t>(want);
  if (limit.rlim_max != RLIM_INFINITY && limit.rlim_cur > limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
  }
  return ::setrlimit(RLIMIT_NOFILE, &limit) == 0;
}

}  // namespace joules::net
