#include "net/framed_conn.hpp"

#include <algorithm>
#include <stdexcept>
#include <system_error>

#include "net/fault.hpp"

namespace joules::net {
namespace {

std::uint32_t read_be32(const std::byte* data) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value = (value << 8) | static_cast<std::uint32_t>(data[i]);
  }
  return value;
}

void append_be32(std::vector<std::byte>& buffer, std::uint32_t value) {
  for (int i = 3; i >= 0; --i) {
    buffer.push_back(static_cast<std::byte>((value >> (8 * i)) & 0xff));
  }
}

}  // namespace

FramedConn::FramedConn(Transport transport)
    : FramedConn(std::move(transport), Limits()) {}

FramedConn::FramedConn(Transport transport, Limits limits)
    : transport_(std::move(transport)), limits_(limits) {}

// Parses every complete frame sitting in inbuf_, consulting the recv-frame
// fault hook per frame. A scripted delay latches the stall state (the frame
// is held back, parsing pauses so delivery order survives) instead of
// sleeping — this runs on reactor ticks.
FramedConn::Status FramedConn::parse_buffered(
    std::vector<std::vector<std::byte>>& frames) {
  std::size_t pos = 0;
  while (!read_stalled_ && inbuf_.size() - pos >= 4) {
    const std::uint32_t length = read_be32(inbuf_.data() + pos);
    if (length > limits_.max_frame_bytes) {
      return Status::kError;  // protocol error: oversized frame
    }
    if (inbuf_.size() - pos - 4 < length) break;  // frame incomplete
    const auto fault =
        joules::fault_hooks::on_recv_frame(transport_.dial_token());
    if (fault.drop) {
      transport_.close();  // injected: frame lost in transit
      return Status::kError;
    }
    if (fault.delay.count() > 0) {
      read_stalled_ = true;
      read_stall_until_ = Deadline::after(fault.delay);
      stalled_frame_.assign(inbuf_.begin() + static_cast<long>(pos) + 4,
                            inbuf_.begin() + static_cast<long>(pos) + 4 +
                                static_cast<long>(length));
      pos += 4 + length;
      break;
    }
    frames.emplace_back(inbuf_.begin() + static_cast<long>(pos) + 4,
                        inbuf_.begin() + static_cast<long>(pos) + 4 +
                            static_cast<long>(length));
    pos += 4 + length;
  }
  if (pos > 0) {
    inbuf_.erase(inbuf_.begin(), inbuf_.begin() + static_cast<long>(pos));
  }
  return Status::kOpen;
}

FramedConn::Status FramedConn::pump_reads(
    std::vector<std::vector<std::byte>>& frames) {
  if (read_stalled_) {
    if (!read_stall_until_.expired()) return Status::kOpen;  // still held
    read_stalled_ = false;
    read_stall_until_ = Deadline::never();
    frames.push_back(std::move(stalled_frame_));
    stalled_frame_ = {};
    // Frames buffered behind the stalled one deliver now, in order (and may
    // latch the next stall).
    const Status parsed = parse_buffered(frames);
    if (parsed != Status::kOpen) return parsed;
    if (read_stalled_) return Status::kOpen;
  }
  std::byte chunk[4096];
  std::size_t pumped = 0;
  while (pumped < limits_.pump_budget_bytes) {
    TransportIo io;
    try {
      io = transport_.read(chunk);
    } catch (const std::system_error&) {
      return Status::kError;
    }
    if (io.bytes > 0) {
      pumped += io.bytes;
      inbuf_.insert(inbuf_.end(), chunk, chunk + io.bytes);
      const Status parsed = parse_buffered(frames);
      if (parsed != Status::kOpen) return parsed;
      if (read_stalled_) return Status::kOpen;  // resume after the deadline
      continue;
    }
    if (io.eof) {
      // Clean only at a frame boundary; EOF mid-frame is a torn peer. (A
      // latched stall never reaches here: the pump returns the moment it
      // latches, so a buffered EOF surfaces on the pump after delivery.)
      return inbuf_.empty() ? Status::kClosed : Status::kError;
    }
    break;  // would block: nothing more to read this tick
  }
  return Status::kOpen;
}

bool FramedConn::queue_frame(std::span<const std::byte> payload) {
  if (payload.size() > limits_.max_frame_bytes) {
    throw std::invalid_argument("FramedConn::queue_frame: payload too large");
  }
  if (close_after_flush_) return true;  // dying anyway; drop silently
  auto fault = joules::fault_hooks::on_send_frame(transport_.dial_token());
  if (!fault.drop) {
    fault = joules::fault_hooks::on_server_send_frame(transport_.accept_token());
  }
  if (fault.drop) {
    // Torn frame: stage only the scripted prefix, then latch the close. The
    // peer sees `after_bytes` of the frame and then EOF.
    std::vector<std::byte> frame;
    append_be32(frame, static_cast<std::uint32_t>(payload.size()));
    frame.insert(frame.end(), payload.begin(), payload.end());
    const std::size_t keep = std::min(fault.after_bytes, frame.size());
    outbuf_.insert(outbuf_.end(), frame.begin(),
                   frame.begin() + static_cast<long>(keep));
    close_after_flush_ = true;
    return true;
  }
  if (queued_write_bytes() + 4 + payload.size() > limits_.write_buffer_bytes) {
    return false;  // write budget exhausted: caller backpressures or drops
  }
  append_be32(outbuf_, static_cast<std::uint32_t>(payload.size()));
  outbuf_.insert(outbuf_.end(), payload.begin(), payload.end());
  return true;
}

FramedConn::Status FramedConn::flush_writes() {
  while (write_pos_ < outbuf_.size()) {
    TransportIo io;
    try {
      io = transport_.write(std::span(outbuf_).subspan(write_pos_));
    } catch (const std::system_error&) {
      return Status::kError;
    }
    write_pos_ += io.bytes;
    if (io.would_block) break;
    if (io.bytes == 0) break;  // backend made no progress; try next tick
  }
  if (write_pos_ == outbuf_.size()) {
    outbuf_.clear();
    write_pos_ = 0;
    if (close_after_flush_) {
      transport_.close();
      return Status::kClosed;
    }
  } else if (write_pos_ > 64 * 1024) {
    // Compact occasionally so a long-lived stalled buffer does not pin the
    // already-flushed prefix.
    outbuf_.erase(outbuf_.begin(), outbuf_.begin() + static_cast<long>(write_pos_));
    write_pos_ = 0;
  }
  return Status::kOpen;
}

}  // namespace joules::net
