#include "util/csv.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace joules {
namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

void append_field(std::string& out, const std::string& field) {
  if (!needs_quoting(field)) {
    out += field;
    return;
  }
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

std::vector<std::string> parse_line(const std::string& text, std::size_t& pos) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  while (pos < text.size()) {
    const char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          current += '"';
          ++pos;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\n') {
      ++pos;
      fields.push_back(std::move(current));
      return fields;
    } else if (c != '\r') {
      current += c;
    }
    ++pos;
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace

CsvTable::CsvTable(std::vector<std::string> header) : header_(std::move(header)) {}

void CsvTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void CsvTable::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size()) {
    throw std::invalid_argument("CsvTable::add_row: row width != header width");
  }
  rows_.push_back(std::move(row));
}

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  throw std::out_of_range("CsvTable: no column named '" + name + "'");
}

std::string CsvTable::cell(std::size_t row, const std::string& col) const {
  return rows_.at(row).at(column(col));
}

double CsvTable::cell_double(std::size_t row, const std::string& col) const {
  // std::from_chars, not stod: stod honors the global locale, so a host
  // locale with ',' as decimal separator would silently misparse checkpoint
  // values and break exact %.17g round trips.
  const std::string text = trim(cell(row, col));
  // from_chars rejects an explicit leading '+' that stod tolerated.
  std::string_view digits{text};
  if (!digits.empty() && digits.front() == '+') digits.remove_prefix(1);
  double value = 0.0;
  const char* begin = digits.data();
  const char* end = begin + digits.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || begin == end) {
    throw std::invalid_argument("CsvTable: cell '" + text + "' is not numeric");
  }
  return value;
}

std::int64_t CsvTable::cell_int64(std::size_t row, const std::string& col) const {
  const std::string text = cell(row, col);
  std::int64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || begin == end) {
    throw std::invalid_argument("CsvTable: cell '" + text +
                                "' is not a 64-bit integer");
  }
  return value;
}

std::string CsvTable::to_string() const {
  std::string out;
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      append_field(out, row[i]);
    }
    out += '\n';
  };
  if (!header_.empty()) write_row(header_);
  for (const auto& row : rows_) write_row(row);
  return out;
}

void CsvTable::write_file(const std::filesystem::path& path) const {
  std::ofstream stream(path);
  if (!stream) throw std::runtime_error("CsvTable: cannot open " + path.string());
  stream << to_string();
}

CsvTable CsvTable::parse(const std::string& text) {
  CsvTable table;
  std::size_t pos = 0;
  bool first = true;
  while (pos < text.size()) {
    auto fields = parse_line(text, pos);
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (first) {
      table.set_header(std::move(fields));
      first = false;
    } else {
      table.add_row(std::move(fields));
    }
  }
  return table;
}

CsvTable CsvTable::read_file(const std::filesystem::path& path) {
  std::ifstream stream(path);
  if (!stream) throw std::runtime_error("CsvTable: cannot open " + path.string());
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  return parse(buffer.str());
}

std::string format_number(double value, int max_decimals) {
  if (!std::isfinite(value)) return value > 0 ? "inf" : (value < 0 ? "-inf" : "nan");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", max_decimals, value);
  std::string text = buf;
  if (text.find('.') != std::string::npos) {
    while (!text.empty() && text.back() == '0') text.pop_back();
    if (!text.empty() && text.back() == '.') text.pop_back();
  }
  if (text == "-0") text = "0";
  return text;
}

}  // namespace joules
