#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <string>
#include <system_error>

namespace joules {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

// Distinguishes temp files from concurrent writers in the same process (the
// pid suffix already separates processes).
std::atomic<std::uint64_t> g_temp_counter{0};

}  // namespace

void write_file_atomic(const std::filesystem::path& path,
                       std::string_view contents) {
  const std::filesystem::path dir =
      path.has_parent_path() ? path.parent_path() : std::filesystem::path(".");
  const std::filesystem::path tmp =
      dir / (path.filename().string() + ".tmp." + std::to_string(::getpid()) +
             "." + std::to_string(g_temp_counter.fetch_add(1)));

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("write_file_atomic: open " + tmp.string());

  try {
    std::size_t written = 0;
    while (written < contents.size()) {
      const ssize_t n =
          ::write(fd, contents.data() + written, contents.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("write_file_atomic: write " + tmp.string());
      }
      written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) < 0) throw_errno("write_file_atomic: fsync " + tmp.string());
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) < 0) {
    ::unlink(tmp.c_str());
    throw_errno("write_file_atomic: close " + tmp.string());
  }

  if (::rename(tmp.c_str(), path.c_str()) < 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    throw_errno("write_file_atomic: rename to " + path.string());
  }

  // Make the rename itself durable. Best-effort: some filesystems refuse
  // directory fsync, and the file contents are already safe.
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

std::optional<std::string> read_text_file(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return std::nullopt;
  std::string contents;
  char buffer[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    contents.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return contents;
}

}  // namespace joules
