// Simulation time.
//
// All simulated events are stamped with unix seconds (`SimTime`). The library
// never reads the wall clock; traces are generated over explicit, documented
// windows (e.g. the paper's Sep 01 - Nov 05 deployment). Helpers here convert
// between unix seconds and calendar fields for trace labelling, entirely in
// UTC and without touching the C locale machinery (so results are identical
// on any host).
#pragma once

#include <cstdint>
#include <string>

namespace joules {

using SimTime = std::int64_t;  // unix seconds, UTC

struct CalendarDate {
  int year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31
  int hour = 0;   // 0..23
  int minute = 0;
  int second = 0;

  friend bool operator==(const CalendarDate&, const CalendarDate&) = default;
};

// Days since 1970-01-01 for a civil date (proleptic Gregorian).
std::int64_t days_from_civil(int year, int month, int day) noexcept;

// Unix seconds for a UTC calendar date/time.
[[nodiscard]] SimTime to_sim_time(const CalendarDate& date) noexcept;
[[nodiscard]] SimTime make_time(int year, int month, int day, int hour = 0, int minute = 0,
                  int second = 0) noexcept;

// Calendar breakdown of unix seconds (UTC).
[[nodiscard]] CalendarDate to_calendar(SimTime t) noexcept;

// 0 = Monday ... 6 = Sunday.
[[nodiscard]] int day_of_week(SimTime t) noexcept;

// Seconds into the (UTC) day: [0, 86400).
[[nodiscard]] int seconds_of_day(SimTime t) noexcept;

// "2024-09-08" / "2024-09-08 13:05:00" / "Sep 08".
std::string format_date(SimTime t);
std::string format_date_time(SimTime t);
std::string format_short_date(SimTime t);

}  // namespace joules
