// Crash-safe file replacement.
//
// A plain `ofstream` overwrite truncates the destination before writing, so
// a crash (or power failure — the exact event Autopower units must survive)
// mid-write leaves a torn file where the only copy of the client's recovery
// state used to be. `write_file_atomic` writes to a temp file in the same
// directory, fsyncs it, and renames it over the destination: readers see
// either the old contents or the complete new contents, never a mix.
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <string_view>

namespace joules {

// Throws std::system_error on I/O failure; on failure the destination is
// untouched and the temp file is removed.
void write_file_atomic(const std::filesystem::path& path,
                       std::string_view contents);

// Reads a whole file into memory; nullopt when the file cannot be opened.
// The read-side companion to `write_file_atomic` for small state files
// (checkpoints, allowlists, lint fixtures).
[[nodiscard]] std::optional<std::string> read_text_file(
    const std::filesystem::path& path);

}  // namespace joules
