#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace joules {

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      std::string_view line = text.substr(start, i - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      out.emplace_back(line);
      start = i + 1;
    }
  }
  if (!out.empty() && out.back().empty() && !text.empty() && text.back() == '\n') {
    out.pop_back();
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

bool contains_ci(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  const std::string h = to_lower(haystack);
  const std::string n = to_lower(needle);
  return h.find(n) != std::string::npos;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out += text.substr(pos);
      return out;
    }
    out += text.substr(pos, hit - pos);
    out += to;
    pos = hit + from.size();
  }
}

namespace {

// Extracts a numeric token starting at `i`, tolerating thousands separators
// (comma or space) between digit groups. Returns nullopt if no digit found.
std::optional<double> parse_number_at(std::string_view text, std::size_t& i) {
  std::string token;
  bool seen_digit = false;
  bool seen_dot = false;
  if (i < text.size() && (text[i] == '-' || text[i] == '+')) {
    token += text[i];
    ++i;
  }
  while (i < text.size()) {
    const char c = text[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      token += c;
      seen_digit = true;
      ++i;
    } else if (c == '.' && !seen_dot && seen_digit) {
      token += c;
      seen_dot = true;
      ++i;
    } else if ((c == ',' || c == ' ') && seen_digit && i + 3 < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[i + 1])) &&
               std::isdigit(static_cast<unsigned char>(text[i + 2])) &&
               std::isdigit(static_cast<unsigned char>(text[i + 3])) &&
               (i + 4 >= text.size() ||
                !std::isdigit(static_cast<unsigned char>(text[i + 4])))) {
      // Thousands separator: exactly three digits follow.
      ++i;
    } else {
      break;
    }
  }
  if (!seen_digit) return std::nullopt;
  // std::from_chars, not strtod: strtod's decimal point follows the global C
  // locale, so parsed datasheet values would depend on the host environment.
  // from_chars rejects an explicit '+', so drop it (the sign is a no-op).
  std::string_view digits{token};
  if (digits.front() == '+') digits.remove_prefix(1);
  double value = 0.0;
  std::from_chars(digits.data(), digits.data() + digits.size(), value);
  return value;
}

}  // namespace

std::optional<double> parse_first_number(std::string_view text) {
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(text[i])) ||
        ((text[i] == '-' || text[i] == '+') && i + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      return parse_number_at(text, i);
    }
  }
  return std::nullopt;
}

std::vector<double> parse_all_numbers(std::string_view text) {
  std::vector<double> out;
  for (std::size_t i = 0; i < text.size();) {
    if (std::isdigit(static_cast<unsigned char>(text[i])) ||
        ((text[i] == '-' || text[i] == '+') && i + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      if (auto value = parse_number_at(text, i)) out.push_back(*value);
    } else {
      ++i;
    }
  }
  return out;
}

}  // namespace joules
