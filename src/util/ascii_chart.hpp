// Terminal rendering of the paper's figures.
//
// Each bench binary regenerates a figure's data series and renders it as an
// ASCII chart (line chart for the time-series figures, scatter for the PSU
// efficiency clouds) so the *shape* of the result can be eyeballed directly
// in the bench output. The underlying data is also written as CSV.
#pragma once

#include <string>
#include <vector>

#include "util/time_series.hpp"

namespace joules {

struct ChartOptions {
  int width = 100;              // plot area columns
  int height = 20;              // plot area rows
  std::string title;
  std::string y_label;
  std::string x_label;
  bool y_axis_from_zero = false;
};

struct ChartSeries {
  std::string name;
  char glyph = '*';
  std::vector<double> x;
  std::vector<double> y;
};

// Multi-series line chart (points connected per x-column).
std::string render_line_chart(const std::vector<ChartSeries>& series,
                              const ChartOptions& options);

// Scatter plot (points only).
std::string render_scatter(const std::vector<ChartSeries>& series,
                           const ChartOptions& options);

// Convenience: plots TimeSeries with x = days since the first sample.
std::string render_time_series_chart(
    const std::vector<std::pair<std::string, TimeSeries>>& series,
    const ChartOptions& options);

// Fixed-width text table with a header row and column alignment.
std::string render_text_table(const std::vector<std::string>& header,
                              const std::vector<std::vector<std::string>>& rows);

}  // namespace joules
