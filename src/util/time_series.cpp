#include "util/time_series.hpp"

#include <algorithm>
#include <stdexcept>

namespace joules {

TimeSeries::TimeSeries(std::vector<Sample> samples)
    : samples_(std::move(samples)) {
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (samples_[i].time <= samples_[i - 1].time) {
      throw std::invalid_argument("TimeSeries: samples must be strictly time-ordered");
    }
  }
}

void TimeSeries::push(SimTime time, double value) {
  if (!samples_.empty() && time <= samples_.back().time) {
    throw std::invalid_argument("TimeSeries::push: non-increasing timestamp");
  }
  samples_.push_back(Sample{time, value});
}

std::vector<double> TimeSeries::values() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const Sample& s : samples_) out.push_back(s.value);
  return out;
}

std::vector<SimTime> TimeSeries::times() const {
  std::vector<SimTime> out;
  out.reserve(samples_.size());
  for (const Sample& s : samples_) out.push_back(s.time);
  return out;
}

std::optional<double> TimeSeries::value_at(SimTime time) const {
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), time,
      [](SimTime t, const Sample& s) { return t < s.time; });
  if (it == samples_.begin()) return std::nullopt;
  return std::prev(it)->value;
}

TimeSeries TimeSeries::slice(SimTime begin, SimTime end) const {
  TimeSeries out;
  for (const Sample& s : samples_) {
    if (s.time >= begin && s.time < end) out.push(s.time, s.value);
  }
  return out;
}

TimeSeries TimeSeries::window_average(SimTime window_seconds) const {
  if (window_seconds <= 0) {
    throw std::invalid_argument("TimeSeries::window_average: window must be positive");
  }
  TimeSeries out;
  if (samples_.empty()) return out;

  auto window_start = [&](SimTime t) {
    // Floor to window boundary, correct for negative times.
    SimTime w = t / window_seconds;
    if (t < 0 && t % window_seconds != 0) --w;
    return w * window_seconds;
  };

  SimTime current = window_start(samples_.front().time);
  double sum = 0.0;
  std::size_t count = 0;
  for (const Sample& s : samples_) {
    const SimTime w = window_start(s.time);
    if (w != current) {
      if (count > 0) out.push(current, sum / static_cast<double>(count));
      current = w;
      sum = 0.0;
      count = 0;
    }
    sum += s.value;
    ++count;
  }
  if (count > 0) out.push(current, sum / static_cast<double>(count));
  return out;
}

namespace {

TimeSeries pointwise(const TimeSeries& a, const TimeSeries& b,
                     double (*op)(double, double)) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("TimeSeries: pointwise op on different lengths");
  }
  TimeSeries out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].time != b[i].time) {
      throw std::invalid_argument("TimeSeries: pointwise op on misaligned timestamps");
    }
    out.push(a[i].time, op(a[i].value, b[i].value));
  }
  return out;
}

}  // namespace

TimeSeries TimeSeries::operator+(const TimeSeries& other) const {
  return pointwise(*this, other, +[](double x, double y) { return x + y; });
}

TimeSeries TimeSeries::operator-(const TimeSeries& other) const {
  return pointwise(*this, other, +[](double x, double y) { return x - y; });
}

TimeSeries TimeSeries::scaled(double factor) const {
  TimeSeries out;
  for (const Sample& s : samples_) out.push(s.time, s.value * factor);
  return out;
}

TimeSeries TimeSeries::shifted(double offset) const {
  TimeSeries out;
  for (const Sample& s : samples_) out.push(s.time, s.value + offset);
  return out;
}

TimeSeries TimeSeries::sum_on_grid(std::span<const TimeSeries> series,
                                   std::span<const SimTime> grid) {
  TimeSeries out;
  for (const SimTime t : grid) {
    double total = 0.0;
    for (const TimeSeries& s : series) {
      total += s.value_at(t).value_or(0.0);
    }
    out.push(t, total);
  }
  return out;
}

std::vector<SimTime> make_grid(SimTime begin, SimTime end, SimTime step) {
  if (step <= 0) throw std::invalid_argument("make_grid: step must be positive");
  std::vector<SimTime> out;
  for (SimTime t = begin; t < end; t += step) out.push_back(t);
  return out;
}

}  // namespace joules
