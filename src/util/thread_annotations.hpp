// Clang Thread Safety Analysis annotations, plus the annotated mutex types
// the rest of the tree locks with.
//
// Under clang the JOULES_* macros expand to the thread-safety attributes and
// `-Wthread-safety -Werror=thread-safety` (CI's clang job, or a local
// -DJOULES_THREAD_SAFETY=ON clang build) turns every locking contract in the
// tree into a compile error when violated: a JOULES_GUARDED_BY field touched
// without its mutex, a JOULES_REQUIRES function called unlocked, a
// JOULES_EXCLUDES function called with the lock held. Under gcc (the default
// local toolchain) every macro expands to nothing, so the annotations cost
// nothing and cannot change codegen.
//
// The annotations are also *data*: joules_lint's project-wide lock-order
// rule parses the textual JOULES_ACQUIRED_BEFORE / JOULES_ACQUIRED_AFTER
// form into a lock-acquisition graph and fails the build on cycles, so the
// deadlock-freedom argument is checked even in gcc-only environments.
//
// Conventions:
//   * Guard state with `Mutex` (below), never a raw std::mutex — only the
//     annotated type participates in the analysis.
//   * Lock through the scoped `MutexLock`; no manual lock()/unlock() pairs
//     outside condition-variable re-lock seams.
//   * Condition waits use std::condition_variable_any waiting on the Mutex
//     itself with a predicate-free `while (!cond) cv.wait(mu_);` loop —
//     wait-predicates are lambdas, which clang analyzes as separate
//     (lock-free) functions and would flag for touching guarded fields.
//   * JOULES_NO_THREAD_SAFETY_ANALYSIS is reserved for annotated seam shims;
//     the tree itself must compile clean without it (CI asserts this).
#pragma once

#include <mutex>

// SWIG and other non-compiler parsers choke on __attribute__; match the
// guard clang's own documentation recommends.
#if defined(__clang__) && !defined(SWIG)
#define JOULES_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define JOULES_TS_ATTRIBUTE(x)  // not clang: annotations compile to nothing
#endif

#define JOULES_CAPABILITY(x) JOULES_TS_ATTRIBUTE(capability(x))
#define JOULES_SCOPED_CAPABILITY JOULES_TS_ATTRIBUTE(scoped_lockable)
#define JOULES_GUARDED_BY(x) JOULES_TS_ATTRIBUTE(guarded_by(x))
#define JOULES_PT_GUARDED_BY(x) JOULES_TS_ATTRIBUTE(pt_guarded_by(x))
#define JOULES_REQUIRES(...) \
  JOULES_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define JOULES_EXCLUDES(...) JOULES_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define JOULES_ACQUIRE(...) JOULES_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define JOULES_RELEASE(...) JOULES_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
#define JOULES_TRY_ACQUIRE(...) \
  JOULES_TS_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define JOULES_ACQUIRED_BEFORE(...) \
  JOULES_TS_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define JOULES_ACQUIRED_AFTER(...) \
  JOULES_TS_ATTRIBUTE(acquired_after(__VA_ARGS__))
#define JOULES_RETURN_CAPABILITY(x) JOULES_TS_ATTRIBUTE(lock_returned(x))
#define JOULES_NO_THREAD_SAFETY_ANALYSIS \
  JOULES_TS_ATTRIBUTE(no_thread_safety_analysis)

// Purely a marker, on every compiler: tags a function as running on a
// reactor tick / nonblocking pump path. joules_lint's reactor-blocking-call
// rule roots its call-graph reachability scan at these and fails the build
// when a blocking primitive (sleep_for, send_all, recv_exact, raw ::poll,
// ...) becomes reachable. Place it on the same line as the function name.
#define JOULES_REACTOR_CONTEXT

namespace joules {

// std::mutex with the capability annotation the analysis needs. BasicLockable
// (lock/unlock), so std::condition_variable_any can wait on it directly.
class JOULES_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() JOULES_ACQUIRE() { mu_.lock(); }
  void unlock() JOULES_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() JOULES_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  std::mutex mu_;
};

// Scoped lock over Mutex — the annotated stand-in for std::lock_guard. The
// analysis tracks the capability from construction to end of scope.
class JOULES_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) JOULES_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() JOULES_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace joules
