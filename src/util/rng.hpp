// Deterministic random number generation.
//
// Every stochastic component in the library takes an explicit seed so that
// simulations, tests, and benches are reproducible run to run. `Rng` wraps a
// 64-bit SplitMix64-seeded xoshiro256** generator with the distribution
// helpers the simulators need.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace joules {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept;

  // Derives an independent stream from this generator's seed and a label.
  // Used to give each simulated component (router, PSU, meter channel, ...)
  // its own stream so adding a component does not perturb the others.
  [[nodiscard]] Rng fork(std::string_view label) const noexcept;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept;

  // Uniform double in [0, 1).
  double uniform() noexcept;
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  // Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  // Standard normal via Marsaglia polar method.
  double normal() noexcept;
  // Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  // Bernoulli trial.
  bool chance(double probability) noexcept;
  // Log-normal such that the median of the distribution is `median`.
  double log_normal(double median, double sigma) noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_ = 0;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace joules
