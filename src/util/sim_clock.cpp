#include "util/sim_clock.hpp"

#include <array>
#include <cstdio>

#include "util/units.hpp"

namespace joules {
namespace {

// Howard Hinnant's civil-from-days / days-from-civil algorithms.
std::int64_t floor_div(std::int64_t a, std::int64_t b) noexcept {
  return (a >= 0) ? a / b : -((-a + b - 1) / b);
}

struct Civil {
  int year;
  int month;
  int day;
};

Civil civil_from_days(std::int64_t z) noexcept {
  z += 719468;
  const std::int64_t era = floor_div(z, 146097);
  const auto doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const auto y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp < 10 ? mp + 3 : mp - 9;
  return Civil{static_cast<int>(y + (m <= 2)), static_cast<int>(m),
               static_cast<int>(d)};
}

constexpr std::array<const char*, 12> kMonthAbbrev = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

}  // namespace

std::int64_t days_from_civil(int year, int month, int day) noexcept {
  year -= month <= 2;
  const std::int64_t era = floor_div(year, 400);
  const auto yoe = static_cast<unsigned>(year - era * 400);
  const unsigned mp = month > 2 ? static_cast<unsigned>(month) - 3
                                : static_cast<unsigned>(month) + 9;
  const unsigned doy = (153 * mp + 2) / 5 + static_cast<unsigned>(day) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

SimTime to_sim_time(const CalendarDate& date) noexcept {
  return days_from_civil(date.year, date.month, date.day) * kSecondsPerDay +
         date.hour * kSecondsPerHour + date.minute * kSecondsPerMinute +
         date.second;
}

SimTime make_time(int year, int month, int day, int hour, int minute,
                  int second) noexcept {
  return to_sim_time(CalendarDate{year, month, day, hour, minute, second});
}

CalendarDate to_calendar(SimTime t) noexcept {
  const std::int64_t days = floor_div(t, kSecondsPerDay);
  std::int64_t rest = t - days * kSecondsPerDay;
  const Civil civil = civil_from_days(days);
  CalendarDate out;
  out.year = civil.year;
  out.month = civil.month;
  out.day = civil.day;
  out.hour = static_cast<int>(rest / kSecondsPerHour);
  rest %= kSecondsPerHour;
  out.minute = static_cast<int>(rest / kSecondsPerMinute);
  out.second = static_cast<int>(rest % kSecondsPerMinute);
  return out;
}

int day_of_week(SimTime t) noexcept {
  // 1970-01-01 was a Thursday (=3 with Monday=0).
  const std::int64_t days = floor_div(t, kSecondsPerDay);
  return static_cast<int>(((days % 7) + 7 + 3) % 7);
}

int seconds_of_day(SimTime t) noexcept {
  const std::int64_t days = floor_div(t, kSecondsPerDay);
  return static_cast<int>(t - days * kSecondsPerDay);
}

std::string format_date(SimTime t) {
  const CalendarDate c = to_calendar(t);
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

std::string format_date_time(SimTime t) {
  const CalendarDate c = to_calendar(t);
  char buf[24];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d %02d:%02d:%02d", c.year,
                c.month, c.day, c.hour, c.minute, c.second);
  return buf;
}

std::string format_short_date(SimTime t) {
  const CalendarDate c = to_calendar(t);
  char buf[16];
  std::snprintf(buf, sizeof buf, "%s %02d", kMonthAbbrev[c.month - 1], c.day);
  return buf;
}

}  // namespace joules
