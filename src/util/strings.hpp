// Small string helpers shared by the datasheet parser and formatters.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace joules {

[[nodiscard]] std::string to_lower(std::string_view text);
[[nodiscard]] std::string trim(std::string_view text);
[[nodiscard]] std::vector<std::string> split(std::string_view text, char delimiter);
[[nodiscard]] std::vector<std::string> split_lines(std::string_view text);
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix) noexcept;
[[nodiscard]] bool contains_ci(std::string_view haystack, std::string_view needle);

// Replaces every occurrence of `from` with `to`.
[[nodiscard]] std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

// Parses the first number in `text` (handles "1,234.5", "1 234", "450W").
[[nodiscard]] std::optional<double> parse_first_number(std::string_view text);

// Parses all numbers in `text` in order of appearance.
[[nodiscard]] std::vector<double> parse_all_numbers(std::string_view text);

}  // namespace joules
