// Small string helpers shared by the datasheet parser and formatters.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace joules {

std::string to_lower(std::string_view text);
std::string trim(std::string_view text);
std::vector<std::string> split(std::string_view text, char delimiter);
std::vector<std::string> split_lines(std::string_view text);
bool starts_with(std::string_view text, std::string_view prefix) noexcept;
bool contains_ci(std::string_view haystack, std::string_view needle);

// Replaces every occurrence of `from` with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

// Parses the first number in `text` (handles "1,234.5", "1 234", "450W").
std::optional<double> parse_first_number(std::string_view text);

// Parses all numbers in `text` in order of appearance.
std::vector<double> parse_all_numbers(std::string_view text);

}  // namespace joules
