#include "util/rng.hpp"

#include <cmath>

namespace joules {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a, used to mix fork labels into derived seeds.
std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng Rng::fork(std::string_view label) const noexcept {
  return Rng(seed_ ^ fnv1a(label));
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next() % span);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);  // joules-lint: allow(float-equality) — Marsaglia polar rejects the exact origin
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::chance(double probability) noexcept {
  return uniform() < probability;
}

double Rng::log_normal(double median, double sigma) noexcept {
  return median * std::exp(sigma * normal());
}

}  // namespace joules
