// Unit conventions and conversion helpers.
//
// Throughout the library, quantities are plain doubles whose unit is part of
// the identifier: `power_w` (watts), `rate_bps` (bits per second),
// `energy_j` (joules), `load_frac` (dimensionless in [0,1]). This header
// centralizes the conversion factors so magic numbers never appear at call
// sites.
#pragma once

namespace joules {

// --- Data-rate conversions (decimal SI, as used by transceiver specs) ------
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

constexpr double gbps_to_bps(double rate_gbps) { return rate_gbps * kGiga; }
constexpr double bps_to_gbps(double rate_bps) { return rate_bps / kGiga; }
constexpr double bps_to_tbps(double rate_bps) { return rate_bps / kTera; }
constexpr double mbps_to_bps(double rate_mbps) { return rate_mbps * kMega; }

// --- Energy conversions -----------------------------------------------------
inline constexpr double kPicojoule = 1e-12;
inline constexpr double kNanojoule = 1e-9;

constexpr double picojoules_to_joules(double energy_pj) { return energy_pj * kPicojoule; }
constexpr double joules_to_picojoules(double energy_j) { return energy_j / kPicojoule; }
constexpr double nanojoules_to_joules(double energy_nj) { return energy_nj * kNanojoule; }
constexpr double joules_to_nanojoules(double energy_j) { return energy_j / kNanojoule; }

// --- Byte/bit helpers -------------------------------------------------------
inline constexpr double kBitsPerByte = 8.0;

constexpr double bytes_to_bits(double n_bytes) { return n_bytes * kBitsPerByte; }
constexpr double bits_to_bytes(double n_bits) { return n_bits / kBitsPerByte; }

// Packet rate for a given physical-layer bit rate and L2 payload size,
// Eq. (12) of the paper: p = r / (8 * (L + L_header)).
//
// `overhead_bytes` is the per-packet framing overhead counted on the wire.
// For Ethernet this is preamble(7) + SFD(1) + FCS(4) + IFG(12) = 24 bytes on
// top of the L2 frame; the paper folds everything into a single L_header.
inline constexpr double kEthernetOverheadBytes = 24.0;

constexpr double packet_rate_for_bit_rate(double rate_bps, double frame_bytes,
                                          double overhead_bytes = kEthernetOverheadBytes) {
  return rate_bps / (kBitsPerByte * (frame_bytes + overhead_bytes));
}

constexpr double bit_rate_for_packet_rate(double rate_pps, double frame_bytes,
                                          double overhead_bytes = kEthernetOverheadBytes) {
  return rate_pps * kBitsPerByte * (frame_bytes + overhead_bytes);
}

// --- Time -------------------------------------------------------------------
inline constexpr long long kSecondsPerMinute = 60;
inline constexpr long long kSecondsPerHour = 3600;
inline constexpr long long kSecondsPerDay = 86400;
inline constexpr long long kSecondsPerWeek = 7 * kSecondsPerDay;

// --- Power ------------------------------------------------------------------
constexpr double kw_to_w(double power_kw) { return power_kw * kKilo; }
constexpr double w_to_kw(double power_w) { return power_w / kKilo; }

}  // namespace joules
