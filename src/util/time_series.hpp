// A simple, strictly time-ordered series of (SimTime, double) samples.
//
// This is the lingua franca between the simulators (which emit traces) and
// the analyses (which consume them): SNMP polls, Autopower measurements,
// model predictions, and network aggregates are all `TimeSeries`.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "util/sim_clock.hpp"

namespace joules {

struct Sample {
  SimTime time = 0;
  double value = 0.0;

  friend bool operator==(const Sample&, const Sample&) = default;
};

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::vector<Sample> samples);

  // Appends a sample; `time` must be strictly greater than the last sample's.
  void push(SimTime time, double value);

  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] const Sample& operator[](std::size_t i) const { return samples_[i]; }
  [[nodiscard]] const Sample& front() const { return samples_.front(); }
  [[nodiscard]] const Sample& back() const { return samples_.back(); }
  [[nodiscard]] std::span<const Sample> samples() const noexcept { return samples_; }

  auto begin() const noexcept { return samples_.begin(); }
  auto end() const noexcept { return samples_.end(); }

  [[nodiscard]] std::vector<double> values() const;
  [[nodiscard]] std::vector<SimTime> times() const;

  // Value at or before `time` (step interpolation); nullopt before the first
  // sample.
  [[nodiscard]] std::optional<double> value_at(SimTime time) const;

  // Samples with `begin <= time < end`.
  [[nodiscard]] TimeSeries slice(SimTime begin, SimTime end) const;

  // Averages samples into windows of `window_seconds`, stamping each window
  // at its start. Windows with no samples are skipped. This mirrors the
  // paper's "30-minute averaged traces" (Fig. 4).
  [[nodiscard]] TimeSeries window_average(SimTime window_seconds) const;

  // Pointwise binary operations. Series must have identical timestamps.
  [[nodiscard]] TimeSeries operator+(const TimeSeries& other) const;
  [[nodiscard]] TimeSeries operator-(const TimeSeries& other) const;
  [[nodiscard]] TimeSeries scaled(double factor) const;
  [[nodiscard]] TimeSeries shifted(double offset) const;

  // Sums many series sampled on arbitrary grids by step-interpolating each
  // onto `grid` (timestamps). Series that have no sample at or before a grid
  // point contribute 0 there (e.g. routers not yet commissioned).
  static TimeSeries sum_on_grid(std::span<const TimeSeries> series,
                                std::span<const SimTime> grid);

 private:
  std::vector<Sample> samples_;
};

// Evenly spaced grid: begin, begin+step, ..., < end.
std::vector<SimTime> make_grid(SimTime begin, SimTime end, SimTime step);

}  // namespace joules
