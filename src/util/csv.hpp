// Minimal CSV reading/writing.
//
// Bench binaries dump every table/figure's underlying data as CSV next to the
// ASCII rendering so the series can be re-plotted externally; the datasheet
// corpus and network inventory also round-trip through CSV in tests.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace joules {

class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header);

  void set_header(std::vector<std::string> header);
  [[nodiscard]] const std::vector<std::string>& header() const noexcept { return header_; }

  // Appends a row; must match the header width if a header is set.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

  // Column index for a header name; throws if absent.
  [[nodiscard]] std::size_t column(const std::string& name) const;

  [[nodiscard]] std::string cell(std::size_t row, const std::string& col) const;
  [[nodiscard]] double cell_double(std::size_t row, const std::string& col) const;
  // Exact 64-bit integer parse (no round trip through double, which silently
  // corrupts magnitudes above 2^53 and sentinel values like INT64_MIN).
  // Throws std::invalid_argument unless the whole cell is a decimal integer.
  [[nodiscard]] std::int64_t cell_int64(std::size_t row, const std::string& col) const;

  // RFC-4180-style serialization (quotes fields containing , " or newline).
  [[nodiscard]] std::string to_string() const;
  void write_file(const std::filesystem::path& path) const;

  static CsvTable parse(const std::string& text);
  static CsvTable read_file(const std::filesystem::path& path);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double compactly ("12.5", "0.37", "358") for CSV/table output.
std::string format_number(double value, int max_decimals = 6);

}  // namespace joules
