#include "util/thread_pool.hpp"

#include <algorithm>

namespace joules {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  slots_ = workers;
  threads_.reserve(slots_ - 1);
  for (std::size_t s = 1; s < slots_; ++s) {
    threads_.emplace_back([this, s] { worker_loop(s); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

ThreadPool::Range ThreadPool::chunk_range(std::size_t begin, std::size_t end,
                                          std::size_t slot,
                                          std::size_t slots) noexcept {
  const std::size_t n = end > begin ? end - begin : 0;
  const std::size_t per = n / slots;
  const std::size_t rem = n % slots;
  const std::size_t lo = begin + slot * per + std::min(slot, rem);
  return {lo, lo + per + (slot < rem ? 1 : 0)};
}

void ThreadPool::run_chunk(std::size_t begin, std::size_t end, std::size_t slot,
                           const ChunkFn& fn) noexcept {
  if (begin >= end) return;
  try {
    fn(begin, end, slot);
  } catch (...) {
    const MutexLock lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::worker_loop(std::size_t slot) {
  std::uint64_t seen = 0;
  for (;;) {
    std::size_t begin = 0;
    std::size_t end = 0;
    const ChunkFn* fn = nullptr;
    {
      const MutexLock lock(mu_);
      while (!stop_ && generation_ == seen) work_cv_.wait(mu_);
      if (stop_) return;
      seen = generation_;
      begin = job_begin_;
      end = job_end_;
      fn = job_fn_;
    }
    const Range range = chunk_range(begin, end, slot, slots_);
    run_chunk(range.begin, range.end, slot, *fn);
    {
      const MutexLock lock(mu_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const ChunkFn& fn) {
  if (end <= begin) return;
  if (slots_ > 1) {
    {
      const MutexLock lock(mu_);
      job_begin_ = begin;
      job_end_ = end;
      job_fn_ = &fn;
      pending_ = slots_ - 1;
      first_error_ = nullptr;
      ++generation_;
    }
    work_cv_.notify_all();
  } else {
    const MutexLock lock(mu_);
    first_error_ = nullptr;
  }
  const Range mine = chunk_range(begin, end, 0, slots_);
  run_chunk(mine.begin, mine.end, 0, fn);
  std::exception_ptr error;
  {
    const MutexLock lock(mu_);
    while (pending_ != 0) done_cv_.wait(mu_);
    error = first_error_;
    first_error_ = nullptr;
    job_fn_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace joules
