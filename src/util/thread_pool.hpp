// A fixed-size worker pool with a deterministic `parallel_for`.
//
// The trace sweeps need parallelism *without* giving up the repo's
// bit-for-bit determinism guarantee. The contract that makes this work:
//
//   - `parallel_for(begin, end, fn)` splits [begin, end) into
//     `worker_count()` contiguous chunks whose boundaries depend only on the
//     range and the worker count — never on scheduling. Chunk `s` always
//     runs on scratch slot `s`.
//   - Callers write results into per-index (or per-slot) storage and reduce
//     serially afterwards, so the floating-point fold order is fixed no
//     matter how many workers execute the chunks or in what real-time order
//     they finish.
//
// The calling thread executes chunk 0 itself; a pool with one worker
// therefore spawns no threads at all and runs inline, which is what the
// serial compatibility wrappers use.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace joules {

class ThreadPool {
 public:
  // `workers` = 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept { return slots_; }

  // fn(chunk_begin, chunk_end, slot): slot in [0, worker_count()). Blocks
  // until every chunk finished; rethrows the first exception a chunk threw.
  // Not re-entrant: fn must not call parallel_for on the same pool.
  using ChunkFn = std::function<void(std::size_t, std::size_t, std::size_t)>;
  void parallel_for(std::size_t begin, std::size_t end, const ChunkFn& fn)
      JOULES_EXCLUDES(mu_);

  // The contiguous chunk of [begin, end) assigned to `slot` out of `slots`
  // (pure; exposed for tests and for callers sizing per-chunk storage).
  struct Range {
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  [[nodiscard]] static Range chunk_range(std::size_t begin, std::size_t end,
                                         std::size_t slot,
                                         std::size_t slots) noexcept;

 private:
  void worker_loop(std::size_t slot) JOULES_EXCLUDES(mu_);
  void run_chunk(std::size_t begin, std::size_t end, std::size_t slot,
                 const ChunkFn& fn) noexcept JOULES_EXCLUDES(mu_);

  std::size_t slots_ = 1;
  std::vector<std::thread> threads_;  // slots 1..slots_-1; slot 0 is the caller

  Mutex mu_;
  // condition_variable_any waits on the annotated Mutex directly; see
  // thread_annotations.hpp for why the waits are predicate-free loops.
  std::condition_variable_any work_cv_;
  std::condition_variable_any done_cv_;
  std::uint64_t generation_ JOULES_GUARDED_BY(mu_) = 0;
  std::size_t job_begin_ JOULES_GUARDED_BY(mu_) = 0;
  std::size_t job_end_ JOULES_GUARDED_BY(mu_) = 0;
  const ChunkFn* job_fn_ JOULES_GUARDED_BY(mu_) = nullptr;
  std::size_t pending_ JOULES_GUARDED_BY(mu_) = 0;
  std::exception_ptr first_error_ JOULES_GUARDED_BY(mu_);
  bool stop_ JOULES_GUARDED_BY(mu_) = false;
};

}  // namespace joules
