// A minimal JSON document model: parse, navigate, dump.
//
// Exists for the observability layer (run manifests) and the bench-compare
// gate (google-benchmark output), not as a general interchange library. Two
// properties matter here and drove the implementation:
//
//   * Locale independence — numbers parse via std::from_chars and print via
//     snprintf "%.17g"/"%lld", so a manifest written on one machine byte-
//     compares against one written on another regardless of the host locale.
//   * Deterministic output — objects preserve insertion order and writers
//     insert keys in sorted order, so dumping the same document twice (or
//     after a parse round trip) yields identical bytes.
//
// Integers and doubles are distinct kinds: counter values round-trip exactly
// through std::int64_t and never pass through a double.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace joules {

class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() = default;  // null
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}
  Json(std::int64_t value) : kind_(Kind::kInt), int_(value) {}
  Json(std::uint64_t value) : kind_(Kind::kInt), int_(static_cast<std::int64_t>(value)) {}
  Json(int value) : kind_(Kind::kInt), int_(value) {}
  Json(double value) : kind_(Kind::kDouble), double_(value) {}
  Json(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}
  Json(std::string_view value) : kind_(Kind::kString), string_(value) {}
  Json(const char* value) : kind_(Kind::kString), string_(value) {}

  [[nodiscard]] static Json array() { Json j; j.kind_ = Kind::kArray; return j; }
  [[nodiscard]] static Json object() { Json j; j.kind_ = Kind::kObject; return j; }

  // Throws std::invalid_argument (with a byte offset) on malformed input.
  [[nodiscard]] static Json parse(std::string_view text);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }

  // Typed reads; each throws std::invalid_argument on a kind mismatch.
  // as_double accepts kInt (counters compared against measured ratios).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] Object& as_object();

  // Object member lookup (first match); nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;

  // Builders: `set` appends to an object, `push` to an array; both convert
  // this value from null to the container kind on first use.
  void set(std::string key, Json value);
  void push(Json value);

  // Compact when indent < 0; pretty-printed with `indent` spaces per level
  // otherwise. Key order is emitted exactly as stored.
  [[nodiscard]] std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace joules
