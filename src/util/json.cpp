#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace joules {
namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  char where[32];
  std::snprintf(where, sizeof where, "%zu", offset);
  throw std::invalid_argument("Json: " + what + " at byte " + where);
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  [[nodiscard]] char peek() {
    if (pos >= text.size()) fail(pos, "unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(pos, std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume_literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail(pos, "bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail(pos, "bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail(pos, "bad literal");
        return Json();
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') { ++pos; return out; }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') { ++pos; continue; }
      expect('}');
      return out;
    }
  }

  Json parse_array() {
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') { ++pos; return out; }
    for (;;) {
      out.push(parse_value());
      skip_ws();
      if (peek() == ',') { ++pos; continue; }
      expect(']');
      return out;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos >= text.size()) fail(pos, "unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') { out += c; continue; }
      if (pos >= text.size()) fail(pos, "unterminated escape");
      const char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail(pos - 1, "unknown escape");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos + 4 > text.size()) fail(pos, "truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + static_cast<std::size_t>(i)];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail(pos, "bad hex digit in \\u escape");
    }
    pos += 4;
    // UTF-8 encode the BMP code point (surrogate pairs are not needed for
    // manifests or benchmark output; a lone surrogate encodes as-is).
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    bool is_double = false;
    while (pos < text.size()) {
      const char c = text[pos];
      if (c >= '0' && c <= '9') { ++pos; continue; }
      if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        if (c == '.' || c == 'e' || c == 'E') is_double = true;
        ++pos;
        continue;
      }
      break;
    }
    const std::string_view token = text.substr(start, pos - start);
    if (token.empty()) fail(start, "expected a value");
    if (!is_double) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc{} && ptr == token.data() + token.size()) {
        return Json(value);
      }
      // Out-of-range integer: fall through to double.
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      fail(start, "malformed number");
    }
    return Json(value);
  }
};

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

Json Json::parse(std::string_view text) {
  Parser parser{text};
  Json value = parser.parse_value();
  parser.skip_ws();
  if (parser.pos != text.size()) fail(parser.pos, "trailing content");
  return value;
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) throw std::invalid_argument("Json: not a bool");
  return bool_;
}

std::int64_t Json::as_int64() const {
  if (kind_ != Kind::kInt) throw std::invalid_argument("Json: not an integer");
  return int_;
}

double Json::as_double() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  if (kind_ != Kind::kDouble) throw std::invalid_argument("Json: not a number");
  return double_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) throw std::invalid_argument("Json: not a string");
  return string_;
}

const Json::Array& Json::as_array() const {
  if (kind_ != Kind::kArray) throw std::invalid_argument("Json: not an array");
  return array_;
}

const Json::Object& Json::as_object() const {
  if (kind_ != Kind::kObject) throw std::invalid_argument("Json: not an object");
  return object_;
}

Json::Array& Json::as_array() {
  if (kind_ != Kind::kArray) throw std::invalid_argument("Json: not an array");
  return array_;
}

Json::Object& Json::as_object() {
  if (kind_ != Kind::kObject) throw std::invalid_argument("Json: not an object");
  return object_;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

void Json::set(std::string key, Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) throw std::invalid_argument("Json: not an object");
  object_.emplace_back(std::move(key), std::move(value));
}

void Json::push(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) throw std::invalid_argument("Json: not an array");
  array_.push_back(std::move(value));
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  char buffer[64];
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt:
      std::snprintf(buffer, sizeof buffer, "%lld",
                    static_cast<long long>(int_));
      out += buffer;
      break;
    case Kind::kDouble:
      if (!std::isfinite(double_)) {
        out += "null";  // JSON has no inf/nan; null is the least-wrong spelling
      } else {
        std::snprintf(buffer, sizeof buffer, "%.17g", double_);
        out += buffer;
      }
      break;
    case Kind::kString: append_escaped(out, string_); break;
    case Kind::kArray: {
      if (array_.empty()) { out += "[]"; break; }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        append_newline_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) { out += "{}"; break; }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, object_[i].first);
        out += indent < 0 ? ":" : ": ";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

}  // namespace joules
