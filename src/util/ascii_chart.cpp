#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/csv.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

struct Bounds {
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -std::numeric_limits<double>::infinity();
  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -std::numeric_limits<double>::infinity();
};

Bounds compute_bounds(const std::vector<ChartSeries>& series,
                      const ChartOptions& options) {
  Bounds b;
  for (const ChartSeries& s : series) {
    for (double v : s.x) {
      b.x_min = std::min(b.x_min, v);
      b.x_max = std::max(b.x_max, v);
    }
    for (double v : s.y) {
      b.y_min = std::min(b.y_min, v);
      b.y_max = std::max(b.y_max, v);
    }
  }
  if (!std::isfinite(b.x_min)) b = Bounds{0, 1, 0, 1};
  if (options.y_axis_from_zero) b.y_min = std::min(b.y_min, 0.0);
  if (b.x_max == b.x_min) b.x_max = b.x_min + 1;
  if (b.y_max == b.y_min) b.y_max = b.y_min + 1;
  // Pad the y range slightly so extreme points are not drawn on the frame.
  const double pad = 0.04 * (b.y_max - b.y_min);
  b.y_min -= pad;
  b.y_max += pad;
  if (options.y_axis_from_zero) b.y_min = std::max(b.y_min, 0.0);
  return b;
}

std::string y_tick_label(double v) {
  char buf[32];
  const double mag = std::fabs(v);
  if (mag >= 1e12) {
    std::snprintf(buf, sizeof buf, "%.2fT", v / 1e12);
  } else if (mag >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fG", v / 1e9);
  } else if (mag >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fM", v / 1e6);
  } else if (mag >= 1e4) {
    std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
  } else if (mag >= 100 || v == std::floor(v)) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f", v);
  }
  return buf;
}

std::string render_grid(const std::vector<ChartSeries>& series,
                        const ChartOptions& options, bool connect) {
  const Bounds b = compute_bounds(series, options);
  const int width = std::max(options.width, 20);
  const int height = std::max(options.height, 6);

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));

  auto to_col = [&](double x) {
    const double t = (x - b.x_min) / (b.x_max - b.x_min);
    return std::clamp(static_cast<int>(std::lround(t * (width - 1))), 0, width - 1);
  };
  auto to_row = [&](double y) {
    const double t = (y - b.y_min) / (b.y_max - b.y_min);
    return std::clamp(height - 1 - static_cast<int>(std::lround(t * (height - 1))),
                      0, height - 1);
  };

  for (const ChartSeries& s : series) {
    const std::size_t n = std::min(s.x.size(), s.y.size());
    int prev_col = -1;
    int prev_row = -1;
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) {
        prev_col = -1;
        continue;
      }
      const int col = to_col(s.x[i]);
      const int row = to_row(s.y[i]);
      if (connect && prev_col >= 0 && col > prev_col + 1) {
        // Linear interpolation across skipped columns.
        for (int c = prev_col + 1; c < col; ++c) {
          const double t = static_cast<double>(c - prev_col) / (col - prev_col);
          const int r = static_cast<int>(std::lround(prev_row + t * (row - prev_row)));
          grid[static_cast<std::size_t>(std::clamp(r, 0, height - 1))]
              [static_cast<std::size_t>(c)] = s.glyph;
        }
      }
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = s.glyph;
      prev_col = col;
      prev_row = row;
    }
  }

  std::ostringstream out;
  if (!options.title.empty()) out << "  " << options.title << '\n';
  if (!options.y_label.empty()) out << "  " << options.y_label << '\n';

  const int label_width = 9;
  for (int r = 0; r < height; ++r) {
    std::string label;
    if (r == 0) {
      label = y_tick_label(b.y_max);
    } else if (r == height - 1) {
      label = y_tick_label(b.y_min);
    } else if (r == height / 2) {
      label = y_tick_label((b.y_max + b.y_min) / 2);
    }
    out << ' ';
    for (int pad = 0; pad < label_width - static_cast<int>(label.size()); ++pad) out << ' ';
    out << label << " |" << grid[static_cast<std::size_t>(r)] << '\n';
  }
  out << ' ' << std::string(label_width, ' ') << " +" << std::string(width, '-') << '\n';
  {
    const std::string left = y_tick_label(b.x_min);
    const std::string right = y_tick_label(b.x_max);
    out << ' ' << std::string(label_width + 2, ' ') << left;
    const int gap = width - static_cast<int>(left.size()) - static_cast<int>(right.size());
    if (gap > 0) out << std::string(static_cast<std::size_t>(gap), ' ');
    out << right << '\n';
  }
  if (!options.x_label.empty()) {
    out << ' ' << std::string(label_width + 2, ' ') << options.x_label << '\n';
  }

  // Legend.
  out << "  legend:";
  for (const ChartSeries& s : series) {
    out << "  [" << s.glyph << "] " << (s.name.empty() ? "series" : s.name);
  }
  out << '\n';
  return out.str();
}

}  // namespace

std::string render_line_chart(const std::vector<ChartSeries>& series,
                              const ChartOptions& options) {
  return render_grid(series, options, /*connect=*/true);
}

std::string render_scatter(const std::vector<ChartSeries>& series,
                           const ChartOptions& options) {
  return render_grid(series, options, /*connect=*/false);
}

std::string render_time_series_chart(
    const std::vector<std::pair<std::string, TimeSeries>>& series,
    const ChartOptions& options) {
  static constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@'};
  std::vector<ChartSeries> chart;
  SimTime t0 = 0;
  bool have_t0 = false;
  for (const auto& [name, ts] : series) {
    if (!ts.empty() && (!have_t0 || ts.front().time < t0)) {
      t0 = ts.front().time;
      have_t0 = true;
    }
  }
  std::size_t index = 0;
  for (const auto& [name, ts] : series) {
    ChartSeries s;
    s.name = name;
    s.glyph = kGlyphs[index++ % std::size(kGlyphs)];
    for (const Sample& sample : ts) {
      s.x.push_back(static_cast<double>(sample.time - t0) /
                    static_cast<double>(kSecondsPerDay));
      s.y.push_back(sample.value);
    }
    chart.push_back(std::move(s));
  }
  ChartOptions opts = options;
  if (opts.x_label.empty()) opts.x_label = "days since trace start";
  return render_line_chart(chart, opts);
}

std::string render_text_table(const std::vector<std::string>& header,
                              const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size(), 0);
  for (std::size_t i = 0; i < header.size(); ++i) widths[i] = header[i].size();
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  std::ostringstream out;
  auto write_row = [&](const std::vector<std::string>& row) {
    out << " |";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out << ' ' << cell << std::string(widths[i] - std::min(widths[i], cell.size()), ' ')
          << " |";
    }
    out << '\n';
  };
  auto write_rule = [&] {
    out << " +";
    for (std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };

  write_rule();
  write_row(header);
  write_rule();
  for (const auto& row : rows) write_row(row);
  write_rule();
  return out.str();
}

}  // namespace joules
