// The simulated router — the DUT stand-in for the paper's physical devices.
//
// A `SimulatedRouter` exposes exactly the surface the paper's methodology
// interacts with: an interface configuration, offered loads, a wall socket
// (true AC power, measured externally by Autopower / the lab power meter),
// PSU telemetry (what SNMP reports, quirks included), and sensor snapshots.
//
// Its *hidden ground truth* is deliberately richer than the §4 model:
//   - the §4 terms themselves (P_base + per-interface profiles), seeded from
//     the paper's Tables 2 and 6;
//   - fan power, stepped by ambient temperature and OS thermal policy (§C);
//   - control-plane load jitter;
//   - per-unit PSU conversion losses (PFE600-shaped curves with a
//     manufacturing/aging spread).
// The §5 methodology only sees configuration + wall power, so the recovered
// model is precise but offset — the paper's central validation finding.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "device/fan.hpp"
#include "device/psu_sim.hpp"
#include "model/power_model.hpp"
#include "model/power_plan.hpp"

namespace joules {

struct PortGroup {
  PortType type = PortType::kQSFP28;
  std::size_t count = 0;
  LineRate max_rate = LineRate::kG100;
};

// PSU operating mode (§9.4). Active-active splits the load across all PSUs
// (what every router in the paper's fleet did); hot-standby puts the whole
// load on one PSU — roughly doubling its load point, where the efficiency
// curve is better — while the standby unit idles at a small housekeeping
// draw, preserving redundancy.
enum class PsuMode : std::uint8_t {
  kActiveActive,
  kHotStandby,
};

// How the router's PSU power shows up in SNMP (§6, Fig. 4):
enum class PsuTelemetry : std::uint8_t {
  kPreciseOffset,   // shape matches reality, constant offset (Fig. 4a)
  kPseudoConstant,  // sticky value with sharp jumps (Fig. 4b)
  kNone,            // the router does not report power at all (Fig. 4c)
};

struct RouterSpec {
  std::string model;
  std::string vendor;
  std::vector<PortGroup> ports;

  // True DC-side power behaviour: P_base plus per-profile interface terms.
  PowerModel truth;

  FanModelParams fan;
  double control_plane_mean_w = 2.0;
  double control_plane_swing_w = 0.8;

  int psu_count = 2;
  double psu_capacity_w = 750.0;
  double psu_efficiency_offset_mean = 0.0;    // model-level quality vs PFE600
  double psu_efficiency_offset_spread = 0.02; // unit-to-unit spread (1 sigma)
  double psu_standby_w = 3.0;                 // hot-standby housekeeping draw

  PsuTelemetry telemetry = PsuTelemetry::kPreciseOffset;
  double telemetry_offset_w = 0.0;  // constant SNMP offset for kPreciseOffset

  // Datasheet-facing metadata (feeds the §3 corpus and Table 1).
  double datasheet_typical_w = 0.0;  // 0 = "not stated"
  double datasheet_max_w = 0.0;
  double max_bandwidth_gbps = 0.0;
  int release_year = 0;

  [[nodiscard]] std::size_t total_ports() const noexcept;
};

class SimulatedRouter {
 public:
  SimulatedRouter(RouterSpec spec, std::uint64_t seed);

  [[nodiscard]] const RouterSpec& spec() const noexcept { return spec_; }

  // --- Interface configuration ----------------------------------------
  // Adds an interface (must not exceed the spec's port budget for the port
  // type); returns its index.
  std::size_t add_interface(const ProfileKey& profile, InterfaceState state,
                            std::string name = {});
  void set_interface_state(std::size_t index, InterfaceState state);
  void set_all_interfaces(InterfaceState state);
  void clear_interfaces();
  [[nodiscard]] std::span<const InterfaceConfig> interfaces() const noexcept {
    return interfaces_;
  }

  // --- Environment & events -------------------------------------------
  // Fixes the ambient temperature (lab bench); by default the router lives
  // in a server room with a small diurnal swing.
  void set_ambient_override_c(std::optional<double> celsius) noexcept {
    ambient_override_c_ = celsius;
  }
  // OS update instant: fan policy bump applies from then on (Fig. 8).
  void set_os_update_at(SimTime t) noexcept { os_update_at_ = t; }
  // PSU operating mode (§9.4); default active-active like the Switch fleet.
  void set_psu_mode(PsuMode mode) noexcept { psu_mode_ = mode; }
  [[nodiscard]] PsuMode psu_mode() const noexcept { return psu_mode_; }
  // Telemetry shift event (e.g. the -7 W re-calibration jump the paper saw
  // after power-cycling a PSU). Applies to reported power from `t` on.
  void add_reporting_shift(SimTime t, double delta_w);
  // Bench disturbances (§5 campaigns). A reboot collapses the DUT to a
  // boot-loader draw for `duration_s`: interfaces contribute nothing and the
  // chassis pulls a fraction of P_base while the OS comes back.
  void add_reboot(SimTime begin, SimTime duration_s);
  // Ambient excursion (e.g. a bench door left open, an A/C hiccup) that the
  // fan curve answers with a step: `delta_c` is added to the effective
  // ambient — override included — for `duration_s`.
  void add_ambient_transient(SimTime begin, SimTime duration_s, double delta_c);
  [[nodiscard]] bool rebooting(SimTime t) const noexcept;

  // --- Power (ground truth) ---------------------------------------------
  // True DC-side power: §4 truth terms + fan + control plane. `loads` may be
  // empty (no traffic) or one entry per interface. Throws std::logic_error
  // if any configured interface lacks a truth profile (catalog bug).
  [[nodiscard]] double dc_power_w(SimTime t,
                                  std::span<const InterfaceLoad> loads = {}) const;

  // True wall (AC) power: the DC power load-balanced across the PSUs, each
  // converted at its unit's true efficiency. This is what Autopower and the
  // lab meter measure.
  [[nodiscard]] double wall_power_w(SimTime t,
                                    std::span<const InterfaceLoad> loads = {}) const;

  // --- Telemetry (what SNMP sees) ---------------------------------------
  // Router-reported total power; nullopt for models that do not report.
  [[nodiscard]] std::optional<double> reported_power_w(
      SimTime t, std::span<const InterfaceLoad> loads = {}) const;

  // Per-PSU (P_in, P_out) sensor snapshot — the §9 dataset's export format.
  [[nodiscard]] std::vector<PsuSensorReading> sensor_snapshot(
      SimTime t, std::span<const InterfaceLoad> loads = {}) const;

  [[nodiscard]] const std::vector<SimulatedPsu>& psus() const noexcept { return psus_; }

  // --- Compiled power plan ----------------------------------------------
  // The columnar kernel for the current (truth model, interfaces) pair,
  // compiled lazily and cached. Interface mutators invalidate it; a no-op
  // `set_interface_state` (same state) deliberately does not, so the
  // sweep's per-segment state sync stays rebuild-free. The cache is
  // `mutable`: like every other use of this class it is safe under the
  // sweep's per-router sharding (no two threads touch the same router), not
  // under concurrent calls on one router.
  [[nodiscard]] const PowerPlan& power_plan() const;
  // How many times the plan has been (re)compiled — the obs layer's
  // `plan.rebuilds` source. Monotonic.
  [[nodiscard]] std::uint64_t plan_rebuilds() const noexcept {
    return plan_rebuilds_;
  }

  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

 private:
  [[nodiscard]] double ambient_c(SimTime t) const noexcept;
  [[nodiscard]] double control_plane_w(SimTime t) const noexcept;

  RouterSpec spec_;
  std::uint64_t seed_;
  FanModel fan_;
  std::vector<SimulatedPsu> psus_;
  std::vector<InterfaceConfig> interfaces_;
  std::optional<double> ambient_override_c_;
  PsuMode psu_mode_ = PsuMode::kActiveActive;
  SimTime os_update_at_ = kNever;
  std::vector<std::pair<SimTime, double>> reporting_shifts_;
  std::vector<std::pair<SimTime, SimTime>> reboots_;  // [begin, end)
  struct AmbientTransient {
    SimTime begin = 0;
    SimTime end = 0;
    double delta_c = 0.0;
  };
  std::vector<AmbientTransient> ambient_transients_;

  // Lazily compiled columnar kernel; see power_plan().
  mutable PowerPlan plan_;
  mutable bool plan_valid_ = false;
  mutable std::uint64_t plan_rebuilds_ = 0;
};

}  // namespace joules
