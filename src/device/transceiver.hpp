// Transceiver module catalogue.
//
// Deployed routers host pluggable transceivers; the §8 link-sleeping analysis
// estimates P_trx from *datasheet* values because transceiver-level power
// models are not available for every module in the network. This catalogue
// lists the module types the Switch-like simulation deploys, with their form
// factor, kind, line rate, and datasheet power.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "model/interface_profile.hpp"

namespace joules {

struct TransceiverModule {
  std::string part_number;     // e.g. "QSFP28-100G-LR4"
  PortType form_factor = PortType::kQSFP28;
  TransceiverKind kind = TransceiverKind::kLR4;
  LineRate rate = LineRate::kG100;
  double datasheet_power_w = 0.0;  // vendor-specified max module power
};

// All module types known to the simulation.
[[nodiscard]] std::span<const TransceiverModule> transceiver_catalog();

// Lookup by part number; nullopt if unknown.
[[nodiscard]] std::optional<TransceiverModule> find_transceiver(
    std::string_view part_number);

// A module matching a (port, kind, rate) triple, if the catalogue has one.
[[nodiscard]] std::optional<TransceiverModule> find_transceiver(
    PortType form_factor, TransceiverKind kind, LineRate rate);

}  // namespace joules
