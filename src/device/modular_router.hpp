// Modular (chassis + linecard) routers — the §4.3 extension the paper leaves
// as future work.
//
// The fixed-chassis model gains one term per seated linecard:
//
//   P = P_chassis + sum_slots P_linecard(card) + sum_i P_interface(c_i) + P_dyn
//
// measured "similarly as P_trx": seat/unseat cards and regress over the
// count (netpowerbench/modular.hpp). The simulator also reproduces the
// Juniper PFE-power-off behaviour the paper cites ([6-8]): a seated card can
// be software-powered-off, dropping its P_linecard while it stays in the
// chassis.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "device/router.hpp"

namespace joules {

struct LinecardSpec {
  std::string model;            // e.g. "LC-24X10GE"
  double power_w = 0.0;         // true P_linecard (DC, card powered, no config)
  std::vector<PortGroup> ports; // ports the card adds to the chassis
};

struct ModularChassisSpec {
  std::string model;  // e.g. "ASR-9010"
  std::string vendor;
  int slot_count = 8;
  double chassis_base_w = 0.0;  // chassis + route processors, no linecards

  // Per-profile interface truths, shared by all cards (the same ASIC family
  // drives every card's ports).
  PowerModel interface_truth;
  // Cards this chassis accepts.
  std::map<std::string, LinecardSpec> card_catalog;

  // Chassis-level environment/PSU parameters (reused from RouterSpec).
  FanModelParams fan{10.0, 4.0, 3.0, 26.0, 0.0};
  double control_plane_mean_w = 8.0;
  double control_plane_swing_w = 0.5;
  int psu_count = 4;
  double psu_capacity_w = 2000.0;
  double psu_efficiency_offset_mean = 0.0;
  double psu_efficiency_offset_spread = 0.02;
};

class SimulatedModularRouter {
 public:
  SimulatedModularRouter(ModularChassisSpec spec, std::uint64_t seed);

  [[nodiscard]] const ModularChassisSpec& spec() const noexcept { return spec_; }

  // --- Linecard management ------------------------------------------------
  // Seats a card in the first free slot; returns the slot index. Throws if
  // the chassis is full or the card model is unknown.
  int seat_linecard(const std::string& card_model);
  // Removes the card (and its interfaces).
  void unseat_linecard(int slot);
  // Software power-off, PFE-style: the card stays seated but its
  // P_linecard (and its interfaces' power) drops to zero.
  void set_linecard_powered(int slot, bool powered);
  [[nodiscard]] bool linecard_powered(int slot) const;
  [[nodiscard]] std::optional<std::string> card_in_slot(int slot) const;
  [[nodiscard]] int seated_count() const noexcept;

  // --- Interfaces -------------------------------------------------------
  // Adds an interface on a seated card (against the card's port budget);
  // returns a stable interface index (load vectors use this order).
  std::size_t add_interface(int slot, const ProfileKey& profile,
                            InterfaceState state);
  void set_interface_state(std::size_t index, InterfaceState state);
  [[nodiscard]] std::size_t interface_count() const noexcept;

  // --- Power ------------------------------------------------------------
  // Same observable surface as the fixed-chassis router.
  [[nodiscard]] double dc_power_w(SimTime t,
                                  std::span<const InterfaceLoad> loads = {}) const;
  [[nodiscard]] double wall_power_w(SimTime t,
                                    std::span<const InterfaceLoad> loads = {}) const;

  void set_ambient_override_c(std::optional<double> celsius) noexcept;

 private:
  struct Slot {
    std::optional<std::string> card;
    bool powered = true;
  };
  struct Interface {
    int slot = 0;
    InterfaceConfig config;
  };

  [[nodiscard]] const LinecardSpec& card_spec(const std::string& model) const;
  void sync_shell() const;

  ModularChassisSpec spec_;
  std::vector<Slot> slots_;
  std::vector<Interface> interfaces_;
  // The chassis shell (fans, control plane, PSUs) is a SimulatedRouter with
  // the linecard power folded into its base dynamically.
  mutable SimulatedRouter shell_;

  // Seat/power/state-derived caches, rebuilt by sync_shell() only when a
  // mutator flips shell_dirty_ — so steady-state power calls reuse the
  // shell's compiled plan and the summed card power instead of re-deriving
  // both per call. Same thread-safety stance as SimulatedRouter's plan
  // cache: safe under per-router sharding, not concurrent calls on one
  // router.
  mutable bool shell_dirty_ = true;
  mutable double card_power_w_ = 0.0;
  mutable std::vector<std::uint8_t> dark_;          // per interface: card off/gone
  mutable std::vector<InterfaceLoad> effective_;    // per-call loads scratch
};

// A reference modular platform for tests/benches: an 8-slot core chassis
// with 10G and 100G linecards.
[[nodiscard]] ModularChassisSpec reference_modular_chassis();

}  // namespace joules
