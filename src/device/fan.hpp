// Cooling (fan) power — one of the factors the §4 model deliberately omits.
//
// Fans draw power as a function of ambient temperature and of the OS's
// thermal-management policy. The paper documents an OS upgrade on an
// 8201-32FH that changed that policy and bumped total power by 45 W (~+12 %,
// Fig. 8) with no other change. `FanModel` reproduces both behaviours: a
// temperature-stepped curve and a policy bump applied after an OS update.
#pragma once

#include "util/sim_clock.hpp"

namespace joules {

struct FanModelParams {
  double base_w = 4.0;            // fan power at or below the first threshold
  double step_w = 2.0;            // extra power per threshold step exceeded
  double step_celsius = 3.0;      // temperature distance between steps
  double first_threshold_c = 26.0;
  double policy_bump_w = 0.0;     // added after an OS update changes the policy
};

class FanModel {
 public:
  explicit FanModel(FanModelParams params) noexcept : params_(params) {}

  // Fan power at an ambient temperature, before any policy bump.
  [[nodiscard]] double power_w(double ambient_celsius) const noexcept;

  // Fan power with the post-update policy applied when `t >= os_update_at`.
  [[nodiscard]] double power_w(double ambient_celsius, SimTime t,
                               SimTime os_update_at) const noexcept;

  [[nodiscard]] const FanModelParams& params() const noexcept { return params_; }

 private:
  FanModelParams params_;
};

// Ambient temperature in a cooled server room: a small diurnal swing around
// a setpoint, deterministic in `t`.
[[nodiscard]] double server_room_temperature_c(SimTime t, double setpoint_c = 23.5,
                                               double swing_c = 1.0) noexcept;

}  // namespace joules
