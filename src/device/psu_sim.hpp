// Simulated power supply units.
//
// Each simulated PSU has a *true* efficiency curve (the PFE600 reference
// shifted by a per-unit offset: manufacturing spread, aging) and a sensor
// that reports (P_in, P_out) with realistic defects — noise, coarse
// quantization, and asynchronous sampling of the two values, which
// occasionally makes P_out read higher than P_in (observed in the paper's
// dataset and capped at 100 % efficiency there).
#pragma once

#include <cstdint>

#include "psu/efficiency_curve.hpp"
#include "util/sim_clock.hpp"

namespace joules {

struct PsuSimParams {
  double capacity_w = 750.0;
  double efficiency_offset = 0.0;   // unit's constant shift vs the PFE600 curve
  double sensor_noise_frac = 0.01;  // relative sensor noise (1 sigma)
  double sensor_quantum_w = 1.0;    // readings are quantized to this step
  double async_skew_frac = 0.015;   // extra skew between P_in/P_out samples
};

struct PsuSensorReading {
  double input_power_w = 0.0;   // P_in as the sensor reports it
  double output_power_w = 0.0;  // P_out as the sensor reports it
};

class SimulatedPsu {
 public:
  SimulatedPsu(PsuSimParams params, std::uint64_t seed) noexcept;

  [[nodiscard]] double capacity_w() const noexcept { return params_.capacity_w; }
  [[nodiscard]] const EfficiencyCurve& true_curve() const noexcept { return curve_; }

  // True wall power drawn when delivering `output_w` (0 when idle; real PSUs
  // have standby losses, folded into the router's base power instead).
  [[nodiscard]] double input_power_w(double output_w) const;

  // True efficiency at a delivered power.
  [[nodiscard]] double efficiency_at(double output_w) const;

  // Sensor snapshot at time `t` while delivering `output_w`. Deterministic in
  // (seed, t). May legitimately report P_out > P_in.
  [[nodiscard]] PsuSensorReading sensor_reading(double output_w, SimTime t) const;

 private:
  PsuSimParams params_;
  EfficiencyCurve curve_;
  std::uint64_t seed_;
};

}  // namespace joules
