#include "device/catalog.hpp"

#include "util/units.hpp"

namespace joules {
namespace {

// Shorthand for a truth profile row in the paper's units (W, pJ, nJ, W).
InterfaceProfile row(PortType port, TransceiverKind trx, LineRate rate,
                     double port_w, double in_w, double up_w, double ebit_pj,
                     double epkt_nj, double offset_w) {
  InterfaceProfile p;
  p.key = {port, trx, rate};
  p.port_power_w = port_w;
  p.trx_in_power_w = in_w;
  p.trx_up_power_w = up_w;
  p.energy_per_bit_j = picojoules_to_joules(ebit_pj);
  p.energy_per_packet_j = nanojoules_to_joules(epkt_nj);
  p.offset_power_w = offset_w;
  return p;
}

// ---------------------------------------------------------------------------
// Table 2 deployment models
// ---------------------------------------------------------------------------

RouterSpec ncs_55a1_24h() {
  RouterSpec spec;
  spec.model = "NCS-55A1-24H";
  spec.vendor = "Cisco";
  spec.ports = {{PortType::kQSFP28, 24, LineRate::kG100}};
  spec.truth.set_base_power_w(320.0);
  // Table 2 (a), verbatim.
  spec.truth.add_profile(row(PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                             LineRate::kG100, 0.32, 0.02, 0.19, 22, 58, 0.37));
  spec.truth.add_profile(row(PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                             LineRate::kG50, 0.18, 0.02, 0.16, 21, 57, 0.34));
  spec.truth.add_profile(row(PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                             LineRate::kG25, 0.10, 0.02, 0.08, 21, 55, 0.21));
  // Optics used in deployment (not lab-modeled; consistent with Table 5 and
  // the transceiver datasheet values).
  spec.truth.add_profile(row(PortType::kQSFP28, TransceiverKind::kLR4,
                             LineRate::kG100, 0.32, 3.4, 0.35, 22, 58, 0.37));
  spec.truth.add_profile(row(PortType::kQSFP28, TransceiverKind::kSR4,
                             LineRate::kG100, 0.32, 2.0, 0.25, 22, 58, 0.37));
  spec.fan = {6.0, 2.5, 3.0, 26.0, 0.0};
  spec.control_plane_mean_w = 3.0;
  spec.control_plane_swing_w = 0.35;
  spec.psu_count = 2;
  spec.psu_capacity_w = 1100;
  spec.psu_efficiency_offset_mean = 0.045;   // Fig. 6b: generally > 85 %
  spec.psu_efficiency_offset_spread = 0.015;
  spec.telemetry = PsuTelemetry::kPseudoConstant;  // Fig. 4b
  spec.datasheet_typical_w = 600;  // Table 1: overestimates by 40 %
  spec.datasheet_max_w = 715;
  spec.max_bandwidth_gbps = 2400;
  spec.release_year = 2017;
  return spec;
}

RouterSpec nexus_9336_fx2() {
  RouterSpec spec;
  spec.model = "Nexus9336-FX2";
  spec.vendor = "Cisco";
  spec.ports = {{PortType::kQSFP28, 36, LineRate::kG100}};
  spec.truth.set_base_power_w(285.0);
  // Table 2 (b), verbatim (including the negative P_trx,up and P_offset).
  spec.truth.add_profile(row(PortType::kQSFP28, TransceiverKind::kLR,
                             LineRate::kG100, 1.9, 2.79, -0.06, 8, 24, -0.43));
  spec.truth.add_profile(row(PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                             LineRate::kG100, 1.13, 0.09, -0.02, 8, 26, 0.07));
  spec.truth.add_profile(row(PortType::kQSFP28, TransceiverKind::kLR4,
                             LineRate::kG100, 1.9, 3.8, 0.1, 8, 24, -0.2));
  spec.fan = {7.0, 2.0, 3.0, 26.0, 0.0};
  spec.psu_count = 2;
  spec.psu_capacity_w = 2000;  // heavily over-provisioned in the field
  spec.psu_efficiency_offset_mean = 0.015;
  spec.psu_efficiency_offset_spread = 0.02;
  spec.telemetry = PsuTelemetry::kPreciseOffset;
  spec.telemetry_offset_w = 8.0;
  spec.datasheet_typical_w = 475;
  spec.datasheet_max_w = 650;
  spec.max_bandwidth_gbps = 3600;
  spec.release_year = 2018;
  return spec;
}

RouterSpec cisco_8201_32fh() {
  RouterSpec spec;
  spec.model = "8201-32FH";
  spec.vendor = "Cisco";
  spec.ports = {{PortType::kQSFPDD, 32, LineRate::kG400}};
  spec.truth.set_base_power_w(253.0);
  // Table 2 (c) verbatim (the paper writes the port type as "QSFP"; the
  // physical cages are QSFP-DD and we key the truth to the physical port).
  spec.truth.add_profile(row(PortType::kQSFPDD, TransceiverKind::kPassiveDAC,
                             LineRate::kG100, 0.94, 0.35, 0.21, 3, 13, -0.04));
  // Deployment optics: 400G FR4 (12 W datasheet module: most of it is
  // P_trx,in — "down" does not mean "off") and 100G LR4.
  spec.truth.add_profile(row(PortType::kQSFPDD, TransceiverKind::kFR4,
                             LineRate::kG400, 1.9, 10.8, 1.2, 2, 8, 0.1));
  spec.truth.add_profile(row(PortType::kQSFPDD, TransceiverKind::kLR4,
                             LineRate::kG100, 0.94, 3.2, 0.4, 3, 13, 0.0));
  spec.fan = {8.0, 3.0, 3.0, 26.0, 45.0};  // Fig. 8: OS update bumps fans +45 W
  spec.control_plane_mean_w = 3.0;
  spec.psu_count = 2;
  spec.psu_capacity_w = 1100;
  spec.psu_efficiency_offset_mean = -0.13;   // Fig. 6c: 76 % or worse
  spec.psu_efficiency_offset_spread = 0.02;
  spec.telemetry = PsuTelemetry::kPreciseOffset;  // Fig. 4a: shape ok, offset
  spec.telemetry_offset_w = 17.0;
  spec.datasheet_typical_w = 288;  // Table 1: datasheet *underestimates* (-24 %)
  spec.datasheet_max_w = 1016;
  spec.max_bandwidth_gbps = 12800;
  spec.release_year = 2020;
  return spec;
}

RouterSpec n540x_8z16g() {
  RouterSpec spec;
  spec.model = "N540X-8Z16G-SYS-A";
  spec.vendor = "Cisco";
  spec.ports = {{PortType::kSFP, 16, LineRate::kG1},
                {PortType::kSFPPlus, 8, LineRate::kG10}};
  spec.truth.set_base_power_w(33.0);
  // Table 2 (d): the dagger row — E_pkt was unmeasurably small on this 1G
  // device (the paper reports a spurious -48 nJ); the truth uses 0.
  spec.truth.add_profile(row(PortType::kSFP, TransceiverKind::kBaseT,
                             LineRate::kG1, 0.0, 3.41, 0.0, 37, 0, 0.01));
  spec.truth.add_profile(row(PortType::kSFP, TransceiverKind::kLR,
                             LineRate::kG1, 0.05, 0.8, 0.05, 37, 20, 0.01));
  spec.truth.add_profile(row(PortType::kSFPPlus, TransceiverKind::kLR,
                             LineRate::kG10, 0.5, 1.2, 0.1, 30, 25, 0.02));
  spec.fan = {2.0, 1.0, 3.0, 27.0, 0.0};
  spec.control_plane_mean_w = 1.0;
  spec.control_plane_swing_w = 0.15;
  spec.psu_count = 2;
  spec.psu_capacity_w = 250;
  spec.psu_efficiency_offset_mean = -0.01;
  spec.psu_efficiency_offset_spread = 0.02;
  spec.telemetry = PsuTelemetry::kNone;  // Fig. 4c: no power reporting
  spec.datasheet_typical_w = 0;          // not stated in the datasheet
  spec.datasheet_max_w = 150;
  spec.max_bandwidth_gbps = 96;
  spec.release_year = 2020;
  return spec;
}

// ---------------------------------------------------------------------------
// Table 6 lab models
// ---------------------------------------------------------------------------

RouterSpec wedge_100bf_32x() {
  RouterSpec spec;
  spec.model = "Wedge 100BF-32X";
  spec.vendor = "EdgeCore";
  spec.ports = {{PortType::kQSFP28, 32, LineRate::kG100}};
  spec.truth.set_base_power_w(108.0);
  // Table 6 (a), verbatim.
  spec.truth.add_profile(row(PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                             LineRate::kG100, 0.88, 0.0, 0.69, 1.7, 7.2, 0.0));
  spec.truth.add_profile(row(PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                             LineRate::kG50, 0.21, 0.0, 0.31, 2.5, 5.6, 0.05));
  spec.truth.add_profile(row(PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                             LineRate::kG25, 0.21, 0.0, 0.1, 2.7, 4.7, 0.06));
  spec.fan = {5.0, 2.0, 3.0, 26.0, 0.0};
  spec.psu_count = 2;
  spec.psu_capacity_w = 600;  // the PFE600 itself (Fig. 5)
  spec.psu_efficiency_offset_mean = 0.0;
  spec.psu_efficiency_offset_spread = 0.005;
  spec.telemetry = PsuTelemetry::kPreciseOffset;
  spec.telemetry_offset_w = 4.0;
  spec.datasheet_typical_w = 0;
  spec.datasheet_max_w = 432;
  spec.max_bandwidth_gbps = 3200;
  spec.release_year = 2017;
  return spec;
}

RouterSpec nexus_93108tc_fx3p() {
  RouterSpec spec;
  spec.model = "Nexus 93108TC-FX3P";
  spec.vendor = "Cisco";
  spec.ports = {{PortType::kRJ45, 48, LineRate::kG10},
                {PortType::kQSFP28, 6, LineRate::kG100}};
  spec.truth.set_base_power_w(147.0);
  // Table 6 (b), verbatim.
  spec.truth.add_profile(row(PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                             LineRate::kG100, 0.17, 0.11, 0.23, 5.4, 21.2, 0.0));
  spec.truth.add_profile(row(PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                             LineRate::kG40, 0.07, 0.11, 0.16, 6.5, 17.4, 0.03));
  spec.truth.add_profile(row(PortType::kRJ45, TransceiverKind::kBaseT,
                             LineRate::kG10, 2.06, 0.11, 0.0, 6.7, 16.9, -0.03));
  spec.truth.add_profile(row(PortType::kRJ45, TransceiverKind::kBaseT,
                             LineRate::kG1, 0.93, 0.11, 0.0, 33.8, 18.2, -0.03));
  spec.fan = {5.0, 2.0, 3.0, 26.0, 0.0};
  spec.psu_count = 2;
  spec.psu_capacity_w = 750;
  spec.psu_efficiency_offset_mean = 0.01;
  spec.psu_efficiency_offset_spread = 0.015;
  spec.telemetry = PsuTelemetry::kPreciseOffset;
  spec.telemetry_offset_w = 6.0;
  spec.datasheet_typical_w = 404;
  spec.datasheet_max_w = 1100;
  spec.max_bandwidth_gbps = 1080;
  spec.release_year = 2021;
  return spec;
}

RouterSpec vsp_4900() {
  RouterSpec spec;
  spec.model = "VSP-4900";
  spec.vendor = "Extreme";
  spec.ports = {{PortType::kSFPPlus, 12, LineRate::kG10}};
  spec.truth.set_base_power_w(8.2);
  // Table 6 (c), verbatim.
  spec.truth.add_profile(row(PortType::kSFPPlus, TransceiverKind::kBaseT,
                             LineRate::kG10, 0.08, 0.06, 0.0, 25.6, 26.5, 0.04));
  spec.truth.add_profile(row(PortType::kSFPPlus, TransceiverKind::kLR,
                             LineRate::kG10, 0.1, 1.1, 0.05, 25.6, 26.5, 0.04));
  spec.fan = {1.5, 1.0, 3.0, 27.0, 0.0};
  spec.control_plane_mean_w = 0.8;
  spec.control_plane_swing_w = 0.1;
  spec.psu_count = 2;
  spec.psu_capacity_w = 250;
  spec.psu_efficiency_offset_mean = 0.0;
  spec.psu_efficiency_offset_spread = 0.02;
  spec.telemetry = PsuTelemetry::kPreciseOffset;
  spec.telemetry_offset_w = 2.0;
  spec.datasheet_typical_w = 0;
  spec.datasheet_max_w = 120;
  spec.max_bandwidth_gbps = 136;
  spec.release_year = 2019;
  return spec;
}

RouterSpec catalyst_3560() {
  RouterSpec spec;
  spec.model = "Catalyst 3560";
  spec.vendor = "Cisco";
  spec.ports = {{PortType::kRJ45, 24, LineRate::kM100}};
  spec.truth.set_base_power_w(40.0);
  // Table 6 (d), verbatim. Note the large E_pkt: per-packet cost dominates on
  // this old 100M access switch.
  spec.truth.add_profile(row(PortType::kRJ45, TransceiverKind::kBaseT,
                             LineRate::kM100, 0.21, 0.0, 0.0, 15.7, 193.1, -0.01));
  spec.fan = {2.0, 1.0, 3.0, 28.0, 0.0};
  spec.control_plane_mean_w = 1.0;
  spec.psu_count = 1;
  spec.psu_capacity_w = 250;
  spec.psu_efficiency_offset_mean = -0.06;  // 2005-era PSU
  spec.psu_efficiency_offset_spread = 0.02;
  spec.telemetry = PsuTelemetry::kNone;
  spec.datasheet_typical_w = 0;
  spec.datasheet_max_w = 65;
  spec.max_bandwidth_gbps = 2.4;
  spec.release_year = 2005;
  return spec;
}

// ---------------------------------------------------------------------------
// Remaining Table 1 deployment models (no published lab model; parameters
// chosen consistent with the Table 5 per-port-type averages).
// ---------------------------------------------------------------------------

RouterSpec asr_920_24sz_m() {
  RouterSpec spec;
  spec.model = "ASR-920-24SZ-M";
  spec.vendor = "Cisco";
  spec.ports = {{PortType::kSFP, 24, LineRate::kG1},
                {PortType::kSFPPlus, 4, LineRate::kG10}};
  spec.truth.set_base_power_w(45.0);
  spec.truth.add_profile(row(PortType::kSFP, TransceiverKind::kLR,
                             LineRate::kG1, 0.05, 1.0, 0.005, 37, 20, 0.01));
  spec.truth.add_profile(row(PortType::kSFP, TransceiverKind::kBaseT,
                             LineRate::kG1, 0.05, 1.05, 0.0, 37, 20, 0.01));
  spec.truth.add_profile(row(PortType::kSFPPlus, TransceiverKind::kLR,
                             LineRate::kG10, 0.55, 1.4, 0.1, 26, 26, 0.02));
  spec.truth.add_profile(row(PortType::kSFPPlus, TransceiverKind::kPassiveDAC,
                             LineRate::kG10, 0.55, 0.1, 0.05, 26, 26, 0.02));
  spec.fan = {3.0, 1.5, 3.0, 27.0, 0.0};
  spec.control_plane_mean_w = 1.5;
  spec.psu_count = 2;
  spec.psu_capacity_w = 250;
  // Fig. 6d: efficiencies span the whole range for this model.
  spec.psu_efficiency_offset_mean = -0.06;
  spec.psu_efficiency_offset_spread = 0.12;
  spec.telemetry = PsuTelemetry::kPreciseOffset;
  spec.telemetry_offset_w = 5.0;
  spec.datasheet_typical_w = 110;  // Table 1: +33 %
  spec.datasheet_max_w = 250;
  spec.max_bandwidth_gbps = 64;
  spec.release_year = 2015;
  return spec;
}

RouterSpec ncs_55a1_24q6h_ss() {
  RouterSpec spec;
  spec.model = "NCS-55A1-24Q6H-SS";
  spec.vendor = "Cisco";
  spec.ports = {{PortType::kSFPPlus, 24, LineRate::kG25},
                {PortType::kQSFP28, 6, LineRate::kG100}};
  spec.truth.set_base_power_w(220.0);
  spec.truth.add_profile(row(PortType::kSFPPlus, TransceiverKind::kLR,
                             LineRate::kG25, 0.2, 1.3, 0.12, 21, 55, 0.2));
  spec.truth.add_profile(row(PortType::kSFPPlus, TransceiverKind::kPassiveDAC,
                             LineRate::kG25, 0.2, 0.05, 0.08, 21, 55, 0.2));
  spec.truth.add_profile(row(PortType::kSFPPlus, TransceiverKind::kLR,
                             LineRate::kG10, 0.2, 1.2, 0.1, 26, 26, 0.02));
  spec.truth.add_profile(row(PortType::kSFPPlus, TransceiverKind::kPassiveDAC,
                             LineRate::kG10, 0.2, 0.1, 0.05, 26, 26, 0.02));
  spec.truth.add_profile(row(PortType::kQSFP28, TransceiverKind::kLR4,
                             LineRate::kG100, 0.32, 3.4, 0.3, 22, 58, 0.37));
  spec.truth.add_profile(row(PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                             LineRate::kG100, 0.32, 0.02, 0.19, 22, 58, 0.37));
  spec.fan = {6.0, 2.5, 3.0, 26.0, 0.0};
  spec.control_plane_mean_w = 3.0;
  spec.psu_count = 2;
  spec.psu_capacity_w = 750;
  spec.psu_efficiency_offset_mean = 0.03;
  spec.psu_efficiency_offset_spread = 0.02;
  spec.telemetry = PsuTelemetry::kPreciseOffset;
  spec.telemetry_offset_w = 10.0;
  spec.datasheet_typical_w = 400;  // Table 1: +28 %
  spec.datasheet_max_w = 550;
  spec.max_bandwidth_gbps = 1200;
  spec.release_year = 2018;
  return spec;
}

RouterSpec ncs_55a1_48q6h() {
  RouterSpec spec;
  spec.model = "NCS-55A1-48Q6H";
  spec.vendor = "Cisco";
  spec.ports = {{PortType::kSFPPlus, 48, LineRate::kG25},
                {PortType::kQSFP28, 6, LineRate::kG100}};
  spec.truth.set_base_power_w(266.0);
  spec.truth.add_profile(row(PortType::kSFPPlus, TransceiverKind::kLR,
                             LineRate::kG25, 0.2, 1.3, 0.12, 21, 55, 0.2));
  spec.truth.add_profile(row(PortType::kSFPPlus, TransceiverKind::kPassiveDAC,
                             LineRate::kG25, 0.2, 0.05, 0.08, 21, 55, 0.2));
  spec.truth.add_profile(row(PortType::kSFPPlus, TransceiverKind::kLR,
                             LineRate::kG10, 0.2, 1.2, 0.1, 26, 26, 0.02));
  spec.truth.add_profile(row(PortType::kSFPPlus, TransceiverKind::kPassiveDAC,
                             LineRate::kG10, 0.2, 0.1, 0.05, 26, 26, 0.02));
  spec.truth.add_profile(row(PortType::kQSFP28, TransceiverKind::kLR4,
                             LineRate::kG100, 0.32, 3.4, 0.3, 22, 58, 0.37));
  spec.truth.add_profile(row(PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                             LineRate::kG100, 0.32, 0.02, 0.19, 22, 58, 0.37));
  spec.fan = {7.0, 2.5, 3.0, 26.0, 0.0};
  spec.control_plane_mean_w = 3.0;
  spec.psu_count = 2;
  spec.psu_capacity_w = 1100;
  spec.psu_efficiency_offset_mean = 0.03;
  spec.psu_efficiency_offset_spread = 0.02;
  spec.telemetry = PsuTelemetry::kPreciseOffset;
  spec.telemetry_offset_w = 12.0;
  spec.datasheet_typical_w = 460;  // Table 1: +24 %
  spec.datasheet_max_w = 625;
  spec.max_bandwidth_gbps = 1800;
  spec.release_year = 2018;
  return spec;
}

RouterSpec asr_9001() {
  RouterSpec spec;
  spec.model = "ASR-9001";
  spec.vendor = "Cisco";
  spec.ports = {{PortType::kSFPPlus, 20, LineRate::kG10}};
  spec.truth.set_base_power_w(262.0);
  spec.truth.add_profile(row(PortType::kSFPPlus, TransceiverKind::kLR,
                             LineRate::kG10, 0.55, 1.4, 0.1, 26, 26, 0.02));
  spec.truth.add_profile(row(PortType::kSFPPlus, TransceiverKind::kPassiveDAC,
                             LineRate::kG10, 0.55, 0.1, 0.05, 26, 26, 0.02));
  spec.fan = {8.0, 3.0, 3.0, 26.0, 0.0};
  spec.control_plane_mean_w = 5.0;
  spec.psu_count = 2;
  spec.psu_capacity_w = 750;
  spec.psu_efficiency_offset_mean = -0.02;
  spec.psu_efficiency_offset_spread = 0.04;
  spec.telemetry = PsuTelemetry::kPreciseOffset;
  spec.telemetry_offset_w = 12.0;
  spec.datasheet_typical_w = 425;  // Table 1: +21 %
  spec.datasheet_max_w = 750;
  spec.max_bandwidth_gbps = 120;
  spec.release_year = 2011;  // the Fig. 2b outlier era
  return spec;
}

RouterSpec n540_24z8q2c_m() {
  RouterSpec spec;
  spec.model = "N540-24Z8Q2C-M";
  spec.vendor = "Cisco";
  spec.ports = {{PortType::kSFPPlus, 32, LineRate::kG25},
                {PortType::kQSFP28, 2, LineRate::kG100}};
  spec.truth.set_base_power_w(116.0);
  spec.truth.add_profile(row(PortType::kSFPPlus, TransceiverKind::kLR,
                             LineRate::kG10, 0.5, 1.2, 0.1, 26, 26, 0.02));
  spec.truth.add_profile(row(PortType::kSFPPlus, TransceiverKind::kLR,
                             LineRate::kG25, 0.5, 1.2, 0.1, 22, 26, 0.05));
  spec.truth.add_profile(row(PortType::kSFPPlus, TransceiverKind::kPassiveDAC,
                             LineRate::kG10, 0.5, 0.1, 0.05, 26, 26, 0.02));
  spec.truth.add_profile(row(PortType::kQSFP28, TransceiverKind::kLR4,
                             LineRate::kG100, 0.53, 3.4, 0.13, 22, 58, 0.3));
  spec.fan = {4.0, 2.0, 3.0, 26.0, 0.0};
  spec.control_plane_mean_w = 2.0;
  spec.psu_count = 2;
  spec.psu_capacity_w = 400;
  spec.psu_efficiency_offset_mean = 0.0;
  spec.psu_efficiency_offset_spread = 0.03;
  spec.telemetry = PsuTelemetry::kPreciseOffset;
  spec.telemetry_offset_w = 7.0;
  spec.datasheet_typical_w = 200;  // Table 1: +20 %
  spec.datasheet_max_w = 350;
  spec.max_bandwidth_gbps = 640;
  spec.release_year = 2019;
  return spec;
}

RouterSpec cisco_8201_24h8fh() {
  RouterSpec spec;
  spec.model = "8201-24H8FH";
  spec.vendor = "Cisco";
  spec.ports = {{PortType::kQSFP28, 24, LineRate::kG100},
                {PortType::kQSFPDD, 8, LineRate::kG400}};
  spec.truth.set_base_power_w(224.0);
  spec.truth.add_profile(row(PortType::kQSFP28, TransceiverKind::kPassiveDAC,
                             LineRate::kG100, 0.94, 0.35, 0.21, 3, 13, -0.04));
  spec.truth.add_profile(row(PortType::kQSFP28, TransceiverKind::kLR4,
                             LineRate::kG100, 0.94, 3.2, 0.4, 3, 13, 0.0));
  spec.truth.add_profile(row(PortType::kQSFPDD, TransceiverKind::kFR4,
                             LineRate::kG400, 1.9, 10.8, 1.2, 2, 8, 0.1));
  spec.truth.add_profile(row(PortType::kQSFPDD, TransceiverKind::kPassiveDAC,
                             LineRate::kG100, 0.94, 0.35, 0.21, 3, 13, -0.04));
  spec.fan = {8.0, 3.0, 3.0, 26.0, 0.0};
  spec.control_plane_mean_w = 3.0;
  spec.psu_count = 2;
  spec.psu_capacity_w = 750;
  spec.psu_efficiency_offset_mean = -0.13;  // same PSU family as the 8201-32FH
  spec.psu_efficiency_offset_spread = 0.02;
  spec.telemetry = PsuTelemetry::kPreciseOffset;
  spec.telemetry_offset_w = 15.0;
  spec.datasheet_typical_w = 205;  // Table 1: datasheet underestimates (-44 %)
  spec.datasheet_max_w = 930;
  spec.max_bandwidth_gbps = 5600;
  spec.release_year = 2021;
  return spec;
}

}  // namespace

const std::vector<RouterSpec>& all_router_specs() {
  static const std::vector<RouterSpec> specs = {
      // Table 2 deployment models
      ncs_55a1_24h(), nexus_9336_fx2(), cisco_8201_32fh(), n540x_8z16g(),
      // Table 6 lab models
      wedge_100bf_32x(), nexus_93108tc_fx3p(), vsp_4900(), catalyst_3560(),
      // Remaining Table 1 deployment models
      asr_920_24sz_m(), ncs_55a1_24q6h_ss(), ncs_55a1_48q6h(), asr_9001(),
      n540_24z8q2c_m(), cisco_8201_24h8fh()};
  return specs;
}

std::optional<RouterSpec> find_router_spec(std::string_view model) {
  for (const RouterSpec& spec : all_router_specs()) {
    if (spec.model == model) return spec;
  }
  return std::nullopt;
}

std::vector<std::string> table2_models() {
  return {"NCS-55A1-24H", "Nexus9336-FX2", "8201-32FH", "N540X-8Z16G-SYS-A"};
}

std::vector<std::string> table6_models() {
  return {"Wedge 100BF-32X", "Nexus 93108TC-FX3P", "VSP-4900", "Catalyst 3560"};
}

std::vector<std::string> table1_models() {
  return {"NCS-55A1-24H",   "ASR-920-24SZ-M", "NCS-55A1-24Q6H-SS",
          "NCS-55A1-48Q6H", "ASR-9001",       "N540-24Z8Q2C-M",
          "8201-32FH",      "8201-24H8FH"};
}

}  // namespace joules
