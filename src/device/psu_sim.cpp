#include "device/psu_sim.hpp"

#include <algorithm>
#include <cmath>

namespace joules {
namespace {

// Deterministic uniform in [-1, 1) from (seed, t, salt).
double hash_unit(std::uint64_t seed, SimTime t, std::uint64_t salt) noexcept {
  std::uint64_t z = seed ^ salt ^ (static_cast<std::uint64_t>(t) * 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-52 - 1.0;
}

double quantize(double value, double quantum) noexcept {
  if (quantum <= 0.0) return value;
  return std::round(value / quantum) * quantum;
}

}  // namespace

SimulatedPsu::SimulatedPsu(PsuSimParams params, std::uint64_t seed) noexcept
    : params_(params),
      curve_(pfe600_curve().offset_by(params.efficiency_offset)),
      seed_(seed) {}

double SimulatedPsu::input_power_w(double output_w) const {
  return joules::input_power_w(output_w, params_.capacity_w, curve_);
}

double SimulatedPsu::efficiency_at(double output_w) const {
  return curve_.at(output_w / params_.capacity_w);
}

PsuSensorReading SimulatedPsu::sensor_reading(double output_w, SimTime t) const {
  const double true_in = input_power_w(output_w);

  PsuSensorReading reading;
  // P_in and P_out are sampled by different ADC passes at different moments;
  // the skew term models the (load-dependent) drift between the two samples.
  const double in_noise =
      1.0 + params_.sensor_noise_frac * hash_unit(seed_, t, 0x11);
  const double out_noise =
      1.0 + params_.sensor_noise_frac * hash_unit(seed_, t, 0x22) +
      params_.async_skew_frac * hash_unit(seed_, t, 0x33);
  reading.input_power_w =
      std::max(0.0, quantize(true_in * in_noise, params_.sensor_quantum_w));
  reading.output_power_w =
      std::max(0.0, quantize(output_w * out_noise, params_.sensor_quantum_w));
  return reading;
}

}  // namespace joules
