#include "device/transceiver.hpp"

#include <array>

namespace joules {
namespace {

// Datasheet power numbers are typical vendor max-power specs for each class;
// the 400G FR4 value (12 W) is the one the paper quotes when explaining the
// Oct. 9 power drop in Fig. 4a.
const std::array<TransceiverModule, 14> kCatalog = {{
    {"SFP-1G-T", PortType::kSFP, TransceiverKind::kBaseT, LineRate::kG1, 1.05},
    {"SFP-1G-LR", PortType::kSFP, TransceiverKind::kLR, LineRate::kG1, 0.8},
    {"SFP-10G-SR", PortType::kSFPPlus, TransceiverKind::kSR4, LineRate::kG10, 0.8},
    {"SFP-10G-LR", PortType::kSFPPlus, TransceiverKind::kLR, LineRate::kG10, 1.2},
    {"SFP-10G-DAC", PortType::kSFPPlus, TransceiverKind::kPassiveDAC, LineRate::kG10, 0.1},
    {"QSFP-40G-SR4", PortType::kQSFP, TransceiverKind::kSR4, LineRate::kG40, 1.5},
    {"QSFP-100G-DAC", PortType::kQSFP, TransceiverKind::kPassiveDAC, LineRate::kG100, 0.5},
    {"QSFP28-100G-DAC", PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG100, 0.5},
    {"QSFP28-100G-SR4", PortType::kQSFP28, TransceiverKind::kSR4, LineRate::kG100, 2.5},
    {"QSFP28-100G-LR4", PortType::kQSFP28, TransceiverKind::kLR4, LineRate::kG100, 4.5},
    {"QSFP28-100G-LR", PortType::kQSFP28, TransceiverKind::kLR, LineRate::kG100, 4.0},
    {"QSFP-DD-400G-FR4", PortType::kQSFPDD, TransceiverKind::kFR4, LineRate::kG400, 12.0},
    {"RJ45-10G-T", PortType::kRJ45, TransceiverKind::kBaseT, LineRate::kG10, 0.0},
    {"RJ45-1G-T", PortType::kRJ45, TransceiverKind::kBaseT, LineRate::kG1, 0.0},
}};

}  // namespace

std::span<const TransceiverModule> transceiver_catalog() { return kCatalog; }

std::optional<TransceiverModule> find_transceiver(std::string_view part_number) {
  for (const TransceiverModule& module : kCatalog) {
    if (module.part_number == part_number) return module;
  }
  return std::nullopt;
}

std::optional<TransceiverModule> find_transceiver(PortType form_factor,
                                                  TransceiverKind kind,
                                                  LineRate rate) {
  for (const TransceiverModule& module : kCatalog) {
    if (module.form_factor == form_factor && module.kind == kind &&
        module.rate == rate) {
      return module;
    }
  }
  return std::nullopt;
}

}  // namespace joules
