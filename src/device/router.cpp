#include "device/router.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

double hash_unit(std::uint64_t seed, SimTime t, std::uint64_t salt) noexcept {
  std::uint64_t z = seed ^ salt ^ (static_cast<std::uint64_t>(t) * 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-52 - 1.0;
}

}  // namespace

std::size_t RouterSpec::total_ports() const noexcept {
  std::size_t total = 0;
  for (const PortGroup& group : ports) total += group.count;
  return total;
}

SimulatedRouter::SimulatedRouter(RouterSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed), fan_(spec_.fan) {
  Rng rng = Rng(seed).fork("psu-offsets");
  psus_.reserve(static_cast<std::size_t>(spec_.psu_count));
  for (int i = 0; i < spec_.psu_count; ++i) {
    PsuSimParams params;
    params.capacity_w = spec_.psu_capacity_w;
    params.efficiency_offset =
        rng.normal(spec_.psu_efficiency_offset_mean,
                   spec_.psu_efficiency_offset_spread);
    psus_.emplace_back(params, seed ^ (0x50ULL + static_cast<std::uint64_t>(i)));
  }
}

std::size_t SimulatedRouter::add_interface(const ProfileKey& profile,
                                           InterfaceState state,
                                           std::string name) {
  std::size_t port_budget = 0;
  for (const PortGroup& group : spec_.ports) {
    if (group.type == profile.port) port_budget += group.count;
  }
  std::size_t in_use = 0;
  for (const InterfaceConfig& existing : interfaces_) {
    if (existing.profile.port == profile.port) ++in_use;
  }
  if (in_use >= port_budget) {
    throw std::invalid_argument("SimulatedRouter: no free " +
                                std::string(to_string(profile.port)) +
                                " port on " + spec_.model);
  }
  InterfaceConfig config;
  config.profile = profile;
  config.state = state;
  config.name = name.empty()
                    ? std::string(to_string(profile.port)) + "-" +
                          std::to_string(interfaces_.size())
                    : std::move(name);
  interfaces_.push_back(std::move(config));
  plan_valid_ = false;
  return interfaces_.size() - 1;
}

const PowerPlan& SimulatedRouter::power_plan() const {
  if (!plan_valid_ || plan_.model_revision() != spec_.truth.revision()) {
    plan_ = PowerPlan::compile(spec_.truth, interfaces_);
    plan_valid_ = true;
    ++plan_rebuilds_;
  }
  return plan_;
}

void SimulatedRouter::set_interface_state(std::size_t index,
                                          InterfaceState state) {
  InterfaceConfig& config = interfaces_.at(index);
  if (config.state == state) return;  // no-op: keep the compiled plan
  config.state = state;
  plan_valid_ = false;
}

void SimulatedRouter::set_all_interfaces(InterfaceState state) {
  for (InterfaceConfig& config : interfaces_) {
    if (config.state == state) continue;
    config.state = state;
    plan_valid_ = false;
  }
}

void SimulatedRouter::clear_interfaces() {
  interfaces_.clear();
  plan_valid_ = false;
}

void SimulatedRouter::add_reporting_shift(SimTime t, double delta_w) {
  reporting_shifts_.emplace_back(t, delta_w);
  std::sort(reporting_shifts_.begin(), reporting_shifts_.end());
}

void SimulatedRouter::add_reboot(SimTime begin, SimTime duration_s) {
  if (duration_s <= 0) {
    throw std::invalid_argument("SimulatedRouter: reboot needs duration > 0");
  }
  reboots_.emplace_back(begin, begin + duration_s);
}

void SimulatedRouter::add_ambient_transient(SimTime begin, SimTime duration_s,
                                            double delta_c) {
  if (duration_s <= 0) {
    throw std::invalid_argument("SimulatedRouter: transient needs duration > 0");
  }
  ambient_transients_.push_back({begin, begin + duration_s, delta_c});
}

bool SimulatedRouter::rebooting(SimTime t) const noexcept {
  for (const auto& [begin, end] : reboots_) {
    if (t >= begin && t < end) return true;
  }
  return false;
}

double SimulatedRouter::ambient_c(SimTime t) const noexcept {
  double ambient = ambient_override_c_.value_or(server_room_temperature_c(t));
  for (const AmbientTransient& transient : ambient_transients_) {
    if (t >= transient.begin && t < transient.end) ambient += transient.delta_c;
  }
  return ambient;
}

double SimulatedRouter::control_plane_w(SimTime t) const noexcept {
  // Slowly varying jitter (hourly buckets) around the mean: BGP churn, SNMP
  // polling, management-plane activity.
  const double noise = hash_unit(seed_, t / kSecondsPerHour, 0xC0);
  return std::max(0.0, spec_.control_plane_mean_w +
                           spec_.control_plane_swing_w * noise);
}

double SimulatedRouter::dc_power_w(SimTime t,
                                   std::span<const InterfaceLoad> loads) const {
  // The compiled plan is bit-identical to spec_.truth.predict(interfaces_,
  // loads) — the property suite in tests/model/power_plan_test.cpp holds
  // that line — so this is the same arithmetic minus the per-call profile
  // lookups. evaluate() validates the loads size exactly like predict().
  const PowerPlan& plan = power_plan();
  const double truth_total = plan.total_w(loads);
  if (!plan.complete()) {
    throw std::logic_error("SimulatedRouter: no truth profile for interface '" +
                           plan.unmatched().front() + "' on " + spec_.model);
  }
  if (rebooting(t)) {
    // Boot loader + fans: the forwarding plane is down, interfaces draw
    // nothing, and the chassis idles well below its running P_base.
    return 0.55 * spec_.truth.base_power_w() +
           fan_.power_w(ambient_c(t), t, os_update_at_);
  }
  return truth_total + fan_.power_w(ambient_c(t), t, os_update_at_) +
         control_plane_w(t);
}

double SimulatedRouter::wall_power_w(SimTime t,
                                     std::span<const InterfaceLoad> loads) const {
  const double dc = dc_power_w(t, loads);
  if (psus_.empty()) return dc;
  if (psu_mode_ == PsuMode::kHotStandby && psus_.size() > 1 &&
      dc <= psus_.front().capacity_w()) {
    // One PSU carries everything at a better point on its curve; the others
    // stay energized for redundancy at a small housekeeping draw.
    double wall = psus_.front().input_power_w(dc);
    wall += static_cast<double>(psus_.size() - 1) * spec_.psu_standby_w;
    return wall;
  }
  // Active-active load balancing: each PSU delivers an equal share.
  const double share = dc / static_cast<double>(psus_.size());
  double wall = 0.0;
  for (const SimulatedPsu& psu : psus_) wall += psu.input_power_w(share);
  return wall;
}

std::optional<double> SimulatedRouter::reported_power_w(
    SimTime t, std::span<const InterfaceLoad> loads) const {
  double shift = 0.0;
  for (const auto& [when, delta] : reporting_shifts_) {
    if (t >= when) shift += delta;
  }
  switch (spec_.telemetry) {
    case PsuTelemetry::kNone:
      return std::nullopt;
    case PsuTelemetry::kPreciseOffset: {
      const double noise = 0.5 * hash_unit(seed_, t, 0x7E);
      return wall_power_w(t, loads) + spec_.telemetry_offset_w + shift + noise;
    }
    case PsuTelemetry::kPseudoConstant: {
      // The sensor only re-latches its value rarely: sample the true power at
      // the start of a multi-day bucket and quantize coarsely. The result is
      // flat stretches with sharp jumps, carrying little information.
      constexpr SimTime kLatchPeriod = 10 * kSecondsPerDay;
      const SimTime bucket_start = (t / kLatchPeriod) * kLatchPeriod;
      const double latched = wall_power_w(bucket_start, loads);
      return std::round(latched / 5.0) * 5.0 + shift;
    }
  }
  return std::nullopt;
}

std::vector<PsuSensorReading> SimulatedRouter::sensor_snapshot(
    SimTime t, std::span<const InterfaceLoad> loads) const {
  const double dc = dc_power_w(t, loads);
  std::vector<PsuSensorReading> readings;
  readings.reserve(psus_.size());
  const double share =
      psus_.empty() ? 0.0 : dc / static_cast<double>(psus_.size());
  for (const SimulatedPsu& psu : psus_) {
    readings.push_back(psu.sensor_reading(share, t));
  }
  return readings;
}

}  // namespace joules
