// Router model catalogue.
//
// Specs for every router model the paper's dataset contains:
//   - the four lab-modeled deployment models of Table 2 (NCS-55A1-24H,
//     Nexus9336-FX2, 8201-32FH, N540X-8Z16G-SYS-A);
//   - the four additional lab models of Table 6 (Wedge 100BF-32X,
//     Nexus 93108TC-FX3P, VSP-4900, Catalyst 3560);
//   - the remaining deployed models of Table 1 (ASR-920-24SZ-M,
//     NCS-55A1-24Q6H-SS, NCS-55A1-48Q6H, ASR-9001, N540-24Z8Q2C-M,
//     8201-24H8FH).
//
// Where the paper publishes model parameters (Tables 2 & 6) those are the
// hidden ground truth verbatim; the other models get plausible parameters
// consistent with the per-port-type averages of Table 5. Telemetry quirks
// and PSU quality follow §6/§9: the 8201-32FH reports precise-but-offset
// power and has poor PSUs, the NCS-55A1-24H reports pseudo-constant values
// but has good PSUs, and the N540X does not report power at all.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "device/router.hpp"

namespace joules {

// All specs, in a stable order.
[[nodiscard]] const std::vector<RouterSpec>& all_router_specs();

// Spec by model name; nullopt if unknown.
[[nodiscard]] std::optional<RouterSpec> find_router_spec(std::string_view model);

// The four devices of Table 2 (in the paper's order), used by the Table 2
// bench and the Fig. 4 validation.
[[nodiscard]] std::vector<std::string> table2_models();

// The four devices of Table 6.
[[nodiscard]] std::vector<std::string> table6_models();

// The eight deployed devices of Table 1 (models with datasheet power values
// and SNMP traces), in the paper's order.
[[nodiscard]] std::vector<std::string> table1_models();

}  // namespace joules
