#include "device/fan.hpp"

#include <cmath>
#include <numbers>

#include "util/units.hpp"

namespace joules {

double FanModel::power_w(double ambient_celsius) const noexcept {
  if (ambient_celsius <= params_.first_threshold_c) return params_.base_w;
  const double above = ambient_celsius - params_.first_threshold_c;
  const double steps = std::ceil(above / params_.step_celsius);
  return params_.base_w + steps * params_.step_w;
}

double FanModel::power_w(double ambient_celsius, SimTime t,
                         SimTime os_update_at) const noexcept {
  double power = power_w(ambient_celsius);
  if (t >= os_update_at) power += params_.policy_bump_w;
  return power;
}

double server_room_temperature_c(SimTime t, double setpoint_c,
                                 double swing_c) noexcept {
  const double day_frac =
      static_cast<double>(seconds_of_day(t)) / static_cast<double>(kSecondsPerDay);
  // Warmest mid-afternoon (15:00), coolest at night.
  return setpoint_c +
         swing_c * std::cos(2.0 * std::numbers::pi * (day_frac - 15.0 / 24.0));
}

}  // namespace joules
