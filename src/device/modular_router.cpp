#include "device/modular_router.hpp"

#include <map>
#include <stdexcept>

#include "util/units.hpp"

namespace joules {
namespace {

// The shell router carries every interface any card could host; give it
// generous port budgets so slot-level budgeting (done here) is the only
// constraint.
RouterSpec make_shell_spec(const ModularChassisSpec& spec) {
  RouterSpec shell;
  shell.model = spec.model;
  shell.vendor = spec.vendor;
  std::map<PortType, std::size_t> per_card_max;
  for (const auto& [name, card] : spec.card_catalog) {
    for (const PortGroup& group : card.ports) {
      per_card_max[group.type] = std::max(per_card_max[group.type], group.count);
    }
  }
  for (const auto& [type, count] : per_card_max) {
    shell.ports.push_back(
        {type, count * static_cast<std::size_t>(spec.slot_count),
         LineRate::kG400});
  }
  shell.truth = spec.interface_truth;
  shell.truth.set_base_power_w(spec.chassis_base_w);
  shell.fan = spec.fan;
  shell.control_plane_mean_w = spec.control_plane_mean_w;
  shell.control_plane_swing_w = spec.control_plane_swing_w;
  shell.psu_count = spec.psu_count;
  shell.psu_capacity_w = spec.psu_capacity_w;
  shell.psu_efficiency_offset_mean = spec.psu_efficiency_offset_mean;
  shell.psu_efficiency_offset_spread = spec.psu_efficiency_offset_spread;
  return shell;
}

}  // namespace

SimulatedModularRouter::SimulatedModularRouter(ModularChassisSpec spec,
                                               std::uint64_t seed)
    : spec_(std::move(spec)),
      slots_(static_cast<std::size_t>(spec_.slot_count)),
      shell_(make_shell_spec(spec_), seed) {
  if (spec_.slot_count <= 0) {
    throw std::invalid_argument("SimulatedModularRouter: need at least one slot");
  }
}

const LinecardSpec& SimulatedModularRouter::card_spec(
    const std::string& model) const {
  const auto it = spec_.card_catalog.find(model);
  if (it == spec_.card_catalog.end()) {
    throw std::invalid_argument("SimulatedModularRouter: unknown card " + model);
  }
  return it->second;
}

int SimulatedModularRouter::seat_linecard(const std::string& card_model) {
  (void)card_spec(card_model);  // validate the card model early
  for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
    if (!slots_[slot].card.has_value()) {
      slots_[slot].card = card_model;
      slots_[slot].powered = true;
      shell_dirty_ = true;
      return static_cast<int>(slot);
    }
  }
  throw std::invalid_argument("SimulatedModularRouter: chassis full");
}

void SimulatedModularRouter::unseat_linecard(int slot) {
  Slot& entry = slots_.at(static_cast<std::size_t>(slot));
  if (!entry.card.has_value()) {
    throw std::invalid_argument("SimulatedModularRouter: slot already empty");
  }
  entry.card.reset();
  // Interfaces of the removed card become permanent tombstones (the shell
  // router cannot shrink; indices stay stable for load vectors).
  for (Interface& iface : interfaces_) {
    if (iface.slot == slot) iface.slot = -1;
  }
  shell_dirty_ = true;
}

void SimulatedModularRouter::set_linecard_powered(int slot, bool powered) {
  Slot& entry = slots_.at(static_cast<std::size_t>(slot));
  if (!entry.card.has_value()) {
    throw std::invalid_argument("SimulatedModularRouter: empty slot");
  }
  if (entry.powered != powered) {
    entry.powered = powered;
    shell_dirty_ = true;
  }
}

bool SimulatedModularRouter::linecard_powered(int slot) const {
  return slots_.at(static_cast<std::size_t>(slot)).powered;
}

std::optional<std::string> SimulatedModularRouter::card_in_slot(int slot) const {
  return slots_.at(static_cast<std::size_t>(slot)).card;
}

int SimulatedModularRouter::seated_count() const noexcept {
  int count = 0;
  for (const Slot& slot : slots_) count += slot.card.has_value() ? 1 : 0;
  return count;
}

std::size_t SimulatedModularRouter::add_interface(int slot,
                                                  const ProfileKey& profile,
                                                  InterfaceState state) {
  const Slot& entry = slots_.at(static_cast<std::size_t>(slot));
  if (!entry.card.has_value()) {
    throw std::invalid_argument("SimulatedModularRouter: no card in slot");
  }
  const LinecardSpec& card = card_spec(*entry.card);
  std::size_t budget = 0;
  for (const PortGroup& group : card.ports) {
    if (group.type == profile.port) budget += group.count;
  }
  std::size_t used = 0;
  for (const Interface& iface : interfaces_) {
    if (iface.slot == slot && iface.config.profile.port == profile.port) ++used;
  }
  if (used >= budget) {
    throw std::invalid_argument("SimulatedModularRouter: no free " +
                                std::string(to_string(profile.port)) +
                                " port on card " + *entry.card);
  }

  Interface iface;
  iface.slot = slot;
  iface.config.profile = profile;
  iface.config.state = state;
  iface.config.name = "slot" + std::to_string(slot) + "/" +
                      std::to_string(interfaces_.size());
  shell_.add_interface(profile, state, iface.config.name);
  interfaces_.push_back(std::move(iface));
  shell_dirty_ = true;
  return interfaces_.size() - 1;
}

void SimulatedModularRouter::set_interface_state(std::size_t index,
                                                 InterfaceState state) {
  Interface& iface = interfaces_.at(index);
  if (iface.config.state == state) return;
  iface.config.state = state;
  shell_dirty_ = true;
}

std::size_t SimulatedModularRouter::interface_count() const noexcept {
  return interfaces_.size();
}

void SimulatedModularRouter::sync_shell() const {
  // Sync the shell: interfaces on removed or powered-off cards are dark.
  // The shell's own set_interface_state skips unchanged states, so its
  // compiled power plan survives a sync that changes nothing.
  dark_.resize(interfaces_.size());
  for (std::size_t i = 0; i < interfaces_.size(); ++i) {
    const Interface& iface = interfaces_[i];
    const bool dark =
        iface.slot < 0 ||
        !slots_[static_cast<std::size_t>(iface.slot)].powered;
    dark_[i] = dark ? 1 : 0;
    shell_.set_interface_state(i, dark ? InterfaceState::kEmpty
                                       : iface.config.state);
  }
  card_power_w_ = 0.0;
  for (const Slot& slot : slots_) {
    if (slot.card.has_value() && slot.powered) {
      card_power_w_ += card_spec(*slot.card).power_w;
    }
  }
  shell_dirty_ = false;
}

double SimulatedModularRouter::dc_power_w(
    SimTime t, std::span<const InterfaceLoad> loads) const {
  if (!loads.empty() && loads.size() != interfaces_.size()) {
    throw std::invalid_argument(
        "SimulatedModularRouter: loads/interfaces size mismatch");
  }
  if (shell_dirty_) sync_shell();
  // Loads change every call; the dark mask and card power do not. Reuse the
  // scratch vector so steady-state sampling allocates nothing.
  effective_.assign(interfaces_.size(), InterfaceLoad{});
  if (!loads.empty()) {
    for (std::size_t i = 0; i < interfaces_.size(); ++i) {
      if (dark_[i] == 0) effective_[i] = loads[i];
    }
  }
  return shell_.dc_power_w(t, loads.empty() ? std::span<const InterfaceLoad>{}
                                            : std::span<const InterfaceLoad>(
                                                  effective_)) +
         card_power_w_;
}

double SimulatedModularRouter::wall_power_w(
    SimTime t, std::span<const InterfaceLoad> loads) const {
  const double dc = dc_power_w(t, loads);
  const auto& psus = shell_.psus();
  if (psus.empty()) return dc;
  const double share = dc / static_cast<double>(psus.size());
  double wall = 0.0;
  for (const SimulatedPsu& psu : psus) wall += psu.input_power_w(share);
  return wall;
}

void SimulatedModularRouter::set_ambient_override_c(
    std::optional<double> celsius) noexcept {
  shell_.set_ambient_override_c(celsius);
}

ModularChassisSpec reference_modular_chassis() {
  ModularChassisSpec spec;
  spec.model = "CR-9010";
  spec.vendor = "Generic";
  spec.slot_count = 8;
  spec.chassis_base_w = 430.0;  // chassis, two route processors, fan trays

  // Shared interface truths (same ASIC family on every card).
  auto profile = [](PortType port, TransceiverKind trx, LineRate rate,
                    double port_w, double in_w, double up_w, double ebit_pj,
                    double epkt_nj, double offset_w) {
    InterfaceProfile p;
    p.key = {port, trx, rate};
    p.port_power_w = port_w;
    p.trx_in_power_w = in_w;
    p.trx_up_power_w = up_w;
    p.energy_per_bit_j = picojoules_to_joules(ebit_pj);
    p.energy_per_packet_j = nanojoules_to_joules(epkt_nj);
    p.offset_power_w = offset_w;
    return p;
  };
  spec.interface_truth.add_profile(profile(
      PortType::kSFPPlus, TransceiverKind::kLR, LineRate::kG10, 0.55, 1.2,
      0.1, 18, 24, 0.05));
  spec.interface_truth.add_profile(profile(
      PortType::kSFPPlus, TransceiverKind::kPassiveDAC, LineRate::kG10, 0.55,
      0.1, 0.05, 18, 24, 0.05));
  spec.interface_truth.add_profile(profile(
      PortType::kQSFP28, TransceiverKind::kLR4, LineRate::kG100, 0.6, 2.9,
      0.3, 9, 20, 0.2));
  spec.interface_truth.add_profile(profile(
      PortType::kQSFP28, TransceiverKind::kPassiveDAC, LineRate::kG100, 0.6,
      0.05, 0.2, 9, 20, 0.2));

  spec.card_catalog["LC-24X10GE"] =
      LinecardSpec{"LC-24X10GE", 210.0, {{PortType::kSFPPlus, 24, LineRate::kG10}}};
  spec.card_catalog["LC-36X10GE"] =
      LinecardSpec{"LC-36X10GE", 280.0, {{PortType::kSFPPlus, 36, LineRate::kG10}}};
  spec.card_catalog["LC-8X100GE"] =
      LinecardSpec{"LC-8X100GE", 390.0, {{PortType::kQSFP28, 8, LineRate::kG100}}};
  return spec;
}

}  // namespace joules
