// §3.3 analyses over the datasheet corpus.
//
// Fig. 2b: efficiency (W per 100 Gbps, typical power with max fallback)
// against release year, restricted to routers above 100 Gbps (the metric is
// meaningless for small access devices) and with known release dates; the
// plot additionally excludes extreme outliers (the paper drops two models
// around 300 W/100G for readability).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "datasheet/record.hpp"
#include "stats/regression.hpp"

namespace joules {

struct EfficiencyPoint {
  int year = 0;
  double w_per_100g = 0.0;
  std::string model;
};

struct TrendOptions {
  double min_bandwidth_gbps = 100.0;  // "high-end" filter (§3.3.1)
  double plot_outlier_cap = 150.0;    // drop points above this for plotting
};

// All qualifying points (before outlier capping).
[[nodiscard]] std::vector<EfficiencyPoint> efficiency_points(
    const std::vector<DatasheetRecord>& corpus,
    const TrendOptions& options = {});

// Points excluded from the plot by the outlier cap (the paper reports two).
[[nodiscard]] std::vector<EfficiencyPoint> plot_outliers(
    const std::vector<EfficiencyPoint>& points, const TrendOptions& options = {});
[[nodiscard]] std::vector<EfficiencyPoint> plot_points(
    const std::vector<EfficiencyPoint>& points, const TrendOptions& options = {});

// Median efficiency per release year (for the trend summary rows).
struct YearlyEfficiency {
  int year = 0;
  double median_w_per_100g = 0.0;
  std::size_t models = 0;
};
[[nodiscard]] std::vector<YearlyEfficiency> yearly_medians(
    const std::vector<EfficiencyPoint>& points);

// OLS slope of efficiency over year — the "is there a visible trend?"
// question. (The ASIC trend is steeply negative; the datasheet trend is
// weakly negative and noisy.)
[[nodiscard]] LinearFit efficiency_trend_fit(
    const std::vector<EfficiencyPoint>& points);

}  // namespace joules
