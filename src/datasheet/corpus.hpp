// The 777-model datasheet corpus (§3.3).
//
// A synthetic stand-in for the paper's collection of Cisco, Arista, and
// Juniper datasheets, generated with the statistical properties the paper
// reports:
//   - 777 router models across the three vendors, organized in series;
//   - a *weak* system-level efficiency trend buried in large scatter
//     (Fig. 2b), unlike the crisp ASIC-level trend (Fig. 2a);
//   - two outlier models (2008 and 2011 releases) with efficiency around
//     300 W/100G — the ones the paper excludes from the plot;
//   - release dates present for Cisco only (the paper could not scale date
//     collection for the other vendors);
//   - missing and "TBD" power values, max-only power, bandwidth sometimes
//     derivable only from the port list;
//   - the 14 catalog models included verbatim, so Table 1's
//     datasheet-vs-measured comparison uses the same numbers everywhere
//     (including the Cisco 8000-series underestimates).
#pragma once

#include <cstdint>
#include <vector>

#include "datasheet/record.hpp"

namespace joules {

struct CorpusOptions {
  int total_models = 777;
  std::uint64_t seed = 2025;
};

// Generates the corpus; deterministic in the options.
[[nodiscard]] std::vector<DatasheetRecord> generate_corpus(
    const CorpusOptions& options = {});

// The Broadcom switching-ASIC efficiency trend of Fig. 2a, redrawn from the
// vendor's own slides [21]: (release year, W per 100 Gbps).
struct AsicEfficiencyPoint {
  int year = 0;
  double w_per_100g = 0.0;
  const char* generation = "";
};
[[nodiscard]] std::vector<AsicEfficiencyPoint> broadcom_asic_trend();

}  // namespace joules
