// Datasheet records (§3).
//
// What a vendor datasheet *should* tell you about a router: typical/max
// power, PSU provisioning, maximum bandwidth, lifecycle dates. In practice
// fields are missing, inconsistent, or wrong — the corpus generator
// deliberately reproduces those defects, and provenance is tracked per the
// paper's dataset (NetBox import vs LLM extraction vs manual collection).
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace joules {

enum class DataProvenance : std::uint8_t {
  kNetbox,  // structured import (device-type library)
  kLlm,     // extracted from unstructured text (subject to hallucination)
  kManual,  // hand-collected (e.g. all release dates in the paper)
};

struct PortSummary {
  int count = 0;
  double speed_gbps = 0.0;
  std::string form_factor;  // "SFP+", "QSFP28", ...
};

struct DatasheetRecord {
  std::string vendor;
  std::string model;
  std::string series;

  std::optional<double> typical_power_w;
  std::optional<double> max_power_w;
  std::optional<double> max_bandwidth_gbps;  // absent when only ports are listed
  std::vector<PortSummary> ports;            // may allow deriving bandwidth

  std::optional<int> psu_count;
  std::optional<double> psu_capacity_w;
  std::optional<int> release_year;

  DataProvenance power_provenance = DataProvenance::kLlm;
  DataProvenance date_provenance = DataProvenance::kManual;
};

// The paper's Fig. 2 efficiency metric: power per 100 Gbps, using typical
// power and falling back to max power. nullopt when no power value or no
// bandwidth is known.
[[nodiscard]] std::optional<double> efficiency_w_per_100g(
    const DatasheetRecord& record);

// Sum of the port capacities, when ports are listed (the fallback the paper
// uses when maximum bandwidth "must be derived by summing the ports'
// capacities").
[[nodiscard]] std::optional<double> bandwidth_from_ports_gbps(
    const DatasheetRecord& record);

}  // namespace joules
