// Datasheet text rendering.
//
// Turns a `DatasheetRecord` into the kind of unstructured, irregular text
// §3.1 complains about: several layouts (spec-sheet key/value, marketing
// prose, pseudo-table), synonymous field names ("Typical power", "Power draw
// (typical)", "Typical operating consumption", ...), operating-condition
// qualifiers ("at 25°C", "at 50% load"), thousands separators, absent fields,
// and the occasional literal "TBD". The renderer is deterministic in
// (record, seed) so parser tests can round-trip.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "datasheet/record.hpp"

namespace joules {

enum class DatasheetLayout : std::uint8_t {
  kSpecSheet,   // "Typical power: 450 W" key-value lines
  kProse,       // numbers buried mid-paragraph
  kTable,       // pipe-separated pseudo-table rows
};

// Renders with an explicit layout.
[[nodiscard]] std::string render_datasheet(const DatasheetRecord& record,
                                           DatasheetLayout layout,
                                           std::uint64_t seed);

// Renders with a layout chosen from the seed (what the corpus pipeline uses).
[[nodiscard]] std::string render_datasheet(const DatasheetRecord& record,
                                           std::uint64_t seed);

// Series datasheet: ONE document covering several models of the same series
// (§3.1's pain point #2), as a wide pseudo-table with one column per model.
// All records must share the vendor; the series name comes from the first
// record (falling back to "<vendor> series").
[[nodiscard]] std::string render_series_datasheet(
    std::span<const DatasheetRecord> models, std::uint64_t seed);

}  // namespace joules
