#include "datasheet/parser.hpp"

#include <cmath>
#include <regex>
#include <vector>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace joules {
namespace {

// Watt values: a number (possibly with thousands separators) directly
// followed by a W unit ("600 W", "715W", "1,100 W").
const std::regex& watts_pattern() {
  static const std::regex pattern(R"((\d[\d,\.]*)\s*W(?![a-zA-Z]))");
  return pattern;
}

std::optional<double> bandwidth_gbps_in(const std::string& segment) {
  static const std::regex tbps(R"((\d[\d,\.]*)\s*Tb(?:ps|/s))", std::regex::icase);
  static const std::regex gbps(R"((\d[\d,\.]*)\s*Gb(?:ps|/s))", std::regex::icase);
  std::smatch match;
  if (std::regex_search(segment, match, tbps)) {
    const auto value = parse_first_number(match[1].str());
    if (value) return *value * 1000.0;
  }
  if (std::regex_search(segment, match, gbps)) {
    return parse_first_number(match[1].str());
  }
  return std::nullopt;
}

enum class WattClass { kTypical, kMax, kPsu, kUnknown };

// Classifies a watt value by the text between the previous value (or line
// start) and this one.
WattClass classify(const std::string& context) {
  if (contains_ci(context, "suppl") || contains_ci(context, "hot-swappable")) {
    return WattClass::kPsu;
  }
  if (contains_ci(context, "typical") || contains_ci(context, "nominal") ||
      contains_ci(context, "draws")) {
    return WattClass::kTypical;
  }
  if (contains_ci(context, "max") || contains_ci(context, "worst") ||
      contains_ci(context, "not exceed")) {
    return WattClass::kMax;
  }
  return WattClass::kUnknown;
}

void parse_watts_in_line(const std::string& line, DatasheetRecord& record) {
  std::size_t context_start = 0;
  const auto begin =
      std::sregex_iterator(line.begin(), line.end(), watts_pattern());
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const auto match_pos = static_cast<std::size_t>(it->position(0));
    const std::string context =
        line.substr(context_start, match_pos - context_start);
    const std::optional<double> value = parse_first_number((*it)[1].str());
    context_start = match_pos + static_cast<std::size_t>(it->length(0));
    if (!value) continue;
    switch (classify(context)) {
      case WattClass::kTypical:
        if (!record.typical_power_w) record.typical_power_w = value;
        break;
      case WattClass::kMax:
        if (!record.max_power_w) record.max_power_w = value;
        break;
      case WattClass::kPsu: {
        if (!record.psu_capacity_w) {
          record.psu_capacity_w = value;
          // PSU count: the last standalone small integer in the context
          // ("Power supply: 2 x", "ships with 2 hot-swappable").
          static const std::regex count_re(R"((\d+)\s*(?:x|hot-swappable))");
          std::smatch count_match;
          if (std::regex_search(context, count_match, count_re)) {
            record.psu_count = std::stoi(count_match[1].str());
          }
        }
        break;
      }
      case WattClass::kUnknown:
        break;
    }
  }
}

void parse_ports(const std::string& segment, DatasheetRecord& record) {
  static const std::regex pattern(R"((\d+)\s*x\s*([\d\.]+)GbE\s+(\S+))");
  auto begin = std::sregex_iterator(segment.begin(), segment.end(), pattern);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    PortSummary port;
    port.count = std::stoi((*it)[1].str());
    port.speed_gbps = std::stod((*it)[2].str());
    port.form_factor = (*it)[3].str();
    while (!port.form_factor.empty() &&
           (port.form_factor.back() == ',' || port.form_factor.back() == '.' ||
            port.form_factor.back() == '|')) {
      port.form_factor.pop_back();
    }
    record.ports.push_back(std::move(port));
  }
}

void parse_identity(const std::string& text, DatasheetRecord& record) {
  for (const std::string& line : split_lines(text)) {
    if (contains_ci(line, "Vendor")) {
      const auto parts = split(line, ':');
      if (parts.size() >= 2) record.vendor = trim(parts[1]);
      if (record.vendor.empty()) {
        const auto cells = split(line, '|');
        if (cells.size() >= 3) record.vendor = trim(cells[2]);
      }
    }
    if (record.series.empty() &&
        (contains_ci(line, "family") || contains_ci(line, "Series") ||
         contains_ci(line, "part of the"))) {
      static const std::regex series_re(R"(([A-Za-z0-9][A-Za-z0-9\- ]*series))");
      std::smatch match;
      if (std::regex_search(line, match, series_re)) {
        record.series = trim(match[1].str());
      }
    }
    if (contains_ci(line, "Data Sheet")) {
      record.model = trim(line.substr(0, line.find(" Data Sheet")));
    }
  }
  if (record.model.empty()) {
    static const std::regex table_re(R"(\|\s*Specification\s*\|\s*([^|]+)\|)");
    std::smatch match;
    if (std::regex_search(text, match, table_re)) {
      record.model = trim(match[1].str());
    }
  }
  if (record.model.empty()) {
    static const std::regex prose_re(R"(The\s+(\S+)\s+(\S+))");
    std::smatch match;
    if (std::regex_search(text, match, prose_re)) {
      record.vendor = match[1].str();
      record.model = match[2].str();
    }
  }
}

void maybe_hallucinate(ParsedDatasheet& parsed, const ParserOptions& options) {
  if (options.hallucination_rate <= 0.0) return;
  Rng rng = Rng(options.seed).fork(parsed.record.model);
  if (!rng.chance(options.hallucination_rate)) return;

  parsed.hallucination_injected = true;
  DatasheetRecord& r = parsed.record;
  switch (rng.uniform_int(0, 2)) {
    case 0:  // confuse typical and max
      std::swap(r.typical_power_w, r.max_power_w);
      break;
    case 1:  // mis-scale a number (digit confusion)
      if (r.typical_power_w) {
        *r.typical_power_w = std::round(*r.typical_power_w * rng.uniform(0.8, 1.25));
      } else if (r.max_power_w) {
        *r.max_power_w = std::round(*r.max_power_w * rng.uniform(0.8, 1.25));
      }
      break;
    default:  // drop a field
      if (r.max_bandwidth_gbps) {
        r.max_bandwidth_gbps.reset();
      } else {
        r.typical_power_w.reset();
      }
      break;
  }
}

}  // namespace

ParsedDatasheet parse_datasheet(const std::string& text,
                                const ParserOptions& options) {
  ParsedDatasheet parsed;
  DatasheetRecord& record = parsed.record;
  record.power_provenance = DataProvenance::kLlm;

  parse_identity(text, record);

  for (std::string line : split_lines(text)) {
    if (!line.empty() && line.front() == '|') {
      line = replace_all(line, "|", "  ");
    }
    // "TBD" fields simply contain no watt value and fall out naturally.
    parse_watts_in_line(line, record);
    if (!record.max_bandwidth_gbps &&
        (contains_ci(line, "capacity") || contains_ci(line, "throughput") ||
         contains_ci(line, "bandwidth"))) {
      if (const auto value = bandwidth_gbps_in(line)) {
        record.max_bandwidth_gbps = value;
      }
    }
    if (contains_ci(line, "GbE")) parse_ports(line, record);
  }

  if (!record.max_bandwidth_gbps) {
    if (const auto derived = bandwidth_from_ports_gbps(record)) {
      record.max_bandwidth_gbps = derived;
      parsed.bandwidth_derived_from_ports = true;
    }
  }

  maybe_hallucinate(parsed, options);
  return parsed;
}


std::vector<ParsedDatasheet> parse_series_datasheet(const std::string& text,
                                                    const ParserOptions& options) {
  std::vector<ParsedDatasheet> results;
  std::string vendor;
  std::string series;

  // Header lines.
  for (const std::string& line : split_lines(text)) {
    if (contains_ci(line, "Vendor")) {
      const auto parts = split(line, ':');
      if (parts.size() >= 2) vendor = trim(parts[1]);
    }
    if (contains_ci(line, "Data Sheet")) {
      series = trim(line.substr(0, line.find(" Data Sheet")));
    }
  }

  // Wide-table rows: first cell is the label, then one cell per model.
  auto cells_of = [](const std::string& line) {
    std::vector<std::string> cells;
    for (const std::string& raw : split(line, '|')) {
      cells.push_back(trim(raw));
    }
    // split("| a | b |") yields leading/trailing empties; drop them.
    if (!cells.empty() && cells.front().empty()) cells.erase(cells.begin());
    if (!cells.empty() && cells.back().empty()) cells.pop_back();
    return cells;
  };

  static const std::regex watts_re(R"((\d[\d,\.]*)\s*W(?![a-zA-Z]))");
  static const std::regex psu_re(R"((\d+)\s*x\s*([\d,\.]+)\s*W)");

  for (const std::string& line : split_lines(text)) {
    if (line.empty() || line.front() != '|') continue;
    const std::vector<std::string> cells = cells_of(line);
    if (cells.size() < 2) continue;
    const std::string& label = cells.front();

    if (contains_ci(label, "Model")) {
      for (std::size_t c = 1; c < cells.size(); ++c) {
        ParsedDatasheet parsed;
        parsed.record.vendor = vendor;
        parsed.record.series = series;
        parsed.record.model = cells[c];
        parsed.record.power_provenance = DataProvenance::kLlm;
        results.push_back(std::move(parsed));
      }
      continue;
    }
    if (results.empty()) continue;  // data rows before the model row: skip

    for (std::size_t c = 1; c < cells.size() && c - 1 < results.size(); ++c) {
      DatasheetRecord& record = results[c - 1].record;
      const std::string& cell = cells[c];
      if (contains_ci(cell, "TBD") || cell == "-") continue;
      if (contains_ci(label, "capacity") || contains_ci(label, "throughput") ||
          contains_ci(label, "bandwidth")) {
        if (const auto value = bandwidth_gbps_in(cell)) {
          record.max_bandwidth_gbps = value;
        }
        continue;
      }
      std::smatch match;
      if (contains_ci(label, "supplies") || contains_ci(label, "supply")) {
        if (std::regex_search(cell, match, psu_re)) {
          record.psu_count = std::stoi(match[1].str());
          record.psu_capacity_w = parse_first_number(match[2].str()).value_or(0.0);
        }
        continue;
      }
      const WattClass kind = classify(label + " ");
      if (kind != WattClass::kTypical && kind != WattClass::kMax) continue;
      if (!std::regex_search(cell, match, watts_re)) continue;
      const auto value = parse_first_number(match[1].str());
      if (!value) continue;
      if (kind == WattClass::kTypical && !record.typical_power_w) {
        record.typical_power_w = value;
      } else if (kind == WattClass::kMax && !record.max_power_w) {
        record.max_power_w = value;
      }
    }
  }

  for (ParsedDatasheet& parsed : results) maybe_hallucinate(parsed, options);
  return results;
}

namespace {

void score_number(const std::optional<double>& truth,
                  const std::optional<double>& parsed, FieldAccuracy& acc) {
  acc.total += 1;
  if (!truth.has_value() && !parsed.has_value()) {
    acc.correct += 1;
    return;
  }
  if (truth.has_value() && parsed.has_value() &&
      std::fabs(*truth - *parsed) <= 0.01 * std::max(1.0, std::fabs(*truth))) {
    acc.correct += 1;
  }
}

}  // namespace

void score_parse(const DatasheetRecord& truth, const ParsedDatasheet& parsed,
                 ParserAccuracy& accumulator) {
  score_number(truth.typical_power_w, parsed.record.typical_power_w,
               accumulator.typical_power);
  score_number(truth.max_power_w, parsed.record.max_power_w,
               accumulator.max_power);
  // Bandwidth counts as correct whether stated or derived from ports.
  std::optional<double> truth_bw = truth.max_bandwidth_gbps;
  if (!truth_bw) truth_bw = bandwidth_from_ports_gbps(truth);
  score_number(truth_bw, parsed.record.max_bandwidth_gbps, accumulator.bandwidth);
  std::optional<double> truth_psu;
  std::optional<double> parsed_psu;
  if (truth.psu_count && truth.psu_capacity_w) {
    truth_psu = *truth.psu_count * 1000.0 + *truth.psu_capacity_w;
  }
  if (parsed.record.psu_count && parsed.record.psu_capacity_w) {
    parsed_psu = *parsed.record.psu_count * 1000.0 + *parsed.record.psu_capacity_w;
  }
  score_number(truth_psu, parsed_psu, accumulator.psu);
}

}  // namespace joules
