#include "datasheet/record.hpp"

namespace joules {

std::optional<double> efficiency_w_per_100g(const DatasheetRecord& record) {
  const std::optional<double> power =
      record.typical_power_w.has_value() ? record.typical_power_w : record.max_power_w;
  if (!power.has_value()) return std::nullopt;

  std::optional<double> bandwidth = record.max_bandwidth_gbps;
  if (!bandwidth.has_value()) bandwidth = bandwidth_from_ports_gbps(record);
  if (!bandwidth.has_value() || *bandwidth <= 0.0) return std::nullopt;

  return *power / (*bandwidth / 100.0);
}

std::optional<double> bandwidth_from_ports_gbps(const DatasheetRecord& record) {
  if (record.ports.empty()) return std::nullopt;
  double total = 0.0;
  for (const PortSummary& port : record.ports) {
    total += port.count * port.speed_gbps;
  }
  return total > 0.0 ? std::optional<double>(total) : std::nullopt;
}

}  // namespace joules
