#include "datasheet/corpus.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <string>

#include "device/catalog.hpp"
#include "util/rng.hpp"

namespace joules {
namespace {

struct SeriesTemplate {
  const char* vendor;
  const char* series;
  const char* model_prefix;
  int first_year;
  int last_year;
  double min_gbps;
  double max_gbps;
};

// Vendor lineups, loosely mirroring real product families.
constexpr std::array<SeriesTemplate, 16> kSeries = {{
    {"Cisco", "Catalyst 3000 series", "C3K", 2005, 2013, 1, 200},
    {"Cisco", "ASR 900 series", "ASR-9xx", 2013, 2020, 20, 400},
    {"Cisco", "ASR 9000 series", "ASR-9k", 2009, 2018, 80, 3200},
    {"Cisco", "NCS 540 series", "N540", 2018, 2023, 100, 800},
    {"Cisco", "NCS 5500 series", "NCS-55", 2016, 2022, 800, 6400},
    {"Cisco", "Nexus 9000 series", "N9K", 2014, 2023, 400, 12800},
    {"Cisco", "Cisco 8000 series", "8xxx", 2020, 2024, 3200, 25600},
    {"Arista", "7050X series", "7050X", 2013, 2020, 480, 6400},
    {"Arista", "7280R series", "7280R", 2016, 2023, 960, 14400},
    {"Arista", "7500R series", "7500R", 2015, 2022, 2400, 28800},
    {"Arista", "7060X series", "7060X", 2017, 2024, 3200, 25600},
    {"Juniper", "EX series", "EX", 2008, 2020, 10, 800},
    {"Juniper", "QFX series", "QFX", 2013, 2023, 640, 12800},
    {"Juniper", "MX series", "MX", 2007, 2021, 40, 4800},
    {"Juniper", "PTX series", "PTX", 2012, 2024, 1920, 28800},
    {"Juniper", "ACX series", "ACX", 2012, 2023, 60, 3200},
}};

// System-level efficiency baseline (W per 100 Gbps) by release year: declines
// slowly — much more slowly than the ASIC curve — and the per-model scatter
// below buries it (the Fig. 2b finding).
double efficiency_baseline(int year) {
  const double t = std::clamp((year - 2008) / 16.0, 0.0, 1.0);
  return 75.0 * std::pow(0.45, t) + 8.0;  // ~83 -> ~42 W/100G over 2008-2024
}

DatasheetRecord catalog_record(const RouterSpec& spec) {
  DatasheetRecord record;
  record.vendor = spec.vendor;
  record.model = spec.model;
  if (spec.model.rfind("NCS-55", 0) == 0) record.series = "NCS 5500 series";
  else if (spec.model.rfind("N540", 0) == 0) record.series = "NCS 540 series";
  else if (spec.model.rfind("ASR-920", 0) == 0) record.series = "ASR 900 series";
  else if (spec.model.rfind("ASR-9", 0) == 0) record.series = "ASR 9000 series";
  else if (spec.model.rfind("8201", 0) == 0) record.series = "Cisco 8000 series";
  else if (spec.model.rfind("Nexus", 0) == 0) record.series = "Nexus 9000 series";
  else if (spec.model.rfind("Catalyst", 0) == 0) record.series = "Catalyst 3000 series";
  else if (spec.model.rfind("Wedge", 0) == 0) record.series = "Wedge series";
  else if (spec.model.rfind("VSP", 0) == 0) record.series = "VSP series";
  if (spec.datasheet_typical_w > 0) record.typical_power_w = spec.datasheet_typical_w;
  if (spec.datasheet_max_w > 0) record.max_power_w = spec.datasheet_max_w;
  record.max_bandwidth_gbps = spec.max_bandwidth_gbps;
  for (const PortGroup& group : spec.ports) {
    PortSummary summary;
    summary.count = static_cast<int>(group.count);
    summary.speed_gbps = line_rate_bps(group.max_rate) / 1e9;
    summary.form_factor = std::string(to_string(group.type));
    record.ports.push_back(summary);
  }
  record.psu_count = spec.psu_count;
  record.psu_capacity_w = spec.psu_capacity_w;
  // Release dates for Cisco only, as in the paper's dataset.
  if (spec.vendor == "Cisco") record.release_year = spec.release_year;
  return record;
}

}  // namespace

std::vector<DatasheetRecord> generate_corpus(const CorpusOptions& options) {
  Rng rng(options.seed);
  std::vector<DatasheetRecord> corpus;
  corpus.reserve(static_cast<std::size_t>(options.total_models));

  // The 14 real catalog models first.
  for (const RouterSpec& spec : all_router_specs()) {
    corpus.push_back(catalog_record(spec));
  }

  // Two deliberate outliers around 300 W/100G (the paper's excluded 2008 and
  // 2011 models). The ASR-9001 (2011 release) is one of them via its real
  // numbers (425 W typical / 120 Gbps = 354); add the 2008 one explicitly.
  {
    DatasheetRecord outlier;
    outlier.vendor = "Cisco";
    outlier.model = "ASR-9006-2008";
    outlier.series = "ASR 9000 series";
    outlier.typical_power_w = 760;
    outlier.max_bandwidth_gbps = 240;  // 317 W / 100G
    outlier.release_year = 2008;
    outlier.psu_count = 2;
    outlier.psu_capacity_w = 2000;
    corpus.push_back(outlier);
  }

  // Fill the remainder from the series templates.
  std::size_t series_index = 0;
  int model_counter = 100;
  while (corpus.size() < static_cast<std::size_t>(options.total_models)) {
    const SeriesTemplate& tmpl = kSeries[series_index % kSeries.size()];
    ++series_index;

    DatasheetRecord record;
    record.vendor = tmpl.vendor;
    record.series = tmpl.series;
    record.model =
        std::string(tmpl.model_prefix) + "-" + std::to_string(model_counter++);

    const int year = static_cast<int>(
        rng.uniform_int(tmpl.first_year, tmpl.last_year));
    // Bandwidth: log-uniform within the series range.
    const double log_lo = std::log(tmpl.min_gbps);
    const double log_hi = std::log(tmpl.max_gbps);
    const double bandwidth_gbps = std::exp(rng.uniform(log_lo, log_hi));

    // Power from the era baseline with heavy scatter (x/÷ ~1.5 at 1 sigma
    // in log space) — the scatter is the point of Fig. 2b.
    const double efficiency =
        rng.log_normal(efficiency_baseline(year), 0.42);
    const double typical_w = efficiency * bandwidth_gbps / 100.0;

    // Field availability quirks.
    const double presence = rng.uniform();
    if (presence < 0.65) {
      record.typical_power_w = std::round(typical_w);
      record.max_power_w = std::round(typical_w * rng.uniform(1.25, 1.9));
    } else if (presence < 0.90) {
      // Max-only datasheets (the paper falls back to max power).
      record.max_power_w = std::round(typical_w * rng.uniform(1.25, 1.9));
    }  // else: no power at all ("TBD").

    if (rng.chance(0.8)) {
      record.max_bandwidth_gbps = std::round(bandwidth_gbps);
    } else {
      // Bandwidth only derivable from the port list.
      PortSummary ports;
      ports.speed_gbps = bandwidth_gbps >= 3200 ? 400.0
                         : bandwidth_gbps >= 800 ? 100.0
                         : bandwidth_gbps >= 100 ? 25.0
                                                 : 10.0;
      ports.count = std::max(
          1, static_cast<int>(std::round(bandwidth_gbps / ports.speed_gbps)));
      ports.form_factor = ports.speed_gbps >= 400   ? "QSFP-DD"
                          : ports.speed_gbps >= 100 ? "QSFP28"
                          : ports.speed_gbps >= 25  ? "SFP28"
                                                    : "SFP+";
      record.ports.push_back(ports);
    }

    if (rng.chance(0.85)) {
      record.psu_count = rng.chance(0.8) ? 2 : 1;
      constexpr std::array<double, 6> kCaps = {250, 400, 750, 1100, 2000, 2700};
      record.psu_capacity_w =
          kCaps[static_cast<std::size_t>(rng.uniform_int(0, 5))];
    }

    // Release dates: Cisco only (manual collection did not scale, §3.3).
    if (record.vendor == "Cisco") record.release_year = year;

    corpus.push_back(std::move(record));
  }
  return corpus;
}

std::vector<AsicEfficiencyPoint> broadcom_asic_trend() {
  // Fig. 2a redrawn from Broadcom's published generation-over-generation
  // numbers [21]: a clean, steep decline.
  return {
      {2010, 28.0, "Trident"},
      {2012, 20.0, "Trident2"},
      {2014, 13.5, "Tomahawk"},
      {2016, 9.0, "Tomahawk2"},
      {2018, 5.8, "Tomahawk3"},
      {2020, 3.8, "Tomahawk4"},
      {2022, 2.3, "Tomahawk5"},
  };
}

}  // namespace joules
