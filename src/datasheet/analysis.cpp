#include "datasheet/analysis.hpp"

#include <algorithm>
#include <map>

#include "stats/descriptive.hpp"

namespace joules {

std::vector<EfficiencyPoint> efficiency_points(
    const std::vector<DatasheetRecord>& corpus, const TrendOptions& options) {
  std::vector<EfficiencyPoint> points;
  for (const DatasheetRecord& record : corpus) {
    if (!record.release_year.has_value()) continue;
    std::optional<double> bandwidth = record.max_bandwidth_gbps;
    if (!bandwidth) bandwidth = bandwidth_from_ports_gbps(record);
    if (!bandwidth || *bandwidth <= options.min_bandwidth_gbps) continue;
    const std::optional<double> efficiency = efficiency_w_per_100g(record);
    if (!efficiency) continue;
    points.push_back({*record.release_year, *efficiency, record.model});
  }
  std::sort(points.begin(), points.end(),
            [](const EfficiencyPoint& a, const EfficiencyPoint& b) {
              return a.year < b.year;
            });
  return points;
}

std::vector<EfficiencyPoint> plot_outliers(
    const std::vector<EfficiencyPoint>& points, const TrendOptions& options) {
  std::vector<EfficiencyPoint> out;
  for (const EfficiencyPoint& point : points) {
    if (point.w_per_100g > options.plot_outlier_cap) out.push_back(point);
  }
  return out;
}

std::vector<EfficiencyPoint> plot_points(
    const std::vector<EfficiencyPoint>& points, const TrendOptions& options) {
  std::vector<EfficiencyPoint> out;
  for (const EfficiencyPoint& point : points) {
    if (point.w_per_100g <= options.plot_outlier_cap) out.push_back(point);
  }
  return out;
}

std::vector<YearlyEfficiency> yearly_medians(
    const std::vector<EfficiencyPoint>& points) {
  std::map<int, std::vector<double>> by_year;
  for (const EfficiencyPoint& point : points) {
    by_year[point.year].push_back(point.w_per_100g);
  }
  std::vector<YearlyEfficiency> out;
  for (const auto& [year, values] : by_year) {
    out.push_back({year, median(values), values.size()});
  }
  return out;
}

LinearFit efficiency_trend_fit(const std::vector<EfficiencyPoint>& points) {
  std::vector<double> years;
  std::vector<double> efficiencies;
  years.reserve(points.size());
  efficiencies.reserve(points.size());
  for (const EfficiencyPoint& point : points) {
    years.push_back(static_cast<double>(point.year));
    efficiencies.push_back(point.w_per_100g);
  }
  return fit_linear(years, efficiencies);
}

}  // namespace joules
