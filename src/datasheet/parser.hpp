// The datasheet parser — stand-in for the paper's GPT-4o extraction (§3.2).
//
// Takes unstructured datasheet text and extracts the fields the study needs.
// The heuristic engine handles the layout/name/unit variation the renderer
// produces; an optional *error model* reproduces the LLM reality the paper
// documents ("reasonably accurate but — as one would expect — far from
// perfect"): with a configurable probability per document, the extractor
// confuses typical/max, mis-scales a number, or drops a field. Errors are
// deterministic in (seed, model name) and flagged in the output so the
// corpus can "identify the LLM outputs subject to hallucinations" like the
// paper's dataset does.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "datasheet/record.hpp"

namespace joules {

struct ParsedDatasheet {
  DatasheetRecord record;               // extracted fields
  bool bandwidth_derived_from_ports = false;
  bool hallucination_injected = false;  // ground-truth flag for evaluation
};

struct ParserOptions {
  double hallucination_rate = 0.0;  // per-document probability
  std::uint64_t seed = 7;
};

// Parses one rendered datasheet.
[[nodiscard]] ParsedDatasheet parse_datasheet(const std::string& text,
                                              const ParserOptions& options = {});

// Parses a series datasheet covering several models (wide-table layout);
// returns one result per model column, in document order.
[[nodiscard]] std::vector<ParsedDatasheet> parse_series_datasheet(
    const std::string& text, const ParserOptions& options = {});

// Field-level comparison of parsed output vs the source record, for accuracy
// evaluation (numbers match within 1 % or both absent).
struct FieldAccuracy {
  int total = 0;
  int correct = 0;
  [[nodiscard]] double rate() const noexcept {
    return total > 0 ? static_cast<double>(correct) / total : 1.0;
  }
};
struct ParserAccuracy {
  FieldAccuracy typical_power;
  FieldAccuracy max_power;
  FieldAccuracy bandwidth;
  FieldAccuracy psu;
};

void score_parse(const DatasheetRecord& truth, const ParsedDatasheet& parsed,
                 ParserAccuracy& accumulator);

}  // namespace joules
