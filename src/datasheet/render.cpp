#include "datasheet/render.hpp"

#include <array>
#include <cmath>

#include "util/csv.hpp"
#include "util/rng.hpp"

namespace joules {
namespace {

constexpr std::array<const char*, 5> kTypicalNames = {
    "Typical power", "Power draw (typical)", "Typical operating consumption",
    "Typical power consumption", "Nominal power"};
constexpr std::array<const char*, 5> kMaxNames = {
    "Maximum power", "Max power consumption", "Max. power draw",
    "Worst-case power", "Maximum power consumption"};
constexpr std::array<const char*, 4> kBandwidthNames = {
    "Switching capacity", "Maximum throughput", "System bandwidth",
    "Forwarding capacity"};
constexpr std::array<const char*, 3> kConditions = {
    " (at 25C)", " (at 50% load)", ""};

std::string power_value(double watts, Rng& rng) {
  std::string text = format_number(std::round(watts));
  if (watts >= 1000 && rng.chance(0.5)) {
    // Thousands separator, e.g. "1,100".
    const auto digits = text.size();
    text.insert(digits - 3, ",");
  }
  return text + (rng.chance(0.7) ? " W" : "W");
}

std::string bandwidth_value(double gbps, Rng& rng) {
  if (gbps >= 1000 && rng.chance(0.6)) {
    return format_number(gbps / 1000.0, 2) + " Tbps";
  }
  return format_number(gbps) + (rng.chance(0.5) ? " Gbps" : " Gb/s");
}

std::string ports_line(const DatasheetRecord& record) {
  std::string out = "Ports:";
  for (std::size_t i = 0; i < record.ports.size(); ++i) {
    const PortSummary& port = record.ports[i];
    if (i > 0) out += " +";
    out += " " + std::to_string(port.count) + " x " +
           format_number(port.speed_gbps) + "GbE " + port.form_factor;
  }
  return out;
}

std::string render_spec_sheet(const DatasheetRecord& record, Rng& rng) {
  std::string out;
  out += record.model + " Data Sheet\n";
  out += "Vendor: " + record.vendor + "\n";
  if (!record.series.empty()) out += "Product family: " + record.series + "\n";
  if (record.max_bandwidth_gbps) {
    out += std::string(kBandwidthNames[rng.uniform_int(0, 3)]) + ": " +
           bandwidth_value(*record.max_bandwidth_gbps, rng) + "\n";
  }
  if (!record.ports.empty()) out += ports_line(record) + "\n";
  if (record.typical_power_w) {
    out += std::string(kTypicalNames[rng.uniform_int(0, 4)]) + ": " +
           power_value(*record.typical_power_w, rng) +
           kConditions[rng.uniform_int(0, 2)] + "\n";
  }
  if (record.max_power_w) {
    out += std::string(kMaxNames[rng.uniform_int(0, 4)]) + ": " +
           power_value(*record.max_power_w, rng) + "\n";
  }
  if (!record.typical_power_w && !record.max_power_w) {
    out += "Typical power: TBD\n";
  }
  if (record.psu_count && record.psu_capacity_w) {
    out += "Power supply: " + std::to_string(*record.psu_count) + " x " +
           format_number(*record.psu_capacity_w) + " W AC\n";
  }
  return out;
}

std::string render_prose(const DatasheetRecord& record, Rng& rng) {
  std::string out;
  out += "The " + record.vendor + " " + record.model;
  if (!record.series.empty()) out += " (part of the " + record.series + ")";
  out += " delivers industry-leading efficiency for the modern network edge.";
  if (record.max_bandwidth_gbps) {
    out += " With a switching capacity of " +
           bandwidth_value(*record.max_bandwidth_gbps, rng) +
           ", it scales with your traffic.";
  } else if (!record.ports.empty()) {
    out += " " + ports_line(record) + ".";
  }
  if (record.typical_power_w) {
    out += " In typical operating conditions the system draws " +
           power_value(*record.typical_power_w, rng) +
           kConditions[rng.uniform_int(0, 2)] + ",";
    if (record.max_power_w) {
      out += " with a maximum consumption of " +
             power_value(*record.max_power_w, rng) + ".";
    } else {
      out += " depending on configuration.";
    }
  } else if (record.max_power_w) {
    out += " Power consumption does not exceed " +
           power_value(*record.max_power_w, rng) + ".";
  } else {
    out += " Power figures will be published at general availability (TBD).";
  }
  if (record.psu_count && record.psu_capacity_w) {
    out += " The chassis ships with " + std::to_string(*record.psu_count) +
           " hot-swappable " + format_number(*record.psu_capacity_w) +
           " W power supplies.";
  }
  out += "\n";
  return out;
}

std::string render_table(const DatasheetRecord& record, Rng& rng) {
  std::string out;
  out += "| Specification | " + record.model + " |\n";
  out += "| --- | --- |\n";
  out += "| Vendor | " + record.vendor + " |\n";
  if (!record.series.empty()) out += "| Series | " + record.series + " |\n";
  if (record.max_bandwidth_gbps) {
    out += "| " + std::string(kBandwidthNames[rng.uniform_int(0, 3)]) + " | " +
           bandwidth_value(*record.max_bandwidth_gbps, rng) + " |\n";
  }
  if (!record.ports.empty()) {
    out += "| Interfaces | " + ports_line(record).substr(7) + " |\n";
  }
  out += "| " + std::string(kTypicalNames[rng.uniform_int(0, 4)]) + " | " +
         (record.typical_power_w ? power_value(*record.typical_power_w, rng)
                                 : std::string("TBD")) +
         " |\n";
  if (record.max_power_w) {
    out += "| " + std::string(kMaxNames[rng.uniform_int(0, 4)]) + " | " +
           power_value(*record.max_power_w, rng) + " |\n";
  }
  if (record.psu_count && record.psu_capacity_w) {
    out += "| Power supplies | " + std::to_string(*record.psu_count) + " x " +
           format_number(*record.psu_capacity_w) + "W |\n";
  }
  return out;
}

std::string series_cell_power(const std::optional<double>& value, Rng& rng) {
  return value.has_value() ? power_value(*value, rng) : std::string("TBD");
}

}  // namespace

std::string render_datasheet(const DatasheetRecord& record,
                             DatasheetLayout layout, std::uint64_t seed) {
  Rng rng = Rng(seed).fork(record.model);
  switch (layout) {
    case DatasheetLayout::kSpecSheet: return render_spec_sheet(record, rng);
    case DatasheetLayout::kProse: return render_prose(record, rng);
    case DatasheetLayout::kTable: return render_table(record, rng);
  }
  return {};
}

std::string render_datasheet(const DatasheetRecord& record, std::uint64_t seed) {
  Rng rng = Rng(seed).fork(record.model);
  const auto layout = static_cast<DatasheetLayout>(rng.uniform_int(0, 2));
  return render_datasheet(record, layout, seed);
}

std::string render_series_datasheet(std::span<const DatasheetRecord> models,
                                    std::uint64_t seed) {
  if (models.empty()) return {};
  Rng rng = Rng(seed).fork(models.front().series.empty()
                               ? models.front().vendor
                               : models.front().series);
  const std::string series = models.front().series.empty()
                                 ? models.front().vendor + " series"
                                 : models.front().series;
  std::string out;
  out += series + " Data Sheet\n";
  out += "Vendor: " + models.front().vendor + "\n";

  auto row = [&models, &out](const std::string& label,
                             auto&& cell_of) {
    out += "| " + label + " |";
    for (const DatasheetRecord& record : models) {
      out += " " + cell_of(record) + " |";
    }
    out += "\n";
  };

  row("Model", [](const DatasheetRecord& r) { return r.model; });
  row(std::string(kBandwidthNames[rng.uniform_int(0, 3)]),
      [&rng](const DatasheetRecord& r) {
        return r.max_bandwidth_gbps ? bandwidth_value(*r.max_bandwidth_gbps, rng)
                                    : std::string("see port list");
      });
  row(std::string(kTypicalNames[rng.uniform_int(0, 4)]),
      [&rng](const DatasheetRecord& r) {
        return series_cell_power(r.typical_power_w, rng);
      });
  row(std::string(kMaxNames[rng.uniform_int(0, 4)]),
      [&rng](const DatasheetRecord& r) {
        return series_cell_power(r.max_power_w, rng);
      });
  row("Power supplies", [](const DatasheetRecord& r) {
    if (!r.psu_count || !r.psu_capacity_w) return std::string("-");
    return std::to_string(*r.psu_count) + " x " +
           format_number(*r.psu_capacity_w) + " W";
  });
  return out;
}

}  // namespace joules
