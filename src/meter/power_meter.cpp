#include "meter/power_meter.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace joules {
namespace {

double hash_unit(std::uint64_t seed, SimTime t, std::uint64_t salt) noexcept {
  std::uint64_t z = seed ^ salt ^ (static_cast<std::uint64_t>(t) * 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-52 - 1.0;
}

}  // namespace

PowerMeter::PowerMeter(PowerMeterSpec spec, std::uint64_t seed)
    : spec_(spec), seed_(seed) {
  if (spec_.channels < 1) {
    throw std::invalid_argument("PowerMeter: need at least one channel");
  }
  Rng rng = Rng(seed).fork("meter-calibration");
  channel_gain_.reserve(static_cast<std::size_t>(spec_.channels));
  for (int c = 0; c < spec_.channels; ++c) {
    channel_gain_.push_back(
        rng.uniform(-spec_.max_gain_error_frac, spec_.max_gain_error_frac));
  }
}

double PowerMeter::gain_error_frac(int channel) const {
  return channel_gain_.at(static_cast<std::size_t>(channel));
}

double PowerMeter::measure_w(int channel, double true_power_w, SimTime t) const {
  const double gain = 1.0 + gain_error_frac(channel);
  const double noise =
      spec_.noise_floor_w *
      hash_unit(seed_, t, 0xA0 + static_cast<std::uint64_t>(channel));
  const double reading = true_power_w * gain + noise;
  const double clean = reading > 0.0 ? reading : 0.0;
  return fault_transform_ ? fault_transform_(channel, t, clean) : clean;
}

TimeSeries PowerMeter::record(
    int channel, const std::function<double(SimTime)>& true_power_of_t,
    SimTime begin, SimTime end, SimTime period_s) const {
  period_s = clamp_record_period(period_s);
  TimeSeries trace;
  for (SimTime t = begin; t < end; t += period_s) {
    trace.push(t, measure_w(channel, true_power_of_t(t), t));
  }
  return trace;
}

}  // namespace joules
