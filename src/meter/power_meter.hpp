// External power meter simulation (§5.1, §6.1).
//
// The paper measures wall power with a Microchip MCP39F511N: two C13
// channels, specified accuracy ±0.5 %, streaming samples every 0.5 s. A
// `PowerMeter` wraps a channel-per-PSU view of a power source with a per-unit
// calibration error (fixed gain drawn within spec at construction) plus
// additive sample noise. Both the lab bench (NetPowerBench) and the deployed
// Autopower units use this class; its `measure` input is the true wall power
// the simulated router reports.
#pragma once

#include <cstdint>
#include <functional>

#include "util/sim_clock.hpp"
#include "util/time_series.hpp"

namespace joules {

struct PowerMeterSpec {
  double max_gain_error_frac = 0.005;  // +-0.5 % of reading (datasheet spec)
  double noise_floor_w = 0.08;         // additive sample noise (1 sigma)
  double sample_period_s = 0.5;        // MCP39F511N streaming rate
  int channels = 2;
};

class PowerMeter {
 public:
  // The per-channel gain error is drawn uniformly within +-max_gain_error and
  // stays fixed for the unit's lifetime (it is a calibration property).
  PowerMeter(PowerMeterSpec spec, std::uint64_t seed);

  [[nodiscard]] const PowerMeterSpec& spec() const noexcept { return spec_; }

  // One reading of `true_power_w` on `channel` at time `t`. Deterministic in
  // (unit seed, channel, t) — unless a fault transform is installed, in which
  // case the clean reading passes through it last.
  [[nodiscard]] double measure_w(int channel, double true_power_w, SimTime t) const;

  // Records a trace: samples `true_power_of_t` every `period_s` over
  // [begin, end).
  //
  // Period contract: `SimTime` is whole seconds, so the MCP39F511N's native
  // 0.5 s streaming rate is not representable here. Any `period_s < 1`
  // (including 0 and negative values) is clamped up to `kMinRecordPeriodS` =
  // 1 s by `clamp_record_period` — the single place this rounding happens.
  // The paper's analyses all operate on >= 30 s averages, so the clamp never
  // affects a published number.
  [[nodiscard]] TimeSeries record(int channel,
                                  const std::function<double(SimTime)>& true_power_of_t,
                                  SimTime begin, SimTime end,
                                  SimTime period_s = 1) const;

  static constexpr SimTime kMinRecordPeriodS = 1;
  // The documented sub-second rounding rule, exposed so callers (and tests)
  // can predict exactly what `record` will do with their period.
  [[nodiscard]] static constexpr SimTime clamp_record_period(SimTime period_s) noexcept {
    return period_s < kMinRecordPeriodS ? kMinRecordPeriodS : period_s;
  }

  // The unit's actual (hidden) gain error for a channel — used by tests to
  // assert the spec envelope, not by the analyses.
  [[nodiscard]] double gain_error_frac(int channel) const;

  // --- Bench fault seam --------------------------------------------------
  // When set, every reading passes through the transform after gain and
  // noise: `transform(channel, t, clean_reading)` returns what the glitching
  // meter actually reports (spikes, NaN, stuck values...). Installed by the
  // NetPowerBench fault plan for one measurement window at a time; cleared
  // with an empty function. No-fault campaigns never pay more than an empty
  // std::function check.
  using FaultTransform = std::function<double(int, SimTime, double)>;
  void set_fault_transform(FaultTransform transform) {
    fault_transform_ = std::move(transform);
  }
  void clear_fault_transform() { fault_transform_ = nullptr; }
  [[nodiscard]] bool has_fault_transform() const noexcept {
    return static_cast<bool>(fault_transform_);
  }

 private:
  PowerMeterSpec spec_;
  std::uint64_t seed_;
  std::vector<double> channel_gain_;
  FaultTransform fault_transform_;
};

}  // namespace joules
