// Hypnos — link sleeping on real traffic (re-implementation of [31]).
//
// Given the network graph and per-link average loads, Hypnos greedily turns
// off the lowest-utilization *internal* links, as long as
//   (i) the network stays connected, and
//   (ii) rerouting the sleeping link's traffic along the shortest surviving
//        path keeps every remaining link under a utilization ceiling.
// External links (customers, peers) are never candidates — intra-domain
// protocols cannot turn them off, which §8 identifies as a structural limit
// of link sleeping in Tier-2/3 networks.
#pragma once

#include <span>
#include <vector>

#include "network/simulation.hpp"
#include "network/topology.hpp"

namespace joules {

struct HypnosOptions {
  double max_utilization = 0.50;  // post-reroute ceiling on surviving links
};

struct HypnosResult {
  std::vector<int> sleeping_links;      // link indices put to sleep
  std::size_t candidate_links = 0;      // internal links considered
  std::vector<double> final_loads_bps;  // per-link load after rerouting

  [[nodiscard]] double fraction_off() const noexcept {
    return candidate_links > 0
               ? static_cast<double>(sleeping_links.size()) /
                     static_cast<double>(candidate_links)
               : 0.0;
  }
};

// Average one-direction load per internal link over [begin, end).
[[nodiscard]] std::vector<double> average_link_loads_bps(
    const NetworkSimulation& sim, SimTime begin, SimTime end, SimTime step);

// Effective capacity of an internal link: the *min* of the two endpoint
// interfaces' line rates. The generator keeps both sides at the same rate,
// but the ceiling check must hold on whichever side is slower if they ever
// disagree (hand-built or future asymmetric topologies).
[[nodiscard]] double link_capacity_bps(const NetworkTopology& topology,
                                       std::size_t link_id);

// The greedy pass's candidate order: ascending utilization, with an explicit
// link-index tie-break. Ties are common (synthesized symmetric links share
// loads and rates), so the tie-break — not the STL's unstable partitioning —
// must decide the order for sleeping decisions to be platform-independent.
[[nodiscard]] std::vector<std::size_t> hypnos_candidate_order(
    const NetworkTopology& topology, std::span<const double> link_loads_bps);

// One feasibility probe of the greedy loop, exposed so callers that memoize
// across adjacent queries (WhatIfEngine) share the exact decision procedure.
struct SleepFeasibility {
  bool feasible = false;
  std::vector<int> detour;  // link ids that absorb the rerouted traffic
};

// Can `link` sleep given the links already asleep and the routers that are
// unusable (decommissioned)? Feasible iff a detour exists between the link's
// endpoints through awake links and usable routers, and every detour link
// stays under `max_utilization` of its capacity after absorbing the slept
// link's load. `router_down` may be empty (all routers usable).
[[nodiscard]] SleepFeasibility sleep_feasibility(
    const NetworkTopology& topology, const std::vector<bool>& asleep,
    const std::vector<bool>& router_down, std::span<const double> loads_bps,
    std::size_t link, double max_utilization);

// Runs the greedy sleeping pass. `link_loads_bps` must have one entry per
// topology link (one-direction averages).
[[nodiscard]] HypnosResult run_hypnos(const NetworkTopology& topology,
                                      std::span<const double> link_loads_bps,
                                      const HypnosOptions& options = {});

// --- Time-varying evaluation (what [31] actually runs) ---------------------
//
// Real link sleeping is a schedule, not a one-shot decision: utilization has
// a diurnal cycle, so more links can sleep through the night than through
// the afternoon peak. `run_hypnos_schedule` re-evaluates the greedy pass per
// window using that window's average loads.

struct SleepWindow {
  SimTime begin = 0;
  SimTime end = 0;
  HypnosResult result;
};

struct SleepSchedule {
  std::vector<SleepWindow> windows;
  std::size_t candidate_links = 0;
  // Load-averaging resolution the schedule was built at; energy estimates
  // integrate each window at this step (0 = unknown, midpoint fallback).
  SimTime sample_step = 0;

  // Fraction of link-hours spent asleep across the whole schedule.
  [[nodiscard]] double fraction_link_time_off() const noexcept;
  // Smallest / largest per-window sleep counts (night vs day peak).
  [[nodiscard]] std::size_t min_links_off() const noexcept;
  [[nodiscard]] std::size_t max_links_off() const noexcept;
};

// Evaluates [begin, end) in windows of `window_s`; loads are averaged within
// each window at `sample_step` resolution.
[[nodiscard]] SleepSchedule run_hypnos_schedule(
    const NetworkSimulation& sim, SimTime begin, SimTime end, SimTime window_s,
    SimTime sample_step, const HypnosOptions& options = {});

// Same schedule with each window's load averaging run on `engine`'s worker
// pool (sharded by link). `engine` must wrap `sim`. Results are bit-identical
// to the serial overload for any worker count.
class TraceEngine;
[[nodiscard]] SleepSchedule run_hypnos_schedule(
    TraceEngine& engine, const NetworkSimulation& sim, SimTime begin,
    SimTime end, SimTime window_s, SimTime sample_step,
    const HypnosOptions& options = {});

}  // namespace joules
