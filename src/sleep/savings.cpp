#include "sleep/savings.hpp"

#include "device/transceiver.hpp"
#include "network/trace_engine.hpp"

namespace joules {

const std::map<PortType, Table5Row>& table5_port_power() {
  // Table 5, verbatim (P_port and P_trx,up per port type; SFP+ and QSFP-DD
  // have slightly negative P_trx,up averages in the paper's data).
  static const std::map<PortType, Table5Row> rows = {
      {PortType::kSFP, {0.05, 0.005}},
      {PortType::kSFPPlus, {0.55, -0.016}},
      {PortType::kQSFP28, {0.53, 0.126}},
      {PortType::kQSFPDD, {1.82, -0.069}},
      // Not listed in Table 5; conservative stand-ins for completeness.
      {PortType::kQSFP, {0.53, 0.126}},
      {PortType::kRJ45, {0.5, 0.0}},
  };
  return rows;
}

double datasheet_transceiver_power_w(const DeployedInterface& iface) {
  if (const auto module = find_transceiver(iface.transceiver_part)) {
    return module->datasheet_power_w;
  }
  // Kind-based fallback for synthesized part numbers.
  switch (iface.profile.transceiver) {
    case TransceiverKind::kPassiveDAC: return 0.3;
    case TransceiverKind::kSR4: return 2.0;
    case TransceiverKind::kLR: return 1.2;
    case TransceiverKind::kLR4: return 4.5;
    case TransceiverKind::kFR4: return 12.0;
    case TransceiverKind::kBaseT: return 1.0;
    case TransceiverKind::kNone: return 0.0;
  }
  return 0.0;
}

SleepSavings estimate_sleep_savings(const NetworkTopology& topology,
                                    const HypnosResult& result,
                                    double network_power_w) {
  SleepSavings savings;
  savings.network_power_w = network_power_w;
  savings.links_off = result.sleeping_links.size();

  const auto& table5 = table5_port_power();
  for (const int link_id : result.sleeping_links) {
    const InternalLink& link =
        topology.links.at(static_cast<std::size_t>(link_id));
    for (const auto& [router, iface_index] :
         {std::pair{link.router_a, link.iface_a},
          std::pair{link.router_b, link.iface_b}}) {
      const DeployedInterface& iface =
          topology.routers.at(static_cast<std::size_t>(router))
              .interfaces.at(static_cast<std::size_t>(iface_index));
      const auto row = table5.find(iface.profile.port);
      const double port_w = row != table5.end() ? row->second.port_w : 0.0;
      const double trx_w = datasheet_transceiver_power_w(iface);
      savings.min_w += port_w;           // P_trx,up = 0
      savings.max_w += port_w + trx_w;   // P_trx,up = full module power
      savings.interfaces_off += 1;
    }
  }
  return savings;
}


namespace {

// Mean network power over a window. With a positive sample step this is a
// left-rule integral at the schedule's own resolution; a zero step keeps the
// historical single midpoint sample (hand-built schedules).
double window_mean_power_w(TraceEngine& engine, const SleepWindow& window,
                           SimTime sample_step) {
  if (sample_step <= 0) {
    const SimTime midpoint = window.begin + (window.end - window.begin) / 2;
    return engine.network_power_w(midpoint);
  }
  const NetworkTraces traces =
      engine.network_traces(window.begin, window.end, sample_step);
  double sum = 0.0;
  for (const Sample& sample : traces.total_power_w) sum += sample.value;
  return traces.total_power_w.empty()
             ? 0.0
             : sum / static_cast<double>(traces.total_power_w.size());
}

}  // namespace

SleepEnergySavings estimate_schedule_energy(const NetworkSimulation& sim,
                                            const SleepSchedule& schedule) {
  TraceEngine engine(sim, TraceEngineOptions{.workers = 1});
  return estimate_schedule_energy(engine, sim, schedule);
}

SleepEnergySavings estimate_schedule_energy(TraceEngine& engine,
                                            const NetworkSimulation& sim,
                                            const SleepSchedule& schedule) {
  SleepEnergySavings energy;
  for (const SleepWindow& window : schedule.windows) {
    const double network_power =
        window_mean_power_w(engine, window, schedule.sample_step);
    const SleepSavings savings =
        estimate_sleep_savings(sim.topology(), window.result, network_power);
    const double hours =
        static_cast<double>(window.end - window.begin) / 3600.0;
    energy.min_kwh += savings.min_w * hours / 1000.0;
    energy.max_kwh += savings.max_w * hours / 1000.0;
    energy.network_kwh += network_power * hours / 1000.0;
  }
  return energy;
}

}  // namespace joules
