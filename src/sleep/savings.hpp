// §8 — translating sleeping links into watts.
//
// The model says turning a port down saves P_port + P_trx,up (P_trx,in keeps
// burning as long as the module is plugged — "down" does not mean "off").
// Network-wide, the paper must approximate:
//   - P_port: a per-port-type constant averaged over the lab models
//     (Table 5);
//   - P_trx,up: unknown split of the *datasheet* transceiver power, so
//     P_trx,up ∈ [0, P_trx] gives a savings *range*.
#pragma once

#include <map>

#include "model/interface_profile.hpp"
#include "network/topology.hpp"
#include "sleep/hypnos.hpp"

namespace joules {

struct Table5Row {
  double port_w = 0.0;     // P_port
  double trx_up_w = 0.0;   // P_trx,up (only used by model-based estimates)
};

// The per-port-type averages of Table 5.
[[nodiscard]] const std::map<PortType, Table5Row>& table5_port_power();

// Datasheet power of the module on an interface (catalogue lookup with a
// kind-based fallback for parts the catalogue does not carry).
[[nodiscard]] double datasheet_transceiver_power_w(const DeployedInterface& iface);

struct SleepSavings {
  double min_w = 0.0;           // P_trx,up = 0 everywhere
  double max_w = 0.0;           // P_trx,up = full datasheet P_trx
  double network_power_w = 0.0; // reference total for the percentages
  std::size_t links_off = 0;
  std::size_t interfaces_off = 0;

  [[nodiscard]] double min_frac() const noexcept {
    return network_power_w > 0.0 ? min_w / network_power_w : 0.0;
  }
  [[nodiscard]] double max_frac() const noexcept {
    return network_power_w > 0.0 ? max_w / network_power_w : 0.0;
  }
};

// Savings bracket for a Hypnos result against a reference network power.
[[nodiscard]] SleepSavings estimate_sleep_savings(const NetworkTopology& topology,
                                                  const HypnosResult& result,
                                                  double network_power_w);

// Energy bracket over a time-varying schedule: per-window power savings
// integrated over window durations, against the network's energy consumption
// over the same span.
struct SleepEnergySavings {
  double min_kwh = 0.0;
  double max_kwh = 0.0;
  double network_kwh = 0.0;

  [[nodiscard]] double min_frac() const noexcept {
    return network_kwh > 0.0 ? min_kwh / network_kwh : 0.0;
  }
  [[nodiscard]] double max_frac() const noexcept {
    return network_kwh > 0.0 ? max_kwh / network_kwh : 0.0;
  }
};

// Each window's reference network power is the mean of samples taken at the
// schedule's own `sample_step` resolution (left-rule integration via
// TraceEngine), not a single midpoint probe: a midpoint sample near the
// diurnal peak or trough biases `network_kwh` for long windows. Schedules
// with `sample_step == 0` (hand-built) keep the historical single midpoint
// sample per window.
[[nodiscard]] SleepEnergySavings estimate_schedule_energy(
    const NetworkSimulation& sim, const SleepSchedule& schedule);

// Same estimate with the per-window power sweeps run on `engine`'s worker
// pool. `engine` must wrap `sim`. Bit-identical to the serial overload for
// any worker count.
class TraceEngine;
[[nodiscard]] SleepEnergySavings estimate_schedule_energy(
    TraceEngine& engine, const NetworkSimulation& sim,
    const SleepSchedule& schedule);

}  // namespace joules
