#include "sleep/hypnos.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "network/trace_engine.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

struct Edge {
  int link_id;
  int peer;
};

using AdjacencyList = std::vector<std::vector<Edge>>;

AdjacencyList build_adjacency(const NetworkTopology& topology,
                              const std::vector<bool>& asleep) {
  AdjacencyList adjacency(topology.routers.size());
  for (std::size_t l = 0; l < topology.links.size(); ++l) {
    if (asleep[l]) continue;
    const InternalLink& link = topology.links[l];
    adjacency[static_cast<std::size_t>(link.router_a)].push_back(
        {static_cast<int>(l), link.router_b});
    adjacency[static_cast<std::size_t>(link.router_b)].push_back(
        {static_cast<int>(l), link.router_a});
  }
  return adjacency;
}

// BFS shortest path (hop count) from `from` to `to`; returns the link ids on
// the path, empty if unreachable.
std::vector<int> shortest_path(const AdjacencyList& adjacency, int from, int to) {
  if (from == to) return {};
  std::vector<int> via_link(adjacency.size(), -1);
  std::vector<int> via_node(adjacency.size(), -1);
  std::vector<bool> seen(adjacency.size(), false);
  std::queue<int> frontier;
  frontier.push(from);
  seen[static_cast<std::size_t>(from)] = true;
  while (!frontier.empty()) {
    const int node = frontier.front();
    frontier.pop();
    for (const Edge& edge : adjacency[static_cast<std::size_t>(node)]) {
      if (seen[static_cast<std::size_t>(edge.peer)]) continue;
      seen[static_cast<std::size_t>(edge.peer)] = true;
      via_link[static_cast<std::size_t>(edge.peer)] = edge.link_id;
      via_node[static_cast<std::size_t>(edge.peer)] = node;
      if (edge.peer == to) {
        std::vector<int> path;
        for (int cursor = to; cursor != from;
             cursor = via_node[static_cast<std::size_t>(cursor)]) {
          path.push_back(via_link[static_cast<std::size_t>(cursor)]);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push(edge.peer);
    }
  }
  return {};
}

double link_capacity_bps(const NetworkTopology& topology, std::size_t link_id) {
  const InternalLink& link = topology.links[link_id];
  const DeployedInterface& iface =
      topology.routers[static_cast<std::size_t>(link.router_a)]
          .interfaces[static_cast<std::size_t>(link.iface_a)];
  return line_rate_bps(iface.profile.rate);
}

}  // namespace

std::vector<double> average_link_loads_bps(const NetworkSimulation& sim,
                                           SimTime begin, SimTime end,
                                           SimTime step) {
  // Serial compatibility wrapper; a single-worker engine runs inline on the
  // calling thread and produces bit-identical results to the historical loop.
  TraceEngine engine(sim, TraceEngineOptions{.workers = 1});
  return engine.average_link_loads_bps(begin, end, step);
}

HypnosResult run_hypnos(const NetworkTopology& topology,
                        std::span<const double> link_loads_bps,
                        const HypnosOptions& options) {
  if (link_loads_bps.size() != topology.links.size()) {
    throw std::invalid_argument("run_hypnos: load vector size mismatch");
  }
  if (options.max_utilization <= 0.0 || options.max_utilization > 1.0) {
    throw std::invalid_argument("run_hypnos: max_utilization outside (0, 1]");
  }

  HypnosResult result;
  result.candidate_links = topology.links.size();
  result.final_loads_bps.assign(link_loads_bps.begin(), link_loads_bps.end());

  std::vector<bool> asleep(topology.links.size(), false);

  // Candidate order: ascending utilization (lightest links sleep first).
  std::vector<std::size_t> order(topology.links.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return link_loads_bps[a] / link_capacity_bps(topology, a) <
           link_loads_bps[b] / link_capacity_bps(topology, b);
  });

  for (const std::size_t candidate : order) {
    // Tentatively sleep the link and try to reroute its load.
    asleep[candidate] = true;
    const AdjacencyList adjacency = build_adjacency(topology, asleep);
    const InternalLink& link = topology.links[candidate];
    const std::vector<int> detour =
        shortest_path(adjacency, link.router_a, link.router_b);

    bool feasible = !detour.empty();
    if (feasible) {
      for (const int on_path : detour) {
        const double new_load =
            result.final_loads_bps[static_cast<std::size_t>(on_path)] +
            result.final_loads_bps[candidate];
        if (new_load > options.max_utilization *
                           link_capacity_bps(topology,
                                             static_cast<std::size_t>(on_path))) {
          feasible = false;
          break;
        }
      }
    }

    if (!feasible) {
      asleep[candidate] = false;
      continue;
    }
    for (const int on_path : detour) {
      result.final_loads_bps[static_cast<std::size_t>(on_path)] +=
          result.final_loads_bps[candidate];
    }
    result.final_loads_bps[candidate] = 0.0;
    result.sleeping_links.push_back(static_cast<int>(candidate));
  }
  return result;
}


double SleepSchedule::fraction_link_time_off() const noexcept {
  if (windows.empty() || candidate_links == 0) return 0.0;
  double link_time_off = 0.0;
  double link_time_total = 0.0;
  for (const SleepWindow& window : windows) {
    const double duration = static_cast<double>(window.end - window.begin);
    link_time_off +=
        duration * static_cast<double>(window.result.sleeping_links.size());
    link_time_total += duration * static_cast<double>(candidate_links);
  }
  return link_time_total > 0.0 ? link_time_off / link_time_total : 0.0;
}

std::size_t SleepSchedule::min_links_off() const noexcept {
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (const SleepWindow& window : windows) {
    best = std::min(best, window.result.sleeping_links.size());
  }
  return windows.empty() ? 0 : best;
}

std::size_t SleepSchedule::max_links_off() const noexcept {
  std::size_t best = 0;
  for (const SleepWindow& window : windows) {
    best = std::max(best, window.result.sleeping_links.size());
  }
  return best;
}

SleepSchedule run_hypnos_schedule(const NetworkSimulation& sim, SimTime begin,
                                  SimTime end, SimTime window_s,
                                  SimTime sample_step,
                                  const HypnosOptions& options) {
  TraceEngine engine(sim, TraceEngineOptions{.workers = 1});
  return run_hypnos_schedule(engine, sim, begin, end, window_s, sample_step,
                             options);
}

SleepSchedule run_hypnos_schedule(TraceEngine& engine,
                                  const NetworkSimulation& sim, SimTime begin,
                                  SimTime end, SimTime window_s,
                                  SimTime sample_step,
                                  const HypnosOptions& options) {
  if (window_s <= 0 || end <= begin) {
    throw std::invalid_argument("run_hypnos_schedule: bad window");
  }
  SleepSchedule schedule;
  schedule.candidate_links = sim.topology().links.size();
  for (SimTime t = begin; t < end; t += window_s) {
    SleepWindow window;
    window.begin = t;
    window.end = std::min(end, t + window_s);
    const std::vector<double> loads =
        engine.average_link_loads_bps(window.begin, window.end, sample_step);
    window.result = run_hypnos(sim.topology(), loads, options);
    schedule.windows.push_back(std::move(window));
  }
  return schedule;
}

}  // namespace joules
