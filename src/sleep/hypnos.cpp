#include "sleep/hypnos.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "network/trace_engine.hpp"
#include "util/units.hpp"

namespace joules {
namespace {

struct Edge {
  int link_id;
  int peer;
};

using AdjacencyList = std::vector<std::vector<Edge>>;

AdjacencyList build_adjacency(const NetworkTopology& topology,
                              const std::vector<bool>& asleep,
                              const std::vector<bool>& router_down) {
  AdjacencyList adjacency(topology.routers.size());
  for (std::size_t l = 0; l < topology.links.size(); ++l) {
    if (asleep[l]) continue;
    const InternalLink& link = topology.links[l];
    if (!router_down.empty() &&
        (router_down[static_cast<std::size_t>(link.router_a)] ||
         router_down[static_cast<std::size_t>(link.router_b)])) {
      continue;
    }
    adjacency[static_cast<std::size_t>(link.router_a)].push_back(
        {static_cast<int>(l), link.router_b});
    adjacency[static_cast<std::size_t>(link.router_b)].push_back(
        {static_cast<int>(l), link.router_a});
  }
  return adjacency;
}

// BFS shortest path (hop count) from `from` to `to`; returns the link ids on
// the path, empty if unreachable.
std::vector<int> shortest_path(const AdjacencyList& adjacency, int from, int to) {
  if (from == to) return {};
  std::vector<int> via_link(adjacency.size(), -1);
  std::vector<int> via_node(adjacency.size(), -1);
  std::vector<bool> seen(adjacency.size(), false);
  std::queue<int> frontier;
  frontier.push(from);
  seen[static_cast<std::size_t>(from)] = true;
  while (!frontier.empty()) {
    const int node = frontier.front();
    frontier.pop();
    for (const Edge& edge : adjacency[static_cast<std::size_t>(node)]) {
      if (seen[static_cast<std::size_t>(edge.peer)]) continue;
      seen[static_cast<std::size_t>(edge.peer)] = true;
      via_link[static_cast<std::size_t>(edge.peer)] = edge.link_id;
      via_node[static_cast<std::size_t>(edge.peer)] = node;
      if (edge.peer == to) {
        std::vector<int> path;
        for (int cursor = to; cursor != from;
             cursor = via_node[static_cast<std::size_t>(cursor)]) {
          path.push_back(via_link[static_cast<std::size_t>(cursor)]);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push(edge.peer);
    }
  }
  return {};
}

}  // namespace

double link_capacity_bps(const NetworkTopology& topology, std::size_t link_id) {
  const InternalLink& link = topology.links[link_id];
  const DeployedInterface& iface_a =
      topology.routers[static_cast<std::size_t>(link.router_a)]
          .interfaces[static_cast<std::size_t>(link.iface_a)];
  const DeployedInterface& iface_b =
      topology.routers[static_cast<std::size_t>(link.router_b)]
          .interfaces[static_cast<std::size_t>(link.iface_b)];
  return std::min(line_rate_bps(iface_a.profile.rate),
                  line_rate_bps(iface_b.profile.rate));
}

std::vector<std::size_t> hypnos_candidate_order(
    const NetworkTopology& topology, std::span<const double> link_loads_bps) {
  std::vector<std::size_t> order(topology.links.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double util_a =
                         link_loads_bps[a] / link_capacity_bps(topology, a);
                     const double util_b =
                         link_loads_bps[b] / link_capacity_bps(topology, b);
                     if (util_a != util_b) return util_a < util_b;
                     return a < b;
                   });
  return order;
}

SleepFeasibility sleep_feasibility(const NetworkTopology& topology,
                                   const std::vector<bool>& asleep,
                                   const std::vector<bool>& router_down,
                                   std::span<const double> loads_bps,
                                   std::size_t link, double max_utilization) {
  SleepFeasibility out;
  const InternalLink& spec = topology.links[link];
  if (!router_down.empty() &&
      (router_down[static_cast<std::size_t>(spec.router_a)] ||
       router_down[static_cast<std::size_t>(spec.router_b)])) {
    return out;  // a dead endpoint has no traffic to reroute and no detour
  }
  std::vector<bool> tentative = asleep;
  tentative[link] = true;
  const AdjacencyList adjacency =
      build_adjacency(topology, tentative, router_down);
  std::vector<int> detour =
      shortest_path(adjacency, spec.router_a, spec.router_b);
  if (detour.empty()) return out;
  for (const int on_path : detour) {
    const double new_load =
        loads_bps[static_cast<std::size_t>(on_path)] + loads_bps[link];
    if (new_load >
        max_utilization *
            link_capacity_bps(topology, static_cast<std::size_t>(on_path))) {
      return out;
    }
  }
  out.feasible = true;
  out.detour = std::move(detour);
  return out;
}

std::vector<double> average_link_loads_bps(const NetworkSimulation& sim,
                                           SimTime begin, SimTime end,
                                           SimTime step) {
  // Serial compatibility wrapper; a single-worker engine runs inline on the
  // calling thread and produces bit-identical results to the historical loop.
  TraceEngine engine(sim, TraceEngineOptions{.workers = 1});
  return engine.average_link_loads_bps(begin, end, step);
}

HypnosResult run_hypnos(const NetworkTopology& topology,
                        std::span<const double> link_loads_bps,
                        const HypnosOptions& options) {
  if (link_loads_bps.size() != topology.links.size()) {
    throw std::invalid_argument("run_hypnos: load vector size mismatch");
  }
  if (options.max_utilization <= 0.0 || options.max_utilization > 1.0) {
    throw std::invalid_argument("run_hypnos: max_utilization outside (0, 1]");
  }

  HypnosResult result;
  result.candidate_links = topology.links.size();
  result.final_loads_bps.assign(link_loads_bps.begin(), link_loads_bps.end());

  std::vector<bool> asleep(topology.links.size(), false);
  const std::vector<bool> no_down;

  // Candidate order: ascending utilization (lightest links sleep first).
  const std::vector<std::size_t> order =
      hypnos_candidate_order(topology, link_loads_bps);

  for (const std::size_t candidate : order) {
    // Tentatively sleep the link and try to reroute its load.
    SleepFeasibility probe =
        sleep_feasibility(topology, asleep, no_down, result.final_loads_bps,
                          candidate, options.max_utilization);
    if (!probe.feasible) continue;
    asleep[candidate] = true;
    for (const int on_path : probe.detour) {
      result.final_loads_bps[static_cast<std::size_t>(on_path)] +=
          result.final_loads_bps[candidate];
    }
    result.final_loads_bps[candidate] = 0.0;
    result.sleeping_links.push_back(static_cast<int>(candidate));
  }
  return result;
}


double SleepSchedule::fraction_link_time_off() const noexcept {
  if (windows.empty() || candidate_links == 0) return 0.0;
  double link_time_off = 0.0;
  double link_time_total = 0.0;
  for (const SleepWindow& window : windows) {
    const double duration = static_cast<double>(window.end - window.begin);
    link_time_off +=
        duration * static_cast<double>(window.result.sleeping_links.size());
    link_time_total += duration * static_cast<double>(candidate_links);
  }
  return link_time_total > 0.0 ? link_time_off / link_time_total : 0.0;
}

std::size_t SleepSchedule::min_links_off() const noexcept {
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (const SleepWindow& window : windows) {
    best = std::min(best, window.result.sleeping_links.size());
  }
  return windows.empty() ? 0 : best;
}

std::size_t SleepSchedule::max_links_off() const noexcept {
  std::size_t best = 0;
  for (const SleepWindow& window : windows) {
    best = std::max(best, window.result.sleeping_links.size());
  }
  return best;
}

SleepSchedule run_hypnos_schedule(const NetworkSimulation& sim, SimTime begin,
                                  SimTime end, SimTime window_s,
                                  SimTime sample_step,
                                  const HypnosOptions& options) {
  TraceEngine engine(sim, TraceEngineOptions{.workers = 1});
  return run_hypnos_schedule(engine, sim, begin, end, window_s, sample_step,
                             options);
}

SleepSchedule run_hypnos_schedule(TraceEngine& engine,
                                  const NetworkSimulation& sim, SimTime begin,
                                  SimTime end, SimTime window_s,
                                  SimTime sample_step,
                                  const HypnosOptions& options) {
  if (window_s <= 0 || end <= begin) {
    throw std::invalid_argument("run_hypnos_schedule: bad window");
  }
  // Validated here, not just in the TraceEngine it eventually reaches: the
  // schedule stamps this step into its result, and a non-positive value must
  // fail at the API the caller actually used.
  if (sample_step <= 0) {
    throw std::invalid_argument(
        "run_hypnos_schedule: sample_step must be positive");
  }
  SleepSchedule schedule;
  schedule.candidate_links = sim.topology().links.size();
  schedule.sample_step = sample_step;
  for (SimTime t = begin; t < end; t += window_s) {
    SleepWindow window;
    window.begin = t;
    window.end = std::min(end, t + window_s);
    const std::vector<double> loads =
        engine.average_link_loads_bps(window.begin, window.end, sample_step);
    window.result = run_hypnos(sim.topology(), loads, options);
    schedule.windows.push_back(std::move(window));
  }
  return schedule;
}

}  // namespace joules
