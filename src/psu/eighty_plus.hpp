// The "80 Plus" PSU efficiency certification standard (§9.1, Fig. 5).
//
// Each level requires minimum efficiencies at fixed load set points. We use
// the 230 V internal-redundant set points, the variant that applies to the
// datacenter/router PSUs the paper studies.
#pragma once

#include <array>
#include <optional>
#include <span>
#include <string_view>

#include "psu/efficiency_curve.hpp"

namespace joules {

enum class EightyPlusLevel : std::uint8_t {
  kBronze,
  kSilver,
  kGold,
  kPlatinum,
  kTitanium,
};

inline constexpr std::array<EightyPlusLevel, 5> kAllEightyPlusLevels = {
    EightyPlusLevel::kBronze, EightyPlusLevel::kSilver, EightyPlusLevel::kGold,
    EightyPlusLevel::kPlatinum, EightyPlusLevel::kTitanium};

[[nodiscard]] std::string_view to_string(EightyPlusLevel level) noexcept;

struct SetPoint {
  double load_frac;
  double min_efficiency;
};

// Required set points for a level. Titanium adds a 10 %-load requirement; the
// other levels specify 20/50/100 %.
[[nodiscard]] std::span<const SetPoint> set_points(EightyPlusLevel level) noexcept;

// True if `curve` meets or exceeds every set point of `level`.
[[nodiscard]] bool is_certified(const EfficiencyCurve& curve,
                                EightyPlusLevel level) noexcept;

// Highest level `curve` satisfies, if any.
[[nodiscard]] std::optional<EightyPlusLevel> certification(
    const EfficiencyCurve& curve) noexcept;

// The *minimal* curve of a level under the paper's assumption that every PSU
// curve is PFE600-shaped plus a constant: the PFE600 curve shifted by the
// smallest offset that satisfies all of the level's set points (§9.3.2).
[[nodiscard]] EfficiencyCurve standard_curve(EightyPlusLevel level);

}  // namespace joules
