// §9.3 estimators: how much wall power would the network save with better
// PSUs? Four what-if analyses over the PSU snapshot dataset:
//
//   §9.3.2 upgrade every PSU to (at least) an 80 Plus standard's curve;
//   §9.3.3 right-size PSU capacities (k * l_max rule, five capacity options);
//   §9.3.4 stop load-balancing: put the whole router on one PSU;
//   §9.3.5 combine §9.3.2 and §9.3.4.
//
// All follow the paper's modeling assumption: every PSU's curve is PFE600 +
// constant offset, calibrated from its single snapshot observation. Savings
// are reported against the observed total input power.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "psu/eighty_plus.hpp"
#include "psu/psu_unit.hpp"

namespace joules {

// The five PSU capacities present in the Switch dataset (§9.3.3).
inline constexpr std::array<double, 6> kCapacityOptionsW = {250, 400, 750,
                                                            1100, 2000, 2700};

struct SavingsResult {
  double baseline_input_w = 0.0;  // observed total wall power of the fleet
  double new_input_w = 0.0;       // estimated wall power after the measure
  [[nodiscard]] double saved_w() const noexcept { return baseline_input_w - new_input_w; }
  [[nodiscard]] double saved_frac() const noexcept {
    return baseline_input_w > 0.0 ? saved_w() / baseline_input_w : 0.0;
  }
};

// §9.3.2 — every PSU delivers its observed P_out, but at an efficiency no
// worse than `level`'s standard curve at its observed load.
[[nodiscard]] SavingsResult upgrade_to_standard(
    std::span<const RouterPsuGroup> groups, EightyPlusLevel level);

// §9.3.4 — per router, one PSU (the most efficient one, calibrated) delivers
// the router's total output at ~double load; the other PSU draws nothing
// (paper assumes zero losses from the idle unit).
[[nodiscard]] SavingsResult consolidate_to_single_psu(
    std::span<const RouterPsuGroup> groups);

// §9.3.5 — consolidation and the standard's curve combined.
[[nodiscard]] SavingsResult consolidate_and_upgrade(
    std::span<const RouterPsuGroup> groups, EightyPlusLevel level);

// §9.3.3 — reset every router's PSU capacity to
//   max(minimum_capacity_w, C)  with  C = min{cap in options : cap >= k*l_max}
// where l_max is the largest per-PSU output on that router. Each PSU keeps
// its calibrated offset; only its load point moves. k=2 preserves resilience
// to one PSU failure, k=1 maximizes savings.
[[nodiscard]] SavingsResult right_size_capacity(
    std::span<const RouterPsuGroup> groups, double k, double minimum_capacity_w,
    std::span<const double> capacity_options_w = kCapacityOptionsW);

}  // namespace joules
