#include "psu/optimization.hpp"

#include <algorithm>
#include <stdexcept>

namespace joules {
namespace {

// Wall power for a PSU delivering `output_w` at efficiency `eff`, falling
// back to the observed input when there is nothing to deliver (an idle PSU's
// standby loss cannot be improved by a better curve).
double input_for(double output_w, double observed_input_w, double eff) {
  if (output_w <= 0.0) return observed_input_w;
  if (eff <= 0.0) return observed_input_w;
  return output_w / eff;
}

double smallest_fitting_capacity(double required_w,
                                 std::span<const double> options) {
  double best = -1.0;
  for (const double cap : options) {
    if (cap >= required_w && (best < 0.0 || cap < best)) best = cap;
  }
  if (best < 0.0) {
    // Nothing large enough: keep the largest available option.
    best = *std::max_element(options.begin(), options.end());
  }
  return best;
}

// Picks the group's PSU with the best calibrated offset; the consolidation
// measures route all output through it.
const PsuObservation* most_efficient_psu(const RouterPsuGroup& group) {
  const PsuObservation* best = nullptr;
  double best_offset = 0.0;
  for (const PsuObservation& psu : group.psus) {
    if (psu.capacity_w <= 0.0) continue;
    const double offset =
        pfe600_curve().offset_for_observation(psu.load_frac(), psu.efficiency());
    if (best == nullptr || offset > best_offset) {
      best = &psu;
      best_offset = offset;
    }
  }
  return best;
}

SavingsResult consolidate(std::span<const RouterPsuGroup> groups,
                          const EfficiencyCurve* floor_curve) {
  SavingsResult result;
  for (const RouterPsuGroup& group : groups) {
    const double baseline = group.total_input_w();
    result.baseline_input_w += baseline;

    const PsuObservation* carrier = most_efficient_psu(group);
    const double total_output = group.total_output_w();
    if (group.psus.size() < 2 || carrier == nullptr || total_output <= 0.0 ||
        total_output > carrier->capacity_w) {
      // Nothing to consolidate (or it would overload the surviving PSU).
      result.new_input_w += baseline;
      continue;
    }

    const double new_load = total_output / carrier->capacity_w;
    double eff = carrier->calibrated_curve().at(new_load);
    if (floor_curve != nullptr) eff = std::max(eff, floor_curve->at(new_load));
    result.new_input_w +=
        std::min(baseline, input_for(total_output, baseline, eff));
  }
  return result;
}

}  // namespace

SavingsResult upgrade_to_standard(std::span<const RouterPsuGroup> groups,
                                  EightyPlusLevel level) {
  const EfficiencyCurve floor_curve = standard_curve(level);
  SavingsResult result;
  for (const RouterPsuGroup& group : groups) {
    for (const PsuObservation& psu : group.psus) {
      result.baseline_input_w += psu.input_power_w;
      const double eff =
          std::max(psu.efficiency(), floor_curve.at(psu.load_frac()));
      result.new_input_w += std::min(
          psu.input_power_w, input_for(psu.output_power_w, psu.input_power_w, eff));
    }
  }
  return result;
}

SavingsResult consolidate_to_single_psu(std::span<const RouterPsuGroup> groups) {
  return consolidate(groups, nullptr);
}

SavingsResult consolidate_and_upgrade(std::span<const RouterPsuGroup> groups,
                                      EightyPlusLevel level) {
  const EfficiencyCurve floor_curve = standard_curve(level);
  return consolidate(groups, &floor_curve);
}

SavingsResult right_size_capacity(std::span<const RouterPsuGroup> groups,
                                  double k, double minimum_capacity_w,
                                  std::span<const double> capacity_options_w) {
  if (k <= 0.0) throw std::invalid_argument("right_size_capacity: k must be positive");
  if (capacity_options_w.empty()) {
    throw std::invalid_argument("right_size_capacity: no capacity options");
  }

  SavingsResult result;
  for (const RouterPsuGroup& group : groups) {
    double l_max_w = 0.0;
    for (const PsuObservation& psu : group.psus) {
      l_max_w = std::max(l_max_w, psu.output_power_w);
    }
    const double fitted =
        smallest_fitting_capacity(k * l_max_w, capacity_options_w);
    const double new_capacity_w = std::max(minimum_capacity_w, fitted);

    for (const PsuObservation& psu : group.psus) {
      result.baseline_input_w += psu.input_power_w;
      if (psu.capacity_w <= 0.0 || psu.output_power_w <= 0.0) {
        result.new_input_w += psu.input_power_w;
        continue;
      }
      const double eff =
          psu.calibrated_curve().at(psu.output_power_w / new_capacity_w);
      result.new_input_w += input_for(psu.output_power_w, psu.input_power_w, eff);
    }
  }
  return result;
}

}  // namespace joules
